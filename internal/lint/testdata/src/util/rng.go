// Package util is a no-global-rand fixture: the directory name keeps it
// outside every scoped package list, proving the rule applies module-wide.
package util

import "math/rand"

func bad() int {
	return rand.Intn(10) // want `no-global-rand: rand\.Intn draws from the process-global source`
}

func badFloat() float64 {
	return rand.Float64() // want `no-global-rand: rand\.Float64 draws from the process-global source`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `no-global-rand: rand\.Shuffle draws from the process-global source`
}

// okSeeded constructs a private stream: rand.New and rand.NewSource are the
// sanctioned constructors, and methods on the resulting *rand.Rand are fine.
func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func okSuppressed() float64 {
	//lint:ignore no-global-rand reason: fixture: justified suppression
	return rand.ExpFloat64()
}
