package bench

import (
	"path/filepath"
	"testing"
)

func TestSuiteNamesUnique(t *testing.T) {
	for _, quick := range []bool{false, true} {
		seen := map[string]bool{}
		for _, c := range Suite(quick) {
			if c.Name == "" || c.Bench == nil {
				t.Fatalf("malformed case %+v", c)
			}
			if seen[c.Name] {
				t.Fatalf("duplicate case %q", c.Name)
			}
			seen[c.Name] = true
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := Report{
		Date:      "2026-08-05",
		GoVersion: "go0.0",
		Quick:     true,
		Results: []Result{
			{Name: "a", N: 10, NsPerOp: 123.5, AllocsPerOp: 2, BytesPerOp: 64},
		},
		Headline: map[string]float64{"fig4/x": 1.25},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != rep.Date || len(got.Results) != 1 || got.Results[0].NsPerOp != 123.5 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if got.Headline["fig4/x"] != 1.25 {
		t.Fatalf("headline lost: %+v", got.Headline)
	}
}

func TestCompare(t *testing.T) {
	prev := Report{Results: []Result{
		{Name: "steady", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "removed", NsPerOp: 50},
		{Name: "zero", NsPerOp: 0},
	}}
	cur := Report{Results: []Result{
		{Name: "steady", NsPerOp: 130, AllocsPerOp: 0}, // +30%
		{Name: "added", NsPerOp: 10},
		{Name: "zero", NsPerOp: 10},
	}}
	deltas, regressed := Compare(prev, cur, 0.25)
	if !regressed {
		t.Fatal("30% growth above a 25% threshold must regress")
	}
	if len(deltas) != 1 || deltas[0].Name != "steady" || !deltas[0].Regressed {
		t.Fatalf("unexpected deltas: %+v", deltas)
	}
	if deltas[0].Ratio < 1.29 || deltas[0].Ratio > 1.31 {
		t.Fatalf("ratio = %v, want ~1.3", deltas[0].Ratio)
	}
	// Within threshold: no regression.
	cur.Results[0].NsPerOp = 120
	if _, regressed := Compare(prev, cur, 0.25); regressed {
		t.Fatal("20% growth below a 25% threshold must pass")
	}
}

// TestRunQuickSuite executes the real quick suite once end to end. This is
// the bench harness's own smoke test; per-case time is bounded by
// testing.Benchmark's internal budget.
func TestRunQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite run skipped in -short mode")
	}
	var lines int
	rep, err := Run("2026-08-05", true, func(string, ...any) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(Suite(true)) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(Suite(true)))
	}
	if lines != len(rep.Results) {
		t.Fatalf("progress lines = %d, want %d", lines, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Fatalf("case %s measured nothing: %+v", r.Name, r)
		}
	}
	if len(rep.Headline) == 0 {
		t.Fatal("no headline figure metrics")
	}
}
