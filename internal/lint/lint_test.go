package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRx extracts the backtick-quoted expectation patterns of a
// // want `...` comment.
var wantRx = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants parses the // want `regex` expectation comments of a fixture
// package.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may trail other comment text (for example a
				// //lint:ignore directive that itself expects a diagnostic).
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: rx})
				}
			}
		}
	}
	return wants
}

// checkExpectations matches reported diagnostics against the fixtures' // want
// comments: each want must be matched on its line, and no unexpected
// diagnostic may appear.
func checkExpectations(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
nextDiag:
	for _, d := range diags {
		text := d.Rule + ": " + d.Message
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(text) {
				w.matched = true
				continue nextDiag
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// TestFixtures checks the analyzer over every standalone fixture package
// under testdata/src.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no fixture packages found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := LoadDir(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			checkExpectations(t, []*Package{pkg}, Run([]*Package{pkg}, DefaultConfig()))
		})
	}
}

// TestModuleFixtures checks the analyzer over every multi-package fixture
// MODULE under testdata (directories named mod_*, each with its own go.mod).
// These exercise the interprocedural rules across package boundaries:
// cross-package taint flow, derived sources, and protocol-package sinks.
func TestModuleFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	ran := false
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "mod_") {
			continue
		}
		ran = true
		t.Run(e.Name(), func(t *testing.T) {
			pkgs, err := Load(filepath.Join("testdata", e.Name()))
			if err != nil {
				t.Fatalf("loading fixture module: %v", err)
			}
			checkExpectations(t, pkgs, Run(pkgs, DefaultConfig()))
		})
	}
	if !ran {
		t.Fatal("no fixture modules found")
	}
}

// writeFixture materializes a one-file package in a temp dir and loads it.
func writeFixture(t *testing.T, name, src string) *Package {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	return pkg
}

// TestMalformedDirective checks that a //lint:ignore without a reason is
// itself reported and does not suppress anything.
func TestMalformedDirective(t *testing.T) {
	pkg := writeFixture(t, "eventsim", `package eventsim

import "time"

func bad() time.Time {
	//lint:ignore no-wallclock
	return time.Now()
}
`)
	diags := Run([]*Package{pkg}, DefaultConfig())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bad-directive + unsuppressed finding): %v", len(diags), diags)
	}
	if diags[0].Rule != "bad-directive" {
		t.Errorf("first diagnostic rule = %q, want bad-directive", diags[0].Rule)
	}
	if diags[1].Rule != "no-wallclock" {
		t.Errorf("second diagnostic rule = %q, want no-wallclock (malformed directives must not suppress)", diags[1].Rule)
	}
}

// TestDisabledRule checks per-rule configuration.
func TestDisabledRule(t *testing.T) {
	pkg := writeFixture(t, "eventsim", `package eventsim

import "time"

func bad() time.Time { return time.Now() }
`)
	cfg := DefaultConfig()
	cfg.Disabled = []string{"no-wallclock"}
	if diags := Run([]*Package{pkg}, cfg); len(diags) != 0 {
		t.Fatalf("disabled rule still fired: %v", diags)
	}
	if diags := Run([]*Package{pkg}, DefaultConfig()); len(diags) != 1 {
		t.Fatalf("enabled rule did not fire exactly once: %v", diags)
	}
}

// TestScopedRule checks that kernel-scoped rules ignore packages outside the
// configured scope.
func TestScopedRule(t *testing.T) {
	pkg := writeFixture(t, "liveutil", `package liveutil

import "time"

func fine() time.Time { return time.Now() }
`)
	if diags := Run([]*Package{pkg}, DefaultConfig()); len(diags) != 0 {
		t.Fatalf("no-wallclock fired outside its scope: %v", diags)
	}
}

func TestMatchPackage(t *testing.T) {
	cases := []struct {
		path    string
		pattern string
		want    bool
	}{
		{"omcast/internal/rost", "rost", true},
		{"omcast/internal/rost", "omcast/internal/rost", true},
		{"omcast/internal/frost", "rost", false},
		{"omcast", "omcast", true},
		{"omcast/cmd/omcast-sim", "omcast/cmd/...", true},
		{"omcast/cmdx", "omcast/cmd/...", false},
		{"omcast/internal/lint", "rost", false},
	}
	for _, c := range cases {
		if got := matchPackage(c.path, []string{c.pattern}); got != c.want {
			t.Errorf("matchPackage(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

// TestModuleIsClean loads the real module and asserts the tree lints clean —
// the same gate CI applies via cmd/omcast-lint.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module load in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; the loader is missing module packages", len(pkgs))
	}
	var sb strings.Builder
	diags := Run(pkgs, DefaultConfig())
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	if len(diags) > 0 {
		t.Errorf("module has %d lint finding(s):\n%s", len(diags), sb.String())
	}
}

// TestBuildConstraintFiltering: tag-gated twin files (the //go:build race /
// !race pattern) must not collide during type-checking — the loader keeps the
// default-build file and skips the tagged one.
func TestBuildConstraintFiltering(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "twins")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("twins.go", "package twins\n\nvar Flag = raceEnabled\n")
	write("race_on.go", "//go:build race\n\npackage twins\n\nconst raceEnabled = true\n")
	write("race_off.go", "//go:build !race\n\npackage twins\n\nconst raceEnabled = false\n")
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading tag-gated twins: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (race_on.go skipped)", len(pkg.Files))
	}
}
