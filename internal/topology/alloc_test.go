package topology

import (
	"testing"

	"omcast/internal/xrand"
)

// TestDelayAllocCeiling pins the delay oracle at zero allocations per
// lookup: Delay is pure table arithmetic (transit APSP plus per-domain
// intra-stub tables), and the simulation calls it on every packet path, so
// even one temporary per call would dominate the heap profile.
func TestDelayAllocCeiling(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.TransitDomains = 2
	cfg.TransitNodesPerDomain = 4
	cfg.StubDomainsPerTransit = 2
	cfg.StubNodesPerDomain = 8
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	n := topo.Size()
	allocs := testing.AllocsPerRun(500, func() {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if d := topo.Delay(u, v); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	})
	if allocs > 0 {
		t.Fatalf("Delay allocates %.1f times per lookup, want 0", allocs)
	}
}
