package metrics

import (
	"reflect"
	"testing"
)

// populate simulates one session's worth of writes against reg.
func populate(reg *Registry, runs int) {
	for s := 0; s < runs; s++ {
		reg.Counter("omcast_test_total", "h").Add(float64(s + 1))
		reg.Gauge("omcast_test_members", "h").Set(float64(100 * (s + 1)))
		h := reg.Histogram("omcast_test_latency_seconds", "h", LogBuckets(0.001, 10, 5))
		h.Observe(0.002 * float64(s+1))
		h.Observe(3)
		v := float64(s)
		reg.GaugeFunc("omcast_test_depth", "h", func() float64 { return v })
	}
}

// TestMergeMatchesShared pins the contract the experiment engine depends on:
// per-session registries merged in session order snapshot identically to the
// sessions sharing one registry from the start.
func TestMergeMatchesShared(t *testing.T) {
	shared := NewRegistry()
	populate(shared, 1)
	populate(shared, 2)

	merged := NewRegistry()
	a := NewRegistry()
	populate(a, 1)
	b := NewRegistry()
	populate(b, 2)
	merged.Merge(a)
	merged.Merge(b)

	want := shared.Snapshot(7)
	got := merged.Snapshot(7)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("merged snapshot differs from shared-registry snapshot:\nshared: %+v\nmerged: %+v", want, got)
	}
}

func TestMergeIntoPopulated(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("omcast_test_total", "h").Add(5)
	src := NewRegistry()
	src.Counter("omcast_test_total", "h").Add(2)
	src.Counter("omcast_test_new_total", "h").Inc()
	dst.Merge(src)
	snap := dst.Snapshot(0)
	if len(snap.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(snap.Metrics))
	}
	if snap.Metrics[0].Name != "omcast_test_total" || snap.Metrics[0].Value != 7 {
		t.Fatalf("counter did not add: %+v", snap.Metrics[0])
	}
	if snap.Metrics[1].Name != "omcast_test_new_total" || snap.Metrics[1].Value != 1 {
		t.Fatalf("new counter not appended: %+v", snap.Metrics[1])
	}
}

func TestMergeLabelsKeptDistinct(t *testing.T) {
	dst := NewRegistry()
	src := NewRegistry()
	src.Counter("omcast_test_total", "h", Label{Key: "alg", Value: "rost"}).Inc()
	src.Counter("omcast_test_total", "h", Label{Key: "alg", Value: "mindepth"}).Add(3)
	dst.Merge(src)
	snap := dst.Snapshot(0)
	if len(snap.Metrics) != 2 {
		t.Fatalf("labelled series collapsed: %+v", snap.Metrics)
	}
	if snap.Metrics[0].Value != 1 || snap.Metrics[1].Value != 3 {
		t.Fatalf("labelled values wrong: %+v", snap.Metrics)
	}
}

func TestMergeHistogramBoundsMismatchPanics(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("omcast_test_latency_seconds", "h", LogBuckets(0.001, 10, 5))
	src := NewRegistry()
	src.Histogram("omcast_test_latency_seconds", "h", LogBuckets(0.001, 100, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("bounds mismatch did not panic")
		}
	}()
	dst.Merge(src)
}

func TestMergeSelfPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("self-merge did not panic")
		}
	}()
	reg.Merge(reg)
}
