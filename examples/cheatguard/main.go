// Cheatguard: demonstrate the Section 3.4 reference-node mechanism. ROST
// rewards high bandwidth-time products with high tree positions, so a
// malicious member that inflates its claims 50x would climb toward the
// source and could disrupt the whole session. The example runs the same
// attacked session twice — once with referee verification, once without —
// and shows where the cheaters end up.
//
//	go run ./examples/cheatguard [-cheaters 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cheatguard:", err)
		os.Exit(1)
	}
}

func run() error {
	cheaters := flag.Int("cheaters", 30, "number of members inflating their claims 50x")
	flag.Parse()

	fmt.Printf("1500-member ROST session; %d members advertise 50x their true bandwidth and age\n\n", *cheaters)
	for _, verified := range []bool{false, true} {
		cfg := omcast.Config{
			Seed:                     3,
			Algorithm:                omcast.ROST,
			TargetSize:               1500,
			Warmup:                   time.Hour,
			Measure:                  2 * time.Hour,
			Cheaters:                 *cheaters,
			CheatFactor:              50,
			DisableClaimVerification: !verified,
		}
		res, err := omcast.Run(cfg)
		if err != nil {
			return err
		}
		mode := "claims verified by referees"
		if !verified {
			mode = "claims taken at face value"
		}
		fmt.Printf("[%s]\n", mode)
		fmt.Printf("  cheaters' mean depth:  %.2f\n", res.CheaterMeanDepth)
		fmt.Printf("  honest mean depth:     %.2f\n", res.HonestMeanDepth)
		fmt.Printf("  claims rejected:       %d\n", res.RejectedClaims)
		switch {
		case !verified && res.CheaterMeanDepth < res.HonestMeanDepth:
			fmt.Printf("  -> cheaters climbed above the honest population: every switch they won\n")
			fmt.Printf("     put their (unreliable) claims between the source and more viewers\n\n")
		case verified:
			fmt.Printf("  -> the age/bandwidth witnesses expose every inflated claim, so cheating\n")
			fmt.Printf("     buys no position at all\n\n")
		default:
			fmt.Printf("\n")
		}
	}
	return nil
}
