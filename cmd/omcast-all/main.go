// Command omcast-all regenerates every figure of the paper's evaluation
// (Figures 4-14) plus the design ablations, printing each table as it
// completes and optionally writing the whole report to a file.
//
// Usage:
//
//	omcast-all                  # full-scale reproduction (several minutes)
//	omcast-all -quick           # reduced-scale smoke pass (~seconds)
//	omcast-all -o results.txt   # also write the report to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"omcast/internal/experiments"
	"omcast/internal/metrics"
	"omcast/internal/profiling"
	"omcast/internal/runtimecfg"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed     = flag.Int64("seed", 1, "base random seed")
		workers  = flag.Int("workers", 0, "worker pool size for independent runs (0 = GOMAXPROCS; output is identical for every setting)")
		quick    = flag.Bool("quick", false, "reduced scale for a fast smoke pass")
		paranoid = flag.Bool("paranoid", false, "full-scan invariant audits during every run (debugging aid; output comparable only to other -paranoid runs)")
		memlimit = flag.String("memlimit", "", "soft Go runtime memory limit, e.g. 8GiB (default: no limit)")
		gcpct    = flag.Int("gcpercent", -1, "GOGC percentage (default -1: keep the runtime default of 100)")
		out      = flag.String("o", "", "also write the report to this file")
		verbose  = flag.Bool("v", false, "print per-run progress")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metOut   = flag.String("metrics-out", "", "write accumulated metrics (Prometheus text format) to this file")
	)
	flag.Parse()

	if _, err := runtimecfg.Apply(*memlimit, *gcpct); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-all: %v\n", err)
		return 2
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Workers: *workers, Paranoid: *paranoid}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *metOut != "" {
		opts.Metrics = metrics.NewRegistry()
	}
	runner := experiments.NewRunner(opts)

	prof, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-all: %v\n", err)
		return 1
	}
	defer func() {
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintf(os.Stderr, "omcast-all: %v\n", perr)
		}
	}()

	var report strings.Builder
	//lint:ignore no-wallclock reason: CLI progress timer; never feeds simulation state
	start := time.Now()
	for _, id := range experiments.IDs() {
		var table experiments.Table
		var err error
		profiling.Do(id, func() {
			table, err = runner.Run(id)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-all: %v\n", err)
			return 1
		}
		block := table.Format() + fmt.Sprintf("(completed in %.1fs)\n\n", table.Elapsed.Seconds())
		fmt.Print(block)
		report.WriteString(block)
	}
	//lint:ignore no-wallclock reason: CLI progress timer; never feeds simulation state
	fmt.Printf("all experiments completed in %.1fs\n", time.Since(start).Seconds())

	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-all: %v\n", err)
			return 1
		}
		if err := metrics.WriteProm(f, opts.Metrics.Snapshot(0)); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "omcast-all: writing metrics: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "omcast-all: %v\n", err)
			return 1
		}
		fmt.Printf("metrics written to %s\n", *metOut)
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "omcast-all: writing %s: %v\n", *out, err)
			return 1
		}
		fmt.Printf("report written to %s\n", *out)
	}
	return 0
}
