// Package decode exercises the derived-source arm of the fixpoint: Loose
// returns a raw decode result without validating it, so the analysis must
// treat every Loose call in other packages as a taint source itself.
package decode

import "taintmod/wire"

// Loose parses and swallows the error: the classic validation bypass.
func Loose(data []byte) *wire.Envelope {
	env, _ := wire.DecodeRaw(data)
	return env
}
