// Command omcast-topo generates a GT-ITM-style transit-stub topology and
// prints its structural statistics: router counts, degree distribution, and
// a sampled unicast-delay profile between stub routers (the population
// overlay members are placed on).
//
// Usage:
//
//	omcast-topo                      # the paper's 15600-router topology
//	omcast-topo -transit-domains 3 -transit-nodes 8 -stub-domains 2 -stub-nodes 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"omcast/internal/stats"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed           = flag.Int64("seed", 1, "random seed")
		transitDomains = flag.Int("transit-domains", 0, "transit domains (default 6)")
		transitNodes   = flag.Int("transit-nodes", 0, "routers per transit domain (default 40)")
		stubDomains    = flag.Int("stub-domains", 0, "stub domains per transit router (default 4)")
		stubNodes      = flag.Int("stub-nodes", 0, "routers per stub domain (default 16)")
		samples        = flag.Int("samples", 20000, "random stub pairs for the delay profile")
		verify         = flag.Bool("verify", false, "cross-check the O(1) oracle against full Dijkstra on sampled sources")
		dotFile        = flag.String("dot", "", "write the topology as GraphViz DOT to this file")
	)
	flag.Parse()

	cfg := topology.DefaultConfig(*seed)
	if *transitDomains > 0 {
		cfg.TransitDomains = *transitDomains
	}
	if *transitNodes > 0 {
		cfg.TransitNodesPerDomain = *transitNodes
	}
	if *stubDomains > 0 {
		cfg.StubDomainsPerTransit = *stubDomains
	}
	if *stubNodes > 0 {
		cfg.StubNodesPerDomain = *stubNodes
	}

	//lint:ignore no-wallclock reason: CLI progress timer; never feeds simulation state
	start := time.Now()
	topo, err := topology.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-topo: %v\n", err)
		return 1
	}
	//lint:ignore no-wallclock reason: CLI progress timer; never feeds simulation state
	fmt.Printf("generated in %.1fms\n", float64(time.Since(start).Microseconds())/1000)
	fmt.Printf("routers: %d total = %d transit + %d stub\n", topo.Size(), topo.TransitCount(), topo.StubCount())
	fmt.Printf("stub domains: %d of %d routers each, single-homed\n",
		cfg.TransitCount()*cfg.StubDomainsPerTransit, cfg.StubNodesPerDomain)

	degSum, degMax := 0, 0
	for id := topology.NodeID(0); int(id) < topo.Size(); id++ {
		d := topo.Degree(id)
		degSum += d
		if d > degMax {
			degMax = d
		}
	}
	fmt.Printf("links: %d (avg degree %.2f, max %d)\n", degSum/2, float64(degSum)/float64(topo.Size()), degMax)

	rng := xrand.NewNamed(*seed, "topo.samples")
	delays := make([]float64, 0, *samples)
	for i := 0; i < *samples; i++ {
		a, b := topo.RandomStub(rng), topo.RandomStub(rng)
		if a == b {
			continue
		}
		delays = append(delays, float64(topo.Delay(a, b))/float64(time.Millisecond))
	}
	p50, err := stats.Percentile(delays, 50)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-topo: %v\n", err)
		return 1
	}
	p95, _ := stats.Percentile(delays, 95)
	mx, _ := stats.Max(delays)
	fmt.Printf("stub-to-stub unicast delay over %d pairs: mean %.1fms, p50 %.1fms, p95 %.1fms, max %.1fms\n",
		len(delays), stats.Mean(delays), p50, p95, mx)

	if *dotFile != "" {
		if err := writeDOT(*dotFile, topo); err != nil {
			fmt.Fprintf(os.Stderr, "omcast-topo: %v\n", err)
			return 1
		}
		fmt.Printf("DOT graph written to %s\n", *dotFile)
	}

	if *verify {
		mismatches := 0
		for i := 0; i < 3; i++ {
			src := topo.RandomStub(rng)
			dist := topo.DijkstraFrom(src)
			for v := topology.NodeID(0); int(v) < topo.Size(); v++ {
				if topo.Delay(src, v) != dist[v] {
					mismatches++
				}
			}
		}
		if mismatches > 0 {
			fmt.Fprintf(os.Stderr, "omcast-topo: oracle mismatched Dijkstra on %d pairs\n", mismatches)
			return 1
		}
		fmt.Println("oracle verified: exact match with full-graph Dijkstra on 3 sampled sources")
	}
	return 0
}

// writeDOT renders the topology as a GraphViz graph: transit routers as
// boxes, stub routers as points, edge length labels in milliseconds.
func writeDOT(path string, topo *topology.Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "graph transitstub {")
	fmt.Fprintln(w, "  node [shape=point];")
	for id := topology.NodeID(0); int(id) < topo.Size(); id++ {
		if topo.KindOf(id) == topology.Transit {
			fmt.Fprintf(w, "  n%d [shape=box, label=\"t%d\"];\n", id, id)
		}
	}
	topo.VisitLinks(func(a, b topology.NodeID, delay time.Duration) {
		fmt.Fprintf(w, "  n%d -- n%d [label=\"%.1f\"];\n", a, b, float64(delay)/float64(time.Millisecond))
	})
	fmt.Fprintln(w, "}")
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
