// Command omcast-node runs one live protocol node over UDP: the deployable
// counterpart of the simulator. Start a source, point members at it, and the
// overlay assembles, streams, heals failures and (optionally) ROST-switches
// on real sockets.
//
// Terminal 1 — the source:
//
//	omcast-node -listen 127.0.0.1:7000 -source -bandwidth 8
//
// Terminals 2..n — members:
//
//	omcast-node -listen 127.0.0.1:0 -bootstrap 127.0.0.1:7000 -bandwidth 3 -switch 30s
//
// Each node prints a status line every few seconds; SIGINT leaves
// gracefully (children re-attach immediately).
//
// Sends default to the compact binary wire codec; -codec=json switches to
// the JSON debug codec. Receives always auto-detect the framing, so mixed
// fleets interoperate during a codec migration. Control-class messages
// (joins, accepts, membership, switches, repair requests) ride a retransmit
// shim tuned by -retx-attempts, -retx-base and -retx-inflight.
//
// With -http the node also serves its observability surface:
//
//	omcast-node -listen 127.0.0.1:0 -bootstrap 127.0.0.1:7000 -http 127.0.0.1:9090
//	curl -s http://127.0.0.1:9090/metrics      # Prometheus text format
//	curl -s http://127.0.0.1:9090/healthz      # 200 once attached, 503 before
//	curl -s http://127.0.0.1:9090/debug/trace  # span flight recorder (JSONL)
//
// /debug/trace dumps the node's causal-span flight recorder: the last
// -trace-buf completed recovery episodes (rejoins with per-attempt children,
// CER repair round-trips, playback stalls), pipeable straight into
// `omcast-trace analyze` or `omcast-trace convert -format perfetto`.
//
// For resilience drills, -faults injects a JSON fault schedule (the
// internal/faultnet format: loss, latency, partitions, timed events) on this
// node's own traffic, seed-deterministically:
//
//	omcast-node -listen 127.0.0.1:0 -bootstrap 127.0.0.1:7000 -faults drill.json
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"omcast/internal/faultnet"
	fnlive "omcast/internal/faultnet/live"
	"omcast/internal/metrics"
	"omcast/internal/metrics/live"
	"omcast/internal/node"
	"omcast/internal/tracing/flight"
	"omcast/internal/wire"
)

// processStart anchors the uptime gauge and the /healthz uptime field.
//
//lint:ignore no-wallclock reason: live node uptime is wall-clock by definition
var processStart = time.Now()

// buildVersion reports the module version baked into the binary ("(devel)"
// for plain `go build`, a tag or pseudo-version for `go install m@v`).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// newMux builds the node's HTTP surface: /metrics in the Prometheus text
// exposition format (with build info and a scrape-time uptime gauge),
// /healthz reporting tree attachment, and /debug/trace dumping the span
// flight recorder as JSONL (empty when tracing is disabled).
func newMux(n *node.Node, reg *live.Registry, ring *flight.Ring) *http.ServeMux {
	buildInfo := reg.Gauge("omcast_build_info",
		"Build metadata carried in labels; the value is always 1.",
		metrics.Label{Key: "version", Value: buildVersion()},
		metrics.Label{Key: "goversion", Value: runtime.Version()})
	buildInfo.Set(1)
	uptime := reg.Gauge("omcast_node_uptime_seconds", "Seconds since process start.")
	metricsHandler := live.Handler(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		//lint:ignore no-wallclock reason: uptime gauge measures real elapsed time at scrape
		uptime.Set(time.Since(processStart).Seconds())
		metricsHandler.ServeHTTP(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		s := n.Stats()
		//lint:ignore no-wallclock reason: uptime field reports real elapsed time
		up := time.Since(processStart).Round(time.Second)
		if s.Attached {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintf(w, "ok depth=%d children=%d version=%s uptime=%s\n",
				s.Depth, s.Children, buildVersion(), up)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "joining version=%s uptime=%s\n", buildVersion(), up)
	})
	mux.Handle("/debug/trace", flight.Handler(ring))
	return mux
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "UDP address to bind")
		source     = flag.Bool("source", false, "act as the stream source")
		bandwidth  = flag.Float64("bandwidth", 3, "outbound bandwidth (out-degree = floor)")
		bootstrap  = flag.String("bootstrap", "", "comma-separated bootstrap addresses")
		rate       = flag.Float64("rate", 10, "stream rate in packets/second (source)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "heartbeat interval")
		switchIv   = flag.Duration("switch", 0, "ROST switching interval (0 = disabled)")
		status     = flag.Duration("status", 5*time.Second, "status print interval")
		group      = flag.Int("recovery-group", 3, "CER recovery group size")
		httpAddr   = flag.String("http", "", "serve /metrics and /healthz on this address (empty = disabled)")
		faults     = flag.String("faults", "", "JSON fault schedule to inject on this node's traffic (see internal/faultnet)")
		faultSeed  = flag.Int64("fault-seed", 0, "override the fault schedule's seed")
		noGuard    = flag.Bool("no-guard", false, "disable the per-peer misbehavior guard (rate limiting, quarantine, BTP audit)")
		guardRate  = flag.Float64("guard-rate", 0, "per-peer request rate limit in requests/second (0 = default)")
		guardScore = flag.Float64("guard-score", 0, "misbehavior score that triggers quarantine (0 = default)")
		traceBuf   = flag.Int("trace-buf", flight.DefaultSize, "span flight-recorder capacity served on /debug/trace (0 = disable span tracing)")
		codecName  = flag.String("codec", "", "wire codec for sends: "+strings.Join(wire.CodecNames(), " or ")+" (default binary; receives auto-detect)")
		retxN      = flag.Int("retx-attempts", 0, "max transmissions per control message (0 = default of 4, negative = disable the retransmit shim)")
		retxBase   = flag.Duration("retx-base", 0, "first retransmit backoff (0 = default of heartbeat/2)")
		retxCap    = flag.Int("retx-inflight", 0, "max unacked control messages per peer (0 = default of 32)")
	)
	flag.Parse()

	if !*source && *bootstrap == "" {
		fmt.Fprintln(os.Stderr, "omcast-node: members need -bootstrap")
		return 2
	}
	if *codecName != "" && wire.CodecByName(*codecName) == nil {
		fmt.Fprintf(os.Stderr, "omcast-node: unknown codec %q (want %s)\n",
			*codecName, strings.Join(wire.CodecNames(), " or "))
		return 2
	}
	var boots []wire.Addr
	for _, b := range strings.Split(*bootstrap, ",") {
		if b = strings.TrimSpace(b); b != "" {
			boots = append(boots, wire.Addr(b))
		}
	}
	transport, err := node.NewUDPTransport(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-node: %v\n", err)
		return 1
	}
	reg := live.NewRegistry()
	var tr node.Transport = transport
	if *faults != "" {
		data, err := os.ReadFile(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-node: %v\n", err)
			return 2
		}
		sch, err := faultnet.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-node: %s: %v\n", *faults, err)
			return 2
		}
		fnet := fnlive.NewNetwork(fnlive.Options{Seed: *faultSeed, Schedule: sch, Metrics: reg})
		defer fnet.Close()
		tr = fnet.Wrap(transport)
		fnet.Start()
		fmt.Printf("omcast-node: injecting faults from %s (seed %d)\n", *faults, sch.Seed)
	}
	cfg := node.Config{
		Source:               *source,
		Bandwidth:            *bandwidth,
		StreamRate:           *rate,
		Bootstrap:            boots,
		HeartbeatInterval:    *heartbeat,
		SwitchInterval:       *switchIv,
		RecoveryGroup:        *group,
		DisableGuard:         *noGuard,
		GuardRequestRate:     *guardRate,
		GuardQuarantineScore: *guardScore,
		Codec:                *codecName,
		RetxAttempts:         *retxN,
		RetxBackoffBase:      *retxBase,
		RetxInflight:         *retxCap,
		Metrics:              reg,
	}
	var ring *flight.Ring
	if *traceBuf > 0 {
		ring = flight.NewRing(*traceBuf)
		cfg.Trace = ring
	}
	n := node.New(cfg, tr)
	n.Start()
	role := "member"
	if *source {
		role = "source"
	}
	fmt.Printf("omcast-node: %s listening on %s (codec %s)\n",
		role, n.Addr(), wire.CodecByName(*codecName).Name())
	if *httpAddr != "" {
		srv := &http.Server{Addr: *httpAddr, Handler: newMux(n, reg, ring)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "omcast-node: http: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("omcast-node: metrics on http://%s/metrics\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	//lint:ignore no-wallclock reason: live protocol node; real time is the correct clock here
	ticker := time.NewTicker(*status)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nomcast-node: leaving gracefully")
			n.Stop()
			return 0
		case <-ticker.C:
			s := n.Stats()
			fmt.Printf("attached=%-5v depth=%d parent=%-22s children=%d packet=%d repaired=%d rejoins=%d failovers=%d switches=%d known=%d starving=%.2f%% quarantined=%d rejects=%d ctrl=%d retx=%d acked=%d expired=%d\n",
				s.Attached, s.Depth, s.Parent, s.Children, s.HighestPacket,
				s.PacketsRepaired, s.Rejoins, s.Failovers, s.Switches, s.KnownMembers,
				s.StarvingRatio()*100, s.QuarantinedPeers, s.WireRejects,
				s.CtrlSent, s.RetxSent, s.RetxAcked, s.RetxExpired)
		}
	}
}
