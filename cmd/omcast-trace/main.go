// Command omcast-trace runs one simulated session and streams its overlay
// events (joins, rejoins, departures, failures, ROST switches) as JSON lines
// — a machine-readable feed for offline analysis or visualisation.
//
// Usage:
//
//	omcast-trace -alg rost -size 2000 > session.jsonl
//	omcast-trace -alg min-depth -size 500 -measure 30m | jq .event | sort | uniq -c
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algName = flag.String("alg", "rost", "algorithm: min-depth, longest-first, relaxed-bo, relaxed-to, rost")
		seed    = flag.Int64("seed", 1, "random seed")
		size    = flag.Int("size", 1000, "steady-state member count")
		warmup  = flag.Duration("warmup", 30*time.Minute, "warm-up horizon")
		measure = flag.Duration("measure", time.Hour, "measurement window")
		small   = flag.Bool("small", false, "use the reduced underlay")
	)
	flag.Parse()

	alg, ok := map[string]omcast.Algorithm{
		"min-depth":     omcast.MinimumDepth,
		"longest-first": omcast.LongestFirst,
		"relaxed-bo":    omcast.RelaxedBandwidthOrdered,
		"relaxed-to":    omcast.RelaxedTimeOrdered,
		"rost":          omcast.ROST,
	}[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "omcast-trace: unknown algorithm %q\n", *algName)
		return 2
	}
	cfg := omcast.Config{
		Seed:       *seed,
		Algorithm:  alg,
		TargetSize: *size,
		Warmup:     *warmup,
		Measure:    *measure,
	}
	if *small {
		cfg.Topology = omcast.SmallTopology()
	}
	out := bufio.NewWriter(os.Stdout)
	res, err := omcast.RunWithTrace(cfg, out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: flushing: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: %.2f disruptions/node, %.0fms delay, %d switches\n",
		res.Algorithm, res.AvgDisruptions, res.AvgServiceDelayMS, res.Switches)
	return 0
}
