// Command omcast-bench runs the tier-1 benchmark suite, writes a
// BENCH_<date>.json report, and compares it against the previous report,
// exiting non-zero when any case's ns/op regressed past the threshold. It
// seeds and extends the repo's performance trajectory without `go test`.
//
// Usage:
//
//	omcast-bench                          # full suite, compare to BENCH_baseline.json
//	omcast-bench -quick -o BENCH_ci.json  # CI smoke pass
//	omcast-bench -baseline ""             # measure only, no comparison
//	omcast-bench -threshold 0.10          # stricter gate
//	omcast-bench -scale -memlimit 32GiB   # add the fig-scale sweep (up to M=10^6)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"omcast/internal/bench"
	"omcast/internal/lint"
	"omcast/internal/runtimecfg"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out       = flag.String("o", "", "output report path (default BENCH_<date>.json)")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "previous report to compare against (empty disables)")
		threshold = flag.Float64("threshold", 0.25, "ns/op regression threshold as a fraction (0.25 = +25%)")
		quick     = flag.Bool("quick", false, "reduced suite for CI smoke passes")
		scale     = flag.Bool("scale", false, "also run the fig-scale sweep (bytes/member, ns/event) into the report")
		scaleSz   = flag.String("scale-sizes", "", "comma-separated member counts for -scale (default 1000,10000,100000,1000000)")
		memlimit  = flag.String("memlimit", "", "soft Go runtime memory limit, e.g. 8GiB (default: no limit)")
		gcpct     = flag.Int("gcpercent", -1, "GOGC percentage (default -1: keep the runtime default of 100)")
	)
	flag.Parse()

	if _, err := runtimecfg.Apply(*memlimit, *gcpct); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-bench: %v\n", err)
		return 2
	}

	//lint:ignore no-wallclock reason: report naming and metadata only; never feeds simulation state
	date := time.Now().UTC().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	fmt.Printf("running tier-1 benchmark suite (quick=%v)...\n", *quick)
	rep, err := bench.Run(date, *quick, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-bench: %v\n", err)
		return 1
	}
	if *scale {
		sizes := bench.DefaultScaleSizes()
		if *scaleSz != "" {
			parsed, perr := parseSizes(*scaleSz)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "omcast-bench: %v\n", perr)
				return 2
			}
			sizes = parsed
		}
		fmt.Printf("running fig-scale sweep %v (quick=%v)...\n", sizes, *quick)
		points, serr := bench.RunScale(sizes, *quick, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
		if serr != nil {
			fmt.Fprintf(os.Stderr, "omcast-bench: %v\n", serr)
			return 1
		}
		rep.Scale = points
	}
	if stats, err := analyzerStats(); err != nil {
		// The analyzer riding along must not sink a perf run.
		fmt.Fprintf(os.Stderr, "omcast-bench: analyzer stats skipped: %v\n", err)
	} else {
		rep.Analyzer = stats
	}
	if err := rep.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-bench: %v\n", err)
		return 1
	}
	fmt.Printf("report written to %s\n", path)

	if *baseline == "" {
		return 0
	}
	prev, err := bench.ReadReport(*baseline)
	if os.IsNotExist(err) {
		fmt.Printf("no baseline at %s; skipping comparison (commit this report to seed one)\n", *baseline)
		return 0
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-bench: %v\n", err)
		return 1
	}
	deltas, regressed := bench.Compare(prev, rep, *threshold)
	fmt.Printf("\ncomparison against %s (%s, threshold +%.0f%%):\n", *baseline, prev.Date, *threshold*100)
	for _, d := range deltas {
		flag := "  "
		if d.Regressed {
			flag = "!!"
		}
		fmt.Printf("%s %-26s %12.1f -> %12.1f ns/op (%+.1f%%)  allocs %d -> %d\n",
			flag, d.Name, d.PrevNs, d.CurNs, (d.Ratio-1)*100, d.PrevAlloc, d.CurAlloc)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "omcast-bench: ns/op regression beyond +%.0f%% against %s\n", *threshold*100, *baseline)
		return 1
	}
	fmt.Println("no regressions beyond threshold")
	return 0
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// analyzerStats runs the full typed lint suite over the module and returns
// the omcast-lint -stats figures (per-rule findings, suppressions, wall time)
// for the report's analyzer block.
func analyzerStats() (map[string]float64, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		return nil, err
	}
	return lint.StatsMap(lint.RunAnalysis(pkgs, lint.DefaultConfig())), nil
}
