// The reference-node (referee) mechanism of Section 3.4: because ROST
// promotes nodes by bandwidth and age, a member could lie about either to
// climb the tree (or to park a malicious node near the source). Each member
// therefore gets referee witnesses it cannot choose itself:
//
//   - Age referees: when a member joins, its parent records the joining time
//     with rage > 1 randomly chosen nodes, which keep heartbeat connections
//     with the member and vouch for its age.
//   - Bandwidth referees: the parent hands the newcomer a measurer set that
//     jointly measures its effective outbound bandwidth; the aggregate is
//     stored with rbw > 1 bandwidth referees.
//
// When a referee departs, the member's parent assigns a replacement that
// synchronises with the surviving referees. If every referee of a record is
// lost at once, the corresponding evidence is gone: the age is re-witnessed
// from the current time (the member provably loses its seniority) and the
// bandwidth is re-measured.

package rost

import (
	"time"

	"omcast/internal/metrics"
	"omcast/internal/overlay"
	"omcast/internal/xrand"
)

// Referee-set sizes; the paper requires both to exceed one for fault
// tolerance.
const (
	// DefaultAgeReferees is the default rage.
	DefaultAgeReferees = 3
	// DefaultBandwidthReferees is the default rbw.
	DefaultBandwidthReferees = 3
	// DefaultClaimTolerance is the slack allowed between a claimed BTP and
	// the referee-computed BTP before the claim is rejected (measurement
	// noise, heartbeat-interval age skew).
	DefaultClaimTolerance = 0.05
)

// refereeRecord is the witnessed evidence about one member.
type refereeRecord struct {
	ageReferees []overlay.MemberID
	bwReferees  []overlay.MemberID
	// witnessedJoin is the join time the age referees vouch for.
	witnessedJoin time.Duration
	// measuredBW is the aggregate outbound bandwidth the measurer set
	// observed. Measurements see real traffic, so cheaters cannot inflate
	// this value.
	measuredBW float64
}

// Referees implements the reference-node mechanism over one tree.
type Referees struct {
	tree      *overlay.Tree
	rng       *xrand.Source
	rage      int
	rbw       int
	tolerance float64

	records map[overlay.MemberID]*refereeRecord
	// cheatFactor maps cheating members to the multiplier they apply to
	// their advertised BTP (test/attack injection).
	cheatFactor map[overlay.MemberID]float64

	// Verifications counts BTP checks performed.
	Verifications int
	// Rejections counts claims the referees exposed as inflated.
	Rejections int
	// Replacements counts referee hand-offs after referee departures.
	Replacements int
	// AgeResets counts members whose whole age-referee set died at once,
	// losing their provable seniority.
	AgeResets int

	met refereeMetrics
}

// refereeMetrics mirrors the referee counters into a metrics registry so
// traced runs can watch verification pressure and cheating exposure evolve.
// All pointers stay nil (and no-op) until Instrument is called.
type refereeMetrics struct {
	verifications *metrics.Counter
	rejections    *metrics.Counter
	replacements  *metrics.Counter
	ageResets     *metrics.Counter
	cheaters      *metrics.Gauge
}

// Instrument registers the referee mechanism's instruments on reg.
func (r *Referees) Instrument(reg *metrics.Registry) {
	r.met = refereeMetrics{
		verifications: reg.Counter("omcast_referee_verifications_total", "BTP claims checked against referee evidence."),
		rejections:    reg.Counter("omcast_referee_rejections_total", "BTP claims the referees exposed as inflated."),
		replacements:  reg.Counter("omcast_referee_replacements_total", "Referee hand-offs after referee departures."),
		ageResets:     reg.Counter("omcast_referee_age_resets_total", "Members whose whole age-referee set died, losing provable seniority."),
		cheaters:      reg.Gauge("omcast_referee_marked_cheaters", "Members currently marked as inflating their claims."),
	}
	r.met.cheaters.Set(float64(len(r.cheatFactor)))
}

// RefereeConfig parameterises NewReferees; zero fields take defaults.
type RefereeConfig struct {
	AgeReferees       int     // rage, must end up > 1
	BandwidthReferees int     // rbw, must end up > 1
	ClaimTolerance    float64 // relative slack on claims
}

// NewReferees creates the mechanism for tree, drawing referee choices from
// rng.
func NewReferees(tree *overlay.Tree, rng *xrand.Source, cfg RefereeConfig) *Referees {
	if cfg.AgeReferees <= 1 {
		cfg.AgeReferees = DefaultAgeReferees
	}
	if cfg.BandwidthReferees <= 1 {
		cfg.BandwidthReferees = DefaultBandwidthReferees
	}
	if cfg.ClaimTolerance <= 0 {
		cfg.ClaimTolerance = DefaultClaimTolerance
	}
	return &Referees{
		tree:        tree,
		rng:         rng,
		rage:        cfg.AgeReferees,
		rbw:         cfg.BandwidthReferees,
		tolerance:   cfg.ClaimTolerance,
		records:     make(map[overlay.MemberID]*refereeRecord),
		cheatFactor: make(map[overlay.MemberID]float64),
	}
}

// Enroll registers referee witnesses for a joining member: the parent
// records the member's joining time with the age referees and has the
// measurer set measure its outbound bandwidth. It is idempotent: rejoining
// after a parent failure does not reset the member's witnessed age.
func (r *Referees) Enroll(m *overlay.Member, now time.Duration) {
	if _, ok := r.records[m.ID]; ok {
		return
	}
	// The witnessed join time is the member's actual join time (for members
	// seeded into an already-running overlay this predates `now`); a member
	// can never claim to be older than the enrolment instant.
	witnessed := m.JoinTime
	if witnessed > now {
		witnessed = now
	}
	r.records[m.ID] = &refereeRecord{
		ageReferees:   r.pickReferees(m, r.rage),
		bwReferees:    r.pickReferees(m, r.rbw),
		witnessedJoin: witnessed,
		measuredBW:    m.Bandwidth,
	}
}

// Forget drops the record of a departed member and is also the hook where
// surviving members detect departed referees (heartbeat timeout) and ask for
// replacements.
func (r *Referees) Forget(id overlay.MemberID) {
	delete(r.records, id)
	delete(r.cheatFactor, id)
	r.met.cheaters.Set(float64(len(r.cheatFactor)))
}

// MarkCheater makes a member advertise factor x its true BTP. A factor of 1
// (or less than or equal to zero) clears the mark.
func (r *Referees) MarkCheater(id overlay.MemberID, factor float64) {
	if factor <= 0 || factor == 1 {
		delete(r.cheatFactor, id)
	} else {
		r.cheatFactor[id] = factor
	}
	r.met.cheaters.Set(float64(len(r.cheatFactor)))
}

// ClaimedBTP returns the BTP the member advertises to its neighbours:
// truthful for honest members, inflated for marked cheaters.
func (r *Referees) ClaimedBTP(m *overlay.Member, now time.Duration) float64 {
	btp := m.BTP(now)
	if f, ok := r.cheatFactor[m.ID]; ok {
		return btp * f
	}
	return btp
}

// ClaimedBandwidth returns the outbound bandwidth the member advertises
// (cheaters inflate this too — Section 3.4's threat is a node reporting "a
// large bandwidth or [that it] has stayed in the overlay for a long time").
func (r *Referees) ClaimedBandwidth(m *overlay.Member) float64 {
	if f, ok := r.cheatFactor[m.ID]; ok {
		return m.Bandwidth * f
	}
	return m.Bandwidth
}

// VerifyBTP checks a claimed BTP against the referee evidence, repairing the
// referee sets first (departed referees are replaced; fully lost age
// evidence resets the witnessed age). It reports whether the claim is
// consistent with the witnesses.
func (r *Referees) VerifyBTP(m *overlay.Member, claimed float64, now time.Duration) bool {
	rec, ok := r.records[m.ID]
	if !ok {
		// No evidence at all: enrol from scratch with an untrusted age — the
		// member's claimed join time cannot be verified, so its provable age
		// starts now and the claim is honoured only if it matches a zero-age
		// BTP.
		rec = &refereeRecord{
			ageReferees:   r.pickReferees(m, r.rage),
			bwReferees:    r.pickReferees(m, r.rbw),
			witnessedJoin: now,
			measuredBW:    m.Bandwidth,
		}
		r.records[m.ID] = rec
	}
	r.maintain(m, rec, now)
	r.Verifications++
	r.met.verifications.Inc()
	age := now - rec.witnessedJoin
	if age < 0 {
		age = 0
	}
	trueBTP := rec.measuredBW * age.Seconds()
	if claimed > trueBTP*(1+r.tolerance)+1e-9 {
		r.Rejections++
		r.met.rejections.Inc()
		return false
	}
	return true
}

// maintain replaces departed referees. The member cannot pick its own
// replacements — its parent does (no incentive to collude with a child that
// competes for its own position) — so replacements are drawn randomly like
// the originals.
func (r *Referees) maintain(m *overlay.Member, rec *refereeRecord, now time.Duration) {
	if r.allDead(rec.ageReferees) {
		// Every witness of the join time died before a replacement could
		// sync: the age evidence is unrecoverable and the member's provable
		// age restarts now.
		rec.witnessedJoin = now
		r.AgeResets++
		r.met.ageResets.Inc()
		rec.ageReferees = r.pickReferees(m, r.rage)
	} else {
		rec.ageReferees = r.replaceDead(m, rec.ageReferees)
	}
	if r.allDead(rec.bwReferees) {
		// Bandwidth can simply be re-measured by a fresh measurer set.
		rec.measuredBW = m.Bandwidth
		rec.bwReferees = r.pickReferees(m, r.rbw)
	} else {
		rec.bwReferees = r.replaceDead(m, rec.bwReferees)
	}
}

// replaceDead swaps departed referees for fresh ones; at least one witness
// survives (callers handle the all-dead case) and synchronises the
// newcomers.
func (r *Referees) replaceDead(m *overlay.Member, ids []overlay.MemberID) []overlay.MemberID {
	want := len(ids)
	out := ids[:0]
	for _, id := range ids {
		if r.tree.Member(id) != nil {
			out = append(out, id)
		}
	}
	missing := want - len(out)
	if missing == 0 {
		return out
	}
	fresh := r.pickReferees(m, missing)
	out = append(out, fresh...)
	r.Replacements += len(fresh)
	r.met.replacements.Add(float64(len(fresh)))
	return out
}

// allDead reports whether every referee in ids has departed.
func (r *Referees) allDead(ids []overlay.MemberID) bool {
	for _, id := range ids {
		if r.tree.Member(id) != nil {
			return false
		}
	}
	return true
}

// pickReferees draws n random live members distinct from m. In a small
// overlay fewer than n may be available.
func (r *Referees) pickReferees(m *overlay.Member, n int) []overlay.MemberID {
	if n <= 0 {
		return nil
	}
	cands := r.tree.Sample(r.rng, n, m)
	ids := make([]overlay.MemberID, 0, len(cands))
	for _, c := range cands {
		ids = append(ids, c.ID)
	}
	return ids
}
