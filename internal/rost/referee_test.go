package rost

import (
	"testing"
	"time"

	"omcast/internal/eventsim"
	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func refFixture(t *testing.T) (*overlay.Tree, *Referees) {
	t.Helper()
	env := testEnv(42)
	tree, err := overlay.NewTree(0, 100, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReferees(tree, xrand.New(9), RefereeConfig{})
	return tree, r
}

func addMember(t *testing.T, tree *overlay.Tree, r *Referees, attach topology.NodeID, bw float64, now time.Duration) *overlay.Member {
	t.Helper()
	m := tree.NewMember(attach, bw, now)
	if err := tree.Attach(m, tree.Root()); err != nil {
		t.Fatal(err)
	}
	r.Enroll(m, now)
	return m
}

func TestHonestClaimAccepted(t *testing.T) {
	tree, r := refFixture(t)
	for i := 0; i < 10; i++ {
		addMember(t, tree, r, topology.NodeID(i), 2, 0)
	}
	m := addMember(t, tree, r, 99, 4, 10*time.Second)
	now := 500 * time.Second
	if !r.VerifyBTP(m, r.ClaimedBTP(m, now), now) {
		t.Fatal("honest claim rejected")
	}
	if r.Rejections != 0 {
		t.Fatalf("Rejections = %d, want 0", r.Rejections)
	}
}

func TestCheaterCaught(t *testing.T) {
	tree, r := refFixture(t)
	for i := 0; i < 10; i++ {
		addMember(t, tree, r, topology.NodeID(i), 2, 0)
	}
	cheat := addMember(t, tree, r, 99, 1, 100*time.Second)
	r.MarkCheater(cheat.ID, 10)
	now := 200 * time.Second
	claimed := r.ClaimedBTP(cheat, now)
	if claimed <= cheat.BTP(now) {
		t.Fatal("cheat mark did not inflate the claim")
	}
	if r.VerifyBTP(cheat, claimed, now) {
		t.Fatal("inflated claim accepted")
	}
	if r.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", r.Rejections)
	}
	// Clearing the mark restores honesty.
	r.MarkCheater(cheat.ID, 1)
	if !r.VerifyBTP(cheat, r.ClaimedBTP(cheat, now), now) {
		t.Fatal("honest claim rejected after clearing cheat mark")
	}
}

func TestEnrollIdempotent(t *testing.T) {
	tree, r := refFixture(t)
	for i := 0; i < 5; i++ {
		addMember(t, tree, r, topology.NodeID(i), 2, 0)
	}
	m := addMember(t, tree, r, 50, 2, 10*time.Second)
	// Re-enrolling later (e.g. after a failure rejoin) must not reset the
	// witnessed join time.
	r.Enroll(m, 500*time.Second)
	rec := r.records[m.ID]
	if rec.witnessedJoin != 10*time.Second {
		t.Fatalf("witnessedJoin = %v after re-enroll, want 10s", rec.witnessedJoin)
	}
}

func TestRefereeReplacement(t *testing.T) {
	tree, r := refFixture(t)
	var pool []*overlay.Member
	for i := 0; i < 20; i++ {
		pool = append(pool, addMember(t, tree, r, topology.NodeID(i), 2, 0))
	}
	m := addMember(t, tree, r, 99, 3, 0)
	rec := r.records[m.ID]
	if len(rec.ageReferees) != DefaultAgeReferees {
		t.Fatalf("age referees = %d, want %d", len(rec.ageReferees), DefaultAgeReferees)
	}
	// Kill one age referee (but not all): verification must heal the set and
	// keep the original witnessed join time.
	victimID := rec.ageReferees[0]
	var victim *overlay.Member
	for _, c := range pool {
		if c.ID == victimID {
			victim = c
		}
	}
	if victim == nil {
		t.Fatal("referee not in pool") // referees are drawn from live members
	}
	if _, err := tree.Remove(victim); err != nil {
		t.Fatal(err)
	}
	r.Forget(victim.ID)
	if !r.VerifyBTP(m, m.BTP(100*time.Second), 100*time.Second) {
		t.Fatal("claim rejected during referee replacement")
	}
	if r.Replacements == 0 {
		t.Fatal("no replacement recorded")
	}
	rec = r.records[m.ID]
	if rec.witnessedJoin != 0 {
		t.Fatal("partial referee loss must not reset age")
	}
	for _, id := range rec.ageReferees {
		if tree.Member(id) == nil {
			t.Fatal("dead referee left in set")
		}
	}
}

func TestAgeResetWhenAllRefereesDie(t *testing.T) {
	tree, r := refFixture(t)
	var pool []*overlay.Member
	for i := 0; i < 20; i++ {
		pool = append(pool, addMember(t, tree, r, topology.NodeID(i), 2, 0))
	}
	m := addMember(t, tree, r, 99, 3, 0)
	rec := r.records[m.ID]
	dead := make(map[overlay.MemberID]bool)
	for _, id := range rec.ageReferees {
		dead[id] = true
	}
	for _, c := range pool {
		if dead[c.ID] {
			if _, err := tree.Remove(c); err != nil {
				t.Fatal(err)
			}
			r.Forget(c.ID)
		}
	}
	now := 300 * time.Second
	// The member's true age is 300 s but its provable age collapses to zero,
	// so a truthful-age claim is now rejected.
	if r.VerifyBTP(m, m.BTP(now), now) {
		t.Fatal("claim accepted with no surviving age witnesses")
	}
	if r.AgeResets != 1 {
		t.Fatalf("AgeResets = %d, want 1", r.AgeResets)
	}
	// From the reset point the member re-accumulates provable age.
	later := now + 500*time.Second
	provable := r.records[m.ID].measuredBW * (later - now).Seconds()
	if !r.VerifyBTP(m, provable*0.99, later) {
		t.Fatal("claim within re-accumulated age rejected")
	}
}

func TestVerifyUnknownMemberEnrollsFresh(t *testing.T) {
	tree, r := refFixture(t)
	for i := 0; i < 5; i++ {
		addMember(t, tree, r, topology.NodeID(i), 2, 0)
	}
	m := tree.NewMember(99, 3, 0)
	if err := tree.Attach(m, tree.Root()); err != nil {
		t.Fatal(err)
	}
	// Never enrolled: a claim matching a fresh (zero-age) BTP passes, an
	// aged claim does not.
	now := 100 * time.Second
	if r.VerifyBTP(m, m.BTP(now), now) {
		t.Fatal("aged claim accepted for unenrolled member")
	}
	if !r.VerifyBTP(m, 0, now) {
		t.Fatal("zero claim rejected for freshly enrolled member")
	}
}

// TestCheaterCannotClimb runs ROST with referees enabled and a marked
// cheater: the cheater advertises 50x its true BTP but must never displace
// its honest parent.
func TestCheaterCannotClimb(t *testing.T) {
	env := testEnv(11)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	refs := NewReferees(tree, xrand.New(3), RefereeConfig{})
	p := New(tree, env, Config{SwitchInterval: 60 * time.Second, Referees: refs})
	sim := eventsim.New()

	var parent, cheat *overlay.Member
	sim.Schedule(0, func(s *eventsim.Simulator) {
		parent = tree.NewMember(1, 2, 0)
		if err := p.Join(tree, parent, 0); err != nil {
			t.Errorf("parent join: %v", err)
		}
		p.Start(s, parent)
	})
	sim.Schedule(10*time.Second, func(s *eventsim.Simulator) {
		cheat = tree.NewMember(2, 2, s.Now()) // equal bandwidth: guard passes
		if err := p.Join(tree, cheat, s.Now()); err != nil {
			t.Errorf("cheat join: %v", err)
		}
		refs.MarkCheater(cheat.ID, 50)
		p.Start(s, cheat)
	})
	if err := sim.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if cheat.Parent() != parent {
		t.Fatal("cheater climbed above its honest parent")
	}
	if p.Rejected == 0 {
		t.Fatal("no claims rejected despite a persistent cheater")
	}
	// Control: the same scenario without referees lets the false claim win.
	env2 := testEnv(11)
	tree2, err := overlay.NewTree(0, 1, env2.Delay)
	if err != nil {
		t.Fatal(err)
	}
	refs2 := NewReferees(tree2, xrand.New(3), RefereeConfig{})
	// Referees drive the claims but are not wired into the protocol, so
	// nothing verifies them.
	p2 := New(tree2, env2, Config{SwitchInterval: 60 * time.Second})
	_ = refs2
	sim2 := eventsim.New()
	var parent2, cheat2 *overlay.Member
	sim2.Schedule(0, func(s *eventsim.Simulator) {
		parent2 = tree2.NewMember(1, 2, 0)
		if err := p2.Join(tree2, parent2, 0); err != nil {
			t.Errorf("parent2 join: %v", err)
		}
		p2.Start(s, parent2)
	})
	sim2.Schedule(10*time.Second, func(s *eventsim.Simulator) {
		cheat2 = tree2.NewMember(2, 2, s.Now())
		// Without the referee mechanism a cheater fakes a small join time
		// directly (nothing validates it).
		cheat2.JoinTime = -10000 * time.Second
		if err := p2.Join(tree2, cheat2, s.Now()); err != nil {
			t.Errorf("cheat2 join: %v", err)
		}
		p2.Start(s, cheat2)
	})
	if err := sim2.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if cheat2.Parent() == parent2 {
		t.Fatal("control scenario: cheater failed to climb even without referees")
	}
}

func TestRefereeConfigDefaults(t *testing.T) {
	tree, _ := refFixture(t)
	r := NewReferees(tree, xrand.New(1), RefereeConfig{AgeReferees: 1, BandwidthReferees: -4, ClaimTolerance: -1})
	if r.rage <= 1 || r.rbw <= 1 {
		t.Fatal("referee counts must be forced above one")
	}
	if r.tolerance <= 0 {
		t.Fatal("tolerance must default positive")
	}
}
