package eventsim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the kernel's steady-state throughput: one
// schedule plus one fire per iteration, over a standing queue of 10k events.
// This is the regime every long simulation run lives in, and with the event
// pool it must not allocate.
func BenchmarkScheduleFire(b *testing.B) {
	sim := New()
	for i := 0; i < 10000; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, func(*Simulator) {})
	}
	at := 10 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(at, func(*Simulator) {})
		at += time.Millisecond
		// Fire exactly the one standing event due at i ms.
		if err := sim.Run(time.Duration(i) * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := sim.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunDense measures draining one million same-window events,
// including the cold-start cost of growing the queue and event pool.
func BenchmarkRunDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := New()
		for j := 0; j < 1_000_000; j++ {
			sim.Schedule(time.Duration(j%1000)*time.Millisecond, func(*Simulator) {})
		}
		if err := sim.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleCancelChurn measures the schedule/cancel regime that the
// compaction sweep keeps bounded: every event is canceled before it fires.
func BenchmarkScheduleCancelChurn(b *testing.B) {
	sim := New()
	at := time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := sim.Schedule(at, func(*Simulator) {})
		at += time.Millisecond
		sim.Cancel(id)
	}
}
