package overlay

import (
	"testing"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// TestSampleAllocCeiling pins Sample's steady-state allocation budget: one
// allocation per call (the result slice the caller owns). The per-call dedup
// map is gone — duplicates are tracked in the tree's epoch-stamped scratch
// buffer. A regression here fails go test, not just the bench report.
func TestSampleAllocCeiling(t *testing.T) {
	tree, err := NewTree(0, 100, func(a, b topology.NodeID) time.Duration { return time.Millisecond })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tree.NewMember(topology.NodeID(i), 0.5, time.Duration(i))
	}
	rng := xrand.New(1)
	// One warm call sizes the scratch buffer.
	if got := tree.Sample(rng, 100, nil); len(got) != 100 {
		t.Fatalf("warm sample returned %d members", len(got))
	}
	allocs := testing.AllocsPerRun(200, func() {
		if got := tree.Sample(rng, 100, nil); len(got) != 100 {
			t.Fatal("short sample")
		}
	})
	if allocs > 1 {
		t.Fatalf("Sample allocates %.1f times per call, want <= 1 (the result slice)", allocs)
	}
}
