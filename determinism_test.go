package omcast_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"omcast"
)

// fingerprintTree renders every metric of a tree-level result, including the
// full per-member CDF vector, so that any map-order nondeterminism the
// linter's heuristics miss still shows up as a byte difference.
func fingerprintTree(r omcast.TreeResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "alg=%v avgDisr=%v avgReco=%v perLifeDisr=%v perLifeReco=%v\n",
		r.Algorithm, r.AvgDisruptions, r.AvgReconnections,
		r.PerLifetimeDisruptions, r.PerLifetimeReconnections)
	fmt.Fprintf(&sb, "delay=%v stretch=%v size=%v departures=%d\n",
		r.AvgServiceDelayMS, r.AvgStretch, r.AvgSize, r.Departures)
	fmt.Fprintf(&sb, "switches=%d aborts=%d backoffs=%d rejected=%d\n",
		r.Switches, r.SwitchAborts, r.LockBackoffs, r.RejectedClaims)
	fmt.Fprintf(&sb, "cheaters=%d cheatDepth=%v honestDepth=%v\n",
		r.CheaterCount, r.CheaterMeanDepth, r.HonestMeanDepth)
	fmt.Fprintf(&sb, "disruptionCounts=%v\n", r.DisruptionCounts)
	return sb.String()
}

func fingerprintStream(r omcast.StreamResult) string {
	var sb strings.Builder
	sb.WriteString(fingerprintTree(r.TreeResult))
	fmt.Fprintf(&sb, "starving=%v members=%d episodes=%d requests=%d eln=%d repaired=%d lost=%d\n",
		r.AvgStarvingRatio, r.StreamMembers, r.Episodes, r.RepairRequests,
		r.ELNMessages, r.PacketsRepaired, r.PacketsLost)
	fmt.Fprintf(&sb, "starvingRatios=%v\n", r.StarvingRatios)
	return sb.String()
}

// TestRunByteIdentical runs the same seed twice through the full ROST stack
// (referees and cheater injection on, exercising every seeded sub-stream)
// and requires byte-identical metric output.
func TestRunByteIdentical(t *testing.T) {
	cfg := omcast.Config{
		Seed:           42,
		Algorithm:      omcast.ROST,
		TargetSize:     250,
		Topology:       omcast.SmallTopology(),
		Warmup:         600 * time.Second,
		Measure:        900 * time.Second,
		EnableReferees: true,
		Cheaters:       5,
	}
	run := func() string {
		r, err := omcast.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintTree(r)
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("same seed produced different metrics:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
}

// TestRunStreamingByteIdentical covers the packet-level layer, whose
// starving-ratio vector is finalized from a member-state map (the exact spot
// where unsorted iteration once reordered the output CDF).
func TestRunStreamingByteIdentical(t *testing.T) {
	cfg := omcast.Config{
		Seed:       1337,
		Algorithm:  omcast.ROST,
		TargetSize: 200,
		Topology:   omcast.SmallTopology(),
		Warmup:     600 * time.Second,
		Measure:    900 * time.Second,
	}
	scfg := omcast.StreamConfig{Recovery: omcast.CER, GroupSize: 3}
	run := func() string {
		r, err := omcast.RunStreaming(cfg, scfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintStream(r)
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("same seed produced different streaming metrics:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
}

// TestSampledTraceByteIdentical is the acceptance gate for the metrics
// layer's determinism: a traced run with periodic registry snapshots must
// produce a byte-identical JSONL stream — events AND interleaved sample
// lines — when repeated with the same seed. Any wall-clock read, map-order
// leak or float-accumulation reorder inside the sim-side metrics path shows
// up here as a diff.
func TestSampledTraceByteIdentical(t *testing.T) {
	cfg := omcast.Config{
		Seed:       7,
		Algorithm:  omcast.ROST,
		TargetSize: 200,
		Topology:   omcast.SmallTopology(),
		Warmup:     600 * time.Second,
		Measure:    900 * time.Second,
	}
	opts := omcast.TraceOptions{SampleEvery: 2 * time.Minute}
	run := func() string {
		var buf strings.Builder
		if _, err := omcast.RunWithTraceOptions(cfg, &buf, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	second := run()
	if !strings.Contains(first, `"event":"sample"`) {
		t.Fatal("sampled run emitted no sample lines")
	}
	if first != second {
		t.Fatal("same seed produced different sampled trace streams")
	}
}

// TestSampledStreamingTraceByteIdentical extends the gate to the packet
// level: CER episode counters and repair events must be as reproducible as
// the overlay events.
func TestSampledStreamingTraceByteIdentical(t *testing.T) {
	cfg := omcast.Config{
		Seed:       9,
		Algorithm:  omcast.ROST,
		TargetSize: 150,
		Topology:   omcast.SmallTopology(),
		Warmup:     600 * time.Second,
		Measure:    900 * time.Second,
	}
	scfg := omcast.StreamConfig{Recovery: omcast.CER, GroupSize: 3}
	opts := omcast.TraceOptions{SampleEvery: 3 * time.Minute}
	run := func() string {
		var buf strings.Builder
		if _, err := omcast.RunStreamingWithTrace(cfg, scfg, &buf, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	second := run()
	for _, want := range []string{`"event":"sample"`, `"event":"repair"`} {
		if !strings.Contains(first, want) {
			t.Fatalf("sampled streaming run emitted no %s lines", want)
		}
	}
	if first != second {
		t.Fatal("same seed produced different sampled streaming trace streams")
	}
}

// TestSpanTraceByteIdentical extends the determinism gate to the causal
// span layer: a span-enabled trace must be byte-identical across reruns at
// a fixed seed — span IDs derive from (seed, member, sequence) alone, so
// nothing run-local (pointers, global counters, wall time) may leak in.
func TestSpanTraceByteIdentical(t *testing.T) {
	cfg := omcast.Config{
		Seed:       11,
		Algorithm:  omcast.ROST,
		TargetSize: 200,
		Topology:   omcast.SmallTopology(),
		Warmup:     600 * time.Second,
		Measure:    900 * time.Second,
	}
	opts := omcast.TraceOptions{Spans: true}
	run := func() string {
		var buf strings.Builder
		if _, err := omcast.RunWithTraceOptions(cfg, &buf, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	second := run()
	for _, want := range []string{`"event":"span"`, `"kind":"rejoin"`} {
		if !strings.Contains(first, want) {
			t.Fatalf("span-enabled run emitted no %s lines", want)
		}
	}
	if first != second {
		t.Fatal("same seed produced different span traces")
	}
}

// TestSpanStreamingTraceByteIdentical covers the packet level (repair
// episodes with fetch/stall stages) and additionally runs the two traced
// simulations concurrently: if span IDs or sequences lived in any shared
// state — the failure mode that would break byte-identity across the
// experiment engine's -workers fan-out — the interleaved runs would
// diverge from the serial baseline.
func TestSpanStreamingTraceByteIdentical(t *testing.T) {
	cfg := omcast.Config{
		Seed:       13,
		Algorithm:  omcast.ROST,
		TargetSize: 150,
		Topology:   omcast.SmallTopology(),
		Warmup:     600 * time.Second,
		Measure:    900 * time.Second,
	}
	scfg := omcast.StreamConfig{Recovery: omcast.CER, GroupSize: 3}
	opts := omcast.TraceOptions{Spans: true}
	run := func() string {
		var buf strings.Builder
		if _, err := omcast.RunStreamingWithTrace(cfg, scfg, &buf, opts); err != nil {
			t.Error(err)
			return ""
		}
		return buf.String()
	}
	serial := run()
	for _, want := range []string{`"kind":"rejoin"`, `"kind":"repair"`, `"kind":"fetch"`} {
		if !strings.Contains(serial, want) {
			t.Fatalf("streaming span run emitted no %s spans", want)
		}
	}
	results := make([]string, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != serial {
			t.Fatalf("concurrent run %d diverged from the serial trace", i)
		}
	}
}
