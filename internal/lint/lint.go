// Package lint is a from-scratch static analyzer enforcing the repo's
// determinism, simulation-safety and input-hardening invariants. The paper's
// evaluation rests on exactly reproducible event-driven runs: identical seeds
// must yield identical ROST switching decisions and CER recovery outcomes —
// and DSN 2006's whole premise is surviving misbehaving peers, so decoded
// wire input must not touch protocol state before validation. Unordered map
// iteration, wall-clock reads, stray global-RNG calls, hidden concurrency,
// unvalidated decode→use flows and unlocked access to mutex-guarded state all
// silently destroy one of those properties, so this package checks for them
// statically using only the standard library's go/ast, go/parser, go/token
// and go/types.
//
// The analyzer loads and type-checks every package in the module (see Load),
// builds a module-wide function index and a conservative intra-module call
// graph (see callgraph.go), runs a configurable set of analysis passes over
// the typed syntax trees, honors //lint:ignore <rule> reason: <text>
// suppression directives, audits those directives for staleness, and reports
// findings as file:line: rule: message diagnostics. cmd/omcast-lint is the
// CLI front end (text, JSON and SARIF output); CI runs it over ./... and
// fails on any finding.
//
// Pass families:
//
//   - syntactic scope rules (no-wallclock, no-global-rand, map-order,
//     no-goroutine-in-sim, float-accum) — unchanged in spirit from the first
//     analyzer generation, now running over the shared module index;
//   - handler-purity — transitive: an impurity (wall clock, go statement,
//     global or crypto entropy) is flagged anywhere reachable from an
//     eventsim.Handler through the static call graph, not just in the
//     handler's literal body;
//   - wire-taint — dataflow: values produced by internal/wire decode
//     functions are tainted until validated, and may not flow into node
//     state, cer/rost protocol calls, or map/slice indexes (see taint.go for
//     the source/sanitizer/sink model);
//   - lock-discipline — //guardedby:<mutex> annotations on struct fields are
//     checked against a per-function lock-state analysis (see locks.go).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding (filename, line, column).
	Pos token.Position
	// Rule names the rule that fired (or one of the reserved names
	// "bad-directive" / "stale-suppression" for directive hygiene findings).
	Rule string
	// Message explains the finding and how to fix or suppress it.
	Message string
}

// String renders the canonical file:line: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Reserved diagnostic names that are not rules and can be neither enabled,
// disabled, nor suppressed.
const (
	// RuleBadDirective reports malformed //lint:ignore comments.
	RuleBadDirective = "bad-directive"
	// RuleStaleSuppression reports directives that suppressed nothing.
	RuleStaleSuppression = "stale-suppression"
)

// Config scopes the rules to package sets and toggles rules on or off.
// Package patterns match an import path exactly, by final-elements suffix
// ("rost" matches "omcast/internal/rost"), or by prefix when they end in
// "/..." ("omcast/cmd/..." matches every command).
type Config struct {
	// SimPackages form the deterministic simulation kernel: all time must be
	// virtual, map iteration order must not leak into results, and no
	// concurrency primitives are allowed (the kernel is single-threaded).
	SimPackages []string
	// WallclockExtra extends the no-wallclock rule beyond SimPackages —
	// typically the CLI drivers, where progress timers are expected to carry
	// an explicit suppression directive.
	WallclockExtra []string
	// FloatPackages hold metric/statistics code checked by float-accum.
	FloatPackages []string
	// TaintStatePackages hold long-lived protocol state: a tainted wire value
	// stored into a struct field, map or slice there is a wire-taint finding.
	TaintStatePackages []string
	// TaintProtocolPackages hold protocol decision logic: passing a tainted
	// wire value into any of their functions is a wire-taint finding.
	TaintProtocolPackages []string
	// Enabled, when non-empty, restricts the run to exactly these rules.
	Enabled []string
	// Disabled lists rule names to skip entirely.
	Disabled []string
	// NoAudit turns the stale-suppression audit off. Run disables the audit
	// automatically whenever the effective rule set is filtered (a skipped
	// rule's suppressions would all look stale).
	NoAudit bool
}

// DefaultConfig returns the repository's invariant scopes.
func DefaultConfig() *Config {
	return &Config{
		SimPackages: []string{
			"omcast", // the root façade assembles and runs the simulation
			"eventsim", "overlay", "construct", "rost", "cer", "churn",
			"stream", "experiments", "xrand", "topology", "stats", "multitree",
			// The deterministic metrics backend is sim-safe by contract; its
			// concurrent sibling internal/metrics/live (suffix "live") is
			// deliberately outside this scope.
			"metrics",
			// The fault-injection model (rules, schedules, decision streams)
			// follows the same split: internal/faultnet is pure and
			// deterministic, internal/faultnet/live owns the timers and locks.
			"faultnet",
			// The wire codec (envelope validation included) is pure parsing:
			// no clocks, no goroutines, no map-order leaks.
			"wire",
			// The causal span layer mints deterministic IDs inside traced
			// simulations; its flight-recorder sibling tracing/flight (the
			// mutex ring live nodes dump over HTTP) stays outside, mirroring
			// the metrics / metrics/live split.
			"tracing",
			// The federation control plane schedules everything on the shared
			// simulator; it is deterministic end to end.
			"fleet",
		},
		WallclockExtra: []string{"omcast/cmd/...", "omcast/examples/..."},
		FloatPackages:  []string{"stats", "experiments", "stream", "multitree", "metrics", "fleet"},
		// The live protocol runtime owns the state an adversarial datagram is
		// trying to poison; cer and rost own the recovery/switching decisions
		// such a datagram is trying to steer.
		TaintStatePackages:    []string{"node"},
		TaintProtocolPackages: []string{"cer", "rost"},
	}
}

// ruleEnabled applies the Enabled allow-list and the Disabled deny-list.
func (c *Config) ruleEnabled(rule string) bool {
	if len(c.Enabled) > 0 {
		ok := false
		for _, e := range c.Enabled {
			if e == rule {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range c.Disabled {
		if d == rule {
			return false
		}
	}
	return true
}

// filtered reports whether the effective rule set differs from the full set.
func (c *Config) filtered() bool {
	return len(c.Enabled) > 0 || len(c.Disabled) > 0
}

// matchPackage reports whether the import path matches any pattern.
func matchPackage(path string, patterns []string) bool {
	for _, p := range patterns {
		switch {
		case p == path:
			return true
		case strings.HasSuffix(p, "/..."):
			prefix := strings.TrimSuffix(p, "/...")
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		case strings.HasSuffix(path, "/"+p):
			return true
		}
	}
	return false
}

// Rule is one analysis pass. Every rule sees the whole module (the shared
// function index and call graph live on *Module); package-scoped rules
// iterate m.Pkgs and apply their own scope predicate.
type Rule struct {
	// Name is the identifier used in diagnostics and directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// check runs the pass over the module and reports findings.
	check func(m *Module, cfg *Config, rep *reporter)
}

// Rules returns the full rule set in stable order.
func Rules() []*Rule {
	return []*Rule{
		ruleNoWallclock(),
		ruleNoGlobalRand(),
		ruleMapOrder(),
		ruleNoGoroutineInSim(),
		ruleHandlerPurity(),
		ruleFloatAccum(),
		ruleWireTaint(),
		ruleLockDiscipline(),
	}
}

// RuleNames returns the rule identifiers in the same order as Rules.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	return names
}

// reporter accumulates diagnostics for one rule pass.
type reporter struct {
	fset  *token.FileSet
	rule  string
	diags []Diagnostic
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	r.diags = append(r.diags, Diagnostic{
		Pos:     r.fset.Position(pos),
		Rule:    r.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// RuleStat is the per-rule cost/effect record of one analysis run.
type RuleStat struct {
	// Rule names the pass.
	Rule string `json:"rule"`
	// Findings counts surviving (non-suppressed) diagnostics.
	Findings int `json:"findings"`
	// Suppressed counts diagnostics silenced by directives.
	Suppressed int `json:"suppressed"`
	// Millis is the pass's wall time in milliseconds.
	Millis float64 `json:"wall_ms"`
}

// Result is the full outcome of one analysis run.
type Result struct {
	// Diags are the surviving diagnostics in position order.
	Diags []Diagnostic
	// Stats holds one entry per executed rule, in rule order, plus the
	// directive audit under the reserved stale-suppression name.
	Stats []RuleStat
	// TotalMillis is the whole run's wall time (rules + audit, not loading).
	TotalMillis float64
}

// Run executes every enabled rule over the given packages and returns the
// surviving (non-suppressed) diagnostics sorted by position. Malformed
// //lint:ignore directives are themselves reported and cannot be suppressed.
func Run(pkgs []*Package, cfg *Config) []Diagnostic {
	return RunAnalysis(pkgs, cfg).Diags
}

// RunAnalysis is Run plus per-rule statistics (finding counts, suppression
// counts, wall time) for the -stats surface and the BENCH artifact.
func RunAnalysis(pkgs []*Package, cfg *Config) Result {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	start := time.Now()
	m := newModule(pkgs)
	sup := collectDirectives(pkgs)
	var res Result
	res.Diags = append(res.Diags, sup.malformed...)
	for _, rule := range Rules() {
		if !cfg.ruleEnabled(rule.Name) {
			continue
		}
		t0 := time.Now()
		rep := &reporter{fset: m.fset(), rule: rule.Name}
		rule.check(m, cfg, rep)
		stat := RuleStat{Rule: rule.Name}
		for _, d := range rep.diags {
			if sup.suppresses(d) {
				stat.Suppressed++
			} else {
				res.Diags = append(res.Diags, d)
				stat.Findings++
			}
		}
		stat.Millis = float64(time.Since(t0).Microseconds()) / 1000
		res.Stats = append(res.Stats, stat)
	}
	// The staleness audit only means something when every rule had its
	// chance to consume directives.
	if !cfg.NoAudit && !cfg.filtered() {
		stale := sup.stale()
		res.Diags = append(res.Diags, stale...)
		res.Stats = append(res.Stats, RuleStat{Rule: RuleStaleSuppression, Findings: len(stale)})
	}
	sortDiagnostics(res.Diags)
	res.TotalMillis = float64(time.Since(start).Microseconds()) / 1000
	return res
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
