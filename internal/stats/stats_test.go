package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Fatalf("Variance = %g, want %g", got, want)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %g", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Min(nil) should return ErrEmpty")
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Max(nil) should return ErrEmpty")
	}
	xs := []float64{3, -2, 8, 0}
	mn, err := Min(xs)
	if err != nil || mn != -2 {
		t.Fatalf("Min = %g, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 8 {
		t.Fatalf("Max = %g, %v", mx, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", c.p, err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty percentile should return ErrEmpty")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile above 100 should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile should error")
	}
	if got, _ := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("single-sample percentile = %g, want 7", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{1, 1, 2, 3})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1.0}}
	if len(points) != len(want) {
		t.Fatalf("CDF has %d points, want %d", len(points), len(want))
	}
	for i := range want {
		if points[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, points[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 2, 4}
	points := CDFAt(xs, []float64{0, 1, 2, 3, 4, 5})
	wantFrac := []float64{0, 0.25, 0.75, 0.75, 1, 1}
	for i, p := range points {
		if !almostEq(p.Fraction, wantFrac[i], 1e-12) {
			t.Errorf("CDFAt(%g) = %g, want %g", p.Value, p.Fraction, wantFrac[i])
		}
	}
	empty := CDFAt(nil, []float64{1})
	if len(empty) != 1 || empty[0].Fraction != 0 {
		t.Fatal("CDFAt with no samples should report 0 everywhere")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		points := CDF(xs)
		prevV := math.Inf(-1)
		prevF := 0.0
		for _, p := range points {
			if p.Value <= prevV || p.Fraction < prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return len(points) == 0 || points[len(points)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	// Known case: n=5 samples, df=4 => t = 2.776.
	xs := []float64{10, 12, 14, 16, 18}
	iv := ConfidenceInterval95(xs)
	if iv.Mean != 14 || iv.N != 5 {
		t.Fatalf("interval mean/N = %g/%d", iv.Mean, iv.N)
	}
	se := StdDev(xs) / math.Sqrt(5)
	if !almostEq(iv.Radius, 2.776*se, 1e-9) {
		t.Fatalf("radius = %g, want %g", iv.Radius, 2.776*se)
	}
	if !almostEq(iv.Lo(), 14-iv.Radius, 1e-12) || !almostEq(iv.Hi(), 14+iv.Radius, 1e-12) {
		t.Fatal("Lo/Hi inconsistent with Mean/Radius")
	}
}

func TestConfidenceIntervalDegenerate(t *testing.T) {
	if iv := ConfidenceInterval95(nil); iv.Radius != 0 || iv.Mean != 0 {
		t.Fatalf("empty CI = %+v", iv)
	}
	if iv := ConfidenceInterval95([]float64{3}); iv.Radius != 0 || iv.Mean != 3 {
		t.Fatalf("single-sample CI = %+v", iv)
	}
}

// TestConfidenceIntervalCoverage draws many sample sets from a normal
// distribution and checks the 95% CI covers the true mean about 95% of the
// time.
func TestConfidenceIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const trials = 2000
	const n = 10
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = 5 + 2*rng.NormFloat64()
		}
		iv := ConfidenceInterval95(xs)
		if iv.Lo() <= 5 && 5 <= iv.Hi() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("CI coverage = %.3f, want ~0.95", rate)
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsInf(tCritical95(0), 1) {
		t.Fatal("df=0 should be +Inf")
	}
	if got := tCritical95(1); got != 12.706 {
		t.Fatalf("t(1) = %g", got)
	}
	if got := tCritical95(1000); got != 1.960 {
		t.Fatalf("t(1000) = %g", got)
	}
	// Monotone non-increasing in df.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("t critical increased at df=%d", df)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0, 0.5, 1, 1.5, 2, 9.9, -5, 100}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 8 {
		t.Fatalf("histogram lost samples: total %d, want 8", total)
	}
	if counts[0] != 3 { // 0, 0.5, and clamped -5
		t.Fatalf("bin0 = %d, want 3", counts[0])
	}
	if counts[9] != 2 { // 9.9 and clamped 100
		t.Fatalf("bin9 = %d, want 2", counts[9])
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	if _, err := Histogram(nil, 1, 1, 4); err == nil {
		t.Fatal("empty range should error")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.Float64()*10 - 3
		w.Add(xs[i])
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %g vs batch %g", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Welford variance %g vs batch %g", w.Variance(), Variance(xs))
	}
	if !almostEq(w.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("Welford stddev %g vs batch %g", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford should be empty")
	}
	w.Add(4)
	if w.Mean() != 4 || w.Variance() != 0 {
		t.Fatalf("one-sample Welford = %g/%g", w.Mean(), w.Variance())
	}
}

// TestPercentileSortedProperty: percentile of any slice lies within [min,max].
func TestPercentileSortedProperty(t *testing.T) {
	f := func(raw []float64, pRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := math.Mod(math.Abs(pRaw), 100)
		got, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
