package node

import (
	"testing"
	"time"

	"omcast/internal/metrics/live"
)

// metricValue returns the current value of the named series (summing across
// label sets), or -1 if the family is absent.
func metricValue(reg *live.Registry, name string) float64 {
	snap := reg.Snapshot()
	sum, found := 0.0, false
	for _, m := range snap.Metrics {
		if m.Name == name {
			found = true
			sum += m.Value
		}
	}
	if !found {
		return -1
	}
	return sum
}

// TestNodeMetrics boots an instrumented overlay, streams for a while, and
// checks the live registry reflects the traffic. Snapshots are taken while
// the node goroutines are still running, so -race also validates the
// concurrent read path.
func TestNodeMetrics(t *testing.T) {
	regs := make(map[int]*live.Registry)
	c := newCluster(t, 6, func(i int, cfg *Config) {
		regs[i] = live.NewRegistry()
		cfg.Metrics = regs[i]
	})
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "stream flowing", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().PacketsReceived < 20 {
				return false
			}
		}
		return true
	})

	for i, nd := range c.nodes {
		reg := regs[i]
		if got := metricValue(reg, "omcast_node_attached"); got != 1 {
			t.Errorf("node %d: omcast_node_attached = %v, want 1", i, got)
		}
		if got := metricValue(reg, "omcast_node_packets_received_total"); got < 20 {
			t.Errorf("node %d: packets_received = %v, want >= 20", i, got)
		}
		if got := metricValue(reg, "omcast_node_heartbeats_sent_total"); got <= 0 {
			t.Errorf("node %d: heartbeats_sent = %v, want > 0", i, got)
		}
		if got := metricValue(reg, "omcast_node_transport_tx_bytes_total"); got <= 0 {
			t.Errorf("node %d: tx_bytes = %v, want > 0", i, got)
		}
		if got := metricValue(reg, "omcast_node_transport_rx_datagrams_total"); got <= 0 {
			t.Errorf("node %d: rx_datagrams = %v, want > 0", i, got)
		}
		stats := nd.Stats()
		if got := metricValue(reg, "omcast_node_depth"); got != float64(stats.Depth) {
			t.Errorf("node %d: depth gauge = %v, stats depth = %d", i, got, stats.Depth)
		}
	}
}

// TestNodeMetricsRejoin checks the failure-path counters: killing a parent
// must surface as a parent timeout and a rejoin on its child's registry.
func TestNodeMetricsRejoin(t *testing.T) {
	regs := make(map[int]*live.Registry)
	c := newCluster(t, 8, func(i int, cfg *Config) {
		regs[i] = live.NewRegistry()
		cfg.Metrics = regs[i]
	})
	eventually(t, 5*time.Second, "all attached", c.allAttached)

	// Find an interior node (one that is some other node's parent) and kill it.
	victim := -1
	for i, nd := range c.nodes {
		addr := nd.Addr()
		for j, other := range c.nodes {
			if j != i && other.Stats().Parent == addr {
				victim = i
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("no interior node formed; tree is a star")
	}
	c.nodes[victim].Kill()

	eventually(t, 10*time.Second, "orphans recover and count a rejoin", func() bool {
		total := 0.0
		for i, nd := range c.nodes {
			if i == victim {
				continue
			}
			if !nd.Stats().Attached {
				return false
			}
			total += max(0, metricValue(regs[i], "omcast_node_rejoins_total"))
		}
		return total > 0
	})
}

// TestNodeUninstrumented confirms Config.Metrics == nil keeps every metric
// path on the nil-sink branch (compile-time nil-safety contract of
// internal/metrics applies to the live backend too).
func TestNodeUninstrumented(t *testing.T) {
	c := newCluster(t, 3, nil)
	eventually(t, 5*time.Second, "all attached", c.allAttached)
}
