// Package bench runs the repo's tier-1 performance suite outside `go test`
// and serialises the results as a BENCH report, seeding the performance
// trajectory the ROADMAP calls for: cmd/omcast-bench writes BENCH_<date>.json
// files and compares them against the previous report with a configurable
// regression threshold.
//
// The suite reuses testing.Benchmark, so the measured bodies are the same
// regimes the `go test -bench` suite pins: the event kernel's steady state,
// dense drains, cancel churn, membership sampling, delay-oracle lookups, and
// one reduced figure regeneration as an end-to-end composite. Headline
// figure metrics (the per-algorithm disruption averages of a reduced
// Figure 4) ride along in the report so a perf change that shifts simulation
// output is visible in the same artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"omcast/internal/eventsim"
	"omcast/internal/experiments"
	"omcast/internal/fleet"
	"omcast/internal/node"
	"omcast/internal/overlay"
	"omcast/internal/stream"
	"omcast/internal/topology"
	"omcast/internal/tracing"
	"omcast/internal/wire"
	"omcast/internal/xrand"
)

// Case is one named benchmark of the suite.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Suite returns the tier-1 cases. quick shrinks the heavyweight bodies so a
// CI smoke pass stays under a minute.
func Suite(quick bool) []Case {
	dense := 500_000
	if quick {
		dense = 100_000
	}
	return []Case{
		{Name: "eventsim/schedule-fire", Bench: benchScheduleFire},
		{Name: "eventsim/run-dense", Bench: benchRunDense(dense)},
		{Name: "eventsim/cancel-churn", Bench: benchCancelChurn},
		{Name: "overlay/sample-100", Bench: benchSample},
		{Name: "overlay/attach-detach-dense", Bench: benchAttachDetachDense},
		{Name: "stream/interval-account", Bench: benchIntervalAccount},
		{Name: "topology/delay", Bench: benchDelay},
		{Name: "tracing/span-emit", Bench: benchSpanEmit},
		{Name: "fleet/assign", Bench: benchFleetAssign},
		{Name: "wire/encode-binary", Bench: benchWireEncode(wire.BinaryV1)},
		{Name: "wire/decode-binary", Bench: benchWireDecode(wire.BinaryV1)},
		{Name: "wire/encode-json", Bench: benchWireEncode(wire.JSONDebug)},
		{Name: "wire/decode-json", Bench: benchWireDecode(wire.JSONDebug)},
		{Name: "node/attach-retx", Bench: benchAttachRetx},
		{Name: "experiments/fig11-tiny", Bench: benchFig11Tiny},
	}
}

// benchScheduleFire is the kernel steady state: one schedule plus one fire
// per iteration over a 10k standing queue (zero allocations with the pool).
func benchScheduleFire(b *testing.B) {
	sim := eventsim.New()
	for i := 0; i < 10000; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, func(*eventsim.Simulator) {})
	}
	at := 10 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(at, func(*eventsim.Simulator) {})
		at += time.Millisecond
		if err := sim.Run(time.Duration(i) * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRunDense(events int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim := eventsim.New()
			for j := 0; j < events; j++ {
				sim.Schedule(time.Duration(j%1000)*time.Millisecond, func(*eventsim.Simulator) {})
			}
			if err := sim.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchCancelChurn(b *testing.B) {
	sim := eventsim.New()
	at := time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := sim.Schedule(at, func(*eventsim.Simulator) {})
		at += time.Millisecond
		sim.Cancel(id)
	}
}

func benchSample(b *testing.B) {
	tree, err := overlay.NewTree(0, 100, func(a, c topology.NodeID) time.Duration { return time.Millisecond })
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		tree.NewMember(topology.NodeID(i), 0.5, time.Duration(i))
	}
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tree.Sample(rng, 100, nil); len(got) != 100 {
			b.Fatal("short sample")
		}
	}
}

// benchSpanEmit is the tracing hot path: open an episode, annotate it, end
// a child stage and the episode itself — the per-repair cost the streaming
// layer pays when span tracing is enabled (the disabled path is pinned to
// zero allocations by the tracing package's own AllocsPerRun test).
func benchSpanEmit(b *testing.B) {
	sink := tracing.RecorderFunc(func(tracing.Span) {})
	tr := tracing.New(1, sink)
	at := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(tracing.KindRepair, int64(i%128), at).AttrInt("first", int64(i))
		sp.Child(tracing.KindFetch, int64(i%128), at).End(at+time.Second, "striped")
		sp.End(at+2*time.Second, "filled")
		at += time.Millisecond
	}
}

// benchAttachDetachDense exercises the struct-of-arrays mutation path: leaf
// detach/re-attach cycles (intrusive child-list surgery plus level-index
// maintenance) with a periodic remove/new-member pair driving the dense-ID
// free list. The overlay package's AllocsPerRun tests pin the zero-alloc
// contract; this case keeps the per-mutation latency on the trend line.
func benchAttachDetachDense(b *testing.B) {
	tree, err := overlay.NewTree(0, 1_000_000, func(a, c topology.NodeID) time.Duration { return time.Millisecond })
	if err != nil {
		b.Fatal(err)
	}
	const nParents, nLeaves = 2000, 1000
	parents := make([]*overlay.Member, 0, nParents)
	for i := 0; i < nParents; i++ {
		m := tree.NewMember(topology.NodeID(i), 8, time.Duration(i))
		if err := tree.Attach(m, tree.Root()); err != nil {
			b.Fatal(err)
		}
		parents = append(parents, m)
	}
	leaves := make([]*overlay.Member, 0, nLeaves)
	for i := 0; i < nLeaves; i++ {
		m := tree.NewMember(topology.NodeID(nParents+i), 1, time.Duration(i))
		if err := tree.Attach(m, parents[i%nParents]); err != nil {
			b.Fatal(err)
		}
		leaves = append(leaves, m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := leaves[i%nLeaves]
		if err := tree.Detach(l); err != nil {
			b.Fatal(err)
		}
		if err := tree.Attach(l, parents[(i*7)%nParents]); err != nil {
			b.Fatal(err)
		}
		if i%16 == 0 {
			// Free-list churn: retire the leaf's slot and mint a fresh one.
			if _, err := tree.Remove(l); err != nil {
				b.Fatal(err)
			}
			m := tree.NewMember(topology.NodeID(nParents+i%nLeaves), 1, time.Duration(i))
			if err := tree.Attach(m, parents[(i*7)%nParents]); err != nil {
				b.Fatal(err)
			}
			leaves[i%nLeaves] = m
		}
	}
}

// benchSelector returns a canned recovery group (the selection algorithms
// have their own cer benchmarks; this case times the accounting).
type benchSelector struct{ group []*overlay.Member }

func (s *benchSelector) Select(*overlay.Member, int) []*overlay.Member { return s.group }

// benchIntervalAccount is the episode hot path of the streaming model: one
// failure of a 64-child relay, fanning 64 recovery episodes over ~128
// members through the interval accounting (dense plan, sorted slacks, binary
// search, watermark sealing) — the per-failure cost the fig-scale runs pay.
func benchIntervalAccount(b *testing.B) {
	delay := func(a, c topology.NodeID) time.Duration {
		if a == c {
			return 0
		}
		return time.Millisecond
	}
	tree, err := overlay.NewTree(0, 1000, delay)
	if err != nil {
		b.Fatal(err)
	}
	attach := topology.NodeID(1)
	mk := func(parent *overlay.Member, bw float64) *overlay.Member {
		m := tree.NewMember(attach, bw, 0)
		attach++
		if err := tree.Attach(m, parent); err != nil {
			b.Fatal(err)
		}
		return m
	}
	relay := mk(tree.Root(), 200)
	for i := 0; i < 64; i++ {
		mk(mk(relay, 4), 2)
	}
	sel := &benchSelector{}
	for i := 0; i < 3; i++ {
		sel.group = append(sel.group, mk(tree.Root(), 2))
	}
	model := stream.NewModel(tree, delay, sel, xrand.New(1), stream.Config{GroupSize: 3, Striped: true})
	tree.VisitSubtree(tree.Root(), func(m *overlay.Member) {
		if m != tree.Root() {
			model.Register(m, 0)
		}
	})
	now := 100 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.OnFailure(relay, now)
		now += 20 * time.Second
	}
}

func benchDelay(b *testing.B) {
	cfg := topology.DefaultConfig(1)
	cfg.TransitDomains = 2
	cfg.TransitNodesPerDomain = 4
	cfg.StubDomainsPerTransit = 2
	cfg.StubNodesPerDomain = 8
	topo, err := topology.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	n := topo.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := topology.NodeID(rng.Intn(n))
		v := topology.NodeID(rng.Intn(n))
		if d := topo.Delay(u, v); d < 0 {
			b.Fatal("negative delay")
		}
	}
}

// benchFleetAssign is the federation control plane's hot path: one
// capacity-aware assignment plus the matching release against a 16-source,
// 64-tree fleet. The scan is pinned allocation-free by the fleet package's
// own AllocsPerRun test; this case keeps its latency on the trend line.
func benchFleetAssign(b *testing.B) {
	ctrl := fleet.NewController(16, 4, 32)
	// Half-load the fleet so the best-headroom scan works against a
	// non-trivial load vector rather than an all-zero one.
	for i := 0; i < 16*4*16; i++ {
		if _, ok := ctrl.Assign(); !ok {
			b.Fatal("fleet full during warmup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, ok := ctrl.Assign()
		if !ok {
			b.Fatal("fleet full")
		}
		ctrl.Release(ref)
	}
}

// benchEnvelope is the codec benchmark workload: a stream packet with a
// 256-byte payload — the by-volume hot path of a live overlay, and the shape
// where the binary codec's zero-copy payload decode matters most.
func benchEnvelope() wire.Envelope {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	return wire.Envelope{Type: wire.TypePacket, From: "10.0.0.1:7000", Packet: 123456, Payload: payload}
}

func benchWireEncode(c wire.Codec) func(b *testing.B) {
	return func(b *testing.B) {
		env := benchEnvelope()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Encode(env); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchWireDecode(c wire.Codec) func(b *testing.B) {
	return func(b *testing.B) {
		data, err := c.Encode(benchEnvelope())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchAttachRetx is the control-plane composite: one member boots against a
// standing source, completes the join/accept exchange through the retransmit
// shim (sequence, ack, dedup bookkeeping), then leaves gracefully — the
// attach round-trip cost a live overlay pays per arriving viewer.
func benchAttachRetx(b *testing.B) {
	network := node.NewMemNetwork(nil)
	defer network.Close()
	// The accelerated timing profile: attach latency is dominated by one
	// backoff step scaled by the heartbeat interval (the first join attempt
	// only fetches membership), so slow timers would measure the config, not
	// the control path.
	srcCfg := node.Config{
		Source:            true,
		Bandwidth:         4,
		StreamRate:        1, // quiet data plane: the bench times control traffic
		HeartbeatInterval: 10 * time.Millisecond,
		GossipInterval:    25 * time.Millisecond,
	}
	srcEp, err := network.Endpoint("source")
	if err != nil {
		b.Fatal(err)
	}
	src := node.New(srcCfg, srcEp)
	src.Start()
	defer src.Kill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := node.Config{
			Bandwidth:         3,
			Bootstrap:         []wire.Addr{"source"},
			HeartbeatInterval: 10 * time.Millisecond,
			GossipInterval:    25 * time.Millisecond,
		}
		ep, err := network.Endpoint(wire.Addr(fmt.Sprintf("m%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		nd := node.New(cfg, ep)
		nd.Start()
		for !nd.Stats().Attached {
			runtime.Gosched()
		}
		nd.Stop() // graceful leave frees the slot for the next iteration
	}
}

// tinyFigureOptions is the smallest configuration that still drives a full
// churn/stream pipeline end to end.
func tinyFigureOptions() experiments.Options {
	return experiments.Options{Seed: 1, Quick: true, Sizes: []int{300}, Size: 300}
}

func benchFig11Tiny(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewRunner(tinyFigureOptions()).Run("fig11"); err != nil {
			b.Fatal(err)
		}
	}
}

// Result is one measured case.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is one BENCH_*.json artifact.
type Report struct {
	// Date is caller-supplied (the package itself reads no clock).
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	MaxProcs  int      `json:"maxprocs"`
	Quick     bool     `json:"quick"`
	Results   []Result `json:"results"`
	// Headline carries simulation-output scalars (per-algorithm Figure 4
	// disruption averages at reduced scale) so output drift and perf drift
	// land in the same artifact.
	Headline map[string]float64 `json:"headline,omitempty"`
	// Analyzer carries the static-analyzer statistics (per-rule finding and
	// suppression counts plus analysis wall time, the omcast-lint -stats
	// surface) so analyzer cost and tree health trend alongside the perf
	// numbers. Populated by cmd/omcast-bench; Compare ignores it.
	Analyzer map[string]float64 `json:"analyzer,omitempty"`
	// Scale carries the fig-scale sweep (bytes/member and ns/event per
	// member count). Populated by cmd/omcast-bench -scale; Compare ignores
	// it.
	Scale []ScalePoint `json:"scale,omitempty"`
}

// Run executes the cases with testing.Benchmark and assembles a report.
// progress, when non-nil, receives one line per completed case.
func Run(date string, quick bool, progress func(format string, args ...any)) (Report, error) {
	rep := Report{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Quick:     quick,
	}
	for _, c := range Suite(quick) {
		r := testing.Benchmark(c.Bench)
		res := Result{
			Name:        c.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, res)
		if progress != nil {
			progress("%-26s %12.1f ns/op %8d B/op %6d allocs/op", res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	head, err := headline()
	if err != nil {
		return Report{}, fmt.Errorf("bench: headline figure: %w", err)
	}
	rep.Headline = head
	return rep, nil
}

// headline regenerates a reduced Figure 4 and records one scalar per
// algorithm: the average disruptions at the single sweep size.
func headline() (map[string]float64, error) {
	tab, err := experiments.NewRunner(tinyFigureOptions()).Run("fig4")
	if err != nil {
		return nil, err
	}
	if len(tab.Rows) == 0 {
		return nil, fmt.Errorf("fig4 produced no rows")
	}
	out := make(map[string]float64, len(tab.Header)-1)
	row := tab.Rows[0]
	for c := 1; c < len(tab.Header) && c < len(row); c++ {
		v, err := strconv.ParseFloat(row[c], 64)
		if err != nil {
			return nil, fmt.Errorf("fig4 cell %q: %w", row[c], err)
		}
		out["fig4/"+tab.Header[c]] = v
	}
	return out, nil
}

// WriteFile serialises the report as indented JSON.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a previously written report.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// Delta is one case compared across two reports.
type Delta struct {
	Name      string
	PrevNs    float64
	CurNs     float64
	Ratio     float64 // CurNs / PrevNs
	PrevAlloc int64
	CurAlloc  int64
	Regressed bool
}

// Compare matches cases by name and flags every case whose ns/op grew by
// more than threshold (0.25 = +25%). Cases present in only one report are
// skipped: suite membership may change across commits, and a comparison
// should not punish adding coverage. It returns the deltas in name order and
// whether any case regressed.
func Compare(prev, cur Report, threshold float64) ([]Delta, bool) {
	prevByName := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		prevByName[r.Name] = r
	}
	var deltas []Delta
	regressed := false
	for _, c := range cur.Results {
		p, ok := prevByName[c.Name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:      c.Name,
			PrevNs:    p.NsPerOp,
			CurNs:     c.NsPerOp,
			Ratio:     c.NsPerOp / p.NsPerOp,
			PrevAlloc: p.AllocsPerOp,
			CurAlloc:  c.AllocsPerOp,
		}
		d.Regressed = d.Ratio > 1+threshold
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, regressed
}
