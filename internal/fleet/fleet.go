// Package fleet is the federation control plane over the multi-tree
// delivery layer: the piece a production deployment of the paper's system
// needs once "the source" becomes "a fleet of sources". The paper proves
// single-tree resilience (ROST + CER) and internal/multitree extends it to
// striped trees under one source; fleet models the layer above — many
// sources, each serving several stripe trees, with a controller that
//
//   - tracks per-source health by heartbeat (Healthy → Suspect → Down on
//     consecutive misses, so one late beat never triggers a failover),
//   - assigns joining viewers to the source+tree with the most capacity
//     headroom, admission-paced per source so a flash crowd fills the fleet
//     over several heartbeat intervals instead of one stampede,
//   - re-assigns every viewer orphaned by a source death to surviving
//     sources with paced, jittered rejoin (the node layer's capped
//     exponential backoff policy), bounding the failover completion time
//     without a thundering herd,
//   - drains a source gracefully on planned shutdown: viewers migrate
//     tree-by-tree, make-before-break, with zero outage, and
//   - rebalances load by migrating members from the fullest tree to the
//     emptiest whenever the spread exceeds a slack.
//
// Everything runs on the deterministic event simulator with named RNG
// streams, so a session is byte-identical across reruns and `-workers`
// counts. Failover episodes are emitted as tracing spans (kind "failover",
// cause "source-down" or "drain", with per-attempt "assign" children), and
// per-tree occupancy/health lands in the metrics registry.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"omcast/internal/eventsim"
	"omcast/internal/metrics"
	"omcast/internal/tracing"
	"omcast/internal/xrand"
)

// SourceState is the controller's view of one source, not ground truth: a
// dead source stays Healthy until enough heartbeats go missing.
type SourceState int

// Source states. Healthy→Suspect→Down is the failure-detection ladder;
// Draining→Drained is the planned-shutdown path.
const (
	SourceHealthy SourceState = iota
	SourceSuspect
	SourceDown
	SourceDraining
	SourceDrained
)

// String names the state.
func (s SourceState) String() string {
	switch s {
	case SourceHealthy:
		return "healthy"
	case SourceSuspect:
		return "suspect"
	case SourceDown:
		return "down"
	case SourceDraining:
		return "draining"
	case SourceDrained:
		return "drained"
	default:
		return fmt.Sprintf("SourceState(%d)", int(s))
	}
}

// TimedEvent schedules a source kill or drain at a virtual time.
type TimedEvent struct {
	At     time.Duration
	Source int
}

// Burst is a flash-crowd arrival: Count viewers join at once at At.
type Burst struct {
	At    time.Duration
	Count int
}

// Config parameterises a fleet session.
type Config struct {
	Seed int64
	// Fleet shape.
	Sources        int
	TreesPerSource int
	TreeCapacity   int
	// Viewers joined (unpaced) at time zero — the pre-populated steady state.
	Viewers int
	Horizon time.Duration
	// Failure detection: a source is Suspect after SuspectMisses consecutive
	// missed heartbeats and Down after DownMisses.
	HeartbeatInterval time.Duration
	SuspectMisses     int
	DownMisses        int
	// Rejoin pacing: orphaned viewers retry with the node layer's capped
	// exponential backoff (base doubled per failed attempt, capped at max,
	// jittered to [d/2, d)), and each source admits at most AdmitPerInterval
	// viewers per heartbeat interval.
	RejoinBackoffBase time.Duration
	RejoinBackoffMax  time.Duration
	AdmitPerInterval  int
	// Bounds checked into Result.BoundViolations (zero disables a check).
	MaxReassignTime time.Duration
	MaxOutageRatio  float64
	// Scripted events.
	Kills    []TimedEvent
	Drains   []TimedEvent
	Arrivals []Burst
	// Churn: when MeanLifetime > 0 every viewer departs after an exponential
	// lifetime and Poisson arrivals replenish the population.
	MeanLifetime time.Duration
	// LoadSkew is the probability a joining viewer insists on source 0,
	// tree 0 (hotspot pressure for the rebalancer).
	LoadSkew float64
	// Rebalancing: every RebalanceEvery, migrate viewers from the fullest
	// tree to the emptiest while their load difference exceeds
	// RebalanceSlack. Zero disables.
	RebalanceEvery time.Duration
	RebalanceSlack int
	// Instrumentation (both optional).
	Metrics *metrics.Registry
	Trace   tracing.Recorder
}

func (c Config) withDefaults() Config {
	if c.TreesPerSource <= 0 {
		c.TreesPerSource = 2
	}
	if c.TreeCapacity <= 0 {
		c.TreeCapacity = 64
	}
	if c.Horizon <= 0 {
		c.Horizon = 60 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectMisses <= 0 {
		c.SuspectMisses = 2
	}
	if c.DownMisses <= c.SuspectMisses {
		c.DownMisses = c.SuspectMisses + 2
	}
	if c.RejoinBackoffBase <= 0 {
		c.RejoinBackoffBase = 200 * time.Millisecond
	}
	if c.RejoinBackoffMax <= 0 {
		c.RejoinBackoffMax = 5 * time.Second
	}
	if c.AdmitPerInterval <= 0 {
		c.AdmitPerInterval = 8
	}
	if c.RebalanceSlack <= 0 {
		c.RebalanceSlack = 2
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sources <= 0 {
		return fmt.Errorf("fleet: Sources = %d, want >= 1", c.Sources)
	}
	for _, k := range c.Kills {
		if k.Source < 0 || k.Source >= c.Sources {
			return fmt.Errorf("fleet: kill targets source %d of %d", k.Source, c.Sources)
		}
	}
	for _, d := range c.Drains {
		if d.Source < 0 || d.Source >= c.Sources {
			return fmt.Errorf("fleet: drain targets source %d of %d", d.Source, c.Sources)
		}
	}
	return nil
}

// TreeRef names one stripe tree within the fleet.
type TreeRef struct {
	Source int
	Tree   int
}

// Controller is the assignment hot path: per-tree occupancy, per-source
// admission tokens and availability, and a zero-allocation best-fit scan.
// It is deliberately free of simulator state so the bench suite can measure
// Assign/Release in isolation.
type Controller struct {
	treesPer int
	capacity int
	load     []int  // flattened source*treesPer+tree
	blocked  []bool // per source: down, draining or drained
	tokens   []int  // per source admissions left this interval; -1 = unpaced
}

// NewController builds a controller with every tree empty, every source
// assignable, and admission unpaced until the first Replenish.
func NewController(sources, treesPer, capacity int) *Controller {
	c := &Controller{
		treesPer: treesPer,
		capacity: capacity,
		load:     make([]int, sources*treesPer),
		blocked:  make([]bool, sources),
		tokens:   make([]int, sources),
	}
	for i := range c.tokens {
		c.tokens[i] = -1
	}
	return c
}

// Assign takes one slot in the assignable tree with the most headroom
// (ties broken toward the lowest source, then tree index), honouring
// per-source admission tokens. Zero allocations.
func (c *Controller) Assign() (TreeRef, bool) {
	best, bestRoom := -1, 0
	for i, l := range c.load {
		src := i / c.treesPer
		if c.blocked[src] || c.tokens[src] == 0 {
			continue
		}
		if room := c.capacity - l; room > bestRoom {
			best, bestRoom = i, room
		}
	}
	if best < 0 {
		return TreeRef{}, false
	}
	c.load[best]++
	if src := best / c.treesPer; c.tokens[src] > 0 {
		c.tokens[src]--
	}
	return TreeRef{Source: best / c.treesPer, Tree: best % c.treesPer}, true
}

// Take claims one slot in a specific tree if its source is assignable and
// the tree has room (the sticky-viewer and rebalance placement path).
func (c *Controller) Take(r TreeRef) bool {
	if c.blocked[r.Source] || c.tokens[r.Source] == 0 {
		return false
	}
	i := r.Source*c.treesPer + r.Tree
	if c.load[i] >= c.capacity {
		return false
	}
	c.load[i]++
	if c.tokens[r.Source] > 0 {
		c.tokens[r.Source]--
	}
	return true
}

// Release frees one slot.
func (c *Controller) Release(r TreeRef) {
	c.load[r.Source*c.treesPer+r.Tree]--
}

// SetBlocked marks a source (un)assignable.
func (c *Controller) SetBlocked(source int, blocked bool) { c.blocked[source] = blocked }

// Blocked reports whether a source is assignable.
func (c *Controller) Blocked(source int) bool { return c.blocked[source] }

// Replenish resets every source's admission tokens for a new interval.
func (c *Controller) Replenish(n int) {
	for i := range c.tokens {
		c.tokens[i] = n
	}
}

// Load returns a tree's occupancy.
func (c *Controller) Load(r TreeRef) int { return c.load[r.Source*c.treesPer+r.Tree] }

// Headroom returns the total free capacity across assignable sources,
// ignoring admission tokens — "is the fleet full" as opposed to "is the
// fleet admitting right now".
func (c *Controller) Headroom() int {
	total := 0
	for i, l := range c.load {
		if c.blocked[i/c.treesPer] {
			continue
		}
		total += c.capacity - l
	}
	return total
}

// viewer is one member of the fleet's audience.
type viewer struct {
	id         int64
	alive      bool
	assigned   bool
	joining    bool // first admission, not a failover: no outage charged
	ref        TreeRef
	streak     int
	joinedAt   time.Duration
	assignedAt time.Duration
	orphanedAt time.Duration // outage start (source death or join start)
	departedAt time.Duration
	outage     time.Duration
	span       *tracing.SpanBuilder
}

// source is the ground truth plus the controller's belief about one source.
type source struct {
	idx       int
	state     SourceState
	dead      bool
	deadAt    time.Duration
	missed    int
	drainTree int
}

// TreeLoad is one tree's final accounting, exported in Result and mirrored
// onto the metrics registry as labelled gauges.
type TreeLoad struct {
	Source    int
	Tree      int
	Viewers   int
	Capacity  int
	Failovers int
	State     string // the owning source's final state
}

// Result summarises a fleet session.
type Result struct {
	// Viewers is every viewer that ever joined; Assigned is how many were
	// admitted at least once.
	Viewers  int
	Assigned int
	// Failovers counts failover episodes (source-down and drain causes);
	// Orphaned/Reassigned/Unassigned break down the source-down ones.
	Failovers  int
	Orphaned   int
	Reassigned int
	Unassigned int // still orphaned at the horizon
	Attempts   int
	// Reassignment latency (source death through re-admission).
	MaxReassign time.Duration
	P50Reassign time.Duration
	P99Reassign time.Duration
	// OutageRatio is total viewer outage time over total viewer view time.
	OutageRatio float64
	// Draining.
	DrainMigrations int
	DrainOutage     time.Duration // always zero: drains are make-before-break
	Drained         int           // sources fully drained
	// Rebalancing.
	Rebalanced int
	TreeLoads  []TreeLoad
	// BoundViolations lists every configured bound the run broke.
	BoundViolations []string
}

// Session is a running fleet simulation.
type Session struct {
	cfg     Config
	sim     *eventsim.Simulator
	ctrl    *Controller
	sources []*source
	viewers []*viewer
	tracer  *tracing.Tracer

	backoffRng *xrand.Source
	arriveRng  *xrand.Source
	lifeRng    *xrand.Source
	skewRng    *xrand.Source

	treeFailovers []int
	reassignSecs  []float64
	maxReassign   time.Duration
	failovers     int
	orphaned      int
	reassigned    int
	attempts      int
	drainMoves    int
	rebalanced    int
	assignedEver  int

	met struct {
		failovers    *metrics.Counter
		reassigned   *metrics.Counter
		attempts     *metrics.Counter
		drainMoves   *metrics.Counter
		rebalanced   *metrics.Counter
		reassignSecs *metrics.Histogram
	}
}

// NewSession builds a fleet session.
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		cfg:           cfg,
		sim:           eventsim.New(),
		ctrl:          NewController(cfg.Sources, cfg.TreesPerSource, cfg.TreeCapacity),
		tracer:        tracing.New(cfg.Seed, cfg.Trace),
		backoffRng:    xrand.NewNamed(cfg.Seed, "fleet.backoff"),
		arriveRng:     xrand.NewNamed(cfg.Seed, "fleet.arrive"),
		lifeRng:       xrand.NewNamed(cfg.Seed, "fleet.lifetime"),
		skewRng:       xrand.NewNamed(cfg.Seed, "fleet.skew"),
		treeFailovers: make([]int, cfg.Sources*cfg.TreesPerSource),
	}
	for i := 0; i < cfg.Sources; i++ {
		s.sources = append(s.sources, &source{idx: i})
	}
	if reg := cfg.Metrics; reg != nil {
		s.met.failovers = reg.Counter("omcast_fleet_failovers_total",
			"Failover episodes started (source-down and drain causes).")
		s.met.reassigned = reg.Counter("omcast_fleet_reassigned_total",
			"Orphaned viewers re-admitted by a surviving source.")
		s.met.attempts = reg.Counter("omcast_fleet_assign_attempts_total",
			"Assignment attempts, including paced and fleet-full rejections.")
		s.met.drainMoves = reg.Counter("omcast_fleet_drain_migrations_total",
			"Viewers migrated make-before-break off a draining source.")
		s.met.rebalanced = reg.Counter("omcast_fleet_rebalance_migrations_total",
			"Viewers migrated from the fullest tree to the emptiest.")
		s.met.reassignSecs = reg.Histogram("omcast_fleet_reassign_seconds",
			"Reassignment latency from source death to re-admission.",
			metrics.LatencyBuckets())
	}
	return s, nil
}

// Controller exposes the assignment state (testing hook).
func (s *Session) Controller() *Controller { return s.ctrl }

// Run executes the session to the horizon and returns its results.
func (s *Session) Run() (Result, error) {
	now := time.Duration(0)
	for i := 0; i < s.cfg.Viewers; i++ {
		v := s.newViewer(now)
		// Steady-state pre-population: admit directly, unpaced (tokens are
		// unlimited until the first monitor tick).
		s.admitJoin(v, now)
	}
	s.sim.ScheduleAfter(s.cfg.HeartbeatInterval, s.monitorTick)
	for _, k := range s.cfg.Kills {
		src := s.sources[k.Source]
		s.sim.Schedule(k.At, func(sim *eventsim.Simulator) {
			if !src.dead && src.state != SourceDrained {
				src.dead = true
				src.deadAt = sim.Now()
			}
		})
	}
	for _, d := range s.cfg.Drains {
		src := s.sources[d.Source]
		s.sim.Schedule(d.At, func(sim *eventsim.Simulator) {
			s.startDrain(sim, src)
		})
	}
	for _, b := range s.cfg.Arrivals {
		count := b.Count
		s.sim.Schedule(b.At, func(sim *eventsim.Simulator) {
			for i := 0; i < count; i++ {
				s.joinViewer(sim, s.newViewer(sim.Now()))
			}
		})
	}
	if s.cfg.MeanLifetime > 0 {
		for _, v := range s.viewers {
			s.scheduleDeparture(v)
		}
		s.scheduleNextArrival()
	}
	if s.cfg.RebalanceEvery > 0 {
		s.sim.ScheduleAfter(s.cfg.RebalanceEvery, s.rebalanceTick)
	}
	if err := s.sim.Run(s.cfg.Horizon); err != nil {
		return Result{}, fmt.Errorf("fleet: simulation failed: %w", err)
	}
	return s.result(), nil
}

func (s *Session) newViewer(now time.Duration) *viewer {
	v := &viewer{
		id:         int64(len(s.viewers)),
		alive:      true,
		joining:    true,
		joinedAt:   now,
		orphanedAt: now,
		departedAt: -1,
	}
	s.viewers = append(s.viewers, v)
	return v
}

// joinViewer admits a new arrival through the paced assignment path.
func (s *Session) joinViewer(sim *eventsim.Simulator, v *viewer) {
	if s.cfg.MeanLifetime > 0 {
		s.scheduleDeparture(v)
	}
	s.admitJoin(v, sim.Now())
}

// admitJoin is one join attempt: sticky placement under load skew, best-fit
// otherwise, capped exponential retry when paced out.
func (s *Session) admitJoin(v *viewer, now time.Duration) {
	if !v.alive {
		return
	}
	s.noteAttempt()
	if s.cfg.LoadSkew > 0 && v.streak == 0 && s.skewRng.Float64() < s.cfg.LoadSkew {
		if s.ctrl.Take(TreeRef{}) {
			s.assign(v, TreeRef{}, now)
			return
		}
	}
	if ref, ok := s.ctrl.Assign(); ok {
		s.assign(v, ref, now)
		return
	}
	s.retryLater(v, func(sim *eventsim.Simulator) { s.admitJoin(v, sim.Now()) })
}

func (s *Session) noteAttempt() {
	s.attempts++
	if s.met.attempts != nil {
		s.met.attempts.Inc()
	}
}

// retryLater schedules the next attempt with the node layer's jittered
// capped-exponential backoff.
func (s *Session) retryLater(v *viewer, h eventsim.Handler) {
	d := backoffDelay(s.cfg.RejoinBackoffBase, s.cfg.RejoinBackoffMax, v.streak, s.backoffRng)
	v.streak++
	s.sim.ScheduleAfter(d, h)
}

// backoffDelay mirrors internal/node's policy: base doubled streak times,
// capped at max, then jittered to [d/2, d).
func backoffDelay(base, max time.Duration, streak int, rng *xrand.Source) time.Duration {
	d := base
	for i := 0; i < streak && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + rng.UniformDuration(0, d/2)
}

func (s *Session) assign(v *viewer, ref TreeRef, now time.Duration) {
	v.assigned = true
	v.ref = ref
	v.assignedAt = now
	v.streak = 0
	if v.joining {
		v.joining = false
		s.assignedEver++
		return
	}
	// Completing a failover: charge the outage and close the episode.
	lat := now - v.orphanedAt
	v.outage += lat
	s.reassigned++
	s.reassignSecs = append(s.reassignSecs, lat.Seconds())
	if lat > s.maxReassign {
		s.maxReassign = lat
	}
	if s.met.reassigned != nil {
		s.met.reassigned.Inc()
	}
	if s.met.reassignSecs != nil {
		s.met.reassignSecs.Observe(lat.Seconds())
	}
	if v.span != nil {
		v.span.AttrDuration("latency", lat)
		v.span.End(now, "reassigned")
		v.span = nil
	}
}

// monitorTick is the heartbeat monitor: advance every source's detection
// ladder, then replenish admission tokens for the next interval.
func (s *Session) monitorTick(sim *eventsim.Simulator) {
	now := sim.Now()
	for _, src := range s.sources {
		switch src.state {
		case SourceHealthy, SourceSuspect:
			if !src.dead {
				src.missed = 0
				src.state = SourceHealthy
				continue
			}
			src.missed++
			if src.missed >= s.cfg.DownMisses {
				s.declareDown(src, now)
			} else if src.missed >= s.cfg.SuspectMisses {
				src.state = SourceSuspect
			}
		case SourceDraining:
			if src.dead {
				// A source can die mid-drain; the remaining viewers fail
				// over like any other orphans.
				s.declareDown(src, now)
			}
		}
	}
	s.ctrl.Replenish(s.cfg.AdmitPerInterval)
	sim.ScheduleAfter(s.cfg.HeartbeatInterval, s.monitorTick)
}

// declareDown flips the controller's belief to Down and orphans every
// viewer the source was serving. Outage is charged from the actual death,
// not the detection — the viewers stopped receiving packets at deadAt.
func (s *Session) declareDown(src *source, now time.Duration) {
	src.state = SourceDown
	s.ctrl.SetBlocked(src.idx, true)
	for _, v := range s.viewers {
		if !v.alive || !v.assigned || v.ref.Source != src.idx {
			continue
		}
		s.ctrl.Release(v.ref)
		v.assigned = false
		v.streak = 0
		v.orphanedAt = src.deadAt
		if v.assignedAt > v.orphanedAt {
			v.orphanedAt = v.assignedAt // admitted into the dead window
		}
		s.orphaned++
		s.noteFailover(v.ref)
		v.span = s.tracer.Start(tracing.KindFailover, v.id, v.orphanedAt).
			Attr("cause", "source-down").
			AttrInt("source", int64(src.idx)).
			AttrInt("tree", int64(v.ref.Tree))
		v.span.Child(tracing.KindDetect, v.id, v.orphanedAt).End(now, "detected")
		s.scheduleFailoverAttempt(v)
	}
}

func (s *Session) noteFailover(ref TreeRef) {
	s.failovers++
	s.treeFailovers[ref.Source*s.cfg.TreesPerSource+ref.Tree]++
	if s.met.failovers != nil {
		s.met.failovers.Inc()
	}
}

// scheduleFailoverAttempt paces one orphan's next rejoin attempt.
func (s *Session) scheduleFailoverAttempt(v *viewer) {
	s.retryLater(v, func(sim *eventsim.Simulator) { s.failoverAttempt(v, sim.Now()) })
}

func (s *Session) failoverAttempt(v *viewer, now time.Duration) {
	if !v.alive || v.assigned {
		return
	}
	s.noteAttempt()
	att := v.span.Child(tracing.KindAssign, v.id, now)
	if ref, ok := s.ctrl.Assign(); ok {
		att.AttrInt("source", int64(ref.Source)).AttrInt("tree", int64(ref.Tree))
		att.End(now, "assigned")
		s.assign(v, ref, now)
		return
	}
	outcome := "paced"
	if s.ctrl.Headroom() == 0 {
		outcome = "full"
	}
	att.End(now, outcome)
	s.scheduleFailoverAttempt(v)
}

// startDrain begins a graceful shutdown: stop admitting, then migrate the
// source's viewers tree-by-tree.
func (s *Session) startDrain(sim *eventsim.Simulator, src *source) {
	if src.dead || src.state == SourceDown || src.state == SourceDraining || src.state == SourceDrained {
		return
	}
	src.state = SourceDraining
	src.drainTree = 0
	s.ctrl.SetBlocked(src.idx, true)
	s.drainStep(sim, src)
}

// drainStep migrates up to AdmitPerInterval viewers off the current drain
// tree, make-before-break: the viewer takes its new slot before the old one
// is released, so a drain never causes an outage. Trees drain strictly in
// order; when the fleet is momentarily full or paced out, the step retries
// next interval with the remaining viewers still served by the old source.
func (s *Session) drainStep(sim *eventsim.Simulator, src *source) {
	if src.state != SourceDraining {
		return
	}
	now := sim.Now()
	moved := 0
	for src.drainTree < s.cfg.TreesPerSource {
		tr := TreeRef{Source: src.idx, Tree: src.drainTree}
		emptied := true
		for _, v := range s.viewers {
			if !v.alive || !v.assigned || v.ref != tr {
				continue
			}
			if moved >= s.cfg.AdmitPerInterval {
				emptied = false
				break
			}
			ref, ok := s.ctrl.Assign()
			if !ok {
				emptied = false
				break
			}
			sp := s.tracer.Start(tracing.KindFailover, v.id, now).
				Attr("cause", "drain").
				AttrInt("source", int64(src.idx)).
				AttrInt("tree", int64(v.ref.Tree))
			sp.Child(tracing.KindAssign, v.id, now).
				AttrInt("source", int64(ref.Source)).
				AttrInt("tree", int64(ref.Tree)).
				End(now, "assigned")
			sp.End(now, "migrated")
			s.noteFailover(v.ref)
			s.ctrl.Release(v.ref)
			v.ref = ref
			v.assignedAt = now
			s.drainMoves++
			if s.met.drainMoves != nil {
				s.met.drainMoves.Inc()
			}
			moved++
		}
		if !emptied {
			break
		}
		src.drainTree++
	}
	if src.drainTree >= s.cfg.TreesPerSource {
		src.state = SourceDrained
		return
	}
	sim.ScheduleAfter(s.cfg.HeartbeatInterval, func(next *eventsim.Simulator) {
		s.drainStep(next, src)
	})
}

// rebalanceTick migrates viewers from the fullest assignable tree to the
// emptiest while the spread exceeds the slack. Migration is
// make-before-break, so rebalancing never causes an outage.
func (s *Session) rebalanceTick(sim *eventsim.Simulator) {
	now := sim.Now()
	for guard := 0; guard < len(s.viewers); guard++ {
		maxRef, minRef, ok := s.spread()
		if !ok || s.ctrl.Load(maxRef)-s.ctrl.Load(minRef) <= s.cfg.RebalanceSlack {
			break
		}
		moved := false
		for _, v := range s.viewers {
			if !v.alive || !v.assigned || v.ref != maxRef {
				continue
			}
			if !s.ctrl.Take(minRef) {
				break
			}
			s.ctrl.Release(v.ref)
			v.ref = minRef
			v.assignedAt = now
			s.rebalanced++
			if s.met.rebalanced != nil {
				s.met.rebalanced.Inc()
			}
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	sim.ScheduleAfter(s.cfg.RebalanceEvery, s.rebalanceTick)
}

// spread returns the fullest and emptiest assignable trees.
func (s *Session) spread() (maxRef, minRef TreeRef, ok bool) {
	maxLoad, minLoad := -1, s.cfg.TreeCapacity+1
	for i := 0; i < s.cfg.Sources; i++ {
		if s.ctrl.Blocked(i) {
			continue
		}
		for t := 0; t < s.cfg.TreesPerSource; t++ {
			r := TreeRef{Source: i, Tree: t}
			l := s.ctrl.Load(r)
			if l > maxLoad {
				maxLoad, maxRef = l, r
			}
			if l < minLoad {
				minLoad, minRef = l, r
			}
		}
	}
	return maxRef, minRef, maxLoad >= 0 && maxRef != minRef
}

func (s *Session) scheduleDeparture(v *viewer) {
	life := xrand.Exponential{Rate: 1 / s.cfg.MeanLifetime.Seconds()}.SampleDuration(s.lifeRng)
	s.sim.ScheduleAfter(life, func(sim *eventsim.Simulator) {
		s.depart(sim, v)
	})
}

func (s *Session) depart(sim *eventsim.Simulator, v *viewer) {
	if !v.alive {
		return
	}
	now := sim.Now()
	v.alive = false
	v.departedAt = now
	if v.assigned {
		s.ctrl.Release(v.ref)
		v.assigned = false
		return
	}
	if v.span != nil {
		v.span.End(now, "departed")
		v.span = nil
	}
	if !v.joining {
		v.outage += now - v.orphanedAt // orphaned until the viewer gave up
	}
}

func (s *Session) scheduleNextArrival() {
	rate := float64(s.cfg.Viewers) / s.cfg.MeanLifetime.Seconds()
	gap := xrand.Exponential{Rate: rate}.SampleDuration(s.arriveRng)
	s.sim.ScheduleAfter(gap, func(sim *eventsim.Simulator) {
		s.joinViewer(sim, s.newViewer(sim.Now()))
		s.scheduleNextArrival()
	})
}

func (s *Session) result() Result {
	horizon := s.cfg.Horizon
	res := Result{
		Viewers:         len(s.viewers),
		Assigned:        s.assignedEver,
		Failovers:       s.failovers,
		Orphaned:        s.orphaned,
		Reassigned:      s.reassigned,
		Attempts:        s.attempts,
		MaxReassign:     s.maxReassign,
		DrainMigrations: s.drainMoves,
		Rebalanced:      s.rebalanced,
	}
	var totalOutage, totalView time.Duration
	for _, v := range s.viewers {
		end := v.departedAt
		if end < 0 {
			end = horizon
		}
		outage := v.outage
		if v.alive && !v.assigned && !v.joining {
			outage += horizon - v.orphanedAt // still dark at the horizon
			res.Unassigned++
			if v.span != nil {
				v.span.End(horizon, "unassigned")
				v.span = nil
			}
		}
		totalOutage += outage
		totalView += end - v.joinedAt
	}
	if totalView > 0 {
		res.OutageRatio = totalOutage.Seconds() / totalView.Seconds()
	}
	sorted := append([]float64(nil), s.reassignSecs...)
	sort.Float64s(sorted)
	res.P50Reassign = time.Duration(tracing.Percentile(sorted, 0.50) * float64(time.Second))
	res.P99Reassign = time.Duration(tracing.Percentile(sorted, 0.99) * float64(time.Second))
	for _, src := range s.sources {
		if src.state == SourceDrained {
			res.Drained++
		}
		for t := 0; t < s.cfg.TreesPerSource; t++ {
			r := TreeRef{Source: src.idx, Tree: t}
			res.TreeLoads = append(res.TreeLoads, TreeLoad{
				Source:    src.idx,
				Tree:      t,
				Viewers:   s.ctrl.Load(r),
				Capacity:  s.cfg.TreeCapacity,
				Failovers: s.treeFailovers[src.idx*s.cfg.TreesPerSource+t],
				State:     src.state.String(),
			})
		}
	}
	if s.cfg.MaxReassignTime > 0 && res.MaxReassign > s.cfg.MaxReassignTime {
		res.BoundViolations = append(res.BoundViolations, fmt.Sprintf(
			"max reassignment %.3fs exceeds bound %.3fs",
			res.MaxReassign.Seconds(), s.cfg.MaxReassignTime.Seconds()))
	}
	if res.Unassigned > 0 {
		res.BoundViolations = append(res.BoundViolations, fmt.Sprintf(
			"%d orphaned viewers never reassigned", res.Unassigned))
	}
	if s.cfg.MaxOutageRatio > 0 && res.OutageRatio > s.cfg.MaxOutageRatio {
		res.BoundViolations = append(res.BoundViolations, fmt.Sprintf(
			"outage ratio %.4f exceeds bound %.4f", res.OutageRatio, s.cfg.MaxOutageRatio))
	}
	s.publishGauges()
	return res
}

// publishGauges mirrors the final per-tree state onto the metrics registry
// as labelled gauges (the /metrics shape for fleet occupancy).
func (s *Session) publishGauges() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	for _, src := range s.sources {
		srcLabel := metrics.Label{Key: "source", Value: fmt.Sprintf("s%d", src.idx)}
		reg.Gauge("omcast_fleet_source_state",
			"Source state: 0 healthy, 1 suspect, 2 down, 3 draining, 4 drained.",
			srcLabel).Set(float64(src.state))
		for t := 0; t < s.cfg.TreesPerSource; t++ {
			r := TreeRef{Source: src.idx, Tree: t}
			treeLabel := metrics.Label{Key: "tree", Value: fmt.Sprintf("t%d", t)}
			reg.Gauge("omcast_fleet_tree_viewers",
				"Viewers currently assigned to this tree.",
				srcLabel, treeLabel).Set(float64(s.ctrl.Load(r)))
			reg.Gauge("omcast_fleet_tree_headroom",
				"Free viewer slots in this tree.",
				srcLabel, treeLabel).Set(float64(s.cfg.TreeCapacity - s.ctrl.Load(r)))
			reg.Gauge("omcast_fleet_tree_failovers",
				"Failover episodes that orphaned viewers of this tree.",
				srcLabel, treeLabel).Set(float64(s.treeFailovers[src.idx*s.cfg.TreesPerSource+t]))
		}
	}
}

// Run builds and runs a session in one call.
func Run(cfg Config) (Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}
