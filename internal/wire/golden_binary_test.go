package wire

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"
)

// TestGoldenBinaryEnvelopes pins the exact binary v1 bytes of every message
// type (control types with a Ctrl tag, since that is how the retransmit shim
// sends them). As with the JSON goldens, a diff here is a wire-format break:
// deployed nodes would stop interoperating and the checked-in fuzz corpus
// would rot. The decode direction also asserts the canonical property —
// re-encoding an accepted datagram reproduces it byte-identically.
func TestGoldenBinaryEnvelopes(t *testing.T) {
	cases := []struct {
		env    Envelope
		golden string // hex
	}{
		{
			Envelope{Type: TypeJoin, From: "j", Bandwidth: 3.5, Ctrl: 1},
			"f54d010201016a020000000000000c401001",
		},
		{
			Envelope{Type: TypeAccept, From: "p", Depth: 2, Ctrl: 2},
			"f54d010401017003041002",
		},
		{
			Envelope{Type: TypeReject, From: "p", Ctrl: 3},
			"f54d01060101701003",
		},
		{
			Envelope{Type: TypeLeave, From: "c", Ctrl: 4},
			"f54d01080101631004",
		},
		{
			Envelope{Type: TypeHeartbeat, From: "p", Bandwidth: 3, Depth: 1, Seq: 7, BTP: 42.5},
			"f54d010a010170020000000000000840030204070e0000000000404540",
		},
		{
			Envelope{Type: TypePacket, From: "s", Packet: 100, Payload: []byte{1, 2, 3}},
			"f54d010c01017305c8010603010203",
		},
		{
			Envelope{Type: TypeELN, From: "p", FirstMissing: 10, LastMissing: 20},
			"f54d010e01017007140828",
		},
		{
			Envelope{Type: TypeRepairRequest, From: "a", FirstMissing: 5, LastMissing: 25,
				Chain: []Addr{"r2", "r3"}, Requester: "orig", Epsilon: 0.25, Ctrl: 5},
			"f54d0110010161070a083209020272320272330a046f7269670b000000000000d03f1005",
		},
		{
			Envelope{Type: TypeRepairData, From: "r", Packet: 15, Payload: []byte("x")},
			"f54d0112010172051e060178",
		},
		{
			Envelope{Type: TypeMembershipRequest, From: "a", Limit: 100,
				Members: []MemberInfo{{Addr: "a", Depth: 2, Spare: 1, Bandwidth: 3}}, Ctrl: 6},
			"f54d01140101610c01016104020000000000000840000dc8011006",
		},
		{
			Envelope{Type: TypeMembershipReply, From: "b", Members: []MemberInfo{
				{Addr: "m1", Depth: 3, Spare: 2, Bandwidth: 4, Ancestors: []Addr{"p", "root"}},
			}, Ctrl: 7},
			"f54d01160101620c01026d310604000000000000104002017004726f6f741007",
		},
		{
			Envelope{Type: TypeSwitchPropose, From: "c", BTP: 123.4, Ctrl: 8},
			"f54d01180101630e9a99999999d95e401008",
		},
		{
			Envelope{Type: TypeSwitchAccept, From: "p", NewParent: "gp", Ctrl: 9},
			"f54d011a0101700f0267701009",
		},
		{
			Envelope{Type: TypeSwitchReject, From: "p", Ctrl: 10},
			"f54d011c010170100a",
		},
		{
			Envelope{Type: TypeSwitchCommit, From: "i", Chain: []Addr{"old"}, NewParent: "np", Ctrl: 11},
			"f54d011e0101690901036f6c640f026e70100b",
		},
		{
			Envelope{Type: TypeAck, From: "r", Ctrl: 12},
			"f54d0120010172100c",
		},
	}
	covered := map[Type]bool{}
	for _, tc := range cases {
		covered[tc.env.Type] = true
		golden, err := hex.DecodeString(tc.golden)
		if err != nil {
			t.Fatalf("bad golden hex for %v: %v", tc.env.Type, err)
		}
		b, err := EncodeBinary(tc.env)
		if err != nil {
			t.Fatalf("EncodeBinary(%v): %v", tc.env.Type, err)
		}
		if !bytes.Equal(b, golden) {
			t.Errorf("%v binary encoding drifted:\n got  %x\n want %x", tc.env.Type, b, golden)
		}
		got, err := DecodeBinary(golden)
		if err != nil {
			t.Fatalf("DecodeBinary(%v golden): %v", tc.env.Type, err)
		}
		if !reflect.DeepEqual(got, tc.env) {
			t.Errorf("%v golden round trip changed the envelope:\n got  %+v\n want %+v", tc.env.Type, got, tc.env)
		}
		again, err := EncodeBinary(got)
		if err != nil {
			t.Fatalf("re-encoding %v: %v", tc.env.Type, err)
		}
		if !bytes.Equal(again, golden) {
			t.Errorf("%v re-encode not canonical:\n got  %x\n want %x", tc.env.Type, again, golden)
		}
	}
	for ty := TypeJoin; ty <= TypeAck; ty++ {
		if !covered[ty] {
			t.Errorf("no binary golden case for %v", ty)
		}
	}
}

// TestBinaryRejects exercises the explicit rejection policy: wrong magic,
// unknown version, unknown / out-of-order / duplicate / explicit-zero
// fields, non-minimal varints, truncation and trailing garbage all fail with
// the right guard-visible reason.
func TestBinaryRejects(t *testing.T) {
	enc := func(env Envelope) []byte {
		b, err := EncodeBinary(env)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return b
	}
	base := enc(Envelope{Type: TypeJoin, From: "j", Bandwidth: 3.5})
	cases := []struct {
		name   string
		data   []byte
		reason string
	}{
		{"empty", nil, ReasonMalformed},
		{"magic-only", []byte{BinaryMagic0, BinaryMagic1}, ReasonMalformed},
		{"wrong-magic", append([]byte{'{', 'x'}, base[2:]...), ReasonMalformed},
		{"future-version", append([]byte{BinaryMagic0, BinaryMagic1, 2}, base[3:]...), ReasonVersion},
		{"version-zero", append([]byte{BinaryMagic0, BinaryMagic1, 0}, base[3:]...), ReasonVersion},
		{"oversize", make([]byte, MaxDatagram+1), ReasonSize},
		{"unknown-field", append(append([]byte{}, base...), 99, 1), ReasonField},
		{"field-order", []byte{BinaryMagic0, BinaryMagic1, 1, 2 /*join*/, 3, 2 /*depth=1*/, 1, 1, 'j'}, ReasonField},
		{"duplicate-field", []byte{BinaryMagic0, BinaryMagic1, 1, 2, 1, 1, 'j', 1, 1, 'k'}, ReasonField},
		{"explicit-zero-depth", []byte{BinaryMagic0, BinaryMagic1, 1, 2, 1, 1, 'j', 3, 0}, ReasonField},
		{"explicit-empty-from", []byte{BinaryMagic0, BinaryMagic1, 1, 2, 1, 0}, ReasonField},
		{"non-minimal-varint", []byte{BinaryMagic0, BinaryMagic1, 1, 2, 1, 1, 'j', 4, 0x80, 0x00}, ReasonField},
		{"truncated-string", []byte{BinaryMagic0, BinaryMagic1, 1, 2, 1, 5, 'j'}, ReasonMalformed},
		{"truncated-float", []byte{BinaryMagic0, BinaryMagic1, 1, 2, 1, 1, 'j', 2, 1, 2, 3}, ReasonMalformed},
		{"trailing-garbage", append(append([]byte{}, base...), 0), ReasonField},
		{"unknown-type", enc(Envelope{Type: Type(99), From: "x"}), ReasonType},
		{"ctrl-on-packet", enc(Envelope{Type: TypePacket, From: "s", Packet: 1, Ctrl: 3}), ReasonCtrl},
		{"ack-without-ctrl", enc(Envelope{Type: TypeAck, From: "r"}), ReasonCtrl},
	}
	for _, tc := range cases {
		_, err := DecodeBinary(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if r := Reason(err); r != tc.reason {
			t.Errorf("%s: reason %q, want %q (%v)", tc.name, r, tc.reason, err)
		}
	}
	// Attribution: a validation reject still names the claimed sender.
	env, err := DecodeBinary(enc(Envelope{Type: TypePacket, From: "evil", Packet: 1, Ctrl: 3}))
	if err == nil || env.From != "evil" {
		t.Fatalf("validation reject lost attribution: env=%+v err=%v", env, err)
	}
}

// TestBinaryPayloadAliasing pins the zero-copy contract: the decoded payload
// shares the input buffer's backing array instead of copying.
func TestBinaryPayloadAliasing(t *testing.T) {
	b, err := EncodeBinary(Envelope{Type: TypePacket, From: "s", Packet: 7, Payload: []byte{9, 9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	env, err := DecodeBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if env.Payload[2] == 9 {
		t.Fatal("payload was copied, not aliased")
	}
}
