package wire

import (
	"fmt"
	"math"
)

// Binary wire format v1. A datagram is:
//
//	magic[2] version[1] type[uvarint] (field-id[1] field-value)*
//
// Fields are tagged with the IDs below and MUST appear in strictly ascending
// ID order with zero-valued fields omitted — the encoding of an envelope is
// canonical (exactly one byte string per envelope), so relays and the fuzz
// harness can assert byte-identical re-encoding, and an attacker cannot mint
// semantic aliases of one message. Decoding rejects unknown versions (reason
// "version"), unknown / duplicate / out-of-order / explicitly-zero fields and
// non-minimal varints (reason "field"), and truncated or trailing bytes
// (reason "malformed").
//
// Value encodings: unsigned integers are minimal uvarints; signed integers
// are zigzag uvarints; floats are 8-byte little-endian IEEE 754 bits;
// strings and byte fields are uvarint length + raw bytes; address lists are
// uvarint count + strings; the member list is uvarint count + records, each
// record the fixed untagged sequence addr, depth, spare, bandwidth,
// ancestors. DecodeBinary is zero-copy for the payload: the returned
// envelope's Payload aliases the input buffer.
const (
	// BinaryMagic0 and BinaryMagic1 prefix every binary envelope. The first
	// byte is outside ASCII so no JSON envelope (which starts with '{') or
	// text protocol can collide with it.
	BinaryMagic0 = 0xF5
	BinaryMagic1 = 0x4D // 'M' for multicast
	// BinaryVersion is the current (and only) binary format version.
	BinaryVersion = 1
	// binaryHeaderLen covers magic and version; the type varint follows.
	binaryHeaderLen = 3
)

// Binary field IDs. Frozen: new fields append new IDs; IDs are never reused.
const (
	binFrom         = 1
	binBandwidth    = 2
	binDepth        = 3
	binSeq          = 4
	binPacket       = 5
	binPayload      = 6
	binFirstMissing = 7
	binLastMissing  = 8
	binChain        = 9
	binRequester    = 10
	binEpsilon      = 11
	binMembers      = 12
	binLimit        = 13
	binBTP          = 14
	binNewParent    = 15
	binCtrl         = 16
	binFieldMax     = binCtrl
)

// IsBinary reports whether b starts with the binary envelope magic (any
// version). Receivers use it to tell the two codecs apart.
func IsBinary(b []byte) bool {
	return len(b) >= 2 && b[0] == BinaryMagic0 && b[1] == BinaryMagic1
}

// ---- primitive writers ----

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// zigzag folds signed integers into unsigned so small magnitudes of either
// sign stay short.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendVarint(dst []byte, v int64) []byte { return appendUvarint(dst, zigzag(v)) }

func appendFloat(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	return append(dst,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendAddrs(dst []byte, addrs []Addr) []byte {
	dst = appendUvarint(dst, uint64(len(addrs)))
	for _, a := range addrs {
		dst = appendString(dst, string(a))
	}
	return dst
}

// AppendBinary appends env's canonical binary v1 encoding to dst and returns
// the extended slice. It never fails: every representable envelope encodes
// (validity is Decode's concern, mirroring the JSON codec's split).
func AppendBinary(dst []byte, env Envelope) []byte {
	dst = append(dst, BinaryMagic0, BinaryMagic1, BinaryVersion)
	dst = appendUvarint(dst, zigzag(int64(env.Type)))
	if env.From != "" {
		dst = appendString(append(dst, binFrom), string(env.From))
	}
	if env.Bandwidth != 0 {
		dst = appendFloat(append(dst, binBandwidth), env.Bandwidth)
	}
	if env.Depth != 0 {
		dst = appendVarint(append(dst, binDepth), int64(env.Depth))
	}
	if env.Seq != 0 {
		dst = appendUvarint(append(dst, binSeq), env.Seq)
	}
	if env.Packet != 0 {
		dst = appendVarint(append(dst, binPacket), env.Packet)
	}
	if len(env.Payload) != 0 {
		dst = appendUvarint(append(dst, binPayload), uint64(len(env.Payload)))
		dst = append(dst, env.Payload...)
	}
	if env.FirstMissing != 0 {
		dst = appendVarint(append(dst, binFirstMissing), env.FirstMissing)
	}
	if env.LastMissing != 0 {
		dst = appendVarint(append(dst, binLastMissing), env.LastMissing)
	}
	if len(env.Chain) != 0 {
		dst = appendAddrs(append(dst, binChain), env.Chain)
	}
	if env.Requester != "" {
		dst = appendString(append(dst, binRequester), string(env.Requester))
	}
	if env.Epsilon != 0 {
		dst = appendFloat(append(dst, binEpsilon), env.Epsilon)
	}
	if len(env.Members) != 0 {
		dst = appendUvarint(append(dst, binMembers), uint64(len(env.Members)))
		for _, m := range env.Members {
			dst = appendString(dst, string(m.Addr))
			dst = appendVarint(dst, int64(m.Depth))
			dst = appendVarint(dst, int64(m.Spare))
			dst = appendFloat(dst, m.Bandwidth)
			dst = appendAddrs(dst, m.Ancestors)
		}
	}
	if env.Limit != 0 {
		dst = appendVarint(append(dst, binLimit), int64(env.Limit))
	}
	if env.BTP != 0 {
		dst = appendFloat(append(dst, binBTP), env.BTP)
	}
	if env.NewParent != "" {
		dst = appendString(append(dst, binNewParent), string(env.NewParent))
	}
	if env.Ctrl != 0 {
		dst = appendUvarint(append(dst, binCtrl), env.Ctrl)
	}
	return dst
}

// EncodeBinary serialises the envelope in binary v1. The error is always nil
// (kept for symmetry with the JSON Encode and the Codec interface).
func EncodeBinary(env Envelope) ([]byte, error) {
	return AppendBinary(make([]byte, 0, 64), env), nil
}

// ---- primitive readers ----

// binReader walks one datagram. Every read error is sticky in err; the field
// loop checks it once per field.
type binReader struct {
	b   []byte
	off int
	err *ValidationError
}

func (r *binReader) fail(t Type, reason, format string, args ...any) {
	if r.err == nil {
		r.err = bad(t, reason, format, args...)
	}
}

// uvarint reads a minimal-form varint. Non-minimal forms (a redundant
// trailing zero group, or more than ten bytes) are rejected: they would give
// one value several encodings and break canonical re-encoding.
func (r *binReader) uvarint(t Type) uint64 {
	var v uint64
	for i := 0; ; i++ {
		if r.off >= len(r.b) {
			r.fail(t, ReasonMalformed, "truncated varint at byte %d", r.off)
			return 0
		}
		c := r.b[r.off]
		r.off++
		if i == 9 && c > 1 {
			r.fail(t, ReasonField, "varint overflows 64 bits")
			return 0
		}
		if c < 0x80 {
			if c == 0 && i > 0 {
				r.fail(t, ReasonField, "non-minimal varint")
				return 0
			}
			return v | uint64(c)<<(7*i)
		}
		v |= uint64(c&0x7f) << (7 * i)
	}
}

func (r *binReader) varint(t Type) int64 { return unzigzag(r.uvarint(t)) }

func (r *binReader) float(t Type) float64 {
	if r.off+8 > len(r.b) {
		r.fail(t, ReasonMalformed, "truncated float at byte %d", r.off)
		r.off = len(r.b)
		return 0
	}
	b := r.b[r.off:]
	r.off += 8
	bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return math.Float64frombits(bits)
}

// bytes reads a length-prefixed byte field, aliasing the input buffer.
func (r *binReader) bytes(t Type) []byte {
	n := r.uvarint(t)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(t, ReasonMalformed, "length %d overruns datagram at byte %d", n, r.off)
		r.off = len(r.b)
		return nil
	}
	out := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return out
}

func (r *binReader) str(t Type) string { return string(r.bytes(t)) }

// addrs reads a counted address list. The count is capped by the bytes
// actually present (each entry needs at least its length byte), so a forged
// count cannot force a huge allocation.
func (r *binReader) addrs(t Type) []Addr {
	n := r.uvarint(t)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(t, ReasonMalformed, "list count %d overruns datagram", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]Addr, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, Addr(r.str(t)))
	}
	return out
}

// DecodeBinaryRaw parses a binary v1 envelope WITHOUT semantic validation —
// the binary analogue of DecodeRaw, and the same wire-taint contract: the
// result is attacker-controlled until Validate accepts it. The returned
// envelope's Payload aliases b. On a post-header failure the partially
// decoded envelope is returned so the guard layer can attribute the reject.
func DecodeBinaryRaw(b []byte) (Envelope, error) {
	var env Envelope
	if len(b) > MaxDatagram {
		return env, &ValidationError{Reason: ReasonSize,
			Detail: fmt.Sprintf("datagram %d bytes > %d", len(b), MaxDatagram)}
	}
	if !IsBinary(b) {
		return env, bad(0, ReasonMalformed, "missing binary envelope magic")
	}
	if len(b) < binaryHeaderLen {
		return env, bad(0, ReasonMalformed, "truncated binary header")
	}
	if b[2] != BinaryVersion {
		return env, bad(0, ReasonVersion, "unknown binary version %d", b[2])
	}
	r := &binReader{b: b, off: binaryHeaderLen}
	env.Type = Type(r.varint(0))
	t := env.Type
	prev := 0
	for r.err == nil && r.off < len(r.b) {
		id := int(r.b[r.off])
		r.off++
		if id < 1 || id > binFieldMax {
			r.fail(t, ReasonField, "unknown field id %d", id)
			break
		}
		if id <= prev {
			r.fail(t, ReasonField, "field id %d out of order after %d", id, prev)
			break
		}
		prev = id
		zero := false
		switch id {
		case binFrom:
			env.From = Addr(r.str(t))
			zero = env.From == ""
		case binBandwidth:
			env.Bandwidth = r.float(t)
			zero = env.Bandwidth == 0
		case binDepth:
			env.Depth = int(r.varint(t))
			zero = env.Depth == 0
		case binSeq:
			env.Seq = r.uvarint(t)
			zero = env.Seq == 0
		case binPacket:
			env.Packet = r.varint(t)
			zero = env.Packet == 0
		case binPayload:
			env.Payload = r.bytes(t)
			zero = len(env.Payload) == 0
		case binFirstMissing:
			env.FirstMissing = r.varint(t)
			zero = env.FirstMissing == 0
		case binLastMissing:
			env.LastMissing = r.varint(t)
			zero = env.LastMissing == 0
		case binChain:
			env.Chain = r.addrs(t)
			zero = len(env.Chain) == 0
		case binRequester:
			env.Requester = Addr(r.str(t))
			zero = env.Requester == ""
		case binEpsilon:
			env.Epsilon = r.float(t)
			zero = env.Epsilon == 0
		case binMembers:
			env.Members = r.members(t)
			zero = len(env.Members) == 0
		case binLimit:
			env.Limit = int(r.varint(t))
			zero = env.Limit == 0
		case binBTP:
			env.BTP = r.float(t)
			zero = env.BTP == 0
		case binNewParent:
			env.NewParent = Addr(r.str(t))
			zero = env.NewParent == ""
		case binCtrl:
			env.Ctrl = r.uvarint(t)
			zero = env.Ctrl == 0
		}
		// A field spelling out its zero value is a non-canonical alias of the
		// omitted form (this also catches negative-zero floats, whose bits
		// differ but whose value re-encodes as omitted).
		if r.err == nil && zero {
			r.fail(t, ReasonField, "field id %d carries its zero value", id)
		}
	}
	if r.err != nil {
		return env, r.err
	}
	return env, nil
}

// members reads the member list: count, then fixed-order untagged records.
func (r *binReader) members(t Type) []MemberInfo {
	n := r.uvarint(t)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(t, ReasonMalformed, "member count %d overruns datagram", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]MemberInfo, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		var m MemberInfo
		m.Addr = Addr(r.str(t))
		m.Depth = int(r.varint(t))
		m.Spare = int(r.varint(t))
		m.Bandwidth = r.float(t)
		m.Ancestors = r.addrs(t)
		out = append(out, m)
	}
	return out
}

// DecodeBinary parses a binary v1 envelope and runs the full semantic
// validators — the binary analogue of Decode, with the same attribution
// contract: on a validation failure the partially decoded envelope rides
// along with the error. The returned envelope's Payload aliases b.
func DecodeBinary(b []byte) (Envelope, error) {
	env, err := DecodeBinaryRaw(b)
	if err != nil {
		return env, err
	}
	if err := Validate(env); err != nil {
		return env, err
	}
	return env, nil
}
