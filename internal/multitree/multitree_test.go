package multitree

import (
	"sort"
	"testing"
	"time"

	"omcast/internal/eventsim"
	"omcast/internal/xrand"
)

// quickCfg is a small, fast session.
func quickCfg(seed int64, stripes int) Config {
	return Config{
		Seed:       seed,
		Stripes:    stripes,
		TargetSize: 300,
		Warmup:     1200 * time.Second,
		Measure:    1200 * time.Second,
	}
}

func runSession(t *testing.T, cfg Config) (*Session, Result) {
	t.Helper()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < cfg.Stripes; i++ {
		if err := s.Tree(i).CheckInvariants(); err != nil {
			t.Fatalf("tree %d invariants: %v", i, err)
		}
	}
	return s, res
}

func TestValidate(t *testing.T) {
	if err := (Config{Stripes: 0, TargetSize: 10}).Validate(); err == nil {
		t.Fatal("zero stripes accepted")
	}
	if err := (Config{Stripes: 2, TargetSize: 0}).Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewSession(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{Stripes: 4, TargetSize: 10}.withDefaults()
	if cfg.Contribution != SplitContribution {
		t.Fatal("contribution default wrong")
	}
	if cfg.QuorumStripes != 4 {
		t.Fatalf("quorum default = %d, want 4 (= stripes)", cfg.QuorumStripes)
	}
	if cfg.Rate != 10 || cfg.Buffer != 5*time.Second {
		t.Fatal("stream defaults wrong")
	}
	over := Config{Stripes: 2, TargetSize: 10, QuorumStripes: 5}.withDefaults()
	if over.QuorumStripes != 2 {
		t.Fatalf("oversized quorum not clamped: %d", over.QuorumStripes)
	}
}

func TestContributionString(t *testing.T) {
	if SplitContribution.String() != "split" || DisjointContribution.String() != "disjoint" {
		t.Fatal("contribution names wrong")
	}
}

func TestSingleStripeDegeneratesToSingleTree(t *testing.T) {
	_, res := runSession(t, quickCfg(1, 1))
	if res.Members == 0 {
		t.Fatal("no members measured")
	}
	if len(res.MaxDepths) != 1 {
		t.Fatalf("MaxDepths = %v, want one tree", res.MaxDepths)
	}
	if res.FullQualityRatio <= 0 || res.FullQualityRatio > 1 {
		t.Fatalf("quality ratio %g out of range", res.FullQualityRatio)
	}
}

func TestMultiStripeRuns(t *testing.T) {
	s, res := runSession(t, quickCfg(2, 4))
	if len(res.MaxDepths) != 4 {
		t.Fatalf("MaxDepths = %v, want 4 trees", res.MaxDepths)
	}
	if res.Episodes == 0 {
		t.Fatal("no recovery episodes under churn")
	}
	// Every participant node count matches across trees: members join all
	// stripes.
	sizes := make([]int, 4)
	for i := range sizes {
		sizes[i] = s.Tree(i).Size()
	}
	for i := 1; i < 4; i++ {
		diff := sizes[i] - sizes[0]
		if diff < -2 || diff > 2 {
			t.Fatalf("stripe tree sizes diverge: %v", sizes)
		}
	}
}

func TestDeterminism(t *testing.T) {
	_, a := runSession(t, quickCfg(3, 2))
	_, b := runSession(t, quickCfg(3, 2))
	if a.FullQualityRatio != b.FullQualityRatio || a.OutageRatio != b.OutageRatio ||
		a.Episodes != b.Episodes {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestMDCQuorumAbsorbsLosses: with coding slack (quorum < stripes), the
// outage ratio must not exceed the no-slack outage ratio on the same run.
func TestMDCQuorumAbsorbsLosses(t *testing.T) {
	strict := quickCfg(4, 4)
	strict.QuorumStripes = 4
	_, a := runSession(t, strict)
	slack := quickCfg(4, 4)
	slack.QuorumStripes = 3
	_, b := runSession(t, slack)
	if b.OutageRatio > a.OutageRatio {
		t.Fatalf("coding slack increased outages: %g > %g", b.OutageRatio, a.OutageRatio)
	}
	if a.FullQualityRatio != b.FullQualityRatio {
		t.Fatal("quorum changed raw delivery (it must only change the outage mapping)")
	}
}

// TestDisjointContribution: members are interior in at most one tree.
func TestDisjointContribution(t *testing.T) {
	cfg := quickCfg(5, 3)
	cfg.Contribution = DisjointContribution
	s, res := runSession(t, cfg)
	if res.Members == 0 {
		t.Fatal("no members measured")
	}
	// Inspect the live population: a participant's nodes may have children
	// only in its designated tree.
	for id, p := range s.participants {
		interior := 0
		for tr, n := range p.nodes {
			if n != nil && len(n.Children()) > 0 {
				interior++
				if tr != p.designated {
					t.Fatalf("participant %d interior in tree %d, designated %d", id, tr, p.designated)
				}
			}
		}
		if interior > 1 {
			t.Fatalf("participant %d interior in %d trees", id, interior)
		}
	}
}

// TestROSTPerStripe: switching runs in every stripe tree.
func TestROSTPerStripe(t *testing.T) {
	cfg := quickCfg(6, 2)
	cfg.UseROST = true
	cfg.SwitchInterval = 120 * time.Second
	_, res := runSession(t, cfg)
	if res.Members == 0 {
		t.Fatal("no members measured")
	}
}

// TestStripePacketNumbering: stripe generation times interleave correctly.
func TestStripePacketNumbering(t *testing.T) {
	s, err := NewSession(quickCfg(7, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Global packet n = k*4 + t is generated at n/Rate seconds.
	for tr := 0; tr < 4; tr++ {
		for k := int64(0); k < 50; k++ {
			want := time.Duration(float64(k*4+int64(tr)) / 10 * float64(time.Second))
			if got := s.stripeGen(tr, k); got != want {
				t.Fatalf("stripeGen(%d,%d) = %v, want %v", tr, k, got, want)
			}
		}
	}
	// packetAfter returns the first stripe packet at or after t.
	for tr := 0; tr < 4; tr++ {
		for _, at := range []time.Duration{0, time.Second, 1234 * time.Millisecond, time.Hour} {
			k := s.stripePacketAfter(tr, at)
			if s.stripeGen(tr, k) < at {
				t.Fatalf("stripePacketAfter(%d,%v) = %d generated before t", tr, at, k)
			}
			if k > 0 && s.stripeGen(tr, k-1) >= at {
				t.Fatalf("stripePacketAfter(%d,%v) = %d not minimal", tr, at, k)
			}
		}
	}
}

// driveCorrelated builds a static two-stripe population, fails an interior
// member of tree 1 at 50s, then fails an interior member of tree 0 at 55s —
// while tree 1 is still mid-repair (its outage window runs to
// 50s + DetectDelay + RejoinDelay = 65s) — and returns the session's final
// accounting. Deterministic: same seed, same trees, same victims.
func driveCorrelated(t *testing.T, quorum int, contribution Contribution) (*Session, Result) {
	t.Helper()
	cfg := Config{
		Seed:          99,
		Stripes:       2,
		QuorumStripes: quorum,
		Contribution:  contribution,
		TargetSize:    40,
		RootBandwidth: 4, // constrain the root so the trees have interior members
		// Floor member bandwidth at 4 so every member can forward at least
		// two children per stripe: the 40 members form real multi-level trees.
		Bandwidth: xrand.BoundedPareto{Shape: 1.2, Lo: 4, Hi: 100},
		Warmup:    time.Nanosecond, // measure essentially everything
		Measure:   3600 * time.Second,
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.sim.Schedule(0, func(sim *eventsim.Simulator) {
		for i := 0; i < 40; i++ {
			s.joinAll(s.newParticipant(0), 0)
		}
	})
	if err := s.sim.Run(50 * time.Second); err != nil {
		t.Fatal(err)
	}
	pickInterior := func(tree int) *participant {
		ids := make([]int64, 0, len(s.participants))
		for id := range s.participants {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			p := s.participants[id]
			if n := p.nodes[tree]; n != nil && n.Attached() && len(n.Children()) > 0 {
				return p
			}
		}
		t.Fatalf("no interior member in tree %d", tree)
		return nil
	}
	s.depart(s.sim, pickInterior(1).id)
	if err := s.sim.Run(55 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.depart(s.sim, pickInterior(0).id)
	if err := s.sim.Run(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.finishAll()
	return s, s.result()
}

// TestCorrelatedStripeFailures: when tree A loses an interior member while
// tree B is mid-repair, both trees must record their own episodes and the
// MDC quorum decides whether the overlap becomes an outage: with one stripe
// of slack (quorum 1 of 2) the coding absorbs what the strict quorum counts.
func TestCorrelatedStripeFailures(t *testing.T) {
	_, strict := driveCorrelated(t, 2, SplitContribution)
	_, slack := driveCorrelated(t, 1, SplitContribution)
	if strict.Episodes == 0 {
		t.Fatal("correlated failures ran no recovery episodes")
	}
	var epA, epB int
	for _, tl := range strict.TreeLoads {
		switch tl.Tree {
		case 0:
			epA = tl.Episodes
		case 1:
			epB = tl.Episodes
		}
	}
	if epA == 0 || epB == 0 {
		t.Fatalf("per-tree episodes = (%d, %d), want both trees charged", epA, epB)
	}
	if epA+epB != strict.Episodes {
		t.Fatalf("per-tree episodes %d+%d != total %d", epA, epB, strict.Episodes)
	}
	// Identical runs, different quorum: raw delivery identical, outage only
	// at the strict quorum.
	if strict.FullQualityRatio != slack.FullQualityRatio {
		t.Fatalf("quorum changed raw delivery: %g vs %g",
			strict.FullQualityRatio, slack.FullQualityRatio)
	}
	if strict.OutageRatio < slack.OutageRatio {
		t.Fatalf("strict quorum outage %g below slack quorum %g",
			strict.OutageRatio, slack.OutageRatio)
	}
	if strict.OutageRatio == 0 {
		t.Fatal("strict quorum saw no outage from correlated failures")
	}
	if slack.OutageRatio > 0 {
		t.Fatalf("one stripe of MDC slack did not absorb a single-stripe-deep overlap: %g",
			slack.OutageRatio)
	}
}

// TestBlastRadiusAccounting: under SplitContribution one member can be
// interior in several trees at once, so a single failure may disrupt
// multiple stripes; DisjointContribution's interior-disjointness bounds the
// blast radius at one stripe.
func TestBlastRadiusAccounting(t *testing.T) {
	_, split := driveCorrelated(t, 2, SplitContribution)
	if split.MaxBlastRadius < 1 {
		t.Fatalf("split blast radius %d after interior failures, want >= 1", split.MaxBlastRadius)
	}
	if split.MaxBlastRadius > 2 {
		t.Fatalf("blast radius %d exceeds stripe count", split.MaxBlastRadius)
	}
	_, disjoint := driveCorrelated(t, 2, DisjointContribution)
	if disjoint.MaxBlastRadius > 1 {
		t.Fatalf("disjoint blast radius %d, want <= 1 (interior-node disjointness)",
			disjoint.MaxBlastRadius)
	}
}

// TestDisjointBlastRadiusUnderChurn: the blast-radius bound holds over a
// whole churned session, not just a scripted failure pair.
func TestDisjointBlastRadiusUnderChurn(t *testing.T) {
	cfg := quickCfg(10, 3)
	cfg.Contribution = DisjointContribution
	_, res := runSession(t, cfg)
	if res.MaxBlastRadius > 1 {
		t.Fatalf("disjoint blast radius %d under churn, want <= 1", res.MaxBlastRadius)
	}
	if res.Episodes > 0 && res.MaxBlastRadius != 1 {
		t.Fatalf("episodes ran (%d) but blast radius is %d", res.Episodes, res.MaxBlastRadius)
	}
}

// TestLoads: per-tree load accounting matches the trees themselves.
func TestLoads(t *testing.T) {
	s, res := runSession(t, quickCfg(11, 3))
	loads := s.Loads()
	if len(loads) != 3 {
		t.Fatalf("Loads() returned %d trees, want 3", len(loads))
	}
	epSum, disSum := 0, 0
	for i, tl := range loads {
		if tl.Tree != i {
			t.Fatalf("loads[%d].Tree = %d", i, tl.Tree)
		}
		if want := s.Tree(i).Size() - 1; tl.Members != want {
			t.Fatalf("tree %d Members = %d, want %d (size minus root)", i, tl.Members, want)
		}
		if tl.Interior > tl.Members {
			t.Fatalf("tree %d interior %d > members %d", i, tl.Interior, tl.Members)
		}
		if tl.MaxDepth != s.Tree(i).MaxDepth() {
			t.Fatalf("tree %d MaxDepth = %d, want %d", i, tl.MaxDepth, s.Tree(i).MaxDepth())
		}
		epSum += tl.Episodes
		disSum += tl.Disruptions
	}
	if epSum != res.Episodes {
		t.Fatalf("per-tree episodes sum %d != total %d", epSum, res.Episodes)
	}
	if disSum != res.Disruptions {
		t.Fatalf("per-tree disruptions sum %d != total %d", disSum, res.Disruptions)
	}
	if len(res.TreeLoads) != 3 {
		t.Fatalf("Result.TreeLoads has %d trees, want 3", len(res.TreeLoads))
	}
}

// TestMoreStripesReduceOutage is the extension's headline: with the same
// population and MDC slack of one stripe, striping reduces outages compared
// to the single tree because a failure interrupts only one stripe.
func TestMoreStripesReduceOutage(t *testing.T) {
	single := quickCfg(8, 1)
	single.TargetSize = 500
	_, a := runSession(t, single)
	striped := quickCfg(8, 4)
	striped.TargetSize = 500
	striped.QuorumStripes = 3
	_, b := runSession(t, striped)
	if b.OutageRatio >= a.OutageRatio {
		t.Fatalf("4-stripe MDC outage %g not below single-tree %g", b.OutageRatio, a.OutageRatio)
	}
}
