package faultnet

import (
	"strings"
	"testing"
	"time"
)

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"150ms"`)); err != nil || d.D() != 150*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`2.5`)); err != nil || d.D() != 2500*time.Millisecond {
		t.Fatalf("numeric form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("bad duration accepted")
	}
	b, err := Duration(time.Second).MarshalJSON()
	if err != nil || string(b) != `"1s"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
}

func TestRuleValidate(t *testing.T) {
	good := Rule{Drop: 0.1, Duplicate: 0.05, Reorder: 0.02, Latency: Duration(10 * time.Millisecond)}
	if err := good.Validate(); err != nil {
		t.Fatalf("good rule rejected: %v", err)
	}
	for _, bad := range []Rule{
		{Drop: 1.5},
		{Duplicate: -0.1},
		{Latency: Duration(-time.Second)},
		{RateBytes: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad rule %+v accepted", bad)
		}
	}
}

// TestDeciderDeterministic is the core contract: the decision at index n is
// a pure function of (seed, link, n), so the same stream replays exactly and
// rule values never shift the underlying draws.
func TestDeciderDeterministic(t *testing.T) {
	rule := Rule{Drop: 0.2, Duplicate: 0.1, Reorder: 0.1}
	a := NewDecider(42, "n1", "n2")
	b := NewDecider(42, "n1", "n2")
	for i := 0; i < 500; i++ {
		da, db := a.Next(rule), b.Next(rule)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}

	// Different links and different seeds must give different streams.
	c := NewDecider(42, "n1", "n3")
	d := NewDecider(43, "n1", "n2")
	sameC, sameD := 0, 0
	ref := NewDecider(42, "n1", "n2")
	for i := 0; i < 200; i++ {
		r := ref.Next(rule)
		if c.Next(rule) == r {
			sameC++
		}
		if d.Next(rule) == r {
			sameD++
		}
	}
	if sameC == 200 || sameD == 200 {
		t.Fatalf("streams not independent: link overlap %d, seed overlap %d", sameC, sameD)
	}
}

// TestDeciderFixedDraws checks that changing the rule's probabilities does
// not consume a different number of draws: the drop decision at index n is
// identical whether or not duplication/reordering were enabled earlier.
func TestDeciderFixedDraws(t *testing.T) {
	heavy := Rule{Drop: 0.3, Duplicate: 0.5, Reorder: 0.5}
	dropOnly := Rule{Drop: 0.3}
	a := NewDecider(7, "x", "y")
	b := NewDecider(7, "x", "y")
	for i := 0; i < 300; i++ {
		da, db := a.Next(heavy), b.Next(dropOnly)
		if da.Drop != db.Drop {
			t.Fatalf("drop decision %d depends on other rule fields", i)
		}
		if da.JitterFrac != db.JitterFrac {
			t.Fatalf("jitter draw %d depends on other rule fields", i)
		}
	}
}

func TestDeciderRates(t *testing.T) {
	rule := Rule{Drop: 0.2}
	d := NewDecider(1, "a", "b")
	drops := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if d.Next(rule).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("drop rate %.3f far from 0.2", got)
	}
}

func TestDecisionPreviewStable(t *testing.T) {
	links := []string{"a>b", "b>a", "a>c"}
	rule := Rule{Drop: 0.3, Reorder: 0.2}
	p1 := DecisionPreview(99, links, 20, rule)
	p2 := DecisionPreview(99, links, 20, rule)
	if p1 != p2 {
		t.Fatal("preview not byte-stable")
	}
	if !strings.Contains(p1, "a>b #0 ") {
		t.Fatalf("unexpected preview format:\n%s", p1)
	}
}

func TestParseSchedule(t *testing.T) {
	data := []byte(`{
		"seed": 7,
		"default_rule": {"drop": 0.05},
		"links": [
			{"from": "src", "to": "*", "rule": {"latency": "20ms", "jitter": "5ms"}}
		],
		"events": [
			{"at": "2s", "until": "4s", "action": "partition", "from": "a", "to": "b", "symmetric": true},
			{"at": "1s", "action": "crash", "node": "c", "until": "3s"},
			{"at": "2s", "action": "rule", "from": "*", "to": "b", "rule": {"drop": 0.5}}
		]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Seed != 7 || s.DefaultRule.Drop != 0.05 {
		t.Fatalf("schedule mis-parsed: %+v", s)
	}
	if got := s.Links[0].Rule.Latency.D(); got != 20*time.Millisecond {
		t.Fatalf("latency = %s", got)
	}

	plan := s.Expand()
	// 3 events, two with Until → 5 changes, ordered by (T, declaration).
	if len(plan) != 5 {
		t.Fatalf("expanded to %d changes, want 5", len(plan))
	}
	wantOrder := []Action{ActionCrash, ActionPartition, ActionRule, ActionRestart, ActionHeal}
	for i, c := range plan {
		if c.Action != wantOrder[i] {
			t.Fatalf("plan[%d] = %s, want %s\nplan:\n%s", i, c.Action, wantOrder[i], s.FormatPlan())
		}
		if c.Seq != i {
			t.Fatalf("plan[%d].Seq = %d", i, c.Seq)
		}
	}
	if plan[3].Action != ActionRestart || plan[3].Node != "c" || plan[3].T != 3*time.Second {
		t.Fatalf("crash reversal wrong: %+v", plan[3])
	}

	if p1, p2 := s.FormatPlan(), s.FormatPlan(); p1 != p2 {
		t.Fatal("FormatPlan not byte-stable")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"sede": 7}`,
		"bad probability":   `{"default_rule": {"drop": 2}}`,
		"missing link ends": `{"links": [{"rule": {"drop": 0.1}}]}`,
		"until before at":   `{"events": [{"at": "2s", "until": "1s", "action": "partition", "from": "a", "to": "b"}]}`,
		"rule without rule": `{"events": [{"at": "1s", "action": "rule", "from": "a", "to": "b"}]}`,
		"crash sans node":   `{"events": [{"at": "1s", "action": "crash"}]}`,
		"unknown action":    `{"events": [{"at": "1s", "action": "explode", "node": "a"}]}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestStaticRule(t *testing.T) {
	s := &Schedule{
		DefaultRule: &Rule{Drop: 0.01},
		Links: []LinkRule{
			{From: "src", To: "*", Rule: Rule{Drop: 0.2}},
			{From: "a", To: "b", Symmetric: true, Rule: Rule{Block: true}},
		},
	}
	if got := s.StaticRule("x", "y"); got.Drop != 0.01 {
		t.Fatalf("default not applied: %+v", got)
	}
	if got := s.StaticRule("src", "a"); got.Drop != 0.2 {
		t.Fatalf("link rule not applied: %+v", got)
	}
	if !s.StaticRule("a", "b").Block || !s.StaticRule("b", "a").Block {
		t.Fatal("symmetric rule not applied both ways")
	}
}

func TestMatch(t *testing.T) {
	if !Match("*", "anything") || !Match("a", "a") || Match("a", "b") {
		t.Fatal("Match broken")
	}
}

func TestLogEntryString(t *testing.T) {
	per := LogEntry{T: -1, Link: "a>b", N: 3, Action: "drop"}
	if got := per.String(); got != "a>b #3 drop" {
		t.Fatalf("per-datagram entry: %q", got)
	}
	sched := LogEntry{T: 2 * time.Second, Action: "partition", Detail: "a>b sym"}
	if got := sched.String(); got != "t=2s partition a>b sym" {
		t.Fatalf("schedule entry: %q", got)
	}
}
