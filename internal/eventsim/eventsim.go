// Package eventsim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in scheduling order, which keeps
// runs bit-for-bit reproducible for a fixed seed and event program. All
// simulated time is expressed as time.Duration offsets from the start of the
// simulation.
//
// The queue is an inlined 4-ary heap over pooled event records: firing or
// compacting an event returns its record to a free list, so the steady-state
// schedule/fire cycle performs no heap allocations, and the flat comparison
// loop avoids container/heap's interface boxing. Pop order is the strict
// total order (at, seq), so the internal heap layout can never leak into
// results.
package eventsim

import (
	"errors"
	"math"
	"time"

	"omcast/internal/metrics"
)

// Handler is the callback invoked when an event fires. The current simulator
// is passed in so handlers can schedule follow-up events.
type Handler func(sim *Simulator)

// ErrStopped is returned by Run when the simulation was halted by Stop before
// the horizon was reached.
var ErrStopped = errors.New("eventsim: simulation stopped")

// event is a single queued callback. Records are pooled: once an event fires
// or is swept by compaction its record returns to the simulator's free list
// with gen advanced, which invalidates every EventID still pointing at it.
type event struct {
	at       time.Duration
	schedAt  time.Duration // when Schedule was called (queue-residence metric)
	seq      uint64        // tie-break: FIFO among equal timestamps
	gen      uint32        // incremented on recycle; stale EventIDs mismatch
	canceled bool
	handler  Handler
}

// EventID identifies a scheduled event so it can be canceled. The zero value
// is never a valid ID.
type EventID struct {
	ev  *event
	gen uint32
}

// Valid reports whether the ID was issued by Schedule (the zero EventID is
// not). A valid ID may still refer to an event that has already fired.
func (id EventID) Valid() bool { return id.ev != nil }

// less orders events by (at, seq) — a strict total order because seq is
// unique per scheduled event.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Compaction policy: sweep canceled tombstones out of the queue once they
// are more than 1/compactFraction of it and at least compactMinCanceled
// (small queues are cheaper to drain than to rebuild).
const (
	compactFraction    = 4
	compactMinCanceled = 64
)

// kernelMetrics holds the kernel's optional instruments. All pointers are
// nil until Instrument is called; the metric types' nil-safe methods make
// every update a single predictable branch on the uninstrumented path.
type kernelMetrics struct {
	scheduled *metrics.Counter
	fired     *metrics.Counter
	canceled  *metrics.Counter
	residence *metrics.Histogram
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// not usable; construct with New.
type Simulator struct {
	now time.Duration
	// queue is a 4-ary min-heap ordered by (at, seq): children of slot i
	// live at 4i+1..4i+4. The shallower tree halves the sift-down depth of
	// the binary layout, and the flat loops need no interface dispatch.
	queue   []*event
	free    []*event // recycled event records
	seq     uint64
	stopped bool
	// processed counts events that actually fired (canceled events excluded).
	processed uint64
	// nCanceled counts canceled tombstones still sitting in the queue; when
	// they exceed len(queue)/compactFraction the queue is compacted so that
	// schedule/cancel churn cannot grow the queue without bound.
	nCanceled int
	// depthHigh tracks the largest queue depth ever observed; it is plain
	// kernel state (one int compare per Schedule) so the instrumented
	// hot path stays free of gauge writes.
	depthHigh int
	met       kernelMetrics
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Instrument registers the kernel's instruments on reg and starts feeding
// them: events scheduled/fired/canceled, current and high-water queue depth,
// and a histogram of virtual queue-residence time (fire time minus schedule
// time — how far ahead the simulation plans). All instruments are keyed in
// virtual time, so a fixed seed yields byte-identical snapshots; wall-clock
// kernel cost is profiled with -cpuprofile instead (see DESIGN.md §9).
func (s *Simulator) Instrument(reg *metrics.Registry) {
	s.met = kernelMetrics{
		scheduled: reg.Counter("omcast_sim_events_scheduled_total", "Events registered with the kernel."),
		fired:     reg.Counter("omcast_sim_events_fired_total", "Events whose handler ran (canceled events excluded)."),
		canceled:  reg.Counter("omcast_sim_events_canceled_total", "Events canceled before firing."),
		residence: reg.Histogram("omcast_sim_event_residence_seconds",
			"Virtual seconds an event spent queued between Schedule and firing.",
			metrics.LatencyBuckets()),
	}
	// The queue-depth gauges are func-backed: they read kernel state at
	// snapshot time instead of writing a gauge on every Schedule and fire.
	reg.GaugeFunc("omcast_sim_queue_depth",
		"Events currently queued, including canceled tombstones.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("omcast_sim_queue_depth_high_water",
		"Largest queue depth observed.",
		func() float64 { return float64(s.depthHigh) })
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Processed returns the number of events that have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events still queued, including canceled
// events that have been neither popped nor compacted away.
func (s *Simulator) Pending() int { return len(s.queue) }

// alloc takes an event record from the free list, or makes a new one.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle invalidates outstanding EventIDs for ev and returns its record to
// the free list. The handler reference is dropped so pooled records never
// pin closure captures.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.handler = nil
	s.free = append(s.free, ev)
}

// siftUp restores the heap property after appending at slot i.
func (s *Simulator) siftUp(i int) {
	q := s.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

// siftDown restores the heap property after replacing slot i.
func (s *Simulator) siftDown(i int) {
	q := s.queue
	n := len(q)
	ev := q[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for c++; c < end; c++ {
			if less(q[c], q[best]) {
				best = c
			}
		}
		if !less(q[best], ev) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = ev
}

// pop removes the queue head. The caller still holds the popped *event.
func (s *Simulator) pop() {
	q := s.queue
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

// compact sweeps canceled tombstones out of the queue and re-heapifies the
// survivors. Heap layout after the rebuild may differ from an insert-order
// layout, but pop order is fixed by the (at, seq) total order, so compaction
// is invisible to results.
func (s *Simulator) compact() {
	q := s.queue
	kept := q[:0]
	for _, ev := range q {
		if ev.canceled {
			s.recycle(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	s.queue = kept
	if len(kept) > 1 {
		for i := (len(kept) - 2) / 4; i >= 0; i-- {
			s.siftDown(i)
		}
	}
	s.nCanceled = 0
}

// Schedule registers handler to fire at absolute virtual time at. Times in
// the past (before Now) are clamped to Now, so the event fires next. The
// returned EventID can be passed to Cancel.
func (s *Simulator) Schedule(at time.Duration, handler Handler) EventID {
	if handler == nil {
		panic("eventsim: Schedule called with nil handler")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.alloc()
	ev.at = at
	ev.schedAt = s.now
	ev.seq = s.seq
	ev.canceled = false
	ev.handler = handler
	s.seq++
	s.queue = append(s.queue, ev)
	s.siftUp(len(s.queue) - 1)
	if len(s.queue) > s.depthHigh {
		s.depthHigh = len(s.queue)
	}
	s.met.scheduled.Inc()
	return EventID{ev: ev, gen: ev.gen}
}

// ScheduleAfter registers handler to fire delay after the current time.
// Negative delays are clamped to zero.
func (s *Simulator) ScheduleAfter(delay time.Duration, handler Handler) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, handler)
}

// Cancel prevents a scheduled event from firing. Canceling an already-fired
// or already-canceled event is a no-op (a fired event's record may have been
// recycled, which the ID's generation detects). It reports whether the event
// was live before the call.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.canceled {
		return false
	}
	id.ev.canceled = true
	s.nCanceled++
	s.met.canceled.Inc()
	if s.nCanceled >= compactMinCanceled && s.nCanceled*compactFraction > len(s.queue) {
		s.compact()
	}
	return true
}

// Stop halts the run loop after the currently firing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events in timestamp order until the queue is empty or the
// clock would pass horizon. Events exactly at the horizon still fire. It
// returns ErrStopped if Stop was called, otherwise nil.
func (s *Simulator) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > horizon {
			// Leave future events queued; advance the clock to the horizon
			// so a subsequent Run continues from there.
			s.now = horizon
			return nil
		}
		s.pop()
		if next.canceled {
			s.nCanceled--
			s.recycle(next)
			continue
		}
		// Recycle before invoking: the record is fully read out, the bumped
		// generation makes self-Cancel from inside the handler a no-op, and
		// the handler's own Schedule calls can reuse the record immediately.
		h, at, schedAt := next.handler, next.at, next.schedAt
		s.recycle(next)
		s.now = at
		h(s)
		s.processed++
		s.met.fired.Inc()
		// float64(d)*1e-9 instead of Seconds(): one multiply, not a divmod
		// decomposition — this runs once per fired event.
		s.met.residence.Observe(float64(at-schedAt) * 1e-9)
		if s.stopped {
			return ErrStopped
		}
	}
	if horizon > s.now && horizon != MaxHorizon {
		s.now = horizon
	}
	return nil
}

// MaxHorizon is a horizon value meaning "run until the queue drains".
const MaxHorizon = time.Duration(math.MaxInt64)

// RunAll processes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() error {
	return s.Run(MaxHorizon)
}
