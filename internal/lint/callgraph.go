package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Module is one analysis unit: every loaded package plus the lazily built
// function index and conservative intra-module call graph the typed rules
// share. All packages of one Module must come from a single Load/LoadDir call
// (they share a FileSet).
type Module struct {
	// Pkgs are the loaded packages, sorted by import path.
	Pkgs []*Package

	g *callGraph
}

func newModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs}
}

func (m *Module) fset() *token.FileSet {
	if len(m.Pkgs) == 0 {
		return token.NewFileSet()
	}
	return m.Pkgs[0].Fset
}

// graph builds (once) and returns the module call graph.
func (m *Module) graph() *callGraph {
	if m.g == nil {
		m.g = buildCallGraph(m)
	}
	return m.g
}

// atomKind classifies the impurity atoms the transitive handler-purity rule
// looks for.
type atomKind int

const (
	atomWallclock  atomKind = iota // time.Now / time.Since / timers
	atomGo                         // go statement
	atomGlobalRand                 // package-level math/rand call
	atomCryptoRand                 // crypto/rand entropy
)

// atom is one impurity occurrence inside a function body.
type atom struct {
	kind atomKind
	pos  token.Pos
	// text names the offending construct for the diagnostic ("time.Now").
	text string
}

// fnNode is one function in the call graph: a declared function or method, or
// a handler-shaped function literal (which gets its own node because it is a
// reachability root). Bodies of non-handler literals are attributed to their
// enclosing function — a closure is almost always called by its creator, and
// when it is instead stored and invoked elsewhere the attribution stays
// conservative (reachable-from-creator), never unsound for the creator chain.
type fnNode struct {
	// obj is the declared function object; nil for literal roots.
	obj *types.Func
	pkg *Package
	// name is the display name used in call-path diagnostics.
	name string
	pos  token.Pos
	// handler marks reachability roots: the eventsim.Handler signature.
	handler bool
	atoms   []atom
	calls   []*fnNode
	callSet map[*fnNode]bool
}

func (f *fnNode) addCall(callee *fnNode) {
	if callee == nil || callee == f || f.callSet[callee] {
		return
	}
	if f.callSet == nil {
		f.callSet = make(map[*fnNode]bool)
	}
	f.callSet[callee] = true
	f.calls = append(f.calls, callee)
}

// callGraph is the conservative static call graph of one module.
//
// Edges come from three resolutions:
//   - direct calls to module functions and methods (via Info.Uses);
//   - interface method calls, resolved to every module method with the same
//     name and an identical signature (supersets the true dynamic targets);
//   - calls through non-handler function literals, folded into the enclosing
//     function's node.
//
// Known false-negative edge: a function VALUE passed around and called via a
// plain identifier (f := pick(); f()) produces no edge — tracking value flow
// of function objects is out of scope. DESIGN.md §13 documents this.
type callGraph struct {
	nodes []*fnNode
	byObj map[*types.Func]*fnNode
	// methodsByName indexes module methods for interface-call resolution.
	methodsByName map[string][]*fnNode
}

func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{
		byObj:         make(map[*types.Func]*fnNode),
		methodsByName: make(map[string][]*fnNode),
	}
	// Pass 1: a node per declared function/method with a body.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.ObjectOf(fd.Name).(*types.Func)
				if !ok {
					continue
				}
				n := &fnNode{
					obj:     obj,
					pkg:     pkg,
					name:    displayName(obj),
					pos:     fd.Pos(),
					handler: isHandlerSig(obj.Type()),
				}
				g.nodes = append(g.nodes, n)
				g.byObj[obj] = n
				if fd.Recv != nil {
					g.methodsByName[obj.Name()] = append(g.methodsByName[obj.Name()], n)
				}
			}
		}
	}
	// Pass 2: walk bodies collecting atoms and call edges; handler literals
	// become their own root nodes.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if obj, ok := pkg.Info.ObjectOf(d.Name).(*types.Func); ok {
						g.walkBody(pkg, g.byObj[obj], d.Body)
					}
				case *ast.GenDecl:
					// Package-level var initializers can hold handler
					// literals (var onTick eventsim.Handler = func...).
					ast.Inspect(d, func(n ast.Node) bool {
						lit, ok := n.(*ast.FuncLit)
						if !ok {
							return true
						}
						if isHandlerSig(pkg.Info.TypeOf(lit)) {
							root := g.newLiteralRoot(pkg, lit)
							g.walkBody(pkg, root, lit.Body)
							return false
						}
						return true
					})
				}
			}
		}
	}
	return g
}

func (g *callGraph) newLiteralRoot(pkg *Package, lit *ast.FuncLit) *fnNode {
	pos := pkg.Fset.Position(lit.Pos())
	n := &fnNode{
		pkg:     pkg,
		name:    fmt.Sprintf("handler literal at line %d", pos.Line),
		pos:     lit.Pos(),
		handler: true,
	}
	g.nodes = append(g.nodes, n)
	return n
}

// walkBody attributes atoms and call edges inside body to owner. Handler
// literals nested in the body become new roots; other literals fold into
// owner.
func (g *callGraph) walkBody(pkg *Package, owner *fnNode, body *ast.BlockStmt) {
	if owner == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if isHandlerSig(pkg.Info.TypeOf(n)) {
				root := g.newLiteralRoot(pkg, n)
				g.walkBody(pkg, root, n.Body)
				return false
			}
			return true // fold into owner
		case *ast.GoStmt:
			owner.atoms = append(owner.atoms, atom{kind: atomGo, pos: n.Pos(), text: "go statement"})
		case *ast.SelectorExpr:
			switch p := pkgNameUse(pkg, n.X); {
			case p == "time" && wallclockFuncs[n.Sel.Name]:
				owner.atoms = append(owner.atoms, atom{kind: atomWallclock, pos: n.Pos(), text: "time." + n.Sel.Name})
			case (p == "math/rand" || p == "math/rand/v2") && globalRandFuncs[n.Sel.Name]:
				owner.atoms = append(owner.atoms, atom{kind: atomGlobalRand, pos: n.Pos(), text: "rand." + n.Sel.Name})
			case p == "crypto/rand":
				owner.atoms = append(owner.atoms, atom{kind: atomCryptoRand, pos: n.Pos(), text: "crypto/rand." + n.Sel.Name})
			}
		case *ast.CallExpr:
			for _, callee := range g.resolveCall(pkg, n) {
				owner.addCall(callee)
			}
		}
		return true
	})
}

// resolveCall maps a call expression to its possible module-internal targets.
func (g *callGraph) resolveCall(pkg *Package, call *ast.CallExpr) []*fnNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := g.byObj[fn]; n != nil {
				return []*fnNode{n}
			}
		}
	case *ast.SelectorExpr:
		obj := pkg.Info.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return nil
		}
		if n := g.byObj[fn]; n != nil {
			return []*fnNode{n} // concrete method or qualified package func
		}
		// Interface method: any module method with the same name and an
		// identical signature could be the dynamic target.
		if sel, isSel := pkg.Info.Selections[fun]; isSel && sel.Kind() == types.MethodVal {
			return g.matchingMethods(fn)
		}
	}
	return nil
}

// matchingMethods returns module methods matching an interface method's name
// and signature (receiver excluded from the comparison).
func (g *callGraph) matchingMethods(iface *types.Func) []*fnNode {
	want, ok := iface.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*fnNode
	for _, cand := range g.methodsByName[iface.Name()] {
		sig, ok := cand.obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		if types.Identical(sig.Params(), want.Params()) && types.Identical(sig.Results(), want.Results()) {
			out = append(out, cand)
		}
	}
	return out
}

// displayName renders a function for call-path diagnostics: Name for
// package-level functions, (*T).Name / T.Name for methods.
func displayName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return obj.Name()
	}
	t := sig.Recv().Type()
	star := ""
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
		star = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return fmt.Sprintf("(%s%s).%s", star, named.Obj().Name(), obj.Name())
	}
	return obj.Name()
}
