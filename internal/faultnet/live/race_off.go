//go:build !race

package live

// raceEnabled mirrors the node package's convention; see race_on.go.
const raceEnabled = false
