// Package node is the live implementation of the paper's protocol stack: a
// concurrent runtime that speaks the wire vocabulary over a Transport (an
// in-process network for tests, UDP for real deployments). It implements:
//
//   - the joining handshake (membership discovery, min-depth parent choice);
//   - parent/child heartbeats with failure detection;
//   - stream forwarding with a repair buffer;
//   - gap detection, Explicit Loss Notification, and CER-style striped
//     repair from a recovery group;
//   - membership gossip (bounded partial views with ancestor paths);
//   - the ROST switching handshake (propose / accept / commit), driven by
//     the bandwidth-time product carried on heartbeats.
//
// The simulation packages answer "does the design work at scale"; this
// package answers "does the protocol actually run" — its integration tests
// boot dozens of nodes, stream packets, kill members and watch the overlay
// heal in real time.
package node

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"omcast/internal/metrics"
	"omcast/internal/metrics/live"
	"omcast/internal/tracing"
	"omcast/internal/wire"
	"omcast/internal/xrand"
)

// Config parameterises one protocol node.
type Config struct {
	// Source marks the stream origin (depth 0, never joins).
	Source bool
	// Bandwidth is the node's outbound bandwidth in stream-rate units; its
	// out-degree is floor(Bandwidth).
	Bandwidth float64
	// StreamRate is the source's packet rate (packets per second).
	StreamRate float64
	// Bootstrap lists known members to discover the overlay through.
	Bootstrap []wire.Addr

	// HeartbeatInterval paces liveness messages; HeartbeatTimeout declares
	// a neighbour dead (default 3x the interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// GossipInterval paces membership exchanges.
	GossipInterval time.Duration
	// SwitchInterval paces ROST switching checks; zero disables switching.
	SwitchInterval time.Duration
	// BufferPackets bounds the repair buffer (default 256).
	BufferPackets int
	// RecoveryGroup is the CER group size K (default 3).
	RecoveryGroup int
	// MembershipLimit bounds the partial view (default 100).
	MembershipLimit int
	// PlaybackBuffer is the player's start-up buffering (default 2 s):
	// packet n's playout deadline is firstArrival + PlaybackBuffer +
	// (n-first)/rate; packets absent at their deadline count as starved
	// playback slots (the live analogue of the paper's starving-time ratio).
	PlaybackBuffer time.Duration
	// Seed drives the node's deterministic jitter streams (join and repair
	// backoff); two nodes with the same seed and address draw identical
	// jitter sequences.
	Seed int64
	// JoinBackoffBase/Max bound the capped exponential backoff between join
	// attempts (defaults: HeartbeatInterval and 8x it). Each unanswered
	// attempt doubles the delay; the actual wait is jittered to [d/2, d).
	JoinBackoffBase time.Duration
	JoinBackoffMax  time.Duration
	// RepairBackoffBase/Max pace repair requests the same way: detected gaps
	// merge into one pending window and at most one striped request (plus
	// ELN) leaves per backoff interval, so a partition heal cannot turn into
	// a repair storm (defaults: HeartbeatInterval/2 and 4x HeartbeatInterval).
	RepairBackoffBase time.Duration
	RepairBackoffMax  time.Duration
	// MemberStaleAfter excludes membership entries not heard from (directly
	// or via first-hand gossip) within this window from CER recovery-group
	// selection (default 10x GossipInterval, matching the gossip prune
	// horizon). Zero keeps the default; negative disables the filter.
	MemberStaleAfter time.Duration
	// StallRejoinAfter guards against zombie subtrees: a parent can be alive
	// (heartbeating) yet cut off from the stream — e.g. after a source
	// partition the orphans re-attach to each other and the re-formed tree is
	// not rooted at the source, so heartbeats keep flowing while playback
	// starves forever. Once a node has seen stream data, going this long
	// attached without accepting a single packet treats the parent as failed
	// and rejoins (default 6x HeartbeatTimeout; negative disables).
	StallRejoinAfter time.Duration
	// Metrics, if non-nil, receives the node's instruments (the concurrent
	// wall-clock backend; serve it over HTTP with live.Handler).
	Metrics *live.Registry
	// Trace, if non-nil, receives completed causal spans: join/rejoin
	// episodes with per-attempt children, repair round-trips, and playback
	// starvation windows (see internal/tracing). Point it at a
	// tracing/flight ring to get a crash-forensics recorder served over
	// /debug/trace. Span timestamps count seconds since node creation. Nil
	// costs one pointer check per hook.
	Trace tracing.Recorder

	// Codec names the wire codec for sent datagrams: "binary" (the default)
	// or "json" (the strict debug codec, readable with standard tooling).
	// Received datagrams are decoded by detection, so nodes configured with
	// different codecs interoperate.
	Codec string
	// RetxAttempts bounds how many times a control-class message (join,
	// accept/reject, leave, membership, switch, repair-request) is
	// transmitted before the reliability shim gives up: the first send plus
	// up to RetxAttempts-1 retransmits, each awaiting an ack. Zero keeps the
	// default (4); negative disables the shim (pure fire-and-forget, the
	// pre-shim behaviour). Data-class traffic is never retransmitted.
	RetxAttempts int
	// RetxBackoffBase/Max bound the capped jittered backoff between
	// retransmits of one control message (defaults: HeartbeatInterval/2 and
	// 4x HeartbeatInterval) — the same doubling policy as the join and
	// repair backoffs, drawn from its own deterministic stream.
	RetxBackoffBase time.Duration
	RetxBackoffMax  time.Duration
	// RetxInflight caps unacked control messages per peer; sends over the
	// cap fall back to fire-and-forget so a dead peer cannot pin unbounded
	// retransmit state (default 32).
	RetxInflight int

	// DisableGuard switches the per-peer misbehavior guard off (validation
	// still applies; rejects just go unattributed). Test/ablation knob.
	DisableGuard bool
	// GuardRequestRate/Burst shape the per-peer token bucket metering
	// request-type messages — Join, RepairRequest, MembershipRequest
	// (defaults 100/s and 2x rate). Honest peers direct at most a few tens
	// of requests per second at any single target.
	GuardRequestRate  float64
	GuardRequestBurst float64
	// GuardQuarantineScore is the decayed misbehavior score that triggers
	// quarantine (default 12); GuardScoreDecay is the linear decay in points
	// per second (default 1).
	GuardQuarantineScore float64
	GuardScoreDecay      float64
	// GuardQuarantine is how long a quarantined peer stays dropped
	// (default 50x HeartbeatInterval).
	GuardQuarantine time.Duration
	// GuardAuditSlack scales the allowed BTP growth between two claims
	// (delta <= bandwidth * dt * slack + grace; default 2).
	GuardAuditSlack float64
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.HeartbeatInterval
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 2 * c.HeartbeatInterval
	}
	if c.BufferPackets <= 0 {
		c.BufferPackets = 256
	}
	if c.RecoveryGroup <= 0 {
		c.RecoveryGroup = 3
	}
	if c.MembershipLimit <= 0 {
		c.MembershipLimit = 100
	}
	if c.StreamRate <= 0 {
		c.StreamRate = 10
	}
	if c.PlaybackBuffer <= 0 {
		c.PlaybackBuffer = 2 * time.Second
	}
	if c.JoinBackoffBase <= 0 {
		c.JoinBackoffBase = c.HeartbeatInterval
	}
	if c.JoinBackoffMax <= 0 {
		c.JoinBackoffMax = 8 * c.HeartbeatInterval
	}
	if c.RepairBackoffBase <= 0 {
		c.RepairBackoffBase = c.HeartbeatInterval / 2
	}
	if c.RepairBackoffMax <= 0 {
		c.RepairBackoffMax = 4 * c.HeartbeatInterval
	}
	if c.MemberStaleAfter == 0 {
		c.MemberStaleAfter = 10 * c.GossipInterval
	}
	if c.StallRejoinAfter == 0 {
		c.StallRejoinAfter = 6 * c.HeartbeatTimeout
	}
	if c.GuardRequestRate <= 0 {
		c.GuardRequestRate = 100
	}
	if c.GuardRequestBurst <= 0 {
		c.GuardRequestBurst = 2 * c.GuardRequestRate
	}
	if c.GuardQuarantineScore <= 0 {
		c.GuardQuarantineScore = 12
	}
	if c.GuardScoreDecay <= 0 {
		c.GuardScoreDecay = 1
	}
	if c.GuardQuarantine <= 0 {
		c.GuardQuarantine = 50 * c.HeartbeatInterval
	}
	if c.GuardAuditSlack <= 0 {
		c.GuardAuditSlack = 2
	}
	if c.RetxAttempts == 0 {
		c.RetxAttempts = 4
	}
	if c.RetxBackoffBase <= 0 {
		c.RetxBackoffBase = c.HeartbeatInterval / 2
	}
	if c.RetxBackoffMax <= 0 {
		c.RetxBackoffMax = 4 * c.HeartbeatInterval
	}
	if c.RetxInflight <= 0 {
		c.RetxInflight = 32
	}
	return c
}

// Stats is a snapshot of a node's protocol counters.
type Stats struct {
	Attached        bool
	Parent          wire.Addr
	Depth           int
	Children        int
	HighestPacket   int64
	PacketsReceived int64
	PacketsRepaired int64
	RepairsServed   int64
	Rejoins         int64
	// Failovers counts re-attachments completed after an involuntary
	// detachment (Rejoins counts the detachments; this counts the landings).
	Failovers    int64
	Switches     int64
	ELNsSent     int64
	KnownMembers int
	// PlayedSlots / StarvedSlots drive the live starving-time ratio: slots
	// whose packet was (or was not) buffered by its playout deadline.
	PlayedSlots  int64
	StarvedSlots int64
	// JoinAttempts counts Join envelopes sent (each backoff step retries once).
	JoinAttempts int64
	// RepairRequests counts striped CER requests issued; RepairsSuppressed
	// counts gap detections absorbed into an already-pending request by the
	// repair backoff gate (the storm-bound evidence).
	RepairRequests    int64
	RepairsSuppressed int64
	// Stalls counts transitions into starvation; StallSeconds accumulates the
	// playback time spent starved (StarvedSlots / StreamRate).
	Stalls       int64
	StallSeconds float64
	// StallRejoins counts rejoins forced by the stream-stall watchdog (an
	// attached but streamless parent — the zombie-subtree escape hatch).
	StallRejoins int64
	// WireRejects counts datagrams that failed wire decode/validation.
	WireRejects int64
	// Reliability-shim counters. CtrlSent counts control messages sent under
	// ack protection; RetxSent counts retransmissions of those; RetxAcked
	// counts first acks received; RetxExpired counts messages abandoned
	// after RetxAttempts transmissions; RetxOverflow counts control sends
	// demoted to fire-and-forget by the per-peer in-flight cap; RetxDupDrops
	// counts received control messages suppressed by the dedup window (the
	// ack is still re-sent); RetxInflight is the current unacked total.
	CtrlSent     int64
	RetxSent     int64
	RetxAcked    int64
	RetxExpired  int64
	RetxOverflow int64
	RetxDupDrops int64
	RetxInflight int
	// GuardRateLimited counts requests dropped by the per-peer token bucket;
	// GuardQuarantineDrops counts datagrams dropped because their sender was
	// quarantined; GuardQuarantines counts quarantine sentences handed out;
	// GuardAuditFails counts BTP claims that outran the sender's own claimed
	// bandwidth; GuardImplausible counts handler-level rejections of
	// wire-valid but contextually absurd values (packet-sequence jumps,
	// non-parent stream packets, out-of-window repair ranges).
	GuardRateLimited     int64
	GuardQuarantineDrops int64
	GuardQuarantines     int64
	GuardAuditFails      int64
	GuardImplausible     int64
	// QuarantinedPeers is the number of peers currently quarantined.
	QuarantinedPeers int
}

// StarvingRatio is the fraction of playout slots that starved (0 before
// playback starts).
func (s Stats) StarvingRatio() float64 {
	total := s.PlayedSlots + s.StarvedSlots
	if total == 0 {
		return 0
	}
	return float64(s.StarvedSlots) / float64(total)
}

// nodeMetrics holds the node's optional instruments, registered on the
// concurrent live backend. All pointers are nil when Config.Metrics is nil;
// the live types' nil-safe methods make every update a single branch.
type nodeMetrics struct {
	heartbeatsSent   *live.Counter
	parentTimeouts   *live.Counter
	childTimeouts    *live.Counter
	packetsReceived  *live.Counter
	packetsForwarded *live.Counter
	packetsDuplicate *live.Counter
	packetsRepaired  *live.Counter
	repairsServed    *live.Counter
	elnSent          *live.Counter
	gossipSent       *live.Counter
	rejoins          *live.Counter
	failovers        *live.Counter
	switches         *live.Counter
	playedSlots      *live.Counter
	starvedSlots     *live.Counter
	joinAttempts     *live.Counter
	repairRequests   *live.Counter
	repairSuppressed *live.Counter
	stalls           *live.Counter
	stallRejoins     *live.Counter
	txDatagrams      *live.Counter
	rxDatagrams      *live.Counter
	txBytes          *live.Counter
	rxBytes          *live.Counter
	attached         *live.Gauge
	depth            *live.Gauge
	children         *live.Gauge
	knownMembers     *live.Gauge
	joinBackoff      *live.Gauge
	repairBackoff    *live.Gauge
	stallSeconds     *live.Gauge

	// Reliability-shim instruments (see the Stats retx counters).
	ctrlSent     *live.Counter
	retxSent     *live.Counter
	retxAcked    *live.Counter
	retxExpired  *live.Counter
	retxOverflow *live.Counter
	retxDupDrops *live.Counter
	retxInflight *live.Gauge

	// Per-codec datagram counters, pre-registered per codec name: tx is the
	// configured send codec, rx is the detected codec of accepted receives.
	codecTx map[string]*live.Counter
	codecRx map[string]*live.Counter

	// Guard instruments. wireRejects and implausible are pre-registered per
	// reason/kind so label cardinality stays fixed.
	wireRejects          map[string]*live.Counter
	implausible          map[string]*live.Counter
	guardRateLimited     *live.Counter
	guardQuarantineDrops *live.Counter
	guardQuarantines     *live.Counter
	guardAuditFails      *live.Counter
	quarantinedPeers     *live.Gauge
}

// implausibleKinds is the fixed vocabulary of handler-level rejections of
// wire-valid but contextually absurd datagrams.
var implausibleKinds = []string{
	"packet-at-source",  // stream/repair data sent at the stream origin
	"packet-not-parent", // stream packet from someone other than the parent
	"packet-jump",       // sequence implausibly far ahead of the local head
	"repair-range",      // repair request outside the serviceable window shape
	"eln-range",         // ELN covering sequences implausibly far ahead
	"switch-shape",      // switch commit naming neither a replaced child nor a new parent
}

// noteWireRejectMetric bumps the labeled reject counter (nil-safe).
func (m *nodeMetrics) noteWireReject(reason string) {
	if m.wireRejects != nil {
		m.wireRejects[reason].Inc()
	}
}

// noteImplausible bumps the labeled implausible counter (nil-safe).
func (m *nodeMetrics) noteImplausible(kind string) {
	if m.implausible != nil {
		m.implausible[kind].Inc()
	}
}

// noteCodecTx / noteCodecRx bump the per-codec datagram counters (nil-safe).
func (m *nodeMetrics) noteCodecTx(name string) {
	if m.codecTx != nil {
		m.codecTx[name].Inc()
	}
}

func (m *nodeMetrics) noteCodecRx(name string) {
	if m.codecRx != nil {
		m.codecRx[name].Inc()
	}
}

func newNodeMetrics(reg *live.Registry) nodeMetrics {
	peerLabel := func(v string) metrics.Label { return metrics.Label{Key: "peer", Value: v} }
	wireRejects := make(map[string]*live.Counter, len(wire.Reasons()))
	for _, r := range wire.Reasons() {
		wireRejects[r] = reg.Counter("omcast_node_wire_rejects_total",
			"Datagrams rejected by wire decode/validation, by reason.",
			metrics.Label{Key: "reason", Value: r})
	}
	implausible := make(map[string]*live.Counter, len(implausibleKinds))
	for _, k := range implausibleKinds {
		implausible[k] = reg.Counter("omcast_node_guard_implausible_total",
			"Wire-valid datagrams rejected at the handler boundary as contextually absurd, by kind.",
			metrics.Label{Key: "kind", Value: k})
	}
	codecTx := make(map[string]*live.Counter, len(wire.CodecNames()))
	codecRx := make(map[string]*live.Counter, len(wire.CodecNames()))
	for _, c := range wire.CodecNames() {
		codecTx[c] = reg.Counter("omcast_wire_codec_tx_total",
			"Datagrams encoded and handed to the transport, by codec.",
			metrics.Label{Key: "codec", Value: c})
		codecRx[c] = reg.Counter("omcast_wire_codec_rx_total",
			"Datagrams accepted by wire decode, by detected codec.",
			metrics.Label{Key: "codec", Value: c})
	}
	return nodeMetrics{
		wireRejects:          wireRejects,
		implausible:          implausible,
		codecTx:              codecTx,
		codecRx:              codecRx,
		ctrlSent:             reg.Counter("omcast_node_retx_ctrl_sent_total", "Control-class messages sent under ack protection."),
		retxSent:             reg.Counter("omcast_node_retx_sent_total", "Retransmissions of unacked control-class messages."),
		retxAcked:            reg.Counter("omcast_node_retx_acked_total", "Control-class messages confirmed by a first ack."),
		retxExpired:          reg.Counter("omcast_node_retx_expired_total", "Control-class messages abandoned after the retransmit budget."),
		retxOverflow:         reg.Counter("omcast_node_retx_overflow_total", "Control sends demoted to fire-and-forget by the per-peer in-flight cap."),
		retxDupDrops:         reg.Counter("omcast_node_retx_dup_drops_total", "Received control messages suppressed as duplicates by the dedup window."),
		retxInflight:         reg.Gauge("omcast_node_retx_inflight", "Control-class messages currently awaiting an ack."),
		guardRateLimited:     reg.Counter("omcast_node_guard_rate_limited_total", "Requests dropped by the per-peer token bucket."),
		guardQuarantineDrops: reg.Counter("omcast_node_guard_quarantine_drops_total", "Datagrams dropped because their sender was quarantined."),
		guardQuarantines:     reg.Counter("omcast_node_guard_quarantines_total", "Quarantine sentences handed out to misbehaving peers."),
		guardAuditFails:      reg.Counter("omcast_node_guard_btp_audit_fails_total", "BTP claims that outran the sender's own claimed bandwidth."),
		quarantinedPeers:     reg.Gauge("omcast_node_guard_quarantined_peers", "Peers currently quarantined."),
		heartbeatsSent:       reg.Counter("omcast_node_heartbeats_sent_total", "Heartbeat envelopes sent to the parent and children."),
		parentTimeouts:       reg.Counter("omcast_node_neighbor_timeouts_total", "Neighbours declared dead after missed heartbeats.", peerLabel("parent")),
		childTimeouts:        reg.Counter("omcast_node_neighbor_timeouts_total", "Neighbours declared dead after missed heartbeats.", peerLabel("child")),
		packetsReceived:      reg.Counter("omcast_node_packets_received_total", "Stream packets accepted into the buffer."),
		packetsForwarded:     reg.Counter("omcast_node_packets_forwarded_total", "Stream packet copies forwarded to children."),
		packetsDuplicate:     reg.Counter("omcast_node_packets_duplicate_total", "Stream packets dropped as already buffered."),
		packetsRepaired:      reg.Counter("omcast_node_packets_repaired_total", "Packets recovered through CER repair."),
		repairsServed:        reg.Counter("omcast_node_repairs_served_total", "Repair packets served to other members."),
		elnSent:              reg.Counter("omcast_node_eln_sent_total", "Explicit-loss-notification envelopes sent downstream."),
		gossipSent:           reg.Counter("omcast_node_gossip_sent_total", "Membership gossip requests initiated."),
		rejoins:              reg.Counter("omcast_node_rejoins_total", "Times the node lost its parent and re-entered joining."),
		failovers:            reg.Counter("omcast_node_failovers_total", "Re-attachments completed after an involuntary detachment (parent death, leave or stall)."),
		switches:             reg.Counter("omcast_node_switches_total", "ROST switch commits executed as initiator."),
		playedSlots:          reg.Counter("omcast_node_played_slots_total", "Playout slots whose packet arrived by its deadline."),
		starvedSlots:         reg.Counter("omcast_node_starved_slots_total", "Playout slots whose packet missed its deadline."),
		joinAttempts:         reg.Counter("omcast_node_join_attempts_total", "Join envelopes sent (one per backoff step while detached)."),
		repairRequests:       reg.Counter("omcast_node_repair_requests_total", "Striped CER repair requests issued."),
		repairSuppressed:     reg.Counter("omcast_node_repair_suppressed_total", "Gap detections absorbed into a pending request by the repair backoff gate."),
		stalls:               reg.Counter("omcast_node_playback_stalls_total", "Transitions of the playout clock into starvation."),
		stallRejoins:         reg.Counter("omcast_node_stall_rejoins_total", "Rejoins forced by the stream-stall watchdog (live parent, no stream)."),
		txDatagrams:          reg.Counter("omcast_node_transport_tx_datagrams_total", "Datagrams handed to the transport."),
		rxDatagrams:          reg.Counter("omcast_node_transport_rx_datagrams_total", "Datagrams delivered by the transport."),
		txBytes:              reg.Counter("omcast_node_transport_tx_bytes_total", "Bytes handed to the transport."),
		rxBytes:              reg.Counter("omcast_node_transport_rx_bytes_total", "Bytes delivered by the transport."),
		attached:             reg.Gauge("omcast_node_attached", "1 while the node holds a tree position (sources always 1)."),
		depth:                reg.Gauge("omcast_node_depth", "Current tree depth (0 at the source)."),
		children:             reg.Gauge("omcast_node_children", "Children currently served."),
		knownMembers:         reg.Gauge("omcast_node_known_members", "Entries in the partial membership view."),
		joinBackoff:          reg.Gauge("omcast_node_join_backoff_seconds", "Jittered delay chosen before the next join attempt."),
		repairBackoff:        reg.Gauge("omcast_node_repair_backoff_seconds", "Jittered gate interval chosen after the last repair request."),
		stallSeconds:         reg.Gauge("omcast_node_playback_stall_seconds", "Cumulative playback time spent starved, in stream seconds."),
	}
}

// peer tracks a neighbour's liveness.
type peer struct {
	lastSeen time.Time
}

// memberRecord is a gossip entry with freshness.
type memberRecord struct {
	info wire.MemberInfo
	seen time.Time
}

// Node is one protocol participant.
type Node struct {
	cfg       Config
	transport Transport

	mu         sync.Mutex
	attached   bool                //guardedby:mu
	parent     wire.Addr           //guardedby:mu
	parentSeen time.Time           //guardedby:mu
	parentBTP  float64             //guardedby:mu
	parentBW   float64             //guardedby:mu
	depth      int                 //guardedby:mu
	children   map[wire.Addr]*peer //guardedby:mu
	ancestors  []wire.Addr         //guardedby:mu
	joinedAt   time.Time           //guardedby:mu
	switching  bool                //guardedby:mu

	membership map[wire.Addr]memberRecord //guardedby:mu
	// retx is the reliability shim's per-peer state: unacked control sends
	// awaiting retransmit on one side, the receive dedup window on the other
	// (see retx.go). retxRng draws retransmit jitter; unlike the loop-owned
	// join/repair RNGs it is shared by timer goroutines, so draws happen
	// under mu. codec encodes outgoing datagrams (receive is by detection).
	retx    map[wire.Addr]*retxPeer //guardedby:mu
	retxRng *xrand.Source           //guardedby:mu
	codec   wire.Codec
	// guard holds the per-peer misbehavior state (see guard.go); jumpStreak
	// counts consecutive parent packets rejected as implausible sequence
	// jumps, so a genuine stream discontinuity resynchronises instead of
	// starving forever.
	guard      map[wire.Addr]*guardPeer //guardedby:mu
	jumpStreak int                      //guardedby:mu
	// lastJoinTarget detects unanswered join attempts: a candidate that
	// neither accepts nor rejects within one tick is presumed dead and
	// dropped from the view (dead members never send Rejects).
	lastJoinTarget wire.Addr //guardedby:mu

	// buffer holds recent packets for repair service and loss detection.
	buffer  map[int64][]byte //guardedby:mu
	highest int64            //guardedby:mu
	// Playback clock: packet playFirst plays at playStart; the deadline of
	// packet n is playStart + (n - playFirst)/rate. playChecked is the last
	// sequence already scored.
	playFirst   int64     //guardedby:mu
	playStart   time.Time //guardedby:mu
	playChecked int64     //guardedby:mu
	// upstreamRepair marks ranges under upstream recovery: the highest
	// sequence covered by a received ELN.
	upstreamRepair int64 //guardedby:mu

	// failingOver is set while the node is detached by a failure (not by its
	// own choice); the next successful attach counts as a completed failover.
	failingOver bool //guardedby:mu
	// Join backoff: joinStreak counts consecutive unanswered attempts (reset
	// on attach and detach); joinRng draws the deterministic jitter.
	// The RNGs themselves are only touched from the single loop goroutine
	// that owns them, so they carry no annotation.
	joinStreak int //guardedby:mu
	joinRng    *xrand.Source
	// Repair backoff: detected gaps merge into [pendFirst, pendLast] and
	// drain through a jittered gate — at most one striped request per
	// interval. repairStreak widens the gate while repairs go unanswered and
	// resets when repair data arrives.
	pendFirst    int64     //guardedby:mu
	pendLast     int64     //guardedby:mu
	repairStreak int       //guardedby:mu
	repairNextAt time.Time //guardedby:mu
	repairRng    *xrand.Source
	// inStall tracks whether the playout clock is currently starved (for
	// stall-transition counting).
	inStall bool //guardedby:mu
	// Stream-stall watchdog state: streamSeen arms it (never before the first
	// accepted packet, so idle overlays don't churn); lastStream and
	// attachedAt anchor the no-stream window.
	streamSeen bool      //guardedby:mu
	lastStream time.Time //guardedby:mu
	attachedAt time.Time //guardedby:mu

	stats Stats //guardedby:mu
	met   nodeMetrics

	// Causal span tracing. The tracer is not concurrency-safe, so every
	// span operation happens under mu — the same serialisation discipline
	// the stats counters follow. traceStart anchors the span clock (span
	// times are seconds since node creation). The builders track the open
	// episodes; unfinished ones are simply never recorded (flight-recorder
	// semantics: an episode still open at crash leaves no span).
	trace       *tracing.Tracer
	traceStart  time.Time
	joinSpan    *tracing.SpanBuilder //guardedby:mu — open join/rejoin episode
	attemptSpan *tracing.SpanBuilder //guardedby:mu — open attempt within it
	repairSpan  *tracing.SpanBuilder //guardedby:mu — open repair round-trip
	stallSpan   *tracing.SpanBuilder //guardedby:mu — open starvation window
	stallBase   int64                //guardedby:mu — StarvedSlots at stall open

	seq  uint64 //guardedby:mu
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New creates a node over the given transport.
func New(cfg Config, tr Transport) *Node {
	n := &Node{
		cfg:        cfg.withDefaults(),
		transport:  tr,
		children:   make(map[wire.Addr]*peer),
		membership: make(map[wire.Addr]memberRecord),
		guard:      make(map[wire.Addr]*guardPeer),
		retx:       make(map[wire.Addr]*retxPeer),
		buffer:     make(map[int64][]byte),
		highest:    -1,
		playFirst:  -1,
		pendFirst:  -1,
		pendLast:   -1,
		done:       make(chan struct{}),
	}
	n.codec = wire.CodecByName(n.cfg.Codec)
	if n.codec == nil {
		n.codec = wire.BinaryV1 // unknown names fall back to the default
	}
	n.joinRng = xrand.NewNamed(n.cfg.Seed, "node:join:"+string(tr.Addr()))
	n.repairRng = xrand.NewNamed(n.cfg.Seed, "node:repair:"+string(tr.Addr()))
	n.retxRng = xrand.NewNamed(n.cfg.Seed, "node:retx:"+string(tr.Addr()))
	if n.cfg.Metrics != nil {
		n.met = newNodeMetrics(n.cfg.Metrics)
	}
	if n.cfg.Trace != nil {
		n.trace = tracing.NewNode(n.cfg.Seed, string(tr.Addr()), n.cfg.Trace)
		n.traceStart = time.Now()
	}
	tr.SetHandler(n.onDatagram)
	return n
}

// Addr returns the node's transport address.
func (n *Node) Addr() wire.Addr { return n.transport.Addr() }

// Start launches the node's background loops.
func (n *Node) Start() {
	if n.cfg.Source {
		n.mu.Lock()
		n.attached = true
		n.joinedAt = time.Now()
		n.mu.Unlock()
		n.spawn(n.streamLoop)
	} else {
		n.spawn(n.joinLoop)
	}
	n.spawn(n.heartbeatLoop)
	n.spawn(n.gossipLoop)
	if n.cfg.SwitchInterval > 0 && !n.cfg.Source {
		n.spawn(n.switchLoop)
	}
}

// Stop shuts the node down gracefully: children and parent are notified so
// the overlay heals immediately.
func (n *Node) Stop() {
	n.once.Do(func() {
		n.mu.Lock()
		targets := make([]wire.Addr, 0, len(n.children)+1)
		if n.attached && n.parent != "" {
			targets = append(targets, n.parent)
		}
		for c := range n.children {
			targets = append(targets, c)
		}
		n.mu.Unlock()
		for _, t := range targets {
			n.send(t, wire.Envelope{Type: wire.TypeLeave})
		}
		close(n.done)
		n.wg.Wait()
		_ = n.transport.Close()
	})
}

// Kill terminates abruptly (no notifications) — the failure case the paper
// studies.
func (n *Node) Kill() {
	n.once.Do(func() {
		close(n.done)
		n.wg.Wait()
		_ = n.transport.Close()
	})
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.Attached = n.attached
	s.Parent = n.parent
	s.Depth = n.depth
	s.Children = len(n.children)
	s.HighestPacket = n.highest
	s.KnownMembers = len(n.membership)
	s.QuarantinedPeers = n.quarantinedCountLocked(time.Now())
	s.RetxInflight = n.retxInflightLocked()
	return s
}

func (n *Node) spawn(loop func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		loop()
	}()
}

// send transmits one envelope. Control-class messages go through the
// reliability shim (sequence-numbered, acked, retransmitted — see retx.go)
// unless it is disabled or the peer's in-flight window is full; everything
// else is fire-and-forget.
func (n *Node) send(to wire.Addr, env wire.Envelope) {
	env.From = n.Addr()
	if n.cfg.RetxAttempts > 0 && wire.ControlClass(env.Type) && env.Ctrl == 0 {
		if n.sendReliable(to, env) {
			return
		}
		// In-flight cap reached: demoted to fire-and-forget below.
	}
	data, err := n.codec.Encode(env)
	if err != nil {
		return // unencodable envelopes are a programming error; drop
	}
	n.transmit(to, data)
}

// transmit hands encoded bytes to the transport and counts them.
func (n *Node) transmit(to wire.Addr, data []byte) {
	n.met.txDatagrams.Inc()
	n.met.txBytes.Add(int64(len(data)))
	n.met.noteCodecTx(n.codec.Name())
	_ = n.transport.Send(to, data) // datagram semantics: errors are drops
}

// outDegree is the node's child capacity.
func (n *Node) outDegree() int {
	if n.cfg.Source {
		if n.cfg.Bandwidth < 1 {
			return 16
		}
	}
	if n.cfg.Bandwidth < 0 {
		return 0
	}
	return int(n.cfg.Bandwidth)
}

// btpLocked returns the node's bandwidth-time product (mu held).
func (n *Node) btpLocked() float64 {
	if n.joinedAt.IsZero() {
		return 0
	}
	return n.cfg.Bandwidth * time.Since(n.joinedAt).Seconds()
}

// ---- span tracing ----

// traceAt converts a wall instant to the node's span clock.
func (n *Node) traceAt(now time.Time) time.Duration { return now.Sub(n.traceStart) }

// openEpisodeLocked opens a join/rejoin episode span if tracing is on and
// none is already open: kind "join" before the first successful attach,
// "rejoin" after. cause records why the node is hunting for a parent
// (boot, timeout, stall, leave). Requires mu.
func (n *Node) openEpisodeLocked(now time.Time, cause string) {
	if n.trace == nil || n.joinSpan != nil {
		return
	}
	kind := tracing.KindRejoin
	if n.joinedAt.IsZero() {
		kind = tracing.KindJoin
	}
	n.joinSpan = n.trace.Start(kind, 0, n.traceAt(now)).Attr("cause", cause)
}

// ---- joining ----

// joinLoop keeps the node attached: it discovers members, picks the highest
// spare-capacity parent and retries until accepted; it also re-runs after a
// parent failure. Retries back off exponentially (with deterministic seeded
// jitter) while attempts go unanswered, so a partitioned node probes gently
// instead of hammering the overlay at heartbeat cadence.
func (n *Node) joinLoop() {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-timer.C:
		}
		n.mu.Lock()
		attached := n.attached
		n.mu.Unlock()
		var wait time.Duration
		if attached {
			wait = n.cfg.HeartbeatInterval
		} else {
			n.tryJoin()
			wait = n.nextJoinDelay()
		}
		timer.Reset(wait)
	}
}

// backoffDelay is the shared capped-exponential policy: base doubled streak
// times, capped at max, then jittered to [d/2, d) from a deterministic
// per-node stream so retry bursts desynchronise reproducibly.
func backoffDelay(base, max time.Duration, streak int, rng *xrand.Source) time.Duration {
	d := base
	for i := 0; i < streak && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + rng.UniformDuration(0, d/2)
}

// nextJoinDelay advances the join backoff one step and returns the jittered
// wait before the next attempt.
func (n *Node) nextJoinDelay() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := backoffDelay(n.cfg.JoinBackoffBase, n.cfg.JoinBackoffMax, n.joinStreak, n.joinRng)
	n.joinStreak++
	n.met.joinBackoff.Set(d.Seconds())
	return d
}

// tryJoin sends a Join to the best-known candidate parent (minimum depth,
// then spare capacity) and seeds discovery from the bootstrap list.
func (n *Node) tryJoin() {
	n.mu.Lock()
	// The previous attempt went unanswered (no Accept, no Reject): the
	// candidate is dead or unreachable — drop it so we move on.
	if n.lastJoinTarget != "" {
		delete(n.membership, n.lastJoinTarget)
		n.lastJoinTarget = ""
	}
	cands := make([]wire.MemberInfo, 0, len(n.membership))
	for _, rec := range n.membership {
		if rec.info.Spare > 0 {
			cands = append(cands, rec.info)
		}
	}
	n.mu.Unlock()
	if len(cands) == 0 {
		// Nothing usable known yet: ask the bootstrap members for their
		// views (announcing ourselves in the same datagram).
		for _, b := range n.cfg.Bootstrap {
			n.send(b, wire.Envelope{
				Type:    wire.TypeMembershipRequest,
				Limit:   n.cfg.MembershipLimit,
				Members: n.announceMembers(),
			})
		}
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Depth != cands[j].Depth {
			return cands[i].Depth < cands[j].Depth
		}
		return cands[i].Spare > cands[j].Spare
	})
	n.mu.Lock()
	n.lastJoinTarget = cands[0].Addr
	n.stats.JoinAttempts++
	n.met.joinAttempts.Inc()
	now := time.Now()
	n.openEpisodeLocked(now, "boot")
	if n.attemptSpan != nil {
		// The previous attempt got neither Accept nor Reject before we moved
		// on — the candidate is presumed dead.
		n.attemptSpan.End(n.traceAt(now), "unanswered")
		n.attemptSpan = nil
	}
	if n.joinSpan != nil {
		n.attemptSpan = n.joinSpan.Child(tracing.KindAttempt, 0, n.traceAt(now)).
			Attr("target", string(cands[0].Addr))
	}
	n.mu.Unlock()
	n.send(cands[0].Addr, wire.Envelope{Type: wire.TypeJoin, Bandwidth: n.cfg.Bandwidth})
}

func (n *Node) handleJoin(env wire.Envelope) {
	n.mu.Lock()
	accept := n.attached && !n.switching && len(n.children) < n.outDegree() && env.From != n.parent
	if accept {
		n.children[env.From] = &peer{lastSeen: time.Now()}
	}
	depth := n.depth
	n.mu.Unlock()
	if accept {
		n.send(env.From, wire.Envelope{Type: wire.TypeAccept, Depth: depth})
	} else {
		n.send(env.From, wire.Envelope{Type: wire.TypeReject})
	}
}

// handleReject invalidates the rejecting member's cached spare capacity so
// the next join attempt moves on instead of hammering a full parent with
// stale gossip data.
func (n *Node) handleReject(env wire.Envelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rec, ok := n.membership[env.From]; ok {
		rec.info.Spare = 0
		n.membership[env.From] = rec
	}
	if n.lastJoinTarget == env.From {
		n.lastJoinTarget = "" // answered: alive, just full
		if n.attemptSpan != nil {
			n.attemptSpan.End(n.traceAt(time.Now()), "rejected")
			n.attemptSpan = nil
		}
	}
}

func (n *Node) handleAccept(env wire.Envelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attached || n.cfg.Source {
		// Duplicate accept (we joined elsewhere meanwhile): we simply never
		// heartbeat this parent; it will drop us.
		return
	}
	n.attached = true
	n.parent = env.From
	n.parentSeen = time.Now()
	n.attachedAt = n.parentSeen
	n.depth = env.Depth + 1
	if n.failingOver {
		n.failingOver = false
		n.stats.Failovers++
		n.met.failovers.Inc()
	}
	n.met.attached.Set(1)
	n.met.depth.Set(float64(n.depth))
	n.lastJoinTarget = ""
	n.joinStreak = 0
	n.met.joinBackoff.Set(0)
	at := n.traceAt(n.parentSeen)
	if n.attemptSpan != nil {
		n.attemptSpan.End(at, "accepted")
		n.attemptSpan = nil
	}
	if n.joinSpan != nil {
		outcome := "reattached"
		if n.joinedAt.IsZero() {
			outcome = "attached"
		}
		n.joinSpan.AttrInt("depth", int64(n.depth)).Attr("parent", string(env.From)).
			End(at, outcome)
		n.joinSpan = nil
	}
	if n.joinedAt.IsZero() {
		n.joinedAt = time.Now()
	}
}

// ---- heartbeats & failure detection ----

func (n *Node) heartbeatLoop() {
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		n.beat()
	}
}

func (n *Node) beat() {
	n.mu.Lock()
	n.seq++
	seq := n.seq
	parent := wire.Addr("")
	if n.attached && !n.cfg.Source {
		parent = n.parent
	}
	children := make([]wire.Addr, 0, len(n.children))
	var deadChildren []wire.Addr
	now := time.Now()
	for c, p := range n.children {
		if now.Sub(p.lastSeen) > n.cfg.HeartbeatTimeout {
			deadChildren = append(deadChildren, c)
			continue
		}
		children = append(children, c)
	}
	for _, c := range deadChildren {
		delete(n.children, c)
	}
	parentDead := parent != "" && now.Sub(n.parentSeen) > n.cfg.HeartbeatTimeout
	// Stream-stall watchdog: the parent heartbeats but no stream data arrives
	// — a zombie subtree (e.g. re-formed around a partitioned source). Treat
	// it as a parent failure so the node hunts for a stream-bearing position.
	streamStalled := false
	if !parentDead && parent != "" && n.cfg.StallRejoinAfter > 0 && n.streamSeen {
		ref := n.lastStream
		if n.attachedAt.After(ref) {
			ref = n.attachedAt
		}
		if now.Sub(ref) > n.cfg.StallRejoinAfter {
			streamStalled = true
			n.stats.StallRejoins++
			n.met.stallRejoins.Inc()
		}
	}
	btp := n.btpLocked()
	bw := n.cfg.Bandwidth
	n.advancePlaybackLocked(now)
	n.met.childTimeouts.Add(int64(len(deadChildren)))
	n.met.attached.Set(boolGauge(n.attached))
	n.met.children.Set(float64(len(n.children)))
	n.met.knownMembers.Set(float64(len(n.membership)))
	n.met.quarantinedPeers.Set(float64(n.quarantinedCountLocked(now)))
	n.mu.Unlock()

	if parentDead {
		n.met.parentTimeouts.Inc()
		n.onParentFailure("timeout")
		parent = ""
	} else if streamStalled {
		n.onParentFailure("stall")
		parent = ""
	}
	n.flushRepairs(now)
	n.mu.Lock()
	depth := n.depth
	n.met.depth.Set(float64(depth))
	n.mu.Unlock()
	hb := wire.Envelope{Type: wire.TypeHeartbeat, Seq: seq, BTP: btp, Bandwidth: bw, Depth: depth}
	if parent != "" {
		n.met.heartbeatsSent.Inc()
		n.send(parent, hb)
	}
	for _, c := range children {
		n.met.heartbeatsSent.Inc()
		n.send(c, hb)
	}
}

// boolGauge maps a bool to the 0/1 convention Prometheus gauges use.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// advancePlaybackLocked scores every playout slot whose deadline has passed:
// present packets count as played, absent ones as starved. Requires mu.
func (n *Node) advancePlaybackLocked(now time.Time) {
	if n.playFirst < 0 || now.Before(n.playStart) {
		return
	}
	due := n.playFirst + int64(now.Sub(n.playStart).Seconds()*n.cfg.StreamRate)
	for seq := n.playChecked + 1; seq <= due; seq++ {
		if _, ok := n.buffer[seq]; ok {
			n.stats.PlayedSlots++
			n.met.playedSlots.Inc()
			// A present slot ends any stall: playback resumed.
			n.inStall = false
			if n.stallSpan != nil {
				n.stallSpan.AttrInt("slots", n.stats.StarvedSlots-n.stallBase).
					End(n.traceAt(now), "resumed")
				n.stallSpan = nil
			}
		} else {
			n.stats.StarvedSlots++
			n.met.starvedSlots.Inc()
			// Consecutive starved slots are one stall; each contributes one
			// slot-time of stalled playback.
			if !n.inStall {
				n.inStall = true
				n.stats.Stalls++
				n.met.stalls.Inc()
				if n.trace != nil && n.stallSpan == nil {
					n.stallSpan = n.trace.Start(tracing.KindStall, 0, n.traceAt(now))
					n.stallBase = n.stats.StarvedSlots - 1
				}
			}
			n.stats.StallSeconds += 1 / n.cfg.StreamRate
			n.met.stallSeconds.Set(n.stats.StallSeconds)
		}
		n.playChecked = seq
	}
}

func (n *Node) handleHeartbeat(env wire.Envelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	if env.From == n.parent {
		n.parentSeen = now
		n.parentBTP = env.BTP
		n.parentBW = env.Bandwidth
		// Depths drift after switches; the parent's heartbeat is the truth.
		n.depth = env.Depth + 1
		return
	}
	if p, ok := n.children[env.From]; ok {
		p.lastSeen = now
	}
}

// onParentFailure detaches, launches CER recovery for the in-flight gap and
// lets joinLoop find a new parent. cause labels the rejoin episode span
// ("timeout" for missed heartbeats, "stall" for the stream watchdog).
func (n *Node) onParentFailure(cause string) {
	n.mu.Lock()
	n.attached = false
	n.parent = ""
	n.failingOver = true
	n.stats.Rejoins++
	n.met.rejoins.Inc()
	n.met.attached.Set(0)
	// A fresh detachment restarts the join backoff so recovery begins at
	// base cadence rather than wherever the last outage left the streak.
	n.joinStreak = 0
	n.openEpisodeLocked(time.Now(), cause)
	first := n.highest + 1
	n.mu.Unlock()
	// Ask the recovery group for everything from the gap start; the range
	// end is open-ended — estimated as one detection window of packets.
	last := first + int64(n.cfg.StreamRate*n.cfg.HeartbeatTimeout.Seconds()) + 1
	n.recoverGap(first, last)
}

func (n *Node) handleLeave(env wire.Envelope) {
	n.mu.Lock()
	fromParent := env.From == n.parent && n.attached
	delete(n.children, env.From)
	if fromParent {
		n.attached = false
		n.parent = ""
		n.failingOver = true
		n.stats.Rejoins++
		n.met.rejoins.Inc()
		n.met.attached.Set(0)
		n.joinStreak = 0
		n.openEpisodeLocked(time.Now(), "leave")
	}
	n.mu.Unlock()
	// A graceful leave needs no loss recovery: the stream stops cleanly and
	// resumes after the rejoin; repair fills whatever the rejoin gap misses.
}

// ---- streaming ----

// streamLoop generates the source's packets.
func (n *Node) streamLoop() {
	interval := time.Duration(float64(time.Second) / n.cfg.StreamRate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var seq int64
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		n.buffer[seq] = nil
		n.highest = seq
		n.trimBufferLocked()
		children := n.childrenLocked()
		n.mu.Unlock()
		for _, c := range children {
			n.send(c, wire.Envelope{Type: wire.TypePacket, Packet: seq})
		}
		seq++
	}
}

func (n *Node) childrenLocked() []wire.Addr {
	out := make([]wire.Addr, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	return out
}

func (n *Node) trimBufferLocked() {
	low := n.highest - int64(n.cfg.BufferPackets)
	for seq := range n.buffer {
		if seq < low {
			delete(n.buffer, seq)
		}
	}
}

// jumpResyncStreak is how many consecutive implausible-jump packets from the
// attached parent it takes to accept the discontinuity as a genuine stream
// resync (e.g. rejoining after an outage longer than the plausibility
// window) rather than a forgery.
const jumpResyncStreak = 16

// packetRejectLocked is the handler-boundary sanity check for stream/repair
// data: wire-valid packets can still be contextually absurd — stream data at
// the source, stream packets from a non-parent while attached (the stream
// has exactly one upstream), or sequence numbers so far from the local head
// that accepting them would wipe the repair buffer and wreck the playback
// clock. Returns the implausible-kind token, or "" to accept. Requires mu.
func (n *Node) packetRejectLocked(env wire.Envelope, repaired bool) string {
	if n.cfg.Source {
		// The origin never ingests stream or repair data; a forged packet
		// here would poison the buffer every downstream repair draws from.
		return "packet-at-source"
	}
	fromParent := n.attached && env.From == n.parent
	if !repaired && n.attached && !fromParent {
		return "packet-not-parent"
	}
	span := 4 * int64(n.cfg.BufferPackets)
	if n.streamSeen && env.Packet > n.highest+span {
		if fromParent && !repaired {
			// The parent itself is consistently ahead of us: after enough
			// consecutive jumps this is a real discontinuity, not a stray
			// corruption — resynchronise to the parent's head.
			n.jumpStreak++
			if n.jumpStreak >= jumpResyncStreak {
				n.jumpStreak = 0
				return ""
			}
		}
		return "packet-jump"
	}
	if repaired && n.streamSeen && env.Packet < n.highest-span {
		return "packet-jump" // below any window we could have requested
	}
	if fromParent && !repaired {
		n.jumpStreak = 0
	}
	return ""
}

// acceptPacket stores and forwards one packet; returns the gap to repair if
// one opened.
func (n *Node) acceptPacket(env wire.Envelope, repaired bool) {
	n.mu.Lock()
	if kind := n.packetRejectLocked(env, repaired); kind != "" {
		n.stats.GuardImplausible++
		n.mu.Unlock()
		n.met.noteImplausible(kind)
		return
	}
	if _, dup := n.buffer[env.Packet]; dup {
		n.mu.Unlock()
		n.met.packetsDuplicate.Inc()
		return
	}
	n.buffer[env.Packet] = env.Payload
	n.stats.PacketsReceived++
	n.met.packetsReceived.Inc()
	n.streamSeen = true
	n.lastStream = time.Now()
	if repaired {
		n.stats.PacketsRepaired++
		n.met.packetsRepaired.Inc()
		// Repair data flowing again: relax the backoff gate.
		n.repairStreak = 0
		if n.repairSpan != nil {
			n.repairSpan.AttrInt("packet", env.Packet).
				End(n.traceAt(n.lastStream), "repaired")
			n.repairSpan = nil
		}
	}
	if n.playFirst < 0 {
		// Playback starts one buffering interval after the first packet.
		n.playFirst = env.Packet
		n.playChecked = env.Packet - 1
		n.playStart = time.Now().Add(n.cfg.PlaybackBuffer)
	}
	var gapFirst, gapLast int64 = -1, -1
	if env.Packet > n.highest+1 && n.highest >= 0 {
		gapFirst, gapLast = n.highest+1, env.Packet-1
		// Skip ranges an upstream ELN already covers.
		if gapFirst <= n.upstreamRepair {
			gapFirst = n.upstreamRepair + 1
		}
	}
	if env.Packet > n.highest {
		n.highest = env.Packet
	}
	n.trimBufferLocked()
	children := n.childrenLocked()
	n.mu.Unlock()

	n.met.packetsForwarded.Add(int64(len(children)))
	for _, c := range children {
		n.send(c, wire.Envelope{Type: wire.TypePacket, Packet: env.Packet, Payload: env.Payload})
	}
	if gapFirst >= 0 && gapFirst <= gapLast {
		n.recoverGap(gapFirst, gapLast)
	}
}

// ---- repair pacing ----

// recoverGap merges a detected loss range into the pending-repair window and
// flushes it through the backoff gate: at most one striped request (and its
// ELN) leaves per jittered interval, so a burst of gap detections — a
// partition healing, a lossy parent — collapses into a bounded request
// stream instead of a storm. Gated detections are counted as suppressed.
func (n *Node) recoverGap(first, last int64) {
	if last < first {
		return
	}
	now := time.Now()
	n.mu.Lock()
	if n.pendFirst < 0 {
		n.pendFirst, n.pendLast = first, last
	} else {
		if first < n.pendFirst {
			n.pendFirst = first
		}
		if last > n.pendLast {
			n.pendLast = last
		}
	}
	if now.Before(n.repairNextAt) {
		n.stats.RepairsSuppressed++
		n.met.repairSuppressed.Inc()
		n.mu.Unlock()
		return
	}
	reqFirst, reqLast, ok := n.takeRepairLocked(now)
	n.mu.Unlock()
	if ok {
		n.requestRepair(reqFirst, reqLast)
		n.notifyELN(reqFirst, reqLast)
	}
}

// takeRepairLocked drains the pending window if the backoff gate is open,
// advancing the gate and streak. Requires mu; returns ok=false when nothing
// is pending, the gate is closed, or the window fell out of the buffer.
func (n *Node) takeRepairLocked(now time.Time) (int64, int64, bool) {
	if n.pendFirst < 0 || now.Before(n.repairNextAt) {
		return 0, 0, false
	}
	// Discard sub-ranges too old to live in anyone's repair buffer.
	if low := n.highest - int64(n.cfg.BufferPackets); n.pendFirst < low {
		n.pendFirst = low
	}
	first, last := n.pendFirst, n.pendLast
	n.pendFirst, n.pendLast = -1, -1
	if last < first {
		return 0, 0, false
	}
	// Clamp the request span to one buffer's worth.
	if span := int64(n.cfg.BufferPackets); last-first+1 > span {
		last = first + span - 1
	}
	d := backoffDelay(n.cfg.RepairBackoffBase, n.cfg.RepairBackoffMax, n.repairStreak, n.repairRng)
	n.repairStreak++
	n.repairNextAt = now.Add(d)
	n.stats.RepairRequests++
	n.met.repairRequests.Inc()
	n.met.repairBackoff.Set(d.Seconds())
	if n.trace != nil {
		// The span measures request → first repair data (the live repair
		// round-trip). A re-request superseding an unanswered one closes it.
		if n.repairSpan != nil {
			n.repairSpan.End(n.traceAt(now), "unanswered")
		}
		n.repairSpan = n.trace.Start(tracing.KindRepair, 0, n.traceAt(now)).
			AttrInt("first", first).AttrInt("last", last)
	}
	return first, last, true
}

// flushRepairs retries the pending window from the heartbeat loop once the
// gate reopens (gap detections that arrived while gated would otherwise
// never be requested).
func (n *Node) flushRepairs(now time.Time) {
	n.mu.Lock()
	first, last, ok := n.takeRepairLocked(now)
	n.mu.Unlock()
	if ok {
		n.requestRepair(first, last)
		n.notifyELN(first, last)
	}
}

// ---- ELN & repair (CER) ----

// notifyELN tells the subtree that the given range is being repaired
// upstream, so descendants do not issue duplicate requests.
func (n *Node) notifyELN(first, last int64) {
	n.mu.Lock()
	children := n.childrenLocked()
	n.stats.ELNsSent += int64(len(children))
	n.met.elnSent.Add(int64(len(children)))
	n.mu.Unlock()
	for _, c := range children {
		n.send(c, wire.Envelope{Type: wire.TypeELN, FirstMissing: first, LastMissing: last})
	}
}

func (n *Node) handleELN(env wire.Envelope) {
	n.mu.Lock()
	fromParent := env.From == n.parent
	// Plausibility clamp: an ELN claims upstream recovery for a range, and a
	// forged LastMissing far beyond the stream head would suppress our own
	// repair requests forever. Once we have seen stream data, ignore claims
	// implausibly far ahead of it.
	implausible := fromParent && n.streamSeen &&
		env.LastMissing > n.highest+4*int64(n.cfg.BufferPackets)
	if implausible {
		n.stats.GuardImplausible++
	} else if fromParent && env.LastMissing > n.upstreamRepair {
		n.upstreamRepair = env.LastMissing
	}
	children := n.childrenLocked()
	n.mu.Unlock()
	if implausible {
		n.met.noteImplausible("eln-range")
		return
	}
	if !fromParent {
		return
	}
	// Propagate downstream.
	for _, c := range children {
		n.send(c, wire.Envelope{Type: wire.TypeELN, FirstMissing: env.FirstMissing, LastMissing: env.LastMissing})
	}
}

// requestRepair sends a striped CER request to the recovery group.
func (n *Node) requestRepair(first, last int64) {
	if last < first {
		return
	}
	group := n.recoveryGroup()
	if len(group) == 0 {
		return
	}
	chain := group[1:]
	n.send(group[0], wire.Envelope{
		Type:         wire.TypeRepairRequest,
		FirstMissing: first,
		LastMissing:  last,
		Chain:        chain,
		Epsilon:      0,
	})
}

// recoveryGroup picks K known members with minimal loss correlation to this
// node: own ancestors are excluded, and candidates whose root paths diverge
// from ours earliest are preferred (the live approximation of Algorithm 1's
// subtree spreading).
func (n *Node) recoveryGroup() []wire.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	banned := map[wire.Addr]bool{n.Addr(): true, n.parent: true}
	for _, a := range n.ancestors {
		banned[a] = true
	}
	mine := map[wire.Addr]bool{}
	for _, a := range n.ancestors {
		mine[a] = true
	}
	type scored struct {
		addr    wire.Addr
		overlap int
	}
	var cands []scored
	now := time.Now()
	for addr, rec := range n.membership {
		if banned[addr] {
			continue
		}
		// Quarantined peers are purged from membership at sentencing, but a
		// race can re-learn one between sentence and expiry; never hand a
		// convicted peer a stripe of our repair traffic.
		if n.quarantinedLocked(addr, now) {
			continue
		}
		// Members we have not heard from recently may be dead: asking them
		// for repair wastes the whole striped request, so they are excluded
		// from CER candidate selection.
		if n.cfg.MemberStaleAfter > 0 && now.Sub(rec.seen) > n.cfg.MemberStaleAfter {
			continue
		}
		overlap := 0
		for _, a := range rec.info.Ancestors {
			if mine[a] {
				overlap++
			}
		}
		cands = append(cands, scored{addr: addr, overlap: overlap})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].overlap != cands[j].overlap {
			return cands[i].overlap < cands[j].overlap
		}
		return cands[i].addr < cands[j].addr
	})
	k := n.cfg.RecoveryGroup
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]wire.Addr, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.addr)
	}
	return out
}

// handleRepairRequest serves the packets it has (its epsilon share of the
// stripe space) and forwards the remainder along the chain.
func (n *Node) handleRepairRequest(env wire.Envelope) {
	// Handler-boundary re-check: Decode already rejects inverted, negative
	// and over-wide ranges, but this handler walks the range — it must never
	// trust its bounds, whatever path the envelope took in.
	if env.FirstMissing < 0 || env.LastMissing < env.FirstMissing ||
		env.LastMissing-env.FirstMissing+1 > wire.MaxRepairSpan {
		n.mu.Lock()
		n.stats.GuardImplausible++
		n.mu.Unlock()
		n.met.noteImplausible("repair-range")
		return
	}
	requester := env.Requester
	if requester == "" {
		requester = env.From
	}
	share := 1.0 / float64(n.cfg.RecoveryGroup) // static residual-share model
	lo, hi := env.Epsilon, env.Epsilon+share
	n.mu.Lock()
	// Clamp the scan to the window the buffer can actually serve, so the
	// walk is bounded by BufferPackets no matter what range was requested.
	first, last := env.FirstMissing, env.LastMissing
	if low := n.highest - int64(n.cfg.BufferPackets); first < low {
		first = low
	}
	if last > n.highest {
		last = n.highest
	}
	var serve []int64
	for seq := first; seq <= last; seq++ {
		frac := float64(seq%100) / 100
		if frac >= lo && frac < hi {
			if _, ok := n.buffer[seq]; ok {
				serve = append(serve, seq)
			}
		}
	}
	n.stats.RepairsServed += int64(len(serve))
	n.met.repairsServed.Add(int64(len(serve)))
	n.mu.Unlock()
	for _, seq := range serve {
		n.send(requester, wire.Envelope{Type: wire.TypeRepairData, Packet: seq})
	}
	// NACK-chain forwarding: the next node covers the next stripe slice.
	if len(env.Chain) > 0 && hi < 1 {
		n.send(env.Chain[0], wire.Envelope{
			Type:         wire.TypeRepairRequest,
			Requester:    requester,
			FirstMissing: env.FirstMissing,
			LastMissing:  env.LastMissing,
			Chain:        env.Chain[1:],
			Epsilon:      hi,
		})
	}
}

// ---- membership gossip ----

func (n *Node) gossipLoop() {
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		target := n.gossipTarget()
		if target != "" {
			n.met.gossipSent.Inc()
			n.send(target, wire.Envelope{
				Type:    wire.TypeMembershipRequest,
				Limit:   n.cfg.MembershipLimit,
				Members: n.announceMembers(),
			})
		}
		n.refreshAncestors()
	}
}

// announceMembers is the push half of the gossip: our own record (when we
// hold a tree position) plus a handful of known entries.
func (n *Node) announceMembers() []wire.MemberInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]wire.MemberInfo, 0, 9)
	if n.attached || n.cfg.Source {
		out = append(out, n.selfInfoLocked())
	}
	for _, rec := range n.membership {
		if len(out) >= cap(out) {
			break
		}
		out = append(out, rec.info)
	}
	return out
}

func (n *Node) gossipTarget() wire.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	for addr := range n.membership { // map order gives a cheap random pick
		return addr
	}
	if len(n.cfg.Bootstrap) > 0 {
		return n.cfg.Bootstrap[0]
	}
	return ""
}

// refreshAncestors asks the parent chain implicitly: the node's own ancestor
// list is parent + parent's advertised ancestors from gossip.
func (n *Node) refreshAncestors() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.attached || n.cfg.Source {
		n.ancestors = nil
		return
	}
	anc := []wire.Addr{n.parent}
	if rec, ok := n.membership[n.parent]; ok {
		anc = append(anc, rec.info.Ancestors...)
	}
	if len(anc) > 16 {
		anc = anc[:16]
	}
	n.ancestors = anc
}

func (n *Node) selfInfoLocked() wire.MemberInfo {
	return wire.MemberInfo{
		Addr:      n.Addr(),
		Depth:     n.depth,
		Spare:     n.outDegree() - len(n.children),
		Bandwidth: n.cfg.Bandwidth,
		Ancestors: append([]wire.Addr(nil), n.ancestors...),
	}
}

func (n *Node) handleMembershipRequest(env wire.Envelope) {
	// Push-pull: the request carries the requester's own view (at least its
	// self record), so knowledge spreads in both directions — without this
	// the bootstrap member would never learn the overlay exists.
	n.mergeMembers(env.From, env.Members)
	limit := env.Limit
	if limit <= 0 || limit > n.cfg.MembershipLimit {
		limit = n.cfg.MembershipLimit
	}
	n.mu.Lock()
	members := make([]wire.MemberInfo, 0, limit)
	if n.attached || n.cfg.Source {
		members = append(members, n.selfInfoLocked())
	}
	for _, rec := range n.membership {
		if len(members) >= limit {
			break
		}
		members = append(members, rec.info)
	}
	n.mu.Unlock()
	n.send(env.From, wire.Envelope{Type: wire.TypeMembershipReply, Members: members})
}

// mergeMembers folds gossip entries into the view: first-hand entries (the
// sender describing itself) always win; second-hand copies fill gaps only —
// stale relays must not clobber live capacity data.
func (n *Node) mergeMembers(from wire.Addr, members []wire.MemberInfo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	for _, info := range members {
		if info.Addr == n.Addr() {
			continue
		}
		// Gossip must not re-introduce a quarantined peer (third parties keep
		// relaying it until their own guards convict).
		if n.quarantinedLocked(info.Addr, now) {
			continue
		}
		_, known := n.membership[info.Addr]
		// Hard cap on view growth: a flood of forged member records must not
		// balloon the map past the prune threshold the reply path enforces.
		if !known && len(n.membership) >= 4*n.cfg.MembershipLimit {
			continue
		}
		if info.Addr == from || !known {
			n.membership[info.Addr] = memberRecord{info: info, seen: now}
		}
	}
}

// touchMember refreshes a known member's freshness on any direct datagram:
// hearing from a node first-hand — heartbeat, packet, repair, gossip — is
// the liveness signal recoveryGroup's staleness filter keys on.
func (n *Node) touchMember(from wire.Addr) {
	if from == "" {
		return
	}
	n.mu.Lock()
	if rec, ok := n.membership[from]; ok {
		rec.seen = time.Now()
		n.membership[from] = rec
	}
	n.mu.Unlock()
}

func (n *Node) handleMembershipReply(env wire.Envelope) {
	n.mergeMembers(env.From, env.Members)
	// Bound the view.
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.membership) > 4*n.cfg.MembershipLimit {
		now := time.Now()
		for addr, rec := range n.membership {
			if now.Sub(rec.seen) > 10*n.cfg.GossipInterval {
				delete(n.membership, addr)
			}
		}
	}
}

// ---- ROST switching ----

func (n *Node) switchLoop() {
	ticker := time.NewTicker(n.cfg.SwitchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		eligible := n.attached && !n.switching && n.parent != "" &&
			n.parentBW > 0 && // a heartbeat told us the parent's properties
			n.cfg.Bandwidth >= n.parentBW &&
			n.btpLocked() > n.parentBTP &&
			n.depth > 1 // never displace the source
		parent := n.parent
		btp := n.btpLocked()
		if eligible {
			n.switching = true
		}
		n.mu.Unlock()
		if eligible {
			n.send(parent, wire.Envelope{Type: wire.TypeSwitchPropose, BTP: btp})
			// Unlock if no commit completes within a few heartbeats.
			time.AfterFunc(3*n.cfg.HeartbeatInterval, func() {
				n.mu.Lock()
				n.switching = false
				n.mu.Unlock()
			})
		}
	}
}

// handleSwitchPropose runs on the parent: re-validate and accept.
func (n *Node) handleSwitchPropose(env wire.Envelope) {
	n.mu.Lock()
	_, isChild := n.children[env.From]
	ok := isChild && n.attached && !n.switching && !n.cfg.Source &&
		env.BTP > n.btpLocked()
	var grandparent wire.Addr
	if ok {
		n.switching = true
		grandparent = n.parent
	}
	n.mu.Unlock()
	if !ok {
		n.send(env.From, wire.Envelope{Type: wire.TypeSwitchReject})
		return
	}
	n.send(env.From, wire.Envelope{Type: wire.TypeSwitchAccept, NewParent: grandparent})
}

// handleSwitchAccept runs on the initiator: commit the exchange.
func (n *Node) handleSwitchAccept(env wire.Envelope) {
	n.mu.Lock()
	if env.From != n.parent || env.NewParent == "" {
		n.switching = false
		n.mu.Unlock()
		return
	}
	oldParent := n.parent
	grandparent := env.NewParent
	// Re-point: we take the parent's position.
	n.parent = grandparent
	n.parentSeen = time.Now()
	n.parentBTP = 0
	n.parentBW = 0
	n.depth-- // we move one layer up
	// The old parent becomes our child.
	n.children[oldParent] = &peer{lastSeen: time.Now()}
	// Capacity overflow: hand our lowest-priority child to the old parent
	// (it just freed the slot we occupied).
	var demoted wire.Addr
	if len(n.children) > n.outDegree() {
		for c := range n.children {
			if c != oldParent {
				demoted = c
				break
			}
		}
		if demoted != "" {
			delete(n.children, demoted)
		}
	}
	n.switching = false
	n.stats.Switches++
	n.met.switches.Inc()
	n.mu.Unlock()

	// Tell the grandparent to swap its child pointer, the old parent to
	// demote itself, and the displaced child where to go.
	n.send(grandparent, wire.Envelope{Type: wire.TypeSwitchCommit, Chain: []wire.Addr{oldParent}})
	n.send(oldParent, wire.Envelope{Type: wire.TypeSwitchCommit, NewParent: n.Addr()})
	if demoted != "" {
		n.send(demoted, wire.Envelope{Type: wire.TypeSwitchCommit, NewParent: oldParent})
	}
}

// handleSwitchCommit adjusts links after an exchange. Three shapes:
//   - at the grandparent: Chain[0] names the child being replaced by From;
//   - at the demoted parent: NewParent names its new parent (the initiator);
//   - at a displaced grandchild: NewParent names where to re-join.
func (n *Node) handleSwitchCommit(env wire.Envelope) {
	n.mu.Lock()
	if len(env.Chain) == 1 {
		// Grandparent: replace the child entry.
		old := env.Chain[0]
		if _, ok := n.children[old]; ok {
			delete(n.children, old)
			n.children[env.From] = &peer{lastSeen: time.Now()}
		}
		n.mu.Unlock()
		return
	}
	if env.NewParent == n.Addr() {
		n.mu.Unlock()
		return
	}
	if env.NewParent == "" {
		// No valid shape: a commit naming neither a replaced child nor a new
		// parent would re-point us at the empty address — attached with no
		// parent, a one-datagram orphaning. Forged or corrupt; drop it.
		n.stats.GuardImplausible++
		n.mu.Unlock()
		n.met.noteImplausible("switch-shape")
		return
	}
	// Demoted parent or displaced grandchild: re-point to NewParent.
	n.parent = env.NewParent
	n.parentSeen = time.Now()
	n.parentBTP = 0
	n.parentBW = 0
	n.depth++ // one layer down (approximate; gossip refreshes it)
	delete(n.children, env.NewParent)
	n.switching = false
	n.mu.Unlock()
	// Greet the new parent so it knows us (idempotent join-as-child).
	n.send(env.NewParent, wire.Envelope{Type: wire.TypeJoin, Bandwidth: n.cfg.Bandwidth})
}

// ---- dispatch ----

func (n *Node) onDatagram(data []byte) {
	n.met.rxDatagrams.Inc()
	n.met.rxBytes.Add(int64(len(data)))
	select {
	case <-n.done:
		return
	default:
	}
	codec := wire.Detect(data)
	env, err := codec.Decode(data)
	if err != nil {
		// Malformed or semantically invalid: drop, count by reason, and —
		// when the envelope parsed far enough to name a sender — charge the
		// claimed sender's misbehavior score.
		n.mu.Lock()
		n.stats.WireRejects++
		n.mu.Unlock()
		n.met.noteWireReject(wire.Reason(err))
		n.noteWireReject(env.From)
		return
	}
	n.met.noteCodecRx(codec.Name())
	if !n.guardAdmit(env) {
		return // rate-limited, quarantined or audit-failed
	}
	n.touchMember(env.From)
	// Reliable control delivery: always (re-)ack a tagged message — the
	// sender retransmits until an ack survives the network — but hand only
	// the first copy to its handler.
	if env.Ctrl != 0 && env.Type != wire.TypeAck {
		dup := n.ctrlSeen(env.From, env.Ctrl)
		n.send(env.From, wire.Envelope{Type: wire.TypeAck, Ctrl: env.Ctrl})
		if dup {
			n.mu.Lock()
			n.stats.RetxDupDrops++
			n.mu.Unlock()
			n.met.retxDupDrops.Inc()
			return
		}
	}
	switch env.Type {
	case wire.TypeJoin:
		n.handleJoin(env)
	case wire.TypeAccept:
		n.handleAccept(env)
	case wire.TypeReject:
		n.handleReject(env)
	case wire.TypeLeave:
		n.handleLeave(env)
	case wire.TypeHeartbeat:
		n.handleHeartbeat(env)
	case wire.TypePacket:
		n.acceptPacket(env, false)
	case wire.TypeELN:
		n.handleELN(env)
	case wire.TypeRepairRequest:
		n.handleRepairRequest(env)
	case wire.TypeRepairData:
		n.acceptPacket(env, true)
	case wire.TypeMembershipRequest:
		n.handleMembershipRequest(env)
	case wire.TypeMembershipReply:
		n.handleMembershipReply(env)
	case wire.TypeSwitchPropose:
		n.handleSwitchPropose(env)
	case wire.TypeSwitchAccept:
		n.handleSwitchAccept(env)
	case wire.TypeSwitchReject:
		n.mu.Lock()
		n.switching = false
		n.mu.Unlock()
	case wire.TypeSwitchCommit:
		n.handleSwitchCommit(env)
	case wire.TypeAck:
		n.handleAck(env)
	}
}

// Errors used by callers embedding the runtime.
var (
	// ErrNotAttached reports an operation requiring a live tree position.
	ErrNotAttached = errors.New("node: not attached")
)

// String renders a debug summary.
func (n *Node) String() string {
	s := n.Stats()
	return fmt.Sprintf("node(%s depth=%d children=%d highest=%d)", n.Addr(), s.Depth, s.Children, s.HighestPacket)
}
