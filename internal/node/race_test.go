package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"omcast/internal/wire"
)

// TestConcurrentChurnRace drives joins, heartbeats, ROST switching, failures
// and stats snapshots all at once over a lossy latency-injecting in-memory
// network. It asserts nothing beyond basic liveness: its job is to give the
// race detector (go test -race) maximal interleaving coverage over the
// node's mutex discipline — peer.lastSeen updates, children map access,
// membership gossip, and the switch/commit handshake.
func TestConcurrentChurnRace(t *testing.T) {
	latency := func(from, to wire.Addr) time.Duration { return time.Millisecond }
	network := NewMemNetwork(latency)
	defer network.Close()

	cfg := fast
	cfg.SwitchInterval = 30 * time.Millisecond // exercise the switching path

	boot := func(addr wire.Addr, mutate func(*Config)) *Node {
		c := cfg
		c.Bootstrap = []wire.Addr{"source"}
		c.Bandwidth = 3
		if mutate != nil {
			mutate(&c)
		}
		ep, err := network.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		n := New(c, ep)
		n.Start()
		return n
	}

	source := boot("source", func(c *Config) {
		c.Source = true
		c.Bandwidth = 8
		c.Bootstrap = nil
		c.SwitchInterval = 0
	})
	defer source.Kill()

	const initial = 12
	nodes := make([]*Node, 0, initial)
	for i := 0; i < initial; i++ {
		nodes = append(nodes, boot(wire.Addr(fmt.Sprintf("n%02d", i)), nil))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reader: hammer the public snapshot API from outside the node's loops.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, n := range nodes {
				_ = n.Stats()
				_ = n.String()
			}
			_ = source.Stats()
		}
	}()

	// Failover driver: abrupt kills force parent-failure detection and CER
	// repair on the survivors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			case <-time.After(60 * time.Millisecond):
			}
			nodes[i].Kill()
		}
	}()

	// Late joiners: concurrent membership discovery and join handshakes.
	late := make(chan *Node, 6)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < cap(late); i++ {
			select {
			case <-stop:
				close(late)
				return
			case <-time.After(25 * time.Millisecond):
			}
			late <- boot(wire.Addr(fmt.Sprintf("late%02d", i)), nil)
		}
		close(late)
	}()

	// Graceful leavers: Stop notifies parent and children mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := initial - 1; i >= initial-3; i-- {
			select {
			case <-stop:
				return
			case <-time.After(80 * time.Millisecond):
			}
			nodes[i].Stop()
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	var lateNodes []*Node
	for n := range late {
		lateNodes = append(lateNodes, n)
	}
	for _, n := range append(nodes[3:initial-3], lateNodes...) {
		if got := n.Stats(); got.KnownMembers == 0 && !got.Attached {
			// Liveness smoke check only; attachment is timing-dependent under
			// the injected latency, so an empty view is the only hard failure.
			t.Logf("node %s never discovered the overlay", n.Addr())
		}
	}
	for _, n := range append(nodes, lateNodes...) {
		n.Kill()
	}
}
