// Command omcast-lint enforces the repository's determinism,
// simulation-safety and input-hardening invariants (see internal/lint). It
// loads and type-checks every package in the module using only the standard
// library, builds the module call graph, runs the typed rule set — syntactic
// scope rules plus taint tracking, transitive handler purity and lock
// discipline — and reports diagnostics.
//
// Usage:
//
//	go run ./cmd/omcast-lint ./...              # lint the whole module
//	go run ./cmd/omcast-lint ./internal/...     # lint a subtree
//	go run ./cmd/omcast-lint -list              # describe the rules
//	go run ./cmd/omcast-lint -enable wire-taint ./...
//	go run ./cmd/omcast-lint -disable map-order ./...
//	go run ./cmd/omcast-lint -format sarif -o lint.sarif ./...
//	go run ./cmd/omcast-lint -stats ./...
//
// Flags:
//
//	-list            list the rules and exit
//	-enable  names   run ONLY these comma-separated rules
//	-disable names   skip these comma-separated rules
//	-format  kind    output format: text (default), json, sarif
//	-o       file    write findings to file instead of stdout
//	-stats           print per-rule finding counts and wall time to stderr
//	-stats-json file write the statistics as JSON to file
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on load or
// usage errors. Findings are suppressed in source with
// //lint:ignore <rule> reason: <justification> on the offending line or the
// line above; the stale-suppression audit (full-rule-set runs only) flags
// directives that no longer silence anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"omcast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("omcast-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the rules and exit")
	enable := fs.String("enable", "", "comma-separated rule names to run exclusively")
	disable := fs.String("disable", "", "comma-separated rule names to skip")
	format := fs.String("format", "text", "output format: text, json, sarif")
	outPath := fs.String("o", "", "write findings to this file instead of stdout")
	stats := fs.Bool("stats", false, "print per-rule finding counts and wall time to stderr")
	statsJSON := fs.String("stats-json", "", "write per-rule statistics as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	cfg := lint.DefaultConfig()
	var err error
	if cfg.Enabled, err = splitRules(*enable, "-enable"); err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}
	if cfg.Disabled, err = splitRules(*disable, "-disable"); err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "omcast-lint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := selectPackages(pkgs, patterns, root, cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}

	res := lint.RunAnalysis(selected, cfg)

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omcast-lint:", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		err = lint.WriteJSON(out, res.Diags, root)
	case "sarif":
		err = lint.WriteSARIF(out, res.Diags, root)
	default:
		for _, d := range res.Diags {
			file := d.Pos.Filename
			if rel, rerr := filepath.Rel(cwd, file); rerr == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			fmt.Fprintf(out, "%s:%d: %s: %s\n", file, d.Pos.Line, d.Rule, d.Message)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}

	if *stats {
		lint.WriteStats(os.Stderr, res)
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, res); err != nil {
			fmt.Fprintln(os.Stderr, "omcast-lint:", err)
			return 2
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "omcast-lint: %d finding(s)\n", len(res.Diags))
		return 1
	}
	return 0
}

// splitRules parses a comma-separated rule list, rejecting unknown names.
func splitRules(s, flagName string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, name := range lint.RuleNames() {
		known[name] = true
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				return nil, fmt.Errorf("unknown rule %q in %s (see -list)", name, flagName)
			}
			out = append(out, name)
		}
	}
	return out, nil
}

func writeStatsJSON(path string, res lint.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		TotalMillis float64         `json:"total_ms"`
		Rules       []lint.RuleStat `json:"rules"`
	}{res.TotalMillis, res.Stats})
}

// selectPackages filters loaded packages by go-tool-style patterns: "./..."
// (everything below the pattern's directory), a relative directory, or a full
// import path.
func selectPackages(pkgs []*lint.Package, patterns []string, root, cwd string) ([]*lint.Package, error) {
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range pkgs {
			ok, err := matchPattern(pkg, pat, root, cwd)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(pkg *lint.Package, pat, root, cwd string) (bool, error) {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	// Filesystem-relative patterns resolve against the working directory;
	// anything else is treated as an import path (or import-path prefix).
	var base string
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if filepath.IsAbs(pat) {
			abs, err = pat, nil
		}
		if err != nil {
			return false, err
		}
		base = abs
		if recursive {
			return pkg.Dir == base || strings.HasPrefix(pkg.Dir, base+string(filepath.Separator)), nil
		}
		return pkg.Dir == base, nil
	}
	if recursive {
		return pkg.Path == pat || strings.HasPrefix(pkg.Path, pat+"/"), nil
	}
	return pkg.Path == pat, nil
}
