// Package stats provides the summary statistics the evaluation reports:
// means, standard deviations, percentiles, empirical CDFs and Student-t 95%
// confidence intervals (Figure 14 plots its results with 95% CIs over
// independent simulation seeds).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries that need at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest sample. It returns ErrEmpty for no samples.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest sample. It returns ErrEmpty for no samples.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns ErrEmpty for no samples
// and an error for p outside [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g outside [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CDFPoint is one step of an empirical CDF: the fraction of samples <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of xs evaluated at each distinct sample
// value, in increasing order of value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Emit a point only at the last occurrence of each distinct value.
		//lint:ignore float-accum reason: exact duplicate collapse over sorted values is intended
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		points = append(points, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return points
}

// CDFAt returns the empirical CDF of xs evaluated at the given thresholds
// (fraction of samples <= threshold), one output per threshold, preserving
// threshold order.
func CDFAt(xs []float64, thresholds []float64) []CDFPoint {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(thresholds))
	n := float64(len(sorted))
	for _, t := range thresholds {
		idx := sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))
		frac := 0.0
		if n > 0 {
			frac = float64(idx) / n
		}
		points = append(points, CDFPoint{Value: t, Fraction: frac})
	}
	return points
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	Mean   float64
	Radius float64 // half-width; the interval is Mean +/- Radius
	N      int
}

// Lo returns the lower bound of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.Radius }

// Hi returns the upper bound of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.Radius }

// ConfidenceInterval95 returns the Student-t 95% confidence interval for the
// mean of xs. With fewer than two samples the radius is zero.
func ConfidenceInterval95(xs []float64) Interval {
	n := len(xs)
	iv := Interval{Mean: Mean(xs), N: n}
	if n < 2 {
		return iv
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	iv.Radius = tCritical95(n-1) * se
	return iv
}

// tCritical95 returns the two-sided 95% critical value of the Student-t
// distribution with df degrees of freedom. Values for small df are tabulated;
// large df fall back to the normal critical value 1.960.
func tCritical95(df int) float64 {
	table := []float64{
		// df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// Histogram counts samples into equal-width bins over [lo, hi). Samples
// outside the range are clamped into the first or last bin.
func Histogram(xs []float64, lo, hi float64, bins int) ([]int, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g,%g) is empty", lo, hi)
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts, nil
}

// Welford accumulates a running mean and variance without retaining samples;
// used by long simulations to avoid storing per-event observations.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
