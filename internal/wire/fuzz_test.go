package wire

import (
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the parser. The invariants: Decode
// never panics, never accepts an envelope Validate rejects, and everything
// it accepts re-encodes and re-decodes to the same envelope (the parser and
// the validators agree on a fixed point).
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"type":6,"from":"s","packet":100,"payload":"AQID"}`))
	f.Add([]byte(`{"type":8,"from":"a","first_missing":5,"last_missing":25,"chain":["r2","r3"],"epsilon":0.25}`))
	f.Add([]byte(`{"type":5,"from":"p","bandwidth":3,"depth":1,"seq":7,"btp":42.5}`))
	f.Add([]byte(`{"type":11,"from":"b","members":[{"addr":"m1","depth":3,"spare":2,"bandwidth":4,"ancestors":["p"]}]}`))
	f.Add([]byte(`{"type":8,"from":"a","first_missing":9,"last_missing":3}`))
	f.Add([]byte(`{"type":12,"from":"c","btp":1e308}`))
	f.Add([]byte(`{"type":999,"from":"x"}`))
	f.Add([]byte(`{broken`))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			if r := Reason(err); r == "" {
				t.Fatalf("error without a reason: %v", err)
			}
			return
		}
		if verr := Validate(env); verr != nil {
			t.Fatalf("Decode accepted an envelope Validate rejects: %v\n%s", verr, data)
		}
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v", err)
		}
		again, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded envelope does not re-decode: %v\n%s", err, b)
		}
		if again.Type != env.Type || again.From != env.From || again.Packet != env.Packet ||
			again.FirstMissing != env.FirstMissing || again.LastMissing != env.LastMissing {
			t.Fatalf("re-decode drifted: %+v -> %+v", env, again)
		}
	})
}

// FuzzRoundTrip drives structured field values through Encode|Decode. Any
// envelope Validate accepts must survive the round trip bit-exactly on its
// scalar fields; any envelope Validate rejects must also be rejected when it
// arrives as bytes (no validation gap between the two entry points).
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(6), "s", 0.0, 0, uint64(0), int64(100), []byte{1, 2, 3}, int64(0), int64(0), "", "", 0.0, 0, 0.0, "")
	f.Add(uint8(8), "a", 0.0, 0, uint64(0), int64(0), []byte(nil), int64(5), int64(25), "r2,r3", "orig", 0.25, 0, 0.0, "")
	f.Add(uint8(5), "p", 3.0, 1, uint64(7), int64(0), []byte(nil), int64(0), int64(0), "", "", 0.0, 0, 42.5, "")
	f.Add(uint8(15), "i", 0.0, 0, uint64(0), int64(0), []byte(nil), int64(0), int64(0), "old", "", 0.0, 0, 0.0, "np")
	f.Add(uint8(8), "a", 0.0, 0, uint64(0), int64(0), []byte(nil), int64(9), int64(3), "", "", 0.0, 0, 0.0, "")
	f.Fuzz(func(t *testing.T, typ uint8, from string, bw float64, depth int, seq uint64,
		pkt int64, payload []byte, first, last int64, chain, requester string,
		eps float64, limit int, btp float64, newParent string) {
		env := Envelope{
			Type: Type(typ), From: Addr(from), Bandwidth: bw, Depth: depth,
			Seq: seq, Packet: pkt, Payload: payload,
			FirstMissing: first, LastMissing: last,
			Requester: Addr(requester), Epsilon: eps, Limit: limit,
			BTP: btp, NewParent: Addr(newParent),
		}
		if chain != "" {
			for _, c := range strings.Split(chain, ",") {
				env.Chain = append(env.Chain, Addr(c))
			}
		}
		valid := Validate(env) == nil
		b, err := Encode(env)
		if err != nil {
			// Unencodable (e.g. NaN) implies invalid; a valid envelope must
			// always encode.
			if valid {
				t.Fatalf("valid envelope failed to encode: %v", err)
			}
			return
		}
		got, err := Decode(b)
		if valid && err != nil {
			t.Fatalf("validation gap: Validate accepted but Decode rejects: %v\n%s", err, b)
		}
		if !valid {
			// Encoding may launder an invalid envelope into a valid one (JSON
			// replaces invalid UTF-8), so rejection is not guaranteed — but
			// whatever Decode accepts must itself validate.
			if err == nil {
				if verr := Validate(got); verr != nil {
					t.Fatalf("Decode accepted an envelope Validate rejects: %v", verr)
				}
			}
			return
		}
		if got.Type != env.Type || got.From != env.From || got.Packet != env.Packet ||
			got.Seq != env.Seq || got.Depth != env.Depth ||
			got.FirstMissing != env.FirstMissing || got.LastMissing != env.LastMissing ||
			got.Bandwidth != env.Bandwidth || got.BTP != env.BTP || got.Epsilon != env.Epsilon ||
			got.Limit != env.Limit || got.Requester != env.Requester || got.NewParent != env.NewParent {
			t.Fatalf("round trip drifted:\n sent %+v\n got  %+v", env, got)
		}
	})
}
