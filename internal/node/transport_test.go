package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"omcast/internal/metrics/live"
	"omcast/internal/wire"
)

func TestMemNetworkDelivery(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(data []byte) {
		mu.Lock()
		got = append(got, string(data))
		mu.Unlock()
	})
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	eventually(t, time.Second, "datagram delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1 && got[0] == "hello"
	})
	if a.Addr() != "a" || b.Addr() != "b" {
		t.Fatal("addresses wrong")
	}
}

func TestMemNetworkUnknownAddr(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("send to ghost = %v, want ErrUnknownAddr", err)
	}
}

func TestMemNetworkDuplicateAddr(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	if _, err := network.Endpoint("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Endpoint("dup"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestMemNetworkCloseSemantics(t *testing.T) {
	network := NewMemNetwork(nil)
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("a", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close errored")
	}
	network.Close()
	if _, err := network.Endpoint("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("endpoint after network close = %v, want ErrClosed", err)
	}
	network.Close() // idempotent
}

func TestMemNetworkLatency(t *testing.T) {
	const delay = 50 * time.Millisecond
	network := NewMemNetwork(func(from, to wire.Addr) time.Duration { return delay })
	defer network.Close()
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var deliveredAt time.Time
	b.SetHandler(func([]byte) {
		mu.Lock()
		deliveredAt = time.Now()
		mu.Unlock()
	})
	sentAt := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	eventually(t, time.Second, "delayed delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return !deliveredAt.IsZero()
	})
	if elapsed := deliveredAt.Sub(sentAt); elapsed < delay/2 {
		t.Fatalf("delivered after %v, want >= ~%v", elapsed, delay)
	}
}

// TestMailboxDropCounter fills an endpoint's mailbox behind a blocked
// handler and checks overflow is counted — both on the network itself and on
// an attached live registry — instead of vanishing silently.
func TestMailboxDropCounter(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	reg := live.NewRegistry()
	network.SetMetrics(reg)
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	// Unblock the handler before network.Close runs (defers are LIFO), or
	// the delivery goroutine would hang the shutdown wait.
	defer close(block)
	first := make(chan struct{})
	var firstOnce sync.Once
	b.SetHandler(func([]byte) {
		firstOnce.Do(func() { close(first) })
		<-block
	})

	// One datagram parks in the handler; 1024 fill the mailbox; everything
	// beyond must overflow. Waiting for the handler to park first makes the
	// accounting below exact.
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	<-first
	const extra = 50
	for i := 0; i < 1024+extra; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := network.MailboxDrops(); got != extra {
		t.Fatalf("MailboxDrops = %d, want %d", got, extra)
	}
	snap := reg.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "omcast_node_mailbox_dropped_total" {
			found = true
			if m.Value != extra {
				t.Fatalf("metric = %v, want %d", m.Value, extra)
			}
		}
	}
	if !found {
		t.Fatal("omcast_node_mailbox_dropped_total not registered")
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := a.Close(); err != nil {
			t.Errorf("close a: %v", err)
		}
	}()
	b, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := b.Close(); err != nil {
			t.Errorf("close b: %v", err)
		}
	}()
	var mu sync.Mutex
	var got []byte
	b.SetHandler(func(data []byte) {
		mu.Lock()
		got = append([]byte(nil), data...)
		mu.Unlock()
	})
	if err := a.Send(b.Addr(), []byte("over udp")); err != nil {
		t.Fatal(err)
	}
	eventually(t, 2*time.Second, "udp datagram delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return string(got) == "over udp"
	})
}

func TestUDPTransportErrors(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("not-an-addr", []byte("x")); err == nil {
		t.Fatal("send to garbage address succeeded")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:1", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if _, err := NewUDPTransport("999.999.999.999:70000"); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestNodesOverUDP boots a small overlay on real loopback sockets.
func TestNodesOverUDP(t *testing.T) {
	srcTr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srcCfg := fast
	srcCfg.Source = true
	srcCfg.Bandwidth = 4
	src := New(srcCfg, srcTr)
	src.Start()
	defer src.Kill()

	var nodes []*Node
	for i := 0; i < 5; i++ {
		tr, err := NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := fast
		cfg.Bandwidth = 3
		cfg.Bootstrap = []wire.Addr{src.Addr()}
		nd := New(cfg, tr)
		nodes = append(nodes, nd)
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Kill()
		}
	}()
	eventually(t, 10*time.Second, "udp overlay attached and streaming", func() bool {
		for _, nd := range nodes {
			s := nd.Stats()
			if !s.Attached || s.HighestPacket < 20 {
				return false
			}
		}
		return true
	})
}
