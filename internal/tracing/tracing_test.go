package tracing

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// collect is a Recorder appending into a slice.
type collect struct{ spans []Span }

func (c *collect) Record(sp Span) { c.spans = append(c.spans, sp) }

func TestDeterministicIDs(t *testing.T) {
	mint := func() []Span {
		var c collect
		tr := New(42, &c)
		a := tr.Start(KindRejoin, 7, time.Second)
		a.Child(KindAttempt, 7, 2*time.Second).End(3*time.Second, "accepted")
		a.End(3*time.Second, "reattached")
		tr.Start(KindRepair, 9, 4*time.Second).End(5*time.Second, "filled")
		return c.spans
	}
	first, second := mint(), mint()
	if len(first) != 3 {
		t.Fatalf("got %d spans, want 3", len(first))
	}
	for i := range first {
		if first[i].ID != second[i].ID {
			t.Errorf("span %d: ID %q vs %q across identical runs", i, first[i].ID, second[i].ID)
		}
		if len(first[i].ID) != 16 {
			t.Errorf("span %d: ID %q not 16 hex chars", i, first[i].ID)
		}
	}
	if first[0].Parent != first[1].ID {
		// spans record in completion order: child first, then parent
		t.Errorf("child parent=%q, want parent span ID %q", first[0].Parent, first[1].ID)
	}

	// Different seeds and different members must not collide.
	var c2 collect
	tr2 := New(43, &c2)
	tr2.Start(KindRejoin, 7, time.Second).End(3*time.Second, "reattached")
	if c2.spans[0].ID == first[1].ID {
		t.Error("same ID across different seeds")
	}
	ids := map[string]bool{}
	for _, sp := range first {
		if ids[sp.ID] {
			t.Errorf("duplicate ID %q within one run", sp.ID)
		}
		ids[sp.ID] = true
	}
}

func TestNodeTracerDistinctIDs(t *testing.T) {
	var a, b collect
	ta := NewNode(1, "127.0.0.1:7000", &a)
	tb := NewNode(1, "127.0.0.1:7001", &b)
	ta.Start(KindJoin, 0, 0).End(time.Second, "accepted")
	tb.Start(KindJoin, 0, 0).End(time.Second, "accepted")
	if a.spans[0].ID == b.spans[0].ID {
		t.Error("two nodes with the same seed minted the same span ID")
	}
	if a.spans[0].Node != "127.0.0.1:7000" {
		t.Errorf("node not stamped: %q", a.spans[0].Node)
	}
}

func TestDisabledTracerIsNil(t *testing.T) {
	if New(1, nil) != nil {
		t.Fatal("New with nil sink should return the nil tracer")
	}
	var tr *Tracer
	// Every call on the disabled path must be a safe no-op.
	b := tr.Start(KindRepair, 1, 0)
	b.Attr("k", "v").AttrInt("n", 3).AttrDuration("d", time.Second)
	b.Child(KindFetch, 2, 0).End(time.Second, "x")
	b.End(time.Second, "y")
	if b.ID() != "" {
		t.Error("disabled builder should have empty ID")
	}
}

// TestDisabledSpanHooksZeroAlloc is the satellite-4 ceiling: the exact
// call shape used by the stream/rost/node hot paths must add zero
// allocations when tracing is disabled.
func TestDisabledSpanHooksZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(KindRepair, 17, 5*time.Second)
		sp.AttrInt("first", 100).AttrInt("last", 140)
		sp.Child(KindFetch, 17, 5*time.Second).AttrInt("server", 3).End(6*time.Second, "filled")
		sp.End(6*time.Second, "filled")
	})
	if allocs != 0 {
		t.Fatalf("disabled span hooks allocate %.1f/op, want 0", allocs)
	}
}

func TestBuilderReuseInterleaved(t *testing.T) {
	var c collect
	tr := New(5, &c)
	a := tr.Start(KindRejoin, 1, 0)
	b := tr.Start(KindRepair, 2, time.Second) // allocated: a still open
	a.Attr("cause", "failure")
	b.End(2*time.Second, "filled")
	a.End(3*time.Second, "reattached")
	if len(c.spans) != 2 {
		t.Fatalf("got %d spans", len(c.spans))
	}
	if c.spans[0].Kind != KindRepair || c.spans[1].Kind != KindRejoin {
		t.Fatalf("interleaved spans corrupted: %+v", c.spans)
	}
	if c.spans[1].Attrs[0].V != "failure" {
		t.Fatalf("attr lost across interleave: %+v", c.spans[1])
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	var c collect
	tr := New(9, &c)
	ep := tr.Start(KindRepair, 4, 10*time.Second).AttrInt("first", 99)
	ep.Child(KindFetch, 4, 10*time.Second).Attr("server", "2").End(11*time.Second, "arrived")
	ep.End(12*time.Second, "filled")

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c.spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"v":1`) {
		t.Fatalf("envelope missing schema version: %s", buf.String())
	}
	got, err := ReadSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(c.spans) {
		t.Fatalf("round trip lost spans: %d vs %d", len(got), len(c.spans))
	}
	for i := range got {
		if got[i].ID != c.spans[i].ID || got[i].Kind != c.spans[i].Kind ||
			got[i].Start != c.spans[i].Start || got[i].End != c.spans[i].End ||
			got[i].Outcome != c.spans[i].Outcome {
			t.Errorf("span %d mismatch: %+v vs %+v", i, got[i], c.spans[i])
		}
	}
	if got[1].Attrs[0].K != "first" || got[1].Attrs[0].V != "99" {
		t.Errorf("attrs not preserved: %+v", got[1].Attrs)
	}
}

func TestParseRejectsNewerSchema(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"v":99,"event":"span"}`))
	if err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("want schema-version error, got %v", err)
	}
}

func TestParseSkipsPointEvents(t *testing.T) {
	in := `{"v":1,"t":1,"event":"join","member":3}
{"v":1,"t":2,"event":"failure","member":3}
{"v":1,"t":2,"event":"join","member":4}`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 0 || tr.Events["join"] != 2 || tr.Events["failure"] != 1 {
		t.Fatalf("unexpected parse: %+v", tr)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1.0, 10}, {0.1, 1}}
	for _, c := range cases {
		if got := Percentile(s, c.q); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.q*100, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty slice should yield 0")
	}
}

func TestAnalyzeWaterfall(t *testing.T) {
	var c collect
	tr := New(3, &c)
	for i := int64(0); i < 4; i++ {
		ep := tr.Start(KindRejoin, i, time.Duration(i)*time.Second)
		ep.Child(KindAttempt, i, time.Duration(i)*time.Second+500*time.Millisecond).
			End(time.Duration(i)*time.Second+time.Second, "accepted")
		out := "reattached"
		if i == 3 {
			out = "departed"
		}
		ep.End(time.Duration(i)*time.Second+2*time.Second, out)
	}
	a := Analyze(&ParsedTrace{Spans: c.spans})
	if a.TotalSpans != 8 {
		t.Fatalf("total %d, want 8", a.TotalSpans)
	}
	if len(a.Kinds) != 1 {
		t.Fatalf("kinds %d, want 1 (attempts fold into rejoin stages): %+v", len(a.Kinds), a.Kinds)
	}
	ks := a.Kinds[0]
	if ks.Kind != KindRejoin || ks.Count != 4 {
		t.Fatalf("unexpected kind stats: %+v", ks)
	}
	if ks.Outcomes["reattached"] != 3 || ks.Outcomes["departed"] != 1 {
		t.Fatalf("outcomes: %+v", ks.Outcomes)
	}
	if got := Percentile(ks.Durations, 0.5); got != 2 {
		t.Fatalf("p50 duration %v, want 2", got)
	}
	if len(ks.Stages) != 1 || ks.Stages[0].Kind != KindAttempt || ks.Stages[0].Count != 4 {
		t.Fatalf("stages: %+v", ks.Stages)
	}
	if got := Percentile(ks.Stages[0].Offsets, 0.5); got != 0.5 {
		t.Fatalf("stage offset p50 %v, want 0.5", got)
	}

	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kind=rejoin", "reattached=3", "stage attempt", "p50=2.000s"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}
