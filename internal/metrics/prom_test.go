package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenSnapshot builds one snapshot exercising every encoder path: a labeled
// counter family with two series, a gauge whose label value needs escaping, a
// non-finite gauge, and a histogram with cumulative buckets.
func goldenSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("omcast_demo_events_total", "events by kind", Label{Key: "kind", Value: "join"}).Add(12)
	reg.Counter("omcast_demo_events_total", "events by kind", Label{Key: "kind", Value: "depart"}).Add(5)
	reg.Gauge("omcast_demo_path", `a help line with \ and a newline:`+"\n"+`end`,
		Label{Key: "path", Value: `C:\tmp "quoted"` + "\nnext"}).Set(2.5)
	reg.Gauge("omcast_demo_limit", "non-finite values").Set(math.Inf(1))
	h := reg.Histogram("omcast_demo_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	return reg.Snapshot(0)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run `go test -run Golden -update ./internal/metrics` to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prom.golden", buf.Bytes())
}

func TestWritePromDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteProm(&a, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of identical registries differ")
	}
}

func TestWritePromCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("omcast_x_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot(0)); err != nil {
		t.Fatal(err)
	}
	want := "# HELP omcast_x_seconds \n# TYPE omcast_x_seconds histogram\n" +
		"omcast_x_seconds_bucket{le=\"1\"} 1\n" +
		"omcast_x_seconds_bucket{le=\"2\"} 2\n" +
		"omcast_x_seconds_bucket{le=\"+Inf\"} 3\n" +
		"omcast_x_seconds_sum 11\n" +
		"omcast_x_seconds_count 3\n"
	if buf.String() != want {
		t.Errorf("cumulative bucket encoding wrong:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		2.5:          "2.5",
		0:            "0",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
