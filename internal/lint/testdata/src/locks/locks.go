// Package locks exercises the lock-discipline rule: //guardedby:<mutex>
// annotations on struct fields, the per-function lock-state walk, the
// *Locked-method convention, constructor freshness, and annotation
// validation. The directory is outside every scoped rule, so all diagnostics
// here come from lock-discipline (plus its suppression cases).
package locks

import "sync"

type counter struct {
	mu    sync.Mutex
	count int //guardedby:mu
	name  string
}

// badBare reads the guarded field with no lock at all.
func badBare(c *counter) int {
	return c.count // want `lock-discipline: field count is //guardedby:mu but accessed in badBare without c\.mu held`
}

// badAfterUnlock releases the mutex before the second access.
func badAfterUnlock(c *counter) int {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	return c.count // want `lock-discipline: field count is //guardedby:mu but accessed in badAfterUnlock without c\.mu held`
}

// badBranchJoin holds the lock on only one branch: the join must drop it.
func badBranchJoin(c *counter, cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.count++ // want `lock-discipline: field count is //guardedby:mu but accessed in badBranchJoin without c\.mu held`
	if cond {
		c.mu.Unlock()
	}
}

// badClosure: function literals run on their own goroutine or schedule, so
// the outer lock does not cover them.
func badClosure(c *counter) func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.count // want `lock-discipline: field count is //guardedby:mu but accessed in badClosure without c\.mu held`
	}
}

// okLocked brackets the access.
func okLocked(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// okExplicitUnlock uses the non-deferred shape.
func okExplicitUnlock(c *counter) int {
	c.mu.Lock()
	v := c.count
	c.mu.Unlock()
	return v
}

// okFresh builds the value locally: nothing else can see it yet.
func okFresh() *counter {
	c := &counter{name: "fresh"}
	c.count = 1
	return c
}

// okUnguarded touches only the unannotated field.
func okUnguarded(c *counter) string {
	return c.name
}

// bumpLocked assumes the caller holds c.mu (the Locked suffix): its body is
// exempt, its call sites are checked instead.
func (c *counter) bumpLocked() {
	c.count++
}

// badLockedCall invokes a *Locked method without the guarding mutex.
func badLockedCall(c *counter) {
	c.bumpLocked() // want `lock-discipline: bumpLocked assumes c\.mu is held \(the Locked suffix\) but badLockedCall calls it without acquiring the lock`
}

// okLockedCall holds the mutex across the *Locked call.
func okLockedCall(c *counter) {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

// okSuppressed documents a justified exception.
func okSuppressed(c *counter) int {
	//lint:ignore lock-discipline reason: fixture: snapshot read, staleness is acceptable here
	return c.count
}

// rwStats shows RWMutex support: RLock counts as held.
type rwStats struct {
	mu  sync.RWMutex
	sum float64 //guardedby:mu
}

func okReadLocked(s *rwStats) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sum
}

func badReadBare(s *rwStats) float64 {
	return s.sum // want `lock-discipline: field sum is //guardedby:mu but accessed in badReadBare without s\.mu held`
}

// badAnnotation names a field that is not a mutex: the annotation itself is
// the defect.
type badAnnotation struct {
	gate  int
	value int //guardedby:gate // want `lock-discipline: //guardedby:gate names no sync\.Mutex/sync\.RWMutex field of struct badAnnotation; fix the annotation`
}

func useBadAnnotation(b *badAnnotation) int { return b.value + b.gate }
