// Livestream: an end-to-end comparison of what a viewer experiences under
// four system designs — the paper's full stack (ROST tree + CER recovery)
// against a conventional stack (minimum-depth tree + single-source
// recovery) and the two mixed combinations — across recovery group sizes.
// This is the scenario behind the paper's Figure 14.
//
//	go run ./examples/livestream [-size 5000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livestream:", err)
		os.Exit(1)
	}
}

func run() error {
	size := flag.Int("size", 5000, "steady-state audience size")
	flag.Parse()

	type design struct {
		name     string
		alg      omcast.Algorithm
		recovery omcast.Recovery
	}
	designs := []design{
		{"ROST tree + CER recovery", omcast.ROST, omcast.CER},
		{"ROST tree + single-source", omcast.ROST, omcast.SingleSource},
		{"min-depth tree + CER recovery", omcast.MinimumDepth, omcast.CER},
		{"min-depth tree + single-source", omcast.MinimumDepth, omcast.SingleSource},
	}

	fmt.Printf("audience %d, 10 pkt/s stream, 5 s player buffer, members donate 0-9 pkt/s to recovery\n\n", *size)
	fmt.Printf("%-32s %12s %12s %12s\n", "design", "K=1", "K=2", "K=3")
	for _, d := range designs {
		fmt.Printf("%-32s", d.name)
		for _, k := range []int{1, 2, 3} {
			cfg := omcast.Config{
				Seed:       7,
				Algorithm:  d.alg,
				TargetSize: *size,
				Warmup:     2 * time.Hour,
				Measure:    time.Hour,
			}
			res, err := omcast.RunStreaming(cfg, omcast.StreamConfig{
				Recovery:  d.recovery,
				GroupSize: k,
			})
			if err != nil {
				return err
			}
			fmt.Printf(" %10.3f%%", res.AvgStarvingRatio*100)
		}
		fmt.Println()
	}
	fmt.Println("\n(values are the mean starving-time ratio: the fraction of view time the player stalls)")
	fmt.Println("expected shape (paper Fig 14): the full stack is ~an order of magnitude better than the")
	fmt.Println("conventional one, and ROST+CER at K=1 already beats the baseline at K=2")
	return nil
}
