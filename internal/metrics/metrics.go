// Package metrics is the repo's unified instrumentation layer: a
// stdlib-only, allocation-light registry of counters, gauges and histograms
// (fixed log-spaced buckets) shared by the deterministic simulation stack and
// — through the concurrent backend in internal/metrics/live — the live
// protocol runtime.
//
// This package itself is simulation-safe: it reads no wall clock, spawns no
// goroutines and uses no sync primitives, so it passes every omcast-lint rule
// for deterministic code. Snapshots are keyed by a caller-supplied timestamp
// (virtual time in simulations, uptime in the live runtime) and serialise in
// registration order, which makes same-seed snapshot streams byte-identical.
//
// Metric naming follows the Prometheus conventions documented in DESIGN.md
// §9: `omcast_<subsystem>_<metric>[_total|_seconds|_bytes]`, with subsystems
// sim (kernel), churn, rost, cer and node.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies a metric.
type Kind string

// The three metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name/value pair attached to a metric. Labels are sorted by
// key at registration time so identical label sets always serialise — and
// deduplicate — identically.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Counter is a monotonically increasing value. The zero pointer is a valid
// no-op sink, so uninstrumented code paths cost one nil check.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds delta; negative deltas panic (counters are monotone).
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("metrics: counter decremented by %v", delta))
	}
	c.v += delta
}

// Value returns the current total (0 on the nil sink).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a value that can go up and down. The zero pointer is a valid
// no-op sink.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g != nil {
		g.v += delta
	}
}

// SetMax keeps the high-water mark: the gauge only moves up.
func (g *Gauge) SetMax(v float64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the current value (0 on the nil sink).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets. Bounds are upper bucket
// limits in ascending order; one implicit overflow bucket (+Inf) follows the
// last bound. The zero pointer is a valid no-op sink.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow bucket
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)]++
	h.count++
	h.sum += v
}

// bucketOf binary-searches the first bound >= v.
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations (0 on the nil sink).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on the nil sink).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// LogBuckets returns n log-spaced upper bounds from lo to hi inclusive — the
// fixed-bucket scheme every histogram in the repo uses. lo and hi must be
// positive with lo < hi, and n >= 2.
func LogBuckets(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: LogBuckets(%v, %v, %d): want 0 < lo < hi and n >= 2", lo, hi, n))
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	out[n-1] = hi // exact despite float rounding
	return out
}

// LatencyBuckets is the default bound set for latency-style histograms:
// 1 ms to 1000 s, two buckets per decade.
func LatencyBuckets() []float64 { return LogBuckets(0.001, 1000, 13) }

// Desc describes one registered metric.
type Desc struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label // sorted by key
}

// id returns the registry key: name plus the sorted label pairs.
func (d Desc) id() string {
	s := d.Name
	for _, l := range d.Labels {
		s += "\x00" + l.Key + "\x01" + l.Value
	}
	return s
}

// NewDesc builds a validated descriptor with sorted labels. Simulation code
// registers through Registry directly; the live backend shares the
// descriptor model through this constructor.
func NewDesc(name, help string, kind Kind, labels []Label) Desc {
	d := Desc{Name: name, Help: help, Kind: kind, Labels: sortLabels(labels)}
	checkDesc(d)
	return d
}

// DescID returns the registry deduplication key: the metric name plus its
// sorted label pairs.
func DescID(d Desc) string { return d.id() }

// sortLabels returns a sorted copy, panicking on duplicate keys.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key {
			panic(fmt.Sprintf("metrics: duplicate label key %q", out[i].Key))
		}
	}
	return out
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// checkDesc panics on malformed names (a programming error caught in tests).
func checkDesc(d Desc) {
	if !validName(d.Name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", d.Name))
	}
	for _, l := range d.Labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %s", l.Key, d.Name))
		}
	}
}

// metric is one registered instrument. Gauges are either value-backed (g)
// or func-backed (fn, computed at snapshot time), never both.
type metric struct {
	desc Desc
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64
}

// Registry is the deterministic virtual-time backend: a flat set of
// instruments snapshotted in registration order. It is single-threaded by
// design, exactly like the simulation kernel it instruments; the live
// runtime uses internal/metrics/live instead.
type Registry struct {
	ordered []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty deterministic registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// lookup returns the existing instrument for desc, or registers a new one
// built by mk. Re-registering the same name+labels returns the existing
// instrument (so sequential sessions sharing a registry accumulate); a kind
// clash panics.
func (r *Registry) lookup(d Desc, mk func() *metric) *metric {
	checkDesc(d)
	if m, ok := r.index[d.id()]; ok {
		if m.desc.Kind != d.Kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", d.Name, d.Kind, m.desc.Kind))
		}
		return m
	}
	m := mk()
	r.ordered = append(r.ordered, m)
	r.index[d.id()] = m
	return m
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	d := Desc{Name: name, Help: help, Kind: KindCounter, Labels: sortLabels(labels)}
	return r.lookup(d, func() *metric { return &metric{desc: d, c: &Counter{}} }).c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	d := Desc{Name: name, Help: help, Kind: KindGauge, Labels: sortLabels(labels)}
	m := r.lookup(d, func() *metric { return &metric{desc: d, g: &Gauge{}} })
	if m.g == nil {
		panic(fmt.Sprintf("metrics: %s re-registered as a value gauge (was func-backed)", name))
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. Use it for state the instrumented code already tracks (queue depth,
// population size): sampling costs nothing on the hot path. Re-registering
// the same name+labels replaces fn, so sequential sessions sharing a
// registry read the live session's state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: GaugeFunc %s registered with nil fn", name))
	}
	d := Desc{Name: name, Help: help, Kind: KindGauge, Labels: sortLabels(labels)}
	m := r.lookup(d, func() *metric { return &metric{desc: d} })
	if m.g != nil {
		panic(fmt.Sprintf("metrics: %s re-registered as a func gauge (was value-backed)", name))
	}
	m.fn = fn
}

// Histogram registers (or returns) a histogram with the given bucket upper
// bounds (ascending; the +Inf overflow bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bucket bounds not ascending at %d", name, i))
		}
	}
	d := Desc{Name: name, Help: help, Kind: KindHistogram, Labels: sortLabels(labels)}
	return r.lookup(d, func() *metric {
		return &metric{desc: d, h: &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}}
	}).h
}

// Snapshot captures every instrument at timestamp t (seconds; virtual time
// in simulations). The metric order is the registration order, so same-seed
// runs produce byte-identical serialised snapshots.
func (r *Registry) Snapshot(t float64) Snapshot {
	snap := Snapshot{T: t, Metrics: make([]Metric, 0, len(r.ordered))}
	for _, m := range r.ordered {
		snap.Metrics = append(snap.Metrics, m.export())
	}
	return snap
}

func (m *metric) export() Metric {
	out := Metric{
		Name:   m.desc.Name,
		Kind:   m.desc.Kind,
		Help:   m.desc.Help,
		Labels: m.desc.Labels,
	}
	switch m.desc.Kind {
	case KindCounter:
		out.Value = m.c.v
	case KindGauge:
		if m.fn != nil {
			out.Value = m.fn()
		} else {
			out.Value = m.g.v
		}
	case KindHistogram:
		out.Hist = &HistValue{
			Bounds: m.h.bounds,
			Counts: append([]uint64(nil), m.h.counts...),
			Count:  m.h.count,
			Sum:    m.h.sum,
		}
	}
	return out
}

// Snapshot is a point-in-time capture of a whole registry — the unit of the
// JSONL time series (trace "sample" events) and the input to the Prometheus
// text encoder.
type Snapshot struct {
	// T is the capture timestamp in seconds (virtual time for the
	// deterministic backend, uptime for the live backend).
	T float64 `json:"t"`
	// Metrics lists every instrument in registration order.
	Metrics []Metric `json:"metrics"`
}

// Metric is one exported instrument value. Help is carried for the
// Prometheus encoder but excluded from JSON to keep sample lines compact.
type Metric struct {
	Name   string     `json:"name"`
	Kind   Kind       `json:"kind"`
	Help   string     `json:"-"`
	Labels []Label    `json:"labels,omitempty"`
	Value  float64    `json:"value"`
	Hist   *HistValue `json:"hist,omitempty"`
}

// HistValue is an exported histogram: per-bucket (non-cumulative) counts,
// with Counts[len(Bounds)] holding the +Inf overflow bucket.
type HistValue struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}
