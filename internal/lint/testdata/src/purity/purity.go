// Package eventsim (fixture directory "purity") exercises the TRANSITIVE arm
// of the handler-purity rule: impurity atoms hidden one or two calls below a
// handler must be reported with the call path that reaches them. The
// directory name keeps this fixture OUTSIDE the sim-kernel scope of the
// default config, so the scope-wide rules (no-wallclock, no-global-rand,
// no-goroutine-in-sim) stay silent and every diagnostic here comes from the
// call-graph walk alone.
package eventsim

import (
	"math/rand"
	"time"
)

// Simulator mirrors the kernel type the rule keys on (by package name).
type Simulator struct{}

// Handler mirrors the kernel callback type.
type Handler func(*Simulator)

// Schedule mirrors the kernel's registration surface.
func (s *Simulator) Schedule(at time.Duration, h Handler) {}

// onTick is a handler root: everything reachable from it must be pure.
func onTick(sim *Simulator) {
	relayDepthOne()
	sim.Schedule(time.Second, nil)
}

// relayDepthOne is one call below the handler; its own violation and the
// deeper one through stampDepthTwo are both attributed to the onTick root.
func relayDepthOne() {
	go fanout() // want `handler-purity: go statement is reachable from an eventsim\.Handler \(via onTick -> relayDepthOne\); handlers must complete synchronously`
	stampDepthTwo()
}

// stampDepthTwo is two calls below the handler — the case a syntactic
// body-only check cannot see.
func stampDepthTwo() {
	_ = time.Now() // want `handler-purity: time\.Now is reachable from an eventsim\.Handler \(via onTick -> relayDepthOne -> stampDepthTwo\); handlers run on the virtual timeline`
}

func fanout() {}

// onJitter reaches global entropy through a method call: the edge resolves
// through the concrete receiver.
func onJitter(sim *Simulator) {
	var p picker
	_ = p.pick()
}

type picker struct{}

func (p picker) pick() int {
	return rand.Intn(4) // want `handler-purity: rand\.Intn is reachable from an eventsim\.Handler \(via onJitter -> \(picker\)\.pick\); the process-global source breaks seed replay` `no-global-rand: rand\.Intn draws from the process-global source`
}

// onQuiet shows the negative: helpers that only touch pure computation are
// reachable and clean.
func onQuiet(sim *Simulator) {
	_ = sum(1, 2)
}

func sum(a, b int) int { return a + b }

// offPath holds a violation that is NOT reachable from any handler; the
// purity rule must leave it alone (and this fixture is outside the
// no-wallclock scope, so nothing else flags it either).
func offPath() time.Time {
	return time.Now()
}

// onSuppressed shows a justified suppression of a transitive finding at the
// atom site.
func onSuppressed(sim *Simulator) {
	relaySuppressed()
}

func relaySuppressed() {
	//lint:ignore handler-purity reason: fixture: measured value is discarded, timing cannot leak into the timeline
	_ = time.Now()
}
