// Package stats is a float-accum fixture: the directory name places it
// inside the metric-code scope of the default config.
package stats

func badEqual(a, b float64) bool {
	return a == b // want `float-accum: == between accumulated floating-point values`
}

func badNotEqual(a, b float64) bool {
	return a != b // want `float-accum: != between accumulated floating-point values`
}

func okSentinel(a float64) bool {
	// Comparing against an exact constant is the conventional guard idiom.
	return a == 0
}

func okIntegers(a, b int) bool {
	return a == b
}

func okOrdering(a, b float64) bool {
	return a < b
}

func okSuppressed(a, b float64) bool {
	//lint:ignore float-accum reason: fixture: exactness intended
	return a == b
}
