package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("omcast/internal/rost").
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Fset is shared across every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results the rules consult.
	Types *types.Package
	// Info holds identifier uses and expression types.
	Info *types.Info
}

// loader resolves imports either from the module under analysis (recursively
// loading and type-checking the source directory) or from the standard
// library via go/importer's source-file importer. It implements
// types.Importer.
type loader struct {
	fset   *token.FileSet
	root   string // module root directory
	module string // module path from go.mod ("" for bare fixture trees)
	std    types.Importer
	pkgs   map[string]*Package // keyed by import path
	active map[string]bool     // import-cycle guard
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
		active: make(map[string]bool),
	}
}

// Import implements types.Importer: module-internal paths load from source,
// everything else falls through to the standard-library importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.load(filepath.Join(l.root, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleRel maps an import path inside the module to a root-relative
// directory.
func (l *loader) moduleRel(path string) (string, bool) {
	if l.module == "" {
		return "", false
	}
	if path == l.module {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.FromSlash(rest), true
	}
	return "", false
}

// load parses and type-checks the package in dir under the given import
// path, memoizing the result.
func (l *loader) load(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		if !fileIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go sources in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// fileIncluded evaluates a file's build constraint against the analyzer's
// build context: the default build, where no custom tags (race, integration,
// ...) are set. Tag-gated twins like race_on.go are skipped and their
// //go:build !race counterparts linted — the same file set a plain `go build`
// compiles, so constrained pairs don't collide during type-checking.
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(func(string) bool { return false }) {
				return false
			}
		}
	}
	return true
}

// goSources lists the non-test Go files of dir in sorted order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Load type-checks every package of the module rooted at root (the directory
// holding go.mod) and returns them sorted by import path. Directories named
// testdata, vendor, or starting with "." or "_" are skipped, matching the go
// tool's conventions.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, module)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir type-checks a single standalone package directory (used by the
// testdata fixtures, which import only the standard library). The directory
// base name becomes the import path.
func LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(dir, "")
	return l.load(dir, filepath.Base(dir))
}

// packageDirs walks the tree collecting directories that contain Go sources.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
