package runtimecfg

import (
	"runtime/debug"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"4K", 4 << 10},
		{"4KB", 4 << 10},
		{"4KiB", 4 << 10},
		{"512MiB", 512 << 20},
		{"8GiB", 8 << 30},
		{"8g", 8 << 30},
		{"2TiB", 2 << 40},
		{" 16 MiB ", 16 << 20},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "GiB", "-1", "0", "1.5G", "9999999999G", "12X"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestApply(t *testing.T) {
	prevLimit := debug.SetMemoryLimit(-1)
	prevGC := debug.SetGCPercent(100)
	debug.SetGCPercent(prevGC)
	defer func() {
		debug.SetMemoryLimit(prevLimit)
		debug.SetGCPercent(prevGC)
	}()

	// Empty and "off" leave the limit untouched.
	for _, s := range []string{"", "off", "OFF", "  "} {
		applied, err := Apply(s, -1)
		if err != nil || applied != 0 {
			t.Fatalf("Apply(%q, -1) = %d, %v", s, applied, err)
		}
		if got := debug.SetMemoryLimit(-1); got != prevLimit {
			t.Fatalf("Apply(%q) changed the memory limit to %d", s, got)
		}
	}

	applied, err := Apply("8GiB", 50)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 8<<30 {
		t.Fatalf("applied limit %d, want %d", applied, int64(8<<30))
	}
	if got := debug.SetMemoryLimit(-1); got != 8<<30 {
		t.Fatalf("memory limit %d, want %d", got, int64(8<<30))
	}
	if got := debug.SetGCPercent(50); got != 50 {
		t.Fatalf("GC percent %d, want 50", got)
	}

	if _, err := Apply("nonsense", -1); err == nil {
		t.Fatal("bad memlimit accepted")
	}
}
