package eventsim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the kernel's heap throughput: one schedule
// plus one fire per iteration, over a standing queue of 10k events.
func BenchmarkScheduleFire(b *testing.B) {
	sim := New()
	for i := 0; i < 10000; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, func(*Simulator) {})
	}
	b.ResetTimer()
	at := 10 * time.Second
	for i := 0; i < b.N; i++ {
		sim.Schedule(at, func(*Simulator) {})
		at += time.Millisecond
	}
	if err := sim.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunDense measures draining one million same-window events.
func BenchmarkRunDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := New()
		for j := 0; j < 1_000_000; j++ {
			sim.Schedule(time.Duration(j%1000)*time.Millisecond, func(*Simulator) {})
		}
		if err := sim.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
