package lint

import (
	"go/types"
	"strings"
)

// ruleHandlerPurity enforces purity of eventsim.Handler callbacks
// transitively: handlers execute on the virtual timeline inside the
// single-threaded kernel, so a wall-clock read, goroutine spawn, or
// non-seeded entropy draw breaks determinism no matter how many calls deep
// it hides. The rule walks the module call graph from every handler root
// (declared functions and function literals whose signature is
// func(*eventsim.Simulator)) and reports each impurity atom reachable from
// one, with the call path that reaches it.
//
// Approximations (see DESIGN.md §13): non-handler function literals fold
// into their enclosing function; interface method calls fan out to every
// module method with a matching name and signature; calls through plain
// function values produce no edge (false negative, caught for sim packages
// by the syntactic scope rules).
func ruleHandlerPurity() *Rule {
	return &Rule{
		Name: "handler-purity",
		Doc:  "forbid wall-clock reads, goroutine spawns and global entropy anywhere reachable from an eventsim.Handler",
		check: func(m *Module, cfg *Config, rep *reporter) {
			g := m.graph()
			// BFS from all handler roots at once; pred reconstructs one
			// shortest call path per reached function for the diagnostic.
			pred := make(map[*fnNode]*fnNode)
			var queue []*fnNode
			seen := make(map[*fnNode]bool)
			for _, n := range g.nodes {
				if n.handler {
					seen[n] = true
					queue = append(queue, n)
				}
			}
			reported := make(map[atom]bool)
			for len(queue) > 0 {
				n := queue[0]
				queue = queue[1:]
				for _, a := range n.atoms {
					if reported[a] {
						continue
					}
					reported[a] = true
					reportAtom(rep, n, a, pred)
				}
				for _, callee := range n.calls {
					if !seen[callee] {
						seen[callee] = true
						pred[callee] = n
						queue = append(queue, callee)
					}
				}
			}
		},
	}
}

// reportAtom emits one impurity diagnostic at the atom's position. Atoms in
// the handler itself keep the established direct message; atoms reached
// through calls carry the call path from the root.
func reportAtom(rep *reporter, in *fnNode, a atom, pred map[*fnNode]*fnNode) {
	var advice string
	switch a.kind {
	case atomWallclock:
		advice = "handlers run on the virtual timeline and must take time from the Simulator argument"
	case atomGo:
		advice = "handlers must complete synchronously on the simulation thread — schedule a follow-up event instead"
	case atomGlobalRand:
		advice = "the process-global source breaks seed replay; thread a seeded stream from internal/xrand"
	case atomCryptoRand:
		advice = "hardware entropy is unreproducible; thread a seeded stream from internal/xrand"
	}
	if pred[in] == nil {
		// Depth 0: the atom sits in the handler body itself.
		switch a.kind {
		case atomGo:
			rep.reportf(a.pos, "go statement inside an eventsim.Handler; %s", advice)
		default:
			rep.reportf(a.pos, "%s inside an eventsim.Handler; %s", a.text, advice)
		}
		return
	}
	rep.reportf(a.pos, "%s is reachable from an eventsim.Handler (via %s); %s",
		a.text, callPath(in, pred), advice)
}

// callPath renders root → ... → fn for the diagnostic.
func callPath(fn *fnNode, pred map[*fnNode]*fnNode) string {
	var chain []string
	for n := fn; n != nil; n = pred[n] {
		chain = append(chain, n.name)
	}
	// Reverse into root-first order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// isHandlerSig reports whether t is the eventsim.Handler shape:
// func(*eventsim.Simulator) with no results. Matching is by package name so
// the rule holds for any kernel named eventsim (including test fixtures).
func isHandlerSig(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Variadic() || sig.Results().Len() != 0 || sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Simulator" && named.Obj().Pkg().Name() == "eventsim"
}
