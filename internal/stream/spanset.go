package stream

// span is a half-open range [from, to) of stream sequence numbers.
type span struct{ from, to int64 }

// spanSet tracks which sequence numbers of a member's stream have already
// been accounted by an outage episode, so overlapping episodes are never
// double-counted. The representation is a watermark (every n <= watermark is
// accounted) plus a small sorted list of disjoint spans strictly above
// watermark+1. Because episodes arrive with non-decreasing [first,last]
// windows in virtual time, the list is empty in steady state and the
// structure degenerates to the plain watermark — per-member loss state stays
// O(1), never per-packet.
type spanSet struct {
	watermark int64
	spans     []span
}

// appendUncovered appends to dst the sub-ranges of [from, to) that are not
// yet accounted, in ascending order, and returns the extended slice.
func (s *spanSet) appendUncovered(dst []span, from, to int64) []span {
	if from <= s.watermark {
		from = s.watermark + 1
	}
	if from >= to {
		return dst
	}
	for _, sp := range s.spans {
		if sp.to <= from {
			continue
		}
		if sp.from >= to {
			break
		}
		if from < sp.from {
			dst = append(dst, span{from, sp.from})
		}
		if sp.to > from {
			from = sp.to
		}
		if from >= to {
			return dst
		}
	}
	if from < to {
		dst = append(dst, span{from, to})
	}
	return dst
}

// add marks [from, to) accounted and renormalizes: ranges reaching down to
// the watermark extend it, and any spans the new watermark swallows are
// folded in. Zero-length ranges are no-ops.
func (s *spanSet) add(from, to int64) {
	if from >= to {
		return
	}
	if from <= s.watermark+1 {
		if to-1 > s.watermark {
			s.watermark = to - 1
		}
		s.absorb()
		return
	}
	// Insert [from,to) into the sorted disjoint list, merging overlaps and
	// adjacencies in place. spans[i:j] is the run of mergeable neighbours
	// (overlapping or adjacent); it collapses into one widened span. The list
	// is tiny (one blob per disjoint outage cluster), so the linear scan and
	// the occasional shift are cheap.
	i := 0
	for i < len(s.spans) && s.spans[i].to < from {
		i++
	}
	j := i
	for j < len(s.spans) && s.spans[j].from <= to {
		if s.spans[j].from < from {
			from = s.spans[j].from
		}
		if s.spans[j].to > to {
			to = s.spans[j].to
		}
		j++
	}
	if i == j {
		// No neighbour to merge with: open a slot at i.
		s.spans = append(s.spans, span{})
		copy(s.spans[i+1:], s.spans[i:])
		s.spans[i] = span{from, to}
	} else {
		s.spans[i] = span{from, to}
		s.spans = append(s.spans[:i+1], s.spans[j:]...)
	}
	s.absorb()
}

// seal declares that no future add or appendUncovered call will reference
// sequences below upTo, letting the structure forget them: the watermark
// jumps to at least upTo-1 and any spans it swallows fold in. The streaming
// model calls this after each episode (failure times are non-decreasing, so
// episode windows are too), which is what keeps per-member loss state at a
// bare watermark — O(1) — in the steady regime, with the span list only ever
// holding transient fragments inside one episode window.
func (s *spanSet) seal(upTo int64) {
	if upTo-1 > s.watermark {
		s.watermark = upTo - 1
	}
	s.absorb()
}

// absorb folds spans contiguous with the watermark into it.
func (s *spanSet) absorb() {
	i := 0
	for i < len(s.spans) && s.spans[i].from <= s.watermark+1 {
		if s.spans[i].to-1 > s.watermark {
			s.watermark = s.spans[i].to - 1
		}
		i++
	}
	if i > 0 {
		s.spans = append(s.spans[:0], s.spans[i:]...)
	}
}
