// Package faultnet is the deterministic half of the repo's fault-injection
// layer: the declarative rule/schedule model and the seeded per-link decision
// streams that decide what happens to every datagram. The paper's whole
// contribution (ROST + CER) is about surviving abrupt failures and loss, so
// the live protocol stack (internal/node) must be exercised against lossy,
// delayed, partitioned and crashing networks — reproducibly.
//
// Determinism is preserved the same way the simulator preserves it:
//
//   - every link (from, to) draws from an independent named sub-stream of
//     one master seed (internal/xrand), so the decision for the n-th
//     datagram on a link is a pure function of (seed, link, n);
//   - each decision consumes a fixed number of draws regardless of the
//     rule's values, so changing one probability never shifts any other
//     decision;
//   - timed faults (partitions, crashes, rule changes) expand into a
//     totally ordered change list — virtual offsets plus schedule sequence
//     numbers — before anything runs, so the fault plan is byte-comparable
//     across runs.
//
// This package is inside the omcast-lint simulation scope: it reads no wall
// clock, spawns no goroutines and holds no locks. The concurrent wall-clock
// backend that applies these decisions to real transports lives in
// internal/faultnet/live, mirroring the internal/metrics / metrics/live
// split.
package faultnet

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"omcast/internal/xrand"
)

// Duration is a time.Duration that unmarshals from either a JSON string
// ("150ms", "2s") or a bare number (seconds), and marshals as a string.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the standard duration form.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faultnet: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("faultnet: duration must be a string like \"150ms\" or a number of seconds: %s", b)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// Rule is the per-link fault model: what may happen to a datagram travelling
// one direction of one link.
type Rule struct {
	// Drop is the probability a datagram is discarded.
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the probability a datagram is delivered twice.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the probability a datagram is held back and released after
	// the following datagram on the link.
	Reorder float64 `json:"reorder,omitempty"`
	// Latency delays delivery; Jitter adds a uniform [0, Jitter) extra drawn
	// from the link's decision stream.
	Latency Duration `json:"latency,omitempty"`
	Jitter  Duration `json:"jitter,omitempty"`
	// RateBytes caps the link at this many bytes per second (token bucket
	// with a one-second burst); datagrams over budget are dropped. Zero
	// means unlimited.
	RateBytes float64 `json:"rate_bytes,omitempty"`
	// Block hard-partitions this direction of the link.
	Block bool `json:"block,omitempty"`

	// The adversarial family: byzantine links, not merely lossy ones.
	//
	// Corrupt is the probability a datagram has one bit flipped at a
	// deterministic position before delivery (models in-flight corruption
	// and garbage-emitting peers; receivers see malformed or subtly wrong
	// envelopes).
	Corrupt float64 `json:"corrupt,omitempty"`
	// Replay is the probability the link's previously delivered datagram is
	// re-delivered after the current one (models replaying attackers and
	// pathological duplication beyond Duplicate).
	Replay float64 `json:"replay,omitempty"`
	// Forge rewrites protocol fields in-flight: "btp" inflates the
	// bandwidth-time product on heartbeats and switch proposes (the ROST
	// cheater), "repair" inverts the repair range on repair requests and
	// ELNs (the CER saboteur). Non-matching message types pass unchanged.
	Forge string `json:"forge,omitempty"`
	// ForgeFactor scales the "btp" forgery (claim' = claim*f + f);
	// zero means the default of 50.
	ForgeFactor float64 `json:"forge_factor,omitempty"`

	// Class restricts the whole rule to one message class: "control" hits
	// join/accept/leave/membership/switch/repair-request exchanges (and their
	// acks), "data" hits the rest, "" hits everything. Datagrams outside the
	// class pass the link untouched — the fault shape that isolates the
	// control plane, as in the control-loss scenario. The live network still
	// draws the link's per-datagram decision for non-matching traffic, so
	// decision indexing stays class-independent.
	Class string `json:"class,omitempty"`
}

// IsZero reports whether the rule injects nothing.
func (r Rule) IsZero() bool { return r == Rule{} }

// Validate checks probabilities and durations.
func (r Rule) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", r.Drop}, {"duplicate", r.Duplicate}, {"reorder", r.Reorder},
		{"corrupt", r.Corrupt}, {"replay", r.Replay}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if r.Latency < 0 || r.Jitter < 0 {
		return fmt.Errorf("faultnet: negative latency/jitter")
	}
	if r.RateBytes < 0 {
		return fmt.Errorf("faultnet: negative rate_bytes")
	}
	switch r.Forge {
	case "", ForgeBTP, ForgeRepair:
	default:
		return fmt.Errorf("faultnet: unknown forge kind %q (want %q or %q)", r.Forge, ForgeBTP, ForgeRepair)
	}
	if r.ForgeFactor < 0 {
		return fmt.Errorf("faultnet: negative forge_factor")
	}
	switch r.Class {
	case "", ClassControl, ClassData:
	default:
		return fmt.Errorf("faultnet: unknown class %q (want %q or %q)", r.Class, ClassControl, ClassData)
	}
	return nil
}

// Forge kinds.
const (
	// ForgeBTP inflates bandwidth-time-product claims in flight.
	ForgeBTP = "btp"
	// ForgeRepair inverts repair ranges in flight.
	ForgeRepair = "repair"
)

// Message classes for Rule.Class.
const (
	// ClassControl matches control-plane exchanges and their acks.
	ClassControl = "control"
	// ClassData matches everything else: packets, heartbeats, ELN, repair data.
	ClassData = "data"
)

// String renders a compact human-readable rule summary.
func (r Rule) String() string {
	if r.IsZero() {
		return "clean"
	}
	var parts []string
	if r.Block {
		parts = append(parts, "block")
	}
	if r.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", r.Drop))
	}
	if r.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", r.Duplicate))
	}
	if r.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%.2f", r.Reorder))
	}
	if r.Latency > 0 || r.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s+/-%s", r.Latency, r.Jitter))
	}
	if r.RateBytes > 0 {
		parts = append(parts, fmt.Sprintf("rate=%gB/s", r.RateBytes))
	}
	if r.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%.2f", r.Corrupt))
	}
	if r.Replay > 0 {
		parts = append(parts, fmt.Sprintf("replay=%.2f", r.Replay))
	}
	if r.Forge != "" {
		f := fmt.Sprintf("forge=%s", r.Forge)
		if r.ForgeFactor > 0 {
			f += fmt.Sprintf("x%g", r.ForgeFactor)
		}
		parts = append(parts, f)
	}
	if r.Class != "" {
		parts = append(parts, fmt.Sprintf("class=%s", r.Class))
	}
	return strings.Join(parts, " ")
}

// Match reports whether a link-endpoint pattern matches an address: "*"
// matches everything, anything else matches exactly.
func Match(pattern, addr string) bool {
	return pattern == "*" || pattern == addr
}

// Decision is the deterministic fault draw for one datagram on one link.
type Decision struct {
	// N is the 0-based index of the datagram on its link.
	N int64
	// Drop discards the datagram.
	Drop bool
	// Duplicate delivers it twice.
	Duplicate bool
	// Hold keeps it back until the next datagram on the link has passed.
	Hold bool
	// JitterFrac is a uniform [0,1) draw scaling the rule's Jitter.
	JitterFrac float64
	// Corrupt flips one bit of the datagram; CorruptPos and CorruptBit are
	// uniform [0,1) draws selecting the byte and the bit within it.
	Corrupt    bool
	CorruptPos float64
	CorruptBit float64
	// Replay re-delivers the link's previous datagram after this one.
	Replay bool
}

// Decider is one link's seeded decision stream. The same (seed, from, to)
// triple always yields the same decision sequence; different links are
// uncorrelated.
type Decider struct {
	rng *xrand.Source
	n   int64
}

// NewDecider derives the decision stream for the from→to link.
func NewDecider(seed int64, from, to string) *Decider {
	return &Decider{rng: xrand.NewNamed(seed, "faultnet:"+from+">"+to)}
}

// Next draws the decision for the link's next datagram. It consumes exactly
// eight uniform draws regardless of the rule's values, so the decision at
// index n depends only on (seed, link, n) — never on which rules were active
// for earlier datagrams.
func (d *Decider) Next(r Rule) Decision {
	dec := Decision{N: d.n}
	d.n++
	drop, dup, hold, jit := d.rng.Float64(), d.rng.Float64(), d.rng.Float64(), d.rng.Float64()
	corrupt, cpos, cbit, replay := d.rng.Float64(), d.rng.Float64(), d.rng.Float64(), d.rng.Float64()
	dec.Drop = drop < r.Drop
	dec.Duplicate = dup < r.Duplicate
	dec.Hold = hold < r.Reorder
	dec.JitterFrac = jit
	dec.Corrupt = corrupt < r.Corrupt
	dec.CorruptPos = cpos
	dec.CorruptBit = cbit
	dec.Replay = replay < r.Replay
	return dec
}

// DecisionPreview renders the first n decisions of each "from>to" link under
// rule r as a byte-stable table — the replayable "what will this seed do"
// view used by determinism tests and omcast-chaos -plan.
func DecisionPreview(seed int64, links []string, n int, r Rule) string {
	var b strings.Builder
	for _, link := range links {
		from, to, _ := strings.Cut(link, ">")
		d := NewDecider(seed, from, to)
		for i := 0; i < n; i++ {
			dec := d.Next(r)
			fmt.Fprintf(&b, "%s #%d drop=%t dup=%t hold=%t jitter=%.4f corrupt=%t replay=%t\n",
				link, dec.N, dec.Drop, dec.Duplicate, dec.Hold, dec.JitterFrac, dec.Corrupt, dec.Replay)
		}
	}
	return b.String()
}

// LogEntry is one recorded fault. Per-datagram entries carry the link and
// datagram index with T = -1 — wall time is deliberately absent so that logs
// from two runs over the same traffic are byte-identical. Schedule entries
// carry the scheduled virtual offset instead.
type LogEntry struct {
	// T is the scheduled offset for schedule-driven entries, -1 for
	// per-datagram decisions.
	T time.Duration
	// Link is "from>to" for per-datagram entries.
	Link string
	// N is the datagram's index on its link.
	N int64
	// Action is what happened: drop, duplicate, hold, rate-drop, block,
	// corrupt, forge, replay, down, partition, heal, crash, restart, rule.
	Action string
	// Detail carries action-specific context.
	Detail string
}

// String renders the canonical log line.
func (e LogEntry) String() string {
	if e.T >= 0 {
		if e.Detail != "" {
			return fmt.Sprintf("t=%s %s %s", e.T, e.Action, e.Detail)
		}
		return fmt.Sprintf("t=%s %s", e.T, e.Action)
	}
	if e.Detail != "" {
		return fmt.Sprintf("%s #%d %s %s", e.Link, e.N, e.Action, e.Detail)
	}
	return fmt.Sprintf("%s #%d %s", e.Link, e.N, e.Action)
}

// LinkStats counts one directed link's outcomes. Given identical traffic and
// seed, two runs produce identical LinkStats.
type LinkStats struct {
	// Sent counts datagrams that reached the fault stage (not blocked).
	Sent int64
	// Dropped, Duplicated, Held and RateDropped count decision outcomes.
	Dropped     int64
	Duplicated  int64
	Held        int64
	RateDropped int64
	// Blocked counts datagrams discarded by a partition, Block rule or
	// crashed endpoint.
	Blocked int64
	// Corrupted, Forged and Replayed count adversarial outcomes: bit flips,
	// field forgeries actually applied, and re-delivered datagrams.
	Corrupted int64
	Forged    int64
	Replayed  int64
}
