package metrics

import "fmt"

// Merge folds every instrument of src into r, exactly as if the code that
// populated src had run against r directly: counters add, histograms add
// their bucket counts and sums, value gauges overwrite (a Set by the merged
// session), and func gauges rebind r's instrument to src's function —
// Registry's usual re-registration semantics. Instruments new to r are
// registered in src's registration order, so merging per-session registries
// in session order reproduces the registration order of those sessions
// sharing r from the start.
//
// The experiment engine relies on this: parallel work units each populate a
// private registry, and the engine merges them in canonical unit order, so
// snapshots are byte-identical for every worker count.
//
// Kind clashes and histogram bucket mismatches panic, like re-registration.
// src is not modified; merging a registry into itself panics.
func (r *Registry) Merge(src *Registry) {
	if r == src {
		panic("metrics: Merge of a registry into itself")
	}
	for _, m := range src.ordered {
		switch m.desc.Kind {
		case KindCounter:
			r.Counter(m.desc.Name, m.desc.Help, m.desc.Labels...).Add(m.c.v)
		case KindGauge:
			if m.fn != nil {
				r.GaugeFunc(m.desc.Name, m.desc.Help, m.fn, m.desc.Labels...)
			} else {
				r.Gauge(m.desc.Name, m.desc.Help, m.desc.Labels...).Set(m.g.v)
			}
		case KindHistogram:
			dst := r.Histogram(m.desc.Name, m.desc.Help, m.h.bounds, m.desc.Labels...)
			if !equalBounds(dst.bounds, m.h.bounds) {
				panic(fmt.Sprintf("metrics: Merge: histogram %s bucket bounds differ", m.desc.Name))
			}
			for i, c := range m.h.counts {
				dst.counts[i] += c
			}
			dst.count += m.h.count
			dst.sum += m.h.sum
		}
	}
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore float-accum reason: bucket bounds are configured constants, not accumulations; merging requires structural identity
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
