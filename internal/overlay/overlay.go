// Package overlay implements the single-tree overlay multicast substrate the
// paper's algorithms operate on: members with out-degree constraints derived
// from their outbound bandwidths, parent/child links, per-layer indexing (the
// centralized relaxed-BO/TO algorithms scan layers top-down), overlay path
// delays, and the disruption/reconnection accounting the evaluation reports.
//
// The package is purely structural: which parent a member picks, when nodes
// switch positions, and how losses are repaired live in the construct, rost
// and cer packages.
//
// # Memory layout
//
// Member state is stored struct-of-arrays: Tree keeps parallel slices
// (parent, first-child/next-sibling links, depth, degree, path delay,
// attached flags, lock owners) indexed by a dense int32 index allocated from
// a free list. The exported *Member is a small stable handle carrying only
// identity and statistics fields plus the dense index; all structural
// accessors delegate to the arrays. MemberID remains the stable external
// name, mapped through one dense idToIdx table (IDs are sequential and never
// reused, so the table is a flat slice, not a map). This keeps a member's
// hot structural state at ~100 contiguous bytes and removes per-member
// children slices, which is what lets a single run hold 10^6 members.
//
// The child lists are intrusive doubly linked lists (firstKid/lastKid,
// prevSib/nextSib). Their mutation rules replicate the previous
// children-slice semantics exactly — append at the tail, removal moves the
// former tail into the removed slot — because child order is
// determinism-bearing: it drives orphan ordering, level-list order and
// pre-order traversal, and therefore the RNG streams of every experiment.
package overlay

import (
	"errors"
	"fmt"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// MemberID identifies an overlay member for the lifetime of a simulation.
// IDs are never reused. The zero value is not a valid ID.
type MemberID int64

// none is the sentinel dense index ("no member").
const none int32 = -1

// Common structural errors.
var (
	ErrFull        = errors.New("overlay: parent has no spare out-degree")
	ErrNotMember   = errors.New("overlay: not a current member")
	ErrCycle       = errors.New("overlay: attach would create a cycle")
	ErrHasParent   = errors.New("overlay: member already has a parent")
	ErrRootLeave   = errors.New("overlay: the source cannot leave")
	ErrSelfAttach  = errors.New("overlay: cannot attach a member to itself")
	ErrNotAttached = errors.New("overlay: member is not attached to the tree")
)

// Member is one overlay node: a stable handle into the tree's
// struct-of-arrays state. The exported identity and statistics fields live on
// the handle; structural state (parent, children, depth, ...) lives in the
// Tree's parallel slices and is reached through the accessor methods. After
// the member is removed from the tree the structural accessors return
// zero values (nil parent, no children, depth -1, not attached).
type Member struct {
	ID MemberID
	// Attach is the stub router the member sits on.
	Attach topology.NodeID
	// Bandwidth is the outbound access bandwidth in units of the stream
	// rate. The member can feed floor(Bandwidth) children.
	Bandwidth float64
	// JoinTime is the virtual time the member entered the overlay.
	JoinTime time.Duration

	// Disruptions counts streaming disruptions experienced (one per failed
	// ancestor, per the paper's reliability metric).
	Disruptions int
	// Reconnections counts optimizer-induced parent changes (switch
	// operations and evictions); failure rejoins are not counted, matching
	// the paper's protocol-overhead metric.
	Reconnections int

	// tree/idx locate the member's structural state. idx is -1 once the
	// member has been removed from the tree.
	tree *Tree
	idx  int32
}

// Parent returns the current parent, or nil for the root (and for detached
// members).
func (m *Member) Parent() *Member {
	if m.tree == nil || m.idx < 0 {
		return nil
	}
	p := m.tree.parent[m.idx]
	if p < 0 {
		return nil
	}
	return m.tree.handle[p]
}

// Children returns the member's children as a freshly allocated slice the
// caller may keep. Hot paths should prefer NumChildren/VisitChildren, which
// do not allocate.
func (m *Member) Children() []*Member {
	t := m.tree
	if t == nil || m.idx < 0 || t.kidCount[m.idx] == 0 {
		return nil
	}
	out := make([]*Member, 0, t.kidCount[m.idx])
	for c := t.firstKid[m.idx]; c != none; c = t.nextSib[c] {
		out = append(out, t.handle[c])
	}
	return out
}

// NumChildren returns the member's current child count without allocating.
func (m *Member) NumChildren() int {
	if m.tree == nil || m.idx < 0 {
		return 0
	}
	return int(m.tree.kidCount[m.idx])
}

// VisitChildren calls fn for each child in child-list order without
// allocating. fn must not mutate the tree.
func (m *Member) VisitChildren(fn func(*Member)) {
	t := m.tree
	if t == nil || m.idx < 0 {
		return
	}
	for c := t.firstKid[m.idx]; c != none; c = t.nextSib[c] {
		fn(t.handle[c])
	}
}

// Depth returns the member's layer (root = 0), or -1 when detached.
func (m *Member) Depth() int {
	if m.tree == nil || m.idx < 0 {
		return -1
	}
	return int(m.tree.depth[m.idx])
}

// PathDelay returns the accumulated delay of the overlay path from the source.
func (m *Member) PathDelay() time.Duration {
	if m.tree == nil || m.idx < 0 {
		return 0
	}
	return m.tree.pathDelay[m.idx]
}

// Attached reports whether the member currently has a position in the tree
// (the root is always attached).
func (m *Member) Attached() bool {
	if m.tree == nil || m.idx < 0 {
		return false
	}
	return m.tree.attached[m.idx]
}

// OutDegree returns the member's out-degree constraint: the number of
// full-rate children its outbound bandwidth supports.
func (m *Member) OutDegree() int {
	if m.Bandwidth < 0 {
		return 0
	}
	return int(m.Bandwidth)
}

// SpareDegree returns how many more children the member can accept.
func (m *Member) SpareDegree() int { return m.OutDegree() - m.NumChildren() }

// HasSpare reports whether the member can accept one more child.
func (m *Member) HasSpare() bool { return m.SpareDegree() > 0 }

// Age returns the member's age at virtual time now.
func (m *Member) Age(now time.Duration) time.Duration {
	if now < m.JoinTime {
		return 0
	}
	return now - m.JoinTime
}

// BTP returns the member's bandwidth-time product at virtual time now:
// outbound bandwidth x age in seconds (the ROST switching metric).
func (m *Member) BTP(now time.Duration) float64 {
	return m.Bandwidth * m.Age(now).Seconds()
}

// Locked reports whether the member is held by a switching operation.
func (m *Member) Locked() bool {
	if m.tree == nil || m.idx < 0 {
		return false
	}
	return m.tree.lockOwner[m.idx] != 0
}

// Tree is the overlay multicast tree. It is single-threaded by design (the
// simulation kernel is sequential); no internal locking.
type Tree struct {
	root *Member
	// delayFn gives the unicast delay between two underlay routers.
	delayFn func(a, b topology.NodeID) time.Duration
	nextID  MemberID

	// Struct-of-arrays member state, all indexed by the dense index. A slot
	// is live iff handle[i] != nil.
	handle    []*Member
	parent    []int32
	firstKid  []int32
	lastKid   []int32
	prevSib   []int32
	nextSib   []int32
	kidCount  []int32
	outDeg    []int32 // floor(Bandwidth), cached for the degree invariant
	depth     []int32 // -1 when detached
	pathDelay []time.Duration
	attached  []bool
	// lockOwner is the ID of the in-flight switching operation holding the
	// member, or zero when unlocked (ROST locking protocol).
	lockOwner []int64
	orderIdx  []int32
	levelIdx  []int32

	// free lists recycled dense indexes; idToIdx maps MemberID (sequential,
	// never reused) to the member's dense index, or -1 once removed.
	free    []int32
	idToIdx []int32

	// order lists attached and detached live members for O(1) sampling
	// (the root excluded); levels[d] lists attached members at depth d.
	order  []*Member
	levels [][]*Member

	// liveCount counts live members including the root. attachedCount and
	// levelCount both track the number of attached members but are
	// maintained at different mutation sites (attached-flag flips vs level
	// insert/remove), so the incremental invariant check can compare them.
	liveCount     int
	attachedCount int
	levelCount    int

	// sampleSeen/sampleEpoch replace Sample's per-call dedup map: an index
	// is "drawn this call" iff sampleSeen[i] == sampleEpoch. Bumping the
	// epoch clears every stamp at once, so the buffer is reused across
	// calls without touching its contents. sampleOut is the reusable result
	// buffer (Sample returns a full-capacity slice of it).
	sampleSeen  []uint32
	sampleEpoch uint32
	sampleOut   []*Member

	// Incremental invariant tracking: every structural mutation stamps the
	// touched dense indexes into dirtyList (deduplicated by dirtyStamp /
	// dirtyEpoch), so CheckInvariants is O(changed since last check).
	dirtyStamp []uint32
	dirtyEpoch uint32
	dirtyList  []int32
	// invSeen/invEpoch is the full checker's reachability scratch (the
	// former per-call seen map).
	invSeen  []uint32
	invEpoch uint32
	// paranoid forces every CheckInvariants call through the full O(n) scan.
	paranoid bool
}

// NewTree creates a tree rooted at a source member placed on rootAttach with
// the given outbound bandwidth (the paper uses 100, i.e. 100 full-rate
// children). delayFn supplies underlay delays; it must be non-nil.
func NewTree(rootAttach topology.NodeID, rootBandwidth float64, delayFn func(a, b topology.NodeID) time.Duration) (*Tree, error) {
	if delayFn == nil {
		return nil, errors.New("overlay: nil delay function")
	}
	if rootBandwidth < 1 {
		return nil, fmt.Errorf("overlay: root bandwidth %g cannot feed any child", rootBandwidth)
	}
	t := &Tree{
		delayFn:    delayFn,
		nextID:     1,
		idToIdx:    []int32{none}, // MemberID zero is invalid
		dirtyEpoch: 1,
		invEpoch:   0,
	}
	root := t.newMemberAt(rootAttach, rootBandwidth, 0)
	i := root.idx
	t.attached[i] = true
	t.attachedCount++
	t.orderIdx[i] = none // the root is not sampleable as a rejoin candidate owner
	t.levelIdx[i] = 0
	t.depth[i] = 0
	t.root = root
	t.levels = append(t.levels, []*Member{root})
	t.levelCount++
	return t, nil
}

// newMemberAt allocates a dense slot (recycling from the free list when
// possible), resets all of its per-slot state and registers the ID mapping.
func (t *Tree) newMemberAt(attach topology.NodeID, bandwidth float64, now time.Duration) *Member {
	m := &Member{
		ID:        t.nextID,
		Attach:    attach,
		Bandwidth: bandwidth,
		JoinTime:  now,
		tree:      t,
	}
	t.nextID++
	var i int32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
		t.handle[i] = m
		t.parent[i] = none
		t.firstKid[i] = none
		t.lastKid[i] = none
		t.prevSib[i] = none
		t.nextSib[i] = none
		t.kidCount[i] = 0
		t.outDeg[i] = int32(m.OutDegree())
		t.depth[i] = -1
		t.pathDelay[i] = 0
		t.attached[i] = false
		t.lockOwner[i] = 0
		t.orderIdx[i] = none
		t.levelIdx[i] = none
	} else {
		i = int32(len(t.handle))
		t.handle = append(t.handle, m)
		t.parent = append(t.parent, none)
		t.firstKid = append(t.firstKid, none)
		t.lastKid = append(t.lastKid, none)
		t.prevSib = append(t.prevSib, none)
		t.nextSib = append(t.nextSib, none)
		t.kidCount = append(t.kidCount, 0)
		t.outDeg = append(t.outDeg, int32(m.OutDegree()))
		t.depth = append(t.depth, -1)
		t.pathDelay = append(t.pathDelay, 0)
		t.attached = append(t.attached, false)
		t.lockOwner = append(t.lockOwner, 0)
		t.orderIdx = append(t.orderIdx, none)
		t.levelIdx = append(t.levelIdx, none)
		t.dirtyStamp = append(t.dirtyStamp, 0)
	}
	m.idx = i
	t.idToIdx = append(t.idToIdx, i)
	t.liveCount++
	t.markDirty(i)
	return m
}

// Root returns the source member.
func (t *Tree) Root() *Member { return t.root }

// Size returns the number of live members including the source.
func (t *Tree) Size() int { return t.liveCount }

// Member returns the live member with the given ID, or nil.
func (t *Tree) Member(id MemberID) *Member {
	if id <= 0 || int64(id) >= int64(len(t.idToIdx)) {
		return nil
	}
	i := t.idToIdx[id]
	if i < 0 {
		return nil
	}
	return t.handle[i]
}

// byHandle reports whether m is a live member of this tree.
func (t *Tree) byHandle(m *Member) bool {
	return m != nil && m.tree == t && m.idx >= 0 && t.handle[m.idx] == m
}

// NewMember registers a live member without attaching it to the tree. The
// caller attaches it with Attach once a parent is chosen.
func (t *Tree) NewMember(attach topology.NodeID, bandwidth float64, now time.Duration) *Member {
	m := t.newMemberAt(attach, bandwidth, now)
	t.orderIdx[m.idx] = int32(len(t.order))
	t.order = append(t.order, m)
	return m
}

// Attach links child under parent. The child must be live, detached and
// parentless; the parent must be live, attached and have spare degree.
func (t *Tree) Attach(child, parent *Member) error {
	switch {
	case child == nil || parent == nil:
		return ErrNotMember
	case !t.byHandle(child) || !t.byHandle(parent):
		return ErrNotMember
	case child == parent:
		return ErrSelfAttach
	case t.parent[child.idx] != none || t.attached[child.idx]:
		return ErrHasParent
	case !t.attached[parent.idx]:
		return ErrNotAttached
	case t.kidCount[parent.idx] >= t.outDeg[parent.idx]:
		return ErrFull
	}
	t.childAppend(parent.idx, child.idx)
	t.placeSubtree(child.idx)
	return nil
}

// placeSubtree recomputes depth, path delay and level indexing for the member
// at dense index m and all its descendants, in pre-order (children of a
// rejoining member keep their subtrees, so a re-attach moves whole subtrees).
func (t *Tree) placeSubtree(m int32) {
	n := m
	for {
		p := t.parent[n]
		t.depth[n] = t.depth[p] + 1
		t.pathDelay[n] = t.pathDelay[p] + t.delayFn(t.handle[p].Attach, t.handle[n].Attach)
		if !t.attached[n] {
			t.attached[n] = true
			t.attachedCount++
		}
		t.levelInsert(n)
		t.markDirty(n)
		if fc := t.firstKid[n]; fc != none {
			n = fc
			continue
		}
		for n != m && t.nextSib[n] == none {
			n = t.parent[n]
		}
		if n == m {
			return
		}
		n = t.nextSib[n]
	}
}

// Detach unlinks m from its parent, leaving m's own subtree intact but
// marking every node in it unattached (no live path from the source).
func (t *Tree) Detach(m *Member) error {
	if m == nil || !t.byHandle(m) {
		return ErrNotMember
	}
	if m == t.root {
		return ErrRootLeave
	}
	if t.parent[m.idx] == none {
		return ErrNotAttached
	}
	t.childRemove(t.parent[m.idx], m.idx)
	t.parent[m.idx] = none
	// Unplace the whole subtree: depth resets to -1, path delay keeps its
	// last attached value (historical behavior; callers gate on Attached).
	n := m.idx
	for {
		if t.attached[n] {
			t.levelRemove(n)
			t.attached[n] = false
			t.attachedCount--
			t.depth[n] = -1
		}
		t.markDirty(n)
		if fc := t.firstKid[n]; fc != none {
			n = fc
			continue
		}
		for n != m.idx && t.nextSib[n] == none {
			n = t.parent[n]
		}
		if n == m.idx {
			return nil
		}
		n = t.nextSib[n]
	}
}

// Remove deletes a member from the overlay entirely (departure or failure)
// and returns its now-orphaned children, each of which keeps its own subtree
// and must rejoin. The children are returned detached.
func (t *Tree) Remove(m *Member) ([]*Member, error) {
	if m == nil || !t.byHandle(m) {
		return nil, ErrNotMember
	}
	if m == t.root {
		return nil, ErrRootLeave
	}
	orphans := m.Children()
	for _, c := range orphans {
		if err := t.Detach(c); err != nil {
			return nil, fmt.Errorf("overlay: detaching orphan %d: %w", c.ID, err)
		}
	}
	if t.parent[m.idx] != none {
		if err := t.Detach(m); err != nil {
			return nil, fmt.Errorf("overlay: detaching leaver %d: %w", m.ID, err)
		}
	}
	t.orderRemove(m.idx)
	i := m.idx
	t.idToIdx[m.ID] = none
	t.handle[i] = nil
	t.lockOwner[i] = 0
	t.free = append(t.free, i)
	t.liveCount--
	m.idx = -1
	return orphans, nil
}

// MoveSubtree re-parents m (and its whole subtree) under newParent. Used by
// switching and eviction operations. m must currently be attached.
func (t *Tree) MoveSubtree(m, newParent *Member) error {
	if m == nil || newParent == nil || !t.byHandle(m) || !t.byHandle(newParent) {
		return ErrNotMember
	}
	if m == t.root {
		return ErrRootLeave
	}
	if m == newParent {
		return ErrSelfAttach
	}
	if !t.attached[newParent.idx] {
		return ErrNotAttached
	}
	// Reject moves under m's own subtree, which would detach the subtree
	// from the source.
	for p := newParent.idx; p != none; p = t.parent[p] {
		if p == m.idx {
			return ErrCycle
		}
	}
	if t.kidCount[newParent.idx] >= t.outDeg[newParent.idx] {
		return ErrFull
	}
	if t.parent[m.idx] != none {
		t.childRemove(t.parent[m.idx], m.idx)
		t.parent[m.idx] = none
		// Temporarily unplace so Attach's invariants hold. Unlike Detach,
		// depth is left in place; placeSubtree recomputes it immediately.
		n := m.idx
		for {
			if t.attached[n] {
				t.levelRemove(n)
				t.attached[n] = false
				t.attachedCount--
			}
			t.markDirty(n)
			if fc := t.firstKid[n]; fc != none {
				n = fc
				continue
			}
			for n != m.idx && t.nextSib[n] == none {
				n = t.parent[n]
			}
			if n == m.idx {
				break
			}
			n = t.nextSib[n]
		}
	}
	return t.Attach(m, newParent)
}

// VisitMembers calls fn for every live member, attached or not, in
// unspecified order (the source included).
func (t *Tree) VisitMembers(fn func(*Member)) {
	fn(t.root)
	for _, m := range t.order {
		fn(m)
	}
}

// VisitSubtree calls fn for every member in m's subtree including m itself,
// in pre-order. fn must not mutate the tree structure.
func (t *Tree) VisitSubtree(m *Member, fn func(*Member)) {
	if m == nil || m.idx < 0 || m.tree != t {
		return
	}
	n := m.idx
	for {
		fn(t.handle[n])
		if fc := t.firstKid[n]; fc != none {
			n = fc
			continue
		}
		for n != m.idx && t.nextSib[n] == none {
			n = t.parent[n]
		}
		if n == m.idx {
			return
		}
		n = t.nextSib[n]
	}
}

// SubtreeSize returns the number of members in m's subtree including m.
func (t *Tree) SubtreeSize(m *Member) int {
	if m == nil || m.idx < 0 || m.tree != t {
		return 0
	}
	count := 0
	n := m.idx
	for {
		count++
		if fc := t.firstKid[n]; fc != none {
			n = fc
			continue
		}
		for n != m.idx && t.nextSib[n] == none {
			n = t.parent[n]
		}
		if n == m.idx {
			return count
		}
		n = t.nextSib[n]
	}
}

// Ancestors returns the path from m's parent up to the root, nearest first.
func (t *Tree) Ancestors(m *Member) []*Member {
	if m == nil || m.idx < 0 {
		return nil
	}
	var out []*Member
	for p := t.parent[m.idx]; p != none; p = t.parent[p] {
		out = append(out, t.handle[p])
	}
	return out
}

// MaxDepth returns the current tree height (deepest attached layer).
func (t *Tree) MaxDepth() int {
	for d := len(t.levels) - 1; d >= 0; d-- {
		if len(t.levels[d]) > 0 {
			return d
		}
	}
	return 0
}

// Level returns the attached members at depth d. The returned slice is owned
// by the tree; callers must not mutate it.
func (t *Tree) Level(d int) []*Member {
	if d < 0 || d >= len(t.levels) {
		return nil
	}
	return t.levels[d]
}

// Sample returns up to n distinct live members drawn uniformly at random,
// excluding the root and the given member. This models a joining node's
// bounded membership discovery ("until it obtains a certain number, say 100,
// of known members").
//
// The returned slice is backed by a tree-owned scratch buffer and is valid
// only until the next Sample call; its capacity equals its length, so
// appending to it copies. Callers that retain the members across another
// Sample must copy the slice first.
func (t *Tree) Sample(rng *xrand.Source, n int, exclude *Member) []*Member {
	if n <= 0 || len(t.order) == 0 {
		return nil
	}
	if n >= len(t.order) {
		out := t.sampleBuf(len(t.order))
		for _, m := range t.order {
			if m != exclude {
				out = append(out, m)
			}
		}
		t.sampleOut = out
		return out[:len(out):len(out)]
	}
	// Partial Fisher-Yates over a scratch index space would disturb t.order;
	// instead draw with rejection, which is cheap because n << len(order) in
	// the overlay regime (100 out of thousands). Duplicates are detected
	// with the tree's epoch-stamped scratch buffer: same accept/reject
	// sequence as a dedup map (so the RNG stream is untouched) without the
	// per-call map allocations.
	if len(t.sampleSeen) < len(t.order) {
		t.sampleSeen = make([]uint32, len(t.order))
		t.sampleEpoch = 0
	}
	t.sampleEpoch++
	if t.sampleEpoch == 0 { // epoch wrapped: stale stamps could collide
		clear(t.sampleSeen)
		t.sampleEpoch = 1
	}
	out := t.sampleBuf(n)
	attempts := 0
	maxAttempts := 20 * n
	for len(out) < n && attempts < maxAttempts {
		attempts++
		i := rng.Intn(len(t.order))
		if t.sampleSeen[i] == t.sampleEpoch {
			continue
		}
		t.sampleSeen[i] = t.sampleEpoch
		if t.order[i] == exclude {
			continue
		}
		out = append(out, t.order[i])
	}
	t.sampleOut = out
	return out[:len(out):len(out)]
}

// sampleBuf returns the empty reusable sample output buffer with capacity for
// at least n members.
func (t *Tree) sampleBuf(n int) []*Member {
	if cap(t.sampleOut) < n {
		t.sampleOut = make([]*Member, 0, n)
	}
	return t.sampleOut[:0]
}

// RecordFailure increments the disruption counter of every attached member
// in the subtrees below the failed member (the member itself is excluded: it
// departed). It returns how many members were disrupted. Per the paper's
// metric, an abrupt departure disrupts each descendant once.
func (t *Tree) RecordFailure(failed *Member) int {
	if failed == nil || failed.idx < 0 {
		return 0
	}
	count := 0
	for c := t.firstKid[failed.idx]; c != none; c = t.nextSib[c] {
		n := c
		for {
			t.handle[n].Disruptions++
			count++
			if fc := t.firstKid[n]; fc != none {
				n = fc
				continue
			}
			for n != c && t.nextSib[n] == none {
				n = t.parent[n]
			}
			if n == c {
				break
			}
			n = t.nextSib[n]
		}
	}
	return count
}

// Lock attempts to acquire the ROST switching lock on all given members on
// behalf of operation op (non-zero). It either locks all of them and returns
// true, or locks none and returns false (a member already held by a
// different operation blocks the whole set).
func (t *Tree) Lock(op int64, members ...*Member) bool {
	if op == 0 {
		return false
	}
	for _, m := range members {
		if m.idx >= 0 && t.lockOwner[m.idx] != 0 && t.lockOwner[m.idx] != op {
			return false
		}
	}
	for _, m := range members {
		if m.idx >= 0 {
			t.lockOwner[m.idx] = op
		}
	}
	return true
}

// Unlock releases the lock on all members held by operation op.
func (t *Tree) Unlock(op int64, members ...*Member) {
	for _, m := range members {
		if m.idx >= 0 && t.lockOwner[m.idx] == op {
			t.lockOwner[m.idx] = 0
		}
	}
}

// childAppend links c as the new tail of p's child list.
func (t *Tree) childAppend(p, c int32) {
	t.parent[c] = p
	t.prevSib[c] = t.lastKid[p]
	t.nextSib[c] = none
	if t.lastKid[p] == none {
		t.firstKid[p] = c
	} else {
		t.nextSib[t.lastKid[p]] = c
	}
	t.lastKid[p] = c
	t.kidCount[p]++
	t.markDirty(p)
	t.markDirty(c)
}

// childRemove unlinks c from p's child list, replicating the historical
// children-slice semantics: the former tail child moves into c's position
// (swap-remove), so sibling order changes exactly as it did with the slice.
// This matters for determinism — child order feeds orphan ordering, level
// order and pre-order traversal.
func (t *Tree) childRemove(p, c int32) {
	tail := t.lastKid[p]
	if tail == c {
		// c is the tail: plain pop.
		pr := t.prevSib[c]
		if pr == none {
			t.firstKid[p] = none
		} else {
			t.nextSib[pr] = none
		}
		t.lastKid[p] = pr
	} else {
		// Snapshot c's neighbors, then unlink the tail and splice it into
		// c's slot.
		pr, nx := t.prevSib[c], t.nextSib[c]
		pl := t.prevSib[tail]
		t.nextSib[pl] = none
		t.lastKid[p] = pl
		if nx == tail {
			// c was immediately before the tail: the tail simply takes
			// c's place as the new last child.
			if pr == none {
				t.firstKid[p] = tail
			} else {
				t.nextSib[pr] = tail
			}
			t.prevSib[tail] = pr
			t.nextSib[tail] = none
			t.lastKid[p] = tail
		} else {
			if pr == none {
				t.firstKid[p] = tail
			} else {
				t.nextSib[pr] = tail
			}
			t.prevSib[tail] = pr
			t.nextSib[tail] = nx
			t.prevSib[nx] = tail
		}
	}
	t.prevSib[c] = none
	t.nextSib[c] = none
	t.kidCount[p]--
	t.markDirty(p)
	t.markDirty(c)
}

func (t *Tree) levelInsert(n int32) {
	d := int(t.depth[n])
	for len(t.levels) <= d {
		t.levels = append(t.levels, nil)
	}
	t.levelIdx[n] = int32(len(t.levels[d]))
	t.levels[d] = append(t.levels[d], t.handle[n])
	t.levelCount++
}

func (t *Tree) levelRemove(n int32) {
	d := int(t.depth[n])
	level := t.levels[d]
	last := len(level) - 1
	moved := level[last]
	level[t.levelIdx[n]] = moved
	t.levelIdx[moved.idx] = t.levelIdx[n]
	level[last] = nil
	t.levels[d] = level[:last]
	t.levelIdx[n] = none
	t.levelCount--
}

func (t *Tree) orderRemove(n int32) {
	if t.orderIdx[n] < 0 {
		return
	}
	last := len(t.order) - 1
	moved := t.order[last]
	t.order[t.orderIdx[n]] = moved
	t.orderIdx[moved.idx] = t.orderIdx[n]
	t.order[last] = nil
	t.order = t.order[:last]
	t.orderIdx[n] = none
}
