package bench

import (
	"os"
	"testing"
)

// ScaleBytesPerMemberCeiling is the committed memory budget for the
// struct-of-arrays core: retained heap per steady-state member at M=10^5,
// full underlay, ROST. The 2026-08 measurement on the reference container
// was ~440 B/member (tree arrays, churn bookkeeping, kernel queue and the
// ID-map growth from the 30-minute window's churn included); the ceiling
// leaves ~2.3x headroom for legitimate growth while still catching a
// per-member map or pointer-graph regression, which costs multiples.
const ScaleBytesPerMemberCeiling = 1024.0

// TestScaleQuickPoint exercises the scale runner end to end at a tiny size:
// every observable must be populated and the deterministic event count must
// repeat across runs.
func TestScaleQuickPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("scale point skipped in -short mode")
	}
	run := func() ScalePoint {
		pts, err := RunScale([]int{300}, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 1 {
			t.Fatalf("got %d points, want 1", len(pts))
		}
		return pts[0]
	}
	p := run()
	if p.Events == 0 || p.AvgSize <= 0 {
		t.Fatalf("empty scale point: %+v", p)
	}
	if p.HeapBytes == 0 || p.BytesPerMember <= 0 {
		t.Fatalf("no memory observables: %+v", p)
	}
	if p.WallNs <= 0 || p.NsPerEvent <= 0 {
		t.Fatalf("no time observables: %+v", p)
	}
	if q := run(); q.Events != p.Events || q.AvgSize != p.AvgSize || q.AvgDisruptions != p.AvgDisruptions {
		t.Fatalf("deterministic fields differ across runs: %+v vs %+v", p, q)
	}
}

// TestScaleSmokeMemoryBudget is the CI scale-smoke gate: one M=10^5 run on
// the full underlay asserting the committed bytes/member ceiling. Gated on
// OMCAST_SCALE_SMOKE=1 because the run takes minutes (more under -race);
// the scale-smoke CI job sets the variable.
func TestScaleSmokeMemoryBudget(t *testing.T) {
	if os.Getenv("OMCAST_SCALE_SMOKE") != "1" {
		t.Skip("set OMCAST_SCALE_SMOKE=1 to run the M=100000 smoke")
	}
	pts, err := RunScale([]int{100_000}, false, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.AvgSize < 90_000 {
		t.Fatalf("steady-state size %.0f never reached the 100k target", p.AvgSize)
	}
	if p.BytesPerMember > ScaleBytesPerMemberCeiling {
		t.Fatalf("bytes/member = %.0f exceeds the committed ceiling %.0f (heap %d over %.0f members)",
			p.BytesPerMember, ScaleBytesPerMemberCeiling, p.HeapBytes, p.AvgSize)
	}
	t.Logf("scale smoke: %.0f B/member (ceiling %.0f), %.1f ns/event over %d events",
		p.BytesPerMember, ScaleBytesPerMemberCeiling, p.NsPerEvent, p.Events)
}
