// Package lint is a from-scratch static analyzer enforcing the repo's
// determinism and simulation-safety invariants. The paper's evaluation rests
// on exactly reproducible event-driven runs: identical seeds must yield
// identical ROST switching decisions and CER recovery outcomes. Unordered map
// iteration, wall-clock reads, stray global-RNG calls and hidden concurrency
// all silently destroy that property, so this package checks for them at the
// source level using only the standard library's go/ast, go/parser, go/token
// and go/types.
//
// The analyzer loads every package in the module (see Load), runs a
// configurable rule set over the type-checked syntax trees, honors
// //lint:ignore <rule> <reason> suppression directives, and reports findings
// as file:line: rule: message diagnostics. cmd/omcast-lint is the CLI front
// end; CI runs it over ./... and fails on any finding.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding (filename, line, column).
	Pos token.Position
	// Rule names the rule that fired (or "bad-directive" for malformed
	// suppression comments).
	Rule string
	// Message explains the finding and how to fix or suppress it.
	Message string
}

// String renders the canonical file:line: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Config scopes the rules to package sets and toggles rules off. Package
// patterns match an import path exactly, by final-elements suffix ("rost"
// matches "omcast/internal/rost"), or by prefix when they end in "/..."
// ("omcast/cmd/..." matches every command).
type Config struct {
	// SimPackages form the deterministic simulation kernel: all time must be
	// virtual, map iteration order must not leak into results, and no
	// concurrency primitives are allowed (the kernel is single-threaded).
	SimPackages []string
	// WallclockExtra extends the no-wallclock rule beyond SimPackages —
	// typically the CLI drivers, where progress timers are expected to carry
	// an explicit suppression directive.
	WallclockExtra []string
	// FloatPackages hold metric/statistics code checked by float-accum.
	FloatPackages []string
	// Disabled lists rule names to skip entirely.
	Disabled []string
}

// DefaultConfig returns the repository's invariant scopes.
func DefaultConfig() *Config {
	return &Config{
		SimPackages: []string{
			"omcast", // the root façade assembles and runs the simulation
			"eventsim", "overlay", "construct", "rost", "cer", "churn",
			"stream", "experiments", "xrand", "topology", "stats", "multitree",
			// The deterministic metrics backend is sim-safe by contract; its
			// concurrent sibling internal/metrics/live (suffix "live") is
			// deliberately outside this scope.
			"metrics",
			// The fault-injection model (rules, schedules, decision streams)
			// follows the same split: internal/faultnet is pure and
			// deterministic, internal/faultnet/live owns the timers and locks.
			"faultnet",
			// The wire codec (envelope validation included) is pure parsing:
			// no clocks, no goroutines, no map-order leaks.
			"wire",
		},
		WallclockExtra: []string{"omcast/cmd/...", "omcast/examples/..."},
		FloatPackages:  []string{"stats", "experiments", "stream", "multitree", "metrics"},
	}
}

func (c *Config) disabled(rule string) bool {
	for _, d := range c.Disabled {
		if d == rule {
			return true
		}
	}
	return false
}

// matchPackage reports whether the import path matches any pattern.
func matchPackage(path string, patterns []string) bool {
	for _, p := range patterns {
		switch {
		case p == path:
			return true
		case strings.HasSuffix(p, "/..."):
			prefix := strings.TrimSuffix(p, "/...")
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		case strings.HasSuffix(path, "/"+p):
			return true
		}
	}
	return false
}

// Rule is one invariant check.
type Rule struct {
	// Name is the identifier used in diagnostics and directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// applies gates the rule per package import path.
	applies func(cfg *Config, path string) bool
	// check inspects one package and reports findings.
	check func(pkg *Package, rep *reporter)
}

// Rules returns the full rule set in stable order.
func Rules() []*Rule {
	return []*Rule{
		ruleNoWallclock(),
		ruleNoGlobalRand(),
		ruleMapOrder(),
		ruleNoGoroutineInSim(),
		ruleHandlerPurity(),
		ruleFloatAccum(),
	}
}

// reporter accumulates diagnostics for one (package, rule) pair.
type reporter struct {
	fset  *token.FileSet
	rule  string
	diags []Diagnostic
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	r.diags = append(r.diags, Diagnostic{
		Pos:     r.fset.Position(pos),
		Rule:    r.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes every enabled rule over the given packages and returns the
// surviving (non-suppressed) diagnostics sorted by position. Malformed
// //lint:ignore directives are themselves reported and cannot be suppressed.
func Run(pkgs []*Package, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var out []Diagnostic
	rules := Rules()
	for _, pkg := range pkgs {
		sup := collectDirectives(pkg)
		out = append(out, sup.malformed...)
		for _, rule := range rules {
			if cfg.disabled(rule.Name) || !rule.applies(cfg, pkg.Path) {
				continue
			}
			rep := &reporter{fset: pkg.Fset, rule: rule.Name}
			rule.check(pkg, rep)
			for _, d := range rep.diags {
				if !sup.suppresses(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
