package multitree

import (
	"testing"
	"time"
)

// quickCfg is a small, fast session.
func quickCfg(seed int64, stripes int) Config {
	return Config{
		Seed:       seed,
		Stripes:    stripes,
		TargetSize: 300,
		Warmup:     1200 * time.Second,
		Measure:    1200 * time.Second,
	}
}

func runSession(t *testing.T, cfg Config) (*Session, Result) {
	t.Helper()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < cfg.Stripes; i++ {
		if err := s.Tree(i).CheckInvariants(); err != nil {
			t.Fatalf("tree %d invariants: %v", i, err)
		}
	}
	return s, res
}

func TestValidate(t *testing.T) {
	if err := (Config{Stripes: 0, TargetSize: 10}).Validate(); err == nil {
		t.Fatal("zero stripes accepted")
	}
	if err := (Config{Stripes: 2, TargetSize: 0}).Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewSession(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{Stripes: 4, TargetSize: 10}.withDefaults()
	if cfg.Contribution != SplitContribution {
		t.Fatal("contribution default wrong")
	}
	if cfg.QuorumStripes != 4 {
		t.Fatalf("quorum default = %d, want 4 (= stripes)", cfg.QuorumStripes)
	}
	if cfg.Rate != 10 || cfg.Buffer != 5*time.Second {
		t.Fatal("stream defaults wrong")
	}
	over := Config{Stripes: 2, TargetSize: 10, QuorumStripes: 5}.withDefaults()
	if over.QuorumStripes != 2 {
		t.Fatalf("oversized quorum not clamped: %d", over.QuorumStripes)
	}
}

func TestContributionString(t *testing.T) {
	if SplitContribution.String() != "split" || DisjointContribution.String() != "disjoint" {
		t.Fatal("contribution names wrong")
	}
}

func TestSingleStripeDegeneratesToSingleTree(t *testing.T) {
	_, res := runSession(t, quickCfg(1, 1))
	if res.Members == 0 {
		t.Fatal("no members measured")
	}
	if len(res.MaxDepths) != 1 {
		t.Fatalf("MaxDepths = %v, want one tree", res.MaxDepths)
	}
	if res.FullQualityRatio <= 0 || res.FullQualityRatio > 1 {
		t.Fatalf("quality ratio %g out of range", res.FullQualityRatio)
	}
}

func TestMultiStripeRuns(t *testing.T) {
	s, res := runSession(t, quickCfg(2, 4))
	if len(res.MaxDepths) != 4 {
		t.Fatalf("MaxDepths = %v, want 4 trees", res.MaxDepths)
	}
	if res.Episodes == 0 {
		t.Fatal("no recovery episodes under churn")
	}
	// Every participant node count matches across trees: members join all
	// stripes.
	sizes := make([]int, 4)
	for i := range sizes {
		sizes[i] = s.Tree(i).Size()
	}
	for i := 1; i < 4; i++ {
		diff := sizes[i] - sizes[0]
		if diff < -2 || diff > 2 {
			t.Fatalf("stripe tree sizes diverge: %v", sizes)
		}
	}
}

func TestDeterminism(t *testing.T) {
	_, a := runSession(t, quickCfg(3, 2))
	_, b := runSession(t, quickCfg(3, 2))
	if a.FullQualityRatio != b.FullQualityRatio || a.OutageRatio != b.OutageRatio ||
		a.Episodes != b.Episodes {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestMDCQuorumAbsorbsLosses: with coding slack (quorum < stripes), the
// outage ratio must not exceed the no-slack outage ratio on the same run.
func TestMDCQuorumAbsorbsLosses(t *testing.T) {
	strict := quickCfg(4, 4)
	strict.QuorumStripes = 4
	_, a := runSession(t, strict)
	slack := quickCfg(4, 4)
	slack.QuorumStripes = 3
	_, b := runSession(t, slack)
	if b.OutageRatio > a.OutageRatio {
		t.Fatalf("coding slack increased outages: %g > %g", b.OutageRatio, a.OutageRatio)
	}
	if a.FullQualityRatio != b.FullQualityRatio {
		t.Fatal("quorum changed raw delivery (it must only change the outage mapping)")
	}
}

// TestDisjointContribution: members are interior in at most one tree.
func TestDisjointContribution(t *testing.T) {
	cfg := quickCfg(5, 3)
	cfg.Contribution = DisjointContribution
	s, res := runSession(t, cfg)
	if res.Members == 0 {
		t.Fatal("no members measured")
	}
	// Inspect the live population: a participant's nodes may have children
	// only in its designated tree.
	for id, p := range s.participants {
		interior := 0
		for tr, n := range p.nodes {
			if n != nil && len(n.Children()) > 0 {
				interior++
				if tr != p.designated {
					t.Fatalf("participant %d interior in tree %d, designated %d", id, tr, p.designated)
				}
			}
		}
		if interior > 1 {
			t.Fatalf("participant %d interior in %d trees", id, interior)
		}
	}
}

// TestROSTPerStripe: switching runs in every stripe tree.
func TestROSTPerStripe(t *testing.T) {
	cfg := quickCfg(6, 2)
	cfg.UseROST = true
	cfg.SwitchInterval = 120 * time.Second
	_, res := runSession(t, cfg)
	if res.Members == 0 {
		t.Fatal("no members measured")
	}
}

// TestStripePacketNumbering: stripe generation times interleave correctly.
func TestStripePacketNumbering(t *testing.T) {
	s, err := NewSession(quickCfg(7, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Global packet n = k*4 + t is generated at n/Rate seconds.
	for tr := 0; tr < 4; tr++ {
		for k := int64(0); k < 50; k++ {
			want := time.Duration(float64(k*4+int64(tr)) / 10 * float64(time.Second))
			if got := s.stripeGen(tr, k); got != want {
				t.Fatalf("stripeGen(%d,%d) = %v, want %v", tr, k, got, want)
			}
		}
	}
	// packetAfter returns the first stripe packet at or after t.
	for tr := 0; tr < 4; tr++ {
		for _, at := range []time.Duration{0, time.Second, 1234 * time.Millisecond, time.Hour} {
			k := s.stripePacketAfter(tr, at)
			if s.stripeGen(tr, k) < at {
				t.Fatalf("stripePacketAfter(%d,%v) = %d generated before t", tr, at, k)
			}
			if k > 0 && s.stripeGen(tr, k-1) >= at {
				t.Fatalf("stripePacketAfter(%d,%v) = %d not minimal", tr, at, k)
			}
		}
	}
}

// TestMoreStripesReduceOutage is the extension's headline: with the same
// population and MDC slack of one stripe, striping reduces outages compared
// to the single tree because a failure interrupts only one stripe.
func TestMoreStripesReduceOutage(t *testing.T) {
	single := quickCfg(8, 1)
	single.TargetSize = 500
	_, a := runSession(t, single)
	striped := quickCfg(8, 4)
	striped.TargetSize = 500
	striped.QuorumStripes = 3
	_, b := runSession(t, striped)
	if b.OutageRatio >= a.OutageRatio {
		t.Fatalf("4-stripe MDC outage %g not below single-tree %g", b.OutageRatio, a.OutageRatio)
	}
}
