// Trace analysis: parse a JSONL trace stream (point events and span
// envelopes interleaved), reconstruct episode timelines, and summarise
// them as latency breakdowns — the consumer half of the span layer,
// surfaced by `omcast-trace analyze`.
package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParsedTrace is everything recovered from one JSONL trace stream.
type ParsedTrace struct {
	Spans  []Span
	Events map[string]int // point-event counts by kind ("span" lines excluded)
	Lines  int
}

// Parse reads a JSONL trace. Unknown fields are ignored so older analyzers
// keep working against newer producers; lines that are not JSON objects
// are an error. A missing "v" (pre-span traces) parses as version 0 and is
// accepted.
func Parse(r io.Reader) (*ParsedTrace, error) {
	out := &ParsedTrace{Events: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		out.Lines++
		var ev Envelope
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("tracing: line %d: %w", out.Lines, err)
		}
		if ev.V > SchemaVersion {
			return nil, fmt.Errorf("tracing: line %d: schema v%d is newer than this analyzer (v%d)", out.Lines, ev.V, SchemaVersion)
		}
		if ev.Span != nil {
			out.Spans = append(out.Spans, *ev.Span)
			continue
		}
		if ev.Event != "" {
			out.Events[ev.Event]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracing: reading trace: %w", err)
	}
	return out, nil
}

// ReadSpans parses a trace and returns only its spans.
func ReadSpans(r io.Reader) ([]Span, error) {
	tr, err := Parse(r)
	if err != nil {
		return nil, err
	}
	return tr.Spans, nil
}

// StageStats summarises one child-span kind within a parent kind: the
// waterfall row. Offsets are child start minus episode start.
type StageStats struct {
	Kind      string
	Count     int
	Offsets   []float64 // sorted, seconds from episode start
	Durations []float64 // sorted, seconds
}

// KindStats summarises all root spans of one kind.
type KindStats struct {
	Kind      string
	Count     int
	Outcomes  map[string]int
	Durations []float64 // sorted, seconds
	Stages    []StageStats
}

// Analysis is the full summary of a parsed trace.
type Analysis struct {
	Events     map[string]int
	Kinds      []KindStats // sorted by kind name
	TotalSpans int
	// Failover, non-nil when the trace carries failover episodes, breaks
	// their reassignment latencies down by cause (source-down vs drain).
	Failover *FailoverStats
}

// FailoverStats summarises fleet failover episodes: the reassignment-latency
// distribution overall and per episode cause.
type FailoverStats struct {
	Count     int
	Durations []float64            // sorted, seconds
	ByCause   map[string][]float64 // cause -> sorted durations
}

// Analyze reconstructs episodes from spans: spans with a resolvable Parent
// become stages of that parent's kind; the rest are roots.
func Analyze(tr *ParsedTrace) *Analysis {
	byID := make(map[string]*Span, len(tr.Spans))
	for i := range tr.Spans {
		byID[tr.Spans[i].ID] = &tr.Spans[i]
	}
	kinds := make(map[string]*KindStats)
	stages := make(map[string]map[string]*StageStats) // parent kind -> child kind
	var failover *FailoverStats
	kindOf := func(k string) *KindStats {
		ks := kinds[k]
		if ks == nil {
			ks = &KindStats{Kind: k, Outcomes: make(map[string]int)}
			kinds[k] = ks
		}
		return ks
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		parent := (*Span)(nil)
		if sp.Parent != "" {
			parent = byID[sp.Parent]
		}
		if parent == nil {
			ks := kindOf(sp.Kind)
			ks.Count++
			ks.Outcomes[sp.Outcome]++
			ks.Durations = append(ks.Durations, sp.Duration())
			if sp.Kind == KindFailover {
				if failover == nil {
					failover = &FailoverStats{ByCause: make(map[string][]float64)}
				}
				failover.Count++
				failover.Durations = append(failover.Durations, sp.Duration())
				cause := "unknown"
				for _, a := range sp.Attrs {
					if a.K == "cause" {
						cause = a.V
						break
					}
				}
				failover.ByCause[cause] = append(failover.ByCause[cause], sp.Duration())
			}
			continue
		}
		m := stages[parent.Kind]
		if m == nil {
			m = make(map[string]*StageStats)
			stages[parent.Kind] = m
		}
		ss := m[sp.Kind]
		if ss == nil {
			ss = &StageStats{Kind: sp.Kind}
			m[sp.Kind] = ss
		}
		ss.Count++
		ss.Offsets = append(ss.Offsets, sp.Start-parent.Start)
		ss.Durations = append(ss.Durations, sp.Duration())
	}
	out := &Analysis{Events: tr.Events, TotalSpans: len(tr.Spans), Failover: failover}
	if failover != nil {
		sort.Float64s(failover.Durations)
		for _, ds := range failover.ByCause {
			sort.Float64s(ds)
		}
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		ks := kinds[k]
		sort.Float64s(ks.Durations)
		if m := stages[k]; m != nil {
			skinds := make([]string, 0, len(m))
			for sk := range m {
				skinds = append(skinds, sk)
			}
			sort.Strings(skinds)
			for _, sk := range skinds {
				ss := m[sk]
				sort.Float64s(ss.Offsets)
				sort.Float64s(ss.Durations)
				ks.Stages = append(ks.Stages, *ss)
			}
		}
		out.Kinds = append(out.Kinds, *ks)
	}
	return out
}

// Percentile returns the nearest-rank percentile (q in [0,1]) of an
// ascending-sorted slice; 0 when empty.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteText renders the analysis as the human-readable report printed by
// `omcast-trace analyze`: per-kind episode percentiles plus a waterfall of
// mean stage offsets and durations.
func (a *Analysis) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "spans: %d\n", a.TotalSpans)
	if len(a.Events) > 0 {
		evs := make([]string, 0, len(a.Events))
		for k := range a.Events {
			evs = append(evs, k)
		}
		sort.Strings(evs)
		fmt.Fprintf(bw, "events:")
		for _, k := range evs {
			fmt.Fprintf(bw, " %s=%d", k, a.Events[k])
		}
		fmt.Fprintln(bw)
	}
	for _, ks := range a.Kinds {
		outs := make([]string, 0, len(ks.Outcomes))
		for o := range ks.Outcomes {
			outs = append(outs, o)
		}
		sort.Strings(outs)
		fmt.Fprintf(bw, "\nkind=%-8s count=%d", ks.Kind, ks.Count)
		for _, o := range outs {
			fmt.Fprintf(bw, " %s=%d", o, ks.Outcomes[o])
		}
		fmt.Fprintln(bw)
		fmt.Fprintf(bw, "  duration  p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
			Percentile(ks.Durations, 0.50), Percentile(ks.Durations, 0.90),
			Percentile(ks.Durations, 0.99), Percentile(ks.Durations, 1.0))
		for _, ss := range ks.Stages {
			fmt.Fprintf(bw, "  stage %-9s n=%-5d start p50=+%.3fs p90=+%.3fs  dur p50=%.3fs p90=%.3fs max=%.3fs\n",
				ss.Kind, ss.Count,
				Percentile(ss.Offsets, 0.50), Percentile(ss.Offsets, 0.90),
				Percentile(ss.Durations, 0.50), Percentile(ss.Durations, 0.90),
				Percentile(ss.Durations, 1.0))
		}
	}
	if f := a.Failover; f != nil {
		fmt.Fprintf(bw, "\nfailover latency  n=%d p50=%.3fs p99=%.3fs max=%.3fs\n",
			f.Count, Percentile(f.Durations, 0.50), Percentile(f.Durations, 0.99),
			Percentile(f.Durations, 1.0))
		causes := make([]string, 0, len(f.ByCause))
		for c := range f.ByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			ds := f.ByCause[c]
			fmt.Fprintf(bw, "  cause %-12s n=%-5d p50=%.3fs p99=%.3fs\n",
				c, len(ds), Percentile(ds, 0.50), Percentile(ds, 0.99))
		}
	}
	return bw.Flush()
}
