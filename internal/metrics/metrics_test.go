package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var nilC *Counter
	nilC.Inc() // nil sink must not panic
	nilC.Add(3)
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil counter value = %v, want 0", got)
	}
	c := &Counter{}
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var nilG *Gauge
	nilG.Set(5)
	nilG.Add(1)
	nilG.SetMax(9)
	if got := nilG.Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	g := &Gauge{}
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value = %v, want 3", got)
	}
	g.SetMax(10)
	g.SetMax(7) // high-water: must not move down
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge high-water = %v, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // nil sink must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram not empty")
	}

	reg := NewRegistry()
	h := reg.Histogram("omcast_test_hist", "", []float64{1, 10, 100})
	// A value equal to a bound lands in that bound's bucket (le semantics).
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	snap := reg.Snapshot(0)
	hv := snap.Metrics[0].Hist
	if hv == nil {
		t.Fatal("histogram export missing")
	}
	want := []uint64{2, 2, 1, 1} // [<=1, <=10, <=100, +Inf]
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	if hv.Count != 6 {
		t.Fatalf("count = %d, want 6", hv.Count)
	}
	if hv.Sum != 0.5+1+5+10+99+1000 {
		t.Fatalf("sum = %v", hv.Sum)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 1000, 13)
	if len(b) != 13 {
		t.Fatalf("len = %d, want 13", len(b))
	}
	if b[0] != 0.001 || b[12] != 1000 {
		t.Fatalf("endpoints = %v, %v", b[0], b[12])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
	// Log spacing: constant ratio between adjacent bounds.
	r0 := b[1] / b[0]
	for i := 2; i < len(b); i++ {
		if r := b[i] / b[i-1]; math.Abs(r-r0) > 1e-9 {
			t.Fatalf("ratio drift at %d: %v vs %v", i, r, r0)
		}
	}
	for _, bad := range []func(){
		func() { LogBuckets(0, 1, 3) },
		func() { LogBuckets(2, 1, 3) },
		func() { LogBuckets(1, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid LogBuckets did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestRegistryDedup(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("omcast_test_total", "help", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	b := reg.Counter("omcast_test_total", "help", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	if a != b {
		t.Fatal("same name+labels (any order) must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("deduped instruments do not share state")
	}
	other := reg.Counter("omcast_test_total", "help", Label{Key: "a", Value: "9"})
	if other == a {
		t.Fatal("different label values must be distinct instruments")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	reg.Gauge("omcast_test_total", "help", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	for name, fn := range map[string]func(){
		"bad metric name": func() { reg.Counter("2bad", "") },
		"bad label key":   func() { reg.Counter("omcast_ok_total", "", Label{Key: "bad-key", Value: "x"}) },
		"dup label key":   func() { reg.Counter("omcast_ok_total", "", Label{Key: "a", Value: "1"}, Label{Key: "a", Value: "2"}) },
		"bad bounds":      func() { reg.Histogram("omcast_ok", "", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotOrderAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("omcast_z_total", "last registered, first if sorted by name... must stay first")
	reg.Gauge("omcast_a_gauge", "registered second")
	snap := reg.Snapshot(12.5)
	if snap.T != 12.5 {
		t.Fatalf("T = %v", snap.T)
	}
	if snap.Metrics[0].Name != "omcast_z_total" || snap.Metrics[1].Name != "omcast_a_gauge" {
		t.Fatalf("snapshot not in registration order: %v, %v", snap.Metrics[0].Name, snap.Metrics[1].Name)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, "registered") {
		t.Fatalf("help text leaked into JSON: %s", s)
	}
	if !strings.Contains(s, `"t":12.5`) {
		t.Fatalf("timestamp missing: %s", s)
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	depth := 3
	reg.GaugeFunc("omcast_test_depth", "", func() float64 { return float64(depth) })
	if got := reg.Snapshot(0).Metrics[0].Value; got != 3 {
		t.Fatalf("func gauge = %v, want 3", got)
	}
	depth = 9 // snapshot must observe the live state, not a copy
	if got := reg.Snapshot(0).Metrics[0].Value; got != 9 {
		t.Fatalf("func gauge after update = %v, want 9", got)
	}
	// Re-registration swaps the closure (sequential sessions on one registry).
	reg.GaugeFunc("omcast_test_depth", "", func() float64 { return 42 })
	if got := reg.Snapshot(0).Metrics[0].Value; got != 42 {
		t.Fatalf("func gauge after re-register = %v, want 42", got)
	}
	if len(reg.Snapshot(0).Metrics) != 1 {
		t.Fatal("re-registration duplicated the gauge")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("value/func gauge clash did not panic")
		}
	}()
	reg.Gauge("omcast_test_depth", "")
}
