module taintmod

go 1.22
