package wire

import (
	"errors"
	"fmt"
	"math"
	"unicode/utf8"
)

// Wire-level caps. The protocol's honest senders stay far below every one of
// these; a datagram over a cap is evidence of a broken or hostile peer, never
// of load. They bound the memory and CPU any single datagram can cost the
// receiver: parse size, per-field lengths, and — critically for CER — the
// width of a repair range (handleRepairRequest walks the range, so an
// unbounded span would be a one-datagram CPU exhaustion attack).
const (
	// MaxDatagram bounds the encoded envelope size Decode will even parse.
	MaxDatagram = 64 << 10
	// MaxPayload bounds the opaque media bytes in one packet.
	MaxPayload = 32 << 10
	// MaxAddrLen bounds any single address string (host:port and the test
	// transports' map keys are far shorter).
	MaxAddrLen = 200
	// MaxChain bounds the NACK-forwarding chain; it never exceeds the CER
	// recovery-group size K (single digits in the paper).
	MaxChain = 16
	// MaxMembers bounds one gossip exchange's member list.
	MaxMembers = 256
	// MaxAncestors bounds one member's advertised root path (the node itself
	// truncates at 16).
	MaxAncestors = 32
	// MaxRepairSpan bounds LastMissing-FirstMissing+1 in ELN/RepairRequest.
	// Honest requesters clamp to their repair buffer (BufferPackets, default
	// 256); the cap leaves generous headroom for large configured buffers.
	MaxRepairSpan = 1 << 16
	// MaxLimit bounds a membership-reply limit (receivers additionally clamp
	// to their own configured partial-view size).
	MaxLimit = 1024
	// MaxDepth bounds a claimed tree depth.
	MaxDepth = 1 << 20
	// MaxBandwidth bounds a claimed bandwidth (stream-rate units; real
	// deployments are single to double digits).
	MaxBandwidth = 1 << 20
	// MaxBTP bounds a claimed bandwidth-time product: MaxBandwidth times a
	// ten-year stream — any claim beyond it is absurd on its face.
	MaxBTP = MaxBandwidth * 10 * 365 * 24 * 3600
)

// Validation reason tokens: a small fixed vocabulary so rejects can be
// counted per reason as bounded metric labels.
const (
	ReasonMalformed = "malformed" // not JSON at all
	ReasonSize      = "size"      // datagram over MaxDatagram
	ReasonType      = "type"      // unknown message type
	ReasonSender    = "sender"    // missing From
	ReasonAddr      = "addr"      // oversized address field
	ReasonNumeric   = "numeric"   // non-finite / negative / absurd numeric claim
	ReasonRange     = "range"     // negative or inverted sequence range
	ReasonSpan      = "span"      // repair range wider than MaxRepairSpan
	ReasonChain     = "chain"     // oversized, looping or self-addressed chain
	ReasonMembers   = "members"   // oversized or corrupt member list
	ReasonLimit     = "limit"     // membership limit outside [0, MaxLimit]
	ReasonPayload   = "payload"   // payload over MaxPayload
	ReasonVersion   = "version"   // binary envelope with an unknown version byte
	ReasonField     = "field"     // unknown, duplicate or non-canonical field
	ReasonCtrl      = "ctrl"      // reliable-delivery tag on a data-class type, or a tagless ack
)

// ValidationError reports a semantically invalid envelope. The envelope
// parsed — so the sender is known and the guard layer can attribute the
// misbehavior — but its claims are outside what any honest peer sends.
type ValidationError struct {
	// Type is the message type being validated.
	Type Type
	// Reason is one of the Reason* tokens.
	Reason string
	// Detail is the human-readable specifics.
	Detail string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("wire: invalid %v: %s: %s", e.Type, e.Reason, e.Detail)
}

// Reason extracts the validation reason token from a Decode/Validate error:
// the ValidationError's reason, or ReasonMalformed for anything else (JSON
// syntax errors). It returns "" for nil.
func Reason(err error) string {
	if err == nil {
		return ""
	}
	var verr *ValidationError
	if errors.As(err, &verr) {
		return verr.Reason
	}
	return ReasonMalformed
}

// Reasons lists every reason token Decode can produce, for metric
// pre-registration.
func Reasons() []string {
	return []string{
		ReasonMalformed, ReasonSize, ReasonType, ReasonSender, ReasonAddr,
		ReasonNumeric, ReasonRange, ReasonSpan, ReasonChain, ReasonMembers,
		ReasonLimit, ReasonPayload, ReasonVersion, ReasonField, ReasonCtrl,
	}
}

func bad(t Type, reason, format string, args ...any) *ValidationError {
	return &ValidationError{Type: t, Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// finiteNonNeg reports whether v is a finite, non-negative float no larger
// than max.
func finiteNonNeg(v, max float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 && v <= max
}

// ValidAddr bounds an address and requires valid UTF-8: JSON re-encoding
// replaces invalid sequences, so a non-UTF-8 address would not survive a
// relay byte-identically (and real transports never produce one).
func ValidAddr(a Addr) bool {
	return a != "" && len(a) <= MaxAddrLen && utf8.ValidString(string(a))
}

// Validate applies the per-message-type semantic validators: field lengths,
// numeric sanity (finite, non-negative, within the absurdity caps), sequence
// range ordering and width, and chain shape (no empties, duplicates, or the
// sender/requester addressing itself). It returns nil for every envelope an
// honest node produces.
func Validate(env Envelope) error {
	t := env.Type
	if t < TypeJoin || t > TypeAck {
		return bad(t, ReasonType, "unknown message type %d", int(t))
	}
	if env.From == "" {
		return bad(t, ReasonSender, "missing sender")
	}
	if !ValidAddr(env.From) {
		return bad(t, ReasonAddr, "sender address %d bytes > %d", len(env.From), MaxAddrLen)
	}
	if env.Requester != "" && !ValidAddr(env.Requester) {
		return bad(t, ReasonAddr, "requester address %d bytes > %d", len(env.Requester), MaxAddrLen)
	}
	if env.NewParent != "" && !ValidAddr(env.NewParent) {
		return bad(t, ReasonAddr, "new_parent address %d bytes > %d", len(env.NewParent), MaxAddrLen)
	}
	if !finiteNonNeg(env.Bandwidth, MaxBandwidth) {
		return bad(t, ReasonNumeric, "bandwidth %v outside [0, %d]", env.Bandwidth, int64(MaxBandwidth))
	}
	if !finiteNonNeg(env.BTP, MaxBTP) {
		return bad(t, ReasonNumeric, "btp %v outside [0, %d]", env.BTP, int64(MaxBTP))
	}
	if !finiteNonNeg(env.Epsilon, 1) {
		return bad(t, ReasonNumeric, "epsilon %v outside [0, 1]", env.Epsilon)
	}
	if env.Depth < 0 || env.Depth > MaxDepth {
		return bad(t, ReasonNumeric, "depth %d outside [0, %d]", env.Depth, MaxDepth)
	}
	if env.Limit < 0 || env.Limit > MaxLimit {
		return bad(t, ReasonLimit, "limit %d outside [0, %d]", env.Limit, MaxLimit)
	}
	if len(env.Payload) > MaxPayload {
		return bad(t, ReasonPayload, "payload %d bytes > %d", len(env.Payload), MaxPayload)
	}
	if env.Packet < 0 {
		return bad(t, ReasonRange, "negative packet sequence %d", env.Packet)
	}
	// Ctrl tags mark reliable control delivery: an ack must name the sequence
	// it answers, and data-class traffic (fire-and-forget by design) must not
	// carry one — a tag there would trick receivers into generating acks.
	if t == TypeAck && env.Ctrl == 0 {
		return bad(t, ReasonCtrl, "ack without a ctrl sequence")
	}
	if env.Ctrl != 0 && t != TypeAck && !ControlClass(t) {
		return bad(t, ReasonCtrl, "%v carries a ctrl sequence", t)
	}
	if err := validateRange(env); err != nil {
		return err
	}
	if err := validateChain(env); err != nil {
		return err
	}
	return validateMembers(env)
}

// validateRange checks the [FirstMissing, LastMissing] repair range carried
// by ELN and RepairRequest: non-negative, ordered, width-capped. Other types
// must not carry one (the fields are protocol-inert there, so any non-zero
// value is a forgery or corruption signal).
func validateRange(env Envelope) error {
	t := env.Type
	switch t {
	case TypeELN, TypeRepairRequest:
		if env.FirstMissing < 0 || env.LastMissing < 0 {
			return bad(t, ReasonRange, "negative repair range [%d, %d]", env.FirstMissing, env.LastMissing)
		}
		if env.LastMissing < env.FirstMissing {
			return bad(t, ReasonRange, "inverted repair range [%d, %d]", env.FirstMissing, env.LastMissing)
		}
		if span := env.LastMissing - env.FirstMissing + 1; span > MaxRepairSpan {
			return bad(t, ReasonSpan, "repair range width %d > %d", span, MaxRepairSpan)
		}
	default:
		if env.FirstMissing != 0 || env.LastMissing != 0 {
			return bad(t, ReasonRange, "%v carries a repair range", t)
		}
	}
	return nil
}

// validateChain checks the NACK-forwarding chain: bounded, well-formed
// addresses, no duplicates (loops), and never containing the sender or the
// original requester — a chain that routes a request back to either is a
// forwarding loop by construction. SwitchCommit reuses Chain as a length-1
// child pointer and gets the same shape checks.
func validateChain(env Envelope) error {
	t := env.Type
	if len(env.Chain) == 0 {
		return nil
	}
	switch t {
	case TypeELN, TypeRepairRequest, TypeSwitchCommit:
	default:
		return bad(t, ReasonChain, "%v carries a chain", t)
	}
	if len(env.Chain) > MaxChain {
		return bad(t, ReasonChain, "chain length %d > %d", len(env.Chain), MaxChain)
	}
	seen := make(map[Addr]bool, len(env.Chain))
	for _, a := range env.Chain {
		if !ValidAddr(a) {
			return bad(t, ReasonChain, "empty or oversized chain entry")
		}
		if a == env.From {
			return bad(t, ReasonChain, "chain contains the sender %s", a)
		}
		if a == env.Requester {
			return bad(t, ReasonChain, "chain contains the requester %s", a)
		}
		if seen[a] {
			return bad(t, ReasonChain, "chain loops through %s", a)
		}
		seen[a] = true
	}
	return nil
}

// validateMembers checks a gossip member list: bounded, every record
// well-formed with sane capacity claims and a bounded ancestor path.
func validateMembers(env Envelope) error {
	t := env.Type
	if len(env.Members) == 0 {
		return nil
	}
	if len(env.Members) > MaxMembers {
		return bad(t, ReasonMembers, "member list length %d > %d", len(env.Members), MaxMembers)
	}
	for _, m := range env.Members {
		if !ValidAddr(m.Addr) {
			return bad(t, ReasonMembers, "empty or oversized member address")
		}
		if m.Depth < 0 || m.Depth > MaxDepth {
			return bad(t, ReasonMembers, "member %s depth %d outside [0, %d]", m.Addr, m.Depth, MaxDepth)
		}
		if m.Spare < -MaxDepth || m.Spare > MaxDepth {
			return bad(t, ReasonMembers, "member %s spare %d outside [-%d, %d]", m.Addr, m.Spare, MaxDepth, MaxDepth)
		}
		if !finiteNonNeg(m.Bandwidth, MaxBandwidth) {
			return bad(t, ReasonMembers, "member %s bandwidth %v outside [0, %d]", m.Addr, m.Bandwidth, int64(MaxBandwidth))
		}
		if len(m.Ancestors) > MaxAncestors {
			return bad(t, ReasonMembers, "member %s ancestor path %d > %d", m.Addr, len(m.Ancestors), MaxAncestors)
		}
		for _, a := range m.Ancestors {
			if !ValidAddr(a) {
				return bad(t, ReasonMembers, "member %s has an empty or oversized ancestor", m.Addr)
			}
		}
	}
	return nil
}
