package flight

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"omcast/internal/tracing"
)

func span(i int) tracing.Span {
	return tracing.Span{
		ID:      fmt.Sprintf("%016x", i),
		Kind:    tracing.KindRejoin,
		Member:  int64(i),
		Start:   float64(i),
		End:     float64(i) + 1,
		Outcome: "reattached",
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(span(i))
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, sp := range got {
		if want := int64(6 + i); sp.Member != want {
			t.Errorf("slot %d holds member %d, want %d (oldest-first)", i, sp.Member, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total %d, want 10", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Record(span(1))
	r.Record(span(2))
	got := r.Snapshot()
	if len(got) != 2 || got[0].Member != 1 || got[1].Member != 2 {
		t.Fatalf("partial snapshot wrong: %+v", got)
	}
}

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Record(span(1))
	if r.Snapshot() != nil || r.Total() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(span(g*1000 + i))
				if i%10 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total %d, want 800", r.Total())
	}
}

func TestHandlerDumpsJSONL(t *testing.T) {
	r := NewRing(4)
	tr := tracing.NewNode(1, "127.0.0.1:7000", r)
	tr.Start(tracing.KindRejoin, 0, 0).Attr("cause", "timeout").End(time.Second, "reattached")
	tr.Start(tracing.KindRepair, 0, 2*time.Second).End(3*time.Second, "filled")

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Trace-Total"); got != "2" {
		t.Errorf("X-Trace-Total %q, want 2", got)
	}
	body := rec.Body.String()
	spans, err := tracing.ReadSpans(strings.NewReader(body))
	if err != nil {
		t.Fatalf("dump is not a parseable trace: %v\n%s", err, body)
	}
	if len(spans) != 2 || spans[0].Kind != tracing.KindRejoin || spans[1].Kind != tracing.KindRepair {
		t.Fatalf("dump spans: %+v", spans)
	}
	if !strings.Contains(body, `"v":1`) {
		t.Errorf("dump missing schema version: %s", body)
	}
}
