package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): one `# HELP` / `# TYPE` pair per metric family followed by
// its samples, histograms expanded into cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`. Families appear in snapshot (registration) order
// and label pairs in sorted-key order, so the output is deterministic.
func WriteProm(w io.Writer, snap Snapshot) error {
	seen := make(map[string]bool, len(snap.Metrics))
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if !seen[m.Name] {
			seen[m.Name] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				m.Name, escapeHelp(m.Help), m.Name, m.Kind); err != nil {
				return err
			}
		}
		if err := writeSamples(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeSamples(w io.Writer, m *Metric) error {
	switch m.Kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, labelBlock(m.Labels, "", 0), formatValue(m.Value))
		return err
	case KindHistogram:
		if m.Hist == nil {
			return fmt.Errorf("metrics: histogram %s has no value", m.Name)
		}
		cum := uint64(0)
		for i, bound := range m.Hist.Bounds {
			cum += m.Hist.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.Name, labelBlock(m.Labels, "le", bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, labelBlock(m.Labels, "le", math.Inf(1)), m.Hist.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			m.Name, labelBlock(m.Labels, "", 0), formatValue(m.Hist.Sum),
			m.Name, labelBlock(m.Labels, "", 0), m.Hist.Count); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("metrics: unknown kind %q for %s", m.Kind, m.Name)
	}
}

// labelBlock renders `{k="v",...}` (or "" with no labels). le, when
// non-empty, appends the histogram bucket bound label last, matching the
// sorted-key order requirement only loosely — Prometheus accepts any stable
// order, and keeping `le` last is the conventional layout.
func labelBlock(labels []Label, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatValue(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: shortest round-trip representation,
// with the +Inf/-Inf/NaN spellings the text format requires.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline (the two characters the format
// reserves in HELP text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote and newline in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
