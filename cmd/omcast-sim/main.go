// Command omcast-sim regenerates one figure of the paper's evaluation.
//
// Usage:
//
//	omcast-sim -fig fig4                 # full-scale run of Figure 4
//	omcast-sim -fig fig14 -quick         # reduced-scale smoke run
//	omcast-sim -fig fig11 -size 4000 -v  # single-size figure at custom M
//	omcast-sim -fig fig-scale -memlimit 16GiB -scale-sizes 1000000
//	omcast-sim -list                     # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"omcast/internal/experiments"
	"omcast/internal/metrics"
	"omcast/internal/profiling"
	"omcast/internal/runtimecfg"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig      = flag.String("fig", "", "experiment ID (fig4..fig14 or an ablation; see -list)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		seed     = flag.Int64("seed", 1, "base random seed")
		size     = flag.Int("size", 0, "member count for single-size figures (default 8000)")
		sizes    = flag.String("sizes", "", "comma-separated member counts for size sweeps (default 2000,5000,8000,11000,14000)")
		scaleSz  = flag.String("scale-sizes", "", "comma-separated member counts for fig-scale (default 2000,14000,140000)")
		warmup   = flag.Duration("warmup", 0, "warm-up horizon (default 3h)")
		measure  = flag.Duration("measure", 0, "measurement window (default 1h)")
		replicas = flag.Int("replicas", 0, "seeds behind Figure 14's confidence intervals (default 5)")
		workers  = flag.Int("workers", 0, "worker pool size for independent runs (0 = GOMAXPROCS; output is identical for every setting)")
		quick    = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		paranoid = flag.Bool("paranoid", false, "full-scan invariant audits during every run (debugging aid; output comparable only to other -paranoid runs)")
		memlimit = flag.String("memlimit", "", "soft Go runtime memory limit, e.g. 8GiB (default: no limit)")
		gcpct    = flag.Int("gcpercent", -1, "GOGC percentage (default -1: keep the runtime default of 100)")
		asCSV    = flag.Bool("csv", false, "emit the table as CSV instead of aligned text")
		verbose  = flag.Bool("v", false, "print per-run progress")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metOut   = flag.String("metrics-out", "", "write accumulated metrics (Prometheus text format) to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "omcast-sim: -fig is required (try -list)")
		flag.Usage()
		return 2
	}
	if _, err := runtimecfg.Apply(*memlimit, *gcpct); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
		return 2
	}
	opts := experiments.Options{
		Seed:     *seed,
		Size:     *size,
		Warmup:   *warmup,
		Measure:  *measure,
		Replicas: *replicas,
		Workers:  *workers,
		Quick:    *quick,
		Paranoid: *paranoid,
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
			return 2
		}
		opts.Sizes = parsed
	}
	if *scaleSz != "" {
		parsed, err := parseSizes(*scaleSz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
			return 2
		}
		opts.ScaleSizes = parsed
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *metOut != "" {
		opts.Metrics = metrics.NewRegistry()
	}
	prof, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
		return 1
	}
	//lint:ignore no-wallclock reason: CLI progress timer; never feeds simulation state
	start := time.Now()
	var table experiments.Table
	profiling.Do(*fig, func() {
		table, err = experiments.NewRunner(opts).Run(*fig)
	})
	if perr := prof.Stop(); perr != nil {
		fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", perr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
		return 1
	}
	if *metOut != "" {
		if werr := writeMetrics(*metOut, opts.Metrics); werr != nil {
			fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", werr)
			return 1
		}
	}
	if *asCSV {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.Format())
		//lint:ignore no-wallclock reason: CLI progress timer; never feeds simulation state
		fmt.Printf("(completed in %.1fs)\n", time.Since(start).Seconds())
	}
	return 0
}

// writeMetrics dumps the suite's accumulated registry in the Prometheus
// text exposition format (timestamp-free, so same-seed runs are
// byte-identical).
func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteProm(f, reg.Snapshot(0)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
