package omcast_test

// One testing.B benchmark per figure of the paper's evaluation plus the
// ablation benches DESIGN.md calls out. Benchmarks run the experiments at
// reduced (Quick) scale so `go test -bench=.` finishes in minutes; use
// cmd/omcast-all for the full-scale reproduction. Each benchmark reports
// the figure's headline number as a custom metric so regressions in the
// reproduced shape show up alongside timing regressions.

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"omcast"
	"omcast/internal/eventsim"
	"omcast/internal/experiments"
	"omcast/internal/metrics"
)

// benchTable runs one experiment per iteration and reports a headline metric
// extracted from the named cell.
func benchTable(b *testing.B, id string, metricName string, metric func(experiments.Table) float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(experiments.Options{Seed: int64(i + 1), Quick: true})
		table, err := runner.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = metric(table)
	}
	b.ReportMetric(last, metricName)
}

// cell parses table.Rows[r][c], stripping units.
func cell(b *testing.B, t experiments.Table, r, c int) float64 {
	b.Helper()
	if r >= len(t.Rows) || c >= len(t.Rows[r]) {
		b.Fatalf("table %s has no cell (%d,%d)", t.ID, r, c)
	}
	s := t.Rows[r][c]
	for _, suffix := range []string{"%", "ms", "s", "x"} {
		s = strings.TrimSuffix(s, suffix)
	}
	if i := strings.IndexByte(s, '+'); i > 0 {
		s = strings.TrimSpace(s[:i]) // "1.23% +/- 0.4" -> "1.23"
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		b.Fatalf("unparseable cell %q in %s", t.Rows[r][c], t.ID)
	}
	return v
}

// lastRow returns the index of the last data row.
func lastRow(t experiments.Table) int { return len(t.Rows) - 1 }

// Figure 4: average disruptions per node. Headline: ROST's value at the
// largest size (last row, last column).
func BenchmarkFig4Disruptions(b *testing.B) {
	benchTable(b, "fig4", "rost_disruptions", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 5: disruption CDF. Headline: fraction of ROST nodes with <= 4
// disruptions (row index 2).
func BenchmarkFig5DisruptionCDF(b *testing.B) {
	benchTable(b, "fig5", "rost_cdf_at_4_pct", func(t experiments.Table) float64 {
		return cell(b, t, 2, len(t.Header)-1)
	})
}

// Figure 6: cumulative disruptions of a typical member. Headline: ROST's
// final cumulative count.
func BenchmarkFig6TypicalMember(b *testing.B) {
	benchTable(b, "fig6", "rost_cumulative", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 7: average service delay. Headline: ROST at the largest size.
func BenchmarkFig7ServiceDelay(b *testing.B) {
	benchTable(b, "fig7", "rost_delay_ms", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 8: average stretch. Headline: ROST at the largest size.
func BenchmarkFig8Stretch(b *testing.B) {
	benchTable(b, "fig8", "rost_stretch", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 9: typical member's delay over time. Headline: ROST's final delay.
func BenchmarkFig9TypicalDelay(b *testing.B) {
	benchTable(b, "fig9", "rost_final_delay_ms", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 10: protocol overhead. Headline: ROST reconnections per node at the
// largest size.
func BenchmarkFig10Overhead(b *testing.B) {
	benchTable(b, "fig10", "rost_reconnections", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 11: switching-interval sweep. Headline: disruptions at the smallest
// interval.
func BenchmarkFig11SwitchInterval(b *testing.B) {
	benchTable(b, "fig11", "disruptions_small_interval", func(t experiments.Table) float64 {
		return cell(b, t, 0, 1)
	})
}

// Figure 12: recovery group size sweep. Headline: starving ratio at K=4 and
// the largest size.
func BenchmarkFig12GroupSize(b *testing.B) {
	benchTable(b, "fig12", "starving_k4_pct", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), len(t.Header)-1)
	})
}

// Figure 13: buffer sweep. Headline: starving ratio at K=1 with the largest
// buffer.
func BenchmarkFig13BufferSize(b *testing.B) {
	benchTable(b, "fig13", "starving_k1_bigbuffer_pct", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), 1)
	})
}

// Figure 14: ROST+CER vs the baseline. Headline: improvement factor at K=3.
func BenchmarkFig14RostCer(b *testing.B) {
	benchTable(b, "fig14", "improvement_k3_x", func(t experiments.Table) float64 {
		return cell(b, t, lastRow(t), 3)
	})
}

// Ablation benches (DESIGN.md section 5).

// BenchmarkAblationRandomRecovery isolates the MLC group selection from the
// striping: the metric is random-group starving divided by MLC starving.
func BenchmarkAblationRandomRecovery(b *testing.B) {
	benchTable(b, "ablation-recovery", "random_over_mlc", func(t experiments.Table) float64 {
		mlc := cell(b, t, 0, 1)
		random := cell(b, t, 1, 1)
		if mlc == 0 {
			return 0
		}
		return random / mlc
	})
}

// BenchmarkAblationAncestorRejoin measures the disruption cost of forcing
// orphans through the full join procedure.
func BenchmarkAblationAncestorRejoin(b *testing.B) {
	benchTable(b, "ablation-rejoin", "fullrejoin_over_ancestor", func(t experiments.Table) float64 {
		anc := cell(b, t, 0, 1)
		full := cell(b, t, 1, 1)
		if anc == 0 {
			return 0
		}
		return full / anc
	})
}

// BenchmarkAblationContributorPriority measures the delay benefit of parking
// free-riders deep.
func BenchmarkAblationContributorPriority(b *testing.B) {
	benchTable(b, "ablation-priority", "delay_ratio", func(t experiments.Table) float64 {
		std := cell(b, t, 0, 2)
		cp := cell(b, t, 1, 2)
		if std == 0 {
			return 0
		}
		return cp / std
	})
}

// BenchmarkAblationNoBandwidthGuard measures the reconnection churn of
// removing ROST's bandwidth guard.
func BenchmarkAblationNoBandwidthGuard(b *testing.B) {
	benchTable(b, "ablation-guard", "reconn_ratio", func(t experiments.Table) float64 {
		with := cell(b, t, 0, 2)
		without := cell(b, t, 1, 2)
		if with == 0 {
			return 0
		}
		return without / with
	})
}

// BenchmarkAblationDistanceOracle compares the O(1) hierarchical delay
// oracle against running a tree-level experiment; the oracle is exercised on
// every join tie-break and metric sample, so this bench doubles as the
// substrate's hot-path benchmark.
func BenchmarkAblationDistanceOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := omcast.Run(omcast.Config{
			Seed:       int64(i + 1),
			Algorithm:  omcast.MinimumDepth,
			TargetSize: 500,
			Topology:   omcast.SmallTopology(),
			Warmup:     30 * time.Minute,
			Measure:    30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunROSTSession is the end-to-end session benchmark: one full
// tree-level ROST run at reduced scale per iteration.
func BenchmarkRunROSTSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := omcast.Run(omcast.Config{
			Seed:       int64(i + 1),
			Algorithm:  omcast.ROST,
			TargetSize: 800,
			Topology:   omcast.SmallTopology(),
			Warmup:     45 * time.Minute,
			Measure:    30 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgDisruptions, "disruptions")
	}
}

// BenchmarkRunStreamingSession benchmarks the packet-level stack.
func BenchmarkRunStreamingSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := omcast.RunStreaming(omcast.Config{
			Seed:       int64(i + 1),
			Algorithm:  omcast.MinimumDepth,
			TargetSize: 800,
			Topology:   omcast.SmallTopology(),
			Warmup:     45 * time.Minute,
			Measure:    30 * time.Minute,
		}, omcast.StreamConfig{Recovery: omcast.CER, GroupSize: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgStarvingRatio*100, "starving_pct")
	}
}

// BenchmarkExtensionMultiTree exercises the multiple-tree extension: the
// metric is the single-tree outage divided by the 4-stripe MDC outage.
func BenchmarkExtensionMultiTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := omcast.Config{
			Seed:       int64(i + 1),
			TargetSize: 500,
			Warmup:     30 * time.Minute,
			Measure:    30 * time.Minute,
		}
		single, err := omcast.RunMultiTree(cfg, omcast.MultiTreeConfig{Stripes: 1})
		if err != nil {
			b.Fatal(err)
		}
		striped, err := omcast.RunMultiTree(cfg, omcast.MultiTreeConfig{Stripes: 4, Quorum: 3})
		if err != nil {
			b.Fatal(err)
		}
		if striped.OutageRatio > 0 {
			b.ReportMetric(single.OutageRatio/striped.OutageRatio, "outage_improvement_x")
		}
	}
}

// BenchmarkMetricsOverhead quantifies the cost of instrumentation, the
// acceptance gate for the metrics layer: the instrumented variants must stay
// within ~10% of the bare ones. kernel/* isolates the event loop's metric
// increments (a scripted chain of no-op events); session/* measures the
// realistic end-to-end cost of a fully instrumented tree-level run. Compare
// with `go test -bench MetricsOverhead -count 10 | benchstat` or eyeball the
// ns/op ratio.
func BenchmarkMetricsOverhead(b *testing.B) {
	kernel := func(b *testing.B, instrument bool) {
		const events = 200_000
		for i := 0; i < b.N; i++ {
			sim := eventsim.New()
			if instrument {
				sim.Instrument(metrics.NewRegistry())
			}
			remaining := events
			var tick eventsim.Handler
			tick = func(s *eventsim.Simulator) {
				if remaining--; remaining > 0 {
					s.ScheduleAfter(time.Millisecond, tick)
				}
			}
			sim.Schedule(0, tick)
			if err := sim.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	session := func(b *testing.B, instrument bool) {
		for i := 0; i < b.N; i++ {
			cfg := omcast.Config{
				Seed:       int64(i + 1),
				Algorithm:  omcast.ROST,
				TargetSize: 500,
				Topology:   omcast.SmallTopology(),
				Warmup:     30 * time.Minute,
				Measure:    30 * time.Minute,
			}
			if instrument {
				cfg.Metrics = metrics.NewRegistry()
			}
			if _, err := omcast.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("kernel/bare", func(b *testing.B) { kernel(b, false) })
	b.Run("kernel/instrumented", func(b *testing.B) { kernel(b, true) })
	b.Run("session/bare", func(b *testing.B) { session(b, false) })
	b.Run("session/instrumented", func(b *testing.B) { session(b, true) })
}
