// Package construct implements the overlay tree-construction algorithms the
// paper evaluates against ROST (Section 5):
//
//   - Minimum-depth: a joining member samples up to 100 known members and
//     picks the spare-capacity parent highest in the tree, tie-broken by
//     network delay. Distributed, no optimization overhead.
//   - Longest-first: as above, but picks the oldest spare-capacity parent.
//   - Relaxed bandwidth-ordered (BO): a centralized variant of the
//     high-bandwidth-first algorithm. A joining member scans layers from the
//     top; if a weaker node occupies a high position the new member replaces
//     it and the evicted node rejoins. Produces bandwidth ordering between
//     parents and children.
//   - Relaxed time-ordered (TO): the same eviction scan keyed on age; an
//     evicted node's excess children (the replacement may have less capacity)
//     also rejoin.
//
// ROST's join step is the minimum-depth rule (Section 3.3), so the rost
// package reuses MinDepth from here.
package construct

import (
	"errors"
	"fmt"
	"time"

	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// ErrNoParent is returned when no reachable member has spare capacity (and,
// for the ordered algorithms, nobody can be evicted either). The caller is
// expected to retry the join later.
var ErrNoParent = errors.New("construct: no parent with spare capacity found")

// DefaultCandidateCount is the membership-discovery bound from the paper: a
// joining node learns about up to 100 existing members.
const DefaultCandidateCount = 100

// Env carries the shared machinery every strategy needs.
type Env struct {
	// Rng drives candidate sampling and random tie-breaks.
	Rng *xrand.Source
	// Delay returns the unicast delay between two underlay routers.
	Delay func(a, b topology.NodeID) time.Duration
	// CandidateCount bounds membership discovery for the distributed
	// algorithms; 0 means DefaultCandidateCount.
	CandidateCount int
}

func (e *Env) candidateCount() int {
	if e.CandidateCount <= 0 {
		return DefaultCandidateCount
	}
	return e.CandidateCount
}

// Strategy attaches joining (or rejoining) members to the tree.
type Strategy interface {
	// Name returns the algorithm's display name as used in the paper's
	// figures.
	Name() string
	// Join finds a parent for m and attaches it, possibly restructuring the
	// tree (evictions). m must be live and detached. Join returns
	// ErrNoParent when the overlay is saturated.
	Join(tree *overlay.Tree, m *overlay.Member, now time.Duration) error
}

// candidates samples the joining member's partial view of the overlay and
// always includes the source (the bootstrap mechanism guarantees at least
// one active contact, and the source is every session's first), mirroring
// the paper's join procedure.
func (e *Env) candidates(tree *overlay.Tree, m *overlay.Member) []*overlay.Member {
	cands := tree.Sample(e.Rng, e.candidateCount(), m)
	return append(cands, tree.Root())
}

// MinDepth is the minimum-depth algorithm.
type MinDepth struct {
	Env *Env
}

var _ Strategy = (*MinDepth)(nil)

// Name implements Strategy.
func (a *MinDepth) Name() string { return "Minimum-depth" }

// Join implements Strategy: pick the spare-capacity candidate highest in the
// tree; among equals, the one nearest to m in the underlay.
func (a *MinDepth) Join(tree *overlay.Tree, m *overlay.Member, _ time.Duration) error {
	var best *overlay.Member
	var bestDelay time.Duration
	for _, c := range a.Env.candidates(tree, m) {
		if !usableParent(c, m) {
			continue
		}
		switch {
		case best == nil, c.Depth() < best.Depth():
			best = c
			bestDelay = a.Env.Delay(m.Attach, c.Attach)
		case c.Depth() == best.Depth():
			if d := a.Env.Delay(m.Attach, c.Attach); d < bestDelay {
				best = c
				bestDelay = d
			}
		}
	}
	if best == nil {
		return ErrNoParent
	}
	return tree.Attach(m, best)
}

// LongestFirst is the longest-first algorithm.
type LongestFirst struct {
	Env *Env
}

var _ Strategy = (*LongestFirst)(nil)

// Name implements Strategy.
func (a *LongestFirst) Name() string { return "Longest-first" }

// Join implements Strategy: pick the oldest spare-capacity candidate
// (smallest join time); among equals, the nearest.
func (a *LongestFirst) Join(tree *overlay.Tree, m *overlay.Member, _ time.Duration) error {
	var best *overlay.Member
	var bestDelay time.Duration
	for _, c := range a.Env.candidates(tree, m) {
		if !usableParent(c, m) {
			continue
		}
		switch {
		case best == nil, c.JoinTime < best.JoinTime:
			best = c
			bestDelay = a.Env.Delay(m.Attach, c.Attach)
		case c.JoinTime == best.JoinTime:
			if d := a.Env.Delay(m.Attach, c.Attach); d < bestDelay {
				best = c
				bestDelay = d
			}
		}
	}
	if best == nil {
		return ErrNoParent
	}
	return tree.Attach(m, best)
}

// ContributorPriority wraps an inner strategy with the incentive rule of
// Section 3.2 ("a node can be encouraged to contribute more bandwidth
// resource or longer service time as a trade for service quality"): members
// that contribute no forwarding bandwidth (free-riders, out-degree zero) are
// parked at the deepest spare position instead of competing for the high
// slots. Free-riders are permanent leaves — they can never be displaced by
// BTP switching, so letting them claim high slots starves the tree's fanout;
// contributors join through the inner strategy unchanged.
type ContributorPriority struct {
	Env   *Env
	Inner Strategy
}

var _ Strategy = (*ContributorPriority)(nil)

// Name implements Strategy.
func (a *ContributorPriority) Name() string { return a.Inner.Name() + " (contributor priority)" }

// Join implements Strategy.
func (a *ContributorPriority) Join(tree *overlay.Tree, m *overlay.Member, now time.Duration) error {
	if m.OutDegree() > 0 {
		return a.Inner.Join(tree, m, now)
	}
	var best *overlay.Member
	var bestDelay time.Duration
	for _, c := range a.Env.candidates(tree, m) {
		if !usableParent(c, m) {
			continue
		}
		switch {
		case best == nil, c.Depth() > best.Depth():
			best = c
			bestDelay = a.Env.Delay(m.Attach, c.Attach)
		case c.Depth() == best.Depth():
			if d := a.Env.Delay(m.Attach, c.Attach); d < bestDelay {
				best = c
				bestDelay = d
			}
		}
	}
	if best == nil {
		return ErrNoParent
	}
	return tree.Attach(m, best)
}

// rankFn orders members for the eviction-based algorithms: it returns true
// when a strictly outranks b (bigger bandwidth for BO, older age for TO).
type rankFn func(a, b *overlay.Member) bool

// relaxedOrdered is the shared top-down eviction scan behind the relaxed BO
// and relaxed TO algorithms. Both assume a central administrator with global
// topological knowledge, which is exactly how the paper frames them.
type relaxedOrdered struct {
	env      *Env
	name     string
	outranks rankFn
	// adoptAll reports whether a replacement is guaranteed to fit all the
	// evictee's children (true for BO: bandwidth ordering implies capacity
	// ordering; false for TO).
	adoptAll bool
	// depth guard against pathological eviction chains.
	evicting int
}

// Name implements Strategy.
func (a *relaxedOrdered) Name() string { return a.name }

// Join implements Strategy.
func (a *relaxedOrdered) Join(tree *overlay.Tree, m *overlay.Member, now time.Duration) error {
	maxDepth := tree.MaxDepth()
	for d := 1; d <= maxDepth+1; d++ {
		// The paper's relaxed ordering "always searches from the high to low
		// layers to see if there is a smaller-bandwidth or younger node, and
		// if so, the located node is replaced with the new one": taking over
		// an outranked layer-d occupant is preferred over a free slot at the
		// same layer — that strictness is what keeps the tree ordered, and
		// it is why these centralized algorithms pay the protocol overhead
		// Figure 10 reports.
		if a.evicting < 1000 { // bound cascades; beyond this just attach
			if victim := a.weakestOutranked(tree.Level(d), m); victim != nil {
				return a.replace(tree, m, victim, now)
			}
		}
		if parent := nearestSpare(a.env, tree.Level(d-1), m); parent != nil {
			return tree.Attach(m, parent)
		}
	}
	return ErrNoParent
}

// weakestOutranked returns the most-outranked member of level that m
// outranks, or nil.
func (a *relaxedOrdered) weakestOutranked(level []*overlay.Member, m *overlay.Member) *overlay.Member {
	var victim *overlay.Member
	for _, c := range level {
		if c.Parent() == nil { // the root cannot be evicted
			continue
		}
		if !a.outranks(m, c) {
			continue
		}
		if victim == nil || a.outranks(victim, c) {
			victim = c
		}
	}
	return victim
}

// replace puts m into victim's tree position. m adopts as many of victim's
// children as its out-degree allows (all of them under bandwidth ordering);
// the victim and any leftover children rejoin through the same algorithm.
// Every forced reconnection is charged to the protocol-overhead metric.
func (a *relaxedOrdered) replace(tree *overlay.Tree, m, victim *overlay.Member, now time.Duration) error {
	parent := victim.Parent()
	children := victim.Children()
	for _, c := range children {
		if err := tree.Detach(c); err != nil {
			return fmt.Errorf("construct: detaching child %d of victim: %w", c.ID, err)
		}
	}
	if err := tree.Detach(victim); err != nil {
		return fmt.Errorf("construct: detaching victim %d: %w", victim.ID, err)
	}
	if err := tree.Attach(m, parent); err != nil {
		return fmt.Errorf("construct: attaching replacement %d: %w", m.ID, err)
	}
	// Keep the strongest children in place; the order matters only when m
	// cannot adopt everyone (TO case).
	if !a.adoptAll {
		sortByRank(children, a.outranks)
	}
	var leftovers []*overlay.Member
	for _, c := range children {
		if m.HasSpare() {
			if err := tree.Attach(c, m); err != nil {
				return fmt.Errorf("construct: re-adopting child %d: %w", c.ID, err)
			}
			continue
		}
		leftovers = append(leftovers, c)
	}
	// The victim (now childless) rejoins, then leftover children with their
	// subtrees. Rejoin failures leave them detached; the churn driver will
	// retry them like any other orphan, so saturation here is not fatal.
	a.evicting++
	defer func() { a.evicting-- }()
	victim.Reconnections++
	if err := a.Join(tree, victim, now); err != nil && !errors.Is(err, ErrNoParent) {
		return fmt.Errorf("construct: rejoining victim %d: %w", victim.ID, err)
	}
	for _, c := range leftovers {
		c.Reconnections++
		if err := a.Join(tree, c, now); err != nil && !errors.Is(err, ErrNoParent) {
			return fmt.Errorf("construct: rejoining leftover child %d: %w", c.ID, err)
		}
	}
	return nil
}

// NewRelaxedBandwidthOrdered returns the centralized relaxed-BO strategy.
func NewRelaxedBandwidthOrdered(env *Env) Strategy {
	return &relaxedOrdered{
		env:  env,
		name: "Relaxed bandwidth-ordered",
		outranks: func(a, b *overlay.Member) bool {
			return a.Bandwidth > b.Bandwidth
		},
		adoptAll: true,
	}
}

// NewRelaxedTimeOrdered returns the centralized relaxed-TO strategy.
func NewRelaxedTimeOrdered(env *Env) Strategy {
	return &relaxedOrdered{
		env:  env,
		name: "Relaxed time-ordered",
		outranks: func(a, b *overlay.Member) bool {
			// Older (earlier join) outranks younger.
			return a.JoinTime < b.JoinTime
		},
		adoptAll: false,
	}
}

// usableParent reports whether c can accept m as a child right now.
func usableParent(c, m *overlay.Member) bool {
	return c != m && c.Attached() && c.HasSpare()
}

// nearestSpare returns the member of level with spare capacity nearest to m
// in the underlay, or nil.
func nearestSpare(env *Env, level []*overlay.Member, m *overlay.Member) *overlay.Member {
	var best *overlay.Member
	var bestDelay time.Duration
	for _, c := range level {
		if !usableParent(c, m) {
			continue
		}
		d := env.Delay(m.Attach, c.Attach)
		if best == nil || d < bestDelay {
			best, bestDelay = c, d
		}
	}
	return best
}

// sortByRank orders members best-ranked first (insertion sort; eviction
// child lists are tiny).
func sortByRank(ms []*overlay.Member, outranks rankFn) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && outranks(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
