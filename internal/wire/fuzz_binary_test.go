package wire

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
)

// binSeed decodes a hex-pinned seed (sharing the golden vocabulary).
func binSeed(f *testing.F, h string) []byte {
	b, err := hex.DecodeString(h)
	if err != nil {
		f.Fatalf("bad seed hex: %v", err)
	}
	return b
}

// FuzzDecodeBinary throws arbitrary bytes at the binary parser. Invariants:
// DecodeBinary never panics, never accepts an envelope Validate rejects, and
// — the canonical-format property, stronger than the JSON fuzzer's — every
// accepted datagram re-encodes byte-identically.
func FuzzDecodeBinary(f *testing.F) {
	f.Add(binSeed(f, "f54d010201016a020000000000000c401001"))                                     // join
	f.Add(binSeed(f, "f54d010a010170020000000000000840030204070e0000000000404540"))               // heartbeat
	f.Add(binSeed(f, "f54d010c01017305c8010603010203"))                                           // packet
	f.Add(binSeed(f, "f54d0110010161070a083209020272320272330a046f7269670b000000000000d03f1005")) // repair-request
	f.Add(binSeed(f, "f54d01160101620c01026d310604000000000000104002017004726f6f741007"))         // membership-reply
	f.Add(binSeed(f, "f54d0120010172100c"))                                                       // ack
	f.Add(binSeed(f, "f54d01ff0101780801"))                                                       // absurd type
	f.Add(binSeed(f, "f54d02020101"))                                                             // future version
	f.Add(binSeed(f, "f54d01"))                                                                   // bare header
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeBinary(data)
		if err != nil {
			if r := Reason(err); r == "" {
				t.Fatalf("error without a reason: %v", err)
			}
			return
		}
		if verr := Validate(env); verr != nil {
			t.Fatalf("DecodeBinary accepted an envelope Validate rejects: %v\n%x", verr, data)
		}
		b, err := EncodeBinary(env)
		if err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("accepted datagram is not canonical:\n in  %x\n out %x", data, b)
		}
	})
}

// FuzzRoundTripBinary drives structured field values through the binary
// EncodeBinary|DecodeBinary pair. Unlike JSON — which can launder invalid
// envelopes by replacing bad UTF-8 — the binary codec is exact: a valid
// envelope must round-trip to equality (and canonical bytes), and an invalid
// one must be rejected when its encoding comes back in.
func FuzzRoundTripBinary(f *testing.F) {
	f.Add(uint8(6), "s", 0.0, 0, uint64(0), int64(100), []byte{1, 2, 3}, int64(0), int64(0), "", "", 0.0, 0, 0.0, "", uint64(0))
	f.Add(uint8(8), "a", 0.0, 0, uint64(0), int64(0), []byte(nil), int64(5), int64(25), "r2,r3", "orig", 0.25, 0, 0.0, "", uint64(3))
	f.Add(uint8(5), "p", 3.0, 1, uint64(7), int64(0), []byte(nil), int64(0), int64(0), "", "", 0.0, 0, 42.5, "", uint64(0))
	f.Add(uint8(15), "i", 0.0, 0, uint64(0), int64(0), []byte(nil), int64(0), int64(0), "old", "", 0.0, 0, 0.0, "np", uint64(9))
	f.Add(uint8(16), "r", 0.0, 0, uint64(0), int64(0), []byte(nil), int64(0), int64(0), "", "", 0.0, 0, 0.0, "", uint64(12))
	f.Add(uint8(6), "s", 0.0, 0, uint64(0), int64(1), []byte(nil), int64(0), int64(0), "", "", 0.0, 0, 0.0, "", uint64(4))
	f.Fuzz(func(t *testing.T, typ uint8, from string, bw float64, depth int, seq uint64,
		pkt int64, payload []byte, first, last int64, chain, requester string,
		eps float64, limit int, btp float64, newParent string, ctrl uint64) {
		env := Envelope{
			Type: Type(typ), From: Addr(from), Bandwidth: bw, Depth: depth,
			Seq: seq, Packet: pkt, Payload: payload,
			FirstMissing: first, LastMissing: last,
			Requester: Addr(requester), Epsilon: eps, Limit: limit,
			BTP: btp, NewParent: Addr(newParent), Ctrl: ctrl,
		}
		if chain != "" {
			for _, c := range strings.Split(chain, ",") {
				env.Chain = append(env.Chain, Addr(c))
			}
		}
		valid := Validate(env) == nil
		b, err := EncodeBinary(env)
		if err != nil {
			t.Fatalf("EncodeBinary failed: %v", err)
		}
		got, err := DecodeBinary(b)
		if valid && err != nil {
			t.Fatalf("validation gap: Validate accepted but DecodeBinary rejects: %v\n%x", err, b)
		}
		if !valid {
			if err == nil {
				t.Fatalf("binary laundered an invalid envelope: %+v", env)
			}
			return
		}
		if got.Type != env.Type || got.From != env.From || got.Packet != env.Packet ||
			got.Seq != env.Seq || got.Depth != env.Depth ||
			got.FirstMissing != env.FirstMissing || got.LastMissing != env.LastMissing ||
			got.Bandwidth != env.Bandwidth || got.BTP != env.BTP || got.Epsilon != env.Epsilon ||
			got.Limit != env.Limit || got.Requester != env.Requester || got.NewParent != env.NewParent ||
			got.Ctrl != env.Ctrl {
			t.Fatalf("round trip drifted:\n sent %+v\n got  %+v", env, got)
		}
		again, err := EncodeBinary(got)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(again, b) {
			t.Fatalf("re-encode not canonical:\n first  %x\n second %x", b, again)
		}
	})
}
