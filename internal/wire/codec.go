package wire

// Codec is one on-wire representation of the envelope vocabulary. Both
// codecs share the validation vocabulary and the attribution contract
// (Decode returns the partially parsed envelope alongside a validation
// error); receivers pick the decoder per datagram with Detect, so a node
// configured to send one codec still understands peers speaking the other.
type Codec interface {
	// Name labels the codec in flags, status output and metric labels.
	Name() string
	// Encode serialises a validated envelope.
	Encode(env Envelope) ([]byte, error)
	// Decode parses and semantically validates one datagram.
	Decode(b []byte) (Envelope, error)
	// DecodeRaw parses without semantic validation (tooling only; the
	// result is attacker-controlled until Validate accepts it).
	DecodeRaw(b []byte) (Envelope, error)
}

type binaryCodec struct{}

func (binaryCodec) Name() string                        { return "binary" }
func (binaryCodec) Encode(env Envelope) ([]byte, error) { return EncodeBinary(env) }
func (binaryCodec) Decode(b []byte) (Envelope, error)   { return DecodeBinary(b) }
func (binaryCodec) DecodeRaw(b []byte) (Envelope, error) {
	return DecodeBinaryRaw(b)
}

type jsonCodec struct{}

func (jsonCodec) Name() string                         { return "json" }
func (jsonCodec) Encode(env Envelope) ([]byte, error)  { return Encode(env) }
func (jsonCodec) Decode(b []byte) (Envelope, error)    { return Decode(b) }
func (jsonCodec) DecodeRaw(b []byte) (Envelope, error) { return DecodeRaw(b) }

// BinaryV1 is the versioned binary codec — the default for real transports.
var BinaryV1 Codec = binaryCodec{}

// JSONDebug is the strict JSON codec, kept for debuggability (datagrams
// readable with tcpdump and standard tooling).
var JSONDebug Codec = jsonCodec{}

// CodecByName resolves a -codec flag value. The empty string picks the
// default (binary); unknown names return nil.
func CodecByName(name string) Codec {
	switch name {
	case "", "binary":
		return BinaryV1
	case "json":
		return JSONDebug
	}
	return nil
}

// CodecNames lists the valid CodecByName inputs, for flag help and metric
// pre-registration.
func CodecNames() []string { return []string{"binary", "json"} }

// Detect picks the decoder for a received datagram: binary if the magic
// prefix is present, the JSON debug codec otherwise. A JSON envelope starts
// with '{' and can never carry the magic, so detection is exact for honest
// traffic; garbage lands in whichever decoder its first bytes resemble and
// is rejected there.
func Detect(b []byte) Codec {
	if IsBinary(b) {
		return BinaryV1
	}
	return JSONDebug
}
