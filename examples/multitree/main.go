// Multitree: the paper's stated future direction — applying its single-tree
// techniques to multiple-tree delivery. The stream is split into MDC stripes
// delivered over independent trees, so one member failure degrades quality
// (one stripe) instead of interrupting playback. The example compares the
// single-tree baseline against 4-stripe variants, with and without
// interior-node disjointness and per-stripe ROST maintenance.
//
//	go run ./examples/multitree [-size 1500]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multitree:", err)
		os.Exit(1)
	}
}

func run() error {
	size := flag.Int("size", 1500, "steady-state audience size")
	flag.Parse()

	base := omcast.Config{
		Seed:       5,
		TargetSize: *size,
		Warmup:     time.Hour,
		Measure:    time.Hour,
	}
	type variant struct {
		label string
		mt    omcast.MultiTreeConfig
	}
	variants := []variant{
		{"single tree", omcast.MultiTreeConfig{Stripes: 1}},
		{"4 stripes, split bandwidth", omcast.MultiTreeConfig{Stripes: 4, Quorum: 3}},
		{"4 stripes, interior-disjoint", omcast.MultiTreeConfig{Stripes: 4, Quorum: 3, Disjoint: true}},
		{"4 stripes, split + ROST", omcast.MultiTreeConfig{Stripes: 4, Quorum: 3, UseROST: true}},
	}
	fmt.Printf("audience %d; MDC quorum 3 of 4 stripes (one description of slack)\n\n", *size)
	fmt.Printf("%-32s %14s %16s %12s\n", "configuration", "outage ratio", "delivery ratio", "tree depths")
	for _, v := range variants {
		res, err := omcast.RunMultiTree(base, v.mt)
		if err != nil {
			return err
		}
		fmt.Printf("%-32s %13.3f%% %15.2f%% %12v\n",
			v.label, res.OutageRatio*100, res.FullQualityRatio*100, res.MaxDepths)
	}
	fmt.Println("\n(outage = view time below the MDC quorum, the multi-tree analogue of the paper's")
	fmt.Println("starving-time ratio; the coding slack absorbs single-stripe disruptions, which is")
	fmt.Println("why the striped variants suffer far fewer outages than the single tree)")
	return nil
}
