// Package eventsim is a no-wallclock fixture: the directory name places it
// inside the simulated-kernel scope of the default config.
package eventsim

import "time"

// Clock exercises the forbidden wall-clock API.
type Clock struct {
	now time.Duration
}

func bad() time.Time {
	return time.Now() // want `no-wallclock: time\.Now reads the wall clock`
}

func badSince(t time.Time) time.Duration {
	return time.Since(t) // want `no-wallclock: time\.Since reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Second) // want `no-wallclock: time\.Sleep reads the wall clock`
}

func badTimer() {
	_ = time.NewTicker(time.Second) // want `no-wallclock: time\.NewTicker reads the wall clock`
}

func okVirtual(c *Clock) time.Duration {
	// Virtual-time arithmetic on time.Duration stays legal.
	return c.now + 3*time.Second
}

func okSuppressed() time.Time {
	//lint:ignore no-wallclock reason: fixture: justified suppression on the next line
	return time.Now()
}

func okSuppressedTrailing() time.Time {
	return time.Now() //lint:ignore no-wallclock reason: fixture: justified trailing suppression
}
