package xrand

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// paperBandwidth is the bandwidth distribution from the paper's setup
// (Section 5): shape 1.2, bounds [0.5, 100].
var paperBandwidth = BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 100}

// paperLifetime is the lifetime distribution from the paper's setup:
// lognormal with location 5.5 and shape 2.0.
var paperLifetime = Lognormal{Mu: 5.5, Sigma: 2.0}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(42, "topology")
	b := NewNamed(42, "churn")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently named streams agreed on %d of 1000 draws", same)
	}
}

func TestNamedStreamsReproducible(t *testing.T) {
	a := NewNamed(7, "x")
	b := NewNamed(7, "x")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,name) produced diverging streams")
		}
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	s := New(1)
	for i := 0; i < 100000; i++ {
		x := paperBandwidth.Sample(s)
		if x < paperBandwidth.Lo || x > paperBandwidth.Hi {
			t.Fatalf("sample %g outside [%g,%g]", x, paperBandwidth.Lo, paperBandwidth.Hi)
		}
	}
}

// TestBoundedParetoFreeRiderFraction checks the paper's headline workload
// property: with shape 1.2 and bounds [0.5,100], 55.5% of members have
// bandwidth below the stream rate of 1 and are therefore free-riders.
func TestBoundedParetoFreeRiderFraction(t *testing.T) {
	// The exact F(1) for these parameters is 0.5657; the paper rounds this
	// to "55.5%". Accept the analytic value within 2% of the quoted figure.
	want := paperBandwidth.CDF(1.0)
	if math.Abs(want-0.555) > 0.02 {
		t.Fatalf("analytic F(1) = %.4f, paper says 0.555", want)
	}
	s := New(2)
	const n = 200000
	free := 0
	for i := 0; i < n; i++ {
		if paperBandwidth.Sample(s) < 1.0 {
			free++
		}
	}
	got := float64(free) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical free-rider fraction %.4f, want %.4f", got, want)
	}
}

// TestBoundedParetoSuperNodes checks that a small population of super-nodes
// with out-degree above 20 exists, as the paper states.
func TestBoundedParetoSuperNodes(t *testing.T) {
	s := New(3)
	const n = 200000
	super := 0
	for i := 0; i < n; i++ {
		if paperBandwidth.Sample(s) > 20 {
			super++
		}
	}
	frac := float64(super) / n
	if frac <= 0 || frac > 0.05 {
		t.Fatalf("super-node fraction %.5f, want small but positive", frac)
	}
}

// TestBoundedParetoCDFMatch compares the empirical CDF against the analytic
// CDF at several quantiles (a Kolmogorov-style check).
func TestBoundedParetoCDFMatch(t *testing.T) {
	s := New(4)
	const n = 100000
	points := []float64{0.6, 1, 2, 5, 10, 50}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		x := paperBandwidth.Sample(s)
		for j, p := range points {
			if x <= p {
				counts[j]++
			}
		}
	}
	for j, p := range points {
		emp := float64(counts[j]) / n
		ana := paperBandwidth.CDF(p)
		if math.Abs(emp-ana) > 0.01 {
			t.Errorf("at x=%g: empirical CDF %.4f vs analytic %.4f", p, emp, ana)
		}
	}
}

func TestBoundedParetoCDFProperties(t *testing.T) {
	// CDF is monotone and maps the support onto [0,1].
	f := func(a, b float64) bool {
		x := 0.5 + math.Mod(math.Abs(a), 99.5)
		y := 0.5 + math.Mod(math.Abs(b), 99.5)
		if x > y {
			x, y = y, x
		}
		cx, cy := paperBandwidth.CDF(x), paperBandwidth.CDF(y)
		return cx >= 0 && cy <= 1 && cx <= cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLognormalMean checks the paper's claim that the mean lifetime is 1809
// seconds (it quotes Little's law with that mean).
func TestLognormalMean(t *testing.T) {
	if m := paperLifetime.Mean(); math.Abs(m-1808.04) > 1 {
		t.Fatalf("analytic mean %.2f, want ~1808", m)
	}
}

func TestLognormalMedian(t *testing.T) {
	// Median of lognormal is exp(mu) ~ 245 s; check the empirical median.
	s := New(5)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = paperLifetime.Sample(s)
	}
	below := 0
	want := math.Exp(paperLifetime.Mu)
	for _, x := range xs {
		if x < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below analytic median = %.4f, want ~0.5", frac)
	}
}

func TestLognormalCDF(t *testing.T) {
	if got := paperLifetime.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %g, want 0", got)
	}
	if got := paperLifetime.CDF(math.Exp(5.5)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF(median) = %g, want 0.5", got)
	}
	if got := paperLifetime.CDF(1e12); got < 0.999 {
		t.Fatalf("CDF(huge) = %g, want ~1", got)
	}
}

func TestLognormalSamplesPositive(t *testing.T) {
	s := New(6)
	for i := 0; i < 10000; i++ {
		if x := paperLifetime.Sample(s); x <= 0 {
			t.Fatalf("non-positive lifetime %g", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(7)
	e := Exponential{Rate: 4.42} // ~ 8000/1809, the paper's arrival rate at M=8000
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += e.Sample(s)
	}
	mean := sum / n
	want := 1 / e.Rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("empirical mean gap %.5f, want %.5f", mean, want)
	}
}

func TestExponentialDuration(t *testing.T) {
	s := New(8)
	e := Exponential{Rate: 1}
	for i := 0; i < 1000; i++ {
		if d := e.SampleDuration(s); d < 0 {
			t.Fatalf("negative duration %v", d)
		}
	}
}

func TestUniformDuration(t *testing.T) {
	s := New(9)
	lo, hi := 15*time.Millisecond, 25*time.Millisecond
	for i := 0; i < 10000; i++ {
		d := s.UniformDuration(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("draw %v outside [%v,%v)", d, lo, hi)
		}
	}
	// Degenerate range returns lo.
	if d := s.UniformDuration(lo, lo); d != lo {
		t.Fatalf("degenerate range returned %v, want %v", d, lo)
	}
}

func TestUniform(t *testing.T) {
	s := New(10)
	for i := 0; i < 10000; i++ {
		x := s.Uniform(-3, 7)
		if x < -3 || x >= 7 {
			t.Fatalf("draw %g outside [-3,7)", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestIntn(t *testing.T) {
	s := New(20)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(21)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 = %d", v)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(22)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if v < 0 || v >= len(xs) || seen[v] {
			t.Fatalf("shuffle broke the permutation: %v", xs)
		}
		seen[v] = true
	}
}

// TestLognormalSamplePropertyPositive: any (mu, sigma) within a sane range
// yields positive samples.
func TestLognormalSamplePropertyPositive(t *testing.T) {
	f := func(muRaw, sigmaRaw float64, seed int64) bool {
		mu := math.Mod(math.Abs(muRaw), 10)
		sigma := 0.1 + math.Mod(math.Abs(sigmaRaw), 3)
		l := Lognormal{Mu: mu, Sigma: sigma}
		s := New(seed)
		for i := 0; i < 20; i++ {
			if l.Sample(s) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedParetoSamplePropertySupport: samples stay within [Lo, Hi] for
// arbitrary valid parameters.
func TestBoundedParetoSamplePropertySupport(t *testing.T) {
	f := func(shapeRaw, loRaw, spanRaw float64, seed int64) bool {
		shape := 0.2 + math.Mod(math.Abs(shapeRaw), 3)
		lo := 0.1 + math.Mod(math.Abs(loRaw), 5)
		hi := lo + 0.5 + math.Mod(math.Abs(spanRaw), 100)
		p := BoundedPareto{Shape: shape, Lo: lo, Hi: hi}
		s := New(seed)
		for i := 0; i < 20; i++ {
			if x := p.Sample(s); x < lo || x > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
