package wire

import (
	"reflect"
	"testing"
)

// TestGoldenEnvelopes pins the exact on-wire bytes of every message type
// with all of its optional fields populated. A diff here is a wire-format
// break: old and new nodes would stop interoperating (and every checked-in
// fuzz corpus entry would rot), so changes must be deliberate.
func TestGoldenEnvelopes(t *testing.T) {
	cases := []struct {
		env    Envelope
		golden string
	}{
		{
			Envelope{Type: TypeJoin, From: "j", Bandwidth: 3.5},
			`{"type":1,"from":"j","bandwidth":3.5}`,
		},
		{
			Envelope{Type: TypeAccept, From: "p", Depth: 2},
			`{"type":2,"from":"p","depth":2}`,
		},
		{
			Envelope{Type: TypeReject, From: "p"},
			`{"type":3,"from":"p"}`,
		},
		{
			Envelope{Type: TypeLeave, From: "c"},
			`{"type":4,"from":"c"}`,
		},
		{
			Envelope{Type: TypeHeartbeat, From: "p", Bandwidth: 3, Depth: 1, Seq: 7, BTP: 42.5},
			`{"type":5,"from":"p","bandwidth":3,"depth":1,"seq":7,"btp":42.5}`,
		},
		{
			Envelope{Type: TypePacket, From: "s", Packet: 100, Payload: []byte{1, 2, 3}},
			`{"type":6,"from":"s","packet":100,"payload":"AQID"}`,
		},
		{
			Envelope{Type: TypeELN, From: "p", FirstMissing: 10, LastMissing: 20},
			`{"type":7,"from":"p","first_missing":10,"last_missing":20}`,
		},
		{
			Envelope{Type: TypeRepairRequest, From: "a", FirstMissing: 5, LastMissing: 25,
				Chain: []Addr{"r2", "r3"}, Requester: "orig", Epsilon: 0.25},
			`{"type":8,"from":"a","first_missing":5,"last_missing":25,"chain":["r2","r3"],"requester":"orig","epsilon":0.25}`,
		},
		{
			Envelope{Type: TypeRepairData, From: "r", Packet: 15, Payload: []byte("x")},
			`{"type":9,"from":"r","packet":15,"payload":"eA=="}`,
		},
		{
			Envelope{Type: TypeMembershipRequest, From: "a", Limit: 100,
				Members: []MemberInfo{{Addr: "a", Depth: 2, Spare: 1, Bandwidth: 3}}},
			`{"type":10,"from":"a","members":[{"addr":"a","depth":2,"spare":1,"bandwidth":3}],"limit":100}`,
		},
		{
			Envelope{Type: TypeMembershipReply, From: "b", Members: []MemberInfo{
				{Addr: "m1", Depth: 3, Spare: 2, Bandwidth: 4, Ancestors: []Addr{"p", "root"}},
			}},
			`{"type":11,"from":"b","members":[{"addr":"m1","depth":3,"spare":2,"bandwidth":4,"ancestors":["p","root"]}]}`,
		},
		{
			Envelope{Type: TypeSwitchPropose, From: "c", BTP: 123.4},
			`{"type":12,"from":"c","btp":123.4}`,
		},
		{
			Envelope{Type: TypeSwitchAccept, From: "p", NewParent: "gp"},
			`{"type":13,"from":"p","new_parent":"gp"}`,
		},
		{
			Envelope{Type: TypeSwitchReject, From: "p"},
			`{"type":14,"from":"p"}`,
		},
		{
			Envelope{Type: TypeSwitchCommit, From: "i", Chain: []Addr{"old"}, NewParent: "np"},
			`{"type":15,"from":"i","chain":["old"],"new_parent":"np"}`,
		},
		{
			Envelope{Type: TypeAck, From: "r", Ctrl: 9},
			`{"type":16,"from":"r","ctrl":9}`,
		},
	}
	covered := map[Type]bool{}
	for _, tc := range cases {
		covered[tc.env.Type] = true
		b, err := Encode(tc.env)
		if err != nil {
			t.Fatalf("Encode(%v): %v", tc.env.Type, err)
		}
		if string(b) != tc.golden {
			t.Errorf("%v encoding drifted:\n got  %s\n want %s", tc.env.Type, b, tc.golden)
		}
		got, err := Decode([]byte(tc.golden))
		if err != nil {
			t.Fatalf("Decode(%v golden): %v", tc.env.Type, err)
		}
		if !reflect.DeepEqual(got, tc.env) {
			t.Errorf("%v golden round trip changed the envelope:\n got  %+v\n want %+v", tc.env.Type, got, tc.env)
		}
	}
	for ty := TypeJoin; ty <= TypeAck; ty++ {
		if !covered[ty] {
			t.Errorf("no golden case for %v", ty)
		}
	}
}
