package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ruleWireTaint checks the decode→validate→use discipline for untrusted wire
// input, turning PR 4's validation vocabulary from a convention into a
// checked invariant.
//
// Sources: calls to Decode-prefixed functions of any package named "wire".
// The plain Decode flavor parses AND validates, so its result is trusted as
// soon as the paired error has been observed; Decode*Raw flavors parse only,
// so their results stay tainted until an explicit sanitizer runs.
//
// Sanitizers: observing the error of wire.Validate* applied to the value
// (err := wire.Validate(env); if err != nil {...}), a wire.Valid* boolean
// predicate guarding a branch (if !wire.ValidAddr(a) { return }), or — for
// the plain Decode flavor — observing its own decode error.
//
// Sinks: (1) stores through selectors, indexes or pointers in the packages
// holding protocol state (Config.TaintStatePackages); (2) arguments to
// functions of the protocol-decision packages (Config.TaintProtocolPackages);
// (3) map/slice index expressions and map deletes, module-wide — an
// attacker-chosen key is memory amplification and probe traffic no matter
// where it lands.
//
// The analysis is interprocedural two ways: a fixpoint over function
// summaries records (a) which functions return unvalidated wire data
// (derived sources) and which return their own parameters (passthrough), and
// (b) which parameters of which functions reach a sink (param sinks,
// transitively). A call passing a tainted value to a param-sink parameter is
// reported at the call site. Functions of the wire packages themselves are
// the trust boundary and get no summaries.
func ruleWireTaint() *Rule {
	return &Rule{
		Name: "wire-taint",
		Doc:  "track unvalidated wire-decode results into protocol state, protocol logic, and map/slice indexes",
		check: func(m *Module, cfg *Config, rep *reporter) {
			a := &taintAnalysis{
				cfg:       cfg,
				summaries: make(map[*types.Func]*taintSummary),
				derived:   make(map[*types.Func]string),
			}
			// Summary fixpoint: param sinks, passthrough and derived sources
			// propagate through call chains until stable.
			for range [10]int{} {
				a.changed = false
				a.pass(m, true, nil)
				if !a.changed {
					break
				}
			}
			a.pass(m, false, rep)
		},
	}
}

// taintVal is the provenance of one tainted value.
type taintVal struct {
	// desc names the origin for diagnostics.
	desc string
	// errObj, when set, is the decode error whose observation sanitizes the
	// value (the plain-Decode contract, or a bound wire.Validate result).
	errObj types.Object
	// paramIdx >= 0 marks summary-mode taint seeded from a parameter.
	paramIdx int
}

// taintState maps in-scope objects to their taint.
type taintState map[types.Object]*taintVal

func (st taintState) clone() taintState {
	out := make(taintState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// taintSummary is the interprocedural record for one function.
type taintSummary struct {
	// paramSinks maps a parameter index to a description of the sink that
	// parameter (transitively) reaches.
	paramSinks map[int]string
	// passthrough marks parameters returned (still tainted) to the caller.
	passthrough map[int]bool
}

type taintAnalysis struct {
	cfg       *Config
	summaries map[*types.Func]*taintSummary
	derived   map[*types.Func]string
	changed   bool

	// Per-pass fields.
	summaryMode bool
	rep         *reporter
	pkg         *Package
	fn          *types.Func
	cur         *taintSummary
}

// pass runs one sweep over every declared function body in the module.
func (a *taintAnalysis) pass(m *Module, summaryMode bool, rep *reporter) {
	a.summaryMode, a.rep = summaryMode, rep
	for _, pkg := range m.Pkgs {
		a.pkg = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.ObjectOf(fd.Name).(*types.Func)
				if !ok {
					continue
				}
				a.fn = fn
				st := make(taintState)
				if summaryMode {
					if isWireFunc(fn) {
						continue // the trust boundary itself
					}
					a.cur = &taintSummary{paramSinks: make(map[int]string), passthrough: make(map[int]bool)}
					sig := fn.Type().(*types.Signature)
					for i := 0; i < sig.Params().Len(); i++ {
						p := sig.Params().At(i)
						st[p] = &taintVal{desc: "parameter " + p.Name(), paramIdx: i}
					}
				}
				a.block(fd.Body.List, st)
				if summaryMode {
					a.mergeSummary(fn)
				}
			}
		}
	}
}

func (a *taintAnalysis) mergeSummary(fn *types.Func) {
	old := a.summaries[fn]
	if old == nil {
		if len(a.cur.paramSinks) > 0 || len(a.cur.passthrough) > 0 {
			a.summaries[fn] = a.cur
			a.changed = true
		}
		return
	}
	for i, d := range a.cur.paramSinks {
		if _, ok := old.paramSinks[i]; !ok {
			old.paramSinks[i] = d
			a.changed = true
		}
	}
	for i := range a.cur.passthrough {
		if !old.passthrough[i] {
			old.passthrough[i] = true
			a.changed = true
		}
	}
}

// isWireFunc reports whether fn belongs to a package named "wire".
func isWireFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "wire"
}

// calleeFunc resolves a call's static target, if any.
func (a *taintAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// sourceCall classifies a call as a wire decode source. raw sources need an
// explicit sanitizer; non-raw (full Decode) sources are clean once their
// error result is observed.
func (a *taintAnalysis) sourceCall(call *ast.CallExpr) (desc string, raw, ok bool) {
	fn := a.calleeFunc(call)
	if fn == nil {
		return "", false, false
	}
	if isWireFunc(fn) && strings.HasPrefix(fn.Name(), "Decode") {
		if strings.HasSuffix(fn.Name(), "Raw") {
			return fmt.Sprintf("wire.%s result, parse-only and never validated", fn.Name()), true, true
		}
		return fmt.Sprintf("wire.%s result used before its error is checked", fn.Name()), false, true
	}
	if d, isDerived := a.derived[fn]; isDerived {
		return d, true, true
	}
	return "", false, false
}

// sanitizerKind classifies wire.Valid* calls: "err" for Validate* returning
// error, "bool" for Valid* predicates returning bool.
func (a *taintAnalysis) sanitizerKind(call *ast.CallExpr) string {
	fn := a.calleeFunc(call)
	if fn == nil || !isWireFunc(fn) || !strings.HasPrefix(fn.Name(), "Valid") {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return ""
	}
	switch t := sig.Results().At(0).Type(); {
	case types.Identical(t, types.Universe.Lookup("error").Type()):
		return "err"
	case types.Identical(t, types.Typ[types.Bool]):
		return "bool"
	}
	return ""
}

// taintedObjs returns the state objects referenced by expr (the tainted
// values flowing through it), skipping nested function literals.
func (a *taintAnalysis) taintedObjs(st taintState, expr ast.Expr) []types.Object {
	if expr == nil {
		return nil
	}
	var out []types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			obj := a.pkg.Info.ObjectOf(id)
			if obj != nil {
				if _, tainted := st[obj]; tainted {
					out = append(out, obj)
				}
			}
		}
		return true
	})
	return out
}

func (a *taintAnalysis) taintOf(st taintState, expr ast.Expr) *taintVal {
	objs := a.taintedObjs(st, expr)
	if len(objs) == 0 {
		return nil
	}
	return st[objs[0]]
}

// sink reports (report mode) or records (summary mode, param-derived taint)
// one tainted flow into a sink.
func (a *taintAnalysis) sink(st taintState, pos token.Pos, v *taintVal, sinkDesc, advice string) {
	if v == nil {
		return
	}
	if a.summaryMode {
		if v.paramIdx >= 0 {
			if _, ok := a.cur.paramSinks[v.paramIdx]; !ok {
				a.cur.paramSinks[v.paramIdx] = sinkDesc
			}
		}
		return
	}
	if v.paramIdx >= 0 {
		return // param taint never seeds the report pass
	}
	a.rep.reportf(pos, "unvalidated wire input (%s) %s; %s", v.desc, sinkDesc, advice)
}

// scanExpr looks for sinks inside one expression tree and walks nested
// function literals with a snapshot of the current state.
func (a *taintAnalysis) scanExpr(st taintState, expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.block(n.Body.List, st.clone())
			return false
		case *ast.IndexExpr:
			if v := a.taintOf(st, n.Index); v != nil {
				a.sink(st, n.Index.Pos(), v, "used as a map/slice index",
					"an attacker chooses this key; validate the envelope first (wire.Validate or the decode error)")
			}
		case *ast.CallExpr:
			a.scanCallSinks(st, n)
		}
		return true
	})
}

// scanCallSinks checks one call expression's arguments against the sink
// vocabulary: map deletes, protocol-package calls, and param-sink summaries.
func (a *taintAnalysis) scanCallSinks(st taintState, call *ast.CallExpr) {
	if isBuiltin(a.pkg, call.Fun, "delete") && len(call.Args) == 2 {
		if v := a.taintOf(st, call.Args[1]); v != nil {
			a.sink(st, call.Args[1].Pos(), v, "used as a map delete key",
				"an attacker chooses this key; validate the envelope first")
		}
		return
	}
	fn := a.calleeFunc(call)
	if fn == nil || isWireFunc(fn) {
		return // sanitizer/source calls are not sinks
	}
	if fn.Pkg() != nil && matchPackage(fn.Pkg().Path(), a.cfg.TaintProtocolPackages) {
		for _, arg := range call.Args {
			if v := a.taintOf(st, arg); v != nil {
				a.sink(st, arg.Pos(), v,
					fmt.Sprintf("passed into protocol logic %s.%s", fn.Pkg().Name(), fn.Name()),
					"recovery and switching decisions must only see validated envelopes")
				return
			}
		}
		return
	}
	if sum := a.summaries[fn]; sum != nil {
		for i, arg := range call.Args {
			if i >= len(call.Args) {
				break
			}
			if desc, isSink := sum.paramSinks[i]; isSink {
				if v := a.taintOf(st, arg); v != nil {
					a.sink(st, arg.Pos(), v,
						fmt.Sprintf("passed to %s, where parameter %d is %s", fn.Name(), i, desc),
						"validate before the value crosses into state-touching helpers")
					return
				}
			}
		}
	}
}

// block walks a statement list, threading taint state; returns true when the
// list always terminates (return/branch/panic).
func (a *taintAnalysis) block(stmts []ast.Stmt, st taintState) bool {
	for _, s := range stmts {
		if a.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt interprets one statement; returns true when control cannot fall
// through (return, branch, panic-like call).
func (a *taintAnalysis) stmt(s ast.Stmt, st taintState) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return a.block(s.List, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.scanExpr(st, r)
			if a.summaryMode {
				a.recordReturn(st, r)
			}
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		a.scanExpr(st, s.X)
		return isTerminalCall(s.X)
	case *ast.AssignStmt:
		a.assign(st, s)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					if rhs != nil {
						a.scanExpr(st, rhs)
						a.bindIdent(st, name, a.taintOf(st, rhs))
					}
				}
			}
		}
		return false
	case *ast.IfStmt:
		return a.ifStmt(st, s)
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.scanExpr(st, s.Cond)
		body := st.clone()
		a.block(s.Body.List, body)
		if s.Post != nil {
			a.stmt(s.Post, body)
		}
		return false
	case *ast.RangeStmt:
		a.scanExpr(st, s.X)
		body := st.clone()
		if v := a.taintOf(st, s.X); v != nil {
			// Ranging over tainted data taints the element bindings.
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					a.bindIdent(body, id, v)
				}
			}
		}
		a.block(s.Body.List, body)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.scanExpr(st, s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cs := st.clone()
				for _, e := range cc.List {
					a.scanExpr(cs, e)
				}
				a.block(cc.Body, cs)
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.block(cc.Body, st.clone())
			}
		}
		return false
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cs := st.clone()
				if cc.Comm != nil {
					a.stmt(cc.Comm, cs)
				}
				a.block(cc.Body, cs)
			}
		}
		return false
	case *ast.DeferStmt:
		a.scanExpr(st, s.Call)
		return false
	case *ast.GoStmt:
		a.scanExpr(st, s.Call)
		return false
	case *ast.IncDecStmt:
		a.scanExpr(st, s.X)
		return false
	case *ast.SendStmt:
		a.scanExpr(st, s.Chan)
		a.scanExpr(st, s.Value)
		return false
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	}
	return false
}

// recordReturn notes (summary mode) that a tainted value escapes to the
// caller: param passthrough or a derived source.
func (a *taintAnalysis) recordReturn(st taintState, r ast.Expr) {
	v := a.taintOf(st, r)
	if v == nil {
		return
	}
	if v.paramIdx >= 0 {
		a.cur.passthrough[v.paramIdx] = true
		return
	}
	if v.errObj != nil {
		// Re-returning a Decode result alongside its error is the
		// attribution contract (wire.Decode itself does it); the caller's
		// own error check sanitizes, so this is not a derived source.
		return
	}
	if _, ok := a.derived[a.fn]; !ok {
		a.derived[a.fn] = fmt.Sprintf("unvalidated wire value returned by %s", a.fn.Name())
		a.changed = true
	}
}

// assign scans both sides for sinks, then updates bindings.
func (a *taintAnalysis) assign(st taintState, s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		a.scanExpr(st, r)
	}
	for _, l := range s.Lhs {
		a.scanExpr(st, l)
	}
	// Store sinks: a tainted RHS written through a selector/index/pointer in
	// a protocol-state package.
	if matchPackage(a.pkg.Path, a.cfg.TaintStatePackages) {
		for i, l := range s.Lhs {
			if !isNonLocalTarget(l) {
				continue
			}
			var v *taintVal
			if len(s.Rhs) == len(s.Lhs) {
				v = a.taintOf(st, s.Rhs[i])
			} else if len(s.Rhs) == 1 {
				v = a.taintOf(st, s.Rhs[0])
			}
			if v != nil {
				a.sink(st, l.Pos(), v, "stored into shared protocol state",
					"validate the envelope before any of it lands in node state")
			}
		}
	}
	a.bind(st, s.Lhs, s.Rhs)
}

// bind updates taint bindings for one assignment.
func (a *taintAnalysis) bind(st taintState, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			a.bindCall(st, lhs, call)
			return
		}
		// Tuple-free or comma-ok forms: v, ok := m[k] / x.(T) — taint flows
		// into the first binding only (the ok/err slot is a clean boolean).
		v := a.taintOf(st, rhs[0])
		for i, l := range lhs {
			if id, ok := l.(*ast.Ident); ok {
				if i == 0 {
					a.bindIdent(st, id, v)
				} else {
					a.bindIdent(st, id, nil)
				}
			}
		}
		return
	}
	for i, l := range lhs {
		var v *taintVal
		if i < len(rhs) {
			v = a.taintOf(st, rhs[i])
		}
		if id, ok := l.(*ast.Ident); ok {
			a.bindIdent(st, id, v)
		}
	}
}

// bindCall handles the call-result binding forms: sources, sanitizers,
// passthrough summaries, and the append builtin; all other call results are
// treated as clean (a documented false-negative edge — taint does not
// launder through untracked calls, see DESIGN.md §13).
func (a *taintAnalysis) bindCall(st taintState, lhs []ast.Expr, call *ast.CallExpr) {
	if desc, raw, isSrc := a.sourceCall(call); isSrc {
		v := &taintVal{desc: desc, paramIdx: -1}
		if !raw && len(lhs) == 2 {
			if errID, ok := lhs[1].(*ast.Ident); ok {
				v.errObj = a.pkg.Info.ObjectOf(errID)
			}
		}
		if id, ok := lhs[0].(*ast.Ident); ok {
			a.bindIdent(st, id, v)
		}
		for _, l := range lhs[1:] {
			if id, ok := l.(*ast.Ident); ok && a.pkg.Info.ObjectOf(id) != v.errObj {
				a.bindIdent(st, id, nil)
			}
		}
		return
	}
	if a.sanitizerKind(call) == "err" && len(lhs) == 1 {
		// err := wire.Validate(env): observing err sanitizes env.
		if errID, ok := lhs[0].(*ast.Ident); ok {
			errObj := a.pkg.Info.ObjectOf(errID)
			for _, obj := range a.argObjs(st, call) {
				st[obj] = &taintVal{desc: st[obj].desc, errObj: errObj, paramIdx: st[obj].paramIdx}
			}
			a.bindIdent(st, errID, nil)
		}
		return
	}
	var v *taintVal
	if isBuiltin(a.pkg, call.Fun, "append") {
		v = a.taintOf(st, call)
	} else if fn := a.calleeFunc(call); fn != nil {
		if sum := a.summaries[fn]; sum != nil {
			for i, arg := range call.Args {
				if sum.passthrough[i] {
					if av := a.taintOf(st, arg); av != nil {
						v = av
						break
					}
				}
			}
		}
	}
	for i, l := range lhs {
		if id, ok := l.(*ast.Ident); ok {
			if i == 0 {
				a.bindIdent(st, id, v)
			} else {
				a.bindIdent(st, id, nil)
			}
		}
	}
}

// argObjs collects the tainted objects referenced by a call's arguments.
func (a *taintAnalysis) argObjs(st taintState, call *ast.CallExpr) []types.Object {
	var out []types.Object
	for _, arg := range call.Args {
		out = append(out, a.taintedObjs(st, arg)...)
	}
	return out
}

func (a *taintAnalysis) bindIdent(st taintState, id *ast.Ident, v *taintVal) {
	if id.Name == "_" {
		return
	}
	obj := a.pkg.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if v == nil {
		delete(st, obj)
		return
	}
	st[obj] = v
}

// ifStmt handles branch-sensitive sanitization: error observations and
// wire.Valid* predicates clear taint on the branch where the check passed,
// and past the whole statement when the failing branch cannot fall through.
func (a *taintAnalysis) ifStmt(st taintState, s *ast.IfStmt) bool {
	if s.Init != nil {
		a.stmt(s.Init, st)
	}
	a.scanExpr(st, s.Cond)
	trueClean, falseClean := a.condFacts(st, s.Cond)
	thenSt := st.clone()
	clearAll(thenSt, trueClean)
	thenTerm := a.block(s.Body.List, thenSt)
	var elseTerm bool
	var elseSt taintState
	if s.Else != nil {
		elseSt = st.clone()
		clearAll(elseSt, falseClean)
		elseTerm = a.stmt(s.Else, elseSt)
	}
	switch {
	case s.Else == nil:
		if thenTerm {
			// if bad { return }: fallthrough implies the cond was false.
			clearAll(st, falseClean)
		}
		return false
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		clearAll(st, falseClean)
		return false
	case elseTerm:
		clearAll(st, trueClean)
		return false
	default:
		return false
	}
}

func clearAll(st taintState, objs []types.Object) {
	for _, o := range objs {
		delete(st, o)
	}
}

// condFacts derives sanitization facts from a branch condition: the objects
// known clean when the condition is true, and when it is false.
func (a *taintAnalysis) condFacts(st taintState, cond ast.Expr) (trueClean, falseClean []types.Object) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			fc, tc := a.condFacts(st, c.X)
			return tc, fc
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			// Both conjuncts held when true; nothing known when false.
			xt, _ := a.condFacts(st, c.X)
			yt, _ := a.condFacts(st, c.Y)
			return append(xt, yt...), nil
		case token.LOR:
			// Nothing known when true; both disjuncts failed when false.
			_, xf := a.condFacts(st, c.X)
			_, yf := a.condFacts(st, c.Y)
			return nil, append(xf, yf...)
		case token.EQL, token.NEQ:
			other, ok := nilComparand(c)
			if !ok {
				return nil, nil
			}
			var objs []types.Object
			switch o := ast.Unparen(other).(type) {
			case *ast.Ident:
				// err ==/!= nil where err sanitizes bound values.
				errObj := a.pkg.Info.ObjectOf(o)
				if errObj == nil {
					return nil, nil
				}
				for obj, v := range st {
					if v.errObj == errObj {
						objs = append(objs, obj)
					}
				}
			case *ast.CallExpr:
				// wire.Validate(env) ==/!= nil inline.
				if a.sanitizerKind(o) == "err" {
					objs = a.argObjs(st, o)
				}
			}
			if c.Op == token.EQL { // == nil: check passed on the true branch
				return objs, nil
			}
			return nil, objs // != nil: check passed on the false branch
		}
	case *ast.CallExpr:
		if a.sanitizerKind(c) == "bool" {
			return a.argObjs(st, c), nil
		}
	}
	return nil, nil
}

// nilComparand returns the non-nil side of a comparison against nil.
func nilComparand(c *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilIdent(c.X) {
		return c.Y, true
	}
	if isNilIdent(c.Y) {
		return c.X, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isTerminalCall recognizes calls that never return (panic, os.Exit,
// log.Fatal*), treated as terminators for branch joins.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return (x.Name == "os" && fun.Sel.Name == "Exit") ||
				(x.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"))
		}
	}
	return false
}
