package overlay

import (
	"testing"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func testDelay(a, b topology.NodeID) time.Duration {
	return time.Duration(int(a)+int(b)+1) * time.Millisecond
}

// churnTree drives a random attach/detach/move/remove workload and returns
// the tree plus its live non-root members.
func churnTree(t *testing.T, seed int64, steps int, check func(*Tree)) *Tree {
	t.Helper()
	tree, err := NewTree(0, 100, testDelay)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	var live []*Member
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0: // join
			m := tree.NewMember(topology.NodeID(rng.Intn(1000)), float64(rng.Intn(5)), time.Duration(i)*time.Second)
			parent := tree.Root()
			if len(live) > 0 && rng.Intn(2) == 0 {
				parent = live[rng.Intn(len(live))]
			}
			if err := tree.Attach(m, parent); err != nil {
				// Full or detached parent: fall back to the root.
				_ = tree.Attach(m, tree.Root())
			}
			live = append(live, m)
		case op < 6: // detach + re-attach elsewhere (rejoin)
			m := live[rng.Intn(len(live))]
			if m.Attached() {
				if err := tree.Detach(m); err != nil {
					t.Fatalf("detach: %v", err)
				}
				_ = tree.Attach(m, tree.Root())
			}
		case op < 8: // move
			m := live[rng.Intn(len(live))]
			np := tree.Root()
			if rng.Intn(2) == 0 {
				np = live[rng.Intn(len(live))]
			}
			if m.Attached() && np.Attached() {
				_ = tree.MoveSubtree(m, np) // cycle/full errors are fine
			}
		default: // remove
			k := rng.Intn(len(live))
			m := live[k]
			orphans, err := tree.Remove(m)
			if err != nil {
				t.Fatalf("remove: %v", err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, o := range orphans {
				_ = tree.Attach(o, tree.Root())
			}
		}
		if check != nil {
			check(tree)
		}
	}
	return tree
}

// TestIncrementalMatchesFull is the delta-protocol equivalence test: across
// a random mutation workload, the incremental checker and the full scan must
// agree (both nil on valid trees), at every cadence — per-op incremental
// checks, batched checks, and paranoid mode routing through the full scan.
func TestIncrementalMatchesFull(t *testing.T) {
	step := 0
	churnTree(t, 11, 800, func(tree *Tree) {
		step++
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("incremental check failed on valid tree: %v", err)
		}
		if step%50 == 0 {
			if err := tree.CheckInvariantsFull(); err != nil {
				t.Fatalf("full check failed on valid tree: %v", err)
			}
		}
	})
	// Batched: many mutations between incremental checks.
	step = 0
	churnTree(t, 12, 800, func(tree *Tree) {
		step++
		if step%97 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("batched incremental check failed: %v", err)
			}
			if err := tree.CheckInvariantsFull(); err != nil {
				t.Fatalf("batched full check failed: %v", err)
			}
		}
	})
	// Paranoid mode: CheckInvariants is the full scan.
	tree := churnTree(t, 13, 200, nil)
	tree.SetParanoid(true)
	if !tree.Paranoid() {
		t.Fatal("SetParanoid(true) not reported")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("paranoid check failed on valid tree: %v", err)
	}
}

// TestInvariantCheckersCatchCorruption injects corruption directly into the
// struct-of-arrays state and requires BOTH checkers to report it: the full
// scan unconditionally, the incremental one once the touched member is in
// the dirty set (as it would be after any real mutation).
func TestInvariantCheckersCatchCorruption(t *testing.T) {
	build := func() (*Tree, *Member, *Member) {
		tree, err := NewTree(0, 100, testDelay)
		if err != nil {
			t.Fatal(err)
		}
		a := tree.NewMember(1, 4, 0)
		b := tree.NewMember(2, 4, 0)
		c := tree.NewMember(3, 4, 0)
		for _, pair := range [][2]*Member{{a, tree.Root()}, {b, a}, {c, b}} {
			if err := tree.Attach(pair[0], pair[1]); err != nil {
				t.Fatal(err)
			}
		}
		// Start from a clean dirty set so each case controls its own.
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return tree, a, b
	}
	cases := []struct {
		name    string
		corrupt func(tree *Tree, a, b *Member) int32 // returns the idx to dirty
	}{
		{"depth", func(tree *Tree, a, b *Member) int32 {
			tree.depth[b.idx] += 3
			return a.idx // the parent-side walk sees the bad child depth
		}},
		{"path-delay", func(tree *Tree, a, b *Member) int32 {
			tree.pathDelay[b.idx] += time.Second
			return a.idx
		}},
		{"kid-count", func(tree *Tree, a, b *Member) int32 {
			tree.kidCount[a.idx]++
			return a.idx
		}},
		{"parent-link", func(tree *Tree, a, b *Member) int32 {
			tree.parent[b.idx] = tree.root.idx
			return a.idx
		}},
		{"sibling-back-link", func(tree *Tree, a, b *Member) int32 {
			tree.prevSib[b.idx] = b.idx
			return a.idx
		}},
		{"level-slot", func(tree *Tree, a, b *Member) int32 {
			tree.levelIdx[b.idx] = none
			return b.idx
		}},
		{"order-slot", func(tree *Tree, a, b *Member) int32 {
			tree.orderIdx[b.idx] = tree.orderIdx[a.idx]
			return b.idx
		}},
		{"attached-counter", func(tree *Tree, a, b *Member) int32 {
			tree.attachedCount++
			return b.idx
		}},
	}
	for _, tc := range cases {
		tree, a, b := build()
		dirty := tc.corrupt(tree, a, b)
		if err := tree.CheckInvariantsFull(); err == nil {
			t.Errorf("%s: full check missed the corruption", tc.name)
		}
		tree, a, b = build()
		dirty = tc.corrupt(tree, a, b)
		tree.markDirty(dirty)
		if err := tree.CheckInvariants(); err == nil {
			t.Errorf("%s: incremental check missed the corruption on a dirty member", tc.name)
		}
	}
}

// refChildren mirrors the historical children-slice semantics: append on
// attach, swap-remove (last child moves into the vacated slot) on detach.
type refChildren map[MemberID][]MemberID

func (r refChildren) attach(p, c MemberID) { r[p] = append(r[p], c) }

func (r refChildren) detach(p, c MemberID) {
	kids := r[p]
	for i, id := range kids {
		if id == c {
			last := len(kids) - 1
			kids[i] = kids[last]
			r[p] = kids[:last]
			return
		}
	}
}

// TestChildOrderMatchesSliceSemantics is the differential test behind the
// determinism guarantee: the intrusive sibling links must reproduce the
// removed children-slice ordering (append at tail, swap-remove) exactly,
// because child order feeds orphan ordering, level order and pre-order
// traversal — and through them every experiment's RNG stream.
func TestChildOrderMatchesSliceSemantics(t *testing.T) {
	tree, err := NewTree(0, 100, testDelay)
	if err != nil {
		t.Fatal(err)
	}
	ref := refChildren{}
	rng := xrand.New(99)
	var live []*Member
	parentOf := map[MemberID]MemberID{}
	compare := func(step int) {
		t.Helper()
		check := func(m *Member) {
			got := m.Children()
			want := ref[m.ID]
			if len(got) != len(want) {
				t.Fatalf("step %d: member %d has %d children, reference %d", step, m.ID, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i] {
					t.Fatalf("step %d: member %d child %d = %d, reference %d", step, m.ID, i, got[i].ID, want[i])
				}
			}
		}
		check(tree.Root())
		for _, m := range live {
			check(m)
		}
	}
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // join
			m := tree.NewMember(topology.NodeID(rng.Intn(1000)), float64(1+rng.Intn(4)), 0)
			parent := tree.Root()
			if len(live) > 0 && rng.Intn(3) > 0 {
				parent = live[rng.Intn(len(live))]
			}
			if err := tree.Attach(m, parent); err != nil {
				parent = tree.Root()
				if err := tree.Attach(m, parent); err != nil {
					parent = nil // tree is full here; member stays detached
				}
			}
			if parent != nil {
				ref.attach(parent.ID, m.ID)
				parentOf[m.ID] = parent.ID
			}
			live = append(live, m)
		case op < 7: // move
			m := live[rng.Intn(len(live))]
			np := tree.Root()
			if rng.Intn(2) == 0 {
				np = live[rng.Intn(len(live))]
			}
			if !m.Attached() || !np.Attached() {
				continue
			}
			if err := tree.MoveSubtree(m, np); err == nil {
				ref.detach(parentOf[m.ID], m.ID)
				ref.attach(np.ID, m.ID)
				parentOf[m.ID] = np.ID
			}
		default: // remove, orphans rejoin at the root
			k := rng.Intn(len(live))
			m := live[k]
			orphans, err := tree.Remove(m)
			if err != nil {
				t.Fatalf("remove: %v", err)
			}
			if p, ok := parentOf[m.ID]; ok {
				ref.detach(p, m.ID)
			}
			for _, o := range orphans {
				ref.detach(m.ID, o.ID)
			}
			delete(ref, m.ID)
			delete(parentOf, m.ID)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, o := range orphans {
				delete(parentOf, o.ID)
				if err := tree.Attach(o, tree.Root()); err == nil {
					ref.attach(tree.Root().ID, o.ID)
					parentOf[o.ID] = tree.Root().ID
				}
			}
		}
		compare(step)
		if err := tree.CheckInvariantsFull(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Pre-order traversal must follow the same child order.
	var gotOrder []MemberID
	tree.VisitSubtree(tree.Root(), func(m *Member) { gotOrder = append(gotOrder, m.ID) })
	var wantOrder []MemberID
	var walk func(id MemberID)
	walk = func(id MemberID) {
		wantOrder = append(wantOrder, id)
		for _, c := range ref[id] {
			walk(c)
		}
	}
	walk(tree.Root().ID)
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("pre-order visits %d members, reference %d", len(gotOrder), len(wantOrder))
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("pre-order position %d = member %d, reference %d", i, gotOrder[i], wantOrder[i])
		}
	}
}
