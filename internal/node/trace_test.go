package node

import (
	"testing"
	"time"

	"omcast/internal/tracing"
	"omcast/internal/tracing/flight"
)

// attrVal extracts one attribute from a span ("" when absent).
func attrVal(sp tracing.Span, key string) string {
	for _, a := range sp.Attrs {
		if a.K == key {
			return a.V
		}
	}
	return ""
}

// TestSpanInstrumentation boots a traced overlay, kills an interior node and
// asserts the causal span chain the flight recorders captured: every member
// completes a boot join episode, and at least one orphan records a rejoin
// episode (cause=timeout) whose attempt child links back to it.
func TestSpanInstrumentation(t *testing.T) {
	rings := make(map[int]*flight.Ring)
	c := newCluster(t, 12, func(i int, cfg *Config) {
		r := flight.NewRing(0)
		rings[i] = r
		cfg.Trace = r
	})
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "stream warm", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().HighestPacket < 20 {
				return false
			}
		}
		return true
	})

	// Every member's ring holds its completed boot join episode.
	for i, nd := range c.nodes {
		var joined bool
		for _, sp := range rings[i].Snapshot() {
			if sp.Kind == tracing.KindJoin && sp.Outcome == "attached" {
				joined = true
				if sp.Node != string(nd.Addr()) {
					t.Fatalf("join span node = %q, want %q", sp.Node, nd.Addr())
				}
				if attrVal(sp, "cause") != "boot" {
					t.Fatalf("join span cause = %q, want boot", attrVal(sp, "cause"))
				}
			}
		}
		if !joined {
			t.Fatalf("node %d recorded no completed join span", i)
		}
	}

	var victim *Node
	for _, nd := range c.nodes {
		if nd.Stats().Children > 0 {
			victim = nd
			break
		}
	}
	if victim == nil {
		t.Skip("no interior member in this layout")
	}
	victim.Kill()
	eventually(t, 8*time.Second, "survivors re-attached", func() bool {
		for _, nd := range c.nodes {
			if nd == victim {
				continue
			}
			s := nd.Stats()
			if !s.Attached || s.Parent == victim.Addr() {
				return false
			}
		}
		return true
	})

	// At least one survivor completed a rejoin episode caused by the
	// heartbeat timeout, with an accepted attempt child inside it.
	var sawRejoin, sawLinkedAttempt bool
	for i, nd := range c.nodes {
		if nd == victim {
			continue
		}
		spans := rings[i].Snapshot()
		episodes := make(map[string]bool)
		for _, sp := range spans {
			if sp.Kind == tracing.KindRejoin && sp.Outcome == "reattached" {
				sawRejoin = true
				episodes[sp.ID] = true
				if cause := attrVal(sp, "cause"); cause != "timeout" && cause != "stall" {
					t.Fatalf("rejoin cause = %q, want timeout or stall", cause)
				}
				if sp.End < sp.Start {
					t.Fatalf("rejoin span ends before it starts: %+v", sp)
				}
			}
		}
		for _, sp := range spans {
			if sp.Kind == tracing.KindAttempt && sp.Outcome == "accepted" && episodes[sp.Parent] {
				sawLinkedAttempt = true
			}
		}
	}
	if !sawRejoin {
		t.Fatal("no survivor recorded a completed rejoin span")
	}
	if !sawLinkedAttempt {
		t.Fatal("no accepted attempt span links to a rejoin episode")
	}
}

// TestRepairSpanRoundTrip kills an interior node (opening stream gaps below
// it) and asserts some survivor's flight recorder captured a completed
// repair round-trip span: striped request out, first repair data back.
func TestRepairSpanRoundTrip(t *testing.T) {
	rings := make(map[int]*flight.Ring)
	c := newCluster(t, 14, func(i int, cfg *Config) {
		r := flight.NewRing(0)
		rings[i] = r
		cfg.Trace = r
	})
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "stream warm", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().HighestPacket < 30 {
				return false
			}
		}
		return true
	})
	var victim *Node
	victimIdx := -1
	for i, nd := range c.nodes {
		if nd.Stats().Children > 0 {
			victim, victimIdx = nd, i
			break
		}
	}
	if victim == nil {
		t.Skip("no interior member")
	}
	victim.Kill()
	eventually(t, 8*time.Second, "a repair span completed", func() bool {
		for i, r := range rings {
			if i == victimIdx {
				continue
			}
			for _, sp := range r.Snapshot() {
				if sp.Kind == tracing.KindRepair && sp.Outcome == "repaired" {
					return true
				}
			}
		}
		return false
	})
}
