// handler.go exercises the handler-purity rule. The fixture mirrors the real
// kernel's Simulator/Handler shapes locally (the rule matches structurally:
// any func(*eventsim.Simulator) body is a handler). Because this fixture
// directory is also inside the sim-kernel scope, each violation draws both
// the handler-purity finding and the corresponding scope-wide finding.
package eventsim

import "time"

// Simulator mirrors the kernel type the rule keys on.
type Simulator struct{}

// Handler mirrors the kernel callback type.
type Handler func(*Simulator)

// Schedule mirrors the kernel's registration surface.
func (s *Simulator) Schedule(at time.Duration, h Handler) {}

func register(s *Simulator) {
	s.Schedule(time.Second, func(sim *Simulator) {
		_ = time.Now() // want `handler-purity: time\.Now inside an eventsim\.Handler` `no-wallclock: time\.Now reads the wall clock`
	})
	s.Schedule(2*time.Second, func(sim *Simulator) {
		go leak() // want `handler-purity: go statement inside an eventsim\.Handler` `no-goroutine-in-sim: go statement in the simulation kernel`
	})
	s.Schedule(3*time.Second, func(sim *Simulator) {
		// Rescheduling through the simulator is the legal idiom.
		sim.Schedule(4*time.Second, nil)
	})
}

// Assigned handlers count too: the rule keys on the signature, not the
// registration site.
var deferred Handler = func(sim *Simulator) {
	time.Sleep(time.Second) // want `handler-purity: time\.Sleep inside an eventsim\.Handler` `no-wallclock: time\.Sleep reads the wall clock`
}

// namedHandler shows that declared functions with the handler signature are
// held to the same standard as literals.
func namedHandler(sim *Simulator) {
	_ = time.Since(time.Unix(0, 0)) // want `handler-purity: time\.Since inside an eventsim\.Handler` `no-wallclock: time\.Since reads the wall clock`
}

// nestedHandlers: the inner literal is a handler in its own right and must be
// reported exactly once (the outer body walk skips it; the outer inspect
// visits it directly).
func nestedHandlers(sim *Simulator) {
	inner := Handler(func(s2 *Simulator) {
		_ = time.Now() // want `handler-purity: time\.Now inside an eventsim\.Handler` `no-wallclock: time\.Now reads the wall clock`
	})
	inner(sim)
}

// okNonHandler has a different signature, so handler-purity leaves it to the
// scope-wide rules alone.
func okNonHandler(sim *Simulator, extra int) {
	_ = time.Now() // want `no-wallclock: time\.Now reads the wall clock`
}

func leak() {}
