package rost

import (
	"testing"
	"time"

	"omcast/internal/construct"
	"omcast/internal/eventsim"
	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func testEnv(seed int64) *construct.Env {
	return &construct.Env{
		Rng: xrand.New(seed),
		Delay: func(a, b topology.NodeID) time.Duration {
			if a == b {
				return 0
			}
			return time.Millisecond
		},
		CandidateCount: 100,
	}
}

type fixture struct {
	sim  *eventsim.Simulator
	tree *overlay.Tree
	env  *construct.Env
	p    *Protocol
}

func newFixture(t *testing.T, rootDegree float64, cfg Config) *fixture {
	t.Helper()
	env := testEnv(1)
	tree, err := overlay.NewTree(0, rootDegree, env.Delay)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return &fixture{
		sim:  eventsim.New(),
		tree: tree,
		env:  env,
		p:    New(tree, env, cfg),
	}
}

// joinAt attaches a member at a given simulated time (advancing the clock by
// scheduling the join as an event and running up to it).
func (f *fixture) joinAt(t *testing.T, at time.Duration, attach topology.NodeID, bw float64) *overlay.Member {
	t.Helper()
	var m *overlay.Member
	f.sim.Schedule(at, func(s *eventsim.Simulator) {
		m = f.tree.NewMember(attach, bw, s.Now())
		if err := f.p.Join(f.tree, m, s.Now()); err != nil {
			t.Errorf("join at %v: %v", at, err)
			return
		}
		f.p.Start(s, m)
	})
	if err := f.sim.Run(at); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func (f *fixture) runUntil(t *testing.T, at time.Duration) {
	t.Helper()
	if err := f.sim.Run(at); err != nil {
		t.Fatalf("Run(%v): %v", at, err)
	}
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants at %v: %v", at, err)
	}
}

func TestJoinIsMinDepth(t *testing.T) {
	f := newFixture(t, 2, Config{})
	a := f.joinAt(t, 0, 1, 3)
	b := f.joinAt(t, 0, 2, 3)
	c := f.joinAt(t, 0, 3, 0.5)
	if a.Depth() != 1 || b.Depth() != 1 {
		t.Fatalf("first joiners at depths %d,%d, want 1,1", a.Depth(), b.Depth())
	}
	if c.Depth() != 2 {
		t.Fatalf("third joiner at depth %d, want 2 (root full)", c.Depth())
	}
}

// TestSwitchPromotesHigherBTP reproduces the Figure 2 scenario: a child with
// larger bandwidth eventually exceeds its parent's BTP and they swap.
func TestSwitchPromotesHigherBTP(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 100 * time.Second})
	parent := f.joinAt(t, 0, 1, 2)             // bw 2, root child
	child := f.joinAt(t, 10*time.Second, 2, 6) // bw 6, must land under parent
	if child.Parent() != parent {
		t.Fatalf("setup: child under %d, want %d", child.Parent().ID, parent.ID)
	}
	// BTPs: parent 2t, child 6(t-10). Child exceeds parent at t = 15 s; the
	// first switching check at join+100 s triggers the swap.
	f.runUntil(t, 200*time.Second)
	if child.Parent() != f.tree.Root() {
		t.Fatalf("child not promoted; parent is %d", child.Parent().ID)
	}
	if parent.Parent() != child {
		t.Fatalf("old parent not demoted under child")
	}
	if f.p.Switches != 1 {
		t.Fatalf("Switches = %d, want 1", f.p.Switches)
	}
	if child.Reconnections == 0 || parent.Reconnections == 0 {
		t.Fatal("switch did not charge reconnections")
	}
}

// TestNoSwitchWhenBandwidthSmaller checks the bandwidth guard: a child with
// higher BTP but lower bandwidth must not switch (it would be overtaken and
// demoted again later).
func TestNoSwitchWhenBandwidthSmaller(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 50 * time.Second})
	parent := f.joinAt(t, 0, 1, 2)
	// Child joins 1 s later with slightly smaller bandwidth. Its BTP never
	// exceeds the parent's anyway (same growth form), but even a
	// hand-crafted BTP lead must not trigger a switch; emulate the lead by
	// giving the child an earlier join time via direct construction:
	child := f.tree.NewMember(2, 1.9, 0)
	child.JoinTime = -1000 * time.Second // enormous age, BTP >> parent's
	if err := f.tree.Attach(child, parent); err != nil {
		t.Fatal(err)
	}
	f.p.Start(f.sim, child)
	f.runUntil(t, 500*time.Second)
	if child.Parent() != parent {
		t.Fatal("lower-bandwidth child was promoted")
	}
	if f.p.Switches != 0 {
		t.Fatalf("Switches = %d, want 0", f.p.Switches)
	}
}

// TestRootNeverDisplaced: the source holds an infinite BTP.
func TestRootNeverDisplaced(t *testing.T) {
	f := newFixture(t, 5, Config{SwitchInterval: 30 * time.Second})
	m := f.joinAt(t, 0, 1, 100) // bandwidth equal to the root's
	f.runUntil(t, 1000*time.Second)
	if m.Parent() != f.tree.Root() || f.tree.Root().Depth() != 0 {
		t.Fatal("root displaced")
	}
	if f.p.Switches != 0 {
		t.Fatalf("Switches = %d, want 0", f.p.Switches)
	}
}

// TestFigure2ChildOverflow reproduces the overflow rule: when the demoted
// parent cannot hold all of the promoted node's children, the largest-BTP
// child reconnects to the promoted node.
func TestFigure2ChildOverflow(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 1000 * time.Second, SwitchLatency: time.Second})
	// a: bandwidth 2 (degree 2) under the root, with children c and b as in
	// Figure 2.
	a := f.joinAt(t, 0, 1, 2)
	c := f.joinAt(t, 5*time.Second, 6, 0.5)
	b := f.joinAt(t, 10*time.Second, 2, 3)
	if b.Parent() != a || c.Parent() != a {
		t.Fatalf("setup: b under %d, c under %d, want a=%d", b.Parent().ID, c.Parent().ID, a.ID)
	}
	// d, e, f: children of b with staggered join times -> distinct BTPs
	// (a is full, so they all land under b).
	fm := f.joinAt(t, 15*time.Second, 5, 0.9) // oldest, largest BTP of the three
	d := f.joinAt(t, 20*time.Second, 3, 0.5)
	e := f.joinAt(t, 30*time.Second, 4, 0.5)
	for _, c := range []*overlay.Member{d, e, fm} {
		if c.Parent() != b {
			t.Fatalf("setup: child %d under %d, want b=%d", c.ID, c.Parent().ID, b.ID)
		}
	}
	// b's BTP (3/s) overtakes a's (2/s) quickly; b's first check is at
	// 10s+1000s.
	f.runUntil(t, 1100*time.Second)
	if b.Parent() != f.tree.Root() {
		t.Fatalf("b not promoted (parent %d)", b.Parent().ID)
	}
	if a.Parent() != b {
		t.Fatal("a not demoted under b")
	}
	// c, a's other child, rides along as b's child (it was b's sibling).
	if c.Parent() != b {
		t.Fatalf("sibling under %d, want b=%d", c.Parent().ID, b.ID)
	}
	// a (degree 2) keeps the two smallest-BTP children d and e; fm (largest
	// BTP) overflows up to b.
	if d.Parent() != a || e.Parent() != a {
		t.Fatalf("small children under %d/%d, want a=%d", d.Parent().ID, e.Parent().ID, a.ID)
	}
	if fm.Parent() != b {
		t.Fatalf("overflow child under %d, want b=%d", fm.Parent().ID, b.ID)
	}
}

// TestLockBackoff: a neighbourhood already locked by another operation makes
// the initiator back off rather than proceed.
func TestLockBackoff(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 100 * time.Second, LockBackoff: 15 * time.Second})
	parent := f.joinAt(t, 0, 1, 2)
	child := f.joinAt(t, 10*time.Second, 2, 6)
	// Hold a conflicting lock on the parent across the child's first check.
	f.tree.Lock(999, parent)
	f.runUntil(t, 120*time.Second)
	if f.p.LockFailures == 0 {
		t.Fatal("no lock backoff recorded")
	}
	if child.Parent() != parent {
		t.Fatal("switch proceeded despite conflicting lock")
	}
	// Release: the backed-off check retries and the switch completes.
	f.tree.Unlock(999, parent)
	f.runUntil(t, 200*time.Second)
	if child.Parent() != f.tree.Root() {
		t.Fatal("switch did not complete after lock release")
	}
}

// TestSwitchAbortsWhenParentFails: the parent departs during the switch
// latency window; the operation must abort cleanly.
func TestSwitchAbortsWhenParentFails(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 100 * time.Second, SwitchLatency: 5 * time.Second})
	parent := f.joinAt(t, 0, 1, 2)
	child := f.joinAt(t, 10*time.Second, 2, 6)
	if child.Parent() != parent {
		t.Fatalf("setup: child under %d, want %d", child.Parent().ID, parent.ID)
	}
	// The check fires at 110 s; kill the parent at 112 s, inside the latency
	// window (completion at 115 s).
	f.sim.Schedule(112*time.Second, func(*eventsim.Simulator) {
		orphans, err := f.tree.Remove(parent)
		if err != nil {
			t.Errorf("Remove: %v", err)
		}
		for _, o := range orphans {
			if err := f.p.Join(f.tree, o, f.sim.Now()); err != nil {
				t.Errorf("orphan rejoin: %v", err)
			}
		}
	})
	f.runUntil(t, 300*time.Second)
	if f.p.Aborted == 0 {
		t.Fatal("switch was not aborted")
	}
	if !child.Attached() {
		t.Fatal("child left detached after aborted switch")
	}
	if child.Locked() {
		t.Fatal("aborted switch leaked a lock")
	}
}

// TestGradualAscent is the paper's Figure 6 story in miniature: a member
// with moderate bandwidth and a long life climbs the tree step by step.
func TestGradualAscent(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 60 * time.Second})
	// Build a chain of degree-1 members: each new joiner can only attach
	// under the previous one, so the tracked member starts deep.
	for i := 0; i < 4; i++ {
		f.joinAt(t, time.Duration(i)*time.Second, topology.NodeID(1+i), 1)
	}
	// The tracked member: moderate bandwidth 2, joins last and lands at the
	// bottom of the chain.
	tracked := f.joinAt(t, 10*time.Second, 10, 2)
	startDepth := tracked.Depth()
	if startDepth != 5 {
		t.Fatalf("tracked member started at depth %d, want 5", startDepth)
	}
	f.runUntil(t, 3600*time.Second)
	// Its BTP grows twice as fast as every chain member's, so it overtakes
	// them one by one and ends directly under the source.
	if tracked.Depth() != 1 {
		t.Fatalf("tracked member did not ascend to depth 1: depth %d -> %d", startDepth, tracked.Depth())
	}
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchIntervalControlsOverhead: a smaller interval yields at least as
// many switches.
func TestSwitchIntervalControlsOverhead(t *testing.T) {
	run := func(interval time.Duration) int {
		env := testEnv(7)
		// A realistic source degree: with a tiny root the tree saturates on
		// free-riders before anyone can switch.
		tree, err := overlay.NewTree(0, 20, env.Delay)
		if err != nil {
			t.Fatal(err)
		}
		p := New(tree, env, Config{SwitchInterval: interval})
		sim := eventsim.New()
		bwDist := xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 100}
		bwRng := xrand.New(123)
		for i := 0; i < 60; i++ {
			at := time.Duration(i) * 5 * time.Second
			bw := bwDist.Sample(bwRng)
			sim.Schedule(at, func(s *eventsim.Simulator) {
				m := tree.NewMember(topology.NodeID(i), bw, s.Now())
				if err := p.Join(tree, m, s.Now()); err == nil {
					p.Start(s, m)
				}
			})
		}
		if err := sim.Run(2 * time.Hour); err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return p.Switches
	}
	fast := run(120 * time.Second)
	slow := run(1800 * time.Second)
	if fast < slow {
		t.Fatalf("switches: interval 120s -> %d, 1800s -> %d; smaller interval should give at least as many", fast, slow)
	}
	if fast == 0 {
		t.Fatal("no switches at all with a 2-hour horizon")
	}
}

// TestBTPOrderingTendency: after a long quiet period, parents should
// dominate children in BTP along child-parent edges (the partial ordering
// ROST converges to).
func TestBTPOrderingTendency(t *testing.T) {
	env := testEnv(8)
	tree, err := overlay.NewTree(0, 3, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	p := New(tree, env, Config{SwitchInterval: 60 * time.Second})
	sim := eventsim.New()
	bwDist := xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 20}
	bwRng := xrand.New(5)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 2 * time.Second
		bw := bwDist.Sample(bwRng)
		sim.Schedule(at, func(s *eventsim.Simulator) {
			m := tree.NewMember(topology.NodeID(i), bw, s.Now())
			if err := p.Join(tree, m, s.Now()); err == nil {
				p.Start(s, m)
			}
		})
	}
	if err := sim.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	now := sim.Now()
	violations, edges := 0, 0
	tree.VisitSubtree(tree.Root(), func(m *overlay.Member) {
		parent := m.Parent()
		if parent == nil || parent == tree.Root() {
			return
		}
		edges++
		// A stable edge has either parent BTP >= child BTP or a
		// lower-bandwidth child (which the guard keeps below on purpose).
		if m.BTP(now) > parent.BTP(now) && m.Bandwidth >= parent.Bandwidth {
			violations++
		}
	})
	if edges == 0 {
		t.Fatal("degenerate tree")
	}
	if violations > edges/10 {
		t.Fatalf("%d/%d edges still violate the switching condition after convergence", violations, edges)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SwitchInterval != DefaultSwitchInterval {
		t.Fatalf("SwitchInterval default = %v", cfg.SwitchInterval)
	}
	if cfg.LockBackoff != DefaultLockBackoff {
		t.Fatalf("LockBackoff default = %v", cfg.LockBackoff)
	}
	if cfg.SwitchLatency != DefaultSwitchLatency {
		t.Fatalf("SwitchLatency default = %v", cfg.SwitchLatency)
	}
}

func TestProtocolName(t *testing.T) {
	f := newFixture(t, 1, Config{})
	if f.p.Name() != "ROST" {
		t.Fatalf("Name = %q", f.p.Name())
	}
}

// TestGuardDisabledFreeRiderExchange: with the bandwidth guard off, a
// free-rider with a dominant BTP swaps with its parent even though it cannot
// host anyone; the displaced parent and siblings must be re-homed cleanly.
func TestGuardDisabledFreeRiderExchange(t *testing.T) {
	f := newFixture(t, 2, Config{SwitchInterval: 100 * time.Second, DisableBandwidthGuard: true})
	parent := f.joinAt(t, 0, 1, 2)
	// A spare-capacity contributor takes the root's other slot: the members
	// displaced by the degree-0 upstart need somewhere to go.
	rescue := f.joinAt(t, 0, 9, 3)
	if rescue.Parent() != f.tree.Root() {
		t.Fatalf("setup: rescue under %d", rescue.Parent().ID)
	}
	// Manually crafted ancient free-rider and sibling under parent.
	fr := f.tree.NewMember(2, 0.9, 0)
	fr.JoinTime = -100000 * time.Second
	if err := f.tree.Attach(fr, parent); err != nil {
		t.Fatal(err)
	}
	sibling := f.tree.NewMember(3, 0.5, time.Second)
	if err := f.tree.Attach(sibling, parent); err != nil {
		t.Fatal(err)
	}
	f.p.Start(f.sim, fr)
	f.runUntil(t, 500*time.Second)
	if fr.Parent() != f.tree.Root() {
		t.Fatalf("free-rider not promoted without guard (parent %d)", fr.Parent().ID)
	}
	// Parent and sibling cannot live under the degree-0 free-rider: they
	// must have been re-homed somewhere valid.
	if !parent.Attached() || !sibling.Attached() {
		t.Fatal("displaced members left detached")
	}
	if parent.Parent() == fr || sibling.Parent() == fr {
		t.Fatal("member attached under a zero-degree parent")
	}
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestContributorPriorityWiring: the option routes free-rider joins through
// the deep-parking rule.
func TestContributorPriorityWiring(t *testing.T) {
	f := newFixture(t, 2, Config{ContributorPriority: true})
	a := f.joinAt(t, 0, 1, 2) // contributor at depth 1
	b := f.joinAt(t, 0, 2, 2) // contributor at depth 1 (root full now)
	c := f.joinAt(t, 0, 3, 2) // contributor at depth 2
	if c.Depth() != 2 {
		t.Fatalf("contributor depth = %d, want 2", c.Depth())
	}
	fr := f.joinAt(t, 0, 4, 0.5)
	if fr.Depth() != 3 || fr.Parent() != c {
		t.Fatalf("free-rider at depth %d under %d, want 3 under %d (deepest)", fr.Depth(), fr.Parent().ID, c.ID)
	}
	_, _ = a, b
}

// TestSwitchConditionRevalidatedAtCompletion: if the BTP condition holds at
// initiation but fails at completion (the member was orphaned and rejoined
// elsewhere in between), the switch aborts.
func TestSwitchAbortsWhenConditionEvaporates(t *testing.T) {
	f := newFixture(t, 1, Config{SwitchInterval: 100 * time.Second, SwitchLatency: 5 * time.Second})
	parent := f.joinAt(t, 0, 1, 2)
	child := f.joinAt(t, 10*time.Second, 2, 6)
	if child.Parent() != parent {
		t.Fatalf("setup: child under %d", child.Parent().ID)
	}
	// Initiation fires at 110s; at 112s (inside the latency window) the
	// parent's provable age jumps (modelling, e.g., referee resync), so the
	// BTP condition no longer holds at completion time.
	f.sim.Schedule(112*time.Second, func(*eventsim.Simulator) {
		parent.JoinTime = -1000000 * time.Second
	})
	f.runUntil(t, 300*time.Second)
	if f.p.Aborted == 0 {
		t.Fatal("switch not aborted after the neighbourhood changed")
	}
	if child.Locked() || parent.Locked() {
		t.Fatal("abort leaked locks")
	}
}
