// Package topology implements the underlying network used by the evaluation:
// a GT-ITM-style transit-stub internetwork. The paper generates a 15600-node
// topology (240 transit routers + 15360 stub routers) with link delays drawn
// uniformly from [15,25] ms between transit nodes, [5,9] ms between transit
// and stub nodes and [2,4] ms between stub nodes; multicast members are
// placed on randomly chosen stub routers.
//
// Instead of materialising an all-pairs matrix over 15600 nodes (~2 GB), the
// package exploits the transit-stub structure for an exact O(1) distance
// oracle: every stub domain is single-homed (one gateway edge to its transit
// router), so no shortest path can cut through a stub domain, and
//
//	d(u,v) = d_stub(u -> gw_u) + w(gw edge) + d_transit(t_u, t_v)
//	       + w(gw edge) + d_stub(gw_v -> v)
//
// with per-domain all-pairs tables (tiny) and one all-pairs table over the
// 240-node transit core. Exactness against full-graph Dijkstra is verified in
// the tests.
package topology

import (
	"fmt"
	"time"

	"omcast/internal/xrand"
)

// NodeID identifies a router in the underlying network. IDs are dense:
// transit routers come first (0 .. TransitCount-1), stub routers follow.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Kind distinguishes transit routers from stub routers.
type Kind int

// Router kinds.
const (
	Transit Kind = iota + 1
	Stub
)

// String names the router kind.
func (k Kind) String() string {
	switch k {
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes the shape of a transit-stub topology. The zero value is
// not valid; start from DefaultConfig.
type Config struct {
	// Seed drives all random choices (wiring and delays).
	Seed int64

	// TransitDomains is the number of transit domains.
	TransitDomains int
	// TransitNodesPerDomain is the number of routers per transit domain.
	TransitNodesPerDomain int
	// StubDomainsPerTransit is the number of stub domains hanging off each
	// transit router.
	StubDomainsPerTransit int
	// StubNodesPerDomain is the number of routers per stub domain.
	StubNodesPerDomain int

	// TransitTransitDelay bounds the uniform delay of transit-transit links.
	TransitTransitDelay [2]time.Duration
	// TransitStubDelay bounds the uniform delay of gateway (transit-stub)
	// links.
	TransitStubDelay [2]time.Duration
	// StubStubDelay bounds the uniform delay of intra-stub-domain links.
	StubStubDelay [2]time.Duration

	// TransitChordProbability adds random intra-domain transit links on top
	// of the connectivity ring, per node pair.
	TransitChordProbability float64
	// StubChordProbability likewise for stub domains.
	StubChordProbability float64
	// ExtraInterDomainEdges adds random transit links between distinct
	// transit domains on top of the inter-domain ring.
	ExtraInterDomainEdges int
}

// DefaultConfig reproduces the paper's 15600-router topology: 6 transit
// domains x 40 routers = 240 transit routers, each transit router hosting 4
// stub domains of 16 routers = 15360 stub routers.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                    seed,
		TransitDomains:          6,
		TransitNodesPerDomain:   40,
		StubDomainsPerTransit:   4,
		StubNodesPerDomain:      16,
		TransitTransitDelay:     [2]time.Duration{15 * time.Millisecond, 25 * time.Millisecond},
		TransitStubDelay:        [2]time.Duration{5 * time.Millisecond, 9 * time.Millisecond},
		StubStubDelay:           [2]time.Duration{2 * time.Millisecond, 4 * time.Millisecond},
		TransitChordProbability: 0.05,
		StubChordProbability:    0.15,
		ExtraInterDomainEdges:   6,
	}
}

// Validate reports whether the configuration describes a buildable topology.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains <= 0:
		return fmt.Errorf("topology: TransitDomains = %d, want > 0", c.TransitDomains)
	case c.TransitNodesPerDomain <= 0:
		return fmt.Errorf("topology: TransitNodesPerDomain = %d, want > 0", c.TransitNodesPerDomain)
	case c.StubDomainsPerTransit < 0:
		return fmt.Errorf("topology: StubDomainsPerTransit = %d, want >= 0", c.StubDomainsPerTransit)
	case c.StubNodesPerDomain <= 0 && c.StubDomainsPerTransit > 0:
		return fmt.Errorf("topology: StubNodesPerDomain = %d, want > 0", c.StubNodesPerDomain)
	}
	for _, r := range [][2]time.Duration{c.TransitTransitDelay, c.TransitStubDelay, c.StubStubDelay} {
		if r[0] <= 0 || r[1] < r[0] {
			return fmt.Errorf("topology: delay range %v invalid", r)
		}
	}
	if c.TransitChordProbability < 0 || c.TransitChordProbability > 1 ||
		c.StubChordProbability < 0 || c.StubChordProbability > 1 {
		return fmt.Errorf("topology: chord probabilities must lie in [0,1]")
	}
	return nil
}

// TransitCount returns the number of transit routers the config implies.
func (c Config) TransitCount() int { return c.TransitDomains * c.TransitNodesPerDomain }

// StubCount returns the number of stub routers the config implies.
func (c Config) StubCount() int {
	return c.TransitCount() * c.StubDomainsPerTransit * c.StubNodesPerDomain
}

// edge is one undirected adjacency entry.
type edge struct {
	to    NodeID
	delay time.Duration
}

// stubDomain holds the hierarchical routing state of one stub domain.
type stubDomain struct {
	first NodeID // first router ID in the domain; routers are contiguous
	size  int
	// gatewayStub is the stub router carrying the edge to the transit core.
	gatewayStub NodeID
	// transit is the transit router the domain attaches to.
	transit NodeID
	// gatewayDelay is the delay of the gateway edge.
	gatewayDelay time.Duration
	// dist is the intra-domain all-pairs delay table, indexed by local
	// offsets (id - first).
	dist []time.Duration // size x size, row-major
}

func (d *stubDomain) intra(u, v NodeID) time.Duration {
	return d.dist[int(u-d.first)*d.size+int(v-d.first)]
}

// Topology is an immutable generated network. Safe for concurrent reads.
type Topology struct {
	cfg     Config
	adj     [][]edge
	kinds   []Kind
	domain  []int32 // stub router -> stub domain index; -1 for transit
	domains []stubDomain
	// transitDist is the all-pairs delay table over transit routers.
	transitDist []time.Duration // T x T, row-major
	transitN    int
}

// New generates a topology from cfg. Generation is deterministic in
// cfg.Seed.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.NewNamed(cfg.Seed, "topology")
	tn := cfg.TransitCount()
	total := tn + cfg.StubCount()

	t := &Topology{
		cfg:      cfg,
		adj:      make([][]edge, total),
		kinds:    make([]Kind, total),
		domain:   make([]int32, total),
		transitN: tn,
	}
	for i := 0; i < total; i++ {
		if i < tn {
			t.kinds[i] = Transit
		} else {
			t.kinds[i] = Stub
		}
		t.domain[i] = -1
	}

	t.wireTransitCore(rng)
	t.wireStubDomains(rng)
	t.buildTransitAPSP()
	t.buildStubAPSP()
	return t, nil
}

// addEdge inserts an undirected link.
func (t *Topology) addEdge(u, v NodeID, delay time.Duration) {
	t.adj[u] = append(t.adj[u], edge{to: v, delay: delay})
	t.adj[v] = append(t.adj[v], edge{to: u, delay: delay})
}

func (t *Topology) wireTransitCore(rng *xrand.Source) {
	c := t.cfg
	ttDelay := func() time.Duration {
		return rng.UniformDuration(c.TransitTransitDelay[0], c.TransitTransitDelay[1])
	}
	// Intra-domain: a ring guarantees connectivity, random chords add mesh.
	for d := 0; d < c.TransitDomains; d++ {
		base := d * c.TransitNodesPerDomain
		n := c.TransitNodesPerDomain
		if n > 1 {
			for i := 0; i < n; i++ {
				t.addEdge(NodeID(base+i), NodeID(base+(i+1)%n), ttDelay())
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 2; j < n; j++ {
				if i == 0 && j == n-1 {
					continue // ring edge already present
				}
				if rng.Float64() < c.TransitChordProbability {
					t.addEdge(NodeID(base+i), NodeID(base+j), ttDelay())
				}
			}
		}
	}
	// Inter-domain: ring over domains plus extra random cross links.
	if c.TransitDomains > 1 {
		for d := 0; d < c.TransitDomains; d++ {
			u := NodeID(d*c.TransitNodesPerDomain + rng.Intn(c.TransitNodesPerDomain))
			next := (d + 1) % c.TransitDomains
			v := NodeID(next*c.TransitNodesPerDomain + rng.Intn(c.TransitNodesPerDomain))
			t.addEdge(u, v, ttDelay())
		}
		for i := 0; i < c.ExtraInterDomainEdges; i++ {
			d1 := rng.Intn(c.TransitDomains)
			d2 := rng.Intn(c.TransitDomains)
			if d1 == d2 {
				continue
			}
			u := NodeID(d1*c.TransitNodesPerDomain + rng.Intn(c.TransitNodesPerDomain))
			v := NodeID(d2*c.TransitNodesPerDomain + rng.Intn(c.TransitNodesPerDomain))
			t.addEdge(u, v, ttDelay())
		}
	}
}

func (t *Topology) wireStubDomains(rng *xrand.Source) {
	c := t.cfg
	next := NodeID(t.transitN)
	nDomains := t.transitN * c.StubDomainsPerTransit
	t.domains = make([]stubDomain, 0, nDomains)
	for tr := 0; tr < t.transitN; tr++ {
		for s := 0; s < c.StubDomainsPerTransit; s++ {
			n := c.StubNodesPerDomain
			dom := stubDomain{
				first:        next,
				size:         n,
				transit:      NodeID(tr),
				gatewayStub:  next + NodeID(rng.Intn(n)),
				gatewayDelay: rng.UniformDuration(c.TransitStubDelay[0], c.TransitStubDelay[1]),
			}
			idx := int32(len(t.domains))
			// Intra-domain ring + chords with stub-stub delays.
			ssDelay := func() time.Duration {
				return rng.UniformDuration(c.StubStubDelay[0], c.StubStubDelay[1])
			}
			if n > 1 {
				for i := 0; i < n; i++ {
					t.addEdge(next+NodeID(i), next+NodeID((i+1)%n), ssDelay())
				}
			}
			for i := 0; i < n; i++ {
				t.domain[next+NodeID(i)] = idx
				for j := i + 2; j < n; j++ {
					if i == 0 && j == n-1 {
						continue
					}
					if rng.Float64() < c.StubChordProbability {
						t.addEdge(next+NodeID(i), next+NodeID(j), ssDelay())
					}
				}
			}
			// Single gateway edge keeps the domain single-homed, which is
			// what makes the hierarchical oracle exact.
			t.addEdge(dom.gatewayStub, dom.transit, dom.gatewayDelay)
			t.domains = append(t.domains, dom)
			next += NodeID(n)
		}
	}
}

// inf is an unreachable-distance sentinel.
const inf = time.Duration(1) << 60

// buildTransitAPSP runs Dijkstra from every transit router over the transit
// core only (stub domains cannot carry through traffic).
func (t *Topology) buildTransitAPSP() {
	n := t.transitN
	t.transitDist = make([]time.Duration, n*n)
	for src := 0; src < n; src++ {
		row := t.transitDist[src*n : (src+1)*n]
		t.dijkstraTransit(NodeID(src), row)
	}
}

// dijkstraTransit fills dist (length transitN) with shortest delays from src
// using only transit-transit edges.
func (t *Topology) dijkstraTransit(src NodeID, dist []time.Duration) {
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := newDelayHeap(t.transitN)
	pq.push(src, 0)
	for pq.len() > 0 {
		u, du := pq.pop()
		if du > dist[u] {
			continue
		}
		for _, e := range t.adj[u] {
			if int(e.to) >= t.transitN {
				continue // skip stub edges
			}
			if nd := du + e.delay; nd < dist[e.to] {
				dist[e.to] = nd
				pq.push(e.to, nd)
			}
		}
	}
}

// buildStubAPSP computes per-domain all-pairs tables with Floyd-Warshall
// (domains are small, typically 16 routers).
func (t *Topology) buildStubAPSP() {
	for di := range t.domains {
		dom := &t.domains[di]
		n := dom.size
		dist := make([]time.Duration, n*n)
		for i := range dist {
			dist[i] = inf
		}
		for i := 0; i < n; i++ {
			dist[i*n+i] = 0
			u := dom.first + NodeID(i)
			for _, e := range t.adj[u] {
				if t.domain[e.to] != int32(di) {
					continue // the gateway edge leaves the domain
				}
				j := int(e.to - dom.first)
				if e.delay < dist[i*n+j] {
					dist[i*n+j] = e.delay
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				dik := dist[i*n+k]
				if dik == inf {
					continue
				}
				for j := 0; j < n; j++ {
					if nd := dik + dist[k*n+j]; nd < dist[i*n+j] {
						dist[i*n+j] = nd
					}
				}
			}
		}
		dom.dist = dist
	}
}

// Size returns the total number of routers.
func (t *Topology) Size() int { return len(t.adj) }

// TransitCount returns the number of transit routers.
func (t *Topology) TransitCount() int { return t.transitN }

// StubCount returns the number of stub routers.
func (t *Topology) StubCount() int { return len(t.adj) - t.transitN }

// KindOf returns the router kind of id.
func (t *Topology) KindOf(id NodeID) Kind { return t.kinds[id] }

// Stubs returns the IDs of all stub routers, in ascending order. The caller
// owns the returned slice.
func (t *Topology) Stubs() []NodeID {
	out := make([]NodeID, 0, t.StubCount())
	for i := t.transitN; i < len(t.adj); i++ {
		out = append(out, NodeID(i))
	}
	return out
}

// RandomStub returns a uniformly random stub router drawn from rng.
func (t *Topology) RandomStub(rng *xrand.Source) NodeID {
	return NodeID(t.transitN + rng.Intn(t.StubCount()))
}

// Degree returns the number of links incident to id.
func (t *Topology) Degree(id NodeID) int { return len(t.adj[id]) }

// VisitLinks calls fn once per undirected link (a < b), in ascending order
// of a. Used by exporters and structural tests.
func (t *Topology) VisitLinks(fn func(a, b NodeID, delay time.Duration)) {
	for u := range t.adj {
		for _, e := range t.adj[u] {
			if NodeID(u) < e.to {
				fn(NodeID(u), e.to, e.delay)
			}
		}
	}
}

// Delay returns the shortest-path delay between two routers using the
// hierarchical oracle. It is exact for the generated single-homed topologies
// (verified against full-graph Dijkstra in tests).
func (t *Topology) Delay(u, v NodeID) time.Duration {
	if u == v {
		return 0
	}
	du, dv := t.domain[u], t.domain[v]
	switch {
	case du < 0 && dv < 0: // transit <-> transit
		return t.transitDist[int(u)*t.transitN+int(v)]
	case du < 0: // transit -> stub
		return t.stubToTransit(v, u)
	case dv < 0: // stub -> transit
		return t.stubToTransit(u, v)
	case du == dv: // same stub domain
		return t.domains[du].intra(u, v)
	default: // stub -> stub across domains
		su, sv := &t.domains[du], &t.domains[dv]
		return su.intra(u, su.gatewayStub) + su.gatewayDelay +
			t.transitDist[int(su.transit)*t.transitN+int(sv.transit)] +
			sv.gatewayDelay + sv.intra(sv.gatewayStub, v)
	}
}

// stubToTransit returns the delay from stub router s to transit router tr.
func (t *Topology) stubToTransit(s, tr NodeID) time.Duration {
	dom := &t.domains[t.domain[s]]
	return dom.intra(s, dom.gatewayStub) + dom.gatewayDelay +
		t.transitDist[int(dom.transit)*t.transitN+int(tr)]
}

// DijkstraFrom computes exact shortest-path delays from src over the full
// graph. It exists for validation and for the distance-oracle ablation bench;
// hot paths use Delay.
func (t *Topology) DijkstraFrom(src NodeID) []time.Duration {
	dist := make([]time.Duration, len(t.adj))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := newDelayHeap(len(t.adj))
	pq.push(src, 0)
	for pq.len() > 0 {
		u, du := pq.pop()
		if du > dist[u] {
			continue
		}
		for _, e := range t.adj[u] {
			if nd := du + e.delay; nd < dist[e.to] {
				dist[e.to] = nd
				pq.push(e.to, nd)
			}
		}
	}
	return dist
}

// Connected reports whether every router is reachable from router 0.
func (t *Topology) Connected() bool {
	dist := t.DijkstraFrom(0)
	for _, d := range dist {
		if d == inf {
			return false
		}
	}
	return true
}

// delayHeap is a minimal binary heap specialised to (NodeID, delay) pairs;
// it avoids container/heap interface overhead in the hot APSP loops.
type delayHeap struct {
	ids    []NodeID
	delays []time.Duration
}

func newDelayHeap(capacity int) *delayHeap {
	return &delayHeap{
		ids:    make([]NodeID, 0, capacity),
		delays: make([]time.Duration, 0, capacity),
	}
}

func (h *delayHeap) len() int { return len(h.ids) }

func (h *delayHeap) push(id NodeID, d time.Duration) {
	h.ids = append(h.ids, id)
	h.delays = append(h.delays, d)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.delays[parent] <= h.delays[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *delayHeap) pop() (NodeID, time.Duration) {
	id, d := h.ids[0], h.delays[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.delays = h.delays[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.delays[l] < h.delays[smallest] {
			smallest = l
		}
		if r < last && h.delays[r] < h.delays[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return id, d
}

func (h *delayHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.delays[i], h.delays[j] = h.delays[j], h.delays[i]
}
