package omcast_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"omcast"
	"omcast/internal/metrics"
	"omcast/internal/tracing"
)

func TestRunWithTrace(t *testing.T) {
	var buf bytes.Buffer
	res, err := omcast.RunWithTrace(quickConfig(40, omcast.ROST), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("traced run measured nothing")
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	prevT := -1.0
	for sc.Scan() {
		var ev omcast.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.T < prevT {
			t.Fatalf("trace went backwards in time: %f after %f", ev.T, prevT)
		}
		prevT = ev.T
		if ev.Member == 0 && ev.Event != "sample" {
			t.Fatalf("trace event without member: %+v", ev)
		}
		kinds[ev.Event]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"join", "depart", "failure", "switch", "rejoin"} {
		if kinds[want] == 0 {
			t.Fatalf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
	// Joins and departs roughly balance over a steady-state run (the
	// population present at the end never departs).
	if kinds["depart"] > kinds["join"] {
		t.Fatalf("more departs (%d) than joins (%d)", kinds["depart"], kinds["join"])
	}
}

func TestRunWithTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := omcast.RunWithTrace(quickConfig(41, omcast.ROST), &a); err != nil {
		t.Fatal(err)
	}
	if _, err := omcast.RunWithTrace(quickConfig(41, omcast.ROST), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different traces")
	}
}

func TestRunWithTraceNilWriter(t *testing.T) {
	res, err := omcast.RunWithTrace(quickConfig(42, omcast.MinimumDepth), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("nil-writer run measured nothing")
	}
}

// failingWriter errors after some bytes to exercise error propagation.
type failingWriter struct{ left int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left -= len(p); w.left <= 0 {
		return 0, errWriter
	}
	return len(p), nil
}

var errWriter = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestRunWithTraceWriteError(t *testing.T) {
	_, err := omcast.RunWithTrace(quickConfig(43, omcast.MinimumDepth), &failingWriter{left: 1024})
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("write failure not surfaced: %v", err)
	}
}

// TestRunStreamingWithTraceWriteError pins the streaming path's encoding
// error propagation: a writer that fails mid-run must surface from
// RunStreamingWithTrace just as it does from RunWithTrace.
func TestRunStreamingWithTraceWriteError(t *testing.T) {
	cfg := quickConfig(46, omcast.MinimumDepth)
	_, err := omcast.RunStreamingWithTrace(cfg, omcast.StreamConfig{GroupSize: 3},
		&failingWriter{left: 1024}, omcast.TraceOptions{})
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("streaming write failure not surfaced: %v", err)
	}
}

func TestRunWithTraceSampled(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(44, omcast.ROST)
	_, err := omcast.RunWithTraceOptions(cfg, &buf, omcast.TraceOptions{SampleEvery: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	prevT := -1.0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev omcast.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.Event != "sample" {
			continue
		}
		samples++
		if ev.Member != 0 {
			t.Fatalf("sample event carries a member: %+v", ev)
		}
		if len(ev.Metrics) == 0 {
			t.Fatalf("sample at t=%f has no metrics", ev.T)
		}
		if ev.T <= prevT {
			t.Fatalf("samples not strictly ordered: %f after %f", ev.T, prevT)
		}
		prevT = ev.T
		found := false
		for _, m := range ev.Metrics {
			if m.Name == "omcast_sim_events_fired_total" {
				found = true
				if samples > 1 && m.Value == 0 {
					t.Fatal("kernel counters stayed zero mid-run")
				}
			}
		}
		if !found {
			t.Fatalf("sample lacks kernel metrics (got %d series)", len(ev.Metrics))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// quickConfig runs 900s warmup + 1200s measure = 2100s = 7 five-minute
	// intervals, plus the t=0 snapshot.
	if samples < 7 {
		t.Fatalf("got %d sample events, want >= 7", samples)
	}
}

func TestRunStreamingWithTraceRepairs(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(45, omcast.ROST)
	res, err := omcast.RunStreamingWithTrace(cfg, omcast.StreamConfig{GroupSize: 3}, &buf, omcast.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes == 0 {
		t.Fatal("streaming run had no recovery episodes")
	}
	repairs := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev omcast.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.Event != "repair" {
			continue
		}
		repairs++
		if ev.Member == 0 {
			t.Fatalf("repair without orphan: %+v", ev)
		}
		if ev.Repaired == nil || ev.Lost == nil {
			t.Fatalf("repair outcome fields absent (pointer presence broken): %s", sc.Text())
		}
		if *ev.Repaired < 0 || *ev.Lost < 0 {
			t.Fatalf("negative repair outcome: %+v", ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if repairs == 0 {
		t.Fatal("trace has no repair events despite episodes > 0")
	}
}

// TestTraceEventSchemaGolden pins the exact JSON field names of every event
// kind (satellite of the v1 schema): a renamed or re-typed field breaks
// downstream consumers silently, so it must break this test loudly instead.
func TestTraceEventSchemaGolden(t *testing.T) {
	i := func(v int) *int { return &v }
	i64 := func(v int64) *int64 { return &v }
	golden := []struct {
		kind string
		ev   omcast.TraceEvent
		want string
	}{
		{"join", omcast.TraceEvent{V: 1, T: 1.5, Event: "join", Member: 3, Parent: i64(1), Depth: i(2), Bandwidth: 2.5},
			`{"v":1,"t":1.5,"event":"join","member":3,"parent":1,"depth":2,"bandwidth":2.5}`},
		{"rejoin", omcast.TraceEvent{V: 1, T: 2.5, Event: "rejoin", Member: 3, Parent: i64(0), Depth: i(1)},
			`{"v":1,"t":2.5,"event":"rejoin","member":3,"parent":0,"depth":1}`},
		{"depart", omcast.TraceEvent{V: 1, T: 3, Event: "depart", Member: 4},
			`{"v":1,"t":3,"event":"depart","member":4}`},
		{"failure", omcast.TraceEvent{V: 1, T: 4, Event: "failure", Member: 5, Disrupted: i(0)},
			`{"v":1,"t":4,"event":"failure","member":5,"disrupted":0}`},
		{"switch", omcast.TraceEvent{V: 1, T: 5, Event: "switch", Member: 6, Demoted: 2},
			`{"v":1,"t":5,"event":"switch","member":6,"demoted":2}`},
		{"repair", omcast.TraceEvent{V: 1, T: 6, Event: "repair", Member: 7, Repaired: i(10), Lost: i(0)},
			`{"v":1,"t":6,"event":"repair","member":7,"repaired":10,"lost":0}`},
		{"sample", omcast.TraceEvent{V: 1, T: 7, Event: "sample",
			Metrics: []metrics.Metric{{Name: "omcast_x_total", Kind: metrics.KindCounter, Value: 3}}},
			`{"v":1,"t":7,"event":"sample","metrics":[{"name":"omcast_x_total","kind":"counter","value":3}]}`},
		{"span", omcast.TraceEvent{V: 1, T: 8, Event: "span", Member: 9,
			Span: &tracing.Span{ID: "00000000deadbeef", Parent: "00000000cafef00d", Kind: "rejoin",
				Member: 9, Start: 6, End: 8, Outcome: "reattached",
				Attrs: []tracing.Attr{{K: "depth", V: "2"}}}},
			`{"v":1,"t":8,"event":"span","member":9,"span":{"id":"00000000deadbeef","parent":"00000000cafef00d","kind":"rejoin","member":9,"start":6,"end":8,"outcome":"reattached","attrs":[{"k":"depth","v":"2"}]}}`},
	}
	for _, g := range golden {
		data, err := json.Marshal(g.ev)
		if err != nil {
			t.Fatalf("%s: %v", g.kind, err)
		}
		if string(data) != g.want {
			t.Errorf("%s schema drifted:\n got  %s\n want %s", g.kind, data, g.want)
		}
	}
}

// TestRunStreamingWithTraceSpans exercises the full span vocabulary end to
// end: rejoin episodes with attempts, repair episodes with
// detect/fetch/stall stages, and closes the loop through the analyzer.
func TestRunStreamingWithTraceSpans(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(47, omcast.ROST)
	_, err := omcast.RunStreamingWithTrace(cfg, omcast.StreamConfig{GroupSize: 3}, &buf,
		omcast.TraceOptions{Spans: true})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := tracing.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Spans) == 0 {
		t.Fatal("span-enabled run emitted no spans")
	}
	kinds := map[string]int{}
	ids := map[string]bool{}
	for _, sp := range parsed.Spans {
		kinds[sp.Kind]++
		if ids[sp.ID] {
			t.Fatalf("duplicate span ID %s", sp.ID)
		}
		ids[sp.ID] = true
		if sp.End < sp.Start {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
	}
	for _, want := range []string{tracing.KindRejoin, tracing.KindRepair, tracing.KindDetect, tracing.KindFetch} {
		if kinds[want] == 0 {
			t.Fatalf("no %q spans (kinds: %v)", want, kinds)
		}
	}
	a := tracing.Analyze(parsed)
	var sawRejoin, sawRepair bool
	for _, ks := range a.Kinds {
		switch ks.Kind {
		case tracing.KindRejoin:
			// Tree-level rejoin is synchronous unless the overlay is
			// saturated, so durations may legitimately be zero here (the
			// live node's rejoins carry the real latencies).
			sawRejoin = true
			if ks.Outcomes["reattached"] == 0 {
				t.Fatalf("no reattached rejoin episodes: %+v", ks.Outcomes)
			}
		case tracing.KindRepair:
			sawRepair = true
			if len(ks.Stages) == 0 {
				t.Fatal("repair episodes lost their stages")
			}
			if tracing.Percentile(ks.Durations, 0.5) <= 0 {
				t.Fatal("repair episodes have zero p50 duration")
			}
		}
	}
	if !sawRejoin || !sawRepair {
		t.Fatalf("analysis lacks episode kinds: %+v", a.Kinds)
	}
}
