package node

import (
	"testing"

	"omcast/internal/wire"
)

// discardTransport swallows sends without recording: fuzz sandboxes only
// need datagrams to go somewhere.
type discardTransport struct{ addr wire.Addr }

func (d *discardTransport) Addr() wire.Addr              { return d.addr }
func (d *discardTransport) Send(wire.Addr, []byte) error { return nil }
func (d *discardTransport) SetHandler(func(data []byte)) {}
func (d *discardTransport) Close() error                 { return nil }

// fuzzNode builds a sandboxed, unstarted node with tight caps so the
// invariant checks are cheap.
func fuzzNode(source bool) *Node {
	cfg := Config{
		Source:          source,
		Bandwidth:       3,
		MembershipLimit: 8,
		BufferPackets:   32,
	}
	n := New(cfg, &discardTransport{addr: "self"})
	if !source {
		attachTo(n, "p")
	}
	return n
}

// checkInvariants asserts the properties no datagram sequence may break:
// bounded state (membership view, repair buffer, guard table) and coherent
// counters. Panics are caught by the fuzz driver itself.
func checkInvariants(t *testing.T, n *Node, what string) {
	t.Helper()
	n.mu.Lock()
	members, buffered, guards := len(n.membership), len(n.buffer), len(n.guard)
	highest := n.highest
	attached, parent := n.attached, n.parent
	n.mu.Unlock()
	if max := 4 * n.cfg.MembershipLimit; members > max {
		t.Fatalf("%s: membership view %d > cap %d", what, members, max)
	}
	if max := n.cfg.BufferPackets + 1; buffered > max {
		t.Fatalf("%s: repair buffer %d > cap %d", what, buffered, max)
	}
	if max := 4 * n.cfg.MembershipLimit; guards > max {
		t.Fatalf("%s: guard table %d > cap %d", what, guards, max)
	}
	if highest < -1 {
		t.Fatalf("%s: highest packet %d < -1", what, highest)
	}
	if attached && parent == "" && !n.cfg.Source {
		t.Fatalf("%s: attached without a parent", what)
	}
	s := n.Stats()
	for name, v := range map[string]int64{
		"PacketsReceived": s.PacketsReceived, "PacketsRepaired": s.PacketsRepaired,
		"RepairsServed": s.RepairsServed, "WireRejects": s.WireRejects,
		"GuardRateLimited": s.GuardRateLimited, "GuardQuarantines": s.GuardQuarantines,
		"GuardQuarantineDrops": s.GuardQuarantineDrops, "GuardAuditFails": s.GuardAuditFails,
		"GuardImplausible": s.GuardImplausible,
	} {
		if v < 0 {
			t.Fatalf("%s: counter %s went negative: %d", what, name, v)
		}
	}
}

// FuzzHandlers feeds raw datagrams straight into the dispatch path of two
// sandboxed nodes — one attached member, one source — and asserts the state
// invariants hold after every delivery: no panic, no unbounded growth, no
// stream ingestion at the origin, counters coherent. This is the
// defense-in-depth check behind wire validation: whatever Decode lets
// through, the handlers must survive.
func FuzzHandlers(f *testing.F) {
	f.Add([]byte(`{"type":6,"from":"p","packet":1,"payload":"AQID"}`),
		[]byte(`{"type":8,"from":"x","first_missing":0,"last_missing":9}`),
		[]byte(`{"type":5,"from":"p","bandwidth":3,"depth":1,"btp":1e9}`))
	f.Add([]byte(`{"type":10,"from":"x","limit":1024,"members":[{"addr":"m","depth":1,"spare":1,"bandwidth":3}]}`),
		[]byte(`{"type":7,"from":"p","first_missing":0,"last_missing":1099511627776}`),
		[]byte(`{"type":13,"from":"p","new_parent":"gp"}`))
	f.Add([]byte(`{"type":6,"from":"evil","packet":999999}`),
		[]byte(`{broken`),
		[]byte(`{"type":15,"from":"i","chain":["old"],"new_parent":"np"}`))
	f.Add([]byte(`{"type":1,"from":"j","bandwidth":3.5}`),
		[]byte(`{"type":4,"from":"p"}`),
		[]byte(`{"type":9,"from":"r","packet":2,"payload":"eA=="}`))
	// Binary-framing seeds: onDatagram auto-detects the codec, so the same
	// handlers must hold their invariants against binary datagrams too —
	// including ctrl-stamped control messages, their acks, and a datagram
	// that is nothing but a mangled binary header.
	bin := func(env wire.Envelope) []byte {
		b, err := wire.EncodeBinary(env)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(bin(wire.Envelope{Type: wire.TypeJoin, From: "j", Bandwidth: 3, Ctrl: 1}),
		bin(wire.Envelope{Type: wire.TypeAck, From: "p", Ctrl: 1}),
		bin(wire.Envelope{Type: wire.TypePacket, From: "p", Packet: 7, Payload: []byte{1, 2, 3}}))
	f.Add(bin(wire.Envelope{Type: wire.TypeLeave, From: "p", Ctrl: 2}),
		bin(wire.Envelope{Type: wire.TypeMembershipRequest, From: "x", Limit: 8, Ctrl: 3}),
		[]byte{0xF5, 0x4D, 0x02})
	f.Fuzz(func(t *testing.T, d1, d2, d3 []byte) {
		member := fuzzNode(false)
		source := fuzzNode(true)
		for i, d := range [][]byte{d1, d2, d3} {
			member.onDatagram(d)
			checkInvariants(t, member, "member")
			source.onDatagram(d)
			checkInvariants(t, source, "source")
			// The origin never ingests stream or repair data, whatever arrives.
			if s := source.Stats(); s.PacketsReceived != 0 || s.PacketsRepaired != 0 {
				t.Fatalf("datagram %d made the source ingest stream data: %+v", i, s)
			}
		}
	})
}
