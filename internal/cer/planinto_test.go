package cer

import (
	"testing"
	"time"

	"omcast/internal/xrand"
)

// TestPlanRecoveryIntoMatchesPlanRecovery pins the dense planner to the map
// planner over randomized episodes and server groups: every packet either
// appears in both with the same arrival time or in neither (Lost). This is
// the contract that lets the streaming hot path drop the per-episode map.
func TestPlanRecoveryIntoMatchesPlanRecovery(t *testing.T) {
	rng := xrand.New(21)
	tree, _ := buildTree(t, 1, 1)
	var buf []time.Duration // reused across trials, as stream.Model does
	for trial := 0; trial < 400; trial++ {
		rate := 10.0
		first := int64(rng.Intn(5000))
		last := first + int64(rng.Intn(300)) - 1 // empty episodes included
		failedAt := time.Duration(first) * time.Second / 10
		ep := Episode{
			FirstMissing: first,
			LastMissing:  last,
			RequestAt:    failedAt + 5*time.Second,
			ResumeAt:     failedAt + 15*time.Second,
			Rate:         rate,
			Gen:          func(n int64) time.Duration { return time.Duration(float64(n) / rate * float64(time.Second)) },
			Striped:      rng.Intn(2) == 0,
		}
		var servers []Server
		for i := rng.Intn(5); i > 0; i-- {
			servers = append(servers, Server{
				Member:     tree.Root(),
				Epsilon:    float64(rng.Intn(10)) / rate, // zero-epsilon servers included
				ChainDelay: time.Duration(rng.Intn(50)) * time.Millisecond,
				Transfer:   time.Duration(rng.Intn(50)) * time.Millisecond,
			})
		}
		want := PlanRecovery(ep, servers)
		got := PlanRecoveryInto(ep, servers, buf)
		buf = got
		wantLen := int(last - first + 1)
		if wantLen < 0 {
			wantLen = 0
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: dense plan has %d entries, want %d", trial, len(got), wantLen)
		}
		for n := first; n <= last; n++ {
			at, ok := want[n]
			dense := got[n-first]
			switch {
			case ok && dense == Lost:
				t.Fatalf("trial %d: packet %d repaired at %v in map plan, Lost in dense plan", trial, n, at)
			case !ok && dense != Lost:
				t.Fatalf("trial %d: packet %d Lost in map plan, repaired at %v in dense plan", trial, n, dense)
			case ok && dense != at:
				t.Fatalf("trial %d: packet %d arrival %v (map) vs %v (dense)", trial, n, at, dense)
			}
		}
	}
}
