package live

import (
	"time"

	"omcast/internal/faultnet"
)

// d wraps a literal for schedule fields.
func d(v time.Duration) faultnet.Duration { return faultnet.Duration(v) }

// rp returns a pointer to a rule (schedule fields take pointers so "absent"
// and "clean" stay distinguishable in JSON).
func rp(r faultnet.Rule) *faultnet.Rule { return &r }

// Scenarios is the chaos resilience suite: the fault shapes the paper's
// design claims to survive, each byte-reproducible from its seed. Timings
// are pre-scaling (the runner stretches them 4x under -race); offsets leave
// ~1.5 s of warmup headroom after the attach wait so the overlay streams
// steadily before faults hit. Bounds are deliberately loose — they assert
// "recovered, kept playing, no storm", not exact figures, so the suite stays
// meaningful under scheduler noise.
var Scenarios = []Scenario{
	{
		Name:     "lossy-10",
		About:    "10% uniform loss on every link; playback must degrade gracefully, not diverge",
		Nodes:    8,
		Seed:     1001,
		Warmup:   5 * time.Second,
		Duration: 3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "*", To: "*",
					Rule: rp(faultnet.Rule{Drop: 0.10})},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			MaxStarvingRatio:   0.35,
			MinPacketsFrac:     0.4,
		},
	},
	{
		Name:     "lossy-20",
		About:    "20% loss with reordering and jittered latency — the paper's hostile-network regime",
		Nodes:    8,
		Seed:     1002,
		Warmup:   5 * time.Second,
		Duration: 3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "*", To: "*",
					Rule: rp(faultnet.Rule{Drop: 0.20, Reorder: 0.05,
						Latency: d(2 * time.Millisecond), Jitter: d(3 * time.Millisecond)})},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			MaxStarvingRatio:   0.6,
			MinPacketsFrac:     0.25,
		},
	},
	{
		Name:     "parent-crash",
		About:    "an interior parent crashes mid-stream and later returns; orphans must re-attach within the heartbeat-timeout + rejoin bound",
		Nodes:    8,
		SourceBW: 2, // narrow fan-out forces depth >= 2, so n00 serves children
		NodeBW:   3,
		Seed:     1003,
		Warmup:   5 * time.Second,
		// n00 boots ahead of the pack, claims a source slot, and the rest
		// attach beneath — so the crash hits a node with children.
		BootDelay: 30 * time.Millisecond,
		Duration:  3500 * time.Millisecond,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(500 * time.Millisecond), Until: d(2 * time.Second),
					Action: faultnet.ActionCrash, Node: "n00"},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			// Heartbeat timeout (3x20 ms) + join backoff to cap (~8x20 ms)
			// + a couple of retry rounds and the restarted node's own
			// rejoin: 2 s of post-restart budget is the configured bound.
			RecoverWithin:    2 * time.Second,
			MaxStarvingRatio: 0.6,
			MinRejoinsTotal:  1, // the crash must orphan someone
		},
	},
	{
		Name:     "source-partition-heal",
		About:    "the source is cut off from everyone and comes back; the heal must not trigger a repair-request storm",
		Nodes:    8,
		Seed:     1004,
		Warmup:   5 * time.Second,
		Duration: 3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(500 * time.Millisecond), Until: d(1200 * time.Millisecond),
					Action: faultnet.ActionPartition, From: "source", To: "*", Symmetric: true},
				// The first post-heal second stays lossy on the source's links:
				// the gap keeps re-opening while the backoff gate is closed, so
				// the suppression bound below measures the gate, not the
				// scheduler's luck with out-of-order repair data.
				{At: d(1200 * time.Millisecond), Until: d(2200 * time.Millisecond),
					Action: faultnet.ActionRule, From: "source", To: "*",
					Rule: rp(faultnet.Rule{Drop: 0.25})},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			// The 700 ms outage is ~70 packets of gap detected by every node
			// at heal; the backoff gate must collapse that into few requests.
			MaxRepairRequestsPerNode:  60,
			MinRepairsSuppressedTotal: 1,
		},
	},
	{
		Name:     "asym-partition",
		About:    "one-way partition: a CER recovery-group member can receive but not send, so striped repair must route around it",
		Nodes:    10,
		Seed:     1005,
		Warmup:   5 * time.Second,
		Duration: 3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				// n01 and n02 lose their outbound half only: requests reach
				// them, answers die. Membership staleness must eventually
				// steer repair (and join) traffic elsewhere.
				{At: d(500 * time.Millisecond), Until: d(1700 * time.Millisecond),
					Action: faultnet.ActionPartition, From: "n01", To: "*"},
				{At: d(500 * time.Millisecond), Until: d(1700 * time.Millisecond),
					Action: faultnet.ActionPartition, From: "n02", To: "*"},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			MaxStarvingRatio:   0.7,
		},
	},
	{
		Name:     "rolling-restart",
		About:    "three members crash and return in an overlapping wave; the overlay must converge back to full attachment",
		Nodes:    9,
		Seed:     1006,
		Warmup:   5 * time.Second,
		Duration: 4 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(500 * time.Millisecond), Until: d(1300 * time.Millisecond),
					Action: faultnet.ActionCrash, Node: "n01"},
				{At: d(1 * time.Second), Until: d(1800 * time.Millisecond),
					Action: faultnet.ActionCrash, Node: "n02"},
				{At: d(1500 * time.Millisecond), Until: d(2300 * time.Millisecond),
					Action: faultnet.ActionCrash, Node: "n03"},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			RecoverWithin:      2 * time.Second,
		},
	},
	{
		Name:  "byzantine-btp-forge",
		About: "one peer inflates its BTP claims 50x on every heartbeat and switch-propose; the per-peer audit must convict and quarantine it while honest members keep streaming",
		Nodes: 9,
		Seed:  1008,
		// n08 boots last: a leaf when the forging starts, so the attack tests
		// the audit, not tree repair.
		BootDelay: 30 * time.Millisecond,
		Warmup:    5 * time.Second,
		Duration:  3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n08", To: "*",
					Rule: rp(faultnet.Rule{Forge: faultnet.ForgeBTP, ForgeFactor: 50})},
			},
		},
		Byzantine: []string{"n08"},
		Bounds: Bounds{
			RequireAllAttached:  true,
			MaxStarvingRatio:    0.6,
			MinAuditFailsTotal:  1, // the inflated claims must be caught...
			MinQuarantinesTotal: 1, // ...and the forger sentenced
		},
	},
	{
		Name:  "byzantine-repair-forge",
		About: "one peer's repair requests and ELNs are rewritten to inverted ranges in flight; receivers must wire-reject and attribute them, and honest repair must keep working",
		Nodes: 9,
		Seed:  1009,
		// Inbound loss makes n08 actually issue repair requests (the forge
		// needs traffic to rewrite); honest links stay clean.
		BootDelay: 30 * time.Millisecond,
		Warmup:    5 * time.Second,
		Duration:  3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "*", To: "n08",
					Rule: rp(faultnet.Rule{Drop: 0.15})},
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n08", To: "*",
					Rule: rp(faultnet.Rule{Forge: faultnet.ForgeRepair})},
			},
		},
		Byzantine: []string{"n08"},
		Bounds: Bounds{
			RequireAllAttached:  true,
			MaxStarvingRatio:    0.6,
			MinWireRejectsTotal: 2,
		},
	},
	{
		Name:  "byzantine-corrupt",
		About: "a quarter of one peer's datagrams get a deterministic bit flipped in flight; wire validation must shed the garbage and the honest overlay must not notice",
		Nodes: 9,
		Seed:  1010,
		// Corruption is unattributable (a flipped byte usually breaks the JSON
		// before From can be trusted), so the bound is containment plus
		// rejection counts — not a quarantine conviction.
		BootDelay: 30 * time.Millisecond,
		Warmup:    5 * time.Second,
		Duration:  3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n08", To: "*",
					Rule: rp(faultnet.Rule{Corrupt: 0.25})},
			},
		},
		Byzantine: []string{"n08"},
		Bounds: Bounds{
			RequireAllAttached:  true,
			MaxStarvingRatio:    0.6,
			MinWireRejectsTotal: 1,
		},
	},
	{
		Name:  "byzantine-replay",
		About: "one peer's links replay half their datagrams and duplicate a third more; stale heartbeats, repeated repair requests and duplicate packets must all be absorbed",
		Nodes: 9,
		Seed:  1011,
		// Replayed envelopes are syntactically honest, so there is nothing to
		// convict — the assertion is pure delivery continuity under echo.
		BootDelay: 30 * time.Millisecond,
		Warmup:    5 * time.Second,
		Duration:  3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n08", To: "*",
					Rule: rp(faultnet.Rule{Replay: 0.5, Duplicate: 0.3})},
			},
		},
		Byzantine: []string{"n08"},
		Bounds: Bounds{
			RequireAllAttached: true,
			MaxStarvingRatio:   0.6,
		},
	},
	{
		Name:  "byzantine-64",
		About: "the acceptance scenario: 64 members, three byzantine (BTP forger, repair forger, corrupter); honest delivery continuity and quarantine convergence must hold at scale",
		Nodes: 64,
		// A slightly wider source keeps the deep tree forming briskly; the
		// short boot stagger stops 64 simultaneous joins from thundering.
		SourceBW:  4,
		NodeBW:    3,
		Seed:      1012,
		BootDelay: 10 * time.Millisecond,
		Warmup:    8 * time.Second,
		Duration:  3 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n61", To: "*",
					Rule: rp(faultnet.Rule{Forge: faultnet.ForgeBTP, ForgeFactor: 50})},
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "*", To: "n62",
					Rule: rp(faultnet.Rule{Drop: 0.15})},
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n62", To: "*",
					Rule: rp(faultnet.Rule{Forge: faultnet.ForgeRepair})},
				{At: d(200 * time.Millisecond), Action: faultnet.ActionRule, From: "n63", To: "*",
					Rule: rp(faultnet.Rule{Corrupt: 0.2})},
			},
		},
		Byzantine: []string{"n61", "n62", "n63"},
		Bounds: Bounds{
			RequireAllAttached:  true,
			MaxStarvingRatio:    0.7,
			MinAuditFailsTotal:  1,
			MinQuarantinesTotal: 1,
			MinWireRejectsTotal: 1,
		},
	},
	{
		Name:     "join-loss-30",
		About:    "the satellite regression: 30% loss from birth — every node must still join within a bound, thanks to backoff-paced retries",
		Nodes:    6,
		Seed:     1007,
		Warmup:   0, // faults active while joining
		Duration: 1 * time.Second,
		Schedule: faultnet.Schedule{
			DefaultRule: rp(faultnet.Rule{Drop: 0.30}),
		},
		// No RequireAllAttached: under sustained 30% loss a heartbeat window
		// occasionally misses three times in a row, so a member can be
		// mid-rejoin at the collection instant. The regression bound is the
		// attach time, not the end-state snapshot.
		Bounds: Bounds{
			AttachWithin: 8 * time.Second,
		},
	},
	{
		Name:    "control-loss",
		About:   "30%+ loss on control-class datagrams only (joins, accepts, membership, switches, repair requests and their acks) while the data plane stays clean; the retransmit shim must keep attachment exchanges completing, proven by a source kill mid-loss",
		Nodes:   10,
		Sources: 2,
		Seed:    1015,
		Warmup:  5 * time.Second,
		// The class filter is the point: data packets flow untouched, so any
		// outage is purely a control-plane failure to (re-)attach.
		Duration: 3500 * time.Millisecond,
		Schedule: faultnet.Schedule{
			DefaultRule: rp(faultnet.Rule{Drop: 0.35, Class: faultnet.ClassControl}),
			Events: []faultnet.Event{
				{At: d(500 * time.Millisecond), Action: faultnet.ActionCrash, Node: "source1"},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			// The source-kill budget plus headroom for retransmit rounds: each
			// lost join/accept costs one capped backoff step instead of a full
			// watchdog timeout, so 30% control loss only stretches failover,
			// never stalls it.
			MaxReassignTime:  3 * time.Second,
			MaxStarvingRatio: 0.7,
			MaxOutageRatio:   0.5,
			MinRejoinsTotal:  1, // the kill must orphan someone
		},
	},
	{
		Name:    "source-kill",
		About:   "a fleet of two sources; one is killed mid-stream and never returns — every orphaned viewer must be re-assigned to the survivor's tree within the failover bound",
		Nodes:   10,
		Sources: 2,
		Seed:    1013,
		Warmup:  5 * time.Second,
		// Both sources sit at depth 0 with three slots each, so the join
		// ranking (min depth, then spare) reliably parks members under
		// source1 before the kill.
		Duration: 3500 * time.Millisecond,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(500 * time.Millisecond), Action: faultnet.ActionCrash, Node: "source1"},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			// Heartbeat timeout (3x20 ms) + one unanswered join to the dead
			// source's stale membership record + backoff-paced retries to a
			// live candidate: 2.5 s of post-kill budget.
			MaxReassignTime:  2500 * time.Millisecond,
			MaxStarvingRatio: 0.7,
			MaxOutageRatio:   0.4,
			MinRejoinsTotal:  1, // the kill must orphan someone
		},
	},
	{
		Name:    "source-kill-cascade",
		About:   "three sources; two die in sequence (the gap models the paper's 10 s cascade at the harness's ~30x compressed timescale) — the fleet must drain onto the last survivor without a rejoin storm",
		Nodes:   12,
		Sources: 3,
		Seed:    1014,
		Warmup:  5 * time.Second,
		// The second kill lands while source1's orphans are mid-failover, so
		// re-assignment must cope with a shrinking candidate set.
		Duration: 4 * time.Second,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(500 * time.Millisecond), Action: faultnet.ActionCrash, Node: "source1"},
				{At: d(800 * time.Millisecond), Action: faultnet.ActionCrash, Node: "source2"},
			},
		},
		Bounds: Bounds{
			RequireAllAttached: true,
			// Clock starts at the second kill; orphans of the first have a
			// head start but may have landed on source2 and be orphaned twice.
			MaxReassignTime:  2500 * time.Millisecond,
			MaxStarvingRatio: 0.7,
			MaxOutageRatio:   0.5,
			MinRejoinsTotal:  2, // both kills must orphan someone
		},
	},
}

// Scenario looks a scenario up by name (nil if unknown).
func ScenarioByName(name string) *Scenario {
	for i := range Scenarios {
		if Scenarios[i].Name == name {
			s := Scenarios[i]
			return &s
		}
	}
	return nil
}
