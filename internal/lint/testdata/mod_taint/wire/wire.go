// Package wire mirrors the real wire package's decode/validate vocabulary:
// the taint rule keys on the package NAME, Decode*/Valid* prefixes, and
// result shapes, so this small double drives the same classification paths.
package wire

import "errors"

// Addr is a transport address.
type Addr string

// Envelope is the parsed datagram.
type Envelope struct {
	From Addr
	Seq  uint64
	Kind string
}

// ErrBad is the validation failure.
var ErrBad = errors.New("wire: bad envelope")

// DecodeRaw parses without validating: results are attacker-controlled until
// Validate accepts them (the "raw" taint flavor).
func DecodeRaw(data []byte) (*Envelope, error) {
	if len(data) == 0 {
		return nil, ErrBad
	}
	return &Envelope{From: Addr(data), Kind: "join"}, nil
}

// Decode parses and validates: its result is trusted once the paired error
// has been observed (the errObj taint flavor).
func Decode(data []byte) (*Envelope, error) {
	env, err := DecodeRaw(data)
	if err != nil {
		return nil, err
	}
	if err := Validate(env); err != nil {
		return env, err
	}
	return env, nil
}

// Validate is the error-returning sanitizer.
func Validate(env *Envelope) error {
	if env == nil || !ValidAddr(env.From) {
		return ErrBad
	}
	return nil
}

// ValidAddr is the boolean-predicate sanitizer.
func ValidAddr(a Addr) bool { return a != "" && len(a) < 64 }
