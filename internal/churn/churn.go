// Package churn drives member dynamics through a simulation: Poisson
// arrivals at rate lambda = M / E[lifetime] (Little's law, Section 5),
// lognormal lifetimes, bounded-Pareto bandwidths, random stub placement,
// abrupt departures, orphan rejoins, and the measurement machinery behind
// the paper's tree-level metrics (Figures 4-11): disruptions per node,
// optimizer reconnections per node, service delay, stretch, and the
// time-series of a tracked "typical member".
package churn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"omcast/internal/construct"
	"omcast/internal/eventsim"
	"omcast/internal/metrics"
	"omcast/internal/overlay"
	"omcast/internal/stats"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// Defaults mirroring Section 5 of the paper.
var (
	// DefaultLifetime is the lognormal lifetime distribution (location 5.5,
	// shape 2.0; mean ~1809 s).
	DefaultLifetime = xrand.Lognormal{Mu: 5.5, Sigma: 2.0}
	// DefaultBandwidth is the bounded-Pareto outbound bandwidth distribution
	// (shape 1.2, bounds [0.5, 100]).
	DefaultBandwidth = xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 100}
)

// DefaultRootBandwidth is the source's outbound bandwidth ("resembling the
// capability of a powerful source server").
const DefaultRootBandwidth = 100.0

// DefaultRejoinRetry is how long an unplaceable member waits before
// re-attempting to find a parent.
const DefaultRejoinRetry = 5 * time.Second

// DefaultSampleInterval is how often tree-quality metrics (delay, stretch,
// size) are sampled during the measurement window.
const DefaultSampleInterval = 60 * time.Second

// Config parameterises a churn run.
type Config struct {
	// Seed drives all churn randomness.
	Seed int64
	// TargetSize is M, the intended steady-state member count.
	TargetSize int
	// Lifetime and Bandwidth distributions; zero values take the defaults.
	Lifetime  xrand.Lognormal
	Bandwidth xrand.BoundedPareto
	// RootBandwidth is the source's outbound bandwidth; zero means 100.
	RootBandwidth float64
	// Warmup is how long the overlay churns before measurement begins;
	// zero means twice the mean lifetime.
	Warmup time.Duration
	// Measure is the measurement window length; zero means one hour.
	Measure time.Duration
	// RejoinRetry, SampleInterval: zero means the package defaults.
	RejoinRetry    time.Duration
	SampleInterval time.Duration
	// PrePopulate seeds the overlay at time zero as if the session had
	// already been running for SessionAge: a Poisson arrival history over
	// [-SessionAge, 0) is replayed and the members still alive at zero join
	// oldest-first. This starts the run at steady-state size instead of
	// spending many mean lifetimes filling up (the lognormal's heavy tail
	// makes the natural transient extremely slow), while keeping member
	// ages bounded by the session length as any real deployment would.
	PrePopulate bool
	// SessionAge is how long the seeded session has notionally been
	// running; zero means 4 hours.
	SessionAge time.Duration
	// AncestorRejoin makes orphans of a failed member first try to
	// re-attach under their nearest surviving ancestor (each member knows
	// the addresses and spare degrees of all its ancestors, Section 4.1),
	// falling back to the construction strategy when the ancestor path has
	// no capacity. This keeps freed interior positions inside the affected
	// subtree instead of handing them to brand-new members.
	AncestorRejoin bool
}

func (c Config) withDefaults() Config {
	if c.Lifetime == (xrand.Lognormal{}) {
		c.Lifetime = DefaultLifetime
	}
	if c.Bandwidth == (xrand.BoundedPareto{}) {
		c.Bandwidth = DefaultBandwidth
	}
	if c.RootBandwidth <= 0 {
		c.RootBandwidth = DefaultRootBandwidth
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Duration(c.Lifetime.Mean()*float64(time.Second))
	}
	if c.Measure <= 0 {
		c.Measure = time.Hour
	}
	if c.RejoinRetry <= 0 {
		c.RejoinRetry = DefaultRejoinRetry
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = DefaultSampleInterval
	}
	if c.SessionAge <= 0 {
		c.SessionAge = 4 * time.Hour
	}
	return c
}

// survivalIntegral numerically integrates the lifetime survival function
// over [0, horizon] (Simpson's rule); this is the expected session time a
// member arriving uniformly in the window is still present for, which
// calibrates the arrival rate so the seeded session holds TargetSize members.
func survivalIntegral(life xrand.Lognormal, horizon time.Duration) float64 {
	const steps = 2000 // even
	h := horizon.Seconds() / steps
	sum := 0.0
	surv := func(x float64) float64 { return 1 - life.CDF(x) }
	for i := 0; i <= steps; i++ {
		w := 2.0
		switch {
		case i == 0 || i == steps:
			w = 1
		case i%2 == 1:
			w = 4
		}
		sum += w * surv(float64(i)*h)
	}
	return sum * h / 3
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TargetSize <= 0 {
		return fmt.Errorf("churn: TargetSize = %d, want > 0", c.TargetSize)
	}
	return nil
}

// Hooks let protocol layers observe churn events. All hooks may be nil.
type Hooks struct {
	// OnJoin fires after a member successfully attaches for the first time.
	OnJoin func(sim *eventsim.Simulator, m *overlay.Member)
	// OnFailure fires when a member departs abruptly, before it is removed
	// from the tree (so the subtree is still inspectable). orphanIDs lists
	// the children that will rejoin.
	OnFailure func(sim *eventsim.Simulator, failed *overlay.Member)
	// OnDepart fires after the member has been removed.
	OnDepart func(sim *eventsim.Simulator, id overlay.MemberID)
	// OnRejoin fires when an orphan re-attaches after a parent failure.
	OnRejoin func(sim *eventsim.Simulator, m *overlay.Member)
	// OnRejoinBlocked fires when an orphan's rejoin attempt finds the
	// overlay saturated and must back off (one firing per failed attempt),
	// so tracing can record per-attempt sub-spans of the rejoin episode.
	OnRejoinBlocked func(sim *eventsim.Simulator, id overlay.MemberID)
}

// Driver owns the churn process over one tree.
type Driver struct {
	cfg      Config
	sim      *eventsim.Simulator
	tree     *overlay.Tree
	topo     *topology.Topology
	strategy construct.Strategy
	hooks    Hooks

	arrivalRng  *xrand.Source
	lifetimeRng *xrand.Source
	bwRng       *xrand.Source
	placeRng    *xrand.Source

	arrivalGap xrand.Exponential

	// Measurement state.
	measureFrom time.Duration
	measureTo   time.Duration

	departedDisruptions []float64
	departedReconns     []float64
	// exposureSum accumulates the observed lifetime (seconds) of departed
	// members; disruption and reconnection sums over it give unbiased
	// per-lifetime rates (a finite window otherwise only catches short
	// lives, badly under-counting the heavy-tailed lifetime distribution).
	exposureSum    float64
	disruptionSum  float64
	reconnectsSum  float64
	delaySamples   []float64 // milliseconds
	stretchSamples []float64
	sizeSamples    []float64

	tracked []*Tracked

	met driverMetrics
	// pendingRejoin maps an orphan to the virtual time its parent failed,
	// so the rejoin-latency histogram can observe failure-to-reattach time.
	// Only populated while instrumented; accessed by key, never iterated.
	pendingRejoin map[overlay.MemberID]time.Duration

	// JoinFailures counts arrivals that found a saturated overlay and had
	// to retry.
	JoinFailures int
	// Departures counts all departures; MeasuredDepartures those inside the
	// measurement window.
	Departures         int
	MeasuredDepartures int
}

// driverMetrics holds the driver's optional instruments; all nil until
// Instrument is called (the metric types are nil-safe no-ops).
type driverMetrics struct {
	joins        *metrics.Counter
	rejoins      *metrics.Counter
	departures   *metrics.Counter
	disruptions  *metrics.Counter
	joinFailures *metrics.Counter
	members      *metrics.Gauge
	rejoinLat    *metrics.Histogram
}

// Instrument registers the churn driver's instruments on reg: join, rejoin,
// departure, disruption and join-failure counters, a current-membership
// gauge, and a histogram of rejoin latency (parent failure to re-attachment,
// in virtual seconds). Everything is keyed in virtual time, so snapshots are
// deterministic for a fixed seed.
func (d *Driver) Instrument(reg *metrics.Registry) {
	d.met = driverMetrics{
		joins:        reg.Counter("omcast_churn_joins_total", "Members that attached for the first time."),
		rejoins:      reg.Counter("omcast_churn_rejoins_total", "Orphans that re-attached after a parent failure."),
		departures:   reg.Counter("omcast_churn_departures_total", "Members that departed abruptly."),
		disruptions:  reg.Counter("omcast_churn_disruptions_total", "Descendants whose stream was cut by an ancestor failure."),
		joinFailures: reg.Counter("omcast_churn_join_failures_total", "Join or rejoin attempts that found a saturated overlay."),
		members:      reg.Gauge("omcast_churn_members", "Members currently in the overlay (attached or rejoining)."),
		rejoinLat: reg.Histogram("omcast_churn_rejoin_latency_seconds",
			"Virtual seconds from parent failure to orphan re-attachment.",
			metrics.LatencyBuckets()),
	}
	d.pendingRejoin = make(map[overlay.MemberID]time.Duration)
}

// noteRejoined records a successful rejoin: counter plus the latency since
// the parent failure, if this orphan's failure time was captured.
func (d *Driver) noteRejoined(sim *eventsim.Simulator, id overlay.MemberID) {
	d.met.rejoins.Inc()
	if d.pendingRejoin == nil {
		return
	}
	if failedAt, ok := d.pendingRejoin[id]; ok {
		d.met.rejoinLat.Observe((sim.Now() - failedAt).Seconds())
		delete(d.pendingRejoin, id)
	}
}

// Tracked is a "typical member" time series (Figures 6 and 9): cumulative
// disruptions and current service delay sampled once a minute.
type Tracked struct {
	Member *overlay.Member
	// Times holds sample timestamps; Disruptions and DelayMS the
	// corresponding cumulative disruption counts and service delays.
	Times       []time.Duration
	Disruptions []int
	DelayMS     []float64
}

// NewDriver builds a churn driver. strategy attaches members; topo places
// them on stub routers.
func NewDriver(sim *eventsim.Simulator, tree *overlay.Tree, topo *topology.Topology, strategy construct.Strategy, cfg Config, hooks Hooks) (*Driver, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Little's law: lambda = M / E[lifetime]. With pre-population the rate
	// is calibrated against the finite session age instead, so the seeded
	// session actually holds TargetSize members (the heavy lifetime tail
	// means a finite-age session is always below the asymptotic size).
	lambda := float64(cfg.TargetSize) / cfg.Lifetime.Mean()
	if cfg.PrePopulate {
		lambda = float64(cfg.TargetSize) / survivalIntegral(cfg.Lifetime, cfg.SessionAge)
	}
	d := &Driver{
		cfg:         cfg,
		sim:         sim,
		tree:        tree,
		topo:        topo,
		strategy:    strategy,
		hooks:       hooks,
		arrivalRng:  xrand.NewNamed(cfg.Seed, "churn.arrival"),
		lifetimeRng: xrand.NewNamed(cfg.Seed, "churn.lifetime"),
		bwRng:       xrand.NewNamed(cfg.Seed, "churn.bandwidth"),
		placeRng:    xrand.NewNamed(cfg.Seed, "churn.place"),
		arrivalGap:  xrand.Exponential{Rate: lambda},
		measureFrom: cfg.Warmup,
		measureTo:   cfg.Warmup + cfg.Measure,
	}
	return d, nil
}

// Horizon returns the virtual time the run should execute until (end of the
// measurement window).
func (d *Driver) Horizon() time.Duration { return d.measureTo }

// Start seeds the arrival process and metric sampling. Call once, then run
// the simulator to d.Horizon().
func (d *Driver) Start() {
	if d.cfg.PrePopulate {
		d.sim.Schedule(0, func(s *eventsim.Simulator) {
			d.prePopulate(s)
		})
	}
	d.scheduleNextArrival()
	d.sim.Schedule(d.measureFrom, func(s *eventsim.Simulator) {
		d.resetCounters()
		d.sampleTreeMetrics(s)
	})
}

// resetCounters zeroes every member's disruption and reconnection counters
// at the start of the measurement window, so the reported rates reflect the
// steady-state tree rather than the warm-up transient.
func (d *Driver) resetCounters() {
	d.tree.VisitMembers(func(m *overlay.Member) {
		m.Disruptions = 0
		m.Reconnections = 0
	})
}

// prePopulate replays a Poisson arrival history over [-SessionAge, 0): each
// historical arrival draws its lifetime from the churn distribution and only
// members still alive at time zero are seeded, oldest first (the order real
// history would have produced). Ages are therefore bounded by the session
// age, exactly as in a session that started SessionAge ago.
func (d *Driver) prePopulate(sim *eventsim.Simulator) {
	type seedEntry struct {
		age      time.Duration
		residual time.Duration
		bw       float64
		attach   topology.NodeID
	}
	t0 := d.cfg.SessionAge.Seconds()
	arrivals := int(d.arrivalGap.Rate*t0 + 0.5)
	entries := make([]seedEntry, 0, d.cfg.TargetSize)
	for i := 0; i < arrivals; i++ {
		age := d.lifetimeRng.Float64() * t0
		life := d.cfg.Lifetime.Sample(d.lifetimeRng)
		if life <= age {
			continue // departed before time zero
		}
		entries = append(entries, seedEntry{
			age:      time.Duration(age * float64(time.Second)),
			residual: time.Duration((life - age) * float64(time.Second)),
			bw:       d.cfg.Bandwidth.Sample(d.bwRng),
			attach:   d.topo.RandomStub(d.placeRng),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].age > entries[j].age })
	for _, e := range entries {
		m := d.tree.NewMember(e.attach, e.bw, 0)
		m.JoinTime = -e.age
		id := m.ID
		sim.ScheduleAfter(e.residual, func(s *eventsim.Simulator) {
			d.depart(s, id)
		})
		d.tryFirstJoin(sim, id)
	}
}

func (d *Driver) scheduleNextArrival() {
	gap := d.arrivalGap.SampleDuration(d.arrivalRng)
	d.sim.ScheduleAfter(gap, func(s *eventsim.Simulator) {
		d.arrive(s)
		d.scheduleNextArrival()
	})
}

// arrive creates one new member with sampled attributes and starts its life.
func (d *Driver) arrive(sim *eventsim.Simulator) {
	bw := d.cfg.Bandwidth.Sample(d.bwRng)
	attach := d.topo.RandomStub(d.placeRng)
	lifetime := time.Duration(d.cfg.Lifetime.Sample(d.lifetimeRng) * float64(time.Second))
	m := d.tree.NewMember(attach, bw, sim.Now())
	id := m.ID
	sim.ScheduleAfter(lifetime, func(s *eventsim.Simulator) {
		d.depart(s, id)
	})
	d.tryFirstJoin(sim, id)
}

// tryFirstJoin attaches a new arrival, retrying while the overlay is
// saturated.
func (d *Driver) tryFirstJoin(sim *eventsim.Simulator, id overlay.MemberID) {
	m := d.tree.Member(id)
	if m == nil || m.Attached() {
		return
	}
	err := d.strategy.Join(d.tree, m, sim.Now())
	switch {
	case err == nil:
		d.met.joins.Inc()
		d.met.members.Set(float64(d.tree.Size()))
		if d.hooks.OnJoin != nil {
			d.hooks.OnJoin(sim, m)
		}
	case errors.Is(err, construct.ErrNoParent):
		d.JoinFailures++
		d.met.joinFailures.Inc()
		sim.ScheduleAfter(d.cfg.RejoinRetry, func(s *eventsim.Simulator) {
			d.tryFirstJoin(s, id)
		})
	default:
		panic(fmt.Sprintf("churn: join failed structurally: %v", err))
	}
}

// depart handles an abrupt member departure: disruption accounting, removal,
// and orphan rejoins.
func (d *Driver) depart(sim *eventsim.Simulator, id overlay.MemberID) {
	m := d.tree.Member(id)
	if m == nil {
		return
	}
	if d.hooks.OnFailure != nil {
		d.hooks.OnFailure(sim, m)
	}
	// Abrupt departure: every descendant is disrupted (Section 6's
	// "most uncooperative and dynamic environment").
	disrupted := d.tree.RecordFailure(m)
	d.met.disruptions.Add(float64(disrupted))
	now := sim.Now()
	if now >= d.measureFrom && now <= d.measureTo {
		d.departedDisruptions = append(d.departedDisruptions, float64(m.Disruptions))
		d.departedReconns = append(d.departedReconns, float64(m.Reconnections))
		// Exposure: how long this member accumulated counters — from the
		// start of the measurement window (counters are reset there) or its
		// join, whichever is later.
		start := m.JoinTime
		if start < d.measureFrom {
			start = d.measureFrom
		}
		d.exposureSum += (now - start).Seconds()
		d.disruptionSum += float64(m.Disruptions)
		d.reconnectsSum += float64(m.Reconnections)
		d.MeasuredDepartures++
	}
	d.Departures++
	d.met.departures.Inc()
	ancestors := d.tree.Ancestors(m) // the orphans' surviving ancestor path
	orphans, err := d.tree.Remove(m)
	if err != nil {
		panic(fmt.Sprintf("churn: removing departed member: %v", err))
	}
	if d.pendingRejoin != nil {
		// A member departing mid-rejoin never re-attaches; drop its entry.
		delete(d.pendingRejoin, id)
		for _, o := range orphans {
			d.pendingRejoin[o.ID] = now
		}
	}
	d.met.members.Set(float64(d.tree.Size()))
	if d.hooks.OnDepart != nil {
		d.hooks.OnDepart(sim, id)
	}
	// Orphans contend for the freed position; the largest-BTP child wins
	// (the same priority Figure 2 gives the strongest node at overflow).
	sort.Slice(orphans, func(i, j int) bool {
		return orphans[i].BTP(now) > orphans[j].BTP(now)
	})
	for _, o := range orphans {
		if d.cfg.AncestorRejoin && d.ancestorRejoin(sim, o, ancestors) {
			continue
		}
		d.rejoin(sim, o.ID)
	}
}

// ancestorRejoin re-attaches an orphan under its nearest surviving ancestor
// with spare capacity. It reports whether a position was found.
func (d *Driver) ancestorRejoin(sim *eventsim.Simulator, o *overlay.Member, ancestors []*overlay.Member) bool {
	for _, a := range ancestors {
		if d.tree.Member(a.ID) != a || !a.Attached() || !a.HasSpare() {
			continue
		}
		if err := d.tree.Attach(o, a); err != nil {
			continue
		}
		d.noteRejoined(sim, o.ID)
		if d.hooks.OnRejoin != nil {
			d.hooks.OnRejoin(sim, o)
		}
		return true
	}
	return false
}

// rejoin re-attaches an orphan (or retries later when saturated).
func (d *Driver) rejoin(sim *eventsim.Simulator, id overlay.MemberID) {
	m := d.tree.Member(id)
	if m == nil || m.Attached() {
		return
	}
	err := d.strategy.Join(d.tree, m, sim.Now())
	switch {
	case err == nil:
		d.noteRejoined(sim, id)
		if d.hooks.OnRejoin != nil {
			d.hooks.OnRejoin(sim, m)
		}
	case errors.Is(err, construct.ErrNoParent):
		d.JoinFailures++
		d.met.joinFailures.Inc()
		if d.hooks.OnRejoinBlocked != nil {
			d.hooks.OnRejoinBlocked(sim, id)
		}
		sim.ScheduleAfter(d.cfg.RejoinRetry, func(s *eventsim.Simulator) {
			d.rejoin(s, id)
		})
	default:
		panic(fmt.Sprintf("churn: rejoin failed structurally: %v", err))
	}
}

// Burst injects n simultaneous arrivals at virtual time at (flash-crowd
// scenarios).
func (d *Driver) Burst(at time.Duration, n int) {
	for i := 0; i < n; i++ {
		d.sim.Schedule(at, func(s *eventsim.Simulator) {
			d.arrive(s)
		})
	}
}

// Track injects a "typical member" at virtual time at with the given
// bandwidth and an unbounded lifetime, sampling its cumulative disruptions
// and service delay every minute until the simulation ends.
func (d *Driver) Track(at time.Duration, bw float64) *Tracked {
	tr := &Tracked{}
	d.tracked = append(d.tracked, tr)
	d.sim.Schedule(at, func(sim *eventsim.Simulator) {
		m := d.tree.NewMember(d.topo.RandomStub(d.placeRng), bw, sim.Now())
		tr.Member = m
		d.tryFirstJoin(sim, m.ID)
		d.sampleTracked(sim, tr)
	})
	return tr
}

func (d *Driver) sampleTracked(sim *eventsim.Simulator, tr *Tracked) {
	m := tr.Member
	tr.Times = append(tr.Times, sim.Now())
	tr.Disruptions = append(tr.Disruptions, m.Disruptions)
	delay := m.PathDelay()
	if !m.Attached() {
		delay = 0 // rejoining; no live path
	}
	tr.DelayMS = append(tr.DelayMS, float64(delay)/float64(time.Millisecond))
	sim.ScheduleAfter(time.Minute, func(s *eventsim.Simulator) {
		d.sampleTracked(s, tr)
	})
}

// sampleTreeMetrics periodically averages service delay, stretch and size
// over all attached members during the measurement window.
func (d *Driver) sampleTreeMetrics(sim *eventsim.Simulator) {
	if sim.Now() > d.measureTo {
		return
	}
	root := d.tree.Root()
	var delaySum float64
	var stretchSum float64
	var stretchN int
	n := 0
	d.tree.VisitSubtree(root, func(m *overlay.Member) {
		if m == root {
			return
		}
		n++
		delaySum += float64(m.PathDelay()) / float64(time.Millisecond)
		direct := d.topo.Delay(root.Attach, m.Attach)
		if direct > 0 {
			stretchSum += float64(m.PathDelay()) / float64(direct)
			stretchN++
		}
	})
	if n > 0 {
		d.delaySamples = append(d.delaySamples, delaySum/float64(n))
	}
	if stretchN > 0 {
		d.stretchSamples = append(d.stretchSamples, stretchSum/float64(stretchN))
	}
	d.sizeSamples = append(d.sizeSamples, float64(n))
	sim.ScheduleAfter(d.cfg.SampleInterval, func(s *eventsim.Simulator) {
		d.sampleTreeMetrics(s)
	})
}

// Result summarises one churn run.
type Result struct {
	// AvgDisruptions is the paper's Figure 4 metric: the mean number of
	// streaming disruptions accumulated during the measurement window,
	// averaged over the members present in the steady-state tree at its
	// end. The present population is length-biased toward long-lived
	// members, which is exactly the population whose experience the
	// stability of the tree's upper layers determines.
	AvgDisruptions float64
	// DisruptionCounts holds the per-member counts behind Figure 5's CDF
	// (members present at the end of the window).
	DisruptionCounts []float64
	// AvgReconnections is the optimizer-overhead metric of Figure 10,
	// computed the same way.
	AvgReconnections float64
	// PerLifetimeDisruptions and PerLifetimeReconnections are the
	// alternative estimator: event rates over departed members scaled by
	// the mean lifetime ("during its lifetime", unbiased by the window).
	PerLifetimeDisruptions   float64
	PerLifetimeReconnections float64
	// AvgServiceDelayMS and AvgStretch are the Figure 7/8 tree-quality
	// metrics.
	AvgServiceDelayMS float64
	AvgStretch        float64
	// AvgSize is the observed steady-state member count.
	AvgSize float64
	// Departures counts members departing inside the measurement window.
	Departures int
}

// Result gathers the metrics accumulated so far. Call it at the end of the
// measurement window: the snapshot metrics read the members present in the
// tree at call time.
func (d *Driver) Result() Result {
	meanLife := d.cfg.Lifetime.Mean()
	perLifetime := func(sum float64) float64 {
		if d.exposureSum <= 0 {
			return 0
		}
		return sum / d.exposureSum * meanLife
	}
	var counts []float64
	var disrSum, reconnSum float64
	d.tree.VisitSubtree(d.tree.Root(), func(m *overlay.Member) {
		if m == d.tree.Root() {
			return
		}
		counts = append(counts, float64(m.Disruptions))
		disrSum += float64(m.Disruptions)
		reconnSum += float64(m.Reconnections)
	})
	res := Result{
		DisruptionCounts:         counts,
		PerLifetimeDisruptions:   perLifetime(d.disruptionSum),
		PerLifetimeReconnections: perLifetime(d.reconnectsSum),
		AvgServiceDelayMS:        stats.Mean(d.delaySamples),
		AvgStretch:               stats.Mean(d.stretchSamples),
		AvgSize:                  stats.Mean(d.sizeSamples),
		Departures:               d.MeasuredDepartures,
	}
	if n := float64(len(counts)); n > 0 {
		res.AvgDisruptions = disrSum / n
		res.AvgReconnections = reconnSum / n
	}
	return res
}

// Tree returns the driven tree (for protocol layers and tests).
func (d *Driver) Tree() *overlay.Tree { return d.tree }
