package node

import (
	"time"

	"omcast/internal/wire"
)

// The guard layer is the node's per-peer misbehavior defense: the live
// analogue of the simulator's cheater model (omcast.topUpCheaters and the
// rost.Referees that audit claimed bandwidth-time products). Wire validation
// (internal/wire) rejects envelopes no honest node could send; the guard
// decides what to do about the *sender*:
//
//   - every peer carries a misbehavior score that decays linearly over time;
//     malformed datagrams, validation rejects, request floods and implausible
//     BTP claims add points;
//   - request-type messages (Join, RepairRequest, MembershipRequest — the
//     ones a peer can use to make us do work) pass through a per-peer token
//     bucket; over-rate requests are dropped and scored;
//   - BTP claims on heartbeats and switch proposes are audited against the
//     peer's own earlier claims: a bandwidth-time product can only grow as
//     fast as the claimed bandwidth allows (delta <= bw * dt * slack + grace);
//   - a peer whose score crosses the threshold is quarantined: all of its
//     datagrams are dropped, it is removed from membership/children (and the
//     tree position, if it was the parent), excluded from CER recovery-group
//     selection, and gossip about it is ignored until the quarantine expires.
//
// Known residual: a peer that lies about its BTP *consistently from birth*
// (constant inflation factor baked into every claim) keeps a self-consistent
// trajectory and passes the delta audit. Catching that requires comparing
// claims against independently observed forwarding throughput over long
// windows — the simulator's referee protocol models exactly that study
// (internal/rost); DESIGN.md §11 discusses the split.

// Guard scoring constants: points per offense and the offense vocabulary.
const (
	// scoreWireReject is charged when a peer's datagram fails wire
	// validation (parseable enough to attribute).
	scoreWireReject = 4
	// scoreRateLimited is charged per request dropped by the token bucket.
	scoreRateLimited = 1
	// scoreAuditFail is charged when a BTP claim outruns the peer's own
	// claimed bandwidth.
	scoreAuditFail = 6
)

// guardPeer is the per-remote-peer guard state.
type guardPeer struct {
	// score is the decayed misbehavior score; scoreAt is when it was last
	// decayed.
	score   float64
	scoreAt time.Time
	// tokens is the request token bucket; tokensAt the last refill.
	tokens   float64
	tokensAt time.Time
	// quarantinedUntil, when in the future, drops everything from the peer.
	quarantinedUntil time.Time
	// lastBTP/lastBTPAt/lastBW anchor the BTP delta audit: the peer's last
	// accepted claim and when it was made.
	lastBTP   float64
	lastBTPAt time.Time
	lastBW    float64
	// lastSeen orders eviction when the guard table is full.
	lastSeen time.Time
}

// guardPeerLocked returns (creating if needed) the guard record for a peer,
// evicting the stalest non-quarantined record when the table is full.
// Requires mu.
func (n *Node) guardPeerLocked(addr wire.Addr, now time.Time) *guardPeer {
	if p, ok := n.guard[addr]; ok {
		return p
	}
	if max := 4 * n.cfg.MembershipLimit; len(n.guard) >= max {
		var victim wire.Addr
		var oldest time.Time
		for a, p := range n.guard {
			if now.Before(p.quarantinedUntil) {
				continue // keep quarantine memory under table pressure
			}
			if victim == "" || p.lastSeen.Before(oldest) {
				victim, oldest = a, p.lastSeen
			}
		}
		if victim == "" {
			for a, p := range n.guard { // all quarantined: evict stalest anyway
				if victim == "" || p.lastSeen.Before(oldest) {
					victim, oldest = a, p.lastSeen
				}
			}
		}
		delete(n.guard, victim)
	}
	p := &guardPeer{scoreAt: now, tokensAt: now, tokens: n.cfg.GuardRequestBurst}
	n.guard[addr] = p
	return p
}

// decayScoreLocked applies the linear score decay up to now. Requires mu.
func (p *guardPeer) decayScoreLocked(rate float64, now time.Time) {
	if dt := now.Sub(p.scoreAt).Seconds(); dt > 0 {
		p.score -= rate * dt
		if p.score < 0 {
			p.score = 0
		}
	}
	p.scoreAt = now
}

// quarantinedLocked reports whether a peer is currently quarantined.
// Requires mu.
func (n *Node) quarantinedLocked(addr wire.Addr, now time.Time) bool {
	p, ok := n.guard[addr]
	return ok && now.Before(p.quarantinedUntil)
}

// quarantinedCountLocked counts peers currently quarantined. Requires mu.
func (n *Node) quarantinedCountLocked(now time.Time) int {
	c := 0
	for _, p := range n.guard {
		if now.Before(p.quarantinedUntil) {
			c++
		}
	}
	return c
}

// noteMisbehaviorLocked charges points against a peer and quarantines it when
// the decayed score crosses the threshold: membership and child state are
// purged so the peer stops influencing CER selection and the tree. Returns
// whether the quarantined peer was our parent (the caller must run the
// parent-failure path outside the lock). Requires mu.
func (n *Node) noteMisbehaviorLocked(addr wire.Addr, p *guardPeer, points float64, now time.Time) (lostParent bool) {
	p.decayScoreLocked(n.cfg.GuardScoreDecay, now)
	p.score += points
	if p.score < n.cfg.GuardQuarantineScore || now.Before(p.quarantinedUntil) {
		return false
	}
	p.quarantinedUntil = now.Add(n.cfg.GuardQuarantine)
	p.score = 0 // the sentence restarts the account
	n.stats.GuardQuarantines++
	n.met.guardQuarantines.Inc()
	delete(n.membership, addr)
	delete(n.children, addr)
	if n.attached && addr == n.parent {
		return true
	}
	return false
}

// guardTypeIsRequest reports whether a message type asks us to do work on
// the sender's behalf — the types the token bucket meters. Stream, repair
// data and handshake replies are deliberately exempt: rate-limiting the
// stream would turn the guard itself into a loss source.
func guardTypeIsRequest(t wire.Type) bool {
	switch t {
	case wire.TypeJoin, wire.TypeRepairRequest, wire.TypeMembershipRequest:
		return true
	}
	return false
}

// guardAdmit is the per-datagram admission decision for a decoded, wire-valid
// envelope: quarantine drop, request rate limit, BTP audit. It returns false
// when the datagram must not reach its handler.
func (n *Node) guardAdmit(env wire.Envelope) bool {
	if n.cfg.DisableGuard {
		return true
	}
	now := time.Now()
	admit := true
	lostParent := false
	n.mu.Lock()
	p := n.guardPeerLocked(env.From, now)
	p.lastSeen = now
	if now.Before(p.quarantinedUntil) {
		n.stats.GuardQuarantineDrops++
		n.met.guardQuarantineDrops.Inc()
		n.mu.Unlock()
		return false
	}
	switch {
	case guardTypeIsRequest(env.Type):
		if dt := now.Sub(p.tokensAt).Seconds(); dt > 0 {
			p.tokens += dt * n.cfg.GuardRequestRate
			if p.tokens > n.cfg.GuardRequestBurst {
				p.tokens = n.cfg.GuardRequestBurst
			}
		}
		p.tokensAt = now
		if p.tokens < 1 {
			n.stats.GuardRateLimited++
			n.met.guardRateLimited.Inc()
			lostParent = n.noteMisbehaviorLocked(env.From, p, scoreRateLimited, now)
			admit = false
		} else {
			p.tokens--
		}
	case env.Type == wire.TypeHeartbeat || env.Type == wire.TypeSwitchPropose:
		if !n.auditBTPLocked(p, env, now) {
			n.stats.GuardAuditFails++
			n.met.guardAuditFails.Inc()
			lostParent = n.noteMisbehaviorLocked(env.From, p, scoreAuditFail, now)
			admit = false
		}
	}
	n.mu.Unlock()
	if lostParent {
		n.onParentFailure("quarantine")
	}
	return admit
}

// noteWireReject attributes a failed decode/validation to its claimed sender
// (when one parsed) and scores it. Quarantined senders are silently dropped.
//
// The sender address comes from the REJECTED envelope, so it is the one field
// here that never passed validation: without the ValidAddr check below, a
// forger could plant arbitrary ~64KB strings (or invalid UTF-8) as guard-table
// keys — memory amplification via the very table that exists to punish it,
// and quarantine entries no honest sender address can ever match. Found by
// the wire-taint lint rule (param-sink flow into the n.guard map index).
func (n *Node) noteWireReject(from wire.Addr) {
	if n.cfg.DisableGuard || from == "" || !wire.ValidAddr(from) {
		return
	}
	now := time.Now()
	lostParent := false
	n.mu.Lock()
	p := n.guardPeerLocked(from, now)
	p.lastSeen = now
	if !now.Before(p.quarantinedUntil) {
		lostParent = n.noteMisbehaviorLocked(from, p, scoreWireReject, now)
	}
	n.mu.Unlock()
	if lostParent {
		n.onParentFailure("quarantine")
	}
}

// auditBTPLocked checks a claimed bandwidth-time product against the peer's
// own claim trajectory: between two claims dt apart, the product may grow by
// at most claimed_bandwidth * dt * slack, plus a grace floor that absorbs
// delivery jitter (reordered heartbeats compress dt). Claims may always
// *shrink* — a restarted peer resets its clock. The baseline is only
// advanced by claims that pass, so a forging peer keeps failing against its
// last honest claim instead of ratcheting the baseline up. Requires mu.
func (n *Node) auditBTPLocked(p *guardPeer, env wire.Envelope, now time.Time) bool {
	if p.lastBTPAt.IsZero() {
		// First claim: nothing to compare against. (A peer inflating from its
		// very first heartbeat with a consistent trajectory evades the delta
		// audit — see the package comment on residual risk.)
		if env.Type == wire.TypeHeartbeat {
			p.lastBTP, p.lastBTPAt, p.lastBW = env.BTP, now, env.Bandwidth
		}
		return true
	}
	dt := now.Sub(p.lastBTPAt).Seconds()
	bw := env.Bandwidth
	if p.lastBW > bw {
		bw = p.lastBW
	}
	grace := bw * n.cfg.HeartbeatTimeout.Seconds()
	if grace < 1 {
		grace = 1
	}
	allowed := bw*dt*n.cfg.GuardAuditSlack + grace
	if env.BTP > p.lastBTP+allowed {
		return false
	}
	if env.Type == wire.TypeHeartbeat {
		p.lastBTP, p.lastBTPAt, p.lastBW = env.BTP, now, env.Bandwidth
	}
	return true
}
