// Package experiments defines one regenerator per figure of the paper's
// evaluation (Figures 4-14) plus the ablations DESIGN.md calls out. Each
// experiment produces a Table with exactly the series the paper plots, so
// the CLI tools and benchmarks can print paper-vs-measured comparisons.
//
// Runs that share simulations (Figures 4, 7, 8 and 10 all read the same
// tree-level sweep; Figures 6 and 9 share the tracked-member runs) are
// cached inside a Runner so `omcast-all` does the work once.
//
// Every figure decomposes into independent seeded work units — one per
// replication or curve point — executed on a bounded worker pool
// (internal/parallel) and merged in canonical unit order, so tables,
// progress lines and metric snapshots are byte-identical for every worker
// count. See DESIGN.md §12 for the determinism argument.
package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
	"time"

	"omcast"
	"omcast/internal/metrics"
	"omcast/internal/parallel"
	"omcast/internal/stats"
)

// Options scales the experiment suite.
type Options struct {
	// Seed is the base random seed; replicated runs use Seed, Seed+1, ...
	Seed int64
	// Sizes are the steady-state member counts for the size sweeps
	// (Figures 4, 7, 8, 10, 12); nil means the paper's {2000, 5000, 8000,
	// 11000, 14000}.
	Sizes []int
	// Size is the member count for single-size figures (5, 6, 9, 11, 13,
	// 14); zero means the paper's 8000.
	Size int
	// Warmup and Measure bound each run; zero means 3 h / 1 h.
	Warmup, Measure time.Duration
	// Replicas is the number of independent seeds behind Figure 14's 95%
	// confidence intervals; zero means 5.
	Replicas int
	// SweepSeeds averages the Figure 4/7/8/10 size sweep over this many
	// seeds; zero means 3.
	SweepSeeds int
	// ScaleSizes are the member counts for the fig-scale sweep; nil means
	// {2000, 14000, 140000} — the paper's smallest and largest sweep sizes
	// plus the Figure 4 re-run at ten times the paper's N. The table reports
	// only seed-deterministic observables (disruptions, delay, event
	// counts); bytes/member and ns/event live in BENCH scale artifacts
	// (internal/bench.RunScale), which is also where the 10^6-member single
	// run belongs.
	ScaleSizes []int
	// Workers bounds the worker pool running a figure's independent work
	// units; zero means GOMAXPROCS, 1 forces sequential execution. Every
	// setting produces byte-identical output: results, metrics and progress
	// lines are merged in canonical unit order after each batch.
	Workers int
	// Quick shrinks everything (small topology, few hundred members, short
	// windows) for smoke tests and benchmarks. It fills only the fields the
	// caller left at their zero value, so tests can combine Quick's small
	// topology with custom sizes or windows.
	Quick bool
	// Paranoid routes every run's invariant checks through the full O(n)
	// scan and schedules periodic tree audits (omcast.Config.Paranoid). The
	// audit events can shift same-time tie-breaks, so paranoid outputs are
	// only comparable to other paranoid runs — it is a debugging aid, not a
	// reporting mode.
	Paranoid bool
	// Progress, when non-nil, receives one line per completed run. Lines
	// for a figure's work units are delivered after the figure's batch
	// completes, in canonical unit order regardless of Workers; the
	// callback is only ever invoked from the goroutine calling Run.
	Progress func(format string, args ...any)
	// Metrics, when non-nil, accumulates every run's instruments. Work
	// units populate private registries that are merged into this one in
	// canonical unit order (see metrics.Registry.Merge), which mirrors
	// sequential sessions sharing the registry and keeps snapshots
	// byte-identical across worker counts.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Quick {
		if o.Sizes == nil {
			o.Sizes = []int{400, 800}
		}
		if o.Size == 0 {
			o.Size = 800
		}
		if o.Warmup <= 0 {
			o.Warmup = 45 * time.Minute
		}
		if o.Measure <= 0 {
			o.Measure = 30 * time.Minute
		}
		if o.Replicas <= 0 {
			o.Replicas = 2
		}
		if o.SweepSeeds <= 0 {
			o.SweepSeeds = 1
		}
		if o.ScaleSizes == nil {
			o.ScaleSizes = []int{250, 500}
		}
	}
	if o.ScaleSizes == nil {
		o.ScaleSizes = []int{2000, 14000, 140000}
	}
	if o.Sizes == nil {
		o.Sizes = []int{2000, 5000, 8000, 11000, 14000}
	}
	if o.Size == 0 {
		o.Size = 8000
	}
	if o.Warmup <= 0 {
		o.Warmup = 3 * time.Hour
	}
	if o.Measure <= 0 {
		o.Measure = time.Hour
	}
	if o.Replicas <= 0 {
		o.Replicas = 5
	}
	if o.SweepSeeds <= 0 {
		o.SweepSeeds = 3
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// baseConfig builds the session configuration for one run.
func (o Options) baseConfig(seed int64, alg omcast.Algorithm, size int) omcast.Config {
	cfg := omcast.Config{
		Seed:       seed,
		Algorithm:  alg,
		TargetSize: size,
		Warmup:     o.Warmup,
		Measure:    o.Measure,
		Metrics:    o.Metrics,
		Paranoid:   o.Paranoid,
	}
	if o.Quick {
		cfg.Topology = omcast.SmallTopology()
	}
	return cfg
}

// Table is one regenerated figure: a header row plus formatted data rows.
type Table struct {
	ID      string
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	Elapsed time.Duration
}

// Format renders the table as aligned plain text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for i, cell := range row {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", pad+2, cell)
		}
		b.WriteString("\n")
		if r == 0 {
			for i := range t.Header {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 comma-separated values (header first),
// for plotting pipelines. Cells keep their unit suffixes; strip them with
// the consumer of your choice.
func (t Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	// Write never fails on a strings.Builder; the error is surfaced by
	// Flush below for completeness.
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// IDs lists all experiment identifiers in figure order.
func IDs() []string {
	return []string{
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14",
		"ablation-recovery", "ablation-rejoin", "ablation-priority", "ablation-guard",
		"extension-multitree", "fig-fleet", "fig-scale",
	}
}

// Runner executes experiments with shared-run caching.
type Runner struct {
	opts Options

	sweep   map[omcast.Algorithm][]omcast.TreeResult // per size
	tracked map[omcast.Algorithm]omcast.TrackedSeries
	fig5    map[omcast.Algorithm][]float64
}

// NewRunner builds a Runner over the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts.withDefaults()}
}

// runUnits executes n independent work units on the engine's worker pool and
// returns their results in unit order. Each unit receives a copy of the
// runner's options with Metrics swapped for a private registry and Progress
// swapped for a line buffer; once the whole batch finishes, the registries
// are merged into the shared registry and the buffered lines emitted, both
// in canonical unit order. Every worker count — including 1 — goes through
// the same private-registry path, so float accumulation order, snapshot
// bytes and the progress stream never depend on Workers or on scheduling.
//
// Units must draw randomness only from the seeds in their own configs
// (omcast.Run derives every stream from Config.Seed), touch no Runner state,
// and leave all table assembly to the merge code in their caller.
func runUnits[T any](r *Runner, n int, fn func(o Options, i int) (T, error)) ([]T, error) {
	type sidecar struct {
		reg  *metrics.Registry
		msgs []string
	}
	sidecars := make([]sidecar, n)
	results, err := parallel.Run(r.opts.Workers, n, func(i int) (T, error) {
		sc := &sidecars[i]
		o := r.opts
		if o.Metrics != nil {
			sc.reg = metrics.NewRegistry()
			o.Metrics = sc.reg
		}
		o.Progress = func(format string, args ...any) {
			sc.msgs = append(sc.msgs, fmt.Sprintf(format, args...))
		}
		return fn(o, i)
	})
	if err != nil {
		return nil, err
	}
	for i := range sidecars {
		if sidecars[i].reg != nil {
			r.opts.Metrics.Merge(sidecars[i].reg)
		}
		for _, line := range sidecars[i].msgs {
			r.opts.progress("%s", line)
		}
	}
	return results, nil
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (Table, error) {
	//lint:ignore no-wallclock reason: Table.Elapsed is harness wall-clock cost, not simulation output
	start := time.Now()
	var (
		t   Table
		err error
	)
	switch id {
	case "fig4":
		t, err = r.fig4()
	case "fig5":
		t, err = r.fig5Table()
	case "fig6":
		t, err = r.fig6()
	case "fig7":
		t, err = r.fig7()
	case "fig8":
		t, err = r.fig8()
	case "fig9":
		t, err = r.fig9()
	case "fig10":
		t, err = r.fig10()
	case "fig11":
		t, err = r.fig11()
	case "fig12":
		t, err = r.fig12()
	case "fig13":
		t, err = r.fig13()
	case "fig14":
		t, err = r.fig14()
	case "ablation-recovery":
		t, err = r.ablationRecovery()
	case "ablation-rejoin":
		t, err = r.ablationRejoin()
	case "ablation-priority":
		t, err = r.ablationPriority()
	case "ablation-guard":
		t, err = r.ablationGuard()
	case "extension-multitree":
		t, err = r.extensionMultiTree()
	case "fig-fleet":
		t, err = r.figFleet()
	case "fig-scale":
		t, err = r.figScale()
	default:
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	if err != nil {
		return Table{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	t.ID = id
	//lint:ignore no-wallclock reason: Table.Elapsed is harness wall-clock cost, not simulation output
	t.Elapsed = time.Since(start)
	return t, nil
}

// All runs every experiment in order.
func (r *Runner) All() ([]Table, error) {
	tables := make([]Table, 0, len(IDs()))
	for _, id := range IDs() {
		t, err := r.Run(id)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// treeSweep runs (once) the shared size sweep behind Figures 4, 7, 8, 10.
// Work units are the individual (algorithm, size, replication) runs; the
// merge loop averages replications in ascending seed order, exactly as the
// sequential engine did, so the averages are bit-identical.
func (r *Runner) treeSweep() (map[omcast.Algorithm][]omcast.TreeResult, error) {
	if r.sweep != nil {
		return r.sweep, nil
	}
	type cell struct {
		alg  omcast.Algorithm
		size int
		rep  int
	}
	cells := make([]cell, 0, len(omcast.Algorithms)*len(r.opts.Sizes)*r.opts.SweepSeeds)
	for _, alg := range omcast.Algorithms {
		for _, size := range r.opts.Sizes {
			for rep := 0; rep < r.opts.SweepSeeds; rep++ {
				cells = append(cells, cell{alg, size, rep})
			}
		}
	}
	results, err := runUnits(r, len(cells), func(o Options, i int) (omcast.TreeResult, error) {
		c := cells[i]
		res, err := omcast.Run(o.baseConfig(o.Seed+int64(c.rep), c.alg, c.size))
		if err != nil {
			return omcast.TreeResult{}, fmt.Errorf("sweep %v at %d: %w", c.alg, c.size, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	sweep := make(map[omcast.Algorithm][]omcast.TreeResult, len(omcast.Algorithms))
	n := float64(r.opts.SweepSeeds)
	i := 0
	for _, alg := range omcast.Algorithms {
		for _, size := range r.opts.Sizes {
			var avg omcast.TreeResult
			for rep := 0; rep < r.opts.SweepSeeds; rep++ {
				res := results[i]
				i++
				avg.Algorithm = res.Algorithm
				avg.AvgDisruptions += res.AvgDisruptions / n
				avg.AvgReconnections += res.AvgReconnections / n
				avg.PerLifetimeDisruptions += res.PerLifetimeDisruptions / n
				avg.PerLifetimeReconnections += res.PerLifetimeReconnections / n
				avg.AvgServiceDelayMS += res.AvgServiceDelayMS / n
				avg.AvgStretch += res.AvgStretch / n
				avg.AvgSize += res.AvgSize / n
				avg.Departures += res.Departures
			}
			sweep[alg] = append(sweep[alg], avg)
			r.opts.progress("sweep %-26s M=%-6d disruptions=%.2f delay=%.0fms (%d seeds)",
				alg, size, avg.AvgDisruptions, avg.AvgServiceDelayMS, r.opts.SweepSeeds)
		}
	}
	r.sweep = sweep
	return sweep, nil
}

// sweepTable renders one metric of the shared sweep.
func (r *Runner) sweepTable(title, unit string, metric func(omcast.TreeResult) float64) (Table, error) {
	sweep, err := r.treeSweep()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  title,
		Header: []string{"avg size"},
	}
	for _, alg := range omcast.Algorithms {
		t.Header = append(t.Header, alg.String())
	}
	for i, size := range r.opts.Sizes {
		row := []string{fmt.Sprintf("%.0f", sweep[omcast.MinimumDepth][i].AvgSize)}
		for _, alg := range omcast.Algorithms {
			row = append(row, fmt.Sprintf("%.2f%s", metric(sweep[alg][i]), unit))
		}
		t.Rows = append(t.Rows, row)
		_ = size
	}
	return t, nil
}

func (r *Runner) fig4() (Table, error) {
	t, err := r.sweepTable("Avg streaming disruptions per node vs steady-state size", "", func(res omcast.TreeResult) float64 {
		return res.AvgDisruptions
	})
	t.Notes = append(t.Notes,
		"paper: ROST lowest everywhere; 36-57% below relaxed BO, up to 40% below relaxed TO;",
		"minimum-depth and longest-first worst and most size-sensitive")
	return t, err
}

func (r *Runner) fig7() (Table, error) {
	t, err := r.sweepTable("Avg end-to-end service delay vs size", "ms", func(res omcast.TreeResult) float64 {
		return res.AvgServiceDelayMS
	})
	t.Notes = append(t.Notes,
		"paper: relaxed BO shortest (centralized); ROST best of the distributed algorithms;",
		"longest-first by far the tallest tree")
	return t, err
}

func (r *Runner) fig8() (Table, error) {
	t, err := r.sweepTable("Avg network stretch vs size", "", func(res omcast.TreeResult) float64 {
		return res.AvgStretch
	})
	t.Notes = append(t.Notes, "paper: same ordering as Figure 7")
	return t, err
}

func (r *Runner) fig10() (Table, error) {
	t, err := r.sweepTable("Optimizer reconnections per node vs size (protocol overhead)", "", func(res omcast.TreeResult) float64 {
		return res.AvgReconnections
	})
	t.Notes = append(t.Notes,
		"paper: minimum-depth and longest-first impose none; relaxed TO highest, relaxed BO next;",
		"ROST far below one reconnection per node")
	return t, err
}

// fig5Data runs (once) the 5-algorithm single-size comparison behind the
// disruption CDF. One work unit per algorithm.
func (r *Runner) fig5Data() (map[omcast.Algorithm][]float64, error) {
	if r.fig5 != nil {
		return r.fig5, nil
	}
	counts, err := runUnits(r, len(omcast.Algorithms), func(o Options, i int) ([]float64, error) {
		alg := omcast.Algorithms[i]
		res, err := omcast.Run(o.baseConfig(o.Seed, alg, o.Size))
		if err != nil {
			return nil, err
		}
		o.progress("fig5 %-26s members=%d", alg, len(res.DisruptionCounts))
		return res.DisruptionCounts, nil
	})
	if err != nil {
		return nil, err
	}
	data := make(map[omcast.Algorithm][]float64, len(omcast.Algorithms))
	for i, alg := range omcast.Algorithms {
		data[alg] = counts[i]
	}
	r.fig5 = data
	return data, nil
}

func (r *Runner) fig5Table() (Table, error) {
	data, err := r.fig5Data()
	if err != nil {
		return Table{}, err
	}
	thresholds := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	t := Table{
		Title:  fmt.Sprintf("CDF of per-node disruption counts (%d nodes)", r.opts.Size),
		Header: []string{"disruptions <="},
		Notes: []string{
			"cumulative percentage of nodes with at most X disruptions over the window",
			"paper: the ROST curve dominates (is leftmost/highest) at every threshold",
		},
	}
	for _, alg := range omcast.Algorithms {
		t.Header = append(t.Header, alg.String())
	}
	for _, th := range thresholds {
		row := []string{fmt.Sprintf("%.0f", th)}
		for _, alg := range omcast.Algorithms {
			points := stats.CDFAt(data[alg], []float64{th})
			row = append(row, fmt.Sprintf("%.1f%%", points[0].Fraction*100))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// trackedRuns runs (once) the Figure 6/9 typical-member sessions. One work
// unit per algorithm.
func (r *Runner) trackedRuns() (map[omcast.Algorithm]omcast.TrackedSeries, error) {
	if r.tracked != nil {
		return r.tracked, nil
	}
	observe := 300 * time.Minute
	if r.opts.Quick {
		observe = 60 * time.Minute
	}
	series, err := runUnits(r, len(omcast.Algorithms), func(o Options, i int) (omcast.TrackedSeries, error) {
		alg := omcast.Algorithms[i]
		s, _, err := omcast.RunTracked(o.baseConfig(o.Seed, alg, o.Size), 2, observe)
		if err != nil {
			return omcast.TrackedSeries{}, err
		}
		o.progress("tracked %-26s samples=%d", alg, len(s.Minutes))
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[omcast.Algorithm]omcast.TrackedSeries, len(omcast.Algorithms))
	for i, alg := range omcast.Algorithms {
		out[alg] = series[i]
	}
	r.tracked = out
	return out, nil
}

// trackedTable renders one series of the tracked runs sampled at the
// paper's 33-minute ticks.
func (r *Runner) trackedTable(title string, value func(omcast.TrackedSeries, int) string) (Table, error) {
	data, err := r.trackedRuns()
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: title, Header: []string{"minute"}}
	for _, alg := range omcast.Algorithms {
		t.Header = append(t.Header, alg.String())
	}
	// Find the shortest series to bound sampling.
	minLen := -1
	for _, alg := range omcast.Algorithms {
		if n := len(data[alg].Minutes); minLen < 0 || n < minLen {
			minLen = n
		}
	}
	step := 33
	if r.opts.Quick {
		step = 10
	}
	for i := 0; i < minLen; i += step {
		row := []string{fmt.Sprintf("%.0f", data[omcast.MinimumDepth].Minutes[i])}
		for _, alg := range omcast.Algorithms {
			row = append(row, value(data[alg], i))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (r *Runner) fig6() (Table, error) {
	t, err := r.trackedTable("Cumulative disruptions of a typical member over time",
		func(s omcast.TrackedSeries, i int) string {
			return fmt.Sprintf("%d", s.Disruptions[i])
		})
	t.Notes = append(t.Notes,
		"paper: under ROST the slope flattens as the member ages and ascends the tree")
	return t, err
}

func (r *Runner) fig9() (Table, error) {
	t, err := r.trackedTable("Service delay of a typical member over time",
		func(s omcast.TrackedSeries, i int) string {
			return fmt.Sprintf("%.0fms", s.ServiceDelayMS[i])
		})
	t.Notes = append(t.Notes,
		"paper: ROST and relaxed TO delays shrink as the member climbs; the others fluctuate without converging",
		"0ms samples mean the member was between parents at the sampling instant")
	return t, err
}

func (r *Runner) fig11() (Table, error) {
	intervals := []time.Duration{480 * time.Second, 960 * time.Second, 1200 * time.Second, 1800 * time.Second}
	if r.opts.Quick {
		intervals = []time.Duration{240 * time.Second, 960 * time.Second}
	}
	t := Table{
		Title:  fmt.Sprintf("Effect of the ROST switching interval (%d nodes)", r.opts.Size),
		Header: []string{"interval", "disruptions/node", "service delay", "stretch", "reconnections/node"},
		Notes: []string{
			"paper: smaller intervals improve reliability, delay and stretch at a small overhead cost",
			"(0.15 reconnections per node at the smallest interval)",
		},
	}
	rows, err := runUnits(r, len(intervals), func(o Options, i int) ([]string, error) {
		iv := intervals[i]
		cfg := o.baseConfig(o.Seed, omcast.ROST, o.Size)
		cfg.SwitchInterval = iv
		res, err := omcast.Run(cfg)
		if err != nil {
			return nil, err
		}
		o.progress("fig11 interval=%v disruptions=%.2f", iv, res.AvgDisruptions)
		return []string{
			fmt.Sprintf("%.0fs", iv.Seconds()),
			fmt.Sprintf("%.2f", res.AvgDisruptions),
			fmt.Sprintf("%.0fms", res.AvgServiceDelayMS),
			fmt.Sprintf("%.2f", res.AvgStretch),
			fmt.Sprintf("%.2f", res.AvgReconnections),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

func (r *Runner) fig12() (Table, error) {
	groups := []int{1, 2, 3, 4}
	t := Table{
		Title:  "Avg starving-time ratio vs size for recovery group sizes 1-4 (min-depth tree, CER)",
		Header: []string{"avg size"},
		Notes: []string{
			"paper: growing the group from 1 to 3 cuts the starving time by an order of magnitude (<0.2% everywhere)",
		},
	}
	for _, k := range groups {
		t.Header = append(t.Header, fmt.Sprintf("K=%d", k))
	}
	type cell struct{ size, k int }
	cells := make([]cell, 0, len(r.opts.Sizes)*len(groups))
	for _, size := range r.opts.Sizes {
		for _, k := range groups {
			cells = append(cells, cell{size, k})
		}
	}
	type point struct {
		avgSize float64
		cell    string
	}
	points, err := runUnits(r, len(cells), func(o Options, i int) (point, error) {
		c := cells[i]
		res, err := omcast.RunStreaming(o.baseConfig(o.Seed, omcast.MinimumDepth, c.size),
			omcast.StreamConfig{Recovery: omcast.CER, GroupSize: c.k})
		if err != nil {
			return point{}, err
		}
		o.progress("fig12 M=%-6d K=%d starving=%.3f%%", c.size, c.k, res.AvgStarvingRatio*100)
		return point{res.AvgSize, fmt.Sprintf("%.3f%%", res.AvgStarvingRatio*100)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	i := 0
	for range r.opts.Sizes {
		row := make([]string, 0, len(groups)+1)
		row = append(row, fmt.Sprintf("%.0f", points[i].avgSize))
		for range groups {
			row = append(row, points[i].cell)
			i++
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (r *Runner) fig13() (Table, error) {
	buffers := []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second, 20 * time.Second, 25 * time.Second, 30 * time.Second}
	groups := []int{1, 2, 3}
	if r.opts.Quick {
		buffers = []time.Duration{5 * time.Second, 20 * time.Second}
	}
	t := Table{
		Title:  fmt.Sprintf("Avg starving-time ratio vs buffer size (%d nodes, min-depth tree, CER)", r.opts.Size),
		Header: []string{"buffer"},
		Notes: []string{
			"paper: with one recovery node only a ~27s buffer reaches what two recovery nodes achieve at 5s",
		},
	}
	for _, k := range groups {
		t.Header = append(t.Header, fmt.Sprintf("K=%d", k))
	}
	type cell struct {
		buffer time.Duration
		k      int
	}
	cells := make([]cell, 0, len(buffers)*len(groups))
	for _, b := range buffers {
		for _, k := range groups {
			cells = append(cells, cell{b, k})
		}
	}
	ratios, err := runUnits(r, len(cells), func(o Options, i int) (string, error) {
		c := cells[i]
		res, err := omcast.RunStreaming(o.baseConfig(o.Seed, omcast.MinimumDepth, o.Size),
			omcast.StreamConfig{Recovery: omcast.CER, GroupSize: c.k, Buffer: c.buffer})
		if err != nil {
			return "", err
		}
		o.progress("fig13 B=%v K=%d starving=%.3f%%", c.buffer, c.k, res.AvgStarvingRatio*100)
		return fmt.Sprintf("%.3f%%", res.AvgStarvingRatio*100), nil
	})
	if err != nil {
		return Table{}, err
	}
	i := 0
	for _, b := range buffers {
		row := []string{fmt.Sprintf("%.0fs", b.Seconds())}
		for range groups {
			row = append(row, ratios[i])
			i++
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (r *Runner) fig14() (Table, error) {
	groups := []int{1, 2, 3}
	t := Table{
		Title:  fmt.Sprintf("ROST+CER vs minimum-depth + single-source (%d nodes, 95%% CI over %d seeds)", r.opts.Size, r.opts.Replicas),
		Header: []string{"group size", "ROST+CER", "min-depth + single source", "improvement"},
		Notes: []string{
			"paper: ROST+CER reduces the starving ratio 8-9x on average; even at group size 1 it beats",
			"the baseline with two recovery nodes",
		},
	}
	type cell struct{ k, rep int }
	cells := make([]cell, 0, len(groups)*r.opts.Replicas)
	for _, k := range groups {
		for rep := 0; rep < r.opts.Replicas; rep++ {
			cells = append(cells, cell{k, rep})
		}
	}
	type pair struct{ rost, base float64 }
	pairs, err := runUnits(r, len(cells), func(o Options, i int) (pair, error) {
		c := cells[i]
		seed := o.Seed + int64(c.rep)
		a, err := omcast.RunStreaming(o.baseConfig(seed, omcast.ROST, o.Size),
			omcast.StreamConfig{Recovery: omcast.CER, GroupSize: c.k})
		if err != nil {
			return pair{}, err
		}
		b, err := omcast.RunStreaming(o.baseConfig(seed, omcast.MinimumDepth, o.Size),
			omcast.StreamConfig{Recovery: omcast.SingleSource, GroupSize: c.k})
		if err != nil {
			return pair{}, err
		}
		o.progress("fig14 K=%d seed=%d rost=%.3f%% base=%.3f%%", c.k, seed, a.AvgStarvingRatio*100, b.AvgStarvingRatio*100)
		return pair{a.AvgStarvingRatio * 100, b.AvgStarvingRatio * 100}, nil
	})
	if err != nil {
		return Table{}, err
	}
	i := 0
	for _, k := range groups {
		var rost, base []float64
		for rep := 0; rep < r.opts.Replicas; rep++ {
			rost = append(rost, pairs[i].rost)
			base = append(base, pairs[i].base)
			i++
		}
		ra := stats.ConfidenceInterval95(rost)
		ba := stats.ConfidenceInterval95(base)
		improvement := "n/a"
		if ra.Mean > 0 {
			improvement = fmt.Sprintf("%.1fx", ba.Mean/ra.Mean)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f%% +/- %.3f", ra.Mean, ra.Radius),
			fmt.Sprintf("%.3f%% +/- %.3f", ba.Mean, ba.Radius),
			improvement,
		})
	}
	return t, nil
}

func (r *Runner) ablationRecovery() (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: recovery group selection and striping (%d nodes, min-depth tree, K=3)", r.opts.Size),
		Header: []string{"scheme", "starving ratio"},
		Notes:  []string{"isolates the value of MLC selection (Algorithm 1) from the value of bandwidth striping"},
	}
	schemes := []omcast.Recovery{omcast.CER, omcast.CERRandomGroup, omcast.SingleSource}
	rows, err := runUnits(r, len(schemes), func(o Options, i int) ([]string, error) {
		scheme := schemes[i]
		res, err := omcast.RunStreaming(o.baseConfig(o.Seed, omcast.MinimumDepth, o.Size),
			omcast.StreamConfig{Recovery: scheme, GroupSize: 3})
		if err != nil {
			return nil, err
		}
		o.progress("ablation-recovery %s starving=%.3f%%", scheme, res.AvgStarvingRatio*100)
		return []string{scheme.String(), fmt.Sprintf("%.3f%%", res.AvgStarvingRatio*100)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

func (r *Runner) ablationRejoin() (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: ancestor-first orphan rejoin (%d nodes, ROST)", r.opts.Size),
		Header: []string{"orphan rejoin", "disruptions/node", "service delay"},
		Notes:  []string{"ancestor rejoin keeps freed interior positions inside the affected subtree"},
	}
	variants := []bool{false, true}
	rows, err := runUnits(r, len(variants), func(o Options, i int) ([]string, error) {
		disable := variants[i]
		cfg := o.baseConfig(o.Seed, omcast.ROST, o.Size)
		cfg.DisableAncestorRejoin = disable
		res, err := omcast.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := "ancestor-first"
		if disable {
			label = "full re-join"
		}
		o.progress("ablation-rejoin disable=%v disruptions=%.2f", disable, res.AvgDisruptions)
		return []string{label,
			fmt.Sprintf("%.2f", res.AvgDisruptions),
			fmt.Sprintf("%.0fms", res.AvgServiceDelayMS)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

func (r *Runner) ablationPriority() (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: contributor-priority join (%d nodes, ROST)", r.opts.Size),
		Header: []string{"join rule", "disruptions/node", "service delay", "stretch"},
		Notes:  []string{"parking free-riders deep keeps high slots for members switching can actually displace"},
	}
	variants := []bool{false, true}
	rows, err := runUnits(r, len(variants), func(o Options, i int) ([]string, error) {
		cp := variants[i]
		cfg := o.baseConfig(o.Seed, omcast.ROST, o.Size)
		cfg.ContributorPriority = cp
		res, err := omcast.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := "minimum-depth for all"
		if cp {
			label = "contributor priority"
		}
		o.progress("ablation-priority cp=%v disruptions=%.2f", cp, res.AvgDisruptions)
		return []string{label,
			fmt.Sprintf("%.2f", res.AvgDisruptions),
			fmt.Sprintf("%.0fms", res.AvgServiceDelayMS),
			fmt.Sprintf("%.2f", res.AvgStretch)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

func (r *Runner) ablationGuard() (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: ROST bandwidth guard on switching (%d nodes)", r.opts.Size),
		Header: []string{"guard", "disruptions/node", "reconnections/node", "service delay"},
		Notes:  []string{"without the guard, lower-bandwidth children switch up only to be overtaken and demoted again"},
	}
	variants := []bool{false, true}
	rows, err := runUnits(r, len(variants), func(o Options, i int) ([]string, error) {
		disabled := variants[i]
		cfg := o.baseConfig(o.Seed, omcast.ROST, o.Size)
		cfg.DisableBandwidthGuard = disabled
		res, err := omcast.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := "bandwidth >= parent required"
		if disabled {
			label = "BTP comparison only"
		}
		o.progress("ablation-guard disabled=%v disruptions=%.2f", disabled, res.AvgDisruptions)
		return []string{label,
			fmt.Sprintf("%.2f", res.AvgDisruptions),
			fmt.Sprintf("%.2f", res.AvgReconnections),
			fmt.Sprintf("%.0fms", res.AvgServiceDelayMS)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

func (r *Runner) extensionMultiTree() (Table, error) {
	size := r.opts.Size / 4
	if r.opts.Quick {
		size = r.opts.Size
	}
	t := Table{
		Title:  fmt.Sprintf("Extension: multiple-tree delivery with MDC (%d nodes)", size),
		Header: []string{"configuration", "outage ratio", "delivery ratio", "episodes"},
		Notes: []string{
			"the paper's stated future direction: striping the stream over T trees so one failure",
			"degrades (one stripe) instead of interrupting; quorum = stripes-1 models one-description slack",
		},
	}
	type variant struct {
		label string
		mt    omcast.MultiTreeConfig
	}
	variants := []variant{
		{"single tree (baseline)", omcast.MultiTreeConfig{Stripes: 1}},
		{"4 stripes, split bandwidth", omcast.MultiTreeConfig{Stripes: 4, Quorum: 3}},
		{"4 stripes, interior-disjoint", omcast.MultiTreeConfig{Stripes: 4, Quorum: 3, Disjoint: true}},
		{"4 stripes, split + ROST", omcast.MultiTreeConfig{Stripes: 4, Quorum: 3, UseROST: true}},
	}
	rows, err := runUnits(r, len(variants), func(o Options, i int) ([]string, error) {
		v := variants[i]
		res, err := omcast.RunMultiTree(o.baseConfig(o.Seed, omcast.MinimumDepth, size), v.mt)
		if err != nil {
			return nil, err
		}
		o.progress("multitree %-30s outage=%.3f%%", v.label, res.OutageRatio*100)
		return []string{
			v.label,
			fmt.Sprintf("%.3f%%", res.OutageRatio*100),
			fmt.Sprintf("%.2f%%", res.FullQualityRatio*100),
			fmt.Sprintf("%d", res.Episodes),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// figFleet exercises the federation control plane (internal/fleet): N
// trees x M viewers under steady churn, hotspot skew with rebalancing, a
// flash crowd, a source kill, a cascading double kill, and a graceful
// drain. Every scenario checks the configured reassignment-time and
// outage-ratio bounds; the "bounds" column must read "ok" on every row.
func (r *Runner) figFleet() (Table, error) {
	viewers := 240
	if r.opts.Quick {
		viewers = 80
	}
	base := func(o Options, seed int64) omcast.FleetConfig {
		return omcast.FleetConfig{
			Seed:              seed,
			Sources:           3,
			TreesPerSource:    2,
			TreeCapacity:      viewers / 3,
			Viewers:           viewers,
			Horizon:           2 * time.Minute,
			HeartbeatInterval: 500 * time.Millisecond,
			SuspectMisses:     2,
			DownMisses:        4,
			RejoinBackoffBase: 100 * time.Millisecond,
			RejoinBackoffMax:  2 * time.Second,
			AdmitPerInterval:  viewers / 10,
			MaxReassignTime:   15 * time.Second,
			Metrics:           o.Metrics,
		}
	}
	t := Table{
		Title:  fmt.Sprintf("Fleet federation: bounded source failover (%d viewers, 3 sources x 2 trees)", viewers),
		Header: []string{"scenario", "viewers", "failovers", "reassigned", "p99 reassign", "outage ratio", "migrations", "bounds"},
		Notes: []string{
			"failover bound: every viewer orphaned by a source death re-admitted within MaxReassignTime,",
			"paced by per-source admission tokens and the node layer's jittered exponential backoff",
		},
	}
	type variant struct {
		label string
		mut   func(*omcast.FleetConfig)
	}
	variants := []variant{
		{"steady churn", func(c *omcast.FleetConfig) {
			c.MeanLifetime = 90 * time.Second
			c.MaxOutageRatio = 0 // churned departures can strand an episode mid-backoff
		}},
		{"load skew + rebalance", func(c *omcast.FleetConfig) {
			c.LoadSkew = 0.7
			c.RebalanceEvery = 2 * time.Second
			c.RebalanceSlack = 2
		}},
		{"flash crowd", func(c *omcast.FleetConfig) {
			c.Viewers = viewers / 4
			c.Arrivals = []omcast.FleetBurst{{At: 10 * time.Second, Count: viewers - viewers/4}}
		}},
		{"source kill", func(c *omcast.FleetConfig) {
			c.Kills = []omcast.FleetEvent{{At: 20 * time.Second, Source: 0}}
			c.MaxOutageRatio = 0.25
		}},
		{"cascading kill (10 s apart)", func(c *omcast.FleetConfig) {
			c.TreeCapacity = viewers // the last source standing holds everyone
			c.Kills = []omcast.FleetEvent{
				{At: 20 * time.Second, Source: 0},
				{At: 30 * time.Second, Source: 1},
			}
			c.MaxOutageRatio = 0.5
		}},
		{"graceful drain", func(c *omcast.FleetConfig) {
			c.Drains = []omcast.FleetEvent{{At: 20 * time.Second, Source: 0}}
			c.MaxOutageRatio = 0.001 // make-before-break: zero outage expected
		}},
	}
	rows, err := runUnits(r, len(variants), func(o Options, i int) ([]string, error) {
		v := variants[i]
		cfg := base(o, o.Seed+int64(i))
		v.mut(&cfg)
		res, err := omcast.RunFleet(cfg)
		if err != nil {
			return nil, err
		}
		bounds := "ok"
		if n := len(res.BoundViolations); n > 0 {
			bounds = fmt.Sprintf("%d violated: %s", n, res.BoundViolations[0])
		}
		o.progress("fleet %-28s failovers=%d p99=%.2fs outage=%.4f", v.label,
			res.Failovers, res.P99Reassign.Seconds(), res.OutageRatio)
		return []string{
			v.label,
			fmt.Sprintf("%d", res.Viewers),
			fmt.Sprintf("%d", res.Failovers),
			fmt.Sprintf("%d", res.Reassigned),
			fmt.Sprintf("%.2fs", res.P99Reassign.Seconds()),
			fmt.Sprintf("%.4f", res.OutageRatio),
			fmt.Sprintf("%d", res.DrainMigrations+res.Rebalanced),
			bounds,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// figScale is the million-member experiment family's deterministic half: the
// Figure 4 headline metric (disruptions per node) re-run far beyond the
// paper's 2000-14000 sweep — by default up to ten times the paper's largest
// N — for the min-depth baseline and ROST, alongside the event counts that
// anchor the BENCH scale artifacts' ns/event figures. Every column is a pure
// function of the seed, so the table is byte-identical across worker counts
// like every other figure; machine-dependent observables (bytes/member,
// ns/event) are deliberately excluded and reported by internal/bench.RunScale
// instead.
func (r *Runner) figScale() (Table, error) {
	algs := []omcast.Algorithm{omcast.MinimumDepth, omcast.ROST}
	t := Table{
		Title:  "Scale sweep: Figure 4 metric beyond the paper's sizes (min-depth vs ROST)",
		Header: []string{"target M", "avg size", "events"},
		Notes: []string{
			"paper sweeps 2000-14000 members; the largest default size here is 10x the paper's N",
			"bytes/member and ns/event are machine observables: see BENCH scale artifacts (omcast-bench -scale)",
		},
	}
	for _, alg := range algs {
		t.Header = append(t.Header,
			alg.String()+" disruptions", alg.String()+" delay")
	}
	type cell struct {
		size int
		alg  omcast.Algorithm
	}
	cells := make([]cell, 0, len(r.opts.ScaleSizes)*len(algs))
	for _, size := range r.opts.ScaleSizes {
		for _, alg := range algs {
			cells = append(cells, cell{size, alg})
		}
	}
	results, err := runUnits(r, len(cells), func(o Options, i int) (omcast.ScaleResult, error) {
		c := cells[i]
		res, err := omcast.RunScale(o.baseConfig(o.Seed, c.alg, c.size))
		if err != nil {
			return omcast.ScaleResult{}, fmt.Errorf("scale %v at %d: %w", c.alg, c.size, err)
		}
		o.progress("fig-scale %-26s M=%-7d disruptions=%.2f events=%d", c.alg, c.size, res.AvgDisruptions, res.Events)
		return res, nil
	})
	if err != nil {
		return Table{}, err
	}
	i := 0
	for _, size := range r.opts.ScaleSizes {
		perAlg := results[i : i+len(algs)]
		row := []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0f", perAlg[0].AvgSize),
			fmt.Sprintf("%d", perAlg[0].Events+perAlg[1].Events),
		}
		for _, res := range perAlg {
			row = append(row,
				fmt.Sprintf("%.2f", res.AvgDisruptions),
				fmt.Sprintf("%.0fms", res.AvgServiceDelayMS))
		}
		t.Rows = append(t.Rows, row)
		i += len(algs)
	}
	return t, nil
}

// SortTables orders tables in canonical experiment order.
func SortTables(tables []Table) {
	order := make(map[string]int, len(IDs()))
	for i, id := range IDs() {
		order[id] = i
	}
	sort.SliceStable(tables, func(i, j int) bool {
		return order[tables[i].ID] < order[tables[j].ID]
	})
}
