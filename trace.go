package omcast

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"omcast/internal/cer"
	"omcast/internal/churn"
	"omcast/internal/eventsim"
	"omcast/internal/metrics"
	"omcast/internal/overlay"
	"omcast/internal/stream"
	"omcast/internal/tracing"
	"omcast/internal/xrand"
)

// TraceSchemaVersion is the JSONL schema version stamped into every trace
// line as "v" (see tracing.SchemaVersion for the envelope the span layer
// shares with it). Consumers should reject lines with a larger version.
const TraceSchemaVersion = tracing.SchemaVersion

// TraceEvent is one line of the JSONL event stream a run can emit (see
// RunWithTrace and RunStreamingWithTrace). Events describe overlay dynamics
// at the granularity a downstream analysis or visualisation needs:
// membership changes, failures, ROST switches, CER repair outcomes, and
// periodic metric snapshots.
//
// JSONL schema. Every line is one JSON object; "t" (virtual seconds) and
// "event" are always present. The remaining fields depend on the event:
//
//	join, rejoin — member, parent, depth, bandwidth (join only)
//	depart       — member
//	failure      — member, disrupted
//	switch       — member (promoted), demoted
//	repair       — member (the orphan), repaired, lost
//	sample       — metrics (a full registry snapshot; no member)
//
// Presence is exact: fields that carry a meaningful zero (parent 0 is the
// source, depth 0 is the source's layer, disrupted 0 is a leaf failure,
// repaired/lost 0 are real outcomes) are pointers serialised whenever the
// event defines them and omitted otherwise, so consumers can distinguish
// "zero" from "not applicable" without knowing the event vocabulary.
type TraceEvent struct {
	// V is the schema version (TraceSchemaVersion), stamped on every line.
	V int `json:"v"`
	// T is the virtual time in seconds.
	T float64 `json:"t"`
	// Event is one of "join", "rejoin", "depart", "failure", "switch",
	// "repair", "sample", "span".
	Event string `json:"event"`
	// Member is the subject member ID (absent on sample events).
	Member int64 `json:"member,omitempty"`
	// Parent is the member's parent after a join/rejoin (0 is the source).
	Parent *int64 `json:"parent,omitempty"`
	// Depth is the member's layer after a join/rejoin.
	Depth *int `json:"depth,omitempty"`
	// Bandwidth is the member's outbound bandwidth on join.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Disrupted is the descendant count a failure disrupted (0 for leaves).
	Disrupted *int `json:"disrupted,omitempty"`
	// Demoted is the former parent in a switch event.
	Demoted int64 `json:"demoted,omitempty"`
	// Repaired and Lost are the orphan's per-packet repair outcome.
	Repaired *int `json:"repaired,omitempty"`
	Lost     *int `json:"lost,omitempty"`
	// Metrics is the registry snapshot carried by sample events.
	Metrics []metrics.Metric `json:"metrics,omitempty"`
	// Span is the completed causal span carried by "span" events (see
	// TraceOptions.Spans and internal/tracing).
	Span *tracing.Span `json:"span,omitempty"`
}

// TraceOptions tunes the trace stream beyond the default event vocabulary.
type TraceOptions struct {
	// SampleEvery interleaves "sample" events — full snapshots of the run's
	// metrics registry — into the trace at this virtual-time interval. Zero
	// disables sampling. When sampling is on and Config.Metrics is nil, a
	// registry is created internally.
	SampleEvery time.Duration
	// Spans interleaves "span" events: causal episode records (rejoin
	// episodes with per-attempt children, CER repair episodes with
	// detect/fetch/stall stages, ROST switch decisions). Span IDs derive
	// from (Config.Seed, member, per-member sequence), so the stream stays
	// byte-identical across reruns and worker counts.
	Spans bool
}

// intPtr and int64Ptr build the presence-carrying pointer fields.
func intPtr(v int) *int       { return &v }
func int64Ptr(v int64) *int64 { return &v }

// tracer serialises events to a writer; encoding errors surface once.
type tracer struct {
	enc *json.Encoder
	err error
}

func newTracer(w io.Writer) *tracer {
	return &tracer{enc: json.NewEncoder(w)}
}

func (tr *tracer) emit(ev TraceEvent) {
	if tr.err != nil {
		return
	}
	ev.V = TraceSchemaVersion
	tr.err = tr.enc.Encode(ev)
}

// spanTrace manages the causal span layer of a traced run: a deterministic
// tracer whose completed spans re-enter the JSONL stream as "span" events,
// plus the rejoin episodes still open (keyed by orphan; opened at parent
// failure, closed at reattachment or departure). Episodes still open when
// the run ends are simply never emitted.
type spanTrace struct {
	t    *tracing.Tracer
	open map[overlay.MemberID]*tracing.SpanBuilder
}

func newSpanTrace(tr *tracer, seed int64) *spanTrace {
	st := &spanTrace{open: make(map[overlay.MemberID]*tracing.SpanBuilder)}
	st.t = tracing.New(seed, tracing.RecorderFunc(func(sp tracing.Span) {
		s := sp
		tr.emit(TraceEvent{T: sp.End, Event: "span", Member: sp.Member, Span: &s})
	}))
	return st
}

// onFailure opens one rejoin episode per orphaned child of the failed
// member. Call before the tree removes it.
func (st *spanTrace) onFailure(now time.Duration, failed *overlay.Member) {
	for _, c := range failed.Children() {
		if _, ok := st.open[c.ID]; ok {
			continue // already orphaned by an overlapping failure
		}
		st.open[c.ID] = st.t.Start(tracing.KindRejoin, int64(c.ID), now).
			AttrInt("failed_parent", int64(failed.ID))
	}
}

// onBlocked records one saturated rejoin attempt as an instantaneous
// child of the orphan's episode.
func (st *spanTrace) onBlocked(now time.Duration, id overlay.MemberID) {
	if sp, ok := st.open[id]; ok {
		sp.Child(tracing.KindAttempt, int64(id), now).End(now, "saturated")
	}
}

// onRejoin closes the orphan's episode as reattached.
func (st *spanTrace) onRejoin(now time.Duration, m *overlay.Member) {
	sp, ok := st.open[m.ID]
	if !ok {
		return
	}
	delete(st.open, m.ID)
	sp.AttrInt("depth", int64(m.Depth()))
	if p := m.Parent(); p != nil {
		sp.AttrInt("parent", int64(p.ID))
	}
	sp.End(now, "reattached")
}

// onDepart closes the orphan's episode when it leaves mid-rejoin.
func (st *spanTrace) onDepart(now time.Duration, id overlay.MemberID) {
	if sp, ok := st.open[id]; ok {
		delete(st.open, id)
		sp.End(now, "departed")
	}
}

// RunWithTrace executes a tree-level run like Run while streaming overlay
// events to w as JSON lines. The stream is deterministic in cfg.Seed, making
// it suitable for golden-file comparisons and offline visualisation.
func RunWithTrace(cfg Config, w io.Writer) (TreeResult, error) {
	return RunWithTraceOptions(cfg, w, TraceOptions{})
}

// RunWithTraceOptions is RunWithTrace with trace tuning: opts.SampleEvery
// interleaves periodic metric snapshots with the event stream.
func RunWithTraceOptions(cfg Config, w io.Writer, opts TraceOptions) (TreeResult, error) {
	if w == nil {
		return Run(cfg)
	}
	tr := newTracer(w)
	if opts.SampleEvery > 0 && cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	var st *spanTrace
	if opts.Spans {
		st = newSpanTrace(tr, cfg.Seed)
	}
	var s *session
	var err error
	s, err = newSession(cfg, tracedHooks(tr, &s, st))
	if err != nil {
		return TreeResult{}, err
	}
	attachSwitchTrace(s, tr, st)
	if opts.SampleEvery > 0 {
		scheduleSampling(s, tr, cfg.Metrics, opts.SampleEvery)
	}
	if err := s.run(); err != nil {
		return TreeResult{}, err
	}
	if tr.err != nil {
		return TreeResult{}, fmt.Errorf("omcast: writing trace: %w", tr.err)
	}
	return s.treeResult(), nil
}

// RunStreamingWithTrace executes a packet-level run like RunStreaming while
// streaming overlay events to w, including "repair" events carrying each
// recovery episode's per-packet outcome.
func RunStreamingWithTrace(cfg Config, scfg StreamConfig, w io.Writer, opts TraceOptions) (StreamResult, error) {
	if w == nil {
		return runStreaming(cfg, scfg, nil, opts)
	}
	return runStreaming(cfg, scfg, newTracer(w), opts)
}

// tracedHooks builds churn hooks that emit join/rejoin/failure/depart
// events. sp dereferences to the session once newSession returns (the
// failure hook needs the tree for the disrupted-descendant count). st is
// the optional span layer (nil when TraceOptions.Spans is off).
func tracedHooks(tr *tracer, sp **session, st *spanTrace) churn.Hooks {
	h := churn.Hooks{
		OnJoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			tr.emit(joinEvent("join", sim.Now(), m))
		},
		OnRejoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			tr.emit(joinEvent("rejoin", sim.Now(), m))
			if st != nil {
				st.onRejoin(sim.Now(), m)
			}
		},
		OnFailure: func(sim *eventsim.Simulator, failed *overlay.Member) {
			tr.emit(failureEvent(sim.Now(), *sp, failed))
			if st != nil {
				st.onFailure(sim.Now(), failed)
			}
		},
		OnDepart: func(sim *eventsim.Simulator, id overlay.MemberID) {
			tr.emit(TraceEvent{T: sim.Now().Seconds(), Event: "depart", Member: int64(id)})
			if st != nil {
				st.onDepart(sim.Now(), id)
			}
		},
	}
	if st != nil {
		h.OnRejoinBlocked = func(sim *eventsim.Simulator, id overlay.MemberID) {
			st.onBlocked(sim.Now(), id)
		}
	}
	return h
}

// attachSwitchTrace emits "switch" events from the ROST protocol, when the
// session runs one, and (with spans on) switch-decision spans.
func attachSwitchTrace(s *session, tr *tracer, st *spanTrace) {
	if s.protocol == nil {
		return
	}
	s.protocol.SetOnSwitch(func(now time.Duration, promoted, demoted overlay.MemberID) {
		tr.emit(TraceEvent{
			T:       now.Seconds(),
			Event:   "switch",
			Member:  int64(promoted),
			Demoted: int64(demoted),
		})
	})
	if st != nil {
		s.protocol.SetTrace(st.t)
	}
}

// scheduleSampling interleaves "sample" events into the trace: a full
// registry snapshot at t=0 and then every interval of virtual time. The
// sampler is an ordinary simulation event, so samples sit deterministically
// ordered among the protocol events they describe.
func scheduleSampling(s *session, tr *tracer, reg *metrics.Registry, interval time.Duration) {
	var sample eventsim.Handler
	sample = func(sim *eventsim.Simulator) {
		snap := reg.Snapshot(sim.Now().Seconds())
		tr.emit(TraceEvent{T: snap.T, Event: "sample", Metrics: snap.Metrics})
		sim.ScheduleAfter(interval, sample)
	}
	s.sim.Schedule(0, sample)
}

func joinEvent(kind string, now time.Duration, m *overlay.Member) TraceEvent {
	ev := TraceEvent{
		T:         now.Seconds(),
		Event:     kind,
		Member:    int64(m.ID),
		Depth:     intPtr(m.Depth()),
		Bandwidth: m.Bandwidth,
	}
	if p := m.Parent(); p != nil {
		ev.Parent = int64Ptr(int64(p.ID))
	}
	return ev
}

func failureEvent(now time.Duration, s *session, failed *overlay.Member) TraceEvent {
	disrupted := 0
	if failed.Attached() {
		disrupted = s.tree.SubtreeSize(failed) - 1
	}
	return TraceEvent{
		T:         now.Seconds(),
		Event:     "failure",
		Member:    int64(failed.ID),
		Disrupted: intPtr(disrupted),
	}
}

// runStreaming is the shared body of RunStreaming and RunStreamingWithTrace;
// tr is nil for untraced runs.
func runStreaming(cfg Config, scfg StreamConfig, tr *tracer, opts TraceOptions) (StreamResult, error) {
	if scfg.Recovery == 0 {
		scfg.Recovery = CER
	}
	cfg = cfg.withDefaults()
	if tr != nil && opts.SampleEvery > 0 && cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	var st *spanTrace
	if tr != nil && opts.Spans {
		st = newSpanTrace(tr, cfg.Seed)
	}
	var model *stream.Model
	var s *session
	hooks := churn.Hooks{
		OnJoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			model.Register(m, sim.Now())
			if tr != nil {
				tr.emit(joinEvent("join", sim.Now(), m))
			}
		},
		OnRejoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			if tr != nil {
				tr.emit(joinEvent("rejoin", sim.Now(), m))
			}
			if st != nil {
				st.onRejoin(sim.Now(), m)
			}
		},
		OnFailure: func(sim *eventsim.Simulator, failed *overlay.Member) {
			// Emit before the model folds the episode so the failure line
			// precedes its repair line in the stream.
			if tr != nil {
				tr.emit(failureEvent(sim.Now(), s, failed))
			}
			if st != nil {
				st.onFailure(sim.Now(), failed)
			}
			model.OnFailure(failed, sim.Now())
		},
		OnDepart: func(sim *eventsim.Simulator, id overlay.MemberID) {
			model.Depart(id, sim.Now())
			if tr != nil {
				tr.emit(TraceEvent{T: sim.Now().Seconds(), Event: "depart", Member: int64(id)})
			}
			if st != nil {
				st.onDepart(sim.Now(), id)
			}
		},
	}
	if st != nil {
		hooks.OnRejoinBlocked = func(sim *eventsim.Simulator, id overlay.MemberID) {
			st.onBlocked(sim.Now(), id)
		}
	}
	var err error
	s, err = newSession(cfg, hooks)
	if err != nil {
		return StreamResult{}, err
	}
	selRng := xrand.NewNamed(cfg.Seed, "cer.select")
	var selector cer.Selector
	switch scfg.Recovery {
	case CER:
		selector = &cer.MLCSelector{Tree: s.tree, Rng: selRng, Delay: s.topo.Delay}
	case SingleSource, CERRandomGroup:
		selector = &cer.RandomSelector{Tree: s.tree, Rng: selRng, Delay: s.topo.Delay}
	default:
		return StreamResult{}, fmt.Errorf("omcast: unknown recovery scheme %d", int(scfg.Recovery))
	}
	streamCfg := stream.Config{
		Rate:        scfg.Rate,
		Buffer:      scfg.Buffer,
		GroupSize:   scfg.GroupSize,
		Striped:     scfg.Recovery != SingleSource,
		ResidualMax: scfg.ResidualMax,
		MeasureFrom: cfg.Warmup,
	}
	if tr != nil {
		streamCfg.OnEpisode = func(orphan *overlay.Member, failedAt time.Duration, repaired, lost int) {
			tr.emit(TraceEvent{
				T:        failedAt.Seconds(),
				Event:    "repair",
				Member:   int64(orphan.ID),
				Repaired: intPtr(repaired),
				Lost:     intPtr(lost),
			})
		}
	}
	if st != nil {
		streamCfg.Trace = st.t
	}
	model = stream.NewModel(s.tree, s.topo.Delay, selector, xrand.NewNamed(cfg.Seed, "stream.residual"), streamCfg)
	if cfg.Metrics != nil {
		model.Instrument(cfg.Metrics)
	}
	if tr != nil {
		attachSwitchTrace(s, tr, st)
		if opts.SampleEvery > 0 {
			scheduleSampling(s, tr, cfg.Metrics, opts.SampleEvery)
		}
	}
	if err := s.run(); err != nil {
		return StreamResult{}, err
	}
	model.Finish(s.sim.Now())
	if tr != nil && tr.err != nil {
		return StreamResult{}, fmt.Errorf("omcast: writing trace: %w", tr.err)
	}
	sr := model.Result()
	return StreamResult{
		TreeResult:       s.treeResult(),
		AvgStarvingRatio: sr.AvgStarvingRatio,
		StarvingRatios:   sr.Ratios,
		StreamMembers:    sr.Members,
		Episodes:         model.Episodes,
		RepairRequests:   model.RepairRequests,
		ELNMessages:      model.ELNMessages,
		PacketsRepaired:  model.PacketsRepaired,
		PacketsLost:      model.PacketsLost,
	}, nil
}
