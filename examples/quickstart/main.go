// Quickstart: simulate a live-streaming session with the paper's two
// techniques enabled — a ROST-maintained multicast tree and CER packet
// recovery — and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := omcast.Config{
		Seed:       42,
		Algorithm:  omcast.ROST,
		TargetSize: 2000,             // steady-state audience
		Warmup:     90 * time.Minute, // let the tree organise
		Measure:    time.Hour,        // observation window
	}
	fmt.Printf("simulating a %d-member session on a %s underlay...\n",
		cfg.TargetSize, "15600-router transit-stub")

	// Tree-level view: how stable is the overlay?
	tree, err := omcast.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\n[%s tree]\n", tree.Algorithm)
	fmt.Printf("  disruptions per member:   %.2f\n", tree.AvgDisruptions)
	fmt.Printf("  avg service delay:        %.0f ms (stretch %.1fx over unicast)\n",
		tree.AvgServiceDelayMS, tree.AvgStretch)
	fmt.Printf("  optimizer reconnections:  %.2f per member (from %d switches)\n",
		tree.AvgReconnections, tree.Switches)

	// Packet-level view: what does the viewer actually experience?
	stream, err := omcast.RunStreaming(cfg, omcast.StreamConfig{
		Recovery:  omcast.CER,
		GroupSize: 3,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n[CER recovery, group size 3, 5 s buffer]\n")
	fmt.Printf("  starving-time ratio:      %.3f%% of view time\n", stream.AvgStarvingRatio*100)
	fmt.Printf("  outage episodes handled:  %d (%d packets repaired, %d lost)\n",
		stream.Episodes, stream.PacketsRepaired, stream.PacketsLost)
	fmt.Printf("  loss notifications sent:  %d\n", stream.ELNMessages)
	return nil
}
