// Package live is the wall-clock backend of internal/faultnet: a
// fault-injecting overlay for node.Transport endpoints. It applies the
// deterministic per-link decision streams and the expanded fault schedule of
// the model package to real datagram traffic — dropping, duplicating,
// reordering, delaying, rate-limiting, partitioning and crash/restarting
// live nodes.
//
// The split mirrors internal/metrics vs internal/metrics/live: the model
// package is simulation-safe (omcast-lint enforces no wall clock, no
// goroutines); this package owns every timer and lock. Determinism lives in
// the environment layer: the expanded plan and the per-link decision streams
// are pure functions of the schedule and seed, so two same-seed runs inject
// byte-identical fault sequences even though goroutine scheduling differs.
package live

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"omcast/internal/faultnet"
	mlive "omcast/internal/metrics/live"
	"omcast/internal/node"
	"omcast/internal/wire"
)

// maxHold bounds how long a reorder-held datagram waits for a successor
// before being flushed anyway.
const maxHold = 50 * time.Millisecond

// Options configures a fault network.
type Options struct {
	// Seed drives every per-link decision stream. If Schedule is set and
	// Seed is zero, the schedule's seed is used.
	Seed int64
	// Schedule, if non-nil, supplies static link rules and timed events
	// (armed by Start).
	Schedule *faultnet.Schedule
	// Metrics, if non-nil, receives the network's instruments.
	Metrics *mlive.Registry
	// NodeHook is invoked (outside all network locks) when a crash or
	// restart change fires: up=false means the node should die abruptly,
	// up=true that it should come back. The network blackholes the node's
	// traffic either way; the hook lets a harness kill and recreate the
	// actual node.Node.
	NodeHook func(addr string, up bool)
	// LogLimit bounds per-datagram fault log entries (default 10000).
	LogLimit int
}

// netMetrics holds the network's optional instruments (nil-safe when no
// registry was given).
type netMetrics struct {
	datagrams   *mlive.Counter
	dropped     *mlive.Counter
	duplicated  *mlive.Counter
	reordered   *mlive.Counter
	rateDropped *mlive.Counter
	blocked     *mlive.Counter
	corrupted   *mlive.Counter
	forged      *mlive.Counter
	replayed    *mlive.Counter
	changes     *mlive.Counter
	nodesDown   *mlive.Gauge
}

func newNetMetrics(reg *mlive.Registry) netMetrics {
	return netMetrics{
		datagrams:   reg.Counter("omcast_faultnet_datagrams_total", "Datagrams that reached the fault-decision stage."),
		dropped:     reg.Counter("omcast_faultnet_dropped_total", "Datagrams dropped by a loss decision."),
		duplicated:  reg.Counter("omcast_faultnet_duplicated_total", "Datagrams delivered twice by a duplication decision."),
		reordered:   reg.Counter("omcast_faultnet_reordered_total", "Datagrams held back past a successor by a reorder decision."),
		rateDropped: reg.Counter("omcast_faultnet_rate_dropped_total", "Datagrams dropped by a link bandwidth cap."),
		blocked:     reg.Counter("omcast_faultnet_blocked_total", "Datagrams discarded by partitions, block rules or crashed endpoints."),
		corrupted:   reg.Counter("omcast_faultnet_corrupted_total", "Datagrams with a bit flipped by a corruption decision."),
		forged:      reg.Counter("omcast_faultnet_forged_total", "Datagrams with protocol fields forged in flight."),
		replayed:    reg.Counter("omcast_faultnet_replayed_total", "Datagrams re-delivered by a replay decision."),
		changes:     reg.Counter("omcast_faultnet_schedule_changes_total", "Schedule changes applied."),
		nodesDown:   reg.Gauge("omcast_faultnet_nodes_down", "Nodes currently held down by crash changes."),
	}
}

// linkState is the per-directed-link runtime: its decision stream, counters,
// token bucket and the single reorder-hold slot.
type linkState struct {
	dec   *faultnet.Decider
	stats faultnet.LinkStats

	// Token bucket for RateBytes (one-second burst).
	tokens     float64
	lastRefill time.Time

	// Reorder hold: one datagram parked until the next one passes (or the
	// maxHold flush fires; heldGen guards the flush against releases).
	held    []byte
	heldGen int64

	// lastSent is the link's previously released datagram (post-forge,
	// post-corruption): the bytes a Replay decision re-delivers.
	lastSent []byte
}

// patternRule is an event-installed rule overlay.
type patternRule struct {
	from, to string
	sym      bool
	rule     faultnet.Rule
}

// partition is an active blackhole between address patterns.
type partition struct {
	from, to string
	sym      bool
}

// Network wraps node.Transport endpoints with fault injection.
type Network struct {
	opts Options
	seed int64

	mu      sync.Mutex
	links   map[string]*linkState
	parts   []partition
	rules   []patternRule
	down    map[string]bool
	log     []faultnet.LogEntry
	logFull int64 // per-datagram entries discarded past LogLimit
	timers  []*time.Timer
	started bool
	closed  bool

	met netMetrics
}

// NewNetwork creates a fault network. The schedule's static link rules apply
// from the first datagram; its timed events are armed by Start.
func NewNetwork(opts Options) *Network {
	if opts.LogLimit <= 0 {
		opts.LogLimit = 10000
	}
	seed := opts.Seed
	if seed == 0 && opts.Schedule != nil {
		seed = opts.Schedule.Seed
	}
	n := &Network{
		opts:  opts,
		seed:  seed,
		links: make(map[string]*linkState),
		down:  make(map[string]bool),
	}
	if opts.Metrics != nil {
		n.met = newNetMetrics(opts.Metrics)
	}
	return n
}

// Wrap interposes the fault network on an endpoint's outbound path. Addr,
// SetHandler and Close pass through.
func (n *Network) Wrap(tr node.Transport) node.Transport {
	return &endpoint{net: n, inner: tr}
}

type endpoint struct {
	net   *Network
	inner node.Transport
}

var _ node.Transport = (*endpoint)(nil)

func (e *endpoint) Addr() wire.Addr             { return e.inner.Addr() }
func (e *endpoint) SetHandler(h func(d []byte)) { e.inner.SetHandler(h) }
func (e *endpoint) Close() error                { return e.inner.Close() }
func (e *endpoint) Send(to wire.Addr, data []byte) error {
	return e.net.send(e.inner, to, data)
}

// Start arms the schedule's timed events relative to now. Call once, after
// the overlay under test is up (or immediately, for faults-from-birth runs).
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || n.closed || n.opts.Schedule == nil {
		n.started = true
		return
	}
	n.started = true
	for _, c := range n.opts.Schedule.Expand() {
		c := c
		t := time.AfterFunc(c.T, func() { n.Apply(c) })
		n.timers = append(n.timers, t)
	}
}

// Close stops pending fault timers. Wrapped endpoints keep working as plain
// pass-throughs for any stragglers.
func (n *Network) Close() {
	n.mu.Lock()
	timers := n.timers
	n.timers = nil
	n.closed = true
	n.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// Apply executes one expanded schedule change immediately, logging it at its
// virtual offset. The scenario runner and the schedule timers both funnel
// through here; NodeHook is invoked outside the network lock.
func (n *Network) Apply(c faultnet.Change) {
	var hook func(string, bool)
	var hookUp bool
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.met.changes.Inc()
	entry := faultnet.LogEntry{T: c.T, N: int64(c.Seq), Action: string(c.Action)}
	switch c.Action {
	case faultnet.ActionPartition:
		n.parts = append(n.parts, partition{from: c.From, to: c.To, sym: c.Symmetric})
		entry.Detail = linkDetail(c)
	case faultnet.ActionHeal:
		kept := n.parts[:0]
		for _, p := range n.parts {
			same := p.from == c.From && p.to == c.To
			rev := c.Symmetric && p.from == c.To && p.to == c.From
			if !(same || rev) {
				kept = append(kept, p)
			}
		}
		n.parts = kept
		entry.Detail = linkDetail(c)
	case faultnet.ActionRule:
		if c.Clear {
			kept := n.rules[:0]
			for _, r := range n.rules {
				if !(r.from == c.From && r.to == c.To && r.sym == c.Symmetric) {
					kept = append(kept, r)
				}
			}
			n.rules = kept
			entry.Detail = linkDetail(c) + " clear"
		} else {
			n.rules = append(n.rules, patternRule{from: c.From, to: c.To, sym: c.Symmetric, rule: c.Rule})
			entry.Detail = fmt.Sprintf("%s [%s]", linkDetail(c), c.Rule)
		}
	case faultnet.ActionCrash:
		if !n.down[c.Node] {
			n.down[c.Node] = true
			hook, hookUp = n.opts.NodeHook, false
		}
		n.met.nodesDown.Set(float64(len(n.down)))
		entry.Detail = "node=" + c.Node
	case faultnet.ActionRestart:
		if n.down[c.Node] {
			delete(n.down, c.Node)
			hook, hookUp = n.opts.NodeHook, true
		}
		n.met.nodesDown.Set(float64(len(n.down)))
		entry.Detail = "node=" + c.Node
	}
	n.log = append(n.log, entry)
	n.mu.Unlock()
	if hook != nil {
		hook(c.Node, hookUp)
	}
}

func linkDetail(c faultnet.Change) string {
	d := c.From + ">" + c.To
	if c.Symmetric {
		d += " sym"
	}
	return d
}

// Crash takes a node down programmatically (blackhole + NodeHook), outside
// any schedule. Restart is its inverse.
func (n *Network) Crash(addr string) {
	n.Apply(faultnet.Change{T: 0, Action: faultnet.ActionCrash, Node: addr})
}

// Restart brings a crashed node back.
func (n *Network) Restart(addr string) {
	n.Apply(faultnet.Change{T: 0, Action: faultnet.ActionRestart, Node: addr})
}

// Down reports whether a node is currently held down.
func (n *Network) Down(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[addr]
}

func (n *Network) linkLocked(from, to string) *linkState {
	key := from + ">" + to
	st, ok := n.links[key]
	if !ok {
		st = &linkState{dec: faultnet.NewDecider(n.seed, from, to)}
		n.links[key] = st
	}
	return st
}

// ruleLocked resolves the active rule for a link: the schedule's static
// resolution, overridden by the latest matching event rule.
func (n *Network) ruleLocked(from, to string) faultnet.Rule {
	var rule faultnet.Rule
	if n.opts.Schedule != nil {
		rule = n.opts.Schedule.StaticRule(from, to)
	}
	for _, r := range n.rules {
		if faultnet.Match(r.from, from) && faultnet.Match(r.to, to) {
			rule = r.rule
		} else if r.sym && faultnet.Match(r.from, to) && faultnet.Match(r.to, from) {
			rule = r.rule
		}
	}
	return rule
}

func (n *Network) partitionedLocked(from, to string) bool {
	for _, p := range n.parts {
		if faultnet.Match(p.from, from) && faultnet.Match(p.to, to) {
			return true
		}
		if p.sym && faultnet.Match(p.from, to) && faultnet.Match(p.to, from) {
			return true
		}
	}
	return false
}

// notePerDatagramLocked appends a bounded per-datagram log entry.
func (n *Network) notePerDatagramLocked(link string, idx int64, action string) {
	if int64(len(n.log)) >= int64(n.opts.LogLimit) {
		n.logFull++
		return
	}
	n.log = append(n.log, faultnet.LogEntry{T: -1, Link: link, N: idx, Action: action})
}

// send is the fault path every wrapped datagram takes.
func (n *Network) send(inner node.Transport, to wire.Addr, data []byte) error {
	from, toS := string(inner.Addr()), string(to)
	link := from + ">" + toS

	n.mu.Lock()
	if n.closed {
		// Torn-down network: behave as a clean wire.
		n.mu.Unlock()
		return inner.Send(to, data)
	}
	st := n.linkLocked(from, toS)
	rule := n.ruleLocked(from, toS)
	// A class-restricted rule leaves other-class datagrams untouched — but
	// node/link outages and partitions are physical, not per-class.
	classMiss := rule.Class != "" && datagramClass(data) != rule.Class
	if n.down[from] || n.down[toS] || (rule.Block && !classMiss) || n.partitionedLocked(from, toS) {
		st.stats.Blocked++
		n.met.blocked.Inc()
		n.mu.Unlock()
		return nil // datagram semantics: a blackhole is not an error
	}
	st.stats.Sent++
	n.met.datagrams.Inc()
	// The decision is drawn for every datagram — even ones the class filter
	// exempts — so decision index n depends only on (seed, link, n).
	dec := st.dec.Next(rule)
	if classMiss {
		n.mu.Unlock()
		return inner.Send(to, data)
	}

	if rule.RateBytes > 0 {
		now := time.Now()
		if !st.lastRefill.IsZero() {
			st.tokens += now.Sub(st.lastRefill).Seconds() * rule.RateBytes
		} else {
			st.tokens = rule.RateBytes // one-second burst to start
		}
		if st.tokens > rule.RateBytes {
			st.tokens = rule.RateBytes
		}
		st.lastRefill = now
		if float64(len(data)) > st.tokens {
			st.stats.RateDropped++
			n.met.rateDropped.Inc()
			n.notePerDatagramLocked(link, dec.N, "rate-drop")
			n.mu.Unlock()
			return nil
		}
		st.tokens -= float64(len(data))
	}

	if dec.Drop {
		st.stats.Dropped++
		n.met.dropped.Inc()
		n.notePerDatagramLocked(link, dec.N, "drop")
		n.mu.Unlock()
		return nil
	}

	// Adversarial stage: field-level forgery first (the protocol-aware
	// attacker), then the deterministic bit flip (the dumb one). Both operate
	// on copies; the caller's slice is never mutated.
	if forged, ok := forgeBytes(rule, data); ok {
		data = forged
		st.stats.Forged++
		n.met.forged.Inc()
		n.notePerDatagramLocked(link, dec.N, "forge")
	}
	if dec.Corrupt {
		data = corruptBytes(dec, data)
		st.stats.Corrupted++
		n.met.corrupted.Inc()
		n.notePerDatagramLocked(link, dec.N, "corrupt")
	}

	delay := rule.Latency.D() + time.Duration(dec.JitterFrac*float64(rule.Jitter.D()))
	buf := append([]byte(nil), data...)

	if dec.Hold && st.held == nil {
		// Park this datagram; it is released behind the next one on the
		// link, or by the flush timer if the link goes quiet.
		st.held = buf
		st.heldGen++
		gen := st.heldGen
		st.stats.Held++
		st.lastSent = buf
		n.met.reordered.Inc()
		n.notePerDatagramLocked(link, dec.N, "hold")
		flush := time.AfterFunc(maxHold+delay, func() {
			n.mu.Lock()
			if n.closed || st.held == nil || st.heldGen != gen {
				n.mu.Unlock()
				return
			}
			b := st.held
			st.held = nil
			n.mu.Unlock()
			_ = inner.Send(to, b)
		})
		n.timers = append(n.timers, flush)
		n.mu.Unlock()
		return nil
	}

	// Assemble the release order: this datagram first, then any held one
	// (which therefore arrives after its successor — the reorder), then the
	// duplicate copy.
	out := [][]byte{buf}
	if st.held != nil {
		out = append(out, st.held)
		st.held = nil
		st.heldGen++
	}
	if dec.Duplicate {
		st.stats.Duplicated++
		n.met.duplicated.Inc()
		n.notePerDatagramLocked(link, dec.N, "duplicate")
		out = append(out, buf)
	}
	if dec.Replay && st.lastSent != nil {
		st.stats.Replayed++
		n.met.replayed.Inc()
		n.notePerDatagramLocked(link, dec.N, "replay")
		out = append(out, st.lastSent)
	}
	st.lastSent = buf
	if delay > 0 {
		for i, b := range out {
			b := b
			// Successive copies are nudged apart so delayed delivery keeps
			// the assembled order.
			t := time.AfterFunc(delay+time.Duration(i)*time.Millisecond, func() {
				_ = inner.Send(to, b)
			})
			n.timers = append(n.timers, t)
		}
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	var err error
	for _, b := range out {
		err = inner.Send(to, b)
	}
	return err
}

// Stats snapshots every directed link's counters.
func (n *Network) Stats() map[string]faultnet.LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]faultnet.LinkStats, len(n.links))
	for k, st := range n.links {
		out[k] = st.stats
	}
	return out
}

// Log returns a copy of the fault log.
func (n *Network) Log() []faultnet.LogEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]faultnet.LogEntry(nil), n.log...)
}

// FormatLog renders the fault log in canonical order: schedule changes by
// (offset, sequence), then per-datagram decisions by (link, index). The
// ordering is a total one derived from virtual positions, not wall time, so
// two runs that injected the same faults render byte-identical logs.
func (n *Network) FormatLog() string {
	entries := n.Log()
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		aSched, bSched := a.T >= 0, b.T >= 0
		if aSched != bSched {
			return aSched
		}
		if aSched {
			if a.T != b.T {
				return a.T < b.T
			}
			return a.N < b.N
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.Action < b.Action
	})
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	n.mu.Lock()
	full := n.logFull
	n.mu.Unlock()
	if full > 0 {
		fmt.Fprintf(&b, "(+%d per-datagram entries beyond log limit)\n", full)
	}
	return b.String()
}

// FormatStats renders the per-link counters sorted by link key — byte-stable
// given identical traffic and decisions.
func (n *Network) FormatStats() string {
	stats := n.Stats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		s := stats[k]
		fmt.Fprintf(&b, "%s sent=%d dropped=%d dup=%d held=%d rate=%d blocked=%d corrupt=%d forged=%d replay=%d\n",
			k, s.Sent, s.Dropped, s.Duplicated, s.Held, s.RateDropped, s.Blocked,
			s.Corrupted, s.Forged, s.Replayed)
	}
	return b.String()
}
