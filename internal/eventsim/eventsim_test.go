package eventsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	sim := New()
	var got []int
	sim.Schedule(3*time.Second, func(*Simulator) { got = append(got, 3) })
	sim.Schedule(1*time.Second, func(*Simulator) { got = append(got, 1) })
	sim.Schedule(2*time.Second, func(*Simulator) { got = append(got, 2) })
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	sim := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(time.Second, func(*Simulator) { got = append(got, i) })
	}
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-timestamp order = %v, want ascending", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	sim := New()
	var at time.Duration
	sim.Schedule(5*time.Second, func(s *Simulator) { at = s.Now() })
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 5*time.Second {
		t.Fatalf("Now inside handler = %v, want 5s", at)
	}
	if sim.Now() != 5*time.Second {
		t.Fatalf("final Now = %v, want 5s", sim.Now())
	}
}

func TestScheduleAfter(t *testing.T) {
	sim := New()
	var second time.Duration
	sim.Schedule(2*time.Second, func(s *Simulator) {
		s.ScheduleAfter(3*time.Second, func(s2 *Simulator) { second = s2.Now() })
	})
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if second != 5*time.Second {
		t.Fatalf("chained event fired at %v, want 5s", second)
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	sim := New()
	fired := false
	sim.Schedule(10*time.Second, func(s *Simulator) {
		s.Schedule(1*time.Second, func(*Simulator) { fired = true })
	})
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !fired {
		t.Fatal("event scheduled in the past never fired")
	}
	if sim.Now() != 10*time.Second {
		t.Fatalf("clock moved backwards: %v", sim.Now())
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	sim := New()
	fired := false
	sim.ScheduleAfter(-time.Second, func(*Simulator) { fired = true })
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestCancel(t *testing.T) {
	sim := New()
	fired := false
	id := sim.Schedule(time.Second, func(*Simulator) { fired = true })
	if !sim.Cancel(id) {
		t.Fatal("Cancel returned false for a live event")
	}
	if sim.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if sim.Processed() != 0 {
		t.Fatalf("Processed = %d, want 0", sim.Processed())
	}
}

func TestCancelZeroID(t *testing.T) {
	sim := New()
	if sim.Cancel(EventID{}) {
		t.Fatal("Cancel of zero EventID returned true")
	}
	if (EventID{}).Valid() {
		t.Fatal("zero EventID reports Valid")
	}
}

func TestHorizonLeavesFutureEvents(t *testing.T) {
	sim := New()
	var got []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		at := at
		sim.Schedule(at, func(s *Simulator) { got = append(got, s.Now()) })
	}
	if err := sim.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("fired %d events by horizon, want 2 (event at horizon must fire)", len(got))
	}
	if sim.Now() != 2*time.Second {
		t.Fatalf("Now after horizon run = %v, want 2s", sim.Now())
	}
	if err := sim.RunAll(); err != nil {
		t.Fatalf("second RunAll: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("resumed run fired %d total, want 3", len(got))
	}
}

func TestHorizonAdvancesIdleClock(t *testing.T) {
	sim := New()
	if err := sim.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.Now() != time.Minute {
		t.Fatalf("idle run left clock at %v, want 1m", sim.Now())
	}
}

func TestStop(t *testing.T) {
	sim := New()
	count := 0
	for i := 0; i < 5; i++ {
		sim.Schedule(time.Duration(i)*time.Second, func(s *Simulator) {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	err := sim.RunAll()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunAll after Stop = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("fired %d events, want 2", count)
	}
	// The remaining events are still runnable.
	if err := sim.RunAll(); err != nil {
		t.Fatalf("resume after Stop: %v", err)
	}
	if count != 5 {
		t.Fatalf("after resume fired %d, want 5", count)
	}
}

func TestProcessedAndPending(t *testing.T) {
	sim := New()
	for i := 0; i < 4; i++ {
		sim.Schedule(time.Duration(i)*time.Second, func(*Simulator) {})
	}
	if sim.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", sim.Pending())
	}
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if sim.Processed() != 4 {
		t.Fatalf("Processed = %d, want 4", sim.Processed())
	}
	if sim.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", sim.Pending())
	}
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(time.Second, nil)
}

func TestManyEventsStressOrdering(t *testing.T) {
	sim := New()
	const n = 10000
	var last time.Duration = -1
	ok := true
	// Pseudo-random but fixed times; verify global ordering.
	x := uint64(12345)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		at := time.Duration(x%1000) * time.Millisecond
		sim.Schedule(at, func(s *Simulator) {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	if err := sim.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !ok {
		t.Fatal("events fired out of time order")
	}
	if sim.Processed() != n {
		t.Fatalf("Processed = %d, want %d", sim.Processed(), n)
	}
}

// TestQuickScheduleCancelOrdering drives random schedule/cancel programs via
// testing/quick: whatever the interleaving, fired events come out in
// timestamp order, canceled events never fire, and the processed count
// matches the survivors.
func TestQuickScheduleCancelOrdering(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		sim := New()
		type slot struct {
			id       EventID
			at       time.Duration
			canceled bool
		}
		var slots []slot
		fired := 0
		lastAt := time.Duration(-1)
		ordered := true
		for i, raw := range times {
			at := time.Duration(raw) * time.Millisecond
			idx := len(slots)
			id := sim.Schedule(at, func(s *Simulator) {
				fired++
				if s.Now() < lastAt {
					ordered = false
				}
				lastAt = s.Now()
				_ = idx
			})
			slots = append(slots, slot{id: id, at: at})
			if i < len(cancelMask) && cancelMask[i] {
				if !sim.Cancel(id) {
					return false
				}
				slots[idx].canceled = true
			}
		}
		if err := sim.RunAll(); err != nil {
			return false
		}
		want := 0
		for _, s := range slots {
			if !s.canceled {
				want++
			}
		}
		return ordered && fired == want && sim.Processed() == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
