package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression directive has the form
//
//	//lint:ignore <rule> <reason>
//
// and silences findings of <rule> on the directive's own line (trailing
// comment) or on the line immediately below it (leading comment). The reason
// is mandatory: a suppression without a recorded justification is reported as
// a bad-directive finding instead.
type directive struct {
	file string
	line int
	rule string
}

type suppressions struct {
	directives []directive
	malformed  []Diagnostic
}

const directivePrefix = "lint:ignore"

// collectDirectives scans every comment in the package for //lint:ignore
// directives.
func collectDirectives(pkg *Package) *suppressions {
	s := &suppressions{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				s.add(pkg.Fset, c)
			}
		}
	}
	return s
}

func (s *suppressions) add(fset *token.FileSet, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
	if !ok {
		return
	}
	pos := fset.Position(c.Pos())
	fields := strings.Fields(text)
	if len(fields) < 2 {
		s.malformed = append(s.malformed, Diagnostic{
			Pos:  pos,
			Rule: "bad-directive",
			Message: "malformed suppression: want //lint:ignore <rule> <reason>, " +
				"the reason is mandatory",
		})
		return
	}
	s.directives = append(s.directives, directive{
		file: pos.Filename,
		line: pos.Line,
		rule: fields[0],
	})
}

// suppresses reports whether a directive covers the diagnostic.
func (s *suppressions) suppresses(d Diagnostic) bool {
	for _, dir := range s.directives {
		if dir.file != d.Pos.Filename || dir.rule != d.Rule {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
