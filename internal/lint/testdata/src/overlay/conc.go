// Package overlay is a no-goroutine-in-sim fixture: the directory name
// places it inside the simulated-kernel scope of the default config.
package overlay

import "sync"

func badGo() {
	go func() {}() // want `no-goroutine-in-sim: go statement in the simulation kernel`
}

func badChanType() {
	var ch chan int // want `no-goroutine-in-sim: channel type in the simulation kernel`
	_ = ch
}

func badSelect() {
	select {} // want `no-goroutine-in-sim: select statement in the simulation kernel`
}

func badSync() {
	var mu sync.Mutex // want `no-goroutine-in-sim: sync\.Mutex in the simulation kernel`
	mu.Lock()
	defer mu.Unlock()
}

func okSequential(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func okSuppressed() {
	//lint:ignore no-goroutine-in-sim reason: fixture: justified suppression
	go func() {}()
}
