package wire

import (
	"math"
	"strings"
	"testing"
)

// ok is a minimal valid envelope per type, mutated by the reject cases.
func ok(t Type) Envelope {
	env := Envelope{Type: t, From: "a"}
	switch t {
	case TypeELN, TypeRepairRequest:
		env.FirstMissing, env.LastMissing = 5, 9
	}
	return env
}

func TestValidateAccepts(t *testing.T) {
	cases := []Envelope{
		{Type: TypeJoin, From: "a", Bandwidth: 3},
		{Type: TypeAccept, From: "p", Depth: 4},
		{Type: TypeHeartbeat, From: "p", Seq: 9, BTP: 120, Bandwidth: 3, Depth: 2},
		{Type: TypePacket, From: "s", Packet: 77, Payload: make([]byte, MaxPayload)},
		{Type: TypeELN, From: "p", FirstMissing: 0, LastMissing: 0},
		{Type: TypeELN, From: "p", FirstMissing: 10, LastMissing: 10 + MaxRepairSpan - 1},
		{Type: TypeRepairRequest, From: "a", FirstMissing: 3, LastMissing: 40,
			Chain: []Addr{"r2", "r3"}, Requester: "orig", Epsilon: 0.66},
		{Type: TypeRepairData, From: "r", Packet: 12},
		{Type: TypeMembershipRequest, From: "a", Limit: MaxLimit},
		{Type: TypeMembershipReply, From: "b", Members: []MemberInfo{
			{Addr: "m", Depth: 2, Spare: -1, Bandwidth: 3, Ancestors: []Addr{"p", "root"}},
		}},
		{Type: TypeSwitchPropose, From: "c", BTP: 99.5},
		{Type: TypeSwitchCommit, From: "i", Chain: []Addr{"old-child"}},
		{Type: TypeSwitchCommit, From: "i", NewParent: "np"},
	}
	for _, env := range cases {
		if err := Validate(env); err != nil {
			t.Errorf("Validate(%v) rejected an honest envelope: %v", env.Type, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	long := Addr(strings.Repeat("x", MaxAddrLen+1))
	cases := []struct {
		name   string
		env    Envelope
		reason string
	}{
		{"unknown-type", Envelope{Type: 99, From: "a"}, ReasonType},
		{"zero-type", Envelope{From: "a"}, ReasonType},
		{"no-sender", Envelope{Type: TypeJoin}, ReasonSender},
		{"long-sender", Envelope{Type: TypeJoin, From: long}, ReasonAddr},
		{"long-requester", func() Envelope { e := ok(TypeRepairRequest); e.Requester = long; return e }(), ReasonAddr},
		{"long-new-parent", func() Envelope { e := ok(TypeSwitchCommit); e.NewParent = long; return e }(), ReasonAddr},
		{"nan-btp", func() Envelope { e := ok(TypeSwitchPropose); e.BTP = math.NaN(); return e }(), ReasonNumeric},
		{"inf-btp", func() Envelope { e := ok(TypeHeartbeat); e.BTP = math.Inf(1); return e }(), ReasonNumeric},
		{"negative-btp", func() Envelope { e := ok(TypeHeartbeat); e.BTP = -1; return e }(), ReasonNumeric},
		{"absurd-btp", func() Envelope { e := ok(TypeHeartbeat); e.BTP = MaxBTP * 2; return e }(), ReasonNumeric},
		{"negative-bandwidth", func() Envelope { e := ok(TypeJoin); e.Bandwidth = -3; return e }(), ReasonNumeric},
		{"nan-epsilon", func() Envelope { e := ok(TypeRepairRequest); e.Epsilon = math.NaN(); return e }(), ReasonNumeric},
		{"epsilon-over-1", func() Envelope { e := ok(TypeRepairRequest); e.Epsilon = 1.5; return e }(), ReasonNumeric},
		{"negative-depth", func() Envelope { e := ok(TypeAccept); e.Depth = -2; return e }(), ReasonNumeric},
		{"absurd-depth", func() Envelope { e := ok(TypeAccept); e.Depth = MaxDepth + 1; return e }(), ReasonNumeric},
		{"negative-limit", func() Envelope { e := ok(TypeMembershipRequest); e.Limit = -1; return e }(), ReasonLimit},
		{"huge-limit", func() Envelope { e := ok(TypeMembershipRequest); e.Limit = MaxLimit + 1; return e }(), ReasonLimit},
		{"huge-payload", func() Envelope { e := ok(TypePacket); e.Payload = make([]byte, MaxPayload+1); return e }(), ReasonPayload},
		{"negative-packet", func() Envelope { e := ok(TypePacket); e.Packet = -7; return e }(), ReasonRange},
		{"negative-range", Envelope{Type: TypeRepairRequest, From: "a", FirstMissing: -1, LastMissing: 4}, ReasonRange},
		{"inverted-range", Envelope{Type: TypeRepairRequest, From: "a", FirstMissing: 9, LastMissing: 3}, ReasonRange},
		{"inverted-eln", Envelope{Type: TypeELN, From: "a", FirstMissing: 9, LastMissing: 3}, ReasonRange},
		{"huge-span", Envelope{Type: TypeRepairRequest, From: "a", FirstMissing: 0, LastMissing: MaxRepairSpan}, ReasonSpan},
		{"range-on-packet", func() Envelope { e := ok(TypePacket); e.LastMissing = 5; return e }(), ReasonRange},
		{"chain-on-join", func() Envelope { e := ok(TypeJoin); e.Chain = []Addr{"x"}; return e }(), ReasonChain},
		{"long-chain", func() Envelope {
			e := ok(TypeRepairRequest)
			for i := 0; i <= MaxChain; i++ {
				e.Chain = append(e.Chain, Addr(strings.Repeat("c", i+1)))
			}
			return e
		}(), ReasonChain},
		{"empty-chain-entry", func() Envelope { e := ok(TypeRepairRequest); e.Chain = []Addr{""}; return e }(), ReasonChain},
		{"self-chain", func() Envelope { e := ok(TypeRepairRequest); e.Chain = []Addr{"a"}; return e }(), ReasonChain},
		{"requester-chain", func() Envelope {
			e := ok(TypeRepairRequest)
			e.Requester, e.Chain = "orig", []Addr{"orig"}
			return e
		}(), ReasonChain},
		{"loop-chain", func() Envelope { e := ok(TypeRepairRequest); e.Chain = []Addr{"r2", "r3", "r2"}; return e }(), ReasonChain},
		{"huge-members", func() Envelope {
			e := ok(TypeMembershipReply)
			for i := 0; i <= MaxMembers; i++ {
				e.Members = append(e.Members, MemberInfo{Addr: "m", Bandwidth: 1})
			}
			return e
		}(), ReasonMembers},
		{"empty-member-addr", func() Envelope {
			e := ok(TypeMembershipReply)
			e.Members = []MemberInfo{{Addr: ""}}
			return e
		}(), ReasonMembers},
		{"member-nan-bw", func() Envelope {
			e := ok(TypeMembershipReply)
			e.Members = []MemberInfo{{Addr: "m", Bandwidth: math.NaN()}}
			return e
		}(), ReasonMembers},
		{"member-deep-ancestors", func() Envelope {
			e := ok(TypeMembershipReply)
			m := MemberInfo{Addr: "m"}
			for i := 0; i <= MaxAncestors; i++ {
				m.Ancestors = append(m.Ancestors, "p")
			}
			e.Members = []MemberInfo{m}
			return e
		}(), ReasonMembers},
		{"member-empty-ancestor", func() Envelope {
			e := ok(TypeMembershipReply)
			e.Members = []MemberInfo{{Addr: "m", Ancestors: []Addr{""}}}
			return e
		}(), ReasonMembers},
	}
	for _, tc := range cases {
		err := Validate(tc.env)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if got := Reason(err); got != tc.reason {
			t.Errorf("%s: reason %q, want %q (%v)", tc.name, got, tc.reason, err)
		}
	}
}

// TestDecodeValidationAttribution: a parseable but invalid envelope comes
// back with its claimed sender intact, so the guard layer can score it.
func TestDecodeValidationAttribution(t *testing.T) {
	b, err := Encode(Envelope{Type: TypeRepairRequest, From: "evil", FirstMissing: 9, LastMissing: 3})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(b)
	if err == nil {
		t.Fatal("inverted range accepted")
	}
	if env.From != "evil" {
		t.Fatalf("sender not preserved for attribution: %q", env.From)
	}
	if Reason(err) != ReasonRange {
		t.Fatalf("reason = %q, want %q", Reason(err), ReasonRange)
	}
}

func TestDecodeSizeCap(t *testing.T) {
	big := make([]byte, MaxDatagram+1)
	if _, err := Decode(big); Reason(err) != ReasonSize {
		t.Fatalf("oversized datagram: reason %q, want %q", Reason(err), ReasonSize)
	}
}

func TestReason(t *testing.T) {
	if Reason(nil) != "" {
		t.Fatal("Reason(nil) not empty")
	}
	if _, err := Decode([]byte("{broken")); Reason(err) != ReasonMalformed {
		t.Fatal("syntax error not classified malformed")
	}
	seen := map[string]bool{}
	for _, r := range Reasons() {
		if seen[r] {
			t.Fatalf("duplicate reason token %q", r)
		}
		seen[r] = true
	}
}
