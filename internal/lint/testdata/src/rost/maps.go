// Package rost is a map-order fixture: the directory name places it inside
// the simulated-kernel scope of the default config.
package rost

import (
	"math/rand"
	"sort"
)

type sched struct{}

func (sched) Schedule(at int) {}

type state struct {
	total int
}

func badAppend(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `map-order: map iteration order is nondeterministic and this body appends to a slice`
		out = append(out, v+"!")
	}
	return out
}

func badDelete(m map[int]string) {
	for k := range m { // want `map-order: map iteration order is nondeterministic and this body mutates a map mid-iteration`
		if k < 0 {
			delete(m, k)
		}
	}
}

func badSchedule(m map[int]string, s sched) {
	for k := range m { // want `map-order: map iteration order is nondeterministic and this body schedules events`
		s.Schedule(k)
	}
}

func badRNG(m map[int]string, r *rand.Rand) int {
	hits := 0
	for range m { // want `map-order: map iteration order is nondeterministic and this body consumes random numbers`
		if r.Intn(2) == 0 {
			hits++
		}
	}
	return hits
}

func badStateWrite(m map[int]int, st *state) {
	for _, v := range m { // want `map-order: map iteration order is nondeterministic and this body writes through a selector or index`
		st.total = st.total + v
	}
}

func badEarlyReturn(m map[int]string) string {
	for _, v := range m { // want `map-order: map iteration order is nondeterministic and this body returns a value chosen by iteration order`
		if v != "" {
			return v
		}
	}
	return ""
}

// okKeyCollection is the canonical safe shape: collect, sort, then iterate.
func okKeyCollection(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// okLocalReduce only folds into a local accumulator: order-independent.
func okLocalReduce(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func okSuppressed(m map[int]string) []string {
	var out []string
	//lint:ignore map-order reason: fixture: the caller sorts the result before use
	for _, v := range m {
		out = append(out, v+"!")
	}
	return out
}

// okLocalReduceStale carries a directive over a loop the rule never flags —
// the stale-suppression audit must call it out.
func okLocalReduceStale(m map[int]int) int {
	total := 0
	//lint:ignore map-order reason: fixture: stale directive, loop below is clean // want `stale-suppression: //lint:ignore map-order suppressed nothing in this run`
	for _, v := range m {
		total += v
	}
	return total
}
