//go:build race

package live

// raceEnabled mirrors the node package's convention: the race detector slows
// message handling severalfold, so scenario timings stretch to keep liveness
// timeouts measuring the protocol rather than the instrumentation.
const raceEnabled = true
