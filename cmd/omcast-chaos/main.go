// Command omcast-chaos runs the chaos resilience suite: live overlays on an
// in-memory network behind the deterministic fault injector, each scenario
// byte-reproducible from its seed.
//
//	omcast-chaos -list                      # what scenarios exist
//	omcast-chaos -scenario parent-crash     # run one
//	omcast-chaos -scenario all              # run the whole suite
//	omcast-chaos -scenario lossy-10 -plan   # print the fault plan, no run
//	omcast-chaos -scenario lossy-10 -log    # include the canonical fault log
//	omcast-chaos -scenario lossy-10 -seed 7 # same faults, different dice
//
// With -trace-out the runs' causal spans (every node's flight-recorder
// episodes plus fault-window annotations) are written as JSONL, ready for
// `omcast-trace analyze` or `omcast-trace convert -format perfetto`:
//
//	omcast-chaos -scenario parent-crash -trace-out spans.jsonl
//
// Custom fault schedules (the JSON format of internal/faultnet) run against a
// default overlay:
//
//	omcast-chaos -schedule faults.json -nodes 10 -duration 5s
//
// Exit status: 0 all bounds held, 1 a scenario failed its bounds, 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omcast/internal/faultnet"
	"omcast/internal/faultnet/live"
	"omcast/internal/tracing"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list scenarios and exit")
		scenario = flag.String("scenario", "", "scenario name, or \"all\" for the whole suite")
		seed     = flag.Int64("seed", 0, "override the scenario seed (0 = scenario default)")
		plan     = flag.Bool("plan", false, "print the expanded fault plan instead of running")
		showLog  = flag.Bool("log", false, "print the canonical fault log after each run")
		schedule = flag.String("schedule", "", "run a custom JSON fault schedule instead of a named scenario")
		nodes    = flag.Int("nodes", 8, "member count for -schedule runs")
		duration = flag.Duration("duration", 3*time.Second, "fault run length for -schedule runs")
		warmup   = flag.Duration("warmup", 5*time.Second, "attach deadline before faults arm for -schedule runs (0 = faults from birth)")
		traceOut = flag.String("trace-out", "", "write the runs' causal spans (recovery episodes + fault windows) as JSONL to this file (\"-\" = stdout)")
	)
	flag.Parse()

	if *list {
		for _, s := range live.Scenarios {
			fmt.Printf("%-22s %s\n", s.Name, s.About)
		}
		return 0
	}

	var run []live.Scenario
	switch {
	case *schedule != "":
		data, err := os.ReadFile(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-chaos: %v\n", err)
			return 2
		}
		sch, err := faultnet.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-chaos: %s: %v\n", *schedule, err)
			return 2
		}
		run = []live.Scenario{{
			Name:     "custom",
			About:    *schedule,
			Nodes:    *nodes,
			Seed:     sch.Seed,
			Warmup:   *warmup,
			Duration: *duration,
			Schedule: *sch,
		}}
	case *scenario == "all":
		run = live.Scenarios
	case *scenario != "":
		s := live.ScenarioByName(*scenario)
		if s == nil {
			fmt.Fprintf(os.Stderr, "omcast-chaos: unknown scenario %q (try -list)\n", *scenario)
			return 2
		}
		run = []live.Scenario{*s}
	default:
		fmt.Fprintln(os.Stderr, "omcast-chaos: need -list, -scenario or -schedule")
		flag.Usage()
		return 2
	}

	var spans []tracing.Span
	failed := false
	for _, scn := range run {
		if *seed != 0 {
			scn.Seed = *seed
		}
		if *plan {
			fmt.Printf("# %s seed=%d\n%s", scn.Name, scn.Seed, scn.Plan())
			continue
		}
		rep, err := live.Run(scn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-chaos: %s: %v\n", scn.Name, err)
			return 1
		}
		fmt.Println(rep.Summary())
		for _, nr := range rep.Nodes {
			s := nr.Stats
			mark := " "
			if nr.Byzantine {
				mark = "!" // adversarial member: excluded from per-node bounds
			}
			fmt.Printf(" %s%-8s attached=%-5v pkts=%-5d repaired=%-4d rejoins=%-3d stalls=%-3d starving=%5.1f%% repairs=%d suppressed=%d quarantines=%d rejects=%d\n",
				mark, nr.Addr, s.Attached, s.PacketsReceived, s.PacketsRepaired, s.Rejoins,
				s.Stalls, s.StarvingRatio()*100, s.RepairRequests, s.RepairsSuppressed,
				s.GuardQuarantines, s.WireRejects)
		}
		if *showLog {
			fmt.Printf("--- fault log\n%s--- link stats\n%s", rep.FaultLog, rep.FaultStats)
		}
		spans = append(spans, rep.Spans...)
		if !rep.OK() {
			failed = true
		}
	}
	if *traceOut != "" {
		if err := writeSpans(*traceOut, spans); err != nil {
			fmt.Fprintf(os.Stderr, "omcast-chaos: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "omcast-chaos: wrote %d spans to %s\n", len(spans), *traceOut)
	}
	if failed {
		return 1
	}
	return 0
}

// writeSpans dumps spans as JSONL to path ("-" for stdout).
func writeSpans(path string, spans []tracing.Span) error {
	if path == "-" {
		return tracing.WriteJSONL(os.Stdout, spans)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracing.WriteJSONL(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
