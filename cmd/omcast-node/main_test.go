package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"omcast/internal/metrics/live"
	"omcast/internal/node"
	"omcast/internal/tracing"
	"omcast/internal/tracing/flight"
	"omcast/internal/wire"
)

// bootPair starts a source and one member on an in-memory network and
// returns them with their live registries and the member's flight ring.
func bootPair(t *testing.T) (src, member *node.Node, srcReg, memReg *live.Registry, memRing *flight.Ring) {
	t.Helper()
	network := node.NewMemNetwork(nil)
	t.Cleanup(network.Close)

	srcReg = live.NewRegistry()
	sep, err := network.Endpoint("source")
	if err != nil {
		t.Fatal(err)
	}
	src = node.New(node.Config{
		Source:            true,
		Bandwidth:         8,
		StreamRate:        50,
		HeartbeatInterval: 20 * time.Millisecond,
		Metrics:           srcReg,
	}, sep)
	src.Start()
	t.Cleanup(src.Kill)

	memReg = live.NewRegistry()
	memRing = flight.NewRing(0)
	mep, err := network.Endpoint("member")
	if err != nil {
		t.Fatal(err)
	}
	member = node.New(node.Config{
		Bandwidth:         3,
		Bootstrap:         []wire.Addr{"source"},
		HeartbeatInterval: 20 * time.Millisecond,
		Metrics:           memReg,
		Trace:             memRing,
	}, mep)
	member.Start()
	t.Cleanup(member.Kill)
	return src, member, srcReg, memReg, memRing
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	src, _, srcReg, _, _ := bootPair(t)
	srv := httptest.NewServer(newMux(src, srcReg, nil))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE omcast_node_heartbeats_sent_total counter",
		"omcast_node_attached 1",
		`omcast_build_info{goversion="`, // build metadata rides the registry
		"# TYPE omcast_node_uptime_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzLifecycle(t *testing.T) {
	src, member, srcReg, memReg, memRing := bootPair(t)

	// The source is attached by definition: healthy immediately, and the
	// health line carries build identity and uptime.
	srcSrv := httptest.NewServer(newMux(src, srcReg, nil))
	defer srcSrv.Close()
	code, body, _ := get(t, srcSrv, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok ") {
		t.Fatalf("source /healthz = %d %q, want 200 ok", code, body)
	}
	for _, want := range []string{"version=", "uptime="} {
		if !strings.Contains(body, want) {
			t.Fatalf("source /healthz %q missing %q", body, want)
		}
	}

	// The member reports 503 until it attaches, then 200.
	memSrv := httptest.NewServer(newMux(member, memReg, memRing))
	defer memSrv.Close()
	deadline := time.Now().Add(5 * time.Second)
	sawJoining := false
	for {
		code, body, _ := get(t, memSrv, "/healthz")
		if code == http.StatusOK {
			if !strings.HasPrefix(body, "ok ") {
				t.Fatalf("healthy body = %q", body)
			}
			break
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("/healthz status = %d, want 200 or 503", code)
		}
		sawJoining = true
		if time.Now().After(deadline) {
			t.Fatal("member never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = sawJoining // racing the join is fine; 503-then-200 is asserted when observed
}

// TestDebugTraceEndpoint waits for the member's boot join episode to
// complete and asserts /debug/trace serves it as parseable span JSONL.
func TestDebugTraceEndpoint(t *testing.T) {
	_, member, _, memReg, memRing := bootPair(t)
	srv := httptest.NewServer(newMux(member, memReg, memRing))
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !member.Stats().Attached {
		if time.Now().After(deadline) {
			t.Fatal("member never attached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The join span is recorded under the node mutex before Attached flips,
	// so it is visible as soon as the poll above succeeds.
	code, body, hdr := get(t, srv, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	spans, err := tracing.ReadSpans(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parsing /debug/trace: %v", err)
	}
	var joined bool
	for _, sp := range spans {
		if sp.Kind == tracing.KindJoin && sp.Outcome == "attached" {
			joined = true
			if sp.Node != string(member.Addr()) {
				t.Fatalf("join span node = %q, want %q", sp.Node, member.Addr())
			}
		}
	}
	if !joined {
		t.Fatalf("no completed join span in /debug/trace:\n%s", body)
	}
}
