package churn

import (
	"testing"
	"time"

	"omcast/internal/construct"
	"omcast/internal/eventsim"
	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func smallTopo(t *testing.T, seed int64) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultConfig(seed)
	cfg.TransitDomains = 2
	cfg.TransitNodesPerDomain = 4
	cfg.StubDomainsPerTransit = 2
	cfg.StubNodesPerDomain = 8
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	return topo
}

type world struct {
	sim    *eventsim.Simulator
	topo   *topology.Topology
	tree   *overlay.Tree
	driver *Driver
}

func newWorld(t *testing.T, seed int64, target int, hooks Hooks) *world {
	t.Helper()
	topo := smallTopo(t, seed)
	sim := eventsim.New()
	tree, err := overlay.NewTree(topo.RandomStub(xrand.NewNamed(seed, "root")), 100, topo.Delay)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	env := &construct.Env{
		Rng:   xrand.NewNamed(seed, "strategy"),
		Delay: topo.Delay,
	}
	driver, err := NewDriver(sim, tree, topo, &construct.MinDepth{Env: env}, Config{
		Seed:        seed,
		TargetSize:  target,
		Warmup:      1800 * time.Second,
		Measure:     1800 * time.Second,
		PrePopulate: true,
	}, hooks)
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	return &world{sim: sim, topo: topo, tree: tree, driver: driver}
}

func (w *world) run(t *testing.T) Result {
	t.Helper()
	w.driver.Start()
	if err := w.sim.Run(w.driver.Horizon()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return w.driver.Result()
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{TargetSize: 0}).Validate(); err == nil {
		t.Fatal("zero target accepted")
	}
	cfg := Config{TargetSize: 10}.withDefaults()
	if cfg.Lifetime != DefaultLifetime || cfg.Bandwidth != DefaultBandwidth {
		t.Fatal("distribution defaults not applied")
	}
	if cfg.RootBandwidth != DefaultRootBandwidth {
		t.Fatal("root bandwidth default not applied")
	}
	if cfg.Warmup <= 0 || cfg.Measure <= 0 {
		t.Fatal("window defaults not applied")
	}
}

func TestSteadyStateSizeApproachesTarget(t *testing.T) {
	w := newWorld(t, 1, 150, Hooks{})
	res := w.run(t)
	// Equilibrium pre-population starts the run at the Little's-law size
	// E[N] = lambda * E[lifetime] = target; arrivals and departures then
	// balance. The tolerance is generous because a single short run has
	// high variance (the lognormal lifetime has sigma = 2).
	if res.AvgSize < 100 || res.AvgSize > 250 {
		t.Fatalf("steady-state size %.1f, want around 150", res.AvgSize)
	}
	if res.Departures == 0 {
		t.Fatal("no departures in measurement window")
	}
}

func TestDeterminism(t *testing.T) {
	a := newWorld(t, 7, 80, Hooks{}).run(t)
	b := newWorld(t, 7, 80, Hooks{}).run(t)
	if a.AvgDisruptions != b.AvgDisruptions ||
		a.AvgServiceDelayMS != b.AvgServiceDelayMS ||
		a.AvgStretch != b.AvgStretch ||
		a.Departures != b.Departures {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := newWorld(t, 1, 80, Hooks{}).run(t)
	b := newWorld(t, 2, 80, Hooks{}).run(t)
	if a.Departures == b.Departures && a.AvgServiceDelayMS == b.AvgServiceDelayMS {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestDisruptionsAccumulate(t *testing.T) {
	// Enough members that the tree has real depth below the root's 100
	// slots; otherwise failures rarely have descendants to disrupt.
	res := newWorld(t, 3, 400, Hooks{}).run(t)
	if res.AvgDisruptions <= 0 {
		t.Fatalf("AvgDisruptions = %g, want > 0 under churn", res.AvgDisruptions)
	}
	if res.PerLifetimeDisruptions <= 0 {
		t.Fatalf("PerLifetimeDisruptions = %g, want > 0 under churn", res.PerLifetimeDisruptions)
	}
	if len(res.DisruptionCounts) == 0 {
		t.Fatal("no per-member disruption counts (snapshot population empty)")
	}
}

func TestTreeQualityMetrics(t *testing.T) {
	res := newWorld(t, 4, 100, Hooks{}).run(t)
	if res.AvgServiceDelayMS <= 0 {
		t.Fatalf("AvgServiceDelayMS = %g", res.AvgServiceDelayMS)
	}
	// A stretch below 1 would mean the overlay beats direct unicast.
	if res.AvgStretch < 1 {
		t.Fatalf("AvgStretch = %g, want >= 1", res.AvgStretch)
	}
}

func TestHooksFire(t *testing.T) {
	var joins, failures, departs, rejoins int
	w := newWorld(t, 5, 100, Hooks{
		OnJoin:    func(*eventsim.Simulator, *overlay.Member) { joins++ },
		OnFailure: func(*eventsim.Simulator, *overlay.Member) { failures++ },
		OnDepart:  func(*eventsim.Simulator, overlay.MemberID) { departs++ },
		OnRejoin:  func(*eventsim.Simulator, *overlay.Member) { rejoins++ },
	})
	w.run(t)
	if joins == 0 || failures == 0 || departs == 0 {
		t.Fatalf("hooks: joins=%d failures=%d departs=%d, want all > 0", joins, failures, departs)
	}
	if failures != departs {
		t.Fatalf("failures %d != departs %d", failures, departs)
	}
	if rejoins == 0 {
		t.Fatal("no orphan rejoins observed; churn too tame")
	}
}

func TestTrackedMember(t *testing.T) {
	w := newWorld(t, 6, 100, Hooks{})
	tr := w.driver.Track(1800*time.Second, 2)
	w.run(t)
	if tr.Member == nil {
		t.Fatal("tracked member never created")
	}
	if len(tr.Times) < 25 {
		t.Fatalf("only %d samples over a 30-minute window", len(tr.Times))
	}
	// Cumulative disruptions are non-decreasing.
	for i := 1; i < len(tr.Disruptions); i++ {
		if tr.Disruptions[i] < tr.Disruptions[i-1] {
			t.Fatal("cumulative disruptions decreased")
		}
	}
	if len(tr.DelayMS) != len(tr.Times) || len(tr.Disruptions) != len(tr.Times) {
		t.Fatal("sample series lengths diverge")
	}
	// The tracked member never departs.
	if w.tree.Member(tr.Member.ID) == nil {
		t.Fatal("tracked member departed")
	}
}

func TestBurst(t *testing.T) {
	topo := smallTopo(t, 8)
	sim := eventsim.New()
	tree, err := overlay.NewTree(topo.RandomStub(xrand.New(1)), 100, topo.Delay)
	if err != nil {
		t.Fatal(err)
	}
	env := &construct.Env{Rng: xrand.New(2), Delay: topo.Delay}
	driver, err := NewDriver(sim, tree, topo, &construct.MinDepth{Env: env}, Config{
		Seed: 8, TargetSize: 50,
	}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	driver.Burst(100*time.Second, 40)
	driver.Start()
	// Run to just past the burst instant: none of the burst members can
	// have departed yet unless their lifetime is under a second.
	if err := sim.Run(101 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if size := tree.Size(); size < 38 {
		t.Fatalf("tree size %d right after a 40-member burst, want >= 38", size)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPrePopulateEquilibrium verifies the stationary seeding: the overlay
// starts at the target size with a positive-age population and stays near
// the target for the whole run.
func TestPrePopulateEquilibrium(t *testing.T) {
	w := newWorld(t, 10, 200, Hooks{})
	w.driver.Start()
	if err := w.sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if size := w.tree.Size(); size < 200 {
		t.Fatalf("size %d right after pre-population, want >= 200", size)
	}
	agedMembers := 0
	w.tree.VisitSubtree(w.tree.Root(), func(m *overlay.Member) {
		if m.Age(0) > 0 {
			agedMembers++
		}
	})
	if agedMembers < 150 {
		t.Fatalf("only %d members carry a pre-seeded age", agedMembers)
	}
	if err := w.sim.Run(w.driver.Horizon()); err != nil {
		t.Fatal(err)
	}
	res := w.driver.Result()
	if res.AvgSize < 120 || res.AvgSize > 320 {
		t.Fatalf("equilibrium drifted: avg size %.1f, want around 200", res.AvgSize)
	}
}

// TestSaturationRetries drives churn with a source that can feed only one
// child and a bandwidth distribution of pure free-riders, so every arrival
// beyond the first must retry.
func TestSaturationRetries(t *testing.T) {
	topo := smallTopo(t, 9)
	sim := eventsim.New()
	tree, err := overlay.NewTree(topo.RandomStub(xrand.New(1)), 1, topo.Delay)
	if err != nil {
		t.Fatal(err)
	}
	env := &construct.Env{Rng: xrand.New(2), Delay: topo.Delay}
	driver, err := NewDriver(sim, tree, topo, &construct.MinDepth{Env: env}, Config{
		Seed:       9,
		TargetSize: 30,
		Bandwidth:  xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 0.99}, // all free-riders
		Warmup:     600 * time.Second,
		Measure:    600 * time.Second,
	}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	driver.Start()
	if err := sim.Run(driver.Horizon()); err != nil {
		t.Fatal(err)
	}
	if driver.JoinFailures == 0 {
		t.Fatal("no join failures under engineered saturation")
	}
	// Only the root's single slot can ever be filled.
	attached := 0
	tree.VisitSubtree(tree.Root(), func(*overlay.Member) { attached++ })
	if attached > 2 {
		t.Fatalf("%d attached members with capacity for 1", attached)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAncestorRejoin drives churn with ancestor-first orphan repair enabled
// and verifies the structure stays sound and orphans actually re-attach
// through the hook.
func TestAncestorRejoin(t *testing.T) {
	topo := smallTopo(t, 11)
	sim := eventsim.New()
	tree, err := overlay.NewTree(topo.RandomStub(xrand.New(1)), 100, topo.Delay)
	if err != nil {
		t.Fatal(err)
	}
	env := &construct.Env{Rng: xrand.New(2), Delay: topo.Delay}
	rejoins := 0
	driver, err := NewDriver(sim, tree, topo, &construct.MinDepth{Env: env}, Config{
		Seed:           11,
		TargetSize:     300,
		Warmup:         1800 * time.Second,
		Measure:        1800 * time.Second,
		PrePopulate:    true,
		AncestorRejoin: true,
	}, Hooks{OnRejoin: func(*eventsim.Simulator, *overlay.Member) { rejoins++ }})
	if err != nil {
		t.Fatal(err)
	}
	driver.Start()
	if err := sim.Run(driver.Horizon()); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rejoins == 0 {
		t.Fatal("no rejoins under churn with ancestor repair")
	}
}

func TestDriverTreeAccessor(t *testing.T) {
	w := newWorld(t, 12, 50, Hooks{})
	if w.driver.Tree() != w.tree {
		t.Fatal("Tree() returned a different tree")
	}
}

func TestSurvivalIntegral(t *testing.T) {
	// The integral over an infinite horizon equals the mean (1809 s); a
	// 48-hour horizon captures nearly all of it, and monotonicity holds.
	life := DefaultLifetime
	short := survivalIntegral(life, 1*time.Hour)
	long := survivalIntegral(life, 48*time.Hour)
	if short <= 0 || long <= short {
		t.Fatalf("integral not increasing: %f then %f", short, long)
	}
	if long > life.Mean() {
		t.Fatalf("integral %f exceeds the mean %f", long, life.Mean())
	}
	if long < 0.8*life.Mean() {
		t.Fatalf("48h integral %f too far below the mean %f", long, life.Mean())
	}
}
