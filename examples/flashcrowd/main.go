// Flashcrowd: stress the distributed construction algorithms with a burst of
// simultaneous arrivals — the scenario Section 3.1 uses to argue against
// centralized tree construction ("the nodes may arrive in flash crowds").
// A 50% audience spike lands in a single instant; the example reports how
// each algorithm's tree absorbs it.
//
//	go run ./examples/flashcrowd [-size 2000] [-burst 1000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flashcrowd:", err)
		os.Exit(1)
	}
}

func run() error {
	size := flag.Int("size", 2000, "steady-state audience before the burst")
	burst := flag.Int("burst", 1000, "members arriving simultaneously")
	flag.Parse()

	// The burst lands mid-warm-up; the measurement window then captures the
	// tree digesting the crowd.
	burstAt := 30 * time.Minute
	fmt.Printf("steady audience %d; %d members arrive at once at t=%v\n\n", *size, *burst, burstAt)
	fmt.Printf("%-28s %14s %14s %10s %14s\n",
		"algorithm", "disruptions", "delay", "stretch", "reconnections")
	for _, alg := range []omcast.Algorithm{omcast.MinimumDepth, omcast.LongestFirst, omcast.ROST} {
		res, err := omcast.Run(omcast.Config{
			Seed:       11,
			Algorithm:  alg,
			TargetSize: *size,
			Warmup:     time.Hour,
			Measure:    2 * time.Hour,
			FlashCrowd: &omcast.FlashCrowd{At: burstAt, Size: *burst},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %14.2f %12.0fms %10.2f %14.2f\n",
			alg, res.AvgDisruptions, res.AvgServiceDelayMS, res.AvgStretch, res.AvgReconnections)
	}
	fmt.Println("\n(all three are fully distributed: each arrival contacts at most 100 members, so the")
	fmt.Println("burst needs no central coordinator; ROST additionally repairs the hasty placements")
	fmt.Println("afterwards through BTP switching)")
	return nil
}
