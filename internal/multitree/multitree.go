// Package multitree implements the extension the paper's introduction
// singles out as future work: applying the single-tree techniques (ROST
// construction, CER recovery) to multiple-tree data delivery ("we believe
// that the techniques developed under this scheme can also be applied to the
// multiple-tree case").
//
// The stream is split into T stripes (packet n belongs to stripe n mod T,
// the multiple-description-coding layout of the paper's reference [9]); each
// stripe is multicast over its own overlay tree. Every member joins all T
// trees as a receiver but contributes forwarding bandwidth according to a
// contribution policy:
//
//   - SplitContribution: the member's out-degree is divided evenly across
//     the trees (CoopNet-style).
//   - DisjointContribution: the member is interior in exactly one tree —
//     its designated tree gets its whole out-degree, every other tree gets
//     zero (SplitStream-style interior-node disjointness). A member failure
//     then disrupts at most one stripe's subtree.
//
// Fault resilience composes with coding: with MDC a viewer needs only
// QuorumStripes of the T stripes on time for watchable quality, so a
// disruption in one tree degrades rather than interrupts playback. The
// package reports both the full-quality ratio (all stripes on time) and the
// outage ratio (fewer than the quorum on time); the latter is the analogue
// of the single-tree starving-time ratio.
package multitree

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"omcast/internal/cer"
	"omcast/internal/construct"
	"omcast/internal/eventsim"
	"omcast/internal/overlay"
	"omcast/internal/rost"
	"omcast/internal/stats"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// Contribution selects how a member's forwarding bandwidth is spread over
// the stripe trees.
type Contribution int

// Contribution policies.
const (
	// SplitContribution divides each member's out-degree evenly.
	SplitContribution Contribution = iota + 1
	// DisjointContribution gives each member's whole out-degree to one
	// designated tree (interior-node disjointness).
	DisjointContribution
)

// String names the policy.
func (c Contribution) String() string {
	switch c {
	case SplitContribution:
		return "split"
	case DisjointContribution:
		return "disjoint"
	default:
		return fmt.Sprintf("Contribution(%d)", int(c))
	}
}

// Config parameterises a multi-tree session.
type Config struct {
	// Stripes is T, the number of stripe trees (>= 1; 1 degenerates to the
	// single-tree system).
	Stripes int
	// Contribution policy; default SplitContribution.
	Contribution Contribution
	// QuorumStripes is how many stripes must be on time for watchable
	// quality (MDC); default Stripes (i.e., no coding slack).
	QuorumStripes int
	// UseROST maintains each stripe tree with ROST switching; otherwise
	// minimum-depth only.
	UseROST bool
	// SwitchInterval for ROST; zero uses the package default.
	SwitchInterval time.Duration
	// Churn parameters.
	Seed          int64
	TargetSize    int
	RootBandwidth float64
	Lifetime      xrand.Lognormal
	Bandwidth     xrand.BoundedPareto
	SessionAge    time.Duration
	Warmup        time.Duration
	Measure       time.Duration
	// Stream parameters (shared by all stripes).
	Rate        float64       // packets/s across ALL stripes; default 10
	Buffer      time.Duration // playback buffer; default 5 s
	DetectDelay time.Duration // default 5 s
	RejoinDelay time.Duration // default 10 s
}

func (c Config) withDefaults() Config {
	if c.Contribution == 0 {
		c.Contribution = SplitContribution
	}
	if c.QuorumStripes <= 0 || c.QuorumStripes > c.Stripes {
		c.QuorumStripes = c.Stripes
	}
	if c.RootBandwidth <= 0 {
		c.RootBandwidth = 100
	}
	if c.Lifetime == (xrand.Lognormal{}) {
		c.Lifetime = xrand.Lognormal{Mu: 5.5, Sigma: 2.0}
	}
	if c.Bandwidth == (xrand.BoundedPareto{}) {
		c.Bandwidth = xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 100}
	}
	if c.SessionAge <= 0 {
		c.SessionAge = 4 * time.Hour
	}
	if c.Warmup <= 0 {
		c.Warmup = 1800 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 3600 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.Buffer <= 0 {
		c.Buffer = 5 * time.Second
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = 5 * time.Second
	}
	if c.RejoinDelay <= 0 {
		c.RejoinDelay = 10 * time.Second
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Stripes <= 0 {
		return fmt.Errorf("multitree: Stripes = %d, want >= 1", c.Stripes)
	}
	if c.TargetSize <= 0 {
		return fmt.Errorf("multitree: TargetSize = %d, want > 0", c.TargetSize)
	}
	return nil
}

// participant is one member's presence across all stripe trees.
type participant struct {
	id        int64
	attach    topology.NodeID
	bandwidth float64
	joined    time.Duration
	// nodes[t] is the member's node in stripe tree t.
	nodes []*overlay.Member
	// designated is the interior tree under DisjointContribution.
	designated int

	// viewStart and badSlots drive the per-member quality accounting:
	// badSlots counts stripe packets that missed their playback deadline.
	viewStart time.Duration
	badSlots  int64
	// residual bandwidth donated to recovery (packets/s).
	residual float64
	// watermark per stripe prevents double counting across overlapping
	// episodes.
	watermark []int64
	// outageUntil per stripe.
	outageUntil []time.Duration
}

// Session is a running multi-tree simulation.
type Session struct {
	cfg   Config
	sim   *eventsim.Simulator
	topo  *topology.Topology
	trees []*overlay.Tree
	envs  []*construct.Env
	joins []construct.Strategy
	rosts []*rostDriver

	arrivalRng  *xrand.Source
	lifetimeRng *xrand.Source
	bwRng       *xrand.Source
	placeRng    *xrand.Source
	residualRng *xrand.Source
	selectRng   *xrand.Source

	arrivalGap xrand.Exponential

	participants map[int64]*participant
	// byNode maps a per-tree member ID to its participant.
	byNode []map[overlay.MemberID]*participant
	nextID int64

	measureFrom time.Duration
	measureTo   time.Duration

	// finished participants' quality ratios.
	fullRatios   []float64
	outageRatios []float64

	// Disruptions counts stripe-level disruption events during measurement.
	Disruptions int
	// Episodes counts recovery episodes run.
	Episodes int
	// Per-tree accounting (indexed by stripe): recovery episodes and
	// measured disruptions charged to each tree — the load/health split the
	// fleet layer reads.
	treeEpisodes    []int
	treeDisruptions []int
	// maxBlastRadius is the most stripes any single member failure
	// disrupted (subtrees orphaned). DisjointContribution bounds it at 1.
	maxBlastRadius int

	// arrivalBuf is the reusable dense repair-plan buffer (one arrival per
	// missing stripe packet; negative = lost).
	arrivalBuf []time.Duration
}

// rostDriver adapts the rost protocol per tree (kept minimal: the full
// protocol lives in internal/rost; multitree reuses the construct-level
// switching through it).
type rostDriver struct {
	start func(sim *eventsim.Simulator, m *overlay.Member)
}

// enableROST maintains every stripe tree with BTP switching.
func (s *Session) enableROST() {
	for t := range s.trees {
		p := rost.New(s.trees[t], s.envs[t], rost.Config{SwitchInterval: s.cfg.SwitchInterval})
		s.joins[t] = p
		s.rosts[t] = &rostDriver{start: p.Start}
	}
}

// NewSession builds a multi-tree session.
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topoCfg := topology.DefaultConfig(cfg.Seed)
	// Multi-tree runs are heavier (T trees); use a mid-sized underlay
	// unless the session is paper-scale.
	if cfg.TargetSize < 4000 {
		topoCfg.TransitDomains = 3
		topoCfg.TransitNodesPerDomain = 8
		topoCfg.StubDomainsPerTransit = 4
		topoCfg.StubNodesPerDomain = 8
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("multitree: underlay: %w", err)
	}
	s := &Session{
		cfg:          cfg,
		sim:          eventsim.New(),
		topo:         topo,
		participants: make(map[int64]*participant),
		arrivalRng:   xrand.NewNamed(cfg.Seed, "mt.arrival"),
		lifetimeRng:  xrand.NewNamed(cfg.Seed, "mt.lifetime"),
		bwRng:        xrand.NewNamed(cfg.Seed, "mt.bandwidth"),
		placeRng:     xrand.NewNamed(cfg.Seed, "mt.place"),
		residualRng:  xrand.NewNamed(cfg.Seed, "mt.residual"),
		selectRng:    xrand.NewNamed(cfg.Seed, "mt.select"),
		measureFrom:  cfg.Warmup,
		measureTo:    cfg.Warmup + cfg.Measure,
		nextID:       1,

		treeEpisodes:    make([]int, cfg.Stripes),
		treeDisruptions: make([]int, cfg.Stripes),
	}
	rootAttach := topo.RandomStub(xrand.NewNamed(cfg.Seed, "mt.root"))
	for t := 0; t < cfg.Stripes; t++ {
		tree, err := overlay.NewTree(rootAttach, cfg.RootBandwidth, topo.Delay)
		if err != nil {
			return nil, fmt.Errorf("multitree: tree %d: %w", t, err)
		}
		s.trees = append(s.trees, tree)
		s.byNode = append(s.byNode, make(map[overlay.MemberID]*participant))
		env := &construct.Env{
			Rng:            xrand.NewNamed(cfg.Seed+int64(t), "mt.strategy"),
			Delay:          topo.Delay,
			CandidateCount: construct.DefaultCandidateCount,
		}
		s.envs = append(s.envs, env)
		s.joins = append(s.joins, &construct.MinDepth{Env: env})
		s.rosts = append(s.rosts, nil)
	}
	if cfg.UseROST {
		s.enableROST()
	}
	lambda := float64(cfg.TargetSize) / survivalIntegral(cfg.Lifetime, cfg.SessionAge)
	s.arrivalGap = xrand.Exponential{Rate: lambda}
	return s, nil
}

// Horizon returns the end of the measurement window.
func (s *Session) Horizon() time.Duration { return s.measureTo }

// Tree returns stripe tree t (testing hook).
func (s *Session) Tree(t int) *overlay.Tree { return s.trees[t] }

// Run executes the whole session and returns its results.
func (s *Session) Run() (Result, error) {
	s.prePopulate()
	s.scheduleNextArrival()
	if err := s.sim.Run(s.Horizon()); err != nil {
		return Result{}, fmt.Errorf("multitree: simulation failed: %w", err)
	}
	s.finishAll()
	return s.result(), nil
}

// stripeBandwidth returns the forwarding bandwidth participant p offers to
// stripe tree t under the configured contribution policy.
func (s *Session) stripeBandwidth(p *participant, t int) float64 {
	switch s.cfg.Contribution {
	case DisjointContribution:
		if t == p.designated {
			return p.bandwidth
		}
		return 0
	default:
		return p.bandwidth / float64(s.cfg.Stripes)
	}
}

// newParticipant creates the member and its per-tree nodes.
func (s *Session) newParticipant(now time.Duration) *participant {
	p := &participant{
		id:          s.nextID,
		attach:      s.topo.RandomStub(s.placeRng),
		bandwidth:   s.cfg.Bandwidth.Sample(s.bwRng),
		joined:      now,
		viewStart:   now,
		residual:    s.residualRng.Float64() * 9,
		watermark:   make([]int64, s.cfg.Stripes),
		outageUntil: make([]time.Duration, s.cfg.Stripes),
		nodes:       make([]*overlay.Member, s.cfg.Stripes),
	}
	for i := range p.watermark {
		p.watermark[i] = -1
	}
	s.nextID++
	p.designated = int(p.id) % s.cfg.Stripes
	s.participants[p.id] = p
	return p
}

// joinAll attaches the participant to every stripe tree (retrying saturated
// trees later).
func (s *Session) joinAll(p *participant, now time.Duration) {
	for t := 0; t < s.cfg.Stripes; t++ {
		s.joinTree(p, t, now)
	}
}

func (s *Session) joinTree(p *participant, t int, now time.Duration) {
	if s.participants[p.id] == nil {
		return // departed before the retry fired
	}
	if p.nodes[t] == nil {
		m := s.trees[t].NewMember(p.attach, s.stripeBandwidth(p, t), p.joined)
		m.JoinTime = p.joined
		p.nodes[t] = m
		s.byNode[t][m.ID] = p
	}
	m := p.nodes[t]
	if m.Attached() {
		return
	}
	if err := s.joins[t].Join(s.trees[t], m, now); err != nil {
		if errors.Is(err, construct.ErrNoParent) {
			s.sim.ScheduleAfter(5*time.Second, func(sim *eventsim.Simulator) {
				s.joinTree(p, t, sim.Now())
			})
			return
		}
		panic(fmt.Sprintf("multitree: join: %v", err))
	}
	if s.rosts[t] != nil {
		s.rosts[t].start(s.sim, m)
	}
}

func (s *Session) scheduleNextArrival() {
	gap := s.arrivalGap.SampleDuration(s.arrivalRng)
	s.sim.ScheduleAfter(gap, func(sim *eventsim.Simulator) {
		s.arrive(sim)
		s.scheduleNextArrival()
	})
}

func (s *Session) arrive(sim *eventsim.Simulator) {
	p := s.newParticipant(sim.Now())
	life := time.Duration(s.cfg.Lifetime.Sample(s.lifetimeRng) * float64(time.Second))
	id := p.id
	sim.ScheduleAfter(life, func(next *eventsim.Simulator) {
		s.depart(next, id)
	})
	s.joinAll(p, sim.Now())
}

// prePopulate replays an arrival history over [-SessionAge, 0), as the
// single-tree churn driver does.
func (s *Session) prePopulate() {
	t0 := s.cfg.SessionAge.Seconds()
	arrivals := int(s.arrivalGap.Rate*t0 + 0.5)
	type seed struct {
		age      time.Duration
		residual time.Duration
	}
	var seeds []seed
	for i := 0; i < arrivals; i++ {
		age := s.lifetimeRng.Float64() * t0
		life := s.cfg.Lifetime.Sample(s.lifetimeRng)
		if life <= age {
			continue
		}
		seeds = append(seeds, seed{
			age:      time.Duration(age * float64(time.Second)),
			residual: time.Duration((life - age) * float64(time.Second)),
		})
	}
	// Oldest first, inside a time-zero event so joins see a live simulator.
	for i := 1; i < len(seeds); i++ {
		for j := i; j > 0 && seeds[j].age > seeds[j-1].age; j-- {
			seeds[j], seeds[j-1] = seeds[j-1], seeds[j]
		}
	}
	s.sim.Schedule(0, func(sim *eventsim.Simulator) {
		for _, sd := range seeds {
			p := s.newParticipant(0)
			p.joined = -sd.age
			p.viewStart = 0
			id := p.id
			sim.ScheduleAfter(sd.residual, func(next *eventsim.Simulator) {
				s.depart(next, id)
			})
			s.joinAll(p, 0)
		}
	})
}

// depart removes the participant from every tree, running per-stripe CER
// episodes for the subtrees it disrupts.
func (s *Session) depart(sim *eventsim.Simulator, id int64) {
	p := s.participants[id]
	if p == nil {
		return
	}
	now := sim.Now()
	blast := 0
	for t := 0; t < s.cfg.Stripes; t++ {
		if m := p.nodes[t]; m != nil && m.Attached() && m.NumChildren() > 0 {
			blast++
		}
	}
	if blast > s.maxBlastRadius {
		s.maxBlastRadius = blast
	}
	for t := 0; t < s.cfg.Stripes; t++ {
		m := p.nodes[t]
		if m == nil {
			continue
		}
		if m.Attached() && m.NumChildren() > 0 {
			s.onStripeFailure(t, m, now)
		}
		ancestors := s.trees[t].Ancestors(m)
		orphans, err := s.trees[t].Remove(m)
		if err != nil {
			panic(fmt.Sprintf("multitree: remove: %v", err))
		}
		delete(s.byNode[t], m.ID)
		for _, o := range orphans {
			s.rejoinOrphan(t, o, ancestors, now)
		}
	}
	delete(s.participants, id)
	s.finishParticipant(p, now)
}

func (s *Session) rejoinOrphan(t int, o *overlay.Member, ancestors []*overlay.Member, now time.Duration) {
	for _, a := range ancestors {
		if s.trees[t].Member(a.ID) == a && a.Attached() && a.HasSpare() {
			if err := s.trees[t].Attach(o, a); err == nil {
				return
			}
		}
	}
	op := s.byNode[t][o.ID]
	if op == nil {
		return
	}
	s.joinTree(op, t, now)
}

// onStripeFailure runs the CER episode for one stripe subtree.
func (s *Session) onStripeFailure(t int, failed *overlay.Member, now time.Duration) {
	outageEnd := now + s.cfg.DetectDelay + s.cfg.RejoinDelay
	// Phase 1: mark outages.
	for _, c := range failed.Children() {
		s.trees[t].VisitSubtree(c, func(d *overlay.Member) {
			if p := s.byNode[t][d.ID]; p != nil && p.outageUntil[t] < outageEnd {
				p.outageUntil[t] = outageEnd
			}
		})
	}
	// Phase 2: per-orphan recovery.
	stripeRate := s.cfg.Rate / float64(s.cfg.Stripes)
	for _, c := range failed.Children() {
		s.Episodes++
		s.treeEpisodes[t]++
		cp := s.byNode[t][c.ID]
		if cp == nil {
			continue
		}
		first := s.stripePacketAfter(t, now)
		last := s.stripePacketAfter(t, outageEnd) - 1
		if last < first {
			continue
		}
		arrivals := s.planRecovery(t, c, cp, first, last, now+s.cfg.DetectDelay, outageEnd, stripeRate)
		s.applyEpisode(t, c, first, last, arrivals, now)
	}
}

// Stripe packet numbering: stripe t carries global packets n with
// n mod T == t; we index stripe packets by k where n = k*T + t.
func (s *Session) stripeGen(t int, k int64) time.Duration {
	n := k*int64(s.cfg.Stripes) + int64(t)
	return time.Duration(float64(n) / s.cfg.Rate * float64(time.Second))
}

func (s *Session) stripePacketAfter(t int, at time.Duration) int64 {
	k := int64(at.Seconds() * s.cfg.Rate / float64(s.cfg.Stripes))
	for s.stripeGen(t, k) < at {
		k++
	}
	for k > 0 && s.stripeGen(t, k-1) >= at {
		k--
	}
	return k
}

// planRecovery selects an MLC group in stripe tree t and plans repairs.
// Members of OTHER stripe trees are natural low-correlation helpers, so the
// group is drawn from the same participant population but checked for
// health on this stripe.
func (s *Session) planRecovery(t int, c *overlay.Member, cp *participant, first, last int64, requestAt, resumeAt time.Duration, stripeRate float64) []time.Duration {
	selector := &cer.MLCSelector{Tree: s.trees[t], Rng: s.selectRng, Delay: s.topo.Delay}
	group := selector.Select(c, 3)
	servers := make([]cer.Server, 0, len(group))
	chain := time.Duration(0)
	prev := c
	for _, g := range group {
		chain += s.topo.Delay(prev.Attach, g.Attach)
		prev = g
		gp := s.byNode[t][g.ID]
		if gp == nil || gp.outageUntil[t] > requestAt {
			continue
		}
		servers = append(servers, cer.Server{
			Member:     g,
			Epsilon:    gp.residual / float64(s.cfg.Stripes) / stripeRate,
			ChainDelay: chain,
			Transfer:   s.topo.Delay(g.Attach, c.Attach),
		})
	}
	s.arrivalBuf = cer.PlanRecoveryInto(cer.Episode{
		FirstMissing: first,
		LastMissing:  last,
		RequestAt:    requestAt,
		ResumeAt:     resumeAt,
		Rate:         stripeRate,
		Gen:          func(k int64) time.Duration { return s.stripeGen(t, k) },
		Striped:      true,
	}, servers, s.arrivalBuf)
	return s.arrivalBuf
}

// applyEpisode folds the plan into every affected participant's per-slot
// quality accounting. A playback slot of duration Stripes/Rate seconds needs
// all T stripe packets; we charge the affected stripe's misses.
func (s *Session) applyEpisode(t int, c *overlay.Member, first, last int64, arrivals []time.Duration, failedAt time.Duration) {
	s.trees[t].VisitSubtree(c, func(d *overlay.Member) {
		p := s.byNode[t][d.ID]
		if p == nil || p.viewStart > failedAt {
			return
		}
		hop := time.Duration(0)
		if d != c {
			hop = s.topo.Delay(c.Attach, d.Attach)
		}
		from := first
		if p.watermark[t]+1 > from {
			from = p.watermark[t] + 1
		}
		for k := from; k <= last; k++ {
			deadline := s.stripeGen(t, k) + s.cfg.Buffer
			arrival := arrivals[k-first]
			if arrival < 0 || arrival+hop > deadline {
				p.badSlots++ // this stripe's packet misses its slot
				if s.inMeasurement(deadline) {
					s.Disruptions++
					s.treeDisruptions[t]++
				}
			}
		}
		if last > p.watermark[t] {
			p.watermark[t] = last
		}
	})
}

func (s *Session) inMeasurement(at time.Duration) bool {
	return at >= s.measureFrom && at <= s.measureTo
}

// finishParticipant converts a participant's slot accounting into quality
// ratios. Slots are stripe-packet slots: view seconds * rate / stripes per
// stripe; a missed stripe packet degrades quality, and degradation beyond
// the MDC quorum is an outage.
func (s *Session) finishParticipant(p *participant, now time.Duration) {
	view := now - p.viewStart
	if view < 30*time.Second || now < s.measureFrom {
		return
	}
	// Total stripe-packet opportunities during the view.
	total := view.Seconds() * s.cfg.Rate
	if total <= 0 {
		return
	}
	missed := float64(p.badSlots)
	if missed > total {
		missed = total
	}
	missFrac := missed / total
	// With T stripes and an MDC quorum of Q, the coding absorbs up to
	// (T-Q)/T of the stripe packets; only losses beyond that slack pull the
	// playback below watchable quality. (With Q = T the slack is zero and
	// the outage ratio reduces to the single-tree starving-time ratio.)
	codingSlack := 1 - float64(s.cfg.QuorumStripes)/float64(s.cfg.Stripes)
	outage := missFrac - codingSlack
	if outage < 0 {
		outage = 0
	}
	s.fullRatios = append(s.fullRatios, 1-missFrac)
	s.outageRatios = append(s.outageRatios, outage)
}

func (s *Session) finishAll() {
	now := s.sim.Now()
	// Deterministic order: map iteration would reorder the float sums.
	ids := make([]int64, 0, len(s.participants))
	for id := range s.participants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.finishParticipant(s.participants[id], now)
		delete(s.participants, id)
	}
}

// TreeLoad is one stripe tree's load/health accounting: the per-tree view
// the fleet control plane consumes when deciding where a source's capacity
// actually went.
type TreeLoad struct {
	// Tree is the stripe index.
	Tree int
	// Members currently joined to this tree; Interior of them forward.
	Members  int
	Interior int
	// SpareDegree is the tree's total unused forwarding capacity (child
	// slots available right now).
	SpareDegree int
	// MaxDepth is the tree's current height.
	MaxDepth int
	// Episodes and Disruptions are this tree's recovery-activity counters.
	Episodes    int
	Disruptions int
}

// Loads reports every stripe tree's current load and health. The scan
// visits members in tree order, so the result is deterministic.
func (s *Session) Loads() []TreeLoad {
	loads := make([]TreeLoad, s.cfg.Stripes)
	for t := range s.trees {
		tl := TreeLoad{
			Tree:        t,
			MaxDepth:    s.trees[t].MaxDepth(),
			Episodes:    s.treeEpisodes[t],
			Disruptions: s.treeDisruptions[t],
		}
		s.trees[t].VisitMembers(func(m *overlay.Member) {
			if m == s.trees[t].Root() {
				return
			}
			tl.Members++
			if m.NumChildren() > 0 {
				tl.Interior++
			}
			if sp := m.SpareDegree(); sp > 0 {
				tl.SpareDegree += sp
			}
		})
		loads[t] = tl
	}
	return loads
}

// Result summarises a multi-tree run.
type Result struct {
	// FullQualityRatio is the mean fraction of stripe packets delivered on
	// schedule (1 = every stripe of every slot on time).
	FullQualityRatio float64
	// OutageRatio is the mean fraction of view time below the MDC quorum —
	// the multi-tree analogue of the starving-time ratio.
	OutageRatio float64
	// Members contributed quality samples.
	Members int
	// Episodes and Disruptions report recovery activity.
	Episodes    int
	Disruptions int
	// MaxDepths reports each stripe tree's final height.
	MaxDepths []int
	// TreeLoads is the final per-tree load/health accounting.
	TreeLoads []TreeLoad
	// MaxBlastRadius is the most stripe trees any single member failure
	// disrupted; DisjointContribution's interior-disjointness bounds it at 1.
	MaxBlastRadius int
}

func (s *Session) result() Result {
	res := Result{
		FullQualityRatio: stats.Mean(s.fullRatios),
		OutageRatio:      stats.Mean(s.outageRatios),
		Members:          len(s.fullRatios),
		Episodes:         s.Episodes,
		Disruptions:      s.Disruptions,
		TreeLoads:        s.Loads(),
		MaxBlastRadius:   s.maxBlastRadius,
	}
	for _, tree := range s.trees {
		res.MaxDepths = append(res.MaxDepths, tree.MaxDepth())
	}
	return res
}

// survivalIntegral mirrors the churn driver's rate calibration.
func survivalIntegral(life xrand.Lognormal, horizon time.Duration) float64 {
	const steps = 2000
	h := horizon.Seconds() / steps
	sum := 0.0
	surv := func(x float64) float64 { return 1 - life.CDF(x) }
	for i := 0; i <= steps; i++ {
		w := 2.0
		switch {
		case i == 0 || i == steps:
			w = 1
		case i%2 == 1:
			w = 4
		}
		sum += w * surv(float64(i)*h)
	}
	return sum * h / 3
}
