package overlay

import (
	"testing"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// BenchmarkAttachDetach measures the core structural operation pair.
func BenchmarkAttachDetach(b *testing.B) {
	tree, err := NewTree(0, 100, constDelay)
	if err != nil {
		b.Fatal(err)
	}
	parent := tree.NewMember(1, 50, 0)
	if err := tree.Attach(parent, tree.Root()); err != nil {
		b.Fatal(err)
	}
	m := tree.NewMember(2, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Attach(m, parent); err != nil {
			b.Fatal(err)
		}
		if err := tree.Detach(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMoveSubtree measures re-parenting a 64-member subtree (the switch
// operation's cost driver).
func BenchmarkMoveSubtree(b *testing.B) {
	tree, err := NewTree(0, 100, constDelay)
	if err != nil {
		b.Fatal(err)
	}
	a := tree.NewMember(1, 100, 0)
	c := tree.NewMember(2, 100, 0)
	if err := tree.Attach(a, tree.Root()); err != nil {
		b.Fatal(err)
	}
	if err := tree.Attach(c, tree.Root()); err != nil {
		b.Fatal(err)
	}
	// A 3-level subtree of 64 members under `sub`.
	sub := tree.NewMember(3, 4, 0)
	if err := tree.Attach(sub, a); err != nil {
		b.Fatal(err)
	}
	frontier := []*Member{sub}
	id := topology.NodeID(10)
	for len(frontier) > 0 && tree.SubtreeSize(sub) < 64 {
		next := frontier[0]
		frontier = frontier[1:]
		for i := 0; i < 4 && tree.SubtreeSize(sub) < 64; i++ {
			child := tree.NewMember(id, 4, 0)
			id++
			if err := tree.Attach(child, next); err != nil {
				b.Fatal(err)
			}
			frontier = append(frontier, child)
		}
	}
	b.ResetTimer()
	targets := [2]*Member{a, c}
	for i := 0; i < b.N; i++ {
		if err := tree.MoveSubtree(sub, targets[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSample measures bounded membership discovery over a 10k overlay.
func BenchmarkSample(b *testing.B) {
	tree, err := NewTree(0, 100, constDelay)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		m := tree.NewMember(topology.NodeID(i), 0.5, time.Duration(i))
		_ = m
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tree.Sample(rng, 100, nil); len(got) != 100 {
			b.Fatal("short sample")
		}
	}
}

// BenchmarkRecordFailure measures disruption accounting over a 1000-member
// subtree.
func BenchmarkRecordFailure(b *testing.B) {
	tree, err := NewTree(0, 100, constDelay)
	if err != nil {
		b.Fatal(err)
	}
	top := tree.NewMember(1, 100, 0)
	if err := tree.Attach(top, tree.Root()); err != nil {
		b.Fatal(err)
	}
	frontier := []*Member{top}
	id := topology.NodeID(10)
	total := 1
	for total < 1000 {
		next := frontier[0]
		frontier = frontier[1:]
		for i := 0; i < 10 && total < 1000; i++ {
			child := tree.NewMember(id, 10, 0)
			id++
			if err := tree.Attach(child, next); err != nil {
				b.Fatal(err)
			}
			frontier = append(frontier, child)
			total++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := tree.RecordFailure(top); n == 0 {
			b.Fatal("no descendants")
		}
	}
}
