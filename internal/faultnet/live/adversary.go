package live

import (
	"omcast/internal/faultnet"
	"omcast/internal/wire"
)

// defaultForgeFactor scales the "btp" forgery when the rule leaves
// ForgeFactor zero: strong enough that a single forged claim outruns any
// honest bandwidth's allowed growth.
const defaultForgeFactor = 50

// forgeBytes applies the rule's field-level forgery to a datagram: the
// in-flight adversary that rewrites protocol claims instead of flipping bits.
// It returns the forged datagram and whether anything changed. Datagrams that
// do not decode, or whose type the forge kind does not target, pass through
// untouched — the forger is a protocol-aware attacker, not a fuzzer (Corrupt
// models the latter). The forgery is codec-preserving: a binary datagram is
// re-forged as binary, a JSON one as JSON, so the rewrite stays invisible at
// the framing layer.
func forgeBytes(rule faultnet.Rule, data []byte) ([]byte, bool) {
	if rule.Forge == "" {
		return data, false
	}
	codec := wire.Detect(data)
	env, err := codec.Decode(data)
	if err != nil {
		return data, false
	}
	switch rule.Forge {
	case faultnet.ForgeBTP:
		if env.Type != wire.TypeHeartbeat && env.Type != wire.TypeSwitchPropose {
			return data, false
		}
		f := rule.ForgeFactor
		if f <= 0 {
			f = defaultForgeFactor
		}
		// claim' = claim*f + f: inflated even when the genuine claim is still
		// zero, so the very first heartbeat already lies.
		env.BTP = env.BTP*f + f
	case faultnet.ForgeRepair:
		if env.Type != wire.TypeRepairRequest && env.Type != wire.TypeELN {
			return data, false
		}
		// Invert the range: wire validation at the receiver rejects it and
		// attributes the misbehavior to the (byzantine) sender.
		env.FirstMissing = env.LastMissing + 5
	default:
		return data, false
	}
	forged, err := codec.Encode(env)
	if err != nil {
		return data, false
	}
	return forged, true
}

// datagramClass sorts a datagram into the Rule.Class vocabulary. Control
// covers the attachment/membership/switch/repair-request exchanges plus their
// acks (the reverse leg of the same exchange); everything else — including
// datagrams too mangled to decode — is data.
func datagramClass(data []byte) string {
	env, err := wire.Detect(data).DecodeRaw(data)
	if err != nil {
		return faultnet.ClassData
	}
	if wire.ControlClass(env.Type) || env.Type == wire.TypeAck {
		return faultnet.ClassControl
	}
	return faultnet.ClassData
}

// corruptBytes flips one bit of the datagram at the decision's deterministic
// position. Empty datagrams pass through.
func corruptBytes(dec faultnet.Decision, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	pos := int(dec.CorruptPos * float64(len(out)))
	if pos >= len(out) {
		pos = len(out) - 1
	}
	bit := uint(dec.CorruptBit * 8)
	if bit > 7 {
		bit = 7
	}
	out[pos] ^= 1 << bit
	return out
}
