package bench

import (
	"fmt"
	"time"

	"omcast"
)

// ScalePoint is one fig-scale measurement: a single ROST run at one member
// count, reporting the deterministic event count alongside the machine
// observables the experiment family tracks — retained heap bytes per member
// and wall-clock nanoseconds per event. Points ride in BENCH artifacts
// (Report.Scale); Compare ignores them like the headline scalars.
type ScalePoint struct {
	Members        int     `json:"members"`
	AvgSize        float64 `json:"avg_size"`
	Events         uint64  `json:"events"`
	WallNs         int64   `json:"wall_ns"`
	NsPerEvent     float64 `json:"ns_per_event"`
	HeapBytes      uint64  `json:"heap_bytes"`
	BytesPerMember float64 `json:"bytes_per_member"`
	AvgDisruptions float64 `json:"avg_disruptions"`
}

// DefaultScaleSizes is the fig-scale sweep: three decades up to the
// million-member single run.
func DefaultScaleSizes() []int { return []int{1000, 10_000, 100_000, 1_000_000} }

// ScaleConfig builds the omcast configuration behind one scale point. The
// windows are shorter than the paper's (15-minute warm-up and measure): the
// family measures footprint and event cost, which stabilise long before the
// figure metrics do, and the million-member point must complete in one
// sitting. quick additionally shrinks the underlay and the windows for
// smoke tests.
func ScaleConfig(members int, quick bool) omcast.Config {
	cfg := omcast.Config{
		Seed:       1,
		Algorithm:  omcast.ROST,
		TargetSize: members,
		Warmup:     15 * time.Minute,
		Measure:    15 * time.Minute,
	}
	if quick {
		cfg.Topology = omcast.SmallTopology()
		cfg.Warmup = 5 * time.Minute
		cfg.Measure = 5 * time.Minute
	}
	return cfg
}

// RunScale executes one run per size and assembles the scale points.
// progress, when non-nil, receives one line per completed point.
func RunScale(sizes []int, quick bool, progress func(format string, args ...any)) ([]ScalePoint, error) {
	points := make([]ScalePoint, 0, len(sizes))
	for _, m := range sizes {
		res, err := omcast.RunScale(ScaleConfig(m, quick))
		if err != nil {
			return nil, fmt.Errorf("bench: scale run at M=%d: %w", m, err)
		}
		p := ScalePoint{
			Members:        m,
			AvgSize:        res.AvgSize,
			Events:         res.Events,
			WallNs:         res.WallNs,
			NsPerEvent:     res.NsPerEvent,
			HeapBytes:      res.HeapBytes,
			BytesPerMember: res.BytesPerMember,
			AvgDisruptions: res.AvgDisruptions,
		}
		points = append(points, p)
		if progress != nil {
			progress("scale M=%-8d events=%-10d %7.1f ns/event %8.0f B/member disruptions=%.2f",
				p.Members, p.Events, p.NsPerEvent, p.BytesPerMember, p.AvgDisruptions)
		}
	}
	return points, nil
}
