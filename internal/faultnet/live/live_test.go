package live

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"omcast/internal/faultnet"
	mlive "omcast/internal/metrics/live"
	"omcast/internal/node"
	"omcast/internal/wire"
)

// rig is a two-endpoint fault network with a recording receiver.
type rig struct {
	mem  *node.MemNetwork
	net  *Network
	a, b node.Transport

	mu  sync.Mutex
	got []string
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	r := &rig{mem: node.NewMemNetwork(nil)}
	r.net = NewNetwork(opts)
	t.Cleanup(func() {
		r.net.Close()
		r.mem.Close()
	})
	for _, name := range []string{"a", "b"} {
		ep, err := r.mem.Endpoint(wire.Addr(name))
		if err != nil {
			t.Fatal(err)
		}
		w := r.net.Wrap(ep)
		if name == "a" {
			r.a = w
		} else {
			r.b = w
		}
	}
	r.b.SetHandler(func(data []byte) {
		r.mu.Lock()
		r.got = append(r.got, string(data))
		r.mu.Unlock()
	})
	return r
}

func (r *rig) received() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.got...)
}

func (r *rig) waitCount(t *testing.T, n int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(sc(within))
	for time.Now().Before(deadline) {
		if len(r.received()) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("received %d datagrams, want >= %d", len(r.received()), n)
}

func TestWrapPassthrough(t *testing.T) {
	r := newRig(t, Options{Seed: 1})
	if r.a.Addr() != "a" {
		t.Fatalf("wrapped addr = %s", r.a.Addr())
	}
	if err := r.a.Send("b", []byte("clean")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 1, time.Second)
	st := r.net.Stats()["a>b"]
	if st.Sent != 1 || st.Dropped != 0 {
		t.Fatalf("link stats = %+v", st)
	}
}

func TestDropRule(t *testing.T) {
	reg := mlive.NewRegistry()
	r := newRig(t, Options{
		Seed:     2,
		Metrics:  reg,
		Schedule: &faultnet.Schedule{DefaultRule: &faultnet.Rule{Drop: 1}},
	})
	for i := 0; i < 20; i++ {
		if err := r.a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := r.received(); len(got) != 0 {
		t.Fatalf("drop=1 delivered %d datagrams", len(got))
	}
	st := r.net.Stats()["a>b"]
	if st.Sent != 20 || st.Dropped != 20 {
		t.Fatalf("link stats = %+v", st)
	}
	snap := reg.Snapshot()
	dropped := 0.0
	for _, m := range snap.Metrics {
		if m.Name == "omcast_faultnet_dropped_total" {
			dropped = m.Value
		}
	}
	if dropped != 20 {
		t.Fatalf("dropped metric = %v, want 20", dropped)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	r := newRig(t, Options{Seed: 3})
	r.net.Apply(faultnet.Change{T: 0, Action: faultnet.ActionPartition, From: "a", To: "*", Symmetric: true})
	if err := r.a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if len(r.received()) != 0 {
		t.Fatal("partitioned datagram delivered")
	}
	if st := r.net.Stats()["a>b"]; st.Blocked != 1 {
		t.Fatalf("blocked = %d, want 1", st.Blocked)
	}
	r.net.Apply(faultnet.Change{T: 0, Action: faultnet.ActionHeal, From: "a", To: "*", Symmetric: true})
	if err := r.a.Send("b", []byte("through")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 1, time.Second)
}

func TestBlockRuleOneWay(t *testing.T) {
	r := newRig(t, Options{
		Seed: 4,
		Schedule: &faultnet.Schedule{
			Links: []faultnet.LinkRule{{From: "a", To: "b", Rule: faultnet.Rule{Block: true}}},
		},
	})
	if err := r.a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Reverse direction stays open (one-way partition).
	var mu sync.Mutex
	backGot := 0
	r.a.SetHandler(func([]byte) { mu.Lock(); backGot++; mu.Unlock() })
	if err := r.b.Send("a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(sc(time.Second))
	for time.Now().Before(deadline) {
		mu.Lock()
		n := backGot
		mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if backGot != 1 || len(r.received()) != 0 {
		t.Fatalf("one-way block broken: forward=%d back=%d", len(r.received()), backGot)
	}
}

func TestDuplicateRule(t *testing.T) {
	r := newRig(t, Options{
		Seed:     5,
		Schedule: &faultnet.Schedule{DefaultRule: &faultnet.Rule{Duplicate: 1}},
	})
	if err := r.a.Send("b", []byte("twice")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 2, time.Second)
	if got := r.received(); len(got) != 2 || got[0] != "twice" || got[1] != "twice" {
		t.Fatalf("duplicate delivery = %v", got)
	}
}

func TestReorderRule(t *testing.T) {
	r := newRig(t, Options{
		Seed:     6,
		Schedule: &faultnet.Schedule{DefaultRule: &faultnet.Rule{Reorder: 1}},
	})
	// First datagram is held (reorder=1), second releases it behind itself.
	if err := r.a.Send("b", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Send("b", []byte("second")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 2, time.Second)
	if got := r.received(); got[0] != "second" || got[1] != "first" {
		t.Fatalf("order = %v, want [second first]", got)
	}
	if st := r.net.Stats()["a>b"]; st.Held != 1 {
		t.Fatalf("held = %d, want 1", st.Held)
	}
}

func TestReorderFlushOnQuietLink(t *testing.T) {
	r := newRig(t, Options{
		Seed:     7,
		Schedule: &faultnet.Schedule{DefaultRule: &faultnet.Rule{Reorder: 1}},
	})
	// A lone held datagram must still arrive once maxHold expires.
	if err := r.a.Send("b", []byte("only")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 1, time.Second)
}

func TestLatencyAndJitter(t *testing.T) {
	const lat = 30 * time.Millisecond
	r := newRig(t, Options{
		Seed: 8,
		Schedule: &faultnet.Schedule{
			DefaultRule: &faultnet.Rule{Latency: faultnet.Duration(lat), Jitter: faultnet.Duration(10 * time.Millisecond)},
		},
	})
	start := time.Now()
	if err := r.a.Send("b", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < lat/2 {
		t.Fatalf("delivered after %v, want >= ~%v", elapsed, lat)
	}
}

func TestRateLimit(t *testing.T) {
	r := newRig(t, Options{
		Seed:     9,
		Schedule: &faultnet.Schedule{DefaultRule: &faultnet.Rule{RateBytes: 100}},
	})
	// Burst allows ~100 bytes; 10-byte datagrams: ~10 pass, the rest drop.
	for i := 0; i < 50; i++ {
		if err := r.a.Send("b", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	st := r.net.Stats()["a>b"]
	if st.RateDropped < 30 || st.RateDropped > 45 {
		t.Fatalf("rate-dropped = %d, want ~40", st.RateDropped)
	}
}

func TestCrashBlackholesAndHooks(t *testing.T) {
	var mu sync.Mutex
	var events []string
	r := newRig(t, Options{Seed: 10, NodeHook: func(addr string, up bool) {
		mu.Lock()
		events = append(events, fmt.Sprintf("%s:%t", addr, up))
		mu.Unlock()
	}})
	r.net.Crash("b")
	if !r.net.Down("b") {
		t.Fatal("b not marked down")
	}
	if err := r.a.Send("b", []byte("into the void")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if len(r.received()) != 0 {
		t.Fatal("datagram delivered to crashed node")
	}
	r.net.Restart("b")
	if r.net.Down("b") {
		t.Fatal("b still down after restart")
	}
	if err := r.a.Send("b", []byte("back")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 1, time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != "b:false" || events[1] != "b:true" {
		t.Fatalf("hook events = %v", events)
	}
}

func TestScheduleTimedEvents(t *testing.T) {
	r := newRig(t, Options{
		Seed: 11,
		Schedule: &faultnet.Schedule{
			Events: []faultnet.Event{
				{At: faultnet.Duration(sc(20 * time.Millisecond)), Until: faultnet.Duration(sc(80 * time.Millisecond)),
					Action: faultnet.ActionPartition, From: "a", To: "b"},
			},
		},
	})
	r.net.Start()
	time.Sleep(sc(40 * time.Millisecond)) // inside the partition window
	if err := r.a.Send("b", []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(sc(70 * time.Millisecond)) // past the heal
	if err := r.a.Send("b", []byte("open")); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, 1, time.Second)
	if got := r.received(); len(got) != 1 || got[0] != "open" {
		t.Fatalf("delivered = %v, want [open]", got)
	}
	log := r.net.FormatLog()
	if log == "" {
		t.Fatal("empty fault log")
	}
}

// TestCannedTrafficDeterminism is the byte-reproducibility contract: two
// networks with the same seed and schedule, fed the identical datagram
// sequence, must record identical fault logs and identical link stats.
func TestCannedTrafficDeterminism(t *testing.T) {
	run := func() (string, string) {
		mem := node.NewMemNetwork(nil)
		defer mem.Close()
		net := NewNetwork(Options{
			Seed: 424242,
			Schedule: &faultnet.Schedule{
				DefaultRule: &faultnet.Rule{Drop: 0.25, Duplicate: 0.1, Reorder: 0.15},
			},
		})
		defer net.Close()
		epA, err := mem.Endpoint("a")
		if err != nil {
			t.Fatal(err)
		}
		epB, err := mem.Endpoint("b")
		if err != nil {
			t.Fatal(err)
		}
		a, b := net.Wrap(epA), net.Wrap(epB)
		b.SetHandler(func([]byte) {})
		a.SetHandler(func([]byte) {})
		for i := 0; i < 300; i++ {
			if err := a.Send("b", []byte(fmt.Sprintf("fwd-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 150; i++ {
			if err := b.Send("a", []byte(fmt.Sprintf("rev-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return net.FormatLog(), net.FormatStats()
	}
	log1, stats1 := run()
	log2, stats2 := run()
	if log1 != log2 {
		t.Fatalf("fault logs diverged between same-seed runs:\n--- run1\n%s\n--- run2\n%s", log1, log2)
	}
	if stats1 != stats2 {
		t.Fatalf("link stats diverged between same-seed runs:\n--- run1\n%s\n--- run2\n%s", stats1, stats2)
	}
	if stats1 == "" || log1 == "" {
		t.Fatal("canned run recorded nothing")
	}
}

func TestLogLimit(t *testing.T) {
	r := newRig(t, Options{
		Seed:     12,
		LogLimit: 5,
		Schedule: &faultnet.Schedule{DefaultRule: &faultnet.Rule{Drop: 1}},
	})
	for i := 0; i < 20; i++ {
		_ = r.a.Send("b", []byte("x"))
	}
	log := r.net.FormatLog()
	if want := "(+15 per-datagram entries beyond log limit)"; !strings.Contains(log, want) {
		t.Fatalf("log limit footer missing:\n%s", log)
	}
}
