package omcast_test

import (
	"testing"
	"time"

	"omcast"
)

// quickConfig is a fast configuration used across the API tests: a small
// underlay, a few hundred members, short windows.
func quickConfig(seed int64, alg omcast.Algorithm) omcast.Config {
	return omcast.Config{
		Seed:       seed,
		Algorithm:  alg,
		TargetSize: 300,
		Topology:   omcast.SmallTopology(),
		Warmup:     900 * time.Second,
		Measure:    1200 * time.Second,
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[omcast.Algorithm]string{
		omcast.MinimumDepth:            "Minimum-depth",
		omcast.LongestFirst:            "Longest-first",
		omcast.RelaxedBandwidthOrdered: "Relaxed bandwidth-ordered",
		omcast.RelaxedTimeOrdered:      "Relaxed time-ordered",
		omcast.ROST:                    "ROST",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if len(omcast.Algorithms) != 5 {
		t.Fatalf("Algorithms lists %d entries, want 5", len(omcast.Algorithms))
	}
}

func TestRecoveryStrings(t *testing.T) {
	if omcast.CER.String() != "CER" || omcast.SingleSource.String() != "Single-source" {
		t.Fatal("recovery scheme names wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := omcast.Run(omcast.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := quickConfig(1, omcast.Algorithm(99))
	if _, err := omcast.Run(bad); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, alg := range omcast.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res, err := omcast.Run(quickConfig(42, alg))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Algorithm != alg {
				t.Fatalf("result algorithm %v, want %v", res.Algorithm, alg)
			}
			if res.Departures == 0 {
				t.Fatal("no measured departures")
			}
			if res.AvgSize <= 0 || res.AvgServiceDelayMS <= 0 || res.AvgStretch < 1 {
				t.Fatalf("degenerate metrics: %+v", res)
			}
			if alg == omcast.ROST && res.Switches == 0 {
				t.Fatal("ROST performed no switches")
			}
			if alg == omcast.MinimumDepth && res.AvgReconnections != 0 {
				t.Fatal("minimum-depth charged optimizer reconnections")
			}
			if alg == omcast.LongestFirst && res.AvgReconnections != 0 {
				t.Fatal("longest-first charged optimizer reconnections")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := omcast.Run(quickConfig(7, omcast.ROST))
	if err != nil {
		t.Fatal(err)
	}
	b, err := omcast.Run(quickConfig(7, omcast.ROST))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDisruptions != b.AvgDisruptions || a.Switches != b.Switches ||
		a.AvgServiceDelayMS != b.AvgServiceDelayMS {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunWithReferees(t *testing.T) {
	cfg := quickConfig(11, omcast.ROST)
	cfg.EnableReferees = true
	res, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Honest population: referee checks pass and switching proceeds.
	if res.Switches == 0 {
		t.Fatal("referee-verified ROST performed no switches")
	}
	if res.RejectedClaims != 0 {
		t.Fatalf("honest members had %d claims rejected", res.RejectedClaims)
	}
}

func TestRunStreamingCER(t *testing.T) {
	res, err := omcast.RunStreaming(quickConfig(5, omcast.MinimumDepth), omcast.StreamConfig{
		Recovery:  omcast.CER,
		GroupSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamMembers == 0 {
		t.Fatal("no stream members measured")
	}
	if res.Episodes == 0 || res.RepairRequests == 0 {
		t.Fatal("no recovery activity under churn")
	}
	if res.AvgStarvingRatio < 0 || res.AvgStarvingRatio > 1 {
		t.Fatalf("starving ratio %g out of range", res.AvgStarvingRatio)
	}
}

func TestRunStreamingGroupSizeHelps(t *testing.T) {
	ratio := func(k int) float64 {
		res, err := omcast.RunStreaming(quickConfig(9, omcast.MinimumDepth), omcast.StreamConfig{
			Recovery:  omcast.CER,
			GroupSize: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgStarvingRatio
	}
	if r1, r3 := ratio(1), ratio(3); r3 >= r1 {
		t.Fatalf("group size 3 ratio %g not below group size 1 ratio %g", r3, r1)
	}
}

func TestRunStreamingBaselineWorse(t *testing.T) {
	cer, err := omcast.RunStreaming(quickConfig(13, omcast.ROST), omcast.StreamConfig{
		Recovery: omcast.CER, GroupSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := omcast.RunStreaming(quickConfig(13, omcast.MinimumDepth), omcast.StreamConfig{
		Recovery: omcast.SingleSource, GroupSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cer.AvgStarvingRatio >= base.AvgStarvingRatio {
		t.Fatalf("ROST+CER ratio %g not below baseline %g", cer.AvgStarvingRatio, base.AvgStarvingRatio)
	}
}

func TestRunTracked(t *testing.T) {
	series, res, err := omcast.RunTracked(quickConfig(3, omcast.ROST), 2, 1800*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Minutes) < 25 {
		t.Fatalf("only %d tracked samples", len(series.Minutes))
	}
	for i := 1; i < len(series.Disruptions); i++ {
		if series.Disruptions[i] < series.Disruptions[i-1] {
			t.Fatal("cumulative disruptions decreased")
		}
	}
	if res.Departures == 0 {
		t.Fatal("tracked run measured nothing")
	}
}

func TestRunFlashCrowd(t *testing.T) {
	cfg := quickConfig(21, omcast.MinimumDepth)
	cfg.FlashCrowd = &omcast.FlashCrowd{At: 600 * time.Second, Size: 200}
	res, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The burst inflates the steady-state size: baseline ~300 plus a share
	// of the 200 burst members that are still alive during measurement.
	base, err := omcast.Run(quickConfig(21, omcast.MinimumDepth))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSize <= base.AvgSize {
		t.Fatalf("flash crowd did not grow the session: %f vs %f", res.AvgSize, base.AvgSize)
	}
}

func TestRunFlashCrowdValidation(t *testing.T) {
	cfg := quickConfig(21, omcast.MinimumDepth)
	cfg.FlashCrowd = &omcast.FlashCrowd{At: -time.Second, Size: 10}
	if _, err := omcast.Run(cfg); err == nil {
		t.Fatal("negative burst time accepted")
	}
	cfg.FlashCrowd = &omcast.FlashCrowd{At: time.Second, Size: 0}
	if _, err := omcast.Run(cfg); err == nil {
		t.Fatal("empty burst accepted")
	}
}

func TestRunCheatersCaught(t *testing.T) {
	cfg := quickConfig(22, omcast.ROST)
	cfg.Cheaters = 10
	cfg.CheatFactor = 50
	res, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheaterCount == 0 {
		t.Fatal("no cheaters alive at the end of the run")
	}
	if res.RejectedClaims == 0 {
		t.Fatal("referees rejected no claims despite persistent cheaters")
	}
}

func TestRunCheatersClimbWithoutVerification(t *testing.T) {
	protected := quickConfig(23, omcast.ROST)
	protected.Cheaters = 15
	unprotected := protected
	unprotected.DisableClaimVerification = true
	pres, err := omcast.Run(protected)
	if err != nil {
		t.Fatal(err)
	}
	ures, err := omcast.Run(unprotected)
	if err != nil {
		t.Fatal(err)
	}
	if ures.RejectedClaims != 0 {
		t.Fatal("unprotected run rejected claims")
	}
	// Unverified cheaters end up higher relative to the honest population
	// than verified ones do.
	pGap := pres.HonestMeanDepth - pres.CheaterMeanDepth
	uGap := ures.HonestMeanDepth - ures.CheaterMeanDepth
	if uGap <= pGap {
		t.Fatalf("cheaters did not profit from missing verification: protected gap %.2f, unprotected gap %.2f", pGap, uGap)
	}
}

func TestRunCheatersRequireROST(t *testing.T) {
	cfg := quickConfig(24, omcast.MinimumDepth)
	cfg.Cheaters = 5
	if _, err := omcast.Run(cfg); err == nil {
		t.Fatal("cheater injection accepted for a non-switching algorithm")
	}
}

func TestRunContributorPriority(t *testing.T) {
	cfg := quickConfig(25, omcast.ROST)
	cfg.ContributorPriority = true
	res, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 || res.AvgServiceDelayMS <= 0 {
		t.Fatalf("degenerate contributor-priority run: %+v", res)
	}
}

func TestRunDisableAncestorRejoin(t *testing.T) {
	cfg := quickConfig(26, omcast.ROST)
	cfg.DisableAncestorRejoin = true
	res, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("degenerate run without ancestor rejoin")
	}
}

func TestRunSessionAge(t *testing.T) {
	short := quickConfig(27, omcast.ROST)
	short.SessionAge = 30 * time.Minute
	long := quickConfig(27, omcast.ROST)
	long.SessionAge = 8 * time.Hour
	a, err := omcast.Run(short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := omcast.Run(long)
	if err != nil {
		t.Fatal(err)
	}
	// Different notional session ages give different seeded populations.
	if a.AvgSize == b.AvgSize && a.AvgDisruptions == b.AvgDisruptions {
		t.Fatal("session age had no effect on the run")
	}
}

func TestRunStreamingRandomGroupAblation(t *testing.T) {
	res, err := omcast.RunStreaming(quickConfig(28, omcast.MinimumDepth), omcast.StreamConfig{
		Recovery:  omcast.CERRandomGroup,
		GroupSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamMembers == 0 || res.Episodes == 0 {
		t.Fatal("degenerate random-group run")
	}
}

func TestRunStreamingBufferMatters(t *testing.T) {
	small := omcast.StreamConfig{Recovery: omcast.CER, GroupSize: 1, Buffer: 5 * time.Second}
	large := omcast.StreamConfig{Recovery: omcast.CER, GroupSize: 1, Buffer: 30 * time.Second}
	a, err := omcast.RunStreaming(quickConfig(29, omcast.MinimumDepth), small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := omcast.RunStreaming(quickConfig(29, omcast.MinimumDepth), large)
	if err != nil {
		t.Fatal(err)
	}
	if b.AvgStarvingRatio >= a.AvgStarvingRatio {
		t.Fatalf("30s buffer (%.4f) not better than 5s buffer (%.4f)", b.AvgStarvingRatio, a.AvgStarvingRatio)
	}
}

func TestRunStreamingUnknownRecovery(t *testing.T) {
	_, err := omcast.RunStreaming(quickConfig(30, omcast.MinimumDepth), omcast.StreamConfig{
		Recovery: omcast.Recovery(99),
	})
	if err == nil {
		t.Fatal("unknown recovery scheme accepted")
	}
}

func TestRunPerLifetimeMetricsPopulated(t *testing.T) {
	res, err := omcast.Run(quickConfig(31, omcast.MinimumDepth))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLifetimeDisruptions <= 0 {
		t.Fatalf("PerLifetimeDisruptions = %g, want > 0", res.PerLifetimeDisruptions)
	}
	if res.AvgDisruptions <= 0 {
		t.Fatalf("AvgDisruptions = %g, want > 0", res.AvgDisruptions)
	}
}

func TestRunMultiTree(t *testing.T) {
	cfg := quickConfig(33, omcast.MinimumDepth)
	single, err := omcast.RunMultiTree(cfg, omcast.MultiTreeConfig{Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	striped, err := omcast.RunMultiTree(cfg, omcast.MultiTreeConfig{Stripes: 4, Quorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	if single.Members == 0 || striped.Members == 0 {
		t.Fatal("no members measured")
	}
	if len(single.MaxDepths) != 1 || len(striped.MaxDepths) != 4 {
		t.Fatalf("tree counts wrong: %v / %v", single.MaxDepths, striped.MaxDepths)
	}
	if striped.OutageRatio > single.OutageRatio {
		t.Fatalf("MDC striping increased outages: %g > %g", striped.OutageRatio, single.OutageRatio)
	}
	if _, err := omcast.RunMultiTree(cfg, omcast.MultiTreeConfig{Stripes: 0}); err == nil {
		t.Fatal("zero stripes accepted")
	}
}

// TestRunParanoid: a paranoid run routes every invariant check through the
// full scan and schedules periodic audits; a healthy session must still
// complete and produce the usual metrics. (Paranoid runs are only
// comparable to other paranoid runs — the audit events can shift same-time
// tie-breaks — so this test makes no cross-mode output comparison.)
func TestRunParanoid(t *testing.T) {
	cfg := quickConfig(3, omcast.ROST)
	cfg.Paranoid = true
	res, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSize <= 0 || res.Departures == 0 {
		t.Fatalf("paranoid run produced no measurement: %+v", res)
	}
	// Paranoid mode is itself deterministic in the seed.
	again, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDisruptions != again.AvgDisruptions || res.AvgSize != again.AvgSize {
		t.Fatalf("paranoid runs diverged: %+v vs %+v", res, again)
	}
}

// TestRunScale: the scale harness must report the machine observables and
// keep the simulation-derived fields identical to a plain Run of the same
// configuration.
func TestRunScale(t *testing.T) {
	cfg := quickConfig(6, omcast.ROST)
	sres, err := omcast.RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Events == 0 || sres.WallNs <= 0 || sres.NsPerEvent <= 0 {
		t.Fatalf("scale observables missing: %+v", sres)
	}
	if sres.HeapBytes == 0 || sres.BytesPerMember <= 0 {
		t.Fatalf("memory observables missing: %+v", sres)
	}
	plain, err := omcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sres.AvgDisruptions != plain.AvgDisruptions || sres.AvgSize != plain.AvgSize {
		t.Fatalf("scale run diverged from plain run: %+v vs %+v", sres.TreeResult, plain)
	}
}
