package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// taintedFixture is a minimal sim-scoped package with one no-wallclock
// finding, reused by the output-format tests.
const taintedFixture = `package eventsim

import "time"

func bad() time.Time { return time.Now() }
`

func runOne(t *testing.T, src string) ([]Diagnostic, Result) {
	t.Helper()
	pkg := writeFixture(t, "eventsim", src)
	res := RunAnalysis([]*Package{pkg}, DefaultConfig())
	return res.Diags, res
}

func TestWriteJSON(t *testing.T) {
	diags, _ := runOne(t, taintedFixture)
	if len(diags) != 1 {
		t.Fatalf("fixture produced %d diagnostics, want 1", len(diags))
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags, ""); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0].Rule != "no-wallclock" || out[0].Line != 5 {
		t.Fatalf("unexpected JSON findings: %+v", out)
	}
}

func TestWriteSARIF(t *testing.T) {
	diags, _ := runOne(t, taintedFixture)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, ""); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shell: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "omcast-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every rule (including the reserved directive rules) must be advertised
	// even though only one fired.
	wantRules := len(Rules()) + 2
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Errorf("driver advertises %d rules, want %d", len(run.Tool.Driver.Rules), wantRules)
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "no-wallclock" {
		t.Fatalf("unexpected results: %+v", run.Results)
	}
	if got := run.Results[0].Locations[0].PhysicalLocation.Region.StartLine; got != 5 {
		t.Errorf("startLine = %d, want 5", got)
	}
}

// TestSARIFEmptyRun: a clean tree must still produce a valid log with an
// empty (not null) results array — CI uploads the artifact unconditionally.
func TestSARIFEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, `"results": null`) || strings.Contains(s, `"rules": null`) {
		t.Fatalf("empty run serialises null arrays:\n%s", s)
	}
}

func TestStatsMap(t *testing.T) {
	_, res := runOne(t, taintedFixture)
	m := StatsMap(res)
	if m["lint/findings/no-wallclock"] != 1 {
		t.Errorf("lint/findings/no-wallclock = %v, want 1", m["lint/findings/no-wallclock"])
	}
	if _, ok := m["lint/wall_ms"]; !ok {
		t.Error("missing lint/wall_ms")
	}
	if _, ok := m["lint/suppressed/wire-taint"]; !ok {
		t.Error("missing per-rule suppressed keys")
	}
}

func TestWriteStats(t *testing.T) {
	_, res := runOne(t, taintedFixture)
	var buf bytes.Buffer
	WriteStats(&buf, res)
	s := buf.String()
	if !strings.Contains(s, "no-wallclock") || !strings.Contains(s, "total") {
		t.Fatalf("stats table missing rows:\n%s", s)
	}
}

// TestEnabledRules: -enable style filtering runs only the named rules.
func TestEnabledRules(t *testing.T) {
	pkg := writeFixture(t, "eventsim", taintedFixture)
	cfg := DefaultConfig()
	cfg.Enabled = []string{"map-order"}
	if res := RunAnalysis([]*Package{pkg}, cfg); len(res.Diags) != 0 {
		t.Fatalf("enable filter leaked findings: %v", res.Diags)
	}
	cfg.Enabled = []string{"no-wallclock"}
	if res := RunAnalysis([]*Package{pkg}, cfg); len(res.Diags) != 1 {
		t.Fatalf("enabled rule did not fire: %v", res.Diags)
	}
}

// TestStaleAuditSkippedWhenFiltered: a directive for a disabled rule must not
// be reported stale — the audit only runs over the full rule set.
func TestStaleAuditSkippedWhenFiltered(t *testing.T) {
	src := `package eventsim

import "time"

func bad() time.Time {
	//lint:ignore no-wallclock reason: fixture: justified
	return time.Now()
}
`
	pkg := writeFixture(t, "eventsim", src)
	cfg := DefaultConfig()
	cfg.Enabled = []string{"map-order"}
	if res := RunAnalysis([]*Package{pkg}, cfg); len(res.Diags) != 0 {
		t.Fatalf("filtered run reported stale suppressions: %v", res.Diags)
	}
	// Unfiltered, the directive is used and still nothing is stale.
	if res := RunAnalysis([]*Package{pkg}, DefaultConfig()); len(res.Diags) != 0 {
		t.Fatalf("used directive reported: %v", res.Diags)
	}
}

// TestStaleAuditFires: a directive suppressing nothing is flagged on a full
// run.
func TestStaleAuditFires(t *testing.T) {
	src := `package eventsim

func fine() int {
	//lint:ignore no-wallclock reason: fixture: nothing here needs this
	return 1
}
`
	pkg := writeFixture(t, "eventsim", src)
	res := RunAnalysis([]*Package{pkg}, DefaultConfig())
	if len(res.Diags) != 1 || res.Diags[0].Rule != RuleStaleSuppression {
		t.Fatalf("want one stale-suppression finding, got %v", res.Diags)
	}
}

// TestUnknownRuleDirective: naming a rule the analyzer does not know is a
// bad-directive finding.
func TestUnknownRuleDirective(t *testing.T) {
	src := `package eventsim

func fine() int {
	//lint:ignore no-such-rule reason: fixture: typo in the rule name
	return 1
}
`
	pkg := writeFixture(t, "eventsim", src)
	res := RunAnalysis([]*Package{pkg}, DefaultConfig())
	if len(res.Diags) != 1 || res.Diags[0].Rule != RuleBadDirective {
		t.Fatalf("want one bad-directive finding, got %v", res.Diags)
	}
	if !strings.Contains(res.Diags[0].Message, "unknown rule") {
		t.Fatalf("message does not mention the unknown rule: %s", res.Diags[0].Message)
	}
}
