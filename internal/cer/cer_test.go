package cer

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func delayFn(a, b topology.NodeID) time.Duration {
	if a == b {
		return 0
	}
	d := int64(a - b)
	if d < 0 {
		d = -d
	}
	return time.Duration(d) * time.Millisecond
}

// buildTree makes a root with `branches` children, each heading a chain of
// `depth` members; returns the tree and the members by [branch][level].
func buildTree(t *testing.T, branches, depth int) (*overlay.Tree, [][]*overlay.Member) {
	t.Helper()
	tree, err := overlay.NewTree(0, 100, delayFn)
	if err != nil {
		t.Fatal(err)
	}
	all := make([][]*overlay.Member, branches)
	attach := topology.NodeID(1)
	for b := 0; b < branches; b++ {
		parent := tree.Root()
		for d := 0; d < depth; d++ {
			m := tree.NewMember(attach, 4, time.Duration(b*depth+d)*time.Second)
			attach++
			if err := tree.Attach(m, parent); err != nil {
				t.Fatalf("attach: %v", err)
			}
			all[b] = append(all[b], m)
			parent = m
		}
	}
	return tree, all
}

func TestLossCorrelation(t *testing.T) {
	tree, all := buildTree(t, 3, 4)
	// Same chain: shared edges = depth of the LCA (the shallower node).
	if got := LossCorrelation(all[0][3], all[0][1]); got != 2 {
		t.Fatalf("same-chain correlation = %d, want 2", got)
	}
	// Different chains: LCA is the root, zero shared edges.
	if got := LossCorrelation(all[0][3], all[1][3]); got != 0 {
		t.Fatalf("cross-chain correlation = %d, want 0", got)
	}
	// Parent-child: LCA is the parent.
	if got := LossCorrelation(all[2][0], all[2][1]); got != 1 {
		t.Fatalf("parent-child correlation = %d, want 1", got)
	}
	_ = tree
}

func TestGroupLossCorrelation(t *testing.T) {
	_, all := buildTree(t, 2, 3)
	sameChain := []*overlay.Member{all[0][0], all[0][1], all[0][2]}
	crossChain := []*overlay.Member{all[0][2], all[1][2]}
	if got := GroupLossCorrelation(crossChain); got != 0 {
		t.Fatalf("cross-chain group correlation = %d, want 0", got)
	}
	if got := GroupLossCorrelation(sameChain); got == 0 {
		t.Fatal("same-chain group correlation should be positive")
	}
}

func TestMLCSelectSpansSubtrees(t *testing.T) {
	tree, all := buildTree(t, 6, 5)
	self := all[0][4] // deep member of branch 0
	sel := &MLCSelector{Tree: tree, Rng: xrand.New(1), Delay: delayFn}
	group := sel.Select(self, 3)
	if len(group) != 3 {
		t.Fatalf("group size %d, want 3", len(group))
	}
	// All chosen from different root subtrees and none from self's own
	// branch (its ancestors are banned and its descendants do not exist).
	branchOf := func(m *overlay.Member) int {
		for b := range all {
			for _, x := range all[b] {
				if x == m {
					return b
				}
			}
		}
		return -1
	}
	seen := map[int]bool{}
	for _, g := range group {
		b := branchOf(g)
		if b == 0 {
			t.Fatalf("member %d of self's own chain chosen", g.ID)
		}
		if seen[b] {
			t.Fatalf("two recovery nodes share branch %d (loss-correlated)", b)
		}
		seen[b] = true
	}
	if got := GroupLossCorrelation(group); got != 0 {
		t.Fatalf("MLC group correlation = %d, want 0 on disjoint chains", got)
	}
}

func TestBannedExcludedFromGroups(t *testing.T) {
	// The quarantine analogue: banned members never appear in a recovery
	// group, whichever selector builds it, even when the exclusion leaves
	// barely enough candidates.
	tree, all := buildTree(t, 4, 3)
	self := all[0][2]
	banned := map[overlay.MemberID]bool{}
	for _, b := range []int{1, 2} {
		for _, m := range all[b] {
			banned[m.ID] = true
		}
	}
	selectors := []Selector{
		&MLCSelector{Tree: tree, Rng: xrand.New(7), Delay: delayFn, Banned: banned},
		&RandomSelector{Tree: tree, Rng: xrand.New(7), Delay: delayFn, Banned: banned},
	}
	for _, sel := range selectors {
		group := sel.Select(self, 3)
		if len(group) == 0 {
			t.Fatalf("%T: empty group despite branch 3 being clean", sel)
		}
		for _, g := range group {
			if banned[g.ID] {
				t.Fatalf("%T: banned member %d chosen as recovery node", sel, g.ID)
			}
		}
	}
}

func TestMLCBeatsRandomOnCorrelation(t *testing.T) {
	// A skewed tree: most members concentrated in one heavy subtree, so a
	// random pick lands several nodes in the same subtree while MLC spreads.
	tree, err := overlay.NewTree(0, 100, delayFn)
	if err != nil {
		t.Fatal(err)
	}
	heavy := tree.NewMember(1, 50, 0)
	if err := tree.Attach(heavy, tree.Root()); err != nil {
		t.Fatal(err)
	}
	var members []*overlay.Member
	attach := topology.NodeID(2)
	// 40 members under `heavy`, chains of 4.
	for c := 0; c < 10; c++ {
		parent := heavy
		for d := 0; d < 4; d++ {
			m := tree.NewMember(attach, 3, 0)
			attach++
			if err := tree.Attach(m, parent); err != nil {
				t.Fatal(err)
			}
			members = append(members, m)
			parent = m
		}
	}
	// A handful of members in their own subtrees.
	for c := 0; c < 5; c++ {
		m := tree.NewMember(attach, 3, 0)
		attach++
		if err := tree.Attach(m, tree.Root()); err != nil {
			t.Fatal(err)
		}
		members = append(members, m)
	}
	self := members[len(members)-1]
	mlcTotal, rndTotal := 0, 0
	for trial := 0; trial < 30; trial++ {
		mlc := (&MLCSelector{Tree: tree, Rng: xrand.New(int64(trial)), Delay: delayFn}).Select(self, 4)
		rnd := (&RandomSelector{Tree: tree, Rng: xrand.New(int64(trial)), Delay: delayFn}).Select(self, 4)
		mlcTotal += GroupLossCorrelation(mlc)
		rndTotal += GroupLossCorrelation(rnd)
	}
	if mlcTotal >= rndTotal {
		t.Fatalf("MLC total correlation %d not below random %d", mlcTotal, rndTotal)
	}
}

func TestSelectExclusions(t *testing.T) {
	tree, all := buildTree(t, 4, 4)
	self := all[1][1]
	banned := map[overlay.MemberID]bool{self.ID: true}
	for p := self.Parent(); p != nil; p = p.Parent() {
		banned[p.ID] = true
	}
	for _, sel := range []Selector{
		&MLCSelector{Tree: tree, Rng: xrand.New(3), Delay: delayFn},
		&RandomSelector{Tree: tree, Rng: xrand.New(3), Delay: delayFn},
	} {
		for trial := 0; trial < 20; trial++ {
			for _, g := range sel.Select(self, 3) {
				if banned[g.ID] {
					t.Fatalf("selector returned self or an ancestor (%d)", g.ID)
				}
				if g == all[1][2] || g == all[1][3] {
					t.Fatalf("selector returned a descendant of self (%d)", g.ID)
				}
			}
		}
	}
}

func TestSelectOrderedByDistance(t *testing.T) {
	tree, all := buildTree(t, 5, 2)
	self := all[0][1]
	sel := &MLCSelector{Tree: tree, Rng: xrand.New(4), Delay: delayFn}
	group := sel.Select(self, 4)
	for i := 1; i < len(group); i++ {
		if delayFn(self.Attach, group[i-1].Attach) > delayFn(self.Attach, group[i].Attach) {
			t.Fatal("group not ordered by network distance")
		}
	}
}

func TestSelectDegenerate(t *testing.T) {
	tree, err := overlay.NewTree(0, 100, delayFn)
	if err != nil {
		t.Fatal(err)
	}
	lone := tree.NewMember(1, 2, 0)
	if err := tree.Attach(lone, tree.Root()); err != nil {
		t.Fatal(err)
	}
	sel := &MLCSelector{Tree: tree, Rng: xrand.New(5), Delay: delayFn}
	if g := sel.Select(lone, 3); len(g) != 0 {
		t.Fatalf("group from memberless overlay = %v, want empty", g)
	}
	if g := sel.Select(lone, 0); g != nil {
		t.Fatal("k=0 should return nil")
	}
	rnd := &RandomSelector{Tree: tree, Rng: xrand.New(5)}
	if g := rnd.Select(lone, 0); g != nil {
		t.Fatal("random k=0 should return nil")
	}
}

// ----- PlanRecovery -----

func testEpisode(striped bool) Episode {
	rate := 10.0
	return Episode{
		FirstMissing: 1000,
		LastMissing:  1149, // 150 packets = 15 s at 10 pkt/s
		RequestAt:    105 * time.Second,
		ResumeAt:     115 * time.Second,
		Rate:         rate,
		Gen: func(n int64) time.Duration {
			return time.Duration(float64(n) / rate * float64(time.Second))
		},
		Striped: striped,
	}
}

func mkServer(eps float64, chain, transfer time.Duration) Server {
	return Server{Epsilon: eps, ChainDelay: chain, Transfer: transfer}
}

func TestPlanNoServers(t *testing.T) {
	plan := PlanRecovery(testEpisode(true), nil)
	if len(plan) != 0 {
		t.Fatalf("plan with no servers has %d entries", len(plan))
	}
}

func TestPlanFullCoverage(t *testing.T) {
	// Two servers covering the full rate: every packet is repaired in the
	// striped phase.
	plan := PlanRecovery(testEpisode(true), []Server{
		mkServer(0.6, 10*time.Millisecond, 10*time.Millisecond),
		mkServer(0.5, 20*time.Millisecond, 12*time.Millisecond),
	})
	ep := testEpisode(true)
	if len(plan) != 150 {
		t.Fatalf("full-coverage plan has %d entries, want 150", len(plan))
	}
	for n := ep.FirstMissing; n <= ep.LastMissing; n++ {
		at, ok := plan[n]
		if !ok {
			t.Fatalf("packet %d missing from full-coverage plan", n)
		}
		// Live packets cannot arrive before generation; none before the
		// request either.
		if at < ep.RequestAt && at < ep.Gen(n) {
			t.Fatalf("packet %d arrives at %v, before request and generation", n, at)
		}
	}
}

func TestPlanStripedPartialCoverage(t *testing.T) {
	// epsilon 0.4: packets with (n mod 100) in [0,40) repaired promptly; the
	// rest queue behind the resume point.
	plan := PlanRecovery(testEpisode(true), []Server{
		mkServer(0.4, 10*time.Millisecond, 10*time.Millisecond),
	})
	ep := testEpisode(true)
	prompt, backlog := 0, 0
	for n := ep.FirstMissing; n <= ep.LastMissing; n++ {
		at, ok := plan[n]
		if !ok {
			t.Fatalf("packet %d absent; the backlog phase should cover it", n)
		}
		if at < ep.ResumeAt {
			prompt++
			if float64(n%100)/100 >= 0.4 {
				t.Fatalf("uncovered packet %d repaired before resume", n)
			}
		} else {
			backlog++
		}
	}
	// Sequences 1000-1149 hit residues 0-49 twice and 50-99 once, so the
	// [0,40) slice covers 40 + 40 = 80 packets.
	if prompt != 80 {
		t.Fatalf("prompt repairs = %d, want 80", prompt)
	}
	if backlog != 70 {
		t.Fatalf("backlog repairs = %d, want 70", backlog)
	}
}

func TestPlanBacklogPacing(t *testing.T) {
	// The backlog drains at the aggregate residual rate: with epsilon 0.5
	// (5 pkt/s) the k-th backlog packet arrives ~ (k+1)/5 s after resume.
	plan := PlanRecovery(testEpisode(true), []Server{
		mkServer(0.5, 0, 0),
	})
	ep := testEpisode(true)
	var backlog []int64
	for n := ep.FirstMissing; n <= ep.LastMissing; n++ {
		if float64(n%100)/100 >= 0.5 {
			backlog = append(backlog, n)
		}
	}
	for k, n := range backlog {
		want := ep.ResumeAt + time.Duration(float64(k+1)/5.0*float64(time.Second))
		if got := plan[n]; got != want {
			t.Fatalf("backlog packet %d arrives %v, want %v", n, got, want)
		}
	}
}

func TestPlanSingleSourceBaseline(t *testing.T) {
	// Three servers but no striping: only the first non-empty server's
	// bandwidth counts.
	striped := PlanRecovery(testEpisode(true), []Server{
		mkServer(0.3, 0, 0), mkServer(0.3, 0, 0), mkServer(0.3, 0, 0),
	})
	single := PlanRecovery(testEpisode(false), []Server{
		mkServer(0.3, 0, 0), mkServer(0.3, 0, 0), mkServer(0.3, 0, 0),
	})
	ep := testEpisode(true)
	stripedPrompt, singlePrompt := 0, 0
	for n := ep.FirstMissing; n <= ep.LastMissing; n++ {
		if at, ok := striped[n]; ok && at < ep.ResumeAt {
			stripedPrompt++
		}
		if at, ok := single[n]; ok && at < ep.ResumeAt {
			singlePrompt++
		}
	}
	if stripedPrompt <= singlePrompt {
		t.Fatalf("striped prompt repairs %d not above single-source %d", stripedPrompt, singlePrompt)
	}
	// Single-source skips zero-bandwidth heads of the list.
	skip := PlanRecovery(testEpisode(false), []Server{
		mkServer(0, 0, 0), mkServer(0.5, 0, 0),
	})
	if len(skip) == 0 {
		t.Fatal("single-source did not walk past an empty server")
	}
	// All-zero group: nothing repaired.
	if p := PlanRecovery(testEpisode(false), []Server{mkServer(0, 0, 0)}); len(p) != 0 {
		t.Fatal("zero-bandwidth group repaired packets")
	}
}

func TestPlanChainDelayPropagates(t *testing.T) {
	chain := 200 * time.Millisecond
	transfer := 100 * time.Millisecond
	plan := PlanRecovery(testEpisode(true), []Server{mkServer(1.0, chain, transfer)})
	ep := testEpisode(true)
	// A packet generated before the request arrives at request+chain+transfer.
	n := ep.FirstMissing
	want := ep.RequestAt + chain + transfer
	if got := plan[n]; got != want {
		t.Fatalf("old packet arrival %v, want %v", got, want)
	}
	// A packet generated after the request is forwarded live.
	late := ep.LastMissing
	wantLate := ep.Gen(late) + transfer
	if got := plan[late]; got != wantLate {
		t.Fatalf("live packet arrival %v, want %v", got, wantLate)
	}
}

// TestPlanRecoveryProperties fuzzes episodes and server sets via
// testing/quick and checks the plan's invariants:
//   - every planned arrival is at or after both the request instant and the
//     packet's generation time;
//   - with positive aggregate bandwidth every missing packet gets a plan
//     entry (prompt or backlog);
//   - backlog arrivals are strictly increasing in sequence order.
func TestPlanRecoveryProperties(t *testing.T) {
	f := func(firstRaw uint16, spanRaw uint8, eps1, eps2, eps3 float64, striped bool) bool {
		rate := 10.0
		first := int64(firstRaw)
		last := first + int64(spanRaw%200)
		gen := func(n int64) time.Duration {
			return time.Duration(float64(n) / rate * float64(time.Second))
		}
		ep := Episode{
			FirstMissing: first,
			LastMissing:  last,
			RequestAt:    gen(first) + 5*time.Second,
			ResumeAt:     gen(first) + 15*time.Second,
			Rate:         rate,
			Gen:          gen,
			Striped:      striped,
		}
		clamp := func(x float64) float64 { return math.Mod(math.Abs(x), 0.9) }
		servers := []Server{
			mkServer(clamp(eps1), 10*time.Millisecond, 5*time.Millisecond),
			mkServer(clamp(eps2), 20*time.Millisecond, 10*time.Millisecond),
			mkServer(clamp(eps3), 30*time.Millisecond, 15*time.Millisecond),
		}
		aggregate := 0.0
		for _, s := range servers {
			aggregate += s.Epsilon
		}
		// Mirror the plan's coverage rule so backlog packets are identified
		// exactly (late live-forwarded packets also arrive after ResumeAt).
		covered := 0.0
		if striped {
			covered = math.Min(1, aggregate)
		} else {
			for _, s := range servers {
				if s.Epsilon > 0 {
					covered = s.Epsilon
					break
				}
			}
		}
		plan := PlanRecovery(ep, servers)
		var prevBacklog time.Duration
		for n := first; n <= last; n++ {
			at, ok := plan[n]
			if !ok {
				// Only legal when no usable bandwidth exists at all.
				if aggregate > 0 {
					return false
				}
				continue
			}
			if at < ep.RequestAt && at < gen(n) {
				return false
			}
			if float64(n%100)/100 >= covered { // backlog: post-resume, increasing
				if at < ep.ResumeAt {
					return false
				}
				if prevBacklog != 0 && at <= prevBacklog {
					return false
				}
				prevBacklog = at
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
