package live

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"omcast/internal/metrics"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("omcast_node_ops_total", "")
	g := reg.Gauge("omcast_node_depth", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				c.Add(1)
				g.Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per*2 {
		t.Fatalf("counter = %v, want %v", got, workers*per*2)
	}
	if got := g.Value(); got != per-1 {
		t.Fatalf("gauge = %v, want %v", got, per-1)
	}
}

func TestHistogramShardMerge(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("omcast_node_lat_seconds", "", []float64{1, 10})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5) // bucket 0
				h.Observe(5)   // bucket 1
				h.Observe(50)  // overflow
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	hv := snap.Metrics[0].Hist
	if hv == nil {
		t.Fatal("histogram export missing")
	}
	const n = workers * per
	if hv.Counts[0] != n || hv.Counts[1] != n || hv.Counts[2] != n {
		t.Fatalf("shard merge lost observations: %v, want [%d %d %d]", hv.Counts, n, n, n)
	}
	if hv.Count != 3*n {
		t.Fatalf("count = %d, want %d", hv.Count, 3*n)
	}
	if want := float64(n) * (0.5 + 5 + 50); hv.Sum != want {
		t.Fatalf("sum = %v, want %v", hv.Sum, want)
	}
}

func TestRegistryDedupAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("omcast_node_x_total", "", metrics.Label{Key: "peer", Value: "parent"})
	b := reg.Counter("omcast_node_x_total", "", metrics.Label{Key: "peer", Value: "parent"})
	if a != b {
		t.Fatal("re-registration must return the existing counter")
	}
	a.Add(7)
	snap := reg.Snapshot()
	if snap.T < 0 {
		t.Fatalf("snapshot T (uptime) negative: %v", snap.T)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 7 {
		t.Fatalf("snapshot = %+v", snap.Metrics)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	reg.Gauge("omcast_node_x_total", "", metrics.Label{Key: "peer", Value: "parent"})
}

// TestSnapshotWhileWriting exercises Snapshot concurrently with writers so
// `go test -race` can catch unsynchronised access.
func TestSnapshotWhileWriting(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("omcast_node_busy_total", "")
	h := reg.Histogram("omcast_node_busy_seconds", "", metrics.LatencyBuckets())
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Inc()
					h.Observe(0.01)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		reg.Snapshot()
	}
	close(done)
	wg.Wait()
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("omcast_node_packets_received_total", "packets accepted").Add(3)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE omcast_node_packets_received_total counter",
		"omcast_node_packets_received_total 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
