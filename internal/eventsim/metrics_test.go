package eventsim

import (
	"testing"
	"time"

	"omcast/internal/metrics"
)

// findMetric returns the snapshot entry with the given name, or nil.
func findMetric(snap metrics.Snapshot, name string) *metrics.Metric {
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == name {
			return &snap.Metrics[i]
		}
	}
	return nil
}

func TestInstrumentCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	sim := New()
	sim.Instrument(reg)

	fired := 0
	handler := func(s *Simulator) { fired++ }
	sim.Schedule(1*time.Second, handler)
	sim.Schedule(2*time.Second, handler)
	victim := sim.Schedule(3*time.Second, handler)
	if !sim.Cancel(victim) {
		t.Fatal("cancel failed")
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}

	snap := reg.Snapshot(sim.Now().Seconds())
	want := map[string]float64{
		"omcast_sim_events_scheduled_total": 3,
		"omcast_sim_events_fired_total":     2,
		"omcast_sim_events_canceled_total":  1,
		"omcast_sim_queue_depth":            0,
		"omcast_sim_queue_depth_high_water": 3,
	}
	for name, w := range want {
		m := findMetric(snap, name)
		if m == nil {
			t.Fatalf("metric %s not in snapshot", name)
		}
		if m.Value != w {
			t.Errorf("%s = %v, want %v", name, m.Value, w)
		}
	}
	res := findMetric(snap, "omcast_sim_event_residence_seconds")
	if res == nil || res.Hist == nil {
		t.Fatal("residence histogram missing")
	}
	if res.Hist.Count != 2 {
		t.Fatalf("residence count = %d, want 2 (one per fired event)", res.Hist.Count)
	}
	// Residence is virtual (fire − schedule): 1s + 2s.
	if res.Hist.Sum != 3 {
		t.Fatalf("residence sum = %v, want 3", res.Hist.Sum)
	}
}

// TestUninstrumentedKernelUnchanged guards the nil-sink contract: a kernel
// without Instrument must behave identically and never panic on the metric
// paths.
func TestUninstrumentedKernelUnchanged(t *testing.T) {
	sim := New()
	fired := 0
	id := sim.Schedule(time.Second, func(s *Simulator) { fired++ })
	sim.Cancel(id)
	sim.Schedule(2*time.Second, func(s *Simulator) { fired++ })
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}
