package overlay

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// constDelay is a trivial underlay: 1 ms between any two distinct routers.
func constDelay(a, b topology.NodeID) time.Duration {
	if a == b {
		return 0
	}
	return time.Millisecond
}

func newTestTree(t *testing.T) *Tree {
	t.Helper()
	tree, err := NewTree(0, 100, constDelay)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tree
}

// mustJoin creates a member and attaches it under parent.
func mustJoin(t *testing.T, tree *Tree, parent *Member, attach topology.NodeID, bw float64, now time.Duration) *Member {
	t.Helper()
	m := tree.NewMember(attach, bw, now)
	if err := tree.Attach(m, parent); err != nil {
		t.Fatalf("Attach member %d under %d: %v", m.ID, parent.ID, err)
	}
	return m
}

func checkInv(t *testing.T, tree *Tree) {
	t.Helper()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestNewTree(t *testing.T) {
	tree := newTestTree(t)
	root := tree.Root()
	if root == nil || root.Depth() != 0 || !root.Attached() {
		t.Fatal("root malformed")
	}
	if root.OutDegree() != 100 {
		t.Fatalf("root degree = %d, want 100", root.OutDegree())
	}
	if tree.Size() != 1 {
		t.Fatalf("Size = %d, want 1", tree.Size())
	}
	checkInv(t, tree)
}

func TestNewTreeErrors(t *testing.T) {
	if _, err := NewTree(0, 100, nil); err == nil {
		t.Fatal("nil delayFn accepted")
	}
	if _, err := NewTree(0, 0.5, constDelay); err == nil {
		t.Fatal("free-rider root accepted")
	}
}

func TestAttachBasics(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 3, time.Second)
	if a.Depth() != 1 || b.Depth() != 2 {
		t.Fatalf("depths = %d,%d want 1,2", a.Depth(), b.Depth())
	}
	if b.Parent() != a || a.Parent() != tree.Root() {
		t.Fatal("parent links wrong")
	}
	if got := b.PathDelay(); got != 2*time.Millisecond {
		t.Fatalf("path delay = %v, want 2ms", got)
	}
	if len(tree.Root().Children()) != 1 {
		t.Fatal("root children wrong")
	}
	checkInv(t, tree)
}

func TestOutDegreeFromBandwidth(t *testing.T) {
	cases := []struct {
		bw   float64
		want int
	}{
		{0.5, 0}, {0.99, 0}, {1, 1}, {2.7, 2}, {100, 100}, {-1, 0},
	}
	for _, c := range cases {
		m := &Member{Bandwidth: c.bw}
		if got := m.OutDegree(); got != c.want {
			t.Errorf("OutDegree(bw=%g) = %d, want %d", c.bw, got, c.want)
		}
	}
}

func TestAttachRespectsDegree(t *testing.T) {
	tree := newTestTree(t)
	p := mustJoin(t, tree, tree.Root(), 1, 2, 0) // degree 2
	mustJoin(t, tree, p, 2, 0.5, 0)
	mustJoin(t, tree, p, 3, 0.5, 0)
	extra := tree.NewMember(4, 0.5, 0)
	if err := tree.Attach(extra, p); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull attach error = %v, want ErrFull", err)
	}
	checkInv(t, tree)
}

func TestFreeRiderCannotParent(t *testing.T) {
	tree := newTestTree(t)
	fr := mustJoin(t, tree, tree.Root(), 1, 0.7, 0)
	kid := tree.NewMember(2, 1, 0)
	if err := tree.Attach(kid, fr); !errors.Is(err, ErrFull) {
		t.Fatalf("attach under free-rider = %v, want ErrFull", err)
	}
}

func TestAttachErrors(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	if err := tree.Attach(a, tree.Root()); !errors.Is(err, ErrHasParent) {
		t.Fatalf("double attach = %v, want ErrHasParent", err)
	}
	if err := tree.Attach(nil, a); !errors.Is(err, ErrNotMember) {
		t.Fatalf("nil attach = %v, want ErrNotMember", err)
	}
	m := tree.NewMember(2, 1, 0)
	if err := tree.Attach(m, m); !errors.Is(err, ErrSelfAttach) {
		t.Fatalf("self attach = %v, want ErrSelfAttach", err)
	}
	// Attaching under a detached parent must fail.
	b := mustJoin(t, tree, a, 3, 2, 0)
	if err := tree.Detach(b); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if err := tree.Attach(m, b); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("attach under detached = %v, want ErrNotAttached", err)
	}
}

func TestDetachKeepsSubtree(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 3, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	c := mustJoin(t, tree, b, 3, 1, 0)
	if err := tree.Detach(b); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if b.Attached() || c.Attached() {
		t.Fatal("detached subtree still marked attached")
	}
	if b.Parent() != nil {
		t.Fatal("detached member keeps parent")
	}
	if c.Parent() != b {
		t.Fatal("detach broke internal subtree links")
	}
	checkInv(t, tree)
	// Re-attach elsewhere: subtree placed with fresh depths.
	if err := tree.Attach(b, tree.Root()); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if b.Depth() != 1 || c.Depth() != 2 || !c.Attached() {
		t.Fatal("re-attach did not recompute subtree placement")
	}
	checkInv(t, tree)
}

func TestRemoveReturnsOrphans(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 3, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	c := mustJoin(t, tree, a, 3, 2, 0)
	d := mustJoin(t, tree, b, 4, 1, 0)
	orphans, err := tree.Remove(a)
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if len(orphans) != 2 {
		t.Fatalf("orphans = %d, want 2", len(orphans))
	}
	for _, o := range orphans {
		if o != b && o != c {
			t.Fatalf("unexpected orphan %d", o.ID)
		}
		if o.Attached() || o.Parent() != nil {
			t.Fatal("orphan still attached")
		}
	}
	if d.Parent() != b {
		t.Fatal("orphan lost its own subtree")
	}
	if tree.Member(a.ID) != nil {
		t.Fatal("removed member still live")
	}
	if tree.Size() != 4 { // root, b, c, d
		t.Fatalf("Size = %d, want 4", tree.Size())
	}
	checkInv(t, tree)
}

func TestRemoveRootRefused(t *testing.T) {
	tree := newTestTree(t)
	if _, err := tree.Remove(tree.Root()); !errors.Is(err, ErrRootLeave) {
		t.Fatalf("Remove(root) = %v, want ErrRootLeave", err)
	}
	if err := tree.Detach(tree.Root()); !errors.Is(err, ErrRootLeave) {
		t.Fatalf("Detach(root) = %v, want ErrRootLeave", err)
	}
}

func TestRemoveDetachedMember(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 1, 0)
	if err := tree.Detach(b); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if _, err := tree.Remove(b); err != nil {
		t.Fatalf("Remove of detached member: %v", err)
	}
	if tree.Member(b.ID) != nil {
		t.Fatal("member still live after removal")
	}
	checkInv(t, tree)
}

func TestMoveSubtree(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, tree.Root(), 2, 2, 0)
	c := mustJoin(t, tree, a, 3, 1, 0)
	d := mustJoin(t, tree, c, 4, 1, 0)
	if err := tree.MoveSubtree(c, b); err != nil {
		t.Fatalf("MoveSubtree: %v", err)
	}
	if c.Parent() != b || c.Depth() != 2 || d.Depth() != 3 {
		t.Fatal("move did not update placement")
	}
	if len(a.Children()) != 0 {
		t.Fatal("old parent keeps moved child")
	}
	checkInv(t, tree)
}

func TestMoveSubtreeCycleRefused(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	c := mustJoin(t, tree, b, 3, 2, 0)
	if err := tree.MoveSubtree(a, c); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle move = %v, want ErrCycle", err)
	}
	if err := tree.MoveSubtree(a, a); !errors.Is(err, ErrSelfAttach) {
		t.Fatalf("self move = %v, want ErrSelfAttach", err)
	}
	checkInv(t, tree)
}

func TestMoveSubtreeToFullParentRefused(t *testing.T) {
	tree := newTestTree(t)
	p := mustJoin(t, tree, tree.Root(), 1, 1, 0)
	mustJoin(t, tree, p, 2, 1, 0)
	x := mustJoin(t, tree, tree.Root(), 3, 1, 0)
	if err := tree.MoveSubtree(x, p); !errors.Is(err, ErrFull) {
		t.Fatalf("move to full parent = %v, want ErrFull", err)
	}
	// x must still be attached where it was.
	if !x.Attached() || x.Parent() != tree.Root() {
		t.Fatal("failed move corrupted source subtree")
	}
	checkInv(t, tree)
}

func TestVisitSubtreeAndSize(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 3, 0)
	mustJoin(t, tree, a, 2, 0.5, 0)
	b := mustJoin(t, tree, a, 3, 2, 0)
	mustJoin(t, tree, b, 4, 0.5, 0)
	if got := tree.SubtreeSize(a); got != 4 {
		t.Fatalf("SubtreeSize = %d, want 4", got)
	}
	if got := tree.SubtreeSize(tree.Root()); got != 5 {
		t.Fatalf("root SubtreeSize = %d, want 5", got)
	}
}

func TestAncestors(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	c := mustJoin(t, tree, b, 3, 1, 0)
	anc := tree.Ancestors(c)
	if len(anc) != 3 || anc[0] != b || anc[1] != a || anc[2] != tree.Root() {
		t.Fatalf("Ancestors wrong: %v", anc)
	}
	if len(tree.Ancestors(tree.Root())) != 0 {
		t.Fatal("root has ancestors")
	}
}

func TestLevelsAndMaxDepth(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	mustJoin(t, tree, b, 3, 1, 0)
	if tree.MaxDepth() != 3 {
		t.Fatalf("MaxDepth = %d, want 3", tree.MaxDepth())
	}
	if len(tree.Level(0)) != 1 || len(tree.Level(1)) != 1 || len(tree.Level(3)) != 1 {
		t.Fatal("level sizes wrong")
	}
	if tree.Level(-1) != nil || tree.Level(99) != nil {
		t.Fatal("out-of-range levels should be nil")
	}
	// Remove the chain; MaxDepth shrinks.
	if _, err := tree.Remove(b); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if tree.MaxDepth() != 1 {
		t.Fatalf("MaxDepth after removal = %d, want 1", tree.MaxDepth())
	}
}

func TestBTPAndAge(t *testing.T) {
	m := &Member{Bandwidth: 4, JoinTime: 10 * time.Second}
	if got := m.Age(30 * time.Second); got != 20*time.Second {
		t.Fatalf("Age = %v", got)
	}
	if got := m.Age(5 * time.Second); got != 0 {
		t.Fatalf("Age before join = %v, want 0", got)
	}
	if got := m.BTP(30 * time.Second); got != 80 {
		t.Fatalf("BTP = %g, want 80", got)
	}
}

func TestRecordFailure(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 3, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	c := mustJoin(t, tree, b, 3, 1, 0)
	d := mustJoin(t, tree, a, 4, 1, 0)
	if got := tree.RecordFailure(a); got != 3 {
		t.Fatalf("RecordFailure = %d, want 3", got)
	}
	for _, m := range []*Member{b, c, d} {
		if m.Disruptions != 1 {
			t.Fatalf("member %d disruptions = %d, want 1", m.ID, m.Disruptions)
		}
	}
	if a.Disruptions != 0 {
		t.Fatal("failed member counted as disrupted")
	}
}

func TestSample(t *testing.T) {
	tree := newTestTree(t)
	var members []*Member
	for i := 0; i < 50; i++ {
		members = append(members, mustJoin(t, tree, tree.Root(), topology.NodeID(i), 0.5, 0))
	}
	rng := xrand.New(1)
	got := tree.Sample(rng, 10, nil)
	if len(got) != 10 {
		t.Fatalf("Sample returned %d, want 10", len(got))
	}
	seen := make(map[MemberID]bool)
	for _, m := range got {
		if seen[m.ID] {
			t.Fatal("Sample returned duplicates")
		}
		seen[m.ID] = true
		if m == tree.Root() {
			t.Fatal("Sample returned the root")
		}
	}
	// Excluding a member works.
	for i := 0; i < 20; i++ {
		for _, m := range tree.Sample(rng, 49, members[0]) {
			if m == members[0] {
				t.Fatal("Sample returned excluded member")
			}
		}
	}
	// Asking for more than available returns all.
	all := tree.Sample(rng, 1000, nil)
	if len(all) != 50 {
		t.Fatalf("oversized Sample returned %d, want 50", len(all))
	}
	if tree.Sample(rng, 0, nil) != nil {
		t.Fatal("Sample(0) should be nil")
	}
}

func TestLocking(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	if !tree.Lock(1, a, b) {
		t.Fatal("initial lock failed")
	}
	if !a.Locked() || !b.Locked() {
		t.Fatal("members not marked locked")
	}
	if tree.Lock(2, b) {
		t.Fatal("conflicting lock succeeded")
	}
	// Re-locking by the same op succeeds (idempotent).
	if !tree.Lock(1, a) {
		t.Fatal("re-lock by holder failed")
	}
	tree.Unlock(1, a, b)
	if a.Locked() || b.Locked() {
		t.Fatal("unlock did not release")
	}
	if tree.Lock(0, a) {
		t.Fatal("op 0 must not lock")
	}
}

func TestLockAllOrNothing(t *testing.T) {
	tree := newTestTree(t)
	a := mustJoin(t, tree, tree.Root(), 1, 2, 0)
	b := mustJoin(t, tree, a, 2, 2, 0)
	c := mustJoin(t, tree, b, 3, 1, 0)
	if !tree.Lock(7, b) {
		t.Fatal("lock b failed")
	}
	if tree.Lock(8, a, b, c) {
		t.Fatal("partial-conflict lock succeeded")
	}
	if a.Locked() || c.Locked() {
		t.Fatal("failed lock left residue")
	}
}

// TestChurnInvariants drives a random sequence of joins, leaves, and moves
// and checks structural invariants after every step.
func TestChurnInvariants(t *testing.T) {
	tree := newTestTree(t)
	rng := xrand.New(77)
	live := []*Member{}
	for step := 0; step < 3000; step++ {
		op := rng.Float64()
		switch {
		case op < 0.5 || len(live) == 0: // join
			bw := 0.5 + rng.Float64()*5
			m := tree.NewMember(topology.NodeID(rng.Intn(1000)), bw, time.Duration(step)*time.Second)
			// Find any parent with spare degree.
			parent := tree.Root()
			cands := tree.Sample(rng, 20, m)
			for _, c := range cands {
				if c.Attached() && c.HasSpare() {
					parent = c
					break
				}
			}
			if !parent.HasSpare() {
				// Root full and no candidate: drop the member again.
				if _, err := tree.Remove(m); err != nil {
					t.Fatalf("step %d: removing unattachable member: %v", step, err)
				}
				continue
			}
			if err := tree.Attach(m, parent); err != nil {
				t.Fatalf("step %d: attach: %v", step, err)
			}
			live = append(live, m)
		case op < 0.8: // leave
			i := rng.Intn(len(live))
			m := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			tree.RecordFailure(m)
			orphans, err := tree.Remove(m)
			if err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			// Rejoin orphans under the root (always has capacity 100...
			// unless full, then under any member with spare degree).
			for _, o := range orphans {
				target := tree.Root()
				if !target.HasSpare() {
					for _, c := range tree.Sample(rng, 50, o) {
						if c.Attached() && c.HasSpare() {
							target = c
							break
						}
					}
				}
				if target.HasSpare() {
					if err := tree.Attach(o, target); err != nil {
						t.Fatalf("step %d: orphan rejoin: %v", step, err)
					}
				}
			}
		default: // move a random subtree
			if len(live) < 2 {
				continue
			}
			m := live[rng.Intn(len(live))]
			p := live[rng.Intn(len(live))]
			if m == p || !m.Attached() || !p.Attached() || !p.HasSpare() {
				continue
			}
			err := tree.MoveSubtree(m, p)
			if err != nil && !errors.Is(err, ErrCycle) {
				t.Fatalf("step %d: move: %v", step, err)
			}
		}
		if step%50 == 0 {
			checkInv(t, tree)
		}
	}
	checkInv(t, tree)
}

// TestQuickRandomOpSequences drives arbitrary operation programs generated
// by testing/quick against the tree and checks the full invariant suite
// after each program: whatever the interleaving of joins, removals and
// subtree moves, the structure stays consistent.
func TestQuickRandomOpSequences(t *testing.T) {
	f := func(ops []uint32) bool {
		tree, err := NewTree(0, 10, constDelay)
		if err != nil {
			return false
		}
		var live []*Member
		for step, op := range ops {
			kind := op % 3
			pick := func(salt uint32) *Member {
				if len(live) == 0 {
					return nil
				}
				return live[int((op/7+salt))%len(live)]
			}
			switch kind {
			case 0: // join
				bw := 0.5 + float64(op%40)/8
				m := tree.NewMember(topology.NodeID(op%500), bw, time.Duration(step)*time.Second)
				parent := tree.Root()
				if p := pick(1); p != nil && p.Attached() && p.HasSpare() {
					parent = p
				}
				if !parent.HasSpare() {
					if _, err := tree.Remove(m); err != nil {
						return false
					}
					continue
				}
				if err := tree.Attach(m, parent); err != nil {
					return false
				}
				live = append(live, m)
			case 1: // remove + rejoin orphans anywhere possible
				m := pick(2)
				if m == nil {
					continue
				}
				for i, x := range live {
					if x == m {
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
						break
					}
				}
				orphans, err := tree.Remove(m)
				if err != nil {
					return false
				}
				for _, o := range orphans {
					target := tree.Root()
					if p := pick(3); p != nil && p != o && p.Attached() && p.HasSpare() {
						target = p
					}
					if target.HasSpare() {
						// Guard against attaching under o's own subtree.
						under := false
						for a := target; a != nil; a = a.Parent() {
							if a == o {
								under = true
								break
							}
						}
						if !under {
							if err := tree.Attach(o, target); err != nil {
								return false
							}
						}
					}
				}
			case 2: // move
				m, p := pick(4), pick(5)
				if m == nil || p == nil || m == p || !m.Attached() || !p.Attached() || !p.HasSpare() {
					continue
				}
				if err := tree.MoveSubtree(m, p); err != nil && !errors.Is(err, ErrCycle) {
					return false
				}
			}
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
