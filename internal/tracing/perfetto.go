// Chrome trace-event export: `omcast-trace convert -format perfetto` turns
// a span trace into JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing, one named track per member (or per live node), with
// every episode a complete ("X") slice whose args carry the span's ID,
// parent, outcome and attributes.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// perfettoEvent is one entry of the Chrome trace-event format's
// traceEvents array. Timestamps and durations are microseconds.
type perfettoEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// trackKey identifies one Perfetto track: a live node's address, or a sim
// member ID when the span carries no node.
type trackKey struct {
	node   string
	member int64
}

func (k trackKey) label() string {
	if k.node != "" {
		return k.node
	}
	return fmt.Sprintf("member %d", k.member)
}

// WritePerfetto emits the spans as Chrome trace-event JSON. Tracks are
// assigned deterministic tids (sorted by node then member), each track
// gets a thread_name metadata event, and slices within a track are sorted
// by start time so per-track timestamps are monotonic.
func WritePerfetto(w io.Writer, spans []Span) error {
	keyOf := func(sp Span) trackKey {
		k := trackKey{node: sp.Node}
		if k.node == "" {
			k.member = sp.Member
		}
		return k
	}
	seen := make(map[trackKey]bool)
	var keys []trackKey
	for _, sp := range spans {
		if k := keyOf(sp); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].member < keys[j].member
	})
	tids := make(map[trackKey]int, len(keys))
	file := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	for i, k := range keys {
		tids[k] = i + 1
		file.TraceEvents = append(file.TraceEvents, perfettoEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  i + 1,
			Args: map[string]string{"name": k.label()},
		})
	}
	slices := make([]perfettoEvent, 0, len(spans))
	for _, sp := range spans {
		args := map[string]string{
			"id":      sp.ID,
			"outcome": sp.Outcome,
		}
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		for _, a := range sp.Attrs {
			args[a.K] = a.V
		}
		dur := sp.Duration() * 1e6
		if dur < 0 {
			dur = 0
		}
		slices = append(slices, perfettoEvent{
			Name: sp.Kind,
			Cat:  sp.Kind,
			Ph:   "X",
			Ts:   sp.Start * 1e6,
			Dur:  &dur,
			Pid:  1,
			Tid:  tids[keyOf(sp)],
			Args: args,
		})
	}
	sort.SliceStable(slices, func(i, j int) bool {
		if slices[i].Tid != slices[j].Tid {
			return slices[i].Tid < slices[j].Tid
		}
		if slices[i].Ts != slices[j].Ts {
			return slices[i].Ts < slices[j].Ts
		}
		return slices[i].Args["id"] < slices[j].Args["id"]
	})
	file.TraceEvents = append(file.TraceEvents, slices...)
	data, err := json.Marshal(file)
	if err != nil {
		return fmt.Errorf("tracing: encoding perfetto trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("tracing: writing perfetto trace: %w", err)
	}
	return nil
}
