package wire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Type: TypeJoin, From: "a", Bandwidth: 3.5},
		{Type: TypeAccept, From: "b", Depth: 2},
		{Type: TypeReject, From: "b"},
		{Type: TypeLeave, From: "c"},
		{Type: TypeHeartbeat, From: "a", Seq: 42},
		{Type: TypePacket, From: "s", Packet: 1000, Payload: []byte{1, 2, 3}},
		{Type: TypeELN, From: "a", FirstMissing: 10, LastMissing: 20},
		{Type: TypeRepairRequest, From: "a", FirstMissing: 10, LastMissing: 160, Chain: []Addr{"r2", "r3"}, Epsilon: 0.4},
		{Type: TypeRepairData, From: "r", Packet: 15, Payload: []byte("x")},
		{Type: TypeMembershipRequest, From: "a", Limit: 100},
		{Type: TypeMembershipReply, From: "b", Members: []MemberInfo{
			{Addr: "m1", Depth: 3, Spare: 2, Bandwidth: 4, Ancestors: []Addr{"p", "root"}},
		}},
		{Type: TypeSwitchPropose, From: "a", BTP: 123.4},
		{Type: TypeSwitchAccept, From: "p"},
		{Type: TypeSwitchReject, From: "p"},
		{Type: TypeSwitchCommit, From: "a", NewParent: "a"},
		{Type: TypeAck, From: "a", Ctrl: 7},
	}
	for _, env := range cases {
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("Encode(%v): %v", env.Type, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", env.Type, err)
		}
		if got.Type != env.Type || got.From != env.From {
			t.Fatalf("round trip changed identity: %+v -> %+v", env, got)
		}
		if got.Packet != env.Packet || got.FirstMissing != env.FirstMissing ||
			got.LastMissing != env.LastMissing || got.BTP != env.BTP ||
			got.Seq != env.Seq || got.NewParent != env.NewParent {
			t.Fatalf("round trip changed fields: %+v -> %+v", env, got)
		}
		if len(got.Chain) != len(env.Chain) || len(got.Members) != len(env.Members) {
			t.Fatalf("round trip changed slices: %+v -> %+v", env, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode([]byte(`{"type":999,"from":"a"}`)); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := Decode([]byte(`{"type":1}`)); err == nil {
		t.Fatal("missing sender accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := TypeJoin; ty <= TypeAck; ty++ {
		if s := ty.String(); strings.HasPrefix(s, "Type(") {
			t.Fatalf("type %d has no name", int(ty))
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal("unknown type string wrong")
	}
}

// TestRoundTripProperty: any envelope an honest node could send — valid
// type, sender, non-negative in-cap numerics — survives the round trip.
// (Out-of-domain values are Decode *rejections* now; those live in
// validate_test.go.)
func TestRoundTripProperty(t *testing.T) {
	f := func(tRaw uint8, from string, pkt int64, btp float64, seq uint64) bool {
		if from == "" {
			from = "x"
		}
		if len(from) > MaxAddrLen {
			from = "too-long" // byte-truncation could split a rune; just swap it
		}
		if pkt < 0 {
			pkt = -pkt
		}
		if pkt < 0 { // MinInt64 negates to itself
			pkt = 0
		}
		if btp < 0 {
			btp = -btp
		}
		for btp > MaxBTP {
			btp /= MaxBTP
		}
		env := Envelope{
			Type:   Type(int(tRaw)%int(TypeSwitchCommit) + 1),
			From:   Addr(from),
			Packet: pkt,
			BTP:    btp,
			Seq:    seq,
		}
		b, err := Encode(env)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return got.Type == env.Type && got.From == env.From &&
			got.Packet == env.Packet && got.BTP == env.BTP && got.Seq == env.Seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
