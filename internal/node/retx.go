package node

import (
	"time"

	"omcast/internal/wire"
)

// Reliability shim for control-class messages. The paper's ROST/CER
// machinery assumes control exchanges eventually complete; over real UDP a
// single lost join/accept/repair datagram instead costs a full watchdog
// timeout. The shim closes that gap at the wire layer: each control-class
// send carries a per-peer sequence (Envelope.Ctrl), the receiver always acks
// it (and re-acks duplicates, since the first ack may itself have been
// lost), and the sender retransmits on a capped jittered backoff until acked
// or out of attempts. Data-class traffic — stream packets, heartbeats, ELN,
// repair data — is periodic or best-effort by design and stays
// fire-and-forget, so the shim adds no load to the steady-state data plane.

// retxPeerCap bounds the peers with live shim state, in units of the
// membership cap (matching the guard table's working-set bound). Beyond it
// control sends are demoted to fire-and-forget and receives go un-deduped
// (still acked), so a crowd of forged sender addresses cannot grow the map.
const retxPeerCap = 4

// retxDedupWindow is the receive window: a sequence more than this far
// behind the highest seen is treated as a duplicate. 64 fits the bitmap in
// one word and is far wider than RetxInflight ever lets a sender stray.
const retxDedupWindow = 64

// retxPending is one unacked control message awaiting its ack.
type retxPending struct {
	data     []byte
	attempts int // transmissions so far
	timer    *time.Timer
}

// retxPeer is the shim state for one peer: the send window (sequences,
// in-flight messages) and the receive dedup window (highest sequence seen
// plus a bitmap of the 64 below it).
type retxPeer struct {
	nextSeq  uint64
	inflight map[uint64]*retxPending

	rxHighest uint64
	rxBitmap  uint64 // bit i = sequence (rxHighest-1-i) seen
}

// retxPeerLocked finds or creates the shim state for addr, respecting the
// peer cap. Requires mu.
func (n *Node) retxPeerLocked(addr wire.Addr) *retxPeer {
	if p, ok := n.retx[addr]; ok {
		return p
	}
	if len(n.retx) >= retxPeerCap*n.cfg.MembershipLimit {
		return nil
	}
	p := &retxPeer{}
	n.retx[addr] = p
	return p
}

// retxInflightLocked totals the unacked control messages. Requires mu.
func (n *Node) retxInflightLocked() int {
	total := 0
	for _, p := range n.retx {
		total += len(p.inflight)
	}
	return total
}

// sendReliable registers env (with From already stamped) in the peer's
// in-flight window, stamps its Ctrl sequence and transmits the first copy.
// It returns false — caller falls back to fire-and-forget — when the peer's
// window is full or the peer table is at its cap.
func (n *Node) sendReliable(to wire.Addr, env wire.Envelope) bool {
	n.mu.Lock()
	p := n.retxPeerLocked(to)
	if p == nil || len(p.inflight) >= n.cfg.RetxInflight {
		n.stats.RetxOverflow++
		n.mu.Unlock()
		n.met.retxOverflow.Inc()
		return false
	}
	if p.inflight == nil {
		p.inflight = make(map[uint64]*retxPending)
	}
	p.nextSeq++
	seq := p.nextSeq
	env.Ctrl = seq
	data, err := n.codec.Encode(env)
	if err != nil {
		n.mu.Unlock()
		return true // unencodable envelopes are a programming error; drop
	}
	pend := &retxPending{data: data, attempts: 1}
	p.inflight[seq] = pend
	d := backoffDelay(n.cfg.RetxBackoffBase, n.cfg.RetxBackoffMax, 0, n.retxRng)
	pend.timer = time.AfterFunc(d, func() { n.retxFire(to, seq) })
	n.stats.CtrlSent++
	n.met.retxInflight.Set(float64(n.retxInflightLocked()))
	n.mu.Unlock()
	n.met.ctrlSent.Inc()
	n.transmit(to, data)
	return true
}

// retxFire is the retransmit timer callback: resend the still-unacked
// message with the next backoff step, or abandon it once the attempt budget
// is spent. The message stays in the window until acked or expired, so late
// acks still clear it.
func (n *Node) retxFire(to wire.Addr, seq uint64) {
	select {
	case <-n.done:
		return // node stopped: let the state die with it
	default:
	}
	n.mu.Lock()
	p := n.retx[to]
	if p == nil {
		n.mu.Unlock()
		return
	}
	pend, ok := p.inflight[seq]
	if !ok {
		n.mu.Unlock()
		return // acked in the meantime
	}
	if pend.attempts >= n.cfg.RetxAttempts {
		delete(p.inflight, seq)
		n.stats.RetxExpired++
		n.met.retxInflight.Set(float64(n.retxInflightLocked()))
		n.mu.Unlock()
		n.met.retxExpired.Inc()
		return
	}
	pend.attempts++
	d := backoffDelay(n.cfg.RetxBackoffBase, n.cfg.RetxBackoffMax, pend.attempts-1, n.retxRng)
	pend.timer = time.AfterFunc(d, func() { n.retxFire(to, seq) })
	data := pend.data
	n.stats.RetxSent++
	n.mu.Unlock()
	n.met.retxSent.Inc()
	n.transmit(to, data)
}

// handleAck clears the acked message from the sender-side window.
func (n *Node) handleAck(env wire.Envelope) {
	n.mu.Lock()
	p := n.retx[env.From]
	if p == nil {
		n.mu.Unlock()
		return
	}
	pend, ok := p.inflight[env.Ctrl]
	if !ok {
		n.mu.Unlock()
		return // duplicate ack, or ack for an expired message
	}
	pend.timer.Stop()
	delete(p.inflight, env.Ctrl)
	n.stats.RetxAcked++
	n.met.retxInflight.Set(float64(n.retxInflightLocked()))
	n.mu.Unlock()
	n.met.retxAcked.Inc()
}

// ctrlSeen records a received control sequence in the peer's dedup window
// and reports whether it was already delivered. Sequences that fell off the
// window's far edge count as duplicates (the safe direction: the shim may
// suppress a redelivery, never double-deliver within the window).
func (n *Node) ctrlSeen(from wire.Addr, seq uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.retxPeerLocked(from)
	if p == nil {
		return false // peer table full: process un-deduped rather than starve
	}
	switch {
	case p.rxHighest == 0:
		p.rxHighest = seq
		return false
	case seq > p.rxHighest:
		d := seq - p.rxHighest
		if d >= retxDedupWindow {
			p.rxBitmap = 0
		} else {
			p.rxBitmap = p.rxBitmap<<d | 1<<(d-1)
		}
		p.rxHighest = seq
		return false
	case seq == p.rxHighest:
		return true
	}
	d := p.rxHighest - seq
	if d > retxDedupWindow {
		return true
	}
	bit := uint64(1) << (d - 1)
	if p.rxBitmap&bit != 0 {
		return true
	}
	p.rxBitmap |= bit
	return false
}
