// Liveoverlay: boot the actual protocol runtime (not the simulator) on an
// in-process datagram network, stream packets, kill an interior member and
// watch the overlay heal — join handshakes, heartbeats, ELN, CER repair and
// ROST switching all running concurrently, exactly as `omcast-node` runs
// them over UDP.
//
//	go run ./examples/liveoverlay
package main

import (
	"fmt"
	"os"
	"time"

	"omcast/internal/node"
	"omcast/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liveoverlay:", err)
		os.Exit(1)
	}
}

func run() error {
	network := node.NewMemNetwork(nil)
	defer network.Close()

	base := node.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		GossipInterval:    60 * time.Millisecond,
		SwitchInterval:    500 * time.Millisecond,
		StreamRate:        50,
		RecoveryGroup:     3,
	}

	srcCfg := base
	srcCfg.Source = true
	srcCfg.Bandwidth = 3
	srcTr, err := network.Endpoint("source")
	if err != nil {
		return err
	}
	source := node.New(srcCfg, srcTr)
	source.Start()
	defer source.Kill()

	fmt.Println("booting 12 members against a 3-slot source...")
	var members []*node.Node
	for i := 0; i < 12; i++ {
		cfg := base
		cfg.Bandwidth = 2
		cfg.Bootstrap = []wire.Addr{"source"}
		tr, err := network.Endpoint(wire.Addr(fmt.Sprintf("member-%02d", i)))
		if err != nil {
			return err
		}
		n := node.New(cfg, tr)
		members = append(members, n)
		n.Start()
		defer n.Kill()
	}

	waitFor := func(what string, cond func() bool) error {
		//lint:ignore no-wallclock reason: polls the real-time internal/node runtime, not the simulation
		deadline := time.Now().Add(15 * time.Second)
		//lint:ignore no-wallclock reason: polls the real-time internal/node runtime, not the simulation
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			//lint:ignore no-wallclock reason: polls the real-time internal/node runtime, not the simulation
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("timed out waiting for %s", what)
	}

	if err := waitFor("the tree to form", func() bool {
		for _, m := range members {
			if !m.Stats().Attached {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	printTree("tree formed", members)

	if err := waitFor("the stream to reach everyone", func() bool {
		for _, m := range members {
			if m.Stats().HighestPacket < 100 {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Println("\nstream flowing: every member past packet 100")

	// Kill the busiest interior member abruptly.
	var victim *node.Node
	for _, m := range members {
		if victim == nil || m.Stats().Children > victim.Stats().Children {
			victim = m
		}
	}
	fmt.Printf("\nkilling %s (depth %d, %d children) without warning...\n",
		victim.Addr(), victim.Stats().Depth, victim.Stats().Children)
	mark := victim.Stats().HighestPacket
	victim.Kill()

	survivors := make([]*node.Node, 0, len(members)-1)
	for _, m := range members {
		if m != victim {
			survivors = append(survivors, m)
		}
	}
	if err := waitFor("the overlay to heal and catch up", func() bool {
		for _, m := range survivors {
			s := m.Stats()
			if !s.Attached || s.Parent == victim.Addr() || s.HighestPacket < mark+200 {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	printTree("healed after the failure", survivors)

	var repaired, rejoins, switches int64
	for _, m := range survivors {
		s := m.Stats()
		repaired += s.PacketsRepaired
		rejoins += s.Rejoins
		switches += s.Switches
	}
	fmt.Printf("\nrecovery summary: %d rejoins, %d packets repaired via CER, %d ROST switches\n",
		rejoins, repaired, switches)
	return nil
}

func printTree(title string, members []*node.Node) {
	fmt.Printf("\n[%s]\n", title)
	for _, m := range members {
		s := m.Stats()
		fmt.Printf("  %-10s depth=%d parent=%-10s children=%d packet=%d\n",
			m.Addr(), s.Depth, s.Parent, s.Children, s.HighestPacket)
	}
}
