// Command omcast-sim regenerates one figure of the paper's evaluation.
//
// Usage:
//
//	omcast-sim -fig fig4                 # full-scale run of Figure 4
//	omcast-sim -fig fig14 -quick         # reduced-scale smoke run
//	omcast-sim -fig fig11 -size 4000 -v  # single-size figure at custom M
//	omcast-sim -list                     # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"omcast/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig      = flag.String("fig", "", "experiment ID (fig4..fig14 or an ablation; see -list)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		seed     = flag.Int64("seed", 1, "base random seed")
		size     = flag.Int("size", 0, "member count for single-size figures (default 8000)")
		sizes    = flag.String("sizes", "", "comma-separated member counts for size sweeps (default 2000,5000,8000,11000,14000)")
		warmup   = flag.Duration("warmup", 0, "warm-up horizon (default 3h)")
		measure  = flag.Duration("measure", 0, "measurement window (default 1h)")
		replicas = flag.Int("replicas", 0, "seeds behind Figure 14's confidence intervals (default 5)")
		quick    = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		asCSV    = flag.Bool("csv", false, "emit the table as CSV instead of aligned text")
		verbose  = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "omcast-sim: -fig is required (try -list)")
		flag.Usage()
		return 2
	}
	opts := experiments.Options{
		Seed:     *seed,
		Size:     *size,
		Warmup:   *warmup,
		Measure:  *measure,
		Replicas: *replicas,
		Quick:    *quick,
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
			return 2
		}
		opts.Sizes = parsed
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	//lint:ignore no-wallclock CLI progress timer; never feeds simulation state
	start := time.Now()
	table, err := experiments.NewRunner(opts).Run(*fig)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-sim: %v\n", err)
		return 1
	}
	if *asCSV {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.Format())
		//lint:ignore no-wallclock CLI progress timer; never feeds simulation state
		fmt.Printf("(completed in %.1fs)\n", time.Since(start).Seconds())
	}
	return 0
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
