package wire

import (
	"bytes"
	"encoding/json"
)

// Strict key discipline for the JSON debug codec. encoding/json binds object
// keys to struct fields case-insensitively and lets a later duplicate key
// overwrite an earlier one — so `{"TYPE":6,...}` and `{"from":"a","from":"b"}`
// both decode, and the same semantic envelope has many byte encodings. That
// widens the attack surface (the PR 4 fuzzers found validators and canonical
// re-encoding disagreeing over such aliases), so the wire decoder walks the
// token stream and rejects any key that is not the exact canonical spelling,
// and any key that appears twice in one object.

// envelopeKeys is the canonical key set of Envelope's JSON encoding.
var envelopeKeys = map[string]bool{
	"type": true, "from": true, "bandwidth": true, "depth": true,
	"seq": true, "packet": true, "payload": true,
	"first_missing": true, "last_missing": true, "chain": true,
	"requester": true, "epsilon": true, "members": true, "limit": true,
	"btp": true, "new_parent": true, "ctrl": true,
}

// memberKeys is the canonical key set of MemberInfo's JSON encoding.
var memberKeys = map[string]bool{
	"addr": true, "depth": true, "spare": true, "bandwidth": true,
	"ancestors": true,
}

// strictKeys re-walks an envelope that already json.Unmarshal-ed cleanly and
// rejects unknown, case-mismatched or duplicate keys. t is the (leniently)
// parsed message type, used only to label the error.
func strictKeys(b []byte, t Type) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()

	// The walk tracks object nesting: the root object carries envelope keys;
	// objects inside the "members" array carry member keys. Unmarshal already
	// succeeded, so no other object shape can occur.
	type frame struct {
		object  bool            // object vs array
		keys    map[string]bool // allowed keys (objects only)
		seen    map[string]bool // keys observed (objects only)
		members bool            // array holding member objects
		wantKey bool            // next string token is a key
	}
	var stack []frame
	var lastKey string
	for {
		tok, err := dec.Token()
		if err != nil {
			// io.EOF after the value; Unmarshal vetted syntax already.
			return nil
		}
		top := func() *frame {
			if len(stack) == 0 {
				return nil
			}
			return &stack[len(stack)-1]
		}
		switch v := tok.(type) {
		case json.Delim:
			switch v {
			case '{':
				keys := envelopeKeys
				if f := top(); f != nil {
					if !f.object && f.members {
						keys = memberKeys
					} else if f.object {
						// An object value under some envelope key: no such
						// field exists, so Unmarshal would have failed.
						keys = map[string]bool{}
					}
				}
				stack = append(stack, frame{object: true, keys: keys,
					seen: make(map[string]bool, len(keys)), wantKey: true})
			case '[':
				members := false
				if f := top(); f != nil && f.object {
					members = lastKey == "members" && f.keys["members"]
				}
				stack = append(stack, frame{members: members})
			case '}', ']':
				stack = stack[:len(stack)-1]
				if f := top(); f != nil && f.object {
					f.wantKey = true
				}
			}
		case string:
			f := top()
			if f != nil && f.object && f.wantKey {
				if !f.keys[v] {
					return bad(t, ReasonField, "unknown or case-mismatched key %q", v)
				}
				if f.seen[v] {
					return bad(t, ReasonField, "duplicate key %q", v)
				}
				f.seen[v] = true
				lastKey = v
				f.wantKey = false
			} else if f != nil && f.object {
				f.wantKey = true
			}
		default:
			if f := top(); f != nil && f.object {
				f.wantKey = true
			}
		}
	}
}
