package wire

import "testing"

// TestStrictJSONKeys is the regression suite for the JSON laxity fix:
// encoding/json's case-insensitive field matching and last-duplicate-wins
// behaviour used to give one envelope many byte encodings; the strict
// decoder now rejects every alias with reason "field" while keeping sender
// attribution for the guard layer.
func TestStrictJSONKeys(t *testing.T) {
	reject := []struct {
		name string
		data string
	}{
		{"case-mismatched-type", `{"Type":6,"from":"s","packet":1,"payload":"AQID"}`},
		{"case-mismatched-from", `{"type":6,"FROM":"s","packet":1,"payload":"AQID"}`},
		{"case-mismatched-snake", `{"type":7,"from":"p","First_Missing":1,"last_missing":2}`},
		{"duplicate-key", `{"type":6,"from":"a","from":"b","packet":1,"payload":"AQID"}`},
		{"duplicate-type", `{"type":1,"type":1,"from":"j"}`},
		{"unknown-key", `{"type":1,"from":"j","extra":1}`},
		{"case-mismatched-member", `{"type":11,"from":"b","members":[{"Addr":"m","depth":1,"spare":1,"bandwidth":1}]}`},
		{"duplicate-member-key", `{"type":11,"from":"b","members":[{"addr":"m","addr":"m2","depth":1,"spare":1,"bandwidth":1}]}`},
		{"unknown-member-key", `{"type":11,"from":"b","members":[{"addr":"m","depth":1,"spare":1,"bandwidth":1,"x":2}]}`},
	}
	for _, tc := range reject {
		if _, err := Decode([]byte(tc.data)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.data)
		} else if r := Reason(err); r != ReasonField {
			t.Errorf("%s: reason %q, want %q (%v)", tc.name, r, ReasonField, err)
		}
	}

	// Canonical spellings keep decoding, including every nested shape.
	accept := []string{
		`{"type":1,"from":"j","bandwidth":3.5}`,
		`{"type":8,"from":"a","first_missing":5,"last_missing":25,"chain":["r2","r3"],"requester":"orig","epsilon":0.25}`,
		`{"type":11,"from":"b","members":[{"addr":"m1","depth":3,"spare":2,"bandwidth":4,"ancestors":["p","root"]}]}`,
		`{"type":16,"from":"r","ctrl":9}`,
	}
	for _, data := range accept {
		if _, err := Decode([]byte(data)); err != nil {
			t.Errorf("canonical envelope rejected: %v\n%s", err, data)
		}
	}

	// Attribution survives a strict-key reject: the leniently parsed sender
	// rides along so the guard can charge it.
	env, err := Decode([]byte(`{"type":1,"from":"evil","BANDWIDTH":3}`))
	if err == nil {
		t.Fatal("case-mismatched key accepted")
	}
	if env.From != "evil" {
		t.Fatalf("strict reject lost attribution: %+v", env)
	}
}
