// Package cer implements the paper's second contribution: the Cooperative
// Error Recovery protocol (Section 4).
//
// When a member's parent fails, rejoining the tree takes tens of seconds
// (failure detection plus parent re-finding). During that window the member
// retrieves the lost stream from a recovery group. CER's two ideas are:
//
//   - Minimum-loss-correlation (MLC) groups: recovery nodes are chosen from
//     different subtrees so that one overlay failure is unlikely to take out
//     several of them at once (Algorithm 1, run on the partial tree a node
//     can reconstruct from its bounded membership knowledge).
//
//   - Multi-source striped recovery: a single recovery node usually lacks
//     the residual bandwidth to re-supply a full-rate stream, so the missing
//     sequence space is partitioned across the group: the first node with
//     residual bandwidth e1 takes packets with (n mod 100) < 100*e1, the
//     second the next slice, and so on until the slices cover the full rate
//     or the group is exhausted.
//
// PlanRecovery turns an outage episode into per-packet repair arrival times;
// the stream package folds those into playback accounting. The single-source
// baseline of Figure 14 (recovery list used one node at a time, no striping)
// is planned by the same code with Striped=false.
package cer

import (
	"math"
	"sort"
	"time"

	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// DefaultKnowledge is how many members a node is assumed to know about when
// reconstructing the partial tree ("each node will know about a medium-sized
// (e.g., 100) subset of other nodes").
const DefaultKnowledge = 100

// Selector picks recovery groups for a member.
type Selector interface {
	// Select returns up to k recovery members for self, best candidates
	// first (callers contact them in the returned order).
	Select(self *overlay.Member, k int) []*overlay.Member
}

// MLCSelector implements Algorithm 1 over the partial tree built from a
// bounded random sample of the membership.
type MLCSelector struct {
	Tree *overlay.Tree
	Rng  *xrand.Source
	// Delay orders the resulting group by network distance.
	Delay func(a, b topology.NodeID) time.Duration
	// Knowledge bounds the membership sample; 0 means DefaultKnowledge.
	Knowledge int
	// Banned excludes members from recovery groups regardless of tree
	// position — the simulation analogue of the live node's quarantine list
	// (peers convicted of misbehavior must not become repair sources).
	Banned map[overlay.MemberID]bool
}

var _ Selector = (*MLCSelector)(nil)

// Select implements Selector.
//
// Following Algorithm 1: build the partial tree T from the sampled members
// and their ancestor paths, find the first level Li with |Li| < K <= |Li+1|,
// collect K subtree roots G0 by repeatedly picking random children of Li
// nodes, then derive G by picking one random known descendant per subtree
// root. Members of the caller's own root path (and its own subtree) are
// excluded — their losses are maximally correlated with the caller's.
func (s *MLCSelector) Select(self *overlay.Member, k int) []*overlay.Member {
	if k <= 0 {
		return nil
	}
	know := s.Knowledge
	if know <= 0 {
		know = DefaultKnowledge
	}
	pt := buildPartialTree(s.Tree, s.Rng, self, know, s.Banned)
	if pt == nil {
		return nil
	}
	roots := pt.subtreeRoots(s.Rng, k)
	group := make([]*overlay.Member, 0, k)
	for _, r := range roots {
		if d := pt.randomUsableDescendant(s.Rng, r); d != nil {
			group = append(group, d)
		}
		if len(group) == k {
			break
		}
	}
	// Top up from any usable known member if the tree was too narrow.
	if len(group) < k {
		for _, n := range pt.usableFallback(s.Rng, k-len(group), group) {
			group = append(group, n)
		}
	}
	s.orderByDistance(self, group)
	return group
}

func (s *MLCSelector) orderByDistance(self *overlay.Member, group []*overlay.Member) {
	if s.Delay == nil {
		return
	}
	sort.SliceStable(group, func(i, j int) bool {
		return s.Delay(self.Attach, group[i].Attach) < s.Delay(self.Attach, group[j].Attach)
	})
}

// RandomSelector picks recovery nodes uniformly from the sampled membership
// with the same exclusions but no loss-correlation awareness. It is the
// selection baseline (ablation) and the Figure 14 baseline's recovery list.
type RandomSelector struct {
	Tree      *overlay.Tree
	Rng       *xrand.Source
	Delay     func(a, b topology.NodeID) time.Duration
	Knowledge int
	// Banned mirrors MLCSelector.Banned: the quarantine-analogue exclusion.
	Banned map[overlay.MemberID]bool
}

var _ Selector = (*RandomSelector)(nil)

// Select implements Selector.
func (s *RandomSelector) Select(self *overlay.Member, k int) []*overlay.Member {
	if k <= 0 {
		return nil
	}
	know := s.Knowledge
	if know <= 0 {
		know = DefaultKnowledge
	}
	banned := rootPathSet(self, s.Banned)
	sample := s.Tree.Sample(s.Rng, know, self)
	group := make([]*overlay.Member, 0, k)
	for _, c := range sample {
		if !usableRecoveryNode(c, self, banned) {
			continue
		}
		group = append(group, c)
		if len(group) == k {
			break
		}
	}
	if s.Delay != nil {
		sort.SliceStable(group, func(i, j int) bool {
			return s.Delay(self.Attach, group[i].Attach) < s.Delay(self.Attach, group[j].Attach)
		})
	}
	return group
}

// rootPathSet returns self's strict ancestors plus self, merged with any
// extra exclusions (the selector's Banned set).
func rootPathSet(self *overlay.Member, extra map[overlay.MemberID]bool) map[overlay.MemberID]bool {
	banned := map[overlay.MemberID]bool{self.ID: true}
	for p := self.Parent(); p != nil; p = p.Parent() {
		banned[p.ID] = true
	}
	//lint:ignore map-order reason: set union; insertion order cannot matter
	for id := range extra {
		banned[id] = true
	}
	return banned
}

// usableRecoveryNode rejects candidates whose losses are inherently
// correlated with self: self's ancestors (they fail with self's path) and
// self's descendants (they receive the stream through self).
func usableRecoveryNode(c, self *overlay.Member, bannedPath map[overlay.MemberID]bool) bool {
	if c == nil || c == self || !c.Attached() {
		return false
	}
	if bannedPath[c.ID] {
		return false
	}
	for p := c.Parent(); p != nil; p = p.Parent() {
		if p == self {
			return false // descendant of self
		}
	}
	return true
}

// partialTree is the tree a node reconstructs from the ancestor paths of the
// members it knows about. Node identity is the real member pointer (the
// ancestor lists carry addresses), but edges reflect only sampled paths.
type partialTree struct {
	self     *overlay.Member
	banned   map[overlay.MemberID]bool
	root     *overlay.Member
	children map[overlay.MemberID][]*overlay.Member
	known    map[overlay.MemberID]bool // members that appear in T
	levels   [][]*overlay.Member
}

// buildPartialTree samples `know` members and assembles their root paths.
func buildPartialTree(tree *overlay.Tree, rng *xrand.Source, self *overlay.Member, know int, extraBanned map[overlay.MemberID]bool) *partialTree {
	sample := tree.Sample(rng, know, self)
	if len(sample) == 0 {
		return nil
	}
	pt := &partialTree{
		self:     self,
		banned:   rootPathSet(self, extraBanned),
		root:     tree.Root(),
		children: make(map[overlay.MemberID][]*overlay.Member),
		known:    make(map[overlay.MemberID]bool),
	}
	seenEdge := make(map[[2]overlay.MemberID]bool)
	addPath := func(m *overlay.Member) {
		if !m.Attached() {
			return
		}
		for cur := m; cur != nil; {
			pt.known[cur.ID] = true
			p := cur.Parent()
			if p == nil {
				break
			}
			edge := [2]overlay.MemberID{p.ID, cur.ID}
			if !seenEdge[edge] {
				seenEdge[edge] = true
				pt.children[p.ID] = append(pt.children[p.ID], cur)
			}
			cur = p
		}
	}
	// The node knows its own path as well.
	addPath(self)
	for _, m := range sample {
		addPath(m)
	}
	pt.buildLevels()
	return pt
}

func (pt *partialTree) buildLevels() {
	level := []*overlay.Member{pt.root}
	for len(level) > 0 {
		pt.levels = append(pt.levels, level)
		var next []*overlay.Member
		for _, n := range level {
			next = append(next, pt.children[n.ID]...)
		}
		level = next
	}
}

// subtreeRoots implements steps 2-3 of Algorithm 1: find the first level Li
// with |Li| < K <= |Li+1| and gather K distinct subtree roots from the
// children of Li.
func (pt *partialTree) subtreeRoots(rng *xrand.Source, k int) []*overlay.Member {
	li := -1
	for i := 0; i+1 < len(pt.levels); i++ {
		if len(pt.levels[i]) < k && k <= len(pt.levels[i+1]) {
			li = i
			break
		}
	}
	if li == -1 {
		// No level pair brackets K (narrow or shallow partial tree): use the
		// widest level as the root set directly.
		widest := 0
		for i, lv := range pt.levels {
			if len(lv) > len(pt.levels[widest]) {
				widest = i
			}
			_ = i
		}
		roots := append([]*overlay.Member(nil), pt.levels[widest]...)
		rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
		if len(roots) > k {
			roots = roots[:k]
		}
		return roots
	}
	// Round-robin: pick one random not-yet-chosen child per Li node until K
	// roots are gathered.
	remaining := make(map[overlay.MemberID][]*overlay.Member, len(pt.levels[li]))
	for _, v := range pt.levels[li] {
		cs := append([]*overlay.Member(nil), pt.children[v.ID]...)
		rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
		remaining[v.ID] = cs
	}
	var roots []*overlay.Member
	for len(roots) < k {
		progressed := false
		for _, v := range pt.levels[li] {
			cs := remaining[v.ID]
			if len(cs) == 0 {
				continue
			}
			roots = append(roots, cs[0])
			remaining[v.ID] = cs[1:]
			progressed = true
			if len(roots) == k {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return roots
}

// randomUsableDescendant picks a random known member in root's partial
// subtree (including root itself) that can serve as a recovery node for
// self.
func (pt *partialTree) randomUsableDescendant(rng *xrand.Source, root *overlay.Member) *overlay.Member {
	var cands []*overlay.Member
	var walk func(n *overlay.Member)
	walk = func(n *overlay.Member) {
		if usableRecoveryNode(n, pt.self, pt.banned) {
			cands = append(cands, n)
		}
		for _, c := range pt.children[n.ID] {
			walk(c)
		}
	}
	walk(root)
	if len(cands) == 0 {
		return nil
	}
	return cands[rng.Intn(len(cands))]
}

// usableFallback returns up to n usable known members not already chosen.
func (pt *partialTree) usableFallback(rng *xrand.Source, n int, chosen []*overlay.Member) []*overlay.Member {
	taken := make(map[overlay.MemberID]bool, len(chosen))
	for _, c := range chosen {
		taken[c.ID] = true
	}
	var cands []*overlay.Member
	var walk func(m *overlay.Member)
	walk = func(m *overlay.Member) {
		if !taken[m.ID] && usableRecoveryNode(m, pt.self, pt.banned) {
			cands = append(cands, m)
		}
		for _, c := range pt.children[m.ID] {
			walk(c)
		}
	}
	walk(pt.root)
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands
}

// LossCorrelation returns w(a, b): the number of shared overlay edges on the
// root paths of a and b (the paper's loss-correlation function). Exported
// for tests and the MLC-vs-random ablation.
func LossCorrelation(a, b *overlay.Member) int {
	depthOf := func(m *overlay.Member) int { return m.Depth() }
	// Walk both up to equal depth, then in lockstep until the paths merge;
	// every step after the merge point is a shared edge.
	da, db := depthOf(a), depthOf(b)
	x, y := a, b
	for da > db {
		x = x.Parent()
		da--
	}
	for db > da {
		y = y.Parent()
		db--
	}
	for x != y {
		x, y = x.Parent(), y.Parent()
		da--
	}
	// x == y is the lowest common ancestor at depth da; the shared edges are
	// those from the LCA up to the root.
	return da
}

// GroupLossCorrelation sums pairwise loss correlations over a group.
func GroupLossCorrelation(group []*overlay.Member) int {
	total := 0
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			total += LossCorrelation(group[i], group[j])
		}
	}
	return total
}

// Server is one usable recovery node in an episode.
type Server struct {
	Member *overlay.Member
	// Epsilon is the node's residual bandwidth as a fraction of the stream
	// rate (the paper draws residual bandwidth uniformly from 0-9 packets
	// per second against a 10 packet-per-second stream).
	Epsilon float64
	// ChainDelay is the accumulated request-forwarding latency until this
	// server sees the request (the NACK chain of Section 4.2).
	ChainDelay time.Duration
	// Transfer is the server-to-requester delivery delay.
	Transfer time.Duration
}

// Episode describes one outage to plan recovery for.
type Episode struct {
	// FirstMissing and LastMissing bound the missing sequence numbers
	// (inclusive).
	FirstMissing, LastMissing int64
	// RequestAt is when the repair request goes out (failure time plus
	// detection delay).
	RequestAt time.Duration
	// ResumeAt is when the live feed resumes (failure time plus detection
	// plus rejoin) — from this point the group's residual bandwidth serves
	// the uncovered backlog.
	ResumeAt time.Duration
	// Rate is the stream rate in packets per second.
	Rate float64
	// Gen returns the generation time of packet n.
	Gen func(n int64) time.Duration
	// Striped selects CER's multi-source striping; false plans the
	// single-source baseline (only the first server's residual bandwidth is
	// used, as in PRM-style recovery).
	Striped bool
}

// Plan maps missing sequence numbers to their repair arrival times at the
// requester; packets absent from the map are lost.
type Plan map[int64]time.Duration

// ServerPlan is one recovery server's share of a planned episode: the
// per-peer fetch detail behind a repair span. Phase is "striped" for the
// sequence-space slice a server supplies directly and "backlog" for the
// group's post-resume catch-up (attributed to the lead server, whose
// transfer path the backlog packets take).
type ServerPlan struct {
	Server  Server
	Phase   string
	Packets int
	// First and Last bound the arrival times of this share's packets.
	First, Last time.Duration
}

// PlanRecovery computes repair arrivals for an episode.
//
// Striped phase: the missing-sequence space is partitioned by (n mod 100)
// slices proportional to each server's epsilon, in server order. A covered
// packet arrives at max(request reaching the server, the packet reaching the
// server) plus the transfer delay.
//
// Backlog phase: packets left uncovered (total epsilon below one, or the
// single-source baseline) are served in sequence order after the live feed
// resumes, at the group's aggregate residual rate; their arrival times grow
// linearly with queue position. Whether they beat their playback deadlines
// is the buffer-size trade-off of Figure 13.
func PlanRecovery(ep Episode, servers []Server) Plan {
	plan, _ := planRecovery(ep, servers, false)
	return plan
}

// PlanRecoveryDetail is PlanRecovery returning, additionally, the
// per-server breakdown (tracing only — the hot path calls PlanRecovery and
// pays nothing for the detail).
func PlanRecoveryDetail(ep Episode, servers []Server) (Plan, []ServerPlan) {
	return planRecovery(ep, servers, true)
}

// Lost marks a packet with no repair arrival in a PlanRecoveryInto result.
const Lost time.Duration = -1

// PlanRecoveryInto is PlanRecovery with dense output for the streaming hot
// path: element i of the returned slice holds the repair arrival time of
// packet FirstMissing+i, or Lost for packets the group cannot supply. buf is
// reused when large enough, so steady-state episodes allocate nothing. The
// arithmetic mirrors PlanRecovery expression for expression; the two are
// equivalence-tested, which is what lets the interval accounting in stream
// replace the per-packet map without disturbing any figure output.
func PlanRecoveryInto(ep Episode, servers []Server, buf []time.Duration) []time.Duration {
	count := ep.LastMissing - ep.FirstMissing + 1
	if count <= 0 {
		return buf[:0]
	}
	if int64(cap(buf)) < count {
		buf = make([]time.Duration, count)
	} else {
		buf = buf[:count]
	}
	for i := range buf {
		buf[i] = Lost
	}
	if len(servers) == 0 || ep.Rate <= 0 {
		return buf
	}
	usable := servers
	if !ep.Striped {
		usable = nil
		for _, s := range servers {
			if s.Epsilon > 0 {
				usable = []Server{s}
				break
			}
		}
		if len(usable) == 0 {
			return buf
		}
	}
	type slice struct {
		lo, hi float64
		srv    Server
	}
	var slices []slice
	cum := 0.0
	for _, s := range usable {
		if cum >= 1 || s.Epsilon <= 0 {
			continue
		}
		hi := math.Min(1, cum+s.Epsilon)
		slices = append(slices, slice{lo: cum, hi: hi, srv: s})
		cum = hi
	}
	aggregate := 0.0
	for _, s := range usable {
		if s.Epsilon > 0 {
			aggregate += s.Epsilon
		}
	}
	rate := aggregate * ep.Rate // packets per second
	backlog := int64(0)
	for n := ep.FirstMissing; n <= ep.LastMissing; n++ {
		frac := float64(n%100) / 100
		covered := false
		for _, sl := range slices {
			if frac >= sl.lo && frac < sl.hi {
				at := ep.RequestAt + sl.srv.ChainDelay
				if g := ep.Gen(n); g > at {
					at = g // live forwarding of not-yet-generated packets
				}
				buf[n-ep.FirstMissing] = at + sl.srv.Transfer
				covered = true
				break
			}
		}
		if !covered && aggregate > 0 {
			service := time.Duration(float64(backlog+1) / rate * float64(time.Second))
			buf[n-ep.FirstMissing] = ep.ResumeAt + service + usable[0].Transfer
			backlog++
		}
	}
	return buf
}

func planRecovery(ep Episode, servers []Server, detail bool) (Plan, []ServerPlan) {
	plan := make(Plan, ep.LastMissing-ep.FirstMissing+1)
	if len(servers) == 0 || ep.Rate <= 0 {
		return plan, nil
	}
	usable := servers
	if !ep.Striped {
		// Single-source baseline: the request walks the list until a node
		// with spare bandwidth answers; only that node's residual bandwidth
		// is used.
		usable = nil
		for _, s := range servers {
			if s.Epsilon > 0 {
				usable = []Server{s}
				break
			}
		}
		if len(usable) == 0 {
			return plan, nil
		}
	}
	// Striped ranges over [0,1) of the (n mod 100)/100 space.
	type slice struct {
		lo, hi float64
		srv    Server
	}
	var slices []slice
	cum := 0.0
	for _, s := range usable {
		if cum >= 1 || s.Epsilon <= 0 {
			continue
		}
		hi := math.Min(1, cum+s.Epsilon)
		slices = append(slices, slice{lo: cum, hi: hi, srv: s})
		cum = hi
	}
	var det []ServerPlan
	if detail {
		det = make([]ServerPlan, len(slices))
		for i := range slices {
			det[i] = ServerPlan{Server: slices[i].srv, Phase: "striped"}
		}
	}
	record := func(sp *ServerPlan, at time.Duration) {
		if sp.Packets == 0 || at < sp.First {
			sp.First = at
		}
		if at > sp.Last {
			sp.Last = at
		}
		sp.Packets++
	}
	var backlog []int64
	for n := ep.FirstMissing; n <= ep.LastMissing; n++ {
		frac := float64(n%100) / 100
		covered := false
		for i, sl := range slices {
			if frac >= sl.lo && frac < sl.hi {
				at := ep.RequestAt + sl.srv.ChainDelay
				if g := ep.Gen(n); g > at {
					at = g // live forwarding of not-yet-generated packets
				}
				plan[n] = at + sl.srv.Transfer
				if detail {
					record(&det[i], plan[n])
				}
				covered = true
				break
			}
		}
		if !covered {
			backlog = append(backlog, n)
		}
	}
	// Aggregate residual rate for the backlog phase.
	aggregate := 0.0
	for _, s := range usable {
		if s.Epsilon > 0 {
			aggregate += s.Epsilon
		}
	}
	if aggregate <= 0 {
		return plan, compactDetail(det)
	}
	rate := aggregate * ep.Rate // packets per second
	var back ServerPlan
	if detail {
		back = ServerPlan{Server: usable[0], Phase: "backlog"}
	}
	for k, n := range backlog {
		service := time.Duration(float64(k+1) / rate * float64(time.Second))
		plan[n] = ep.ResumeAt + service + usable[0].Transfer
		if detail {
			record(&back, plan[n])
		}
	}
	if detail && back.Packets > 0 {
		det = append(det, back)
	}
	return plan, compactDetail(det)
}

// compactDetail drops servers whose slice covered no packets (an episode
// narrower than the stripe layout).
func compactDetail(det []ServerPlan) []ServerPlan {
	if det == nil {
		return nil
	}
	out := det[:0]
	for _, d := range det {
		if d.Packets > 0 {
			out = append(out, d)
		}
	}
	return out
}
