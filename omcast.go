// Package omcast is a faithful, from-scratch reproduction of "Improving the
// Fault Resilience of Overlay Multicast for Media Streaming" (Tan, Jarvis,
// Spooner — DSN 2006) as a reusable Go library.
//
// The paper proposes two techniques for single-tree overlay live streaming:
//
//   - ROST, the Reliability-Oriented Switching Tree algorithm: members climb
//     the tree as their bandwidth-time product (outbound bandwidth x age)
//     grows, producing a tree partially ordered in both bandwidth and time
//     that suffers far fewer streaming disruptions than depth-optimal or
//     age-ordered trees, at almost no protocol overhead.
//
//   - CER, the Cooperative Error Recovery protocol: when an upstream member
//     fails, the affected node repairs the missing stream from a
//     minimum-loss-correlation group of recovery nodes, striping the missing
//     sequence space across their residual bandwidths.
//
// This package is the public façade: it assembles the simulation substrate
// (GT-ITM-style transit-stub underlay, discrete-event kernel, churn driver,
// the five tree-construction algorithms, the CER/MLC recovery machinery and
// the packet-level playback model — all implemented in internal/...) behind
// three entry points:
//
//	Run          — tree-level experiment: disruptions, delay, stretch, overhead
//	RunStreaming — packet-level experiment: starving-time ratios under CER
//	RunTracked   — the "typical member" time series of Figures 6 and 9
//
// Every run is deterministic in Config.Seed.
package omcast

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"omcast/internal/churn"
	"omcast/internal/construct"
	"omcast/internal/eventsim"
	"omcast/internal/fleet"
	"omcast/internal/metrics"
	"omcast/internal/multitree"
	"omcast/internal/overlay"
	"omcast/internal/rost"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// Algorithm selects the overlay construction algorithm (Section 5 of the
// paper implements and compares these five).
type Algorithm int

// The five algorithms of the paper's evaluation.
const (
	// MinimumDepth joins under the highest spare-capacity member known.
	MinimumDepth Algorithm = iota + 1
	// LongestFirst joins under the oldest spare-capacity member known.
	LongestFirst
	// RelaxedBandwidthOrdered is the centralized eviction-based variant of
	// the high-bandwidth-first (BO) algorithm.
	RelaxedBandwidthOrdered
	// RelaxedTimeOrdered is the centralized eviction-based variant of the
	// time-ordered (TO) algorithm.
	RelaxedTimeOrdered
	// ROST is the paper's Reliability-Oriented Switching Tree algorithm.
	ROST
)

// Algorithms lists all five in the order the paper's figures present them.
var Algorithms = []Algorithm{
	MinimumDepth, RelaxedBandwidthOrdered, LongestFirst, RelaxedTimeOrdered, ROST,
}

// String returns the display name used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case MinimumDepth:
		return "Minimum-depth"
	case LongestFirst:
		return "Longest-first"
	case RelaxedBandwidthOrdered:
		return "Relaxed bandwidth-ordered"
	case RelaxedTimeOrdered:
		return "Relaxed time-ordered"
	case ROST:
		return "ROST"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// TopologyOptions scales the generated transit-stub underlay. The zero value
// reproduces the paper's 15600-router topology (240 transit + 15360 stub).
type TopologyOptions struct {
	TransitDomains        int
	TransitNodesPerDomain int
	StubDomainsPerTransit int
	StubNodesPerDomain    int
}

// SmallTopology is a reduced underlay (~800 routers) for quick runs, tests
// and benchmarks; member placement and delay laws are unchanged.
func SmallTopology() TopologyOptions {
	return TopologyOptions{
		TransitDomains:        3,
		TransitNodesPerDomain: 8,
		StubDomainsPerTransit: 4,
		StubNodesPerDomain:    8,
	}
}

// Config describes one simulated multicast session. Zero fields take the
// paper's defaults (Section 5).
type Config struct {
	// Seed drives every random choice in the run.
	Seed int64
	// Algorithm is the tree-construction algorithm; default ROST.
	Algorithm Algorithm
	// TargetSize is the steady-state member count M (the paper sweeps
	// 2000-14000). Required.
	TargetSize int
	// Topology scales the underlay; zero value = the paper's 15600 routers.
	Topology TopologyOptions
	// SwitchInterval is ROST's switching interval; default 360 s.
	SwitchInterval time.Duration
	// EnableReferees turns on the Section 3.4 cheat-prevention mechanism
	// (BTP claims verified against referee witnesses before any switch).
	EnableReferees bool
	// ContributorPriority applies the Section 3.2 incentive rule to ROST
	// joins: free-riders are parked at the deepest spare position.
	ContributorPriority bool
	// DisableBandwidthGuard removes ROST's "child bandwidth >= parent
	// bandwidth" switching precondition (ablation).
	DisableBandwidthGuard bool
	// Warmup and Measure bound the run: the overlay is pre-populated at the
	// stationary churn regime, churns for Warmup, then metrics accumulate
	// for Measure. Defaults: Warmup 1800 s, Measure 3600 s.
	Warmup  time.Duration
	Measure time.Duration
	// RootBandwidth is the source's outbound bandwidth; default 100.
	RootBandwidth float64
	// SessionAge is how long the seeded session has notionally been running
	// at time zero (bounds member ages); default 4 hours.
	SessionAge time.Duration
	// DisableAncestorRejoin turns off the default orphan-repair rule
	// (re-attach under the nearest surviving ancestor with spare capacity,
	// which every member knows per Section 4.1) and forces orphans through
	// the construction strategy's full join procedure instead.
	DisableAncestorRejoin bool
	// Lifetime and Bandwidth override the churn distributions (defaults:
	// lognormal(5.5, 2.0) seconds and bounded Pareto(1.2, 0.5, 100)).
	Lifetime  xrand.Lognormal
	Bandwidth xrand.BoundedPareto
	// FlashCrowd, when non-nil, injects a burst of simultaneous arrivals on
	// top of the Poisson process (the scalability scenario the paper's
	// Section 3.1 motivates distributed construction with).
	FlashCrowd *FlashCrowd
	// Cheaters injects this many members that persistently advertise
	// CheatFactor times their true BTP (Section 3.4's threat model). Forces
	// the referee mechanism on for claim propagation; pair with
	// DisableClaimVerification for the unprotected control.
	Cheaters int
	// CheatFactor is the claim inflation; 0 means 50x.
	CheatFactor float64
	// DisableClaimVerification keeps cheaters' inflated claims unverified
	// (the control scenario showing why referees are needed).
	DisableClaimVerification bool
	// Metrics, if non-nil, receives the run's instruments (kernel, churn,
	// ROST and — under RunStreaming — CER counters). The registry uses the
	// deterministic virtual-time backend, so snapshots are byte-identical
	// across same-seed runs; a registry may be shared across sequential runs
	// to accumulate totals.
	Metrics *metrics.Registry
	// Paranoid turns on full-scan overlay invariant auditing: every
	// CheckInvariants call walks the whole tree instead of the incremental
	// dirty set, and the session audits the tree once a simulated minute,
	// failing the run on the first violation. Debug escape hatch — the audit
	// events make runs slower and their interleaving can shift same-time
	// event tie-breaks, so outputs are only comparable to other -paranoid
	// runs.
	Paranoid bool
}

// FlashCrowd describes a burst of simultaneous arrivals.
type FlashCrowd struct {
	// At is the virtual time of the burst.
	At time.Duration
	// Size is how many members arrive at once.
	Size int
}

func (c Config) withDefaults() Config {
	if c.Algorithm == 0 {
		c.Algorithm = ROST
	}
	if c.SwitchInterval <= 0 {
		c.SwitchInterval = rost.DefaultSwitchInterval
	}
	if c.Warmup <= 0 {
		c.Warmup = 1800 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 3600 * time.Second
	}
	if c.RootBandwidth <= 0 {
		c.RootBandwidth = churn.DefaultRootBandwidth
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TargetSize <= 0 {
		return fmt.Errorf("omcast: TargetSize = %d, want > 0", c.TargetSize)
	}
	switch c.Algorithm {
	case 0, MinimumDepth, LongestFirst, RelaxedBandwidthOrdered, RelaxedTimeOrdered, ROST:
	default:
		return fmt.Errorf("omcast: unknown algorithm %d", int(c.Algorithm))
	}
	return nil
}

func (o TopologyOptions) toInternal(seed int64) topology.Config {
	cfg := topology.DefaultConfig(seed)
	if o.TransitDomains > 0 {
		cfg.TransitDomains = o.TransitDomains
	}
	if o.TransitNodesPerDomain > 0 {
		cfg.TransitNodesPerDomain = o.TransitNodesPerDomain
	}
	if o.StubDomainsPerTransit > 0 {
		cfg.StubDomainsPerTransit = o.StubDomainsPerTransit
	}
	if o.StubNodesPerDomain > 0 {
		cfg.StubNodesPerDomain = o.StubNodesPerDomain
	}
	return cfg
}

// session is one assembled simulation.
type session struct {
	cfg      Config
	sim      *eventsim.Simulator
	topo     *topology.Topology
	tree     *overlay.Tree
	env      *construct.Env
	strategy construct.Strategy
	protocol *rost.Protocol // nil unless Algorithm == ROST
	referees *rost.Referees // nil unless enabled
	driver   *churn.Driver
	cheaters map[overlay.MemberID]bool // nil unless Cheaters > 0
	// invariantErr records the first paranoid-audit violation; the run
	// surfaces it once the event loop returns.
	invariantErr error
}

// newSession builds the full substrate stack for cfg, with extra hooks
// merged in (used by the streaming layer).
func newSession(cfg Config, extra churn.Hooks) (*session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := topology.New(cfg.Topology.toInternal(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("omcast: building underlay: %w", err)
	}
	s := &session{cfg: cfg, sim: eventsim.New(), topo: topo}
	rootAttach := topo.RandomStub(xrand.NewNamed(cfg.Seed, "source.attach"))
	s.tree, err = overlay.NewTree(rootAttach, cfg.RootBandwidth, topo.Delay)
	if err != nil {
		return nil, fmt.Errorf("omcast: creating tree: %w", err)
	}
	s.env = &construct.Env{
		Rng:            xrand.NewNamed(cfg.Seed, "strategy"),
		Delay:          topo.Delay,
		CandidateCount: construct.DefaultCandidateCount,
	}
	switch cfg.Algorithm {
	case MinimumDepth:
		s.strategy = &construct.MinDepth{Env: s.env}
	case LongestFirst:
		s.strategy = &construct.LongestFirst{Env: s.env}
	case RelaxedBandwidthOrdered:
		s.strategy = construct.NewRelaxedBandwidthOrdered(s.env)
	case RelaxedTimeOrdered:
		s.strategy = construct.NewRelaxedTimeOrdered(s.env)
	case ROST:
		rcfg := rost.Config{
			SwitchInterval:        cfg.SwitchInterval,
			ContributorPriority:   cfg.ContributorPriority,
			DisableBandwidthGuard: cfg.DisableBandwidthGuard,
			SkipVerification:      cfg.DisableClaimVerification,
		}
		if cfg.EnableReferees || cfg.Cheaters > 0 {
			s.referees = rost.NewReferees(s.tree, xrand.NewNamed(cfg.Seed, "referees"), rost.RefereeConfig{})
			rcfg.Referees = s.referees
		}
		s.protocol = rost.New(s.tree, s.env, rcfg)
		s.strategy = s.protocol
	}
	if cfg.Metrics != nil {
		s.sim.Instrument(cfg.Metrics)
		if s.protocol != nil {
			s.protocol.Instrument(cfg.Metrics)
		}
		if s.referees != nil {
			s.referees.Instrument(cfg.Metrics)
		}
	}

	hooks := churn.Hooks{
		OnJoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			if s.protocol != nil {
				s.protocol.Start(sim, m)
			}
			if extra.OnJoin != nil {
				extra.OnJoin(sim, m)
			}
		},
		OnFailure: extra.OnFailure,
		OnDepart: func(sim *eventsim.Simulator, id overlay.MemberID) {
			if s.referees != nil {
				s.referees.Forget(id)
			}
			if extra.OnDepart != nil {
				extra.OnDepart(sim, id)
			}
		},
		OnRejoin: extra.OnRejoin,
	}
	s.driver, err = churn.NewDriver(s.sim, s.tree, topo, s.strategy, churn.Config{
		Seed:           cfg.Seed,
		TargetSize:     cfg.TargetSize,
		Lifetime:       cfg.Lifetime,
		Bandwidth:      cfg.Bandwidth,
		RootBandwidth:  cfg.RootBandwidth,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		PrePopulate:    true,
		SessionAge:     cfg.SessionAge,
		AncestorRejoin: !cfg.DisableAncestorRejoin,
	}, hooks)
	if err != nil {
		return nil, fmt.Errorf("omcast: creating churn driver: %w", err)
	}
	if cfg.Metrics != nil {
		s.driver.Instrument(cfg.Metrics)
	}
	if cfg.FlashCrowd != nil {
		if cfg.FlashCrowd.Size <= 0 || cfg.FlashCrowd.At < 0 {
			return nil, fmt.Errorf("omcast: invalid flash crowd %+v", *cfg.FlashCrowd)
		}
		s.driver.Burst(cfg.FlashCrowd.At, cfg.FlashCrowd.Size)
	}
	if cfg.Paranoid {
		s.tree.SetParanoid(true)
		var audit func(*eventsim.Simulator)
		audit = func(sim *eventsim.Simulator) {
			if s.invariantErr != nil {
				return
			}
			if err := s.tree.CheckInvariants(); err != nil {
				s.invariantErr = fmt.Errorf("omcast: paranoid audit at %v: %w", sim.Now(), err)
				return
			}
			sim.ScheduleAfter(time.Minute, audit)
		}
		s.sim.ScheduleAfter(time.Minute, audit)
	}
	if cfg.Cheaters > 0 {
		if cfg.Algorithm != ROST {
			return nil, fmt.Errorf("omcast: cheater injection targets ROST's switching; algorithm is %v", cfg.Algorithm)
		}
		s.cheaters = make(map[overlay.MemberID]bool)
		s.sim.Schedule(cfg.Warmup, func(sim *eventsim.Simulator) {
			s.topUpCheaters(sim)
		})
	}
	return s, nil
}

// topUpCheaters keeps cfg.Cheaters members marked as BTP inflaters,
// replacing departed ones every ten minutes.
func (s *session) topUpCheaters(sim *eventsim.Simulator) {
	factor := s.cfg.CheatFactor
	if factor <= 0 {
		factor = 50
	}
	// Sweep departed cheaters in ID order; pruning during a map range would
	// be order-nondeterministic.
	ids := make([]overlay.MemberID, 0, len(s.cheaters))
	for id := range s.cheaters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if s.tree.Member(id) == nil {
			delete(s.cheaters, id)
		}
	}
	rng := xrand.NewNamed(s.cfg.Seed^sim.Now().Nanoseconds(), "cheaters")
	for _, m := range s.tree.Sample(rng, 4*s.cfg.Cheaters, nil) {
		if len(s.cheaters) >= s.cfg.Cheaters {
			break
		}
		if s.cheaters[m.ID] {
			continue
		}
		s.cheaters[m.ID] = true
		s.referees.MarkCheater(m.ID, factor)
	}
	sim.ScheduleAfter(10*time.Minute, func(next *eventsim.Simulator) {
		s.topUpCheaters(next)
	})
}

func (s *session) run() error {
	s.driver.Start()
	if err := s.sim.Run(s.driver.Horizon()); err != nil {
		return fmt.Errorf("omcast: simulation failed: %w", err)
	}
	if s.invariantErr != nil {
		return s.invariantErr
	}
	if s.cfg.Paranoid {
		if err := s.tree.CheckInvariantsFull(); err != nil {
			return fmt.Errorf("omcast: paranoid final audit: %w", err)
		}
	}
	return nil
}

// TreeResult reports the tree-level metrics of one run (Figures 4-11).
type TreeResult struct {
	// Algorithm that produced the tree.
	Algorithm Algorithm
	// AvgDisruptions is the Figure 4 metric: streaming disruptions
	// accumulated over the measurement window, averaged over the members
	// present in the steady-state tree at its end.
	AvgDisruptions float64
	// DisruptionCounts holds per-member disruption counts (Figure 5's CDF).
	DisruptionCounts []float64
	// AvgReconnections is the optimizer-induced protocol overhead per
	// member (Figure 10), measured like AvgDisruptions.
	AvgReconnections float64
	// PerLifetimeDisruptions / PerLifetimeReconnections are the alternative
	// estimator: event rates over departed members scaled to the mean
	// lifetime.
	PerLifetimeDisruptions   float64
	PerLifetimeReconnections float64
	// AvgServiceDelayMS is the mean end-to-end overlay delay (Figure 7).
	AvgServiceDelayMS float64
	// AvgStretch is the mean overlay/unicast delay ratio (Figure 8).
	AvgStretch float64
	// AvgSize is the observed steady-state size (the x-axis of the paper's
	// sweeps).
	AvgSize float64
	// Departures counts members measured.
	Departures int
	// Switches, SwitchAborts, LockBackoffs, RejectedClaims report ROST
	// protocol activity (zero for other algorithms).
	Switches       int
	SwitchAborts   int
	LockBackoffs   int
	RejectedClaims int
	// CheaterCount, CheaterMeanDepth and HonestMeanDepth summarise injected
	// cheaters at the end of the run (zero unless Config.Cheaters > 0).
	// With referee verification working, cheaters gain nothing and sit at
	// depths comparable to honest members; without it their inflated claims
	// let them climb toward the source (much smaller mean depth).
	CheaterCount     int
	CheaterMeanDepth float64
	HonestMeanDepth  float64
}

// Run executes one tree-level experiment.
func Run(cfg Config) (TreeResult, error) {
	s, err := newSession(cfg, churn.Hooks{})
	if err != nil {
		return TreeResult{}, err
	}
	if err := s.run(); err != nil {
		return TreeResult{}, err
	}
	return s.treeResult(), nil
}

func (s *session) treeResult() TreeResult {
	r := s.driver.Result()
	out := TreeResult{
		Algorithm:                s.cfg.withDefaults().Algorithm,
		AvgDisruptions:           r.AvgDisruptions,
		DisruptionCounts:         r.DisruptionCounts,
		AvgReconnections:         r.AvgReconnections,
		PerLifetimeDisruptions:   r.PerLifetimeDisruptions,
		PerLifetimeReconnections: r.PerLifetimeReconnections,
		AvgServiceDelayMS:        r.AvgServiceDelayMS,
		AvgStretch:               r.AvgStretch,
		AvgSize:                  r.AvgSize,
		Departures:               r.Departures,
	}
	if s.protocol != nil {
		out.Switches = s.protocol.Switches
		out.SwitchAborts = s.protocol.Aborted
		out.LockBackoffs = s.protocol.LockFailures
		out.RejectedClaims = s.protocol.Rejected
	}
	if len(s.cheaters) > 0 {
		var cheatDepth, cheatN, honestDepth, honestN float64
		s.tree.VisitSubtree(s.tree.Root(), func(m *overlay.Member) {
			if m == s.tree.Root() {
				return
			}
			if s.cheaters[m.ID] {
				cheatDepth += float64(m.Depth())
				cheatN++
			} else {
				honestDepth += float64(m.Depth())
				honestN++
			}
		})
		out.CheaterCount = int(cheatN)
		if cheatN > 0 {
			out.CheaterMeanDepth = cheatDepth / cheatN
		}
		if honestN > 0 {
			out.HonestMeanDepth = honestDepth / honestN
		}
	}
	return out
}

// ScaleResult is a TreeResult plus the observables of the fig-scale family:
// the deterministic event count, and the measurement-harness costs (bytes of
// heap retained per member, wall-clock nanoseconds per event). Only Events is
// deterministic in the seed; the memory and time figures depend on the
// machine and allocator and belong in BENCH artifacts, not figure tables.
type ScaleResult struct {
	TreeResult
	// Events is the number of simulator events fired over the whole run
	// (deterministic in the seed — byte-identical across worker counts).
	Events uint64
	// HeapBytes is the post-GC heap growth across the run: the retained
	// footprint of the session (tree arrays, churn state, kernel queue).
	HeapBytes uint64
	// BytesPerMember is HeapBytes over the observed steady-state size.
	BytesPerMember float64
	// WallNs is the wall-clock cost of the run loop; NsPerEvent divides it
	// by Events.
	WallNs     int64
	NsPerEvent float64
}

// RunScale executes one tree-level experiment and measures its footprint:
// heap growth via runtime.ReadMemStats deltas around the run (with forced
// collections so the delta reads retained bytes, not allocator slack) and
// the wall-clock cost of the event loop. The simulation itself is exactly
// Run — same seed, same events, same TreeResult.
func RunScale(cfg Config) (ScaleResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	s, err := newSession(cfg, churn.Hooks{})
	if err != nil {
		return ScaleResult{}, err
	}
	//lint:ignore no-wallclock reason: harness measurement of the run loop, not simulation output
	start := time.Now()
	if err := s.run(); err != nil {
		return ScaleResult{}, err
	}
	//lint:ignore no-wallclock reason: harness measurement of the run loop, not simulation output
	wall := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	out := ScaleResult{
		TreeResult: s.treeResult(),
		Events:     s.sim.Processed(),
		WallNs:     wall.Nanoseconds(),
	}
	if after.HeapAlloc > before.HeapAlloc {
		out.HeapBytes = after.HeapAlloc - before.HeapAlloc
	}
	if out.AvgSize > 0 {
		out.BytesPerMember = float64(out.HeapBytes) / out.AvgSize
	}
	if out.Events > 0 {
		out.NsPerEvent = float64(out.WallNs) / float64(out.Events)
	}
	return out, nil
}

// Recovery selects how packet losses are repaired (Figures 12-14).
type Recovery int

// Recovery schemes.
const (
	// CER is the paper's scheme: minimum-loss-correlation group selection
	// with striped multi-source repair.
	CER Recovery = iota + 1
	// SingleSource is the baseline: a random recovery list used one node at
	// a time with no bandwidth aggregation.
	SingleSource
	// CERRandomGroup is an ablation: striped multi-source repair over a
	// randomly selected (non-MLC) group.
	CERRandomGroup
)

// String names the recovery scheme.
func (r Recovery) String() string {
	switch r {
	case CER:
		return "CER"
	case SingleSource:
		return "Single-source"
	case CERRandomGroup:
		return "CER (random group)"
	default:
		return fmt.Sprintf("Recovery(%d)", int(r))
	}
}

// StreamConfig parameterises the packet-level layer.
type StreamConfig struct {
	// Recovery scheme; default CER.
	Recovery Recovery
	// GroupSize is the recovery group size K; default 1.
	GroupSize int
	// Buffer is the playback buffer; default 5 s.
	Buffer time.Duration
	// Rate is the stream rate in packets per second; default 10.
	Rate float64
	// ResidualMax bounds members' uniform residual recovery bandwidth in
	// packets per second; default 9.
	ResidualMax float64
}

// StreamResult reports packet-level playback quality.
type StreamResult struct {
	TreeResult
	// AvgStarvingRatio is the mean starving-time ratio (fraction, not
	// percent).
	AvgStarvingRatio float64
	// StarvingRatios holds the per-member ratios.
	StarvingRatios []float64
	// StreamMembers is the number of members contributing ratios.
	StreamMembers int
	// Episodes, RepairRequests, ELNMessages, PacketsRepaired, PacketsLost
	// report recovery activity.
	Episodes        int
	RepairRequests  int
	ELNMessages     int
	PacketsRepaired int
	PacketsLost     int
}

// RunStreaming executes one packet-level experiment on top of a tree-level
// session.
func RunStreaming(cfg Config, scfg StreamConfig) (StreamResult, error) {
	return runStreaming(cfg, scfg, nil, TraceOptions{})
}

// TrackedSeries is the Figure 6/9 time series of one long-lived "typical
// member" that joins once the overlay is in steady state.
type TrackedSeries struct {
	// Minutes since the member joined, with the cumulative number of
	// disruptions and the current service delay at each sample.
	Minutes        []float64
	Disruptions    []int
	ServiceDelayMS []float64
}

// RunTracked executes a tree-level run with a tracked typical member
// (moderate bandwidth, joining at the end of warm-up, observed until the
// end of the run). observe extends the run beyond the configured measure
// window if longer.
func RunTracked(cfg Config, bandwidth float64, observe time.Duration) (TrackedSeries, TreeResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Measure < observe {
		cfg.Measure = observe
	}
	s, err := newSession(cfg, churn.Hooks{})
	if err != nil {
		return TrackedSeries{}, TreeResult{}, err
	}
	tracked := s.driver.Track(cfg.Warmup, bandwidth)
	if err := s.run(); err != nil {
		return TrackedSeries{}, TreeResult{}, err
	}
	series := TrackedSeries{}
	for i, at := range tracked.Times {
		series.Minutes = append(series.Minutes, (at - cfg.Warmup).Minutes())
		series.Disruptions = append(series.Disruptions, tracked.Disruptions[i])
		series.ServiceDelayMS = append(series.ServiceDelayMS, tracked.DelayMS[i])
	}
	return series, s.treeResult(), nil
}

// MultiTreeConfig parameterises the multiple-tree extension (the future
// direction the paper's introduction sketches): the stream is split into
// Stripes MDC descriptions, each delivered over its own tree.
type MultiTreeConfig struct {
	// Stripes is the number of stripe trees (>= 1).
	Stripes int
	// Quorum is how many stripes must arrive on time for watchable quality;
	// 0 means all of them.
	Quorum int
	// Disjoint makes each member interior in exactly one tree
	// (SplitStream-style); otherwise its bandwidth is split evenly.
	Disjoint bool
	// UseROST maintains every stripe tree with BTP switching.
	UseROST bool
}

// MultiTreeResult reports the extension's quality metrics.
type MultiTreeResult struct {
	// FullQualityRatio is the mean fraction of stripe packets delivered on
	// schedule.
	FullQualityRatio float64
	// OutageRatio is the mean fraction of view time below the MDC quorum —
	// the multi-tree analogue of the starving-time ratio.
	OutageRatio float64
	// Members contributed quality samples; Episodes recovery episodes ran.
	Members  int
	Episodes int
	// MaxDepths lists each stripe tree's final height.
	MaxDepths []int
}

// RunMultiTree executes a multiple-tree session. The base Config supplies
// seed, audience size, windows and distributions; Topology is chosen by the
// extension itself (it scales with the audience).
func RunMultiTree(cfg Config, mt MultiTreeConfig) (MultiTreeResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return MultiTreeResult{}, err
	}
	contribution := multitree.SplitContribution
	if mt.Disjoint {
		contribution = multitree.DisjointContribution
	}
	session, err := multitree.NewSession(multitree.Config{
		Stripes:        mt.Stripes,
		Contribution:   contribution,
		QuorumStripes:  mt.Quorum,
		UseROST:        mt.UseROST,
		SwitchInterval: cfg.SwitchInterval,
		Seed:           cfg.Seed,
		TargetSize:     cfg.TargetSize,
		RootBandwidth:  cfg.RootBandwidth,
		Lifetime:       cfg.Lifetime,
		Bandwidth:      cfg.Bandwidth,
		SessionAge:     cfg.SessionAge,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
	})
	if err != nil {
		return MultiTreeResult{}, err
	}
	res, err := session.Run()
	if err != nil {
		return MultiTreeResult{}, err
	}
	return MultiTreeResult{
		FullQualityRatio: res.FullQualityRatio,
		OutageRatio:      res.OutageRatio,
		Members:          res.Members,
		Episodes:         res.Episodes,
		MaxDepths:        res.MaxDepths,
	}, nil
}

// FleetConfig parameterises the federation control plane: many sources,
// each serving several stripe trees, with heartbeat failure detection,
// capacity-aware viewer assignment, bounded source failover, graceful
// draining and cross-tree rebalancing. See internal/fleet for field docs.
type FleetConfig = fleet.Config

// FleetEvent schedules a source kill or drain at a virtual time.
type FleetEvent = fleet.TimedEvent

// FleetBurst is a flash-crowd arrival of Count viewers at once.
type FleetBurst = fleet.Burst

// FleetResult summarises a fleet session: failover/reassignment counts and
// latency percentiles, outage ratio, drain and rebalance activity, final
// per-tree loads and any violated bounds.
type FleetResult = fleet.Result

// RunFleet executes a federation control-plane session. Deterministic in
// FleetConfig.Seed, like every other entry point.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	return fleet.Run(cfg)
}
