package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ruleLockDiscipline checks //guardedby:<mutex> annotations on struct
// fields: every access to an annotated field must happen while the named
// sibling mutex is held on the same base value. The analysis complements the
// race detector — it runs on every push over every path, not just the
// schedules the race tests happen to exercise.
//
// Lock state is tracked linearly through each function body: X.Lock() /
// X.RLock() sets the lock held, X.Unlock() / X.RUnlock() clears it, a
// deferred Unlock keeps it held to function end, and branch joins keep a
// lock only when every falling-through path holds it.
//
// Conventions honored (the repo's existing idiom):
//   - methods whose name ends in "Locked" assume the lock is held; their
//     bodies are exempt, and instead every CALL to one is checked to occur
//     with the receiver's guarding mutex held;
//   - values freshly built from a composite literal in the same function
//     (constructors) are exempt — nothing else can see them yet;
//   - function literals (deferred, goroutine, stored callbacks) are analyzed
//     as separate bodies starting with no locks held.
func ruleLockDiscipline() *Rule {
	return &Rule{
		Name: "lock-discipline",
		Doc:  "check //guardedby:<mutex> struct-field annotations against per-function lock-state analysis",
		check: func(m *Module, cfg *Config, rep *reporter) {
			la := &lockAnalysis{
				rep:     rep,
				guarded: make(map[*types.Var]string),
				structs: make(map[*types.TypeName]map[string]bool),
			}
			for _, pkg := range m.Pkgs {
				la.collectAnnotations(pkg)
			}
			if len(la.guarded) == 0 {
				return
			}
			for _, pkg := range m.Pkgs {
				la.pkg = pkg
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok || fd.Body == nil {
							continue
						}
						la.checkFunc(fd)
					}
				}
			}
		},
	}
}

type lockAnalysis struct {
	rep *reporter
	pkg *Package
	// guarded maps an annotated field object to its guarding mutex name.
	guarded map[*types.Var]string
	// structs maps a struct type to the set of mutex names guarding fields,
	// for the *Locked-call check.
	structs map[*types.TypeName]map[string]bool

	// Per-function state.
	fnName string
	fresh  map[types.Object]bool
}

// collectAnnotations parses //guardedby:<name> comments on struct fields and
// validates that the named mutex exists in the same struct.
func (la *lockAnalysis) collectAnnotations(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := pkg.Info.ObjectOf(ts.Name).(*types.TypeName)
			for _, field := range st.Fields.List {
				mutex := fieldAnnotation(field)
				if mutex == "" {
					continue
				}
				if !structHasMutex(pkg, st, mutex) {
					la.rep.reportf(field.Pos(),
						"//guardedby:%s names no sync.Mutex/sync.RWMutex field of struct %s; fix the annotation",
						mutex, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.ObjectOf(name).(*types.Var); ok {
						la.guarded[v] = mutex
						if tn != nil {
							if la.structs[tn] == nil {
								la.structs[tn] = make(map[string]bool)
							}
							la.structs[tn][mutex] = true
						}
					}
				}
			}
			return true
		})
	}
}

// fieldAnnotation extracts the mutex name from a field's //guardedby:
// comment (doc line above or trailing same-line comment).
func fieldAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if rest, ok := strings.CutPrefix(text, "guardedby:"); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// structHasMutex reports whether the struct literally declares a mutex field
// with the given name.
func structHasMutex(pkg *Package, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return isMutexType(pkg.Info.TypeOf(field.Type))
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// lockSet tracks which mutexes are held, keyed by the rendered base path.
type lockSet map[string]bool

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k := range ls {
		out[k] = true
	}
	return out
}

func (la *lockAnalysis) checkFunc(fd *ast.FuncDecl) {
	name := fd.Name.Name
	if strings.HasSuffix(name, "Locked") {
		return // assumes the lock; call sites are checked instead
	}
	la.fnName = name
	la.fresh = make(map[types.Object]bool)
	la.collectFresh(fd.Body)
	la.block(fd.Body.List, make(lockSet))
}

// collectFresh records locals bound to composite literals (or their address)
// anywhere in the body: freshly constructed values no other goroutine can
// reach yet.
func (la *lockAnalysis) collectFresh(body *ast.BlockStmt) {
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		e := ast.Unparen(rhs)
		if ue, isAddr := e.(*ast.UnaryExpr); isAddr {
			e = ast.Unparen(ue.X)
		}
		if _, isLit := e.(*ast.CompositeLit); isLit {
			if obj := la.pkg.Info.ObjectOf(id); obj != nil {
				la.fresh[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					bind(name, n.Values[i])
				}
			}
		}
		return true
	})
}

// block walks a statement list threading the lock set; reports guarded-field
// accesses made without the required lock. Returns true when the list cannot
// fall through.
func (la *lockAnalysis) block(stmts []ast.Stmt, held lockSet) bool {
	for _, s := range stmts {
		if la.stmt(s, held) {
			return true
		}
	}
	return false
}

func (la *lockAnalysis) stmt(s ast.Stmt, held lockSet) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return la.block(s.List, held)
	case *ast.ExprStmt:
		if key, op := lockOp(la.pkg, s.X); op != "" {
			if op == "lock" {
				held[key] = true
			} else {
				delete(held, key)
			}
			return false
		}
		la.scan(s.X, held)
		return isTerminalCall(s.X)
	case *ast.DeferStmt:
		if _, op := lockOp(la.pkg, s.Call); op == "unlock" {
			return false // deferred Unlock: held to function end
		}
		la.scan(s.Call, held)
		return false
	case *ast.GoStmt:
		la.scan(s.Call, held)
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			la.scan(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			la.scan(e, held)
		}
		for _, e := range s.Lhs {
			la.scan(e, held)
		}
		return false
	case *ast.IncDecStmt:
		la.scan(s.X, held)
		return false
	case *ast.DeclStmt:
		la.scan(s.Decl, held)
		return false
	case *ast.SendStmt:
		la.scan(s.Chan, held)
		la.scan(s.Value, held)
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			la.stmt(s.Init, held)
		}
		la.scan(s.Cond, held)
		thenHeld := held.clone()
		thenTerm := la.block(s.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = la.stmt(s.Else, elseHeld)
		}
		// Join: keep a lock only when every falling-through path holds it.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, thenHeld)
		default:
			intersect(held, thenHeld, elseHeld)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			la.stmt(s.Init, held)
		}
		la.scan(s.Cond, held)
		body := held.clone()
		la.block(s.Body.List, body)
		if s.Post != nil {
			la.stmt(s.Post, body)
		}
		return false
	case *ast.RangeStmt:
		la.scan(s.X, held)
		la.block(s.Body.List, held.clone())
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			la.stmt(s.Init, held)
		}
		la.scan(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					la.scan(e, held)
				}
				la.block(cc.Body, held.clone())
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			la.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				la.block(cc.Body, held.clone())
			}
		}
		return false
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := held.clone()
				if cc.Comm != nil {
					la.stmt(cc.Comm, sub)
				}
				la.block(cc.Body, sub)
			}
		}
		return false
	case *ast.LabeledStmt:
		return la.stmt(s.Stmt, held)
	}
	return false
}

func replace(dst, src lockSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

func intersect(dst, a, b lockSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range a {
		if b[k] {
			dst[k] = true
		}
	}
}

// scan inspects one expression tree for guarded-field accesses and
// *Locked-method calls; nested function literals restart with no locks held.
func (la *lockAnalysis) scan(n ast.Node, held lockSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			la.block(n.Body.List, make(lockSet))
			return false
		case *ast.CallExpr:
			la.checkLockedCall(n, held)
		case *ast.SelectorExpr:
			la.checkAccess(n, held)
		}
		return true
	})
}

// checkAccess verifies one selector expression against the annotations.
func (la *lockAnalysis) checkAccess(sel *ast.SelectorExpr, held lockSet) {
	s, ok := la.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	mutex, guarded := la.guarded[field]
	if !guarded {
		return
	}
	base := sel.X
	if la.isFresh(base) {
		return
	}
	key := la.render(base) + "." + mutex
	if held[key] {
		return
	}
	la.rep.reportf(sel.Sel.Pos(),
		"field %s is //guardedby:%s but accessed in %s without %s.%s held; acquire the lock or move the access into a *Locked method",
		field.Name(), mutex, la.fnName, types.ExprString(base), mutex)
}

// checkLockedCall verifies that calls to *Locked methods of guarded structs
// happen with the guarding mutex held.
func (la *lockAnalysis) checkLockedCall(call *ast.CallExpr, held lockSet) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(fun.Sel.Name, "Locked") {
		return
	}
	s, ok := la.pkg.Info.Selections[fun]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	recv := s.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	mutexes := la.structs[named.Obj()]
	if len(mutexes) != 1 {
		return // zero or ambiguous guards: nothing checkable
	}
	if la.isFresh(fun.X) {
		return
	}
	var mutex string
	for m := range mutexes {
		mutex = m
	}
	key := la.render(fun.X) + "." + mutex
	if !held[key] {
		la.rep.reportf(fun.Sel.Pos(),
			"%s assumes %s.%s is held (the Locked suffix) but %s calls it without acquiring the lock",
			fun.Sel.Name, types.ExprString(fun.X), mutex, la.fnName)
	}
}

// isFresh reports whether the base expression is rooted at a local freshly
// built from a composite literal in this function.
func (la *lockAnalysis) isFresh(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := la.pkg.Info.ObjectOf(x)
			return obj != nil && la.fresh[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return false
		}
	}
}

// render produces a stable per-function key for a base expression, resolving
// identifiers by object identity so shadowing cannot alias two bases.
func (la *lockAnalysis) render(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := la.pkg.Info.ObjectOf(x); obj != nil {
			return fmt.Sprintf("%s@%p", x.Name, obj)
		}
		return x.Name
	case *ast.SelectorExpr:
		return la.render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return la.render(x.X) + "[" + types.ExprString(x.Index) + "]"
	case *ast.StarExpr:
		return la.render(x.X)
	case *ast.UnaryExpr:
		return la.render(x.X)
	default:
		return types.ExprString(e)
	}
}

// lockOp classifies X.Lock()/X.RLock() ("lock") and X.Unlock()/X.RUnlock()
// ("unlock") calls on sync mutex values, returning the held-set key.
func lockOp(pkg *Package, e ast.Expr) (key, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	if !isMutexType(pkg.Info.TypeOf(sel.X)) {
		return "", ""
	}
	la := &lockAnalysis{pkg: pkg}
	return la.render(sel.X), op
}
