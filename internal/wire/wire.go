// Package wire defines the message vocabulary of the live protocol runtime
// (internal/node): the joining handshake, parent/child heartbeats, stream
// packets, Explicit Loss Notification, CER repair exchanges, membership
// gossip, the ROST switching handshake, and the control-delivery acks of the
// retransmit shim. Envelopes travel in one of two codecs (see Codec): the
// versioned binary v1 format (the default on real transports) and a strict
// JSON debug codec — self-describing datagrams, trivially inspectable with
// standard tooling. Receivers tell them apart by the binary magic prefix.
package wire

import (
	"encoding/json"
	"fmt"
)

// Type discriminates protocol messages.
type Type int

// Message types.
const (
	// TypeJoin asks a prospective parent for a slot.
	TypeJoin Type = iota + 1
	// TypeAccept grants a slot (the joiner is now a child).
	TypeAccept
	// TypeReject declines a join (no spare out-degree).
	TypeReject
	// TypeLeave announces a graceful departure to neighbours.
	TypeLeave
	// TypeHeartbeat is the parent/child liveness exchange.
	TypeHeartbeat
	// TypePacket carries one stream packet.
	TypePacket
	// TypeELN is the Explicit Loss Notification: "this gap is not my fault;
	// recovery is happening upstream".
	TypeELN
	// TypeRepairRequest asks a recovery node for missing packets.
	TypeRepairRequest
	// TypeRepairData returns repaired packets.
	TypeRepairData
	// TypeMembershipRequest asks a peer for the members it knows.
	TypeMembershipRequest
	// TypeMembershipReply returns a sample of known members.
	TypeMembershipReply
	// TypeSwitchPropose opens the ROST switching handshake with the parent
	// (carries the initiator's claimed BTP).
	TypeSwitchPropose
	// TypeSwitchAccept locks the parent and approves the exchange.
	TypeSwitchAccept
	// TypeSwitchReject declines (lock held, claim rejected, or condition
	// stale).
	TypeSwitchReject
	// TypeSwitchCommit finalises the exchange; both sides re-point links.
	TypeSwitchCommit
	// TypeAck acknowledges one reliable control message (Ctrl carries the
	// sequence being acked). Acks themselves are fire-and-forget.
	TypeAck
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case TypeJoin:
		return "join"
	case TypeAccept:
		return "accept"
	case TypeReject:
		return "reject"
	case TypeLeave:
		return "leave"
	case TypeHeartbeat:
		return "heartbeat"
	case TypePacket:
		return "packet"
	case TypeELN:
		return "eln"
	case TypeRepairRequest:
		return "repair-request"
	case TypeRepairData:
		return "repair-data"
	case TypeMembershipRequest:
		return "membership-request"
	case TypeMembershipReply:
		return "membership-reply"
	case TypeSwitchPropose:
		return "switch-propose"
	case TypeSwitchAccept:
		return "switch-accept"
	case TypeSwitchReject:
		return "switch-reject"
	case TypeSwitchCommit:
		return "switch-commit"
	case TypeAck:
		return "ack"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Addr identifies a protocol endpoint (transport-specific string: a map key
// for the in-memory transport, host:port for UDP).
type Addr string

// MemberInfo is the gossip record for one member: enough for min-depth
// parent selection (depth, spare slots) and MLC group construction (the
// ancestor path).
type MemberInfo struct {
	Addr Addr `json:"addr"`
	// Depth is the member's layer in the tree.
	Depth int `json:"depth"`
	// Spare is its remaining out-degree.
	Spare int `json:"spare"`
	// Bandwidth is its advertised outbound bandwidth.
	Bandwidth float64 `json:"bandwidth"`
	// Ancestors is the member's root path, nearest first.
	Ancestors []Addr `json:"ancestors,omitempty"`
}

// Envelope is the on-wire frame.
type Envelope struct {
	Type Type `json:"type"`
	From Addr `json:"from"`

	// Join / Accept / Reject.
	Bandwidth float64 `json:"bandwidth,omitempty"` // joiner's advertised bandwidth
	Depth     int     `json:"depth,omitempty"`     // acceptor's depth

	// Heartbeat.
	Seq uint64 `json:"seq,omitempty"`

	// Packet / RepairData.
	Packet  int64  `json:"packet,omitempty"`  // sequence number
	Payload []byte `json:"payload,omitempty"` // opaque media bytes

	// ELN / RepairRequest: the missing range [FirstMissing, LastMissing].
	FirstMissing int64 `json:"first_missing,omitempty"`
	LastMissing  int64 `json:"last_missing,omitempty"`
	// Chain lists further recovery nodes for NACK forwarding.
	Chain []Addr `json:"chain,omitempty"`
	// Requester is the original repair requester when a request is
	// forwarded along the chain (From is always the immediate sender).
	Requester Addr `json:"requester,omitempty"`
	// Epsilon is the responder's residual bandwidth share already consumed
	// (striping offset) when a request is forwarded along the chain.
	Epsilon float64 `json:"epsilon,omitempty"`

	// Membership gossip.
	Members []MemberInfo `json:"members,omitempty"`
	// Limit bounds a membership reply.
	Limit int `json:"limit,omitempty"`

	// Switch handshake.
	BTP float64 `json:"btp,omitempty"` // initiator's claimed bandwidth-time product
	// NewParent tells a re-pointed child where to attach after a commit.
	NewParent Addr `json:"new_parent,omitempty"`

	// Ctrl is the reliable-delivery sequence of the retransmit shim: non-zero
	// on control-class messages the sender wants acked, and on the Ack that
	// answers one. Zero means fire-and-forget.
	Ctrl uint64 `json:"ctrl,omitempty"`
}

// ControlClass reports whether a message type belongs to the reliable control
// class: the handshakes whose loss stalls the protocol into a timeout cycle
// (join/accept/reject/leave, membership gossip, ROST switching, repair
// requests). Data-class traffic — stream packets, repair data, heartbeats,
// ELN and the acks themselves — is periodic or best-effort by design and
// stays fire-and-forget.
func ControlClass(t Type) bool {
	switch t {
	case TypeJoin, TypeAccept, TypeReject, TypeLeave,
		TypeMembershipRequest, TypeMembershipReply, TypeRepairRequest,
		TypeSwitchPropose, TypeSwitchAccept, TypeSwitchReject, TypeSwitchCommit:
		return true
	}
	return false
}

// Encode serialises the envelope.
func Encode(env Envelope) ([]byte, error) {
	b, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("wire: encoding %v: %w", env.Type, err)
	}
	return b, nil
}

// DecodeRaw parses a JSON envelope WITHOUT semantic validation: only the
// datagram size cap, JSON well-formedness and strict key discipline are
// enforced. Key discipline closes encoding/json's laxity: a key that matches
// a field only case-insensitively, or appears twice, is rejected (reason
// "field") instead of silently bound — an attacker must produce the exact
// canonical encoding, not one of many aliases. Everything in the result is
// attacker-controlled until Validate accepts it — which is exactly how the
// wire-taint lint rule treats DecodeRaw results. Use Decode unless you are a
// tool (fuzzer, adversary model, wire inspector) that needs the
// pre-validation view.
func DecodeRaw(b []byte) (Envelope, error) {
	if len(b) > MaxDatagram {
		return Envelope{}, &ValidationError{Reason: ReasonSize,
			Detail: fmt.Sprintf("datagram %d bytes > %d", len(b), MaxDatagram)}
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return Envelope{}, fmt.Errorf("wire: decoding: %w", err)
	}
	// Lenient parse first so a strict-key reject still names a sender the
	// guard layer can charge.
	if err := strictKeys(b, env.Type); err != nil {
		return env, err
	}
	return env, nil
}

// Decode parses an envelope and runs the full semantic validators (see
// Validate): every envelope it returns with a nil error is one an honest
// node could have sent. On a validation failure the partially decoded
// envelope is returned alongside the error so the caller can attribute the
// misbehavior to the claimed sender (the guard layer in internal/node keys
// its misbehavior scores on this); on a JSON syntax failure the envelope is
// zero. Classify errors with Reason.
func Decode(b []byte) (Envelope, error) {
	env, err := DecodeRaw(b)
	if err != nil {
		return env, err
	}
	if err := Validate(env); err != nil {
		return env, err
	}
	return env, nil
}
