package tracing

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestPerfettoStructure validates the export structurally, per the
// acceptance criteria: required ph/ts/pid/tid fields on every event and
// monotonic per-track timestamps.
func TestPerfettoStructure(t *testing.T) {
	var c collect
	tr := New(11, &c)
	// Two sim members plus one live-node span, out of time order on
	// purpose: the exporter must sort within each track.
	ep := tr.Start(KindRejoin, 2, 5*time.Second)
	ep.Child(KindAttempt, 2, 6*time.Second).End(7*time.Second, "accepted")
	ep.End(7*time.Second, "reattached")
	tr.Start(KindRepair, 1, 3*time.Second).AttrInt("first", 10).End(4*time.Second, "filled")
	tr.Start(KindStall, 2, time.Second).End(2*time.Second, "recovered")
	ln := NewNode(11, "127.0.0.1:9000", &c)
	ln.Start(KindJoin, 0, 0).End(time.Second, "accepted")

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, c.spans); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	lastTs := map[float64]float64{} // tid -> last ts
	names := map[string]bool{}
	var slices int
	for i, ev := range file.TraceEvents {
		for _, req := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[req]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, req, ev)
			}
		}
		ph := ev["ph"].(string)
		tid := ev["tid"].(float64)
		ts := ev["ts"].(float64)
		switch ph {
		case "M":
			args := ev["args"].(map[string]any)
			names[args["name"].(string)] = true
		case "X":
			slices++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("slice %d missing dur: %v", i, ev)
			}
			if prev, ok := lastTs[tid]; ok && ts < prev {
				t.Fatalf("track %v timestamps not monotonic: %v after %v", tid, ts, prev)
			}
			lastTs[tid] = ts
		default:
			t.Fatalf("unexpected ph %q", ph)
		}
	}
	if slices != len(c.spans) {
		t.Fatalf("%d slices for %d spans", slices, len(c.spans))
	}
	for _, want := range []string{"member 1", "member 2", "127.0.0.1:9000"} {
		if !names[want] {
			t.Errorf("missing thread_name track %q (have %v)", want, names)
		}
	}
}

// TestPerfettoDeterministic pins byte-identical output for identical input.
func TestPerfettoDeterministic(t *testing.T) {
	mint := func() []byte {
		var c collect
		tr := New(7, &c)
		ep := tr.Start(KindRepair, 3, time.Second)
		ep.Child(KindFetch, 3, time.Second).AttrInt("server", 5).End(2*time.Second, "arrived")
		ep.End(2*time.Second, "filled")
		var buf bytes.Buffer
		if err := WritePerfetto(&buf, c.spans); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mint(), mint()) {
		t.Fatal("perfetto export differs across identical runs")
	}
}
