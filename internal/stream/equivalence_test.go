package stream

import (
	"testing"
	"time"

	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/tracing"
	"omcast/internal/xrand"
)

// TestIntervalPathMatchesTracedPath is the property test behind the
// interval-accounting rewrite: over randomized small overlays and failure
// schedules, the compact path (sorted slacks + binary search + spanSet) must
// produce bit-identical results to the historical per-packet loop, which
// survives as the tracing path. Scenarios include overlapping failure
// windows, repeat failures of the same subtree, late joiners and partial
// recovery bandwidth.
func TestIntervalPathMatchesTracedPath(t *testing.T) {
	type outcome struct {
		res      Result
		episodes int
		eln      int
		requests int
		repaired int
		lost     int
	}
	for seed := int64(0); seed < 12; seed++ {
		run := func(traced bool) outcome {
			srng := xrand.New(4000 + seed) // scenario shape, shared by both runs
			tree, err := overlay.NewTree(0, 100, delayFn)
			if err != nil {
				t.Fatal(err)
			}
			attach := topology.NodeID(1)
			mk := func(parent *overlay.Member, bw float64) *overlay.Member {
				m := tree.NewMember(attach, bw, 0)
				attach++
				if err := tree.Attach(m, parent); err != nil {
					t.Fatal(err)
				}
				return m
			}
			nRelays := 2 + srng.Intn(3)
			var relays, leaves, helpers []*overlay.Member
			for i := 0; i < nRelays; i++ {
				r := mk(tree.Root(), 6)
				relays = append(relays, r)
				for j := 0; j < 1+srng.Intn(3); j++ {
					c := mk(r, 4)
					leaves = append(leaves, c)
					if srng.Intn(2) == 0 {
						leaves = append(leaves, mk(c, 2))
					}
				}
			}
			for i := 0; i < srng.Intn(4); i++ {
				helpers = append(helpers, mk(tree.Root(), 2))
			}
			cfg := Config{GroupSize: len(helpers), Striped: seed%2 == 0}
			if traced {
				cfg.Trace = tracing.New(1, tracing.RecorderFunc(func(tracing.Span) {}))
			}
			m := NewModel(tree, delayFn, &fixedSelector{group: helpers}, xrand.New(9000+seed), cfg)
			tree.VisitSubtree(tree.Root(), func(mem *overlay.Member) {
				if mem != tree.Root() {
					m.Register(mem, 0)
				}
			})
			// One late joiner under the first relay: its viewStart postdates
			// the first failure, so the skip branch is exercised.
			late := mk(relays[0], 1)
			m.Register(late, 150*time.Second)
			// Failure schedule: monotone times, overlapping windows (gaps of
			// 2-30 s vs a 15 s outage), repeat victims included.
			now := 100 * time.Second
			for i := 0; i < 4+srng.Intn(4); i++ {
				victim := relays[srng.Intn(len(relays))]
				m.OnFailure(victim, now)
				now += time.Duration(2+srng.Intn(29)) * time.Second
			}
			// Depart a couple of members mid-run, finish the rest.
			for i := 0; i < 2 && i < len(leaves); i++ {
				m.Depart(leaves[i].ID, now+100*time.Second)
			}
			m.Finish(1000 * time.Second)
			return outcome{
				res:      m.Result(),
				episodes: m.Episodes,
				eln:      m.ELNMessages,
				requests: m.RepairRequests,
				repaired: m.PacketsRepaired,
				lost:     m.PacketsLost,
			}
		}
		compact, legacy := run(false), run(true)
		if compact.episodes != legacy.episodes || compact.eln != legacy.eln ||
			compact.requests != legacy.requests {
			t.Fatalf("seed %d: episode counters diverge: compact %+v legacy %+v", seed, compact, legacy)
		}
		if compact.repaired != legacy.repaired || compact.lost != legacy.lost {
			t.Fatalf("seed %d: packet outcomes diverge: compact repaired=%d lost=%d, legacy repaired=%d lost=%d",
				seed, compact.repaired, compact.lost, legacy.repaired, legacy.lost)
		}
		if len(compact.res.Ratios) != len(legacy.res.Ratios) {
			t.Fatalf("seed %d: ratio counts diverge: %d vs %d", seed, len(compact.res.Ratios), len(legacy.res.Ratios))
		}
		for i := range compact.res.Ratios {
			if compact.res.Ratios[i] != legacy.res.Ratios[i] {
				t.Fatalf("seed %d: ratio[%d] = %g (compact) vs %g (legacy)",
					seed, i, compact.res.Ratios[i], legacy.res.Ratios[i])
			}
		}
	}
}
