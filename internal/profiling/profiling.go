// Package profiling backs the CLIs' -cpuprofile and -memprofile flags and
// tags simulation runs with pprof labels, so wall-clock kernel cost — which
// the deterministic metrics backend deliberately never measures — is
// observable through the standard Go profiling toolchain instead.
package profiling

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session owns the profile files opened by Start. The zero value (no
// profiling requested) is valid and Stop on it is a no-op.
type Session struct {
	cpu     *os.File
	memPath string
}

// Start begins CPU profiling into cpuPath (if non-empty) and remembers
// memPath for a heap profile at Stop. Empty paths disable each profile.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: starting cpu profile: %w", err)
		}
		s.cpu = f
	}
	return s, nil
}

// Stop finishes the CPU profile and writes the heap profile, if requested.
func (s *Session) Stop() error {
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			return fmt.Errorf("profiling: closing cpu profile: %w", err)
		}
		s.cpu = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("profiling: creating mem profile: %w", err)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("profiling: writing mem profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("profiling: closing mem profile: %w", err)
		}
		s.memPath = ""
	}
	return nil
}

// Do runs fn with an "experiment" pprof label, so CPU samples taken inside
// kernel dispatch attribute to the experiment that scheduled them.
func Do(name string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("experiment", name), func(context.Context) {
		fn()
	})
}
