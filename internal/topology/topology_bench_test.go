package topology

import (
	"testing"

	"omcast/internal/xrand"
)

// benchTopo builds the paper-scale topology once per benchmark binary.
var benchTopo *Topology

func getBenchTopo(b *testing.B) *Topology {
	b.Helper()
	if benchTopo == nil {
		topo, err := New(DefaultConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		benchTopo = topo
	}
	return benchTopo
}

// BenchmarkGenerate measures building the 15600-router topology (including
// both APSP stages).
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(DefaultConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayOracle measures the O(1) hierarchical distance query — the
// hot path of every join tie-break and stretch sample.
func BenchmarkDelayOracle(b *testing.B) {
	topo := getBenchTopo(b)
	rng := xrand.New(2)
	pairs := make([][2]NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]NodeID{topo.RandomStub(rng), topo.RandomStub(rng)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		_ = topo.Delay(p[0], p[1])
	}
}

// BenchmarkDijkstraFull is the alternative the oracle replaces: one
// full-graph single-source shortest path over 15600 routers.
func BenchmarkDijkstraFull(b *testing.B) {
	topo := getBenchTopo(b)
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.DijkstraFrom(topo.RandomStub(rng))
	}
}
