package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgNameUse resolves an expression to the import path of the package it
// names, or "" when the expression is not a package qualifier.
func pkgNameUse(pkg *Package, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// inspect walks every file of the package.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}

// perPackage adapts a package-scoped syntactic check to the module-wide Rule
// shape: the check runs over every package the scope predicate admits.
func perPackage(applies func(cfg *Config, path string) bool, check func(pkg *Package, rep *reporter)) func(*Module, *Config, *reporter) {
	return func(m *Module, cfg *Config, rep *reporter) {
		for _, pkg := range m.Pkgs {
			if applies(cfg, pkg.Path) {
				check(pkg, rep)
			}
		}
	}
}

// ---- no-wallclock ----

// wallclockFuncs are the time functions that read or observe the wall clock
// (or create wall-clock-driven timers). Pure-value helpers such as
// time.Duration arithmetic, time.Unix and the formatting API stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func ruleNoWallclock() *Rule {
	return &Rule{
		Name: "no-wallclock",
		Doc:  "forbid wall-clock reads (time.Now, time.Since, timers) in deterministic simulation code",
		check: perPackage(
			func(cfg *Config, path string) bool {
				return matchPackage(path, cfg.SimPackages) || matchPackage(path, cfg.WallclockExtra)
			},
			func(pkg *Package, rep *reporter) {
				inspect(pkg, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if pkgNameUse(pkg, sel.X) == "time" && wallclockFuncs[sel.Sel.Name] {
						rep.reportf(sel.Pos(),
							"time.%s reads the wall clock; deterministic code must take time from the virtual clock (eventsim.Simulator.Now)",
							sel.Sel.Name)
					}
					return true
				})
			}),
	}
}

// ---- no-global-rand ----

// globalRandFuncs are the package-level math/rand functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) remain legal:
// seeded *rand.Rand streams are exactly what internal/xrand threads through
// the simulation.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions, should the module ever migrate.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

func ruleNoGlobalRand() *Rule {
	return &Rule{
		Name: "no-global-rand",
		Doc:  "forbid package-level math/rand calls; thread seeded *rand.Rand streams from internal/xrand",
		check: perPackage(
			func(cfg *Config, path string) bool {
				return true // the whole module must stay replay-safe
			},
			func(pkg *Package, rep *reporter) {
				inspect(pkg, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					p := pkgNameUse(pkg, sel.X)
					if (p == "math/rand" || p == "math/rand/v2") && globalRandFuncs[sel.Sel.Name] {
						rep.reportf(sel.Pos(),
							"rand.%s draws from the process-global source and breaks seed replay; use a seeded stream from internal/xrand",
							sel.Sel.Name)
					}
					return true
				})
			}),
	}
}

// ---- map-order ----

func ruleMapOrder() *Rule {
	return &Rule{
		Name: "map-order",
		Doc:  "flag map iteration whose body feeds simulation results (schedules, appends, RNG draws, state writes)",
		check: perPackage(
			func(cfg *Config, path string) bool {
				return matchPackage(path, cfg.SimPackages)
			},
			checkMapOrder),
	}
}

func checkMapOrder(pkg *Package, rep *reporter) {
	inspect(pkg, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isKeyCollection(pkg, rs) {
			return true
		}
		if why := orderSensitive(pkg, rs.Body); why != "" {
			rep.reportf(rs.Pos(),
				"map iteration order is nondeterministic and this body %s; iterate over sorted keys instead, or add //lint:ignore map-order reason: <why> if the effect is provably order-independent",
				why)
		}
		return true
	})
}

// isKeyCollection recognizes the one canonically safe shape, collecting keys
// for subsequent sorting:
//
//	for k := range m { keys = append(keys, k) }
//
// The body must be a single append of the range variables back onto the same
// slice.
func isKeyCollection(pkg *Package, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Tok != token.ASSIGN {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pkg, call.Fun, "append") || len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok || pkg.Info.ObjectOf(dst) == nil || pkg.Info.ObjectOf(dst) != pkg.Info.ObjectOf(lhs) {
		return false
	}
	for _, arg := range call.Args[1:] {
		if !isRangeVar(pkg, rs, arg) {
			return false
		}
	}
	return true
}

func isRangeVar(pkg *Package, rs *ast.RangeStmt, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if vid, ok := v.(*ast.Ident); ok && pkg.Info.ObjectOf(vid) == obj {
			return true
		}
	}
	return false
}

func isBuiltin(pkg *Package, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// schedulerMethods are method names that enqueue simulation events.
var schedulerMethods = map[string]bool{
	"Schedule": true, "ScheduleAfter": true, "ScheduleAt": true, "Burst": true,
}

// orderSensitive classifies a map-range body: it returns a short description
// of the first order-sensitive effect found, or "" when the body looks
// order-independent (pure reads, local counters).
func orderSensitive(pkg *Package, body *ast.BlockStmt) string {
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pkg, n.Fun, "append"):
				why = "appends to a slice (element order will vary run to run)"
			case isBuiltin(pkg, n.Fun, "delete"):
				why = "mutates a map mid-iteration"
			case isSchedulerCall(pkg, n):
				why = "schedules events (event sequence numbers will vary run to run)"
			case consumesRNG(pkg, n):
				why = "consumes random numbers (the stream advances in varying order)"
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isNonLocalTarget(lhs) {
					why = "writes through a selector or index (mutating shared state in varying order)"
				}
			}
		case *ast.IncDecStmt:
			if isNonLocalTarget(n.X) {
				why = "writes through a selector or index (mutating shared state in varying order)"
			}
		case *ast.SendStmt:
			why = "sends on a channel"
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				why = "returns a value chosen by iteration order"
			}
		}
		return why == ""
	})
	return why
}

func isSchedulerCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !schedulerMethods[sel.Sel.Name] {
		return false
	}
	// Only method calls count (a package-level helper named Schedule in a
	// non-sim package would be caught when that package is linted).
	_, isMethod := pkg.Info.Selections[sel]
	return isMethod
}

// consumesRNG reports whether the call's receiver or any argument is a
// random stream (*xrand.Source or *rand.Rand).
func consumesRNG(pkg *Package, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isRNGType(pkg.Info.TypeOf(sel.X)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isRNGType(pkg.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

func isRNGType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkgName, typeName := named.Obj().Pkg().Name(), named.Obj().Name()
	return (pkgName == "xrand" && typeName == "Source") ||
		(pkgName == "rand" && typeName == "Rand")
}

// isNonLocalTarget reports whether an assignment target reaches beyond a
// plain local variable (field writes, map/slice element writes, pointer
// dereferences) — the shapes that can leak iteration order into shared state.
func isNonLocalTarget(expr ast.Expr) bool {
	switch expr.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// ---- no-goroutine-in-sim ----

func ruleNoGoroutineInSim() *Rule {
	return &Rule{
		Name: "no-goroutine-in-sim",
		Doc:  "forbid goroutines, channels and sync primitives inside the single-threaded simulation kernel",
		check: perPackage(
			func(cfg *Config, path string) bool {
				return matchPackage(path, cfg.SimPackages)
			},
			func(pkg *Package, rep *reporter) {
				inspect(pkg, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						rep.reportf(n.Pos(), "go statement in the simulation kernel; the kernel is single-threaded by design (concurrency belongs in internal/node and cmd)")
					case *ast.SelectStmt:
						rep.reportf(n.Pos(), "select statement in the simulation kernel; the kernel is single-threaded by design")
					case *ast.SendStmt:
						rep.reportf(n.Pos(), "channel send in the simulation kernel; the kernel is single-threaded by design")
					case *ast.UnaryExpr:
						if n.Op == token.ARROW {
							rep.reportf(n.Pos(), "channel receive in the simulation kernel; the kernel is single-threaded by design")
						}
					case *ast.ChanType:
						rep.reportf(n.Pos(), "channel type in the simulation kernel; the kernel is single-threaded by design")
					case *ast.SelectorExpr:
						if p := pkgNameUse(pkg, n.X); p == "sync" || p == "sync/atomic" {
							rep.reportf(n.Pos(), "sync.%s in the simulation kernel; the kernel is single-threaded by design (concurrency belongs in internal/node and cmd)", n.Sel.Name)
						}
					}
					return true
				})
			}),
	}
}

// ---- float-accum ----

func ruleFloatAccum() *Rule {
	return &Rule{
		Name: "float-accum",
		Doc:  "flag ==/!= between floating-point expressions in metric/statistics code",
		check: perPackage(
			func(cfg *Config, path string) bool {
				return matchPackage(path, cfg.FloatPackages)
			},
			func(pkg *Package, rep *reporter) {
				inspect(pkg, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					if !isFloatExpr(pkg, be.X) || !isFloatExpr(pkg, be.Y) {
						return true
					}
					// Comparing against an exact constant (0, 1, math.Inf) is the
					// conventional sentinel-check idiom and stays legal; only
					// variable-to-variable equality is flagged.
					if isConstExpr(pkg, be.X) || isConstExpr(pkg, be.Y) {
						return true
					}
					rep.reportf(be.OpPos,
						"%s between accumulated floating-point values rarely means exact equality; compare with a tolerance, or add //lint:ignore float-accum reason: <why> if exactness is intended",
						be.Op)
					return true
				})
			}),
	}
}

func isFloatExpr(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	return ok && tv.Value != nil
}
