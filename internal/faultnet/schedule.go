package faultnet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Action names a scheduled fault.
type Action string

// Schedule actions. "rule" swaps a link's fault rule, "partition"/"heal"
// toggle a blackhole between two endpoints, "crash"/"restart" take a whole
// node down and back up.
const (
	ActionRule      Action = "rule"
	ActionPartition Action = "partition"
	ActionHeal      Action = "heal"
	ActionCrash     Action = "crash"
	ActionRestart   Action = "restart"
)

// LinkRule binds a static fault rule to the links matching From→To (either
// side may be "*"). Symmetric also applies it To→From.
type LinkRule struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Symmetric bool   `json:"symmetric,omitempty"`
	Rule      Rule   `json:"rule"`
}

// Event is one timed fault. At is a virtual offset from scenario start; an
// Event with Until > At automatically expands into its own reversal
// (partition→heal, crash→restart, rule→clear) at Until.
type Event struct {
	At     Duration `json:"at"`
	Until  Duration `json:"until,omitempty"`
	Action Action   `json:"action"`
	// From/To select links for rule/partition/heal ("*" wildcards allowed).
	From      string `json:"from,omitempty"`
	To        string `json:"to,omitempty"`
	Symmetric bool   `json:"symmetric,omitempty"`
	// Node selects the target of crash/restart.
	Node string `json:"node,omitempty"`
	// Rule is the rule installed by ActionRule.
	Rule *Rule `json:"rule,omitempty"`
}

// Schedule is the declarative top-level fault plan: a master seed, an
// optional rule for every link, static per-link rules, and timed events.
type Schedule struct {
	Seed        int64      `json:"seed,omitempty"`
	DefaultRule *Rule      `json:"default_rule,omitempty"`
	Links       []LinkRule `json:"links,omitempty"`
	Events      []Event    `json:"events,omitempty"`
}

// Parse decodes a JSON schedule strictly (unknown fields are errors, so a
// typo'd probability never silently yields a clean network) and validates it.
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faultnet: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks every rule and event for internal consistency.
func (s *Schedule) Validate() error {
	if s.DefaultRule != nil {
		if err := s.DefaultRule.Validate(); err != nil {
			return fmt.Errorf("default_rule: %w", err)
		}
	}
	for i, lr := range s.Links {
		if lr.From == "" || lr.To == "" {
			return fmt.Errorf("links[%d]: from and to are required", i)
		}
		if err := lr.Rule.Validate(); err != nil {
			return fmt.Errorf("links[%d]: %w", i, err)
		}
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("events[%d]: negative at", i)
		}
		if ev.Until != 0 && ev.Until <= ev.At {
			return fmt.Errorf("events[%d]: until %s not after at %s", i, ev.Until, ev.At)
		}
		switch ev.Action {
		case ActionRule:
			if ev.From == "" || ev.To == "" {
				return fmt.Errorf("events[%d]: rule needs from and to", i)
			}
			if ev.Rule == nil {
				return fmt.Errorf("events[%d]: rule action needs a rule", i)
			}
			if err := ev.Rule.Validate(); err != nil {
				return fmt.Errorf("events[%d]: %w", i, err)
			}
		case ActionPartition, ActionHeal:
			if ev.From == "" || ev.To == "" {
				return fmt.Errorf("events[%d]: %s needs from and to", i, ev.Action)
			}
		case ActionCrash, ActionRestart:
			if ev.Node == "" {
				return fmt.Errorf("events[%d]: %s needs node", i, ev.Action)
			}
		default:
			return fmt.Errorf("events[%d]: unknown action %q", i, ev.Action)
		}
	}
	return nil
}

// Change is one fully expanded schedule step. Seq is the tiebreak within an
// instant: changes at equal T apply in Seq order, making the plan a total
// order regardless of map iteration or goroutine scheduling.
type Change struct {
	T         time.Duration
	Seq       int
	Action    Action
	From, To  string
	Symmetric bool
	Node      string
	Rule      Rule
	// Clear marks an ActionRule change that removes the event rule (the
	// automatic reversal of a rule event with Until set).
	Clear bool
}

// String renders the canonical plan line for the change.
func (c Change) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s #%d %s", c.T, c.Seq, c.Action)
	switch c.Action {
	case ActionCrash, ActionRestart:
		fmt.Fprintf(&b, " node=%s", c.Node)
	default:
		fmt.Fprintf(&b, " %s>%s", c.From, c.To)
		if c.Symmetric {
			b.WriteString(" sym")
		}
		if c.Action == ActionRule {
			if c.Clear {
				b.WriteString(" clear")
			} else {
				fmt.Fprintf(&b, " [%s]", c.Rule)
			}
		}
	}
	return b.String()
}

// Expand flattens the schedule's events — including the implicit reversals
// of Until — into a single list ordered by (T, Seq). Expansion is a pure
// function of the schedule: two calls always return identical plans.
func (s *Schedule) Expand() []Change {
	var out []Change
	for _, ev := range s.Events {
		c := Change{
			T: ev.At.D(), Action: ev.Action,
			From: ev.From, To: ev.To, Symmetric: ev.Symmetric, Node: ev.Node,
		}
		if ev.Rule != nil {
			c.Rule = *ev.Rule
		}
		out = append(out, c)
		if ev.Until > 0 {
			r := Change{
				T:    ev.Until.D(),
				From: ev.From, To: ev.To, Symmetric: ev.Symmetric, Node: ev.Node,
			}
			switch ev.Action {
			case ActionPartition:
				r.Action = ActionHeal
			case ActionCrash:
				r.Action = ActionRestart
			case ActionRule:
				r.Action = ActionRule
				r.Clear = true
			default:
				continue // heal/restart have no reversal
			}
			out = append(out, r)
		}
	}
	// Stable-sort by virtual time, then stamp Seq: the tiebreak preserves
	// declaration order for simultaneous changes.
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	for i := range out {
		out[i].Seq = i
	}
	return out
}

// FormatPlan renders the expanded schedule as a byte-stable text block — the
// artifact compared across runs to prove plan determinism.
func (s *Schedule) FormatPlan() string {
	var b strings.Builder
	if s.DefaultRule != nil {
		fmt.Fprintf(&b, "default [%s]\n", *s.DefaultRule)
	}
	for _, lr := range s.Links {
		sym := ""
		if lr.Symmetric {
			sym = " sym"
		}
		fmt.Fprintf(&b, "link %s>%s%s [%s]\n", lr.From, lr.To, sym, lr.Rule)
	}
	for _, c := range s.Expand() {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// StaticRule resolves the rule for the from→to link before any events fire:
// the most specific matching LinkRule wins (later entries beat earlier ones),
// falling back to DefaultRule, then to a clean link.
func (s *Schedule) StaticRule(from, to string) Rule {
	rule := Rule{}
	if s.DefaultRule != nil {
		rule = *s.DefaultRule
	}
	for _, lr := range s.Links {
		if Match(lr.From, from) && Match(lr.To, to) {
			rule = lr.Rule
		} else if lr.Symmetric && Match(lr.From, to) && Match(lr.To, from) {
			rule = lr.Rule
		}
	}
	return rule
}
