// Package tracing is the causal span layer beneath the trace stream: where
// the JSONL tracer records point events (a member joined, a packet was
// lost), tracing records *episodes* — a rejoin from failure detection
// through per-attempt join requests to reattachment, a CER repair from gap
// detection through striped per-peer fetches to filled-or-abandoned, a ROST
// switch from initiation to commit, a starvation window from first missed
// playback slot to recovery. The paper's headline resilience metrics
// (service interruption, starving-time ratio — §5 of TanJS06) are episode
// durations, so spans make them first-class timelines instead of artifacts
// of post-hoc scripting.
//
// The package is deliberately sim-safe (it lives inside the lint tool's
// deterministic scope): no wall clock, no map iteration order leaks, no
// global counters. Span IDs derive from (seed, track, per-track sequence)
// via a splitmix64-style mix, so a trace is byte-identical across reruns
// and across `-workers` values — the worker pool never interleaves span
// emission because every span of a run is produced by that run's own
// single-threaded simulator.
//
// A Tracer is NOT safe for concurrent use; each owner (one simulation run,
// one live node) serialises access — the live node does so under its state
// mutex, mirroring how its metrics instruments are updated.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// SchemaVersion is stamped into every JSONL envelope as "v" so downstream
// consumers can detect incompatible producers instead of misparsing them.
const SchemaVersion = 1

// Span kinds emitted by the instrumented layers. The analyzer and the
// Perfetto exporter treat kinds generically; these constants exist so the
// producers and the docs cannot drift apart silently.
const (
	KindJoin    = "join"    // live node boot-time attach episode
	KindRejoin  = "rejoin"  // post-failure reattach episode
	KindAttempt = "attempt" // one join request within a join/rejoin episode
	KindRepair  = "repair"  // CER gap-recovery episode
	KindDetect  = "detect"  // failure/gap detection window within an episode
	KindFetch   = "fetch"   // one recovery server's striped share of a repair
	KindStall   = "stall"   // playback starvation window
	KindSwitch  = "switch"  // ROST tree-switch decision
	KindFault   = "fault"   // faultnet-injected fault window (annotation)

	// Fleet-layer kinds (the federation control plane in internal/fleet).
	KindFailover = "failover" // one viewer's source-loss (or drain) reassignment episode
	KindAssign   = "assign"   // one assignment attempt within a failover episode
)

// Attr is one key/value annotation on a span. Values are strings so the
// wire shape stays closed; use the SpanBuilder helpers for numbers.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span is one completed episode (or stage of one). Start and End are
// seconds on the owner's clock: virtual time in the simulator, time since
// node start on a live node. Instantaneous decisions (a rejected switch
// claim) have Start == End.
type Span struct {
	ID      string  `json:"id"`
	Parent  string  `json:"parent,omitempty"`
	Kind    string  `json:"kind"`
	Member  int64   `json:"member"`
	Node    string  `json:"node,omitempty"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Outcome string  `json:"outcome"`
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// Duration returns End-Start in seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Recorder receives completed spans. Implementations: the sim tracer
// (re-encoding spans as trace events), the flight recorder ring, test
// collectors.
type Recorder interface {
	Record(Span)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(Span)

// Record implements Recorder.
func (f RecorderFunc) Record(sp Span) { f(sp) }

// Tracer mints spans with deterministic IDs. A nil *Tracer is a valid
// disabled tracer: Start returns a nil builder and every builder method on
// nil is a no-op that allocates nothing, so instrumented hot paths pay one
// pointer check when tracing is off.
type Tracer struct {
	seed     int64
	node     string
	nodeMix  uint64
	sink     Recorder
	seqs     map[int64]uint64
	reusable SpanBuilder
	inUse    bool
}

// New returns a tracer whose span IDs derive from seed and whose completed
// spans go to sink. Returns nil (the disabled tracer) when sink is nil.
func New(seed int64, sink Recorder) *Tracer {
	return NewNode(seed, "", sink)
}

// NewNode is New for a live node: node (its address) is stamped on every
// span and mixed into the ID derivation so two nodes sharing a seed still
// mint distinct IDs.
func NewNode(seed int64, node string, sink Recorder) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{
		seed:    seed,
		node:    node,
		nodeMix: hashString(node),
		sink:    sink,
		seqs:    make(map[int64]uint64),
	}
}

// Start opens a root span. The returned builder must be finished with End
// (or dropped: unfinished spans are simply never recorded — the flight
// recorder semantics for episodes still open at dump time).
func (t *Tracer) Start(kind string, member int64, start time.Duration) *SpanBuilder {
	if t == nil {
		return nil
	}
	b := t.builder()
	b.sp = Span{
		ID:     t.nextID(member),
		Kind:   kind,
		Member: member,
		Node:   t.node,
		Start:  start.Seconds(),
	}
	return b
}

// builder reuses a single embedded SpanBuilder for the common
// non-overlapping case and allocates only when spans nest or interleave.
func (t *Tracer) builder() *SpanBuilder {
	if !t.inUse {
		t.inUse = true
		t.reusable = SpanBuilder{t: t}
		return &t.reusable
	}
	return &SpanBuilder{t: t}
}

// nextID derives the next span ID for member's track: a pure function of
// (seed, node, member, per-track sequence), so no cross-run or cross-worker
// state can leak into the trace.
func (t *Tracer) nextID(member int64) string {
	seq := t.seqs[member]
	t.seqs[member] = seq + 1
	return deriveID(t.seed, t.nodeMix^uint64(member)*0x9E3779B97F4A7C15, seq)
}

// SpanBuilder accumulates one span. All methods are nil-safe no-ops so
// call sites need no enabled-checks beyond the Start guard.
type SpanBuilder struct {
	t  *Tracer
	sp Span
}

// ID returns the span's derived ID ("" on the disabled path).
func (b *SpanBuilder) ID() string {
	if b == nil {
		return ""
	}
	return b.sp.ID
}

// Attr annotates the span.
func (b *SpanBuilder) Attr(k, v string) *SpanBuilder {
	if b == nil {
		return nil
	}
	b.sp.Attrs = append(b.sp.Attrs, Attr{K: k, V: v})
	return b
}

// AttrInt annotates the span with an integer value.
func (b *SpanBuilder) AttrInt(k string, v int64) *SpanBuilder {
	if b == nil {
		return nil
	}
	return b.Attr(k, strconv.FormatInt(v, 10))
}

// AttrDuration annotates the span with a duration in seconds.
func (b *SpanBuilder) AttrDuration(k string, v time.Duration) *SpanBuilder {
	if b == nil {
		return nil
	}
	return b.Attr(k, strconv.FormatFloat(v.Seconds(), 'g', -1, 64))
}

// Child opens a sub-span (a stage of the episode) on member's track.
func (b *SpanBuilder) Child(kind string, member int64, start time.Duration) *SpanBuilder {
	if b == nil {
		return nil
	}
	c := b.t.builder()
	c.sp = Span{
		ID:     b.t.nextID(member),
		Parent: b.sp.ID,
		Kind:   kind,
		Member: member,
		Node:   b.t.node,
		Start:  start.Seconds(),
	}
	return c
}

// End completes the span and hands it to the recorder. The builder must
// not be used afterwards.
func (b *SpanBuilder) End(end time.Duration, outcome string) {
	if b == nil {
		return
	}
	b.sp.End = end.Seconds()
	b.sp.Outcome = outcome
	b.t.sink.Record(b.sp)
	if b == &b.t.reusable {
		b.t.inUse = false
	}
}

// deriveID mixes (seed, track key, sequence) through the splitmix64
// finaliser and formats the result as 16 hex digits.
func deriveID(seed int64, track uint64, seq uint64) string {
	x := uint64(seed)*0xBF58476D1CE4E5B9 + track + seq*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	var buf [16]byte
	const hex = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = hex[x&0xf]
		x >>= 4
	}
	return string(buf[:])
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Envelope is the JSONL line shape for a span, mirroring the simulator's
// TraceEvent framing (v/t/event/member) so span lines and point-event
// lines interleave in one stream and one parser handles both.
type Envelope struct {
	V      int     `json:"v"`
	T      float64 `json:"t"`
	Event  string  `json:"event"`
	Member int64   `json:"member"`
	Span   *Span   `json:"span"`
}

// WriteJSONL writes spans as envelope lines, one per span, in slice order.
func WriteJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		ev := Envelope{
			V:      SchemaVersion,
			T:      spans[i].End,
			Event:  "span",
			Member: spans[i].Member,
			Span:   &spans[i],
		}
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("tracing: writing span %s: %w", spans[i].ID, err)
		}
	}
	return nil
}
