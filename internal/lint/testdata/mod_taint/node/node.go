// Package node is the protocol-state package of the taint fixture module
// (its import path suffix matches Config.TaintStatePackages): stores of
// unvalidated wire data into non-local state are sinks here, on top of the
// module-wide index/delete and protocol-call sinks.
package node

import (
	"taintmod/cer"
	"taintmod/decode"
	"taintmod/wire"
)

// Node mirrors the real protocol state shape.
type Node struct {
	parent     wire.Addr
	membership map[wire.Addr]bool
	seen       map[wire.Addr]int
}

// badStore writes a parse-only result straight into protocol state.
func (n *Node) badStore(data []byte) {
	env, _ := wire.DecodeRaw(data)
	n.parent = env.From // want `wire-taint: unvalidated wire input \(wire\.DecodeRaw result, parse-only and never validated\) stored into shared protocol state`
}

// badIndex keys a map with an attacker-controlled address.
func (n *Node) badIndex(data []byte) bool {
	env, _ := wire.DecodeRaw(data)
	return n.membership[env.From] // want `wire-taint: unvalidated wire input \(wire\.DecodeRaw result, parse-only and never validated\) used as a map/slice index`
}

// badDelete removes a membership entry chosen by the sender.
func (n *Node) badDelete(data []byte) {
	env, _ := wire.DecodeRaw(data)
	delete(n.membership, env.From) // want `wire-taint: unvalidated wire input \(wire\.DecodeRaw result, parse-only and never validated\) used as a map delete key`
}

// badUnchecked uses the full Decode but never observes its error: the result
// stays tainted.
func (n *Node) badUnchecked(data []byte) {
	env, err := wire.Decode(data)
	_ = err
	n.parent = env.From // want `wire-taint: unvalidated wire input \(wire\.Decode result used before its error is checked\) stored into shared protocol state`
}

// badProtocol feeds unvalidated data into a protocol decision.
func (n *Node) badProtocol(data []byte) int {
	env, _ := wire.DecodeRaw(data)
	return cer.Plan(env.Kind) // want `wire-taint: unvalidated wire input \(wire\.DecodeRaw result, parse-only and never validated\) passed into protocol logic cer\.Plan`
}

// recordPeer is a state-touching helper: the summary fixpoint must mark its
// parameter as a (transitive) sink.
func (n *Node) recordPeer(addr wire.Addr) {
	n.membership[addr] = true
}

// badParamFlow reaches the sink one call deep — the cross-function flow a
// purely local check cannot see.
func (n *Node) badParamFlow(data []byte) {
	env, _ := wire.DecodeRaw(data)
	n.recordPeer(env.From) // want `wire-taint: unvalidated wire input \(wire\.DecodeRaw result, parse-only and never validated\) passed to recordPeer, where parameter 0 is used as a map/slice index`
}

// badDerived consumes a cross-package derived source: decode.Loose returns
// raw decode results, so its callers inherit the taint.
func (n *Node) badDerived(data []byte) {
	env := decode.Loose(data)
	if env == nil {
		return
	}
	n.parent = env.From // want `wire-taint: unvalidated wire input \(unvalidated wire value returned by Loose\) stored into shared protocol state`
}

// okChecked observes the Decode error: the result is trusted afterwards.
func (n *Node) okChecked(data []byte) {
	env, err := wire.Decode(data)
	if err != nil {
		return
	}
	n.parent = env.From
}

// okPredicate sanitizes raw data with the boolean predicate; the || shape
// with a terminating then-branch must clear the taint on fallthrough.
func (n *Node) okPredicate(data []byte) {
	env, _ := wire.DecodeRaw(data)
	if env == nil || !wire.ValidAddr(env.From) {
		return
	}
	n.membership[env.From] = true
}

// okValidated sanitizes raw data by binding wire.Validate's error and
// branching on it.
func (n *Node) okValidated(data []byte) {
	env, _ := wire.DecodeRaw(data)
	err := wire.Validate(env)
	if err != nil {
		return
	}
	n.parent = env.From
}

// okLocal keeps the tainted value in locals: no sink, no finding.
func (n *Node) okLocal(data []byte) wire.Addr {
	env, _ := wire.DecodeRaw(data)
	from := env.From
	return from
}

// okSuppressed documents a justified exception at the sink site.
func (n *Node) okSuppressed(data []byte) {
	env, _ := wire.DecodeRaw(data)
	//lint:ignore wire-taint reason: fixture: counter is bounded and evicted by the guard elsewhere
	n.seen[env.From]++
}
