module omcast

go 1.22
