package eventsim

import (
	"testing"
	"time"
)

// TestCancelAfterFireIsNoOp pins the pool's ABA safety: an EventID whose
// event already fired must not cancel the recycled record's next occupant.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	sim := New()
	fired := 0
	id1 := sim.Schedule(time.Second, func(*Simulator) { fired++ })
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The next Schedule reuses id1's pooled record.
	id2 := sim.Schedule(2*time.Second, func(*Simulator) { fired++ })
	if id1.ev != id2.ev {
		t.Fatalf("pool did not reuse the fired record (got %p and %p)", id1.ev, id2.ev)
	}
	if sim.Cancel(id1) {
		t.Fatal("stale EventID canceled a recycled event")
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (stale Cancel must not kill the new event)", fired)
	}
	// And the live ID of an already-fired event is likewise inert.
	if sim.Cancel(id2) {
		t.Fatal("Cancel reported true for a fired event")
	}
}

// TestSelfCancelDuringHandler pins that a handler canceling its own event is
// a no-op: by the time the handler runs, its record is already recycled.
func TestSelfCancelDuringHandler(t *testing.T) {
	sim := New()
	var id EventID
	canceled := true
	id = sim.Schedule(time.Second, func(s *Simulator) {
		canceled = s.Cancel(id)
	})
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if canceled {
		t.Fatal("handler canceled its own in-flight event")
	}
}

// TestCancelCompactionBoundsQueue reproduces the tombstone leak: under
// sustained schedule/cancel churn the queue (and therefore the depth gauge)
// must stay bounded instead of accumulating canceled events until they are
// popped.
func TestCancelCompactionBoundsQueue(t *testing.T) {
	sim := New()
	// A standing population of live events keeps the queue non-trivial.
	for i := 0; i < 100; i++ {
		sim.Schedule(time.Duration(i)*time.Hour, func(*Simulator) {})
	}
	const churn = 100_000
	maxPending := 0
	for i := 0; i < churn; i++ {
		id := sim.Schedule(time.Duration(i)*time.Minute, func(*Simulator) {})
		if !sim.Cancel(id) {
			t.Fatal("cancel of a live event failed")
		}
		if p := sim.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// Without compaction the queue would end holding churn+100 events. The
	// sweep bounds tombstones to compactFraction of the live population plus
	// the compactMinCanceled trigger floor.
	bound := 100*compactFraction + 2*compactMinCanceled
	if maxPending > bound {
		t.Fatalf("queue depth reached %d under cancel churn, want <= %d", maxPending, bound)
	}
	if sim.Pending() > bound {
		t.Fatalf("queue still holds %d events after churn, want <= %d", sim.Pending(), bound)
	}
	// The 100 live events must have survived every sweep.
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := sim.Processed(); got != 100 {
		t.Fatalf("processed %d events, want the 100 live ones", got)
	}
}

// TestCompactionPreservesOrder interleaves schedules and cancels, then
// checks the survivors fire in exact (at, seq) order across a compaction.
func TestCompactionPreservesOrder(t *testing.T) {
	sim := New()
	var got []int
	var want []int
	var ids []EventID
	for i := 0; i < 4*compactMinCanceled; i++ {
		i := i
		at := time.Duration(i%7) * time.Second // ties exercise the seq order
		id := sim.Schedule(at, func(*Simulator) { got = append(got, i) })
		if i%3 == 0 {
			ids = append(ids, id)
		} else {
			want = append(want, i)
		}
	}
	for _, id := range ids {
		sim.Cancel(id) // crosses the compaction threshold mid-loop
	}
	// Survivors fire ordered by (at, seq); compute the expectation.
	type key struct{ at, seq int }
	expect := append([]int(nil), want...)
	sortByAtSeq := func(xs []int) {
		for a := 1; a < len(xs); a++ {
			for b := a; b > 0; b-- {
				ka := key{xs[b] % 7, xs[b]}
				kb := key{xs[b-1] % 7, xs[b-1]}
				if ka.at < kb.at || (ka.at == kb.at && ka.seq < kb.seq) {
					xs[b], xs[b-1] = xs[b-1], xs[b]
				} else {
					break
				}
			}
		}
	}
	sortByAtSeq(expect)
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(expect) {
		t.Fatalf("fired %d events, want %d", len(got), len(expect))
	}
	for i := range got {
		if got[i] != expect[i] {
			t.Fatalf("fire order diverged at %d: got %d, want %d", i, got[i], expect[i])
		}
	}
}

// TestScheduleFireAllocFree asserts the zero-alloc steady state: with a warm
// pool, a schedule+fire cycle performs no heap allocations. A regression
// here fails go test, not just the bench report.
func TestScheduleFireAllocFree(t *testing.T) {
	sim := New()
	noop := Handler(func(*Simulator) {})
	// Warm the pool and the queue's backing array.
	for i := 0; i < 1000; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, noop)
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	at := sim.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		at += time.Millisecond
		sim.Schedule(at, noop)
		if err := sim.Run(at); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("schedule+fire allocates %.1f times per op, want 0", allocs)
	}
}
