package node

import (
	"fmt"
	"testing"
	"time"

	"omcast/internal/wire"
	"omcast/internal/xrand"
)

// TestBackoffDelayPolicy pins the shared backoff shape: deterministic for a
// given (seed, streak), doubling from base, capped at max, jittered within
// [d/2, d).
func TestBackoffDelayPolicy(t *testing.T) {
	base, max := 100*time.Millisecond, 800*time.Millisecond
	a := xrand.NewNamed(7, "node:join:x")
	b := xrand.NewNamed(7, "node:join:x")
	for streak := 0; streak < 10; streak++ {
		da := backoffDelay(base, max, streak, a)
		db := backoffDelay(base, max, streak, b)
		if da != db {
			t.Fatalf("streak %d: %s vs %s — jitter not deterministic", streak, da, db)
		}
		full := base << streak
		if full > max || streak >= 3 {
			full = max
		}
		if da < full/2 || da >= full {
			t.Fatalf("streak %d: delay %s outside [%s, %s)", streak, da, full/2, full)
		}
	}
	// Different node addresses must draw different jitter streams.
	c := xrand.NewNamed(7, "node:join:y")
	same := 0
	for streak := 0; streak < 8; streak++ {
		if backoffDelay(base, max, streak, a) == backoffDelay(base, max, streak, c) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("distinct nodes drew identical jitter streams")
	}
}

// TestJoinBackoffGrows boots a node with an unreachable bootstrap and checks
// that its join attempts slow down: the gap between consecutive attempts
// must grow toward the cap rather than staying at heartbeat cadence.
func TestJoinBackoffGrows(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	ep, err := network.Endpoint("loner")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fast
	cfg.Bandwidth = 1
	cfg.Bootstrap = []wire.Addr{"nobody-home"}
	cfg.JoinBackoffBase = 10 * time.Millisecond
	cfg.JoinBackoffMax = 80 * time.Millisecond
	nd := New(cfg, ep)
	nd.Start()
	defer nd.Kill()

	// With base 10 ms capped at 80 ms, ~1 s admits at most ~1000/40 + a few
	// early fast attempts; without backoff (heartbeat cadence) it would be
	// ~50. Bound generously to stay robust under -race scheduling.
	time.Sleep(scale(1 * time.Second))
	nd.mu.Lock()
	streak := nd.joinStreak
	nd.mu.Unlock()
	if streak < 5 {
		t.Fatalf("join streak = %d after 1s of futile attempts, want >= 5", streak)
	}
	low := nd.cfg.JoinBackoffMax / 2
	d := backoffDelay(nd.cfg.JoinBackoffBase, nd.cfg.JoinBackoffMax, streak, xrand.NewNamed(cfg.Seed, "node:join:loner"))
	if d < low {
		t.Fatalf("delay at streak %d = %s, want >= %s (cap reached)", streak, d, low)
	}
}

// scale stretches a duration under -race, mirroring eventually's factor.
func scale(d time.Duration) time.Duration {
	if raceEnabled {
		return d * 4
	}
	return d
}

// TestJoinBackoffResetsOnAttach: once accepted, the streak clears so a later
// detachment retries at base cadence.
func TestJoinBackoffResetsOnAttach(t *testing.T) {
	c := newCluster(t, 3, nil)
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	for _, nd := range c.nodes {
		nd.mu.Lock()
		streak := nd.joinStreak
		nd.mu.Unlock()
		if streak != 0 {
			t.Fatalf("node %s: joinStreak = %d after attach, want 0", nd.Addr(), streak)
		}
	}
}

// TestRecoveryGroupExcludesStaleMembers injects a membership view where one
// member's record stopped refreshing: CER candidate selection must skip it,
// while fresh members with identical scores stay eligible.
func TestRecoveryGroupExcludesStaleMembers(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	ep, err := network.Endpoint("self")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fast
	cfg.Bandwidth = 1
	cfg.RecoveryGroup = 3
	cfg.MemberStaleAfter = time.Second
	nd := New(cfg, ep) // never Started: recoveryGroup is a pure read
	defer nd.Kill()

	now := time.Now()
	nd.mu.Lock()
	nd.attached = true
	nd.parent = "parent"
	for i := 0; i < 4; i++ {
		addr := wire.Addr(fmt.Sprintf("fresh%d", i))
		nd.membership[addr] = memberRecord{info: wire.MemberInfo{Addr: addr}, seen: now}
	}
	nd.membership["stale"] = memberRecord{
		info: wire.MemberInfo{Addr: "stale"},
		seen: now.Add(-10 * time.Second), // stopped heartbeating long ago
	}
	nd.mu.Unlock()

	group := nd.recoveryGroup()
	if len(group) != 3 {
		t.Fatalf("group size = %d, want 3", len(group))
	}
	for _, addr := range group {
		if addr == "stale" {
			t.Fatalf("stale member selected into recovery group: %v", group)
		}
	}

	// Sanity: with the filter disabled the stale member is eligible again
	// (alphabetical tiebreak puts "stale" after "fresh*", so widen K).
	nd.mu.Lock()
	nd.cfg.MemberStaleAfter = -1
	nd.cfg.RecoveryGroup = 5
	nd.mu.Unlock()
	group = nd.recoveryGroup()
	found := false
	for _, addr := range group {
		if addr == "stale" {
			found = true
		}
	}
	if !found {
		t.Fatalf("filter disabled but stale member still excluded: %v", group)
	}
}
