package experiments

import (
	"encoding/json"
	"fmt"
	"testing"

	"omcast/internal/metrics"
)

// tinyOptions returns the smallest configuration that still exercises every
// code path: Quick's small topology with custom sweep sizes and windows
// (possible because Quick only fills fields left at their zero value).
func tinyOptions(workers int) Options {
	return Options{
		Seed:    7,
		Quick:   true,
		Workers: workers,
		Sizes:   []int{200, 300},
		Size:    300,
		Metrics: metrics.NewRegistry(),
	}
}

// figureOutput runs one figure and returns its rendered table plus the
// JSON-serialised metrics snapshot — the two byte streams the engine
// promises are independent of the worker count.
func figureOutput(t *testing.T, id string, workers int) (string, string) {
	t.Helper()
	opts := tinyOptions(workers)
	var progress []string
	opts.Progress = func(format string, args ...any) {
		progress = append(progress, fmt.Sprintf(format, args...))
	}
	tab, err := NewRunner(opts).Run(id)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", id, workers, err)
	}
	snap, err := json.Marshal(opts.Metrics.Snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	for _, line := range progress {
		out += "progress: " + line + "\n"
	}
	return out, string(snap)
}

// TestParallelByteIdentical is the worker-pool merge property test: for
// figures covering all three cache families (shared sweep, tracked runs,
// streaming grid), workers 1, 2 and 8 must produce byte-identical tables,
// progress streams and metrics snapshots.
func TestParallelByteIdentical(t *testing.T) {
	for _, id := range []string{"fig4", "fig6", "fig13", "fig-fleet", "fig-scale"} {
		wantTab, wantSnap := figureOutput(t, id, 1)
		for _, workers := range []int{2, 8} {
			gotTab, gotSnap := figureOutput(t, id, workers)
			if gotTab != wantTab {
				t.Errorf("%s: table/progress bytes differ between workers=1 and workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s",
					id, workers, wantTab, workers, gotTab)
			}
			if gotSnap != wantSnap {
				t.Errorf("%s: metrics snapshot differs between workers=1 and workers=%d", id, workers)
			}
		}
	}
}

// TestParallelAllFiguresByteIdentical covers every experiment ID: a full
// suite run with the parallel pool must reproduce the sequential suite
// byte-for-byte (tables and the final merged snapshot).
func TestParallelAllFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison skipped in -short mode")
	}
	run := func(workers int) (map[string]string, string) {
		opts := tinyOptions(workers)
		tables, err := NewRunner(opts).All()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make(map[string]string, len(tables))
		for _, tab := range tables {
			out[tab.ID] = tab.Format()
		}
		snap, err := json.Marshal(opts.Metrics.Snapshot(0))
		if err != nil {
			t.Fatal(err)
		}
		return out, string(snap)
	}
	seqTables, seqSnap := run(1)
	parTables, parSnap := run(8)
	if len(seqTables) != len(IDs()) {
		t.Fatalf("suite produced %d tables, want %d", len(seqTables), len(IDs()))
	}
	for _, id := range IDs() {
		if seqTables[id] != parTables[id] {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
				id, seqTables[id], parTables[id])
		}
	}
	if seqSnap != parSnap {
		t.Error("final metrics snapshot differs between sequential and parallel suite runs")
	}
}
