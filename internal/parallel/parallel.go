// Package parallel provides the bounded worker pool behind the experiment
// engine. It deliberately lives outside the simulation scope that omcast-lint
// enforces: sim-scoped packages are single-threaded by contract, so every
// goroutine lives here, and callers only ever see a result slice indexed by
// input order. Determinism therefore reduces to one rule for the callback —
// fn(i) may touch only state reachable from its own index.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn(0), ..., fn(n-1) on at most workers goroutines (after
// Workers resolution, capped at n) and returns the results in input order.
// fn must confine itself to state reachable from its own index; Run adds no
// locking around the callback.
//
// Error handling is deterministic: when any unit fails, Run reports the
// failure with the lowest index, wrapped with that index. The parallel path
// still runs every unit before returning (units are independent and failures
// are exceptional, so draining costs little and keeps the reported error
// schedule-independent); the single-worker path stops at the first failure,
// which reports the same lowest-indexed error.
func Run[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("unit %d: %w", i, err)
			}
			results[i] = v
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("unit %d: %w", i, err)
		}
	}
	return results, nil
}
